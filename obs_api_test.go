package chimera_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chimera"
)

// TestFacadeMetrics: a facade-built registry attached through ServeConfig
// is the one /metrics renders, and the snapshot type round-trips through
// the facade aliases.
func TestFacadeMetrics(t *testing.T) {
	reg := chimera.NewMetricsRegistry()
	srv := chimera.NewServer(chimera.ServeConfig{CacheCapacity: 64, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,"platform":{"preset":"pizdaint"}}`
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if !strings.Contains(string(text), `serve_requests_total{endpoint="plan"} 1`) {
		t.Fatalf("/metrics missing the plan request:\n%s", text)
	}

	var snap chimera.MetricsSnapshot = reg.Snapshot()
	if snap.Counters[`serve_requests_total{endpoint="plan"}`] != 1 {
		t.Fatalf("facade snapshot missing the plan request: %+v", snap.Counters)
	}
}
