// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §4). Each benchmark runs the corresponding experiment harness
// and reports its headline metric; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured notes. cmd/chimera-bench
// prints the full row/series output of the same harnesses.
package chimera_test

import (
	"testing"

	"chimera/internal/experiments"
)

func runExp(b *testing.B, fn func() (*experiments.Report, error), metrics ...string) {
	b.Helper()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	runExp(b, func() (*experiments.Report, error) { return experiments.Table2(4, 4) },
		"bubble:chimera", "bubble:dapple")
}

func BenchmarkTable3(b *testing.B) {
	runExp(b, func() (*experiments.Report, error) { return experiments.Table3(16, 16) },
		"bubble:f=1", "bubble:f=4")
}

func BenchmarkFigure1(b *testing.B) {
	runExp(b, experiments.Figure1, "speedup:dapple", "speedup:gpipe", "speedup:gems", "speedup:pipedream-2bw")
}

func BenchmarkFigure2(b *testing.B) {
	runExp(b, func() (*experiments.Report, error) { return experiments.Figure2(4, 4) },
		"makespan:chimera", "makespan:dapple")
}

func BenchmarkFigure6(b *testing.B) {
	runExp(b, experiments.Figure6, "cf", "cb")
}

func BenchmarkFigure7(b *testing.B) {
	runExp(b, experiments.Figure7,
		"recompute-makespan:direct", "recompute-makespan:forward-doubling")
}

func BenchmarkFigure8(b *testing.B) {
	runExp(b, experiments.Figure8, "conflicts")
}

func BenchmarkFigure9(b *testing.B) {
	runExp(b, experiments.Figure9)
}

func BenchmarkFigure10(b *testing.B) {
	runExp(b, experiments.Figure10, "best:dapple", "best:gpipe")
}

func BenchmarkFigure11(b *testing.B) {
	runExp(b, experiments.Figure11, "best:dapple")
}

func BenchmarkFigure12(b *testing.B) {
	runExp(b, experiments.Figure12, "opt-over-eager:64")
}

func BenchmarkFigure13(b *testing.B) {
	runExp(b, experiments.Figure13)
}

func BenchmarkFigure14(b *testing.B) {
	runExp(b, experiments.Figure14, "chimera:64", "dapple:64")
}

func BenchmarkFigure15(b *testing.B) {
	runExp(b, experiments.Figure15, "chimera:2048", "parallel-efficiency")
}

func BenchmarkFigure16(b *testing.B) {
	runExp(b, experiments.Figure16, "chimera:32")
}

func BenchmarkFigure17(b *testing.B) {
	runExp(b, experiments.Figure17, "chimera(direct):2048")
}

func BenchmarkFigure18(b *testing.B) {
	runExp(b, experiments.Figure18, "chimera(forward-doubling):2048")
}

func BenchmarkFigure19(b *testing.B) {
	runExp(b, experiments.Figure19, "d32:pipes=4", "d16:pipes=2")
}

func BenchmarkModelAccuracy(b *testing.B) {
	runExp(b, experiments.ModelAccuracy, "worst-error")
}

func BenchmarkAblationAllreduce(b *testing.B) {
	runExp(b, experiments.AblationAllreduce, "rabenseifner:256", "ring:256")
}

func BenchmarkAblationGreedyB(b *testing.B) {
	runExp(b, experiments.AblationGreedyB, "greedy", "optimum")
}

func BenchmarkAblationRecompute(b *testing.B) {
	runExp(b, experiments.AblationRecompute)
}

func BenchmarkAblationSyncInterference(b *testing.B) {
	runExp(b, experiments.AblationInterference)
}

func BenchmarkTrainingEquivalence(b *testing.B) {
	runExp(b, func() (*experiments.Report, error) { return experiments.TrainingEquivalence(3) },
		"worst-loss-gap")
}

func BenchmarkConvergenceComparison(b *testing.B) {
	runExp(b, func() (*experiments.Report, error) { return experiments.ConvergenceComparison(4) },
		"chimera-sgd-gap")
}

func BenchmarkAblationZeRO(b *testing.B) {
	runExp(b, experiments.AblationZeRO)
}

func BenchmarkAblationCompression(b *testing.B) {
	runExp(b, experiments.AblationCompression)
}
