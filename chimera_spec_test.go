package chimera_test

import (
	"reflect"
	"testing"

	"chimera"
)

// TestFacadeBuildSpec covers the unified ScheduleSpec entry point and the
// deprecated wrappers' bit-identical delegation.
func TestFacadeBuildSpec(t *testing.T) {
	viaSpec, err := chimera.Build(chimera.ScheduleSpec{Scheme: "chimera", D: 4, N: 8, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	viaWrapper, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 8, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpec.Workers, viaWrapper.Workers) ||
		!reflect.DeepEqual(viaSpec.Replicas, viaWrapper.Replicas) {
		t.Fatal("NewChimera diverged from Build")
	}
	for _, scheme := range chimera.Schemes() {
		a, err := chimera.Build(chimera.ScheduleSpec{Scheme: scheme, D: 4, N: 4})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		b, err := chimera.NewSchedule(scheme, 4, 4)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !reflect.DeepEqual(a.Workers, b.Workers) {
			t.Fatalf("%s: NewSchedule diverged from Build", scheme)
		}
	}

	reshaped, err := chimera.Build(chimera.ScheduleSpec{
		Scheme: "chimera", Scheduler: "heft", D: 4, N: 8,
		SpeedFactors: []float64{1, 1, 2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reshaped.Scheduler != "heft" {
		t.Fatalf("Scheduler = %q, want heft", reshaped.Scheduler)
	}
	if err := reshaped.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := chimera.Build(chimera.ScheduleSpec{Scheme: "chimera", Scheduler: "bogus", D: 4, N: 4}); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

// TestFacadeSchedulers pins the policy-axis vocabulary next to Schemes.
func TestFacadeSchedulers(t *testing.T) {
	want := []string{"fixed", "heft", "cpop", "lb"}
	if got := chimera.Schedulers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Schedulers() = %v, want %v", got, want)
	}
}
