// chimera-sim simulates one training iteration of a pipeline scheme on a
// calibrated cluster and prints throughput, bubble ratio and per-worker
// memory. With -json it emits the same wire shape chimera-serve's
// /v1/simulate serves (one serialization path, internal/serve's codecs).
//
// Example:
//
//	chimera-sim -scheme chimera -model gpt2 -d 32 -w 64 -b 1 -bhat 2048
//	chimera-sim -scheme chimera -model bert48 -d 4 -w 8 -b 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/schedule"
	"chimera/internal/serve"
	"chimera/internal/sim"
)

func main() {
	scheme := flag.String("scheme", "chimera", "pipeline scheme: chimera|gpipe|dapple|gems|pipedream|pipedream-2bw|1f1b")
	modelName := flag.String("model", "bert48", "model: bert48|bert48-512|gpt2|gpt2-32")
	d := flag.Int("d", 4, "pipeline stages D")
	w := flag.Int("w", 8, "data-parallel width W")
	b := flag.Int("b", 8, "micro-batch size B")
	bhat := flag.Int("bhat", 512, "mini-batch size B̂ (N = B̂/(W·B))")
	f := flag.Int("f", 1, "chimera pipelines per direction")
	concat := flag.String("concat", "direct", "chimera N>D method: direct|doubling|halving")
	platform := flag.String("platform", "pizdaint", "platform: pizdaint|v100")
	recompute := flag.Bool("recompute", false, "force activation recomputation")
	auto := flag.Bool("auto", true, "enable recomputation automatically when memory requires it")
	speed := flag.String("speed", "", "per-worker speed factors, comma-separated (e.g. 1,1,1.5,1 — one per stage; 1.5 = 1.5x slower straggler)")
	scheduler := flag.String("scheduler", "fixed", "placement policy: "+strings.Join(schedule.Schedulers(), "|")+" (list policies re-shape the pipeline around -speed stragglers)")
	jsonOut := flag.Bool("json", false, "emit the /v1/simulate wire format instead of the report")
	flag.Parse()

	m, err := serve.ResolveModel(*modelName)
	check(err)
	if *bhat%(*w**b) != 0 {
		check(fmt.Errorf("B̂=%d not divisible by W·B=%d", *bhat, *w**b))
	}
	n := *bhat / (*w * *b)
	factors, err := sim.DecodeSpeedFactors(*speed)
	check(err)
	mode := schedule.Direct
	switch *concat {
	case "doubling":
		mode = schedule.ForwardDoubling
	case "halving":
		mode = schedule.BackwardHalving
	}
	s, err := schedule.Build(schedule.Spec{
		Scheme: *scheme, Scheduler: *scheduler, D: *d, N: n, F: *f,
		Concat: mode, SpeedFactors: factors,
	})
	check(err)

	dev, net, err := serve.ResolvePlatform(*platform)
	check(err)
	cfg := sim.Config{Model: m, Schedule: s, MicroBatch: *b, W: *w, Recompute: *recompute,
		SpeedFactors: factors, Device: dev, Network: net}
	var res *sim.Result
	usedRecompute := *recompute
	if *auto && !*recompute {
		res, usedRecompute, err = sim.AutoRun(cfg)
	} else {
		res, err = sim.Run(cfg)
	}
	check(err)

	if *jsonOut {
		raw, err := json.MarshalIndent(serve.NewSimulateResponse(res, usedRecompute), "", "  ")
		check(err)
		fmt.Println(string(raw))
		if res.OOM {
			os.Exit(2)
		}
		return
	}
	fmt.Printf("%s %s: D=%d W=%d B=%d N=%d (B̂=%d) recompute=%v\n",
		*scheme, m.Name, *d, *w, *b, n, res.MiniBatch, usedRecompute)
	fmt.Printf("iteration time : %.4f s\n", res.IterTime)
	fmt.Printf("throughput     : %.1f sequences/s\n", res.Throughput)
	fmt.Printf("bubble ratio   : %.3f\n", res.BubbleRatio)
	fmt.Printf("sync overhead  : %.4f s (unoverlapped)\n", res.SyncTime)
	fmt.Printf("per-worker peak memory (GiB):\n")
	for wk, mem := range res.PeakMemBytes {
		marker := ""
		if mem > cfg.Device.MemBytes {
			marker = "  << OOM"
		}
		fmt.Printf("  P%-3d %.2f%s\n", wk, float64(mem)/(1<<30), marker)
	}
	if res.OOM {
		fmt.Println("configuration exceeds device memory")
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-sim:", err)
		os.Exit(1)
	}
}
