// chimera-loadgen is the closed-loop load generator for chimera-serve. It
// drives every endpoint of a running service and emits BENCH_serve.json —
// the service-layer perf trajectory CI archives alongside BENCH_sweep.json.
//
// One run measures, in order:
//
//  1. cold vs warm latency — a fixed set of /v1/plan requests is walked
//     once against the fresh server (cold caches) and then -passes more
//     times (warm); the p50 ratio is the daemon's amortization win, gated
//     at -min-warm-speedup (default 2×);
//  2. endpoint smoke — every endpoint must answer;
//  3. plan equivalence — served /v1/plan bodies must be byte-identical to
//     encoding an in-process chimera.Plan through the same codec;
//  4. closed-loop throughput — -clients workers issue mixed requests
//     back-to-back (requests/sec, p50/p99); the request budget scales with
//     -clients (50 each, min 200), or -duration time-bounds the phase;
//  5. overload — a simultaneous burst far above the server's admission
//     limit; every reply must be 200 or 429 (clean shedding, no transport
//     errors), and with -expect-shed at least one 429 must occur;
//  6. batch equivalence — a /v1/plan:batch reply's items must be
//     byte-identical to the same requests issued as sequential /v1/plan
//     calls (including per-item error text);
//  7. zipfian multi-tenant — -clients workers replay a seeded zipfian key
//     schedule over -zipf-keys distinct tenants (skew -zipf-s), measuring
//     tail latency when a hot set dominates.
//
// The whole run is deterministic for a given -seed: the zipfian schedule
// and the router-bench workloads are drawn from a seeded RNG, and every
// other phase's request order is fixed.
//
// -router-bench N switches to a self-contained router scaling benchmark
// instead: it starts N in-process chimera-serve replicas (one engine
// worker, one admission slot each) behind an in-process chimera-router,
// measures aggregate closed-loop rps through the router at 1 replica and at
// N, and replays the zipfian schedule through the router for p99 under
// hot-set skew. -min-router-scaling gates the aggregate/single ratio.
//
// -controller-storm N switches to the fleet-controller storm driver: a
// seeded churn storm of N events (arrivals, node failures with correlated
// rack cascades, drains, spot and on-demand joins) is generated against
// -controller-scenario's cluster and posted slot by slot to a fleet
// controller (-controller-addr, or one started in-process), recording
// every batch's server-reported re-plan latency. Afterwards the recorded
// event log is fetched and replayed through the batch simulator in-process;
// the replay must reproduce the controller's processed-event log and final
// allocation byte for byte, and -max-replan-ms gates the slowest batch.
// The result merges into -out as the "controller" section (the file's
// other sections — e.g. chimera-bench's — are preserved).
//
// Any gate failure exits non-zero, so CI can call this binary directly.
// Cold numbers are only meaningful against a freshly started server.
//
// Example:
//
//	chimera-serve -addr 127.0.0.1:8642 -max-inflight 4 &
//	chimera-loadgen -addr http://127.0.0.1:8642 -out BENCH_serve.json
//	chimera-loadgen -router-bench 2 -out BENCH_serve_router.json
//	chimera-loadgen -controller-storm 64 -controller-scenario examples/fleet/scenario.json -out BENCH_fleet.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chimera"
	"chimera/internal/controller"
	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/obs"
	"chimera/internal/router"
	"chimera/internal/serve"
)

var client = &http.Client{Timeout: 120 * time.Second}

// BenchServe is the machine-readable result (BENCH_serve.json).
type BenchServe struct {
	Addr          string      `json:"addr"`
	Seed          int64       `json:"seed"`
	EndpointsOK   bool        `json:"endpoints_ok"`
	PlanCompared  int         `json:"plan_compared"`
	PlanIdentical bool        `json:"plan_identical"`
	Cold          LatencySide `json:"cold"`
	Warm          LatencySide `json:"warm"`
	// WarmSpeedupP50 is cold p50 over warm p50 — the cache amortization win.
	WarmSpeedupP50 float64    `json:"warm_speedup_p50"`
	Throughput     Throughput `json:"throughput"`
	Overload       Overload   `json:"overload"`
	// CacheHitRate is the server engine's cumulative hit rate; the plan
	// response cache is reported separately (both from /v1/stats).
	CacheHitRate     float64 `json:"cache_hit_rate"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// Server is the server-side latency view scraped from GET /metrics at
	// the end of the run (nil when -scrape=false). Server-side quantiles
	// exclude client and transport time, so they bound how much of the
	// client-observed latency the service itself spent.
	Server *ServerMetrics `json:"server,omitempty"`
	// Batch is the /v1/plan:batch equivalence phase (nil in -router-bench
	// mode).
	Batch *BatchBench `json:"batch,omitempty"`
	// Zipf is the zipfian multi-tenant phase (nil when -zipf-keys=0).
	Zipf *ZipfBench `json:"zipf,omitempty"`
	// Router is the self-contained router scaling bench (-router-bench).
	Router *RouterBench `json:"router,omitempty"`
}

// BatchBench summarizes the batch-equivalence phase.
type BatchBench struct {
	Items int `json:"items"`
	// Identical reports every batch item matched its sequential single
	// byte-for-byte (plans and error text alike).
	Identical bool `json:"identical"`
	// Errors counts items that (correctly) answered with a per-item error.
	Errors int `json:"item_errors"`
}

// ZipfBench summarizes the zipfian multi-tenant phase.
type ZipfBench struct {
	Keys     int     `json:"keys"`
	S        float64 `json:"s"`
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	// HotShare is the fraction of the schedule landing on the hottest key.
	HotShare float64 `json:"hot_share"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"requests_per_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors"`
}

// RouterBench summarizes the self-contained router scaling benchmark. Each
// in-process replica has one engine worker and one admission slot, so the
// fleet's aggregate admission capacity — what the router shards across —
// grows linearly in replica count; clients retry 429s, making the workload
// capacity-bound rather than shed-bound.
type RouterBench struct {
	Replicas int `json:"replicas"`
	Clients  int `json:"clients"`
	Requests int `json:"requests_per_step"`
	NumCPU   int `json:"num_cpu"`
	// SingleRPS and AggregateRPS are closed-loop cold-plan rates through
	// the router fronting 1 and Replicas replicas respectively; Scaling is
	// their ratio.
	SingleRPS    float64 `json:"single_rps"`
	AggregateRPS float64 `json:"aggregate_rps"`
	Scaling      float64 `json:"scaling"`
	Retries429   int     `json:"retries_429"`
	// Zipf is the seeded zipfian schedule replayed through the router
	// against the Replicas-wide fleet: tail latency under hot-set skew when
	// the hot tenants concentrate on their ring owners' warm caches.
	Zipf ZipfBench `json:"zipf"`
}

// ServerMetrics folds the scraped /v1/plan endpoint histograms into the
// report: the hit/miss split plus the merged endpoint totals.
type ServerMetrics struct {
	// PlanRequests counts plan requests the scraped histograms saw
	// (hits + misses), across every phase of this run.
	PlanRequests uint64 `json:"plan_requests"`
	// PlanP50Ms/PlanP99Ms are quantiles of the merged hit+miss series.
	PlanP50Ms float64 `json:"plan_p50_ms"`
	PlanP99Ms float64 `json:"plan_p99_ms"`
	// The per-disposition splits: hits are cache lookups, misses full
	// planning runs.
	PlanHits      uint64  `json:"plan_hits"`
	PlanHitP50Ms  float64 `json:"plan_hit_p50_ms"`
	PlanMisses    uint64  `json:"plan_misses"`
	PlanMissP50Ms float64 `json:"plan_miss_p50_ms"`
}

// LatencySide summarizes one latency measurement pass.
type LatencySide struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// Throughput summarizes the closed-loop phase.
type Throughput struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"requests_per_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors"`
}

// Overload summarizes the admission-control burst.
type Overload struct {
	Offered          int  `json:"offered"`
	Accepted         int  `json:"accepted"`
	Shed429          int  `json:"shed_429"`
	TransportErrors  int  `json:"transport_errors"`
	UnexpectedStatus int  `json:"unexpected_status"`
	MaxInflight      int  `json:"max_inflight"`
	Clean            bool `json:"clean"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8642", "base URL of a running chimera-serve")
	out := flag.String("out", "BENCH_serve.json", `output path ("-" for stdout)`)
	passes := flag.Int("passes", 3, "warm passes over the latency request set")
	clients := flag.Int("clients", 4, "closed-loop client goroutines")
	requests := flag.Int("requests", 0, "total requests in the throughput phase (0 = 50×clients, min 200)")
	duration := flag.Duration("duration", 0, "time-bound the throughput phase instead of counting requests (overrides -requests when > 0)")
	seed := flag.Int64("seed", 1, "RNG seed; the zipfian and router-bench schedules are deterministic per seed")
	burst := flag.Int("burst", 0, "overload burst size (0 = max(8×max_inflight, 32))")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 2.0, "gate: warm p50 must beat cold p50 by this factor (0 disables)")
	expectShed := flag.Bool("expect-shed", true, "gate: the overload burst must shed at least one request")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for /healthz at startup")
	scrape := flag.Bool("scrape", true, "scrape GET /metrics at end of run and fold server-side plan latency into the report")
	zipfKeys := flag.Int("zipf-keys", 64, "distinct tenant keys in the zipfian phase (0 skips the phase)")
	zipfS := flag.Float64("zipf-s", 1.2, "zipfian skew exponent (must be > 1)")
	zipfRequests := flag.Int("zipf-requests", 0, "requests in the zipfian phase (0 = max(4×zipf-keys, 50×clients))")
	maxZipfP99 := flag.Float64("max-zipf-p99-ms", 0, "gate: zipfian-phase p99 must stay under this many ms (0 disables)")
	routerReplicas := flag.Int("router-bench", 0, "run the self-contained router scaling bench with this many in-process replicas instead of the server phases")
	routerRequests := flag.Int("router-requests", 200, "cold plan requests per scaling step in -router-bench")
	minRouterScaling := flag.Float64("min-router-scaling", 0, "gate: -router-bench aggregate rps must be at least this multiple of single-replica rps (0 disables)")
	ctrlStorm := flag.Int("controller-storm", 0, "run the fleet-controller storm driver with this many churn events instead of the server phases")
	ctrlScenario := flag.String("controller-scenario", "", "fleet scenario JSON seeding the controller storm (required with -controller-storm)")
	ctrlAddr := flag.String("controller-addr", "", "base URL of a running chimera-fleet -controller (empty = start one in-process)")
	maxReplanMs := flag.Float64("max-replan-ms", 0, "gate: the slowest controller batch apply must stay under this many ms (0 disables)")
	flag.Parse()

	if *zipfKeys > 0 && *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf-s must be > 1 (got %g)", *zipfS))
	}

	if *ctrlStorm > 0 {
		cb, failures := runControllerStorm(*ctrlScenario, *ctrlAddr, *seed, *ctrlStorm, *maxReplanMs, *wait)
		if err := mergeSection(*out, "controller", cb); err != nil {
			fatal(err)
		}
		fmt.Printf("controller storm: %d events in %d batches (%d arrivals, %d fails, %d drains, %d joins) on %d→%d nodes, replan p50 %.1f ms, p99 %.1f ms, max %.1f ms, replay identical: %v\n",
			cb.Events, cb.Batches, cb.Arrivals, cb.Fails, cb.Drains, cb.Joins,
			cb.Nodes, cb.FinalNodes, cb.ReplanP50Ms, cb.ReplanP99Ms, cb.ReplanMaxMs, cb.ReplayIdentical)
		fmt.Printf("wrote %s\n", *out)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "chimera-loadgen: GATE FAILED:", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		return
	}

	var b *BenchServe
	var failures []string
	if *routerReplicas > 0 {
		b, failures = runRouterBench(*seed, *routerReplicas, *routerRequests, *zipfKeys, *zipfS, *zipfRequests, *minRouterScaling, *maxZipfP99)
	} else {
		b, failures = run(runConfig{
			addr: *addr, passes: *passes, clients: *clients, requests: *requests,
			duration: *duration, seed: *seed, burst: *burst,
			minWarmSpeedup: *minWarmSpeedup, expectShed: *expectShed, scrape: *scrape, wait: *wait,
			zipfKeys: *zipfKeys, zipfS: *zipfS, zipfRequests: *zipfRequests, maxZipfP99: *maxZipfP99,
		})
	}

	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
		if b.Router != nil {
			fmt.Printf("router benchmark: %d replicas, single %d req/s -> aggregate %d req/s (%.2fx), zipf p99 %.1f ms over %d requests (%d cpus)\n",
				b.Router.Replicas, int(b.Router.SingleRPS), int(b.Router.AggregateRPS), b.Router.Scaling,
				b.Router.Zipf.P99Ms, b.Router.Zipf.Requests, b.Router.NumCPU)
		} else {
			fmt.Printf("serve benchmark: %d req/s (p50 %.1f ms, p99 %.1f ms), warm plan p50 %.1fx faster than cold, cache hit rate %.0f%%, shed %d/%d under overload, plan identical: %v\n",
				int(b.Throughput.RPS), b.Throughput.P50Ms, b.Throughput.P99Ms,
				b.WarmSpeedupP50, 100*b.CacheHitRate, b.Overload.Shed429, b.Overload.Offered, b.PlanIdentical)
			if b.Zipf != nil {
				fmt.Printf("zipf phase: %d keys (s=%.2f, hot share %.0f%%), %d req/s, p50 %.1f ms, p99 %.1f ms\n",
					b.Zipf.Keys, b.Zipf.S, 100*b.Zipf.HotShare, int(b.Zipf.RPS), b.Zipf.P50Ms, b.Zipf.P99Ms)
			}
			if b.Server != nil {
				fmt.Printf("server-side (scraped): %d plan requests, p50 %.2f ms, p99 %.1f ms (hit p50 %.2f ms over %d, miss p50 %.1f ms over %d)\n",
					b.Server.PlanRequests, b.Server.PlanP50Ms, b.Server.PlanP99Ms,
					b.Server.PlanHitP50Ms, b.Server.PlanHits, b.Server.PlanMissP50Ms, b.Server.PlanMisses)
			}
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "chimera-loadgen: GATE FAILED:", f)
		}
		os.Exit(1)
	}
}

// runConfig carries the benchmark-mode knobs into run.
type runConfig struct {
	addr                      string
	passes, clients, requests int
	duration                  time.Duration
	seed                      int64
	burst                     int
	minWarmSpeedup            float64
	expectShed, scrape        bool
	wait                      time.Duration
	zipfKeys                  int
	zipfS                     float64
	zipfRequests              int
	maxZipfP99                float64
}

func run(cfg runConfig) (*BenchServe, []string) {
	addr := cfg.addr
	passes, clients, requests, burst := cfg.passes, cfg.clients, cfg.requests, cfg.burst
	minWarmSpeedup, expectShed, scrape, wait := cfg.minWarmSpeedup, cfg.expectShed, cfg.scrape, cfg.wait
	var failures []string
	fail := func(format string, args ...any) { failures = append(failures, fmt.Sprintf(format, args...)) }

	if err := waitHealthy(addr, wait); err != nil {
		fatal(err)
	}
	b := &BenchServe{Addr: addr, Seed: cfg.seed}

	// Phase 1: cold vs warm latency over a fixed plan set. This must run
	// first — anything else (even the smoke requests) would pre-warm the
	// engine's schedule and critical-path tables and skew the cold side.
	lat := latencySet()
	cold, err := measure(addr, lat)
	if err != nil {
		fatal(err)
	}
	b.Cold = cold
	var warmLat []time.Duration
	for p := 0; p < passes; p++ {
		w, err := measureDurations(addr, lat)
		if err != nil {
			fatal(err)
		}
		warmLat = append(warmLat, w...)
	}
	b.Warm = summarize(warmLat)
	if b.Warm.P50Ms > 0 {
		b.WarmSpeedupP50 = b.Cold.P50Ms / b.Warm.P50Ms
	}
	if minWarmSpeedup > 0 && b.WarmSpeedupP50 < minWarmSpeedup {
		fail("warm p50 speedup %.2fx < %.2fx (cold %.1f ms, warm %.1f ms)",
			b.WarmSpeedupP50, minWarmSpeedup, b.Cold.P50Ms, b.Warm.P50Ms)
	}

	// Phase 2: every endpoint answers.
	b.EndpointsOK = true
	if err := smoke(addr); err != nil {
		b.EndpointsOK = false
		fail("endpoint smoke: %v", err)
	}

	// Phase 3: served plans must be byte-identical to in-process plans.
	b.PlanIdentical = true
	for _, req := range equivalenceSet() {
		b.PlanCompared++
		if err := comparePlan(addr, req); err != nil {
			b.PlanIdentical = false
			fail("plan equivalence: %v", err)
		}
	}

	// Phase 4: closed-loop throughput over a warm mixed workload. The
	// request budget scales with the client count unless -duration
	// time-bounds the phase.
	if requests <= 0 {
		requests = 50 * clients
		if requests < 200 {
			requests = 200
		}
	}
	b.Throughput = closedLoop(addr, clients, requests, cfg.duration)
	if b.Throughput.RPS <= 0 || b.Throughput.Requests-b.Throughput.Errors == 0 {
		fail("throughput phase made no successful requests")
	}
	if b.Throughput.Errors > 0 {
		fail("throughput phase: %d errored requests", b.Throughput.Errors)
	}

	// Phase 5: overload burst — clean 429 shedding.
	b.Overload = overload(addr, burst)
	if !b.Overload.Clean {
		fail("overload not clean: %d transport errors, %d unexpected statuses",
			b.Overload.TransportErrors, b.Overload.UnexpectedStatus)
	}
	if expectShed && b.Overload.Shed429 == 0 {
		fail("overload burst of %d against max_inflight=%d shed nothing",
			b.Overload.Offered, b.Overload.MaxInflight)
	}

	// Phase 6: batch equivalence — /v1/plan:batch items must match
	// sequential singles byte-for-byte.
	bb, err := compareBatch(addr)
	if err != nil {
		fail("batch equivalence: %v", err)
	} else {
		b.Batch = &bb
		if !bb.Identical {
			fail("batch items differ from sequential /v1/plan replies")
		}
	}

	// Phase 7: zipfian multi-tenant tail latency.
	if cfg.zipfKeys > 0 {
		zr := cfg.zipfRequests
		if zr <= 0 {
			zr = 4 * cfg.zipfKeys
			if min := 50 * clients; zr < min {
				zr = min
			}
		}
		z := zipfPhase(addr+"/v1/plan", cfg.seed, cfg.zipfKeys, cfg.zipfS, zr, clients, false)
		b.Zipf = &z
		if z.Errors > 0 {
			fail("zipf phase: %d errored requests", z.Errors)
		}
		if cfg.maxZipfP99 > 0 && z.P99Ms > cfg.maxZipfP99 {
			fail("zipf p99 %.1f ms exceeds budget %.1f ms", z.P99Ms, cfg.maxZipfP99)
		}
	}

	var stats serve.StatsResponse
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		fatal(err)
	}
	b.CacheHitRate = stats.Engine.CacheHitRate
	if total := stats.PlanCache.Hits + stats.PlanCache.Misses; total > 0 {
		b.PlanCacheHitRate = float64(stats.PlanCache.Hits) / float64(total)
	}

	// Fold the server's own latency histograms into the report: what the
	// service measured about itself, free of client and transport time.
	if scrape {
		sm, err := scrapeServer(addr)
		if err != nil {
			fail("scrape /metrics: %v", err)
		} else {
			b.Server = sm
			if sm.PlanRequests == 0 {
				fail("scrape /metrics: no plan requests in serve_request_duration_seconds")
			}
		}
	}
	return b, failures
}

// scrapeServer pulls GET /metrics and digests the /v1/plan endpoint's
// latency histograms (hit, miss, and their merge).
func scrapeServer(addr string) (*ServerMetrics, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	parsed := obs.HistogramQuantiles(string(body), "serve_request_duration_seconds")
	hit := parsed[`{cache="hit",endpoint="plan"}`]
	miss := parsed[`{cache="miss",endpoint="plan"}`]
	merged := obs.MergeHistograms(hit, miss)
	toMS := func(seconds float64) float64 { return seconds * 1e3 }
	return &ServerMetrics{
		PlanRequests:  merged.Count,
		PlanP50Ms:     toMS(merged.Quantile(0.50)),
		PlanP99Ms:     toMS(merged.Quantile(0.99)),
		PlanHits:      hit.Count,
		PlanHitP50Ms:  toMS(hit.Quantile(0.50)),
		PlanMisses:    miss.Count,
		PlanMissP50Ms: toMS(miss.Quantile(0.50)),
	}, nil
}

// latencySet is the cold/warm measurement workload: distinct paper-scale
// plan problems, so the first walk misses every cache and is dominated by
// planning work (not HTTP transport).
func latencySet() []serve.PlanRequest {
	var out []serve.PlanRequest
	for _, tc := range []struct {
		model string
		p, mb int
	}{
		{"gpt2", 512, 2048}, {"gpt2", 256, 1024}, {"gpt2", 1024, 2048},
		{"bert48", 128, 1024}, {"gpt2-32", 128, 512}, {"bert48-512", 64, 512},
	} {
		out = append(out, serve.PlanRequest{
			Model:     serve.ModelRef{Preset: tc.model},
			P:         tc.p,
			MiniBatch: tc.mb,
			Platform:  serve.PlatformRef{Preset: "pizdaint"},
		})
	}
	return out
}

// equivalenceSet are the plans compared byte-for-byte against in-process
// chimera.Plan (disjoint from latencySet so its cold numbers stay clean).
func equivalenceSet() []serve.PlanRequest {
	return []serve.PlanRequest{
		{Model: serve.ModelRef{Preset: "bert48"}, P: 16, MiniBatch: 128, MaxB: 16,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		{Model: serve.ModelRef{Preset: "gpt2"}, P: 64, MiniBatch: 512,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		{Model: serve.ModelRef{Preset: "bert48-512"}, P: 16, MiniBatch: 256,
			Platform: serve.PlatformRef{Preset: "v100"}},
	}
}

// comparePlan fetches one served plan and diffs it byte-for-byte against the
// same request planned in-process and encoded through the same codec.
func comparePlan(addr string, req serve.PlanRequest) error {
	status, served, err := postJSON(addr+"/v1/plan", req)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, served)
	}
	resolved, err := req.Resolve()
	if err != nil {
		return err
	}
	preds, err := chimera.Plan(resolved)
	if err != nil {
		return err
	}
	local, err := json.Marshal(serve.NewPlanResponse(resolved.Model.Name, resolved.P, resolved.MiniBatch, preds))
	if err != nil {
		return err
	}
	if !bytes.Equal(served, local) {
		return fmt.Errorf("served /v1/plan differs from in-process chimera.Plan for %s P=%d B̂=%d:\nserved: %s\nlocal:  %s",
			resolved.Model.Name, resolved.P, resolved.MiniBatch, served, local)
	}
	return nil
}

// smoke exercises every endpoint once.
func smoke(addr string) error {
	for _, ep := range []string{"/healthz", "/v1/stats", "/v1/schedules"} {
		var v json.RawMessage
		if err := getJSON(addr+ep, &v); err != nil {
			return fmt.Errorf("GET %s: %w", ep, err)
		}
	}
	posts := []struct {
		path string
		body any
	}{
		{"/v1/plan", serve.PlanRequest{Model: serve.ModelRef{Preset: "bert48"}, P: 8, MiniBatch: 64,
			Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		{"/v1/simulate", serve.SimulateRequest{Model: serve.ModelRef{Preset: "bert48"},
			Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, MicroBatch: 4, W: 2,
			AutoRecompute: true, Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		// Heterogeneous-cluster path: one 1.5× straggler through the
		// per-worker speed-factor field.
		{"/v1/simulate", serve.SimulateRequest{Model: serve.ModelRef{Preset: "bert48"},
			Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, MicroBatch: 4, W: 2,
			AutoRecompute: true, SpeedFactors: []float64{1, 1, 1.5, 1},
			Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		{"/v1/analyze", serve.AnalyzeRequest{Schedule: serve.ScheduleRef{Scheme: "dapple", D: 4, N: 8}}},
		{"/v1/render", serve.RenderRequest{Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, Format: "svg"}},
		// Fleet path: two jobs competing for 8 nodes under the
		// planner-guided default.
		{"/v1/fleet/plan", serve.FleetPlanRequest{
			Cluster: serve.FleetClusterRef{Nodes: 8, Platform: serve.PlatformRef{Preset: "pizdaint"}},
			Jobs: []serve.FleetJobRef{
				{Name: "big", Model: serve.ModelRef{Preset: "bert48"}, MiniBatch: 64, Priority: 2},
				{Name: "small", Model: serve.ModelRef{Preset: "bert48"}, MiniBatch: 16},
			}}},
	}
	for _, p := range posts {
		status, body, err := postJSON(addr+p.path, p.body)
		if err != nil {
			return fmt.Errorf("POST %s: %w", p.path, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("POST %s: status %d: %s", p.path, status, body)
		}
	}
	return nil
}

// measure walks the request set once, sequentially, and summarizes latency.
func measure(addr string, reqs []serve.PlanRequest) (LatencySide, error) {
	ds, err := measureDurations(addr, reqs)
	if err != nil {
		return LatencySide{}, err
	}
	return summarize(ds), nil
}

func measureDurations(addr string, reqs []serve.PlanRequest) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(reqs))
	for _, req := range reqs {
		start := time.Now()
		status, body, err := postJSON(addr+"/v1/plan", req)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("latency set: status %d: %s", status, body)
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// closedLoop has `clients` goroutines issue mixed requests back-to-back
// (each next request starts when the previous reply lands): `total`
// requests, or as many as fit in `duration` when duration > 0. The mix
// schedule is a pure function of the request index, so two runs with equal
// budgets issue identical request sequences.
func closedLoop(addr string, clients, total int, duration time.Duration) Throughput {
	if clients < 1 {
		clients = 1
	}
	mix := []func() (int, error){
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/plan", latencySet()[0])
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/simulate", serve.SimulateRequest{
				Model:      serve.ModelRef{Preset: "bert48"},
				Schedule:   serve.ScheduleRef{Scheme: "chimera", D: 4, N: 8},
				MicroBatch: 4, W: 8, AutoRecompute: true,
				Platform: serve.PlatformRef{Preset: "pizdaint"}})
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/analyze", serve.AnalyzeRequest{
				Schedule: serve.ScheduleRef{Scheme: "gpipe", D: 4, N: 8}})
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/render", serve.RenderRequest{
				Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}})
			return s, err
		},
		func() (int, error) {
			var v json.RawMessage
			err := getJSON(addr+"/v1/schedules", &v)
			return http.StatusOK, err
		},
	}
	jobs := make(chan int)
	var mu sync.Mutex
	var okDurs []time.Duration
	nerr := 0
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			localErr := 0
			for i := range jobs {
				t0 := time.Now()
				status, err := mix[i%len(mix)]()
				d := time.Since(t0)
				if err != nil || status != http.StatusOK {
					localErr++
				} else {
					local = append(local, d)
				}
			}
			mu.Lock()
			okDurs = append(okDurs, local...)
			nerr += localErr
			mu.Unlock()
		}()
	}
	issued := 0
	if duration > 0 {
		deadline := start.Add(duration)
		for i := 0; time.Now().Before(deadline); i++ {
			jobs <- i
			issued++
		}
	} else {
		for i := 0; i < total; i++ {
			jobs <- i
		}
		issued = total
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	s := summarize(okDurs)
	return Throughput{
		Clients: clients, Requests: issued, Seconds: elapsed,
		RPS: float64(issued-nerr) / elapsed, P50Ms: s.P50Ms, P99Ms: s.P99Ms, Errors: nerr,
	}
}

// overload fires a simultaneous burst of one heavy, cold plan request far
// above the server's admission limit and checks shedding is clean.
func overload(addr string, burst int) Overload {
	var stats serve.StatsResponse
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		fatal(err)
	}
	if burst <= 0 {
		burst = 8 * stats.MaxInflight
		if burst < 32 {
			burst = 32
		}
	}
	// Fresh heavy problems, one DISTINCT plan key per request (the inline
	// model name is part of the key): every admitted request computes in
	// full instead of joining one single-flighted plan, so admission slots
	// stay occupied for the whole burst window. With one shared key, the
	// graph-IR replay made plans fast enough that the first could complete
	// and warm the cache before slow dials arrived, and the burst shed
	// nothing.
	heavyModel := func(i int) serve.ModelRef {
		return serve.ModelRef{Name: fmt.Sprintf("gpt2-burst-%d", i),
			Layers: 64, Hidden: 1280, Heads: 16, Vocab: 50257, SeqLen: 632}
	}
	o := Overload{Offered: burst, MaxInflight: stats.MaxInflight}
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			heavy := serve.PlanRequest{
				Model: heavyModel(i), P: 128, MiniBatch: 1024,
				Platform: serve.PlatformRef{Preset: "pizdaint"},
			}
			status, _, err := postJSON(addr+"/v1/plan", heavy)
			if err != nil {
				statuses[i] = -1
				return
			}
			statuses[i] = status
		}(i)
	}
	close(gate)
	wg.Wait()
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			o.Accepted++
		case http.StatusTooManyRequests:
			o.Shed429++
		case -1:
			o.TransportErrors++
		default:
			o.UnexpectedStatus++
		}
	}
	o.Clean = o.TransportErrors == 0 && o.UnexpectedStatus == 0 && o.Accepted+o.Shed429 == o.Offered
	return o
}

// compareBatch issues one /v1/plan:batch and diffs every item against the
// same request issued as a sequential single. The batch goes first, so the
// bytes under test are the batch-computed ones; the singles then answer
// from the response cache the batch populated — exactly the sharing the
// endpoint's equivalence contract promises.
func compareBatch(addr string) (BatchBench, error) {
	reqs := []serve.PlanRequest{
		{Model: serve.ModelRef{Preset: "bert48"}, P: 8, MiniBatch: 64, MaxB: 8,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		{Model: serve.ModelRef{Preset: "gpt2-32"}, P: 16, MiniBatch: 128, MaxB: 8,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		// Duplicate of item 0: the batch plans it once, answers it twice.
		{Model: serve.ModelRef{Preset: "bert48"}, P: 8, MiniBatch: 64, MaxB: 8,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		// Invalid (P=0): the per-item error text must match the single
		// call's ErrorResponse.
		{Model: serve.ModelRef{Preset: "bert48"}, P: 0, MiniBatch: 64,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
	}
	bb := BatchBench{Items: len(reqs), Identical: true}
	status, body, err := postJSON(addr+"/v1/plan:batch", serve.BatchPlanRequest{Requests: reqs})
	if err != nil {
		return bb, err
	}
	if status != http.StatusOK {
		return bb, fmt.Errorf("batch status %d: %s", status, body)
	}
	var resp serve.BatchPlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return bb, err
	}
	if len(resp.Results) != len(reqs) {
		return bb, fmt.Errorf("batch returned %d results for %d items", len(resp.Results), len(reqs))
	}
	for i, req := range reqs {
		sStatus, sBody, err := postJSON(addr+"/v1/plan", req)
		if err != nil {
			return bb, err
		}
		item := resp.Results[i]
		if sStatus == http.StatusOK {
			if item.Error != "" || !bytes.Equal(item.Plan, sBody) {
				bb.Identical = false
			}
			continue
		}
		bb.Errors++
		var e serve.ErrorResponse
		if err := json.Unmarshal(sBody, &e); err != nil {
			return bb, err
		}
		if item.Error != e.Error || len(item.Plan) != 0 {
			bb.Identical = false
		}
	}
	return bb, nil
}

// tenantRequest is tenant k's plan problem: a distinct inline model name
// per tenant gives each key its own plan-cache entry, while the small model
// keeps a cold miss cheap enough that tail latency measures caching, not
// raw planning cost.
func tenantRequest(k int) serve.PlanRequest {
	return serve.PlanRequest{
		Model: serve.ModelRef{Name: fmt.Sprintf("zipf-tenant-%03d", k),
			Layers: 12, Hidden: 512, Heads: 8, Vocab: 8192, SeqLen: 128},
		P: 8, MiniBatch: 64, MaxB: 8,
		Platform: serve.PlatformRef{Preset: "pizdaint"},
	}
}

// zipfSchedule draws n key indexes in [0, keys) from a seeded zipfian
// distribution (rank 0 heaviest). Deterministic per seed.
func zipfSchedule(seed int64, keys, n int, s float64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// zipfPhase replays the seeded zipfian tenant schedule closed-loop against
// planURL with `clients` workers. With retry429, a 429 is back-pressure
// (the target deliberately sheds at tiny admission bounds in router-bench
// mode) and the request retries until admitted — the retries are part of
// the measured latency, as a real client would experience them.
func zipfPhase(planURL string, seed int64, keys int, s float64, n, clients int, retry429 bool) ZipfBench {
	sched := zipfSchedule(seed, keys, n, s)
	counts := make([]int, keys)
	for _, k := range sched {
		counts[k]++
	}
	hot := 0
	for _, c := range counts {
		if c > hot {
			hot = c
		}
	}
	z := ZipfBench{Keys: keys, S: s, Clients: clients, Requests: n,
		HotShare: float64(hot) / float64(n)}
	jobs := make(chan int)
	var mu sync.Mutex
	var durs []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			localErr := 0
			for i := range jobs {
				req := tenantRequest(sched[i])
				t0 := time.Now()
				status, _, err := postJSON(planURL, req)
				for retry429 && err == nil && status == http.StatusTooManyRequests {
					time.Sleep(2 * time.Millisecond)
					status, _, err = postJSON(planURL, req)
				}
				d := time.Since(t0)
				if err != nil || status != http.StatusOK {
					localErr++
				} else {
					local = append(local, d)
				}
			}
			mu.Lock()
			durs = append(durs, local...)
			z.Errors += localErr
			mu.Unlock()
		}()
	}
	for i := range sched {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	z.Seconds = time.Since(start).Seconds()
	sum := summarize(durs)
	z.RPS = float64(n-z.Errors) / z.Seconds
	z.P50Ms, z.P99Ms = sum.P50Ms, sum.P99Ms
	return z
}

// inprocCluster is a self-contained serve fleet plus router, all in this
// process on loopback listeners.
type inprocCluster struct {
	routerURL string
	stop      func()
}

// startCluster boots n serve replicas — each deliberately tiny: one engine
// worker, one admission slot — behind a router. Aggregate admission
// capacity is then linear in n by construction, which is the property the
// scaling measurement verifies the router delivers.
func startCluster(n int) (*inprocCluster, error) {
	ctx, cancel := context.WithCancel(context.Background())
	var urls []string
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			return nil, err
		}
		srv := serve.New(serve.Config{Workers: 1, MaxInflight: 1, CacheCapacity: 8192})
		go srv.Serve(ctx, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	rt, err := router.New(router.Config{Replicas: urls, HealthInterval: time.Second})
	if err != nil {
		cancel()
		return nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, err
	}
	go rt.Serve(ctx, rln)
	c := &inprocCluster{routerURL: "http://" + rln.Addr().String(), stop: cancel}
	if err := waitHealthy(c.routerURL, 10*time.Second); err != nil {
		cancel()
		return nil, err
	}
	return c, nil
}

// rbRequest is scaling-step request i: a distinct inline model name makes
// every request a cold plan on whichever replica owns it, and the problem
// is sized so one plan holds its replica's single admission slot for
// milliseconds of real compute — long enough that concurrent clients
// contend on admission and the measured rps is the fleet's aggregate
// capacity, not loopback HTTP concurrency.
func rbRequest(tag string, i int) serve.PlanRequest {
	return serve.PlanRequest{
		Model: serve.ModelRef{Name: fmt.Sprintf("rb-%s-%05d", tag, i),
			Layers: 48, Hidden: 1024, Heads: 16, Vocab: 30522, SeqLen: 128},
		P: 64, MiniBatch: 512, MaxB: 16,
		Platform: serve.PlatformRef{Preset: "pizdaint"},
	}
}

// scaleStep drives stepRequests cold plans through the cluster's router
// closed-loop and returns the achieved rps. 429s retry (counting into
// retries): with one admission slot per replica they are the expected
// back-pressure, and the steady-state rps is the fleet's aggregate
// admission capacity as seen through the router.
func scaleStep(c *inprocCluster, tag string, stepRequests, clients int, retries *atomic.Int64) float64 {
	jobs := make(chan int)
	var wg sync.WaitGroup
	var errs atomic.Int64
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := rbRequest(tag, i)
				for {
					status, _, err := postJSON(c.routerURL+"/v1/plan", req)
					if err == nil && status == http.StatusTooManyRequests {
						retries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if err != nil || status != http.StatusOK {
						errs.Add(1)
					}
					break
				}
			}
		}()
	}
	for i := 0; i < stepRequests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(stepRequests-int(errs.Load())) / elapsed
}

// runRouterBench is -router-bench mode: the self-contained router scaling
// benchmark (see the package comment).
func runRouterBench(seed int64, replicas, stepRequests, zipfKeys int, zipfS float64, zipfRequests int, minScaling, maxZipfP99 float64) (*BenchServe, []string) {
	var failures []string
	fail := func(format string, args ...any) { failures = append(failures, fmt.Sprintf(format, args...)) }
	if replicas < 1 {
		replicas = 1
	}
	// Enough concurrent clients to saturate every replica's admission slot
	// in both steps; the same count drives the 1-replica step so the two
	// rates differ only in fleet width.
	clients := 4 * replicas
	if clients < 8 {
		clients = 8
	}
	b := &BenchServe{Addr: "in-process", Seed: seed}
	rb := &RouterBench{Replicas: replicas, Clients: clients, Requests: stepRequests, NumCPU: runtime.NumCPU()}
	var retries atomic.Int64

	single, err := startCluster(1)
	if err != nil {
		fatal(err)
	}
	rb.SingleRPS = scaleStep(single, "s", stepRequests, clients, &retries)
	single.stop()

	fleet, err := startCluster(replicas)
	if err != nil {
		fatal(err)
	}
	rb.AggregateRPS = scaleStep(fleet, "a", stepRequests, clients, &retries)
	if rb.SingleRPS > 0 {
		rb.Scaling = rb.AggregateRPS / rb.SingleRPS
	}
	rb.Retries429 = int(retries.Load())

	if zipfKeys > 0 {
		zr := zipfRequests
		if zr <= 0 {
			zr = 4 * zipfKeys
			if zr < 200 {
				zr = 200
			}
		}
		rb.Zipf = zipfPhase(fleet.routerURL+"/v1/plan", seed, zipfKeys, zipfS, zr, clients, true)
		if rb.Zipf.Errors > 0 {
			fail("router zipf phase: %d errored requests", rb.Zipf.Errors)
		}
		if maxZipfP99 > 0 && rb.Zipf.P99Ms > maxZipfP99 {
			fail("router zipf p99 %.1f ms exceeds budget %.1f ms", rb.Zipf.P99Ms, maxZipfP99)
		}
	}
	fleet.stop()

	if rb.AggregateRPS <= 0 {
		fail("router bench made no successful requests")
	}
	if minScaling > 0 && rb.Scaling < minScaling {
		fail("router scaling %.2fx (%.1f -> %.1f rps at %d replicas) below gate %.2fx",
			rb.Scaling, rb.SingleRPS, rb.AggregateRPS, replicas, minScaling)
	}
	b.Router = rb
	return b, failures
}

// ControllerBench is the "controller" section merged into BENCH_fleet.json:
// the live control plane driven through a seeded churn storm, with the
// bit-determinism replay check and per-batch re-plan latency quantiles.
type ControllerBench struct {
	Addr string `json:"addr"`
	Seed int64  `json:"seed"`
	// Nodes is the initial pool; FinalNodes the pool after the storm.
	Nodes      int `json:"nodes"`
	FinalNodes int `json:"final_nodes"`
	Jobs       int `json:"jobs"`
	// Events landed in Batches ingest calls (one per storm slot; a rack
	// cascade makes a slot a multi-event batch).
	Events    int `json:"events"`
	Batches   int `json:"batches"`
	Arrivals  int `json:"arrivals"`
	Fails     int `json:"fails"`
	Drains    int `json:"drains"`
	Joins     int `json:"joins"`
	SpotJoins int `json:"spot_joins"`
	// Cost is the storm's accumulated node-seconds priced per class (from
	// the replay, which bit-matches the live controller).
	Cost      float64 `json:"cost"`
	Residents int     `json:"residents"`
	// Replan quantiles are the server-reported wall time to apply each
	// batch (validation, every re-plan it triggered, log append).
	ReplanP50Ms float64 `json:"replan_p50_ms"`
	ReplanP99Ms float64 `json:"replan_p99_ms"`
	ReplanMaxMs float64 `json:"replan_max_ms"`
	// ReplayIdentical asserts the fetched event log, replayed through the
	// batch simulator in-process, reproduced the controller's processed-event
	// log and final allocation byte for byte. Gated unconditionally.
	ReplayIdentical bool `json:"replay_identical"`
}

// runControllerStorm drives -controller-storm mode (see the package
// comment). It returns the section and any gate failures.
func runControllerStorm(scenarioPath, addr string, seed int64, events int, maxReplanMs float64, wait time.Duration) (*ControllerBench, []string) {
	var failures []string
	fail := func(format string, args ...any) { failures = append(failures, fmt.Sprintf(format, args...)) }

	if scenarioPath == "" {
		fatal(fmt.Errorf("-controller-storm requires -controller-scenario"))
	}
	f, err := os.Open(scenarioPath)
	if err != nil {
		fatal(err)
	}
	var sc serve.FleetScenario
	err = serve.DecodeStrict(f, &sc)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", scenarioPath, err))
	}
	names := make([]string, 0, len(sc.Jobs))
	for _, j := range sc.Jobs {
		names = append(names, j.Name)
	}

	// No target address: run the controller in-process on a loopback
	// listener, exactly as `chimera-fleet -controller` would serve it.
	if addr == "" {
		c, err := controller.New(controller.Config{Scenario: sc})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go c.Serve(ctx, ln)
		addr = "http://" + ln.Addr().String()
	}
	if err := waitHealthy(addr, wait); err != nil {
		fatal(err)
	}

	storm, err := fleet.GenerateStorm(fleet.StormConfig{
		Seed: seed, Jobs: names, Nodes: sc.Cluster.Nodes, Events: events,
	})
	if err != nil {
		fatal(err)
	}
	batches := fleet.StormBatches(storm)

	cb := &ControllerBench{Addr: addr, Seed: seed, Nodes: sc.Cluster.Nodes, Jobs: len(sc.Jobs), Events: len(storm), Batches: len(batches)}
	for _, ev := range storm {
		switch ev.Kind {
		case fleet.EvNodeFail:
			cb.Fails++
		case fleet.EvNodeDrain:
			cb.Drains++
		case fleet.EvNodeJoin:
			cb.Joins++
		default:
			cb.Arrivals++
		}
	}

	// Feed the storm one slot per ingest call, recording the controller's
	// own measure of each batch's apply time.
	var replanMs []float64
	for i, batch := range batches {
		status, body, err := postJSON(addr+"/v1/fleet/events", controller.EventsRequest{Events: serve.NewFleetEventRefs(batch)})
		if err != nil {
			fatal(fmt.Errorf("batch %d: %w", i, err))
		}
		if status != http.StatusOK {
			fatal(fmt.Errorf("batch %d (t=%.0f, %d events): status %d: %s", i, batch[0].At, len(batch), status, body))
		}
		var resp controller.EventsResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			fatal(err)
		}
		replanMs = append(replanMs, resp.ReplanMillis)
	}
	sorted := append([]float64(nil), replanMs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		return sorted[min(i, len(sorted)-1)]
	}
	cb.ReplanP50Ms, cb.ReplanP99Ms, cb.ReplanMaxMs = q(0.50), q(0.99), sorted[len(sorted)-1]
	if maxReplanMs > 0 && cb.ReplanMaxMs > maxReplanMs {
		fail("slowest batch re-plan %.1f ms exceeds budget %.1f ms", cb.ReplanMaxMs, maxReplanMs)
	}

	// Determinism anchor: fetch the recorded log, replay it through the
	// batch simulator on a serial engine, and demand byte identity — the
	// live log must be a prefix of the replay's, and the live allocation
	// must equal the replay's final shares, through the same codec.
	var logResp controller.LogResponse
	if err := getJSON(addr+"/v1/fleet/events/log", &logResp); err != nil {
		fatal(err)
	}
	var alloc controller.AllocationResponse
	if err := getJSON(addr+"/v1/fleet/allocation", &alloc); err != nil {
		fatal(err)
	}
	cb.FinalNodes, cb.Residents = alloc.Nodes, alloc.Residents

	replayEvents, err := serve.ResolveFleetEvents(logResp.Events)
	if err != nil {
		fatal(err)
	}
	esc, err := sc.ResolveLive()
	if err != nil {
		fatal(err)
	}
	esc.Events = replayEvents
	res, err := fleet.SimulateElasticOn(engine.New(engine.Workers(1)), esc)
	if err != nil {
		fatal(fmt.Errorf("replaying the controller's event log: %w", err))
	}
	cb.SpotJoins, cb.Cost = res.SpotJoins, res.Cost

	replayRecords := serve.NewFleetEventRecords(res.Log)
	cb.ReplayIdentical = len(replayRecords) >= len(logResp.Log)
	if cb.ReplayIdentical {
		liveLog, err1 := json.Marshal(logResp.Log)
		replayLog, err2 := json.Marshal(replayRecords[:len(logResp.Log)])
		liveAlloc, err3 := json.Marshal(alloc.Allocation)
		replayAlloc, err4 := json.Marshal(serve.NewFleetFinalShares(res.Final))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			fatal(fmt.Errorf("encoding replay comparison"))
		}
		cb.ReplayIdentical = bytes.Equal(liveLog, replayLog) && bytes.Equal(liveAlloc, replayAlloc)
	}
	if !cb.ReplayIdentical {
		fail("replaying the recorded event log did not reproduce the controller's state byte for byte")
	}
	return cb, failures
}

// mergeSection writes v under key into the JSON object at path, preserving
// any other top-level sections already there (chimera-bench owns the rest
// of BENCH_fleet.json). A missing or non-object file starts fresh.
func mergeSection(path, key string, v any) error {
	doc := map[string]json.RawMessage{}
	if path != "-" {
		if old, err := os.ReadFile(path); err == nil {
			var existing map[string]json.RawMessage
			if json.Unmarshal(old, &existing) == nil && existing != nil {
				doc = existing
			}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	doc[key] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return nil
	}
	return os.WriteFile(path, out, 0o644)
}

func summarize(ds []time.Duration) LatencySide {
	if len(ds) == 0 {
		return LatencySide{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return LatencySide{
		Requests: len(ds),
		P50Ms:    q(0.50),
		P99Ms:    q(0.99),
		MeanMs:   float64(sum) / float64(len(ds)) / float64(time.Millisecond),
	}
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		var reason error
		resp, err := client.Get(addr + "/healthz")
		if err != nil {
			reason = err
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			reason = fmt.Errorf("/healthz answered status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, wait, reason)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postJSON(url string, v any) (int, []byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

func getJSON(url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-loadgen:", err)
	os.Exit(1)
}
