// chimera-loadgen is the closed-loop load generator for chimera-serve. It
// drives every endpoint of a running service and emits BENCH_serve.json —
// the service-layer perf trajectory CI archives alongside BENCH_sweep.json.
//
// One run measures, in order:
//
//  1. cold vs warm latency — a fixed set of /v1/plan requests is walked
//     once against the fresh server (cold caches) and then -passes more
//     times (warm); the p50 ratio is the daemon's amortization win, gated
//     at -min-warm-speedup (default 2×);
//  2. endpoint smoke — every endpoint must answer;
//  3. plan equivalence — served /v1/plan bodies must be byte-identical to
//     encoding an in-process chimera.Plan through the same codec;
//  4. closed-loop throughput — -clients workers issue -requests mixed
//     requests back-to-back (requests/sec, p50/p99);
//  5. overload — a simultaneous burst far above the server's admission
//     limit; every reply must be 200 or 429 (clean shedding, no transport
//     errors), and with -expect-shed at least one 429 must occur.
//
// Any gate failure exits non-zero, so CI can call this binary directly.
// Cold numbers are only meaningful against a freshly started server.
//
// Example:
//
//	chimera-serve -addr 127.0.0.1:8642 -max-inflight 4 &
//	chimera-loadgen -addr http://127.0.0.1:8642 -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"chimera"
	"chimera/internal/obs"
	"chimera/internal/serve"
)

var client = &http.Client{Timeout: 120 * time.Second}

// BenchServe is the machine-readable result (BENCH_serve.json).
type BenchServe struct {
	Addr          string      `json:"addr"`
	EndpointsOK   bool        `json:"endpoints_ok"`
	PlanCompared  int         `json:"plan_compared"`
	PlanIdentical bool        `json:"plan_identical"`
	Cold          LatencySide `json:"cold"`
	Warm          LatencySide `json:"warm"`
	// WarmSpeedupP50 is cold p50 over warm p50 — the cache amortization win.
	WarmSpeedupP50 float64    `json:"warm_speedup_p50"`
	Throughput     Throughput `json:"throughput"`
	Overload       Overload   `json:"overload"`
	// CacheHitRate is the server engine's cumulative hit rate; the plan
	// response cache is reported separately (both from /v1/stats).
	CacheHitRate     float64 `json:"cache_hit_rate"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// Server is the server-side latency view scraped from GET /metrics at
	// the end of the run (nil when -scrape=false). Server-side quantiles
	// exclude client and transport time, so they bound how much of the
	// client-observed latency the service itself spent.
	Server *ServerMetrics `json:"server,omitempty"`
}

// ServerMetrics folds the scraped /v1/plan endpoint histograms into the
// report: the hit/miss split plus the merged endpoint totals.
type ServerMetrics struct {
	// PlanRequests counts plan requests the scraped histograms saw
	// (hits + misses), across every phase of this run.
	PlanRequests uint64 `json:"plan_requests"`
	// PlanP50Ms/PlanP99Ms are quantiles of the merged hit+miss series.
	PlanP50Ms float64 `json:"plan_p50_ms"`
	PlanP99Ms float64 `json:"plan_p99_ms"`
	// The per-disposition splits: hits are cache lookups, misses full
	// planning runs.
	PlanHits      uint64  `json:"plan_hits"`
	PlanHitP50Ms  float64 `json:"plan_hit_p50_ms"`
	PlanMisses    uint64  `json:"plan_misses"`
	PlanMissP50Ms float64 `json:"plan_miss_p50_ms"`
}

// LatencySide summarizes one latency measurement pass.
type LatencySide struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// Throughput summarizes the closed-loop phase.
type Throughput struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"requests_per_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors"`
}

// Overload summarizes the admission-control burst.
type Overload struct {
	Offered          int  `json:"offered"`
	Accepted         int  `json:"accepted"`
	Shed429          int  `json:"shed_429"`
	TransportErrors  int  `json:"transport_errors"`
	UnexpectedStatus int  `json:"unexpected_status"`
	MaxInflight      int  `json:"max_inflight"`
	Clean            bool `json:"clean"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8642", "base URL of a running chimera-serve")
	out := flag.String("out", "BENCH_serve.json", `output path ("-" for stdout)`)
	passes := flag.Int("passes", 3, "warm passes over the latency request set")
	clients := flag.Int("clients", 4, "closed-loop client goroutines")
	requests := flag.Int("requests", 200, "total requests in the throughput phase")
	burst := flag.Int("burst", 0, "overload burst size (0 = max(8×max_inflight, 32))")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 2.0, "gate: warm p50 must beat cold p50 by this factor (0 disables)")
	expectShed := flag.Bool("expect-shed", true, "gate: the overload burst must shed at least one request")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for /healthz at startup")
	scrape := flag.Bool("scrape", true, "scrape GET /metrics at end of run and fold server-side plan latency into the report")
	flag.Parse()

	b, failures := run(*addr, *passes, *clients, *requests, *burst, *minWarmSpeedup, *expectShed, *scrape, *wait)

	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("serve benchmark: %d req/s (p50 %.1f ms, p99 %.1f ms), warm plan p50 %.1fx faster than cold, cache hit rate %.0f%%, shed %d/%d under overload, plan identical: %v\n",
			int(b.Throughput.RPS), b.Throughput.P50Ms, b.Throughput.P99Ms,
			b.WarmSpeedupP50, 100*b.CacheHitRate, b.Overload.Shed429, b.Overload.Offered, b.PlanIdentical)
		if b.Server != nil {
			fmt.Printf("server-side (scraped): %d plan requests, p50 %.2f ms, p99 %.1f ms (hit p50 %.2f ms over %d, miss p50 %.1f ms over %d)\n",
				b.Server.PlanRequests, b.Server.PlanP50Ms, b.Server.PlanP99Ms,
				b.Server.PlanHitP50Ms, b.Server.PlanHits, b.Server.PlanMissP50Ms, b.Server.PlanMisses)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "chimera-loadgen: GATE FAILED:", f)
		}
		os.Exit(1)
	}
}

func run(addr string, passes, clients, requests, burst int, minWarmSpeedup float64, expectShed, scrape bool, wait time.Duration) (*BenchServe, []string) {
	var failures []string
	fail := func(format string, args ...any) { failures = append(failures, fmt.Sprintf(format, args...)) }

	if err := waitHealthy(addr, wait); err != nil {
		fatal(err)
	}
	b := &BenchServe{Addr: addr}

	// Phase 1: cold vs warm latency over a fixed plan set. This must run
	// first — anything else (even the smoke requests) would pre-warm the
	// engine's schedule and critical-path tables and skew the cold side.
	lat := latencySet()
	cold, err := measure(addr, lat)
	if err != nil {
		fatal(err)
	}
	b.Cold = cold
	var warmLat []time.Duration
	for p := 0; p < passes; p++ {
		w, err := measureDurations(addr, lat)
		if err != nil {
			fatal(err)
		}
		warmLat = append(warmLat, w...)
	}
	b.Warm = summarize(warmLat)
	if b.Warm.P50Ms > 0 {
		b.WarmSpeedupP50 = b.Cold.P50Ms / b.Warm.P50Ms
	}
	if minWarmSpeedup > 0 && b.WarmSpeedupP50 < minWarmSpeedup {
		fail("warm p50 speedup %.2fx < %.2fx (cold %.1f ms, warm %.1f ms)",
			b.WarmSpeedupP50, minWarmSpeedup, b.Cold.P50Ms, b.Warm.P50Ms)
	}

	// Phase 2: every endpoint answers.
	b.EndpointsOK = true
	if err := smoke(addr); err != nil {
		b.EndpointsOK = false
		fail("endpoint smoke: %v", err)
	}

	// Phase 3: served plans must be byte-identical to in-process plans.
	b.PlanIdentical = true
	for _, req := range equivalenceSet() {
		b.PlanCompared++
		if err := comparePlan(addr, req); err != nil {
			b.PlanIdentical = false
			fail("plan equivalence: %v", err)
		}
	}

	// Phase 4: closed-loop throughput over a warm mixed workload.
	b.Throughput = closedLoop(addr, clients, requests)
	if b.Throughput.RPS <= 0 || b.Throughput.Requests-b.Throughput.Errors == 0 {
		fail("throughput phase made no successful requests")
	}
	if b.Throughput.Errors > 0 {
		fail("throughput phase: %d errored requests", b.Throughput.Errors)
	}

	// Phase 5: overload burst — clean 429 shedding.
	b.Overload = overload(addr, burst)
	if !b.Overload.Clean {
		fail("overload not clean: %d transport errors, %d unexpected statuses",
			b.Overload.TransportErrors, b.Overload.UnexpectedStatus)
	}
	if expectShed && b.Overload.Shed429 == 0 {
		fail("overload burst of %d against max_inflight=%d shed nothing",
			b.Overload.Offered, b.Overload.MaxInflight)
	}

	var stats serve.StatsResponse
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		fatal(err)
	}
	b.CacheHitRate = stats.Engine.CacheHitRate
	if total := stats.PlanCache.Hits + stats.PlanCache.Misses; total > 0 {
		b.PlanCacheHitRate = float64(stats.PlanCache.Hits) / float64(total)
	}

	// Fold the server's own latency histograms into the report: what the
	// service measured about itself, free of client and transport time.
	if scrape {
		sm, err := scrapeServer(addr)
		if err != nil {
			fail("scrape /metrics: %v", err)
		} else {
			b.Server = sm
			if sm.PlanRequests == 0 {
				fail("scrape /metrics: no plan requests in serve_request_duration_seconds")
			}
		}
	}
	return b, failures
}

// scrapeServer pulls GET /metrics and digests the /v1/plan endpoint's
// latency histograms (hit, miss, and their merge).
func scrapeServer(addr string) (*ServerMetrics, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	parsed := obs.HistogramQuantiles(string(body), "serve_request_duration_seconds")
	hit := parsed[`{cache="hit",endpoint="plan"}`]
	miss := parsed[`{cache="miss",endpoint="plan"}`]
	merged := obs.MergeHistograms(hit, miss)
	toMS := func(seconds float64) float64 { return seconds * 1e3 }
	return &ServerMetrics{
		PlanRequests:  merged.Count,
		PlanP50Ms:     toMS(merged.Quantile(0.50)),
		PlanP99Ms:     toMS(merged.Quantile(0.99)),
		PlanHits:      hit.Count,
		PlanHitP50Ms:  toMS(hit.Quantile(0.50)),
		PlanMisses:    miss.Count,
		PlanMissP50Ms: toMS(miss.Quantile(0.50)),
	}, nil
}

// latencySet is the cold/warm measurement workload: distinct paper-scale
// plan problems, so the first walk misses every cache and is dominated by
// planning work (not HTTP transport).
func latencySet() []serve.PlanRequest {
	var out []serve.PlanRequest
	for _, tc := range []struct {
		model string
		p, mb int
	}{
		{"gpt2", 512, 2048}, {"gpt2", 256, 1024}, {"gpt2", 1024, 2048},
		{"bert48", 128, 1024}, {"gpt2-32", 128, 512}, {"bert48-512", 64, 512},
	} {
		out = append(out, serve.PlanRequest{
			Model:     serve.ModelRef{Preset: tc.model},
			P:         tc.p,
			MiniBatch: tc.mb,
			Platform:  serve.PlatformRef{Preset: "pizdaint"},
		})
	}
	return out
}

// equivalenceSet are the plans compared byte-for-byte against in-process
// chimera.Plan (disjoint from latencySet so its cold numbers stay clean).
func equivalenceSet() []serve.PlanRequest {
	return []serve.PlanRequest{
		{Model: serve.ModelRef{Preset: "bert48"}, P: 16, MiniBatch: 128, MaxB: 16,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		{Model: serve.ModelRef{Preset: "gpt2"}, P: 64, MiniBatch: 512,
			Platform: serve.PlatformRef{Preset: "pizdaint"}},
		{Model: serve.ModelRef{Preset: "bert48-512"}, P: 16, MiniBatch: 256,
			Platform: serve.PlatformRef{Preset: "v100"}},
	}
}

// comparePlan fetches one served plan and diffs it byte-for-byte against the
// same request planned in-process and encoded through the same codec.
func comparePlan(addr string, req serve.PlanRequest) error {
	status, served, err := postJSON(addr+"/v1/plan", req)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, served)
	}
	resolved, err := req.Resolve()
	if err != nil {
		return err
	}
	preds, err := chimera.Plan(resolved)
	if err != nil {
		return err
	}
	local, err := json.Marshal(serve.NewPlanResponse(resolved.Model.Name, resolved.P, resolved.MiniBatch, preds))
	if err != nil {
		return err
	}
	if !bytes.Equal(served, local) {
		return fmt.Errorf("served /v1/plan differs from in-process chimera.Plan for %s P=%d B̂=%d:\nserved: %s\nlocal:  %s",
			resolved.Model.Name, resolved.P, resolved.MiniBatch, served, local)
	}
	return nil
}

// smoke exercises every endpoint once.
func smoke(addr string) error {
	for _, ep := range []string{"/healthz", "/v1/stats", "/v1/schedules"} {
		var v json.RawMessage
		if err := getJSON(addr+ep, &v); err != nil {
			return fmt.Errorf("GET %s: %w", ep, err)
		}
	}
	posts := []struct {
		path string
		body any
	}{
		{"/v1/plan", serve.PlanRequest{Model: serve.ModelRef{Preset: "bert48"}, P: 8, MiniBatch: 64,
			Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		{"/v1/simulate", serve.SimulateRequest{Model: serve.ModelRef{Preset: "bert48"},
			Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, MicroBatch: 4, W: 2,
			AutoRecompute: true, Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		// Heterogeneous-cluster path: one 1.5× straggler through the
		// per-worker speed-factor field.
		{"/v1/simulate", serve.SimulateRequest{Model: serve.ModelRef{Preset: "bert48"},
			Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, MicroBatch: 4, W: 2,
			AutoRecompute: true, SpeedFactors: []float64{1, 1, 1.5, 1},
			Platform: serve.PlatformRef{Preset: "pizdaint"}}},
		{"/v1/analyze", serve.AnalyzeRequest{Schedule: serve.ScheduleRef{Scheme: "dapple", D: 4, N: 8}}},
		{"/v1/render", serve.RenderRequest{Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}, Format: "svg"}},
		// Fleet path: two jobs competing for 8 nodes under the
		// planner-guided default.
		{"/v1/fleet/plan", serve.FleetPlanRequest{
			Cluster: serve.FleetClusterRef{Nodes: 8, Platform: serve.PlatformRef{Preset: "pizdaint"}},
			Jobs: []serve.FleetJobRef{
				{Name: "big", Model: serve.ModelRef{Preset: "bert48"}, MiniBatch: 64, Priority: 2},
				{Name: "small", Model: serve.ModelRef{Preset: "bert48"}, MiniBatch: 16},
			}}},
	}
	for _, p := range posts {
		status, body, err := postJSON(addr+p.path, p.body)
		if err != nil {
			return fmt.Errorf("POST %s: %w", p.path, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("POST %s: status %d: %s", p.path, status, body)
		}
	}
	return nil
}

// measure walks the request set once, sequentially, and summarizes latency.
func measure(addr string, reqs []serve.PlanRequest) (LatencySide, error) {
	ds, err := measureDurations(addr, reqs)
	if err != nil {
		return LatencySide{}, err
	}
	return summarize(ds), nil
}

func measureDurations(addr string, reqs []serve.PlanRequest) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(reqs))
	for _, req := range reqs {
		start := time.Now()
		status, body, err := postJSON(addr+"/v1/plan", req)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("latency set: status %d: %s", status, body)
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// closedLoop has `clients` goroutines issue `total` mixed requests
// back-to-back (each next request starts when the previous reply lands).
func closedLoop(addr string, clients, total int) Throughput {
	if clients < 1 {
		clients = 1
	}
	mix := []func() (int, error){
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/plan", latencySet()[0])
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/simulate", serve.SimulateRequest{
				Model:      serve.ModelRef{Preset: "bert48"},
				Schedule:   serve.ScheduleRef{Scheme: "chimera", D: 4, N: 8},
				MicroBatch: 4, W: 8, AutoRecompute: true,
				Platform: serve.PlatformRef{Preset: "pizdaint"}})
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/analyze", serve.AnalyzeRequest{
				Schedule: serve.ScheduleRef{Scheme: "gpipe", D: 4, N: 8}})
			return s, err
		},
		func() (int, error) {
			s, _, err := postJSON(addr+"/v1/render", serve.RenderRequest{
				Schedule: serve.ScheduleRef{Scheme: "chimera", D: 4, N: 4}})
			return s, err
		},
		func() (int, error) {
			var v json.RawMessage
			err := getJSON(addr+"/v1/schedules", &v)
			return http.StatusOK, err
		},
	}
	jobs := make(chan int)
	durs := make([]time.Duration, total)
	errs := make([]bool, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				status, err := mix[i%len(mix)]()
				durs[i] = time.Since(t0)
				if err != nil || status != http.StatusOK {
					errs[i] = true
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var okDurs []time.Duration
	nerr := 0
	for i, d := range durs {
		if errs[i] {
			nerr++
			continue
		}
		okDurs = append(okDurs, d)
	}
	s := summarize(okDurs)
	return Throughput{
		Clients: clients, Requests: total, Seconds: elapsed,
		RPS: float64(total-nerr) / elapsed, P50Ms: s.P50Ms, P99Ms: s.P99Ms, Errors: nerr,
	}
}

// overload fires a simultaneous burst of one heavy, cold plan request far
// above the server's admission limit and checks shedding is clean.
func overload(addr string, burst int) Overload {
	var stats serve.StatsResponse
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		fatal(err)
	}
	if burst <= 0 {
		burst = 8 * stats.MaxInflight
		if burst < 32 {
			burst = 32
		}
	}
	// Fresh heavy problems, one DISTINCT plan key per request (the inline
	// model name is part of the key): every admitted request computes in
	// full instead of joining one single-flighted plan, so admission slots
	// stay occupied for the whole burst window. With one shared key, the
	// graph-IR replay made plans fast enough that the first could complete
	// and warm the cache before slow dials arrived, and the burst shed
	// nothing.
	heavyModel := func(i int) serve.ModelRef {
		return serve.ModelRef{Name: fmt.Sprintf("gpt2-burst-%d", i),
			Layers: 64, Hidden: 1280, Heads: 16, Vocab: 50257, SeqLen: 632}
	}
	o := Overload{Offered: burst, MaxInflight: stats.MaxInflight}
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			heavy := serve.PlanRequest{
				Model: heavyModel(i), P: 128, MiniBatch: 1024,
				Platform: serve.PlatformRef{Preset: "pizdaint"},
			}
			status, _, err := postJSON(addr+"/v1/plan", heavy)
			if err != nil {
				statuses[i] = -1
				return
			}
			statuses[i] = status
		}(i)
	}
	close(gate)
	wg.Wait()
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			o.Accepted++
		case http.StatusTooManyRequests:
			o.Shed429++
		case -1:
			o.TransportErrors++
		default:
			o.UnexpectedStatus++
		}
	}
	o.Clean = o.TransportErrors == 0 && o.UnexpectedStatus == 0 && o.Accepted+o.Shed429 == o.Offered
	return o
}

func summarize(ds []time.Duration) LatencySide {
	if len(ds) == 0 {
		return LatencySide{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return LatencySide{
		Requests: len(ds),
		P50Ms:    q(0.50),
		P99Ms:    q(0.99),
		MeanMs:   float64(sum) / float64(len(ds)) / float64(time.Millisecond),
	}
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		var reason error
		resp, err := client.Get(addr + "/healthz")
		if err != nil {
			reason = err
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			reason = fmt.Errorf("/healthz answered status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, wait, reason)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postJSON(url string, v any) (int, []byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

func getJSON(url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-loadgen:", err)
	os.Exit(1)
}
