// chimera-bench regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4) and prints them in order. Use -only to select a
// single experiment by id substring, -train for the real-training demo
// iteration count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only experiments whose id contains this substring")
	train := flag.Int("train", 12, "iterations for the real-training equivalence demo")
	flag.Parse()
	for _, fn := range experiments.All(*train) {
		rep, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
			os.Exit(1)
		}
		if *only != "" && !strings.Contains(rep.ID, *only) {
			continue
		}
		rep.Fprint(os.Stdout)
	}
}
