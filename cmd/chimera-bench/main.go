// chimera-bench regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4) and prints them in order. Use -only to select a
// single experiment by id substring, -train for the real-training demo
// iteration count.
//
// With -json it instead runs the concurrent sweep-engine benchmark (serial
// uncached reference vs the worker-pool engine on a ≥64-configuration
// tuning grid) and writes the machine-readable result to -out (default
// BENCH_sweep.json) for CI to archive; a summary goes to stdout. The
// result embeds a fleet section (the multi-job allocator benchmark), which
// is additionally written alone to -fleet-out (default BENCH_fleet.json).
// -fleet-only skips the sweep and runs just the fleet benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only experiments whose id contains this substring")
	train := flag.Int("train", 12, "iterations for the real-training equivalence demo")
	jsonMode := flag.Bool("json", false, "run the sweep-engine benchmark and emit JSON instead of the figures")
	out := flag.String("out", "BENCH_sweep.json", "output path for -json (\"-\" for stdout)")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "output path for the fleet section (\"-\" for stdout; with -json, \"\" skips writing it)")
	fleetOnly := flag.Bool("fleet-only", false, "run only the fleet benchmark (skips the sweep) and write -fleet-out")
	passes := flag.Int("passes", 0, "grid passes for -json (0 = default)")
	flag.Parse()

	if *jsonMode || *fleetOnly {
		var err error
		if *fleetOnly {
			err = runFleetBench(*fleetOut)
		} else {
			err = runSweepBench(*out, *fleetOut, *passes)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chimera-bench:", err)
			os.Exit(1)
		}
		return
	}

	for _, fn := range experiments.All(*train) {
		rep, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
			os.Exit(1)
		}
		if *only != "" && !strings.Contains(rep.ID, *only) {
			continue
		}
		rep.Fprint(os.Stdout)
	}
}

func runSweepBench(out, fleetOut string, passes int) error {
	b, err := experiments.BenchmarkSweep(passes)
	if err != nil {
		return err
	}
	if err := writeJSON(out, b); err != nil {
		return err
	}
	if out == "-" {
		// "-" is the machine-readable contract: the JSON document alone
		// on stdout (the fleet section is embedded in it), no summaries.
		return nil
	}
	fmt.Printf("sweep benchmark: %d configs × %d passes — serial %.1f configs/s, parallel %.1f configs/s (%.2fx, %d workers, cache hit rate %.0f%%), identical ranking: %v\n",
		b.Configs, b.Passes, b.Serial.ConfigsPerSec, b.Parallel.ConfigsPerSec,
		b.Speedup, b.Parallel.Workers, 100*b.Parallel.CacheHitRate, b.IdenticalRanking)
	if b.Replay != nil {
		fmt.Printf("replay benchmark: graph pass vs map interpreter, min D=16 speedup %.1fx over %d cases\n",
			b.Replay.MinSpeedupD16, len(b.Replay.Cases))
	}
	if b.Schedulers != nil {
		fmt.Println(b.Schedulers)
	}
	if b.Obs != nil {
		fmt.Printf("obs benchmark: instrumented sweep %.2fx plain (%d series recorded), identical outcomes: %v\n",
			b.Obs.Overhead, b.Obs.SeriesRecorded, b.Obs.IdenticalOutcomes)
	}
	fmt.Printf("wrote %s\n", out)
	if b.Fleet != nil && fleetOut != "" {
		if err := writeJSON(fleetOut, b.Fleet); err != nil {
			return err
		}
		if fleetOut != "-" {
			fmt.Println(b.Fleet)
			fmt.Printf("wrote %s\n", fleetOut)
		}
	}
	return nil
}

func runFleetBench(fleetOut string) error {
	if fleetOut == "" {
		return fmt.Errorf("-fleet-only needs -fleet-out (\"-\" for stdout)")
	}
	b, err := experiments.BenchmarkFleet()
	if err != nil {
		return err
	}
	if err := writeJSON(fleetOut, b); err != nil {
		return err
	}
	if fleetOut != "-" {
		fmt.Println(b)
		fmt.Printf("wrote %s\n", fleetOut)
	}
	return nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
