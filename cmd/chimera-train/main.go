// chimera-train trains a small transformer for real under a pipeline
// schedule (goroutine workers, message passing, gradient allreduce) and
// optionally verifies gradient equivalence with sequential mini-batch SGD —
// the paper's convergence-friendliness claim, executable.
//
// Example:
//
//	chimera-train -scheme chimera -d 4 -n 4 -w 2 -iters 20 -verify
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/pipeline"
	"chimera/internal/schedule"
)

func main() {
	scheme := flag.String("scheme", "chimera", "pipeline scheme (synchronous): chimera|gpipe|dapple|gems|1f1b")
	d := flag.Int("d", 4, "pipeline stages D")
	n := flag.Int("n", 4, "micro-batches per worker N")
	w := flag.Int("w", 1, "data-parallel width W")
	f := flag.Int("f", 1, "chimera pipelines per direction")
	b := flag.Int("b", 2, "micro-batch size (sequences)")
	iters := flag.Int("iters", 20, "training iterations")
	lr := flag.Float64("lr", 0.05, "learning rate (momentum 0.9)")
	verify := flag.Bool("verify", true, "compare against sequential mini-batch SGD")
	layers := flag.Int("layers", 4, "transformer layers")
	dim := flag.Int("dim", 16, "model width")
	heads := flag.Int("heads", 4, "attention heads")
	seqLen := flag.Int("seq", 8, "sequence length")
	vocab := flag.Int("vocab", 31, "vocabulary size")
	seed := flag.Int64("seed", 7, "weight and data seed")
	flag.Parse()

	var s *schedule.Schedule
	var err error
	if *scheme == "chimera" {
		s, err = schedule.Chimera(schedule.ChimeraConfig{D: *d, N: *n, F: *f, Concat: schedule.Direct})
	} else {
		s, err = schedule.ByName(*scheme, *d, *n)
	}
	check(err)

	spec := pipeline.ModelSpec{Vocab: *vocab, Dim: *dim, Heads: *heads, SeqLen: *seqLen, Layers: *layers, Seed: *seed}
	newOpt := func() optim.Optimizer { return &optim.Momentum{LR: *lr, Mu: 0.9} }
	tr, err := pipeline.New(pipeline.Config{
		Schedule: s, W: *w, Spec: spec, MicroBatch: *b, NewOptimizer: newOpt,
	})
	check(err)
	var ref *pipeline.Reference
	if *verify {
		ref, err = pipeline.NewReference(spec, *d, *b, newOpt)
		check(err)
	}
	stream := data.NewStream(*vocab, *seqLen, *seed+1)
	fmt.Printf("training %s (D=%d N=%d W=%d B=%d, %d workers) on a %d-layer transformer\n",
		*scheme, *d, *n, *w, *b, *w**d, *layers)
	for i := 0; i < *iters; i++ {
		batch := stream.Next(*b * *n * *w)
		loss, err := tr.TrainIteration(batch)
		check(err)
		line := fmt.Sprintf("iter %3d  loss %.4f", i, loss)
		if ref != nil {
			refLoss, err := ref.TrainIteration(batch)
			check(err)
			line += fmt.Sprintf("  sequential %.4f  |Δ| %.2e", refLoss, math.Abs(loss-refLoss))
		}
		fmt.Println(line)
	}
	if ref != nil {
		var worst float64
		for st := 0; st < *d; st++ {
			a, b := tr.StageWeights(st, 0), ref.StageWeights(st)
			for i := range a {
				if diff := math.Abs(float64(a[i]) - float64(b[i])); diff > worst {
					worst = diff
				}
			}
		}
		fmt.Printf("max weight deviation from sequential SGD after %d iterations: %.2e\n", *iters, worst)
		if worst > 1e-3 {
			fmt.Println("WARNING: deviation above tolerance — synchronous equivalence violated")
			os.Exit(2)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-train:", err)
		os.Exit(1)
	}
}
