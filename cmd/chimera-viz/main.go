// chimera-viz renders pipeline schedules as ASCII timelines (the paper's
// Figures 2/3/7/8) or Chrome-trace JSON.
//
// Example:
//
//	chimera-viz -scheme chimera -d 4 -n 4
//	chimera-viz -scheme chimera -d 8 -n 8 -f 2 -equal
//	chimera-viz -scheme dapple -d 4 -n 4 -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"chimera/internal/schedule"
	"chimera/internal/trace"
)

func main() {
	scheme := flag.String("scheme", "chimera", "scheme name")
	d := flag.Int("d", 4, "pipeline stages D")
	n := flag.Int("n", 4, "micro-batches per worker N")
	f := flag.Int("f", 1, "chimera pipelines per direction")
	concat := flag.String("concat", "direct", "chimera N>D method: direct|doubling|halving")
	equal := flag.Bool("equal", false, "equal forward/backward cost (default: backward = 2× forward)")
	chrome := flag.String("chrome", "", "write Chrome-trace JSON to this file instead")
	svg := flag.String("svg", "", "write an SVG Gantt chart to this file instead")
	flag.Parse()

	var s *schedule.Schedule
	var err error
	if *scheme == "chimera" {
		mode := schedule.Direct
		switch *concat {
		case "doubling":
			mode = schedule.ForwardDoubling
		case "halving":
			mode = schedule.BackwardHalving
		}
		s, err = schedule.Chimera(schedule.ChimeraConfig{D: *d, N: *n, F: *f, Concat: mode})
	} else {
		s, err = schedule.ByName(*scheme, *d, *n)
	}
	check(err)
	cm := schedule.UnitPractical
	if *equal {
		cm = schedule.UnitEqual
	}
	if *svg != "" {
		out, err := trace.SVG(s, cm)
		check(err)
		check(os.WriteFile(*svg, []byte(out), 0o644))
		fmt.Printf("wrote %s (%d bytes)\n", *svg, len(out))
		return
	}
	if *chrome != "" {
		raw, err := trace.ChromeTrace(s, cm)
		check(err)
		check(os.WriteFile(*chrome, raw, 0o644))
		fmt.Printf("wrote %s (%d bytes); open in chrome://tracing or Perfetto\n", *chrome, len(raw))
		return
	}
	art, err := trace.ASCII(s, cm)
	check(err)
	fmt.Print(art)
	a, err := schedule.Analyze(s)
	check(err)
	fmt.Println(a)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-viz:", err)
		os.Exit(1)
	}
}
