package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the chimera-fleet golden files from current output")

// golden drives run() with the given arguments and compares its stdout
// against the committed golden file; -update regenerates the files after an
// intentional output change (mirroring the trace SVG golden pattern).
func golden(t *testing.T, name string, args ...string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/chimera-fleet -update` once): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output drifted from golden %s.\nIf the change is intentional, regenerate with -update.\ngot:\n%s", path, out.Bytes())
	}
}

// TestGoldenScenarioPlanJSON pins chimera-fleet -json on the committed
// example scenario byte-for-byte — the CLI side of the "one serialization
// path" contract with /v1/fleet/plan.
func TestGoldenScenarioPlanJSON(t *testing.T) {
	golden(t, "scenario_plan.json",
		"-scenario", "../../examples/fleet/scenario.json", "-json", "-workers", "1")
}

// TestGoldenScenarioSimJSON pins the classic trace replay of the example
// scenario.
func TestGoldenScenarioSimJSON(t *testing.T) {
	golden(t, "scenario_sim.json",
		"-scenario", "../../examples/fleet/scenario.json", "-simulate", "-json", "-workers", "1")
}

// TestGoldenElasticSimJSON pins the elastic churn replay of the committed
// elastic example, including the event log's total order.
func TestGoldenElasticSimJSON(t *testing.T) {
	golden(t, "elastic_sim.json",
		"-scenario", "../../examples/fleet/elastic.json", "-simulate", "-json", "-workers", "1")
}

// TestRunRejectsMissingScenario: the tool fails loudly without -scenario,
// while -h prints usage and exits clean, and elastic-only flags on a
// classic trace are rejected instead of silently ignored.
func TestRunRejectsMissingScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, &out); err == nil {
		t.Fatal("run without -scenario succeeded")
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h is not an error: %v", err)
	}
	err := run([]string{"-scenario", "../../examples/fleet/scenario.json", "-simulate", "-penalty", "30"}, &out)
	if err == nil {
		t.Fatal("-penalty on a classic trace was silently ignored")
	}
}

// TestTraceFlagOverridesScenario: -trace substitutes the event trace, so
// the classic example replays an elastic churn trace without editing the
// scenario file.
func TestTraceFlagOverridesScenario(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(trace, []byte(`[
		{"at": 0, "job": "bert-production", "work": 5000},
		{"at": 10, "kind": "node_fail", "node": 0},
		{"at": 20, "kind": "node_join"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-scenario", "../../examples/fleet/scenario.json",
		"-trace", trace, "-simulate", "-json", "-workers", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "node_fail"`, `"fails": 1`, `"joins": 1`} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("elastic output missing %q:\n%s", want, out.Bytes())
		}
	}
}
