// chimera-fleet allocates a cluster across a fleet of training jobs and —
// when the scenario carries a trace — replays it through the deterministic
// fleet simulator.
//
// The scenario file is JSON (see examples/fleet/scenario.json and
// examples/fleet/elastic.json): a cluster (node count, platform preset or
// inline device+network, optional per-node speed factors), a job list
// (model preset or inline config, target mini-batch, priority, optional
// deadline and node cap), an allocation policy, and either a classic
// arrival trace ("trace": {at, job, work} entries) or an elastic event
// trace ("events": arrivals mixed with node_fail / node_drain / node_join
// churn, plus migration_penalty, aging_tau and replan knobs). Without
// -simulate the tool prints the static allocation for the job list; with
// -simulate it replays the trace — elastic scenarios route through the
// incremental re-planner — and reports makespan, per-job waits, restarts,
// and utilization.
//
// -trace FILE substitutes the scenario's trace with an event trace loaded
// from FILE (a JSON array of event objects), so one cluster + job
// vocabulary can replay many churn traces. -replan and -penalty override
// the scenario's re-plan mode and migration penalty.
//
// With -json it emits the same wire shapes chimera-serve's /v1/fleet/plan
// and /v1/fleet/simulate serve (one serialization path, internal/serve's
// codecs), so a served fleet plan or simulation is byte-identical to this
// tool's output for the same scenario.
//
// -controller switches from batch replay to the live fleet control plane:
// the scenario (which must carry no trace or events — the controller
// ingests churn over HTTP) seeds a long-running daemon on -addr serving
// POST /v1/fleet/events and /v1/fleet/whatif, GET /v1/fleet/allocation,
// /v1/fleet/events/log, /v1/fleet/stream (SSE), /healthz, /readyz and
// /metrics. Replaying the recorded event log through -simulate reproduces
// the controller's final allocation bit-identically. SIGINT/SIGTERM shut
// the daemon down gracefully.
//
// Example:
//
//	chimera-fleet -scenario examples/fleet/scenario.json
//	chimera-fleet -scenario examples/fleet/scenario.json -policy equal-split
//	chimera-fleet -scenario examples/fleet/elastic.json -simulate -json
//	chimera-fleet -scenario examples/fleet/elastic.json -simulate -replan full -penalty 30
//	chimera-fleet -scenario examples/fleet/scenario.json -controller -addr 127.0.0.1:8643
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"chimera/internal/controller"
	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chimera-fleet:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a testable seam: the golden-file tests
// drive it exactly as main does.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("chimera-fleet", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "path to the JSON scenario file (required)")
	tracePath := fs.String("trace", "", "path to a JSON event-trace file overriding the scenario's trace")
	policy := fs.String("policy", "", "override the scenario's allocation policy: "+strings.Join(fleet.Policies(), "|"))
	replan := fs.String("replan", "", "override the elastic re-plan mode: "+strings.Join(fleet.ReplanModes(), "|"))
	penalty := fs.Float64("penalty", -1, "override the elastic migration penalty (seconds per pipeline stage; -1 = scenario's)")
	simulate := fs.Bool("simulate", false, "replay the scenario's trace instead of planning the static job list")
	jsonOut := fs.Bool("json", false, "emit the /v1/fleet wire formats instead of the table")
	workers := fs.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	controllerMode := fs.Bool("controller", false, "run the live fleet controller daemon instead of a one-shot plan or replay")
	addr := fs.String("addr", "127.0.0.1:8643", "controller listen address (with -controller)")
	capacity := fs.Int("cache-capacity", 4096, "per-table engine cache bound with LRU eviction (0 = unbounded; with -controller)")
	maxInflight := fs.Int("max-inflight", 0, "controller admission limit on concurrent mutating requests (0 = 4×GOMAXPROCS; with -controller)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not an error
		}
		return err
	}

	if *scenario == "" {
		return fmt.Errorf("-scenario is required (see examples/fleet/scenario.json)")
	}
	var sc serve.FleetScenario
	if err := decodeFile(*scenario, &sc); err != nil {
		return err
	}
	if *tracePath != "" {
		var events []serve.FleetEventRef
		if err := decodeFile(*tracePath, &events); err != nil {
			return err
		}
		sc.Trace, sc.Events = nil, events
	}
	if *policy != "" {
		sc.Policy = *policy
	}
	if *replan != "" {
		sc.Replan = *replan
	}
	if *penalty >= 0 {
		sc.MigrationPenalty = *penalty
	}

	if *controllerMode {
		return runController(sc, *addr, *workers, *capacity, *maxInflight)
	}

	eng := engine.Default()
	if *workers > 0 {
		eng = engine.New(engine.Workers(*workers))
	}
	alloc := fleet.NewAllocator(eng)

	if *simulate && sc.Elastic() {
		return simulateElastic(alloc, sc, *jsonOut, stdout)
	}
	if *simulate {
		return simulateClassic(alloc, sc, *jsonOut, stdout)
	}

	req, err := serve.FleetPlanRequest{Cluster: sc.Cluster, Jobs: sc.Jobs, Policy: sc.Policy}.Resolve()
	if err != nil {
		return err
	}
	al, err := alloc.Allocate(req)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emit(stdout, serve.NewFleetPlanResponse(al))
	}
	fmt.Fprint(stdout, al)
	return nil
}

// runController is -controller mode: the scenario seeds a live control
// plane that ingests churn over HTTP and re-plans incrementally per batch.
// It blocks until SIGINT/SIGTERM, then drains and exits.
func runController(sc serve.FleetScenario, addr string, workers, capacity, maxInflight int) error {
	c, err := controller.New(controller.Config{
		Scenario:      sc,
		Workers:       workers,
		CacheCapacity: capacity,
		MaxInflight:   maxInflight,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("chimera-fleet: controller listening on %s (%d nodes, %d jobs, max inflight=%d)",
		addr, sc.Cluster.Nodes, len(sc.Jobs), c.MaxInflight())
	if err := c.ListenAndServe(ctx, addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("chimera-fleet: controller stopped")
	return nil
}

func simulateClassic(alloc *fleet.Allocator, sc serve.FleetScenario, jsonOut bool, stdout io.Writer) error {
	resolved, err := sc.Resolve()
	if err != nil {
		return err
	}
	res, err := alloc.Simulate(resolved)
	if err != nil {
		return err
	}
	if jsonOut {
		return emit(stdout, serve.NewFleetSimResponse(res))
	}
	fmt.Fprintf(stdout, "replayed %d arrivals on %d nodes under %s: makespan %.1fs, utilization %.0f%%, mean wait %.1fs (%d events, %d reallocations)\n",
		len(res.Jobs), res.Nodes, res.Policy, res.Makespan, 100*res.Utilization, res.MeanWait, res.Events, res.Reallocations)
	for _, run := range res.Jobs {
		deadline := ""
		if run.MissedDeadline {
			deadline = "  MISSED DEADLINE"
		}
		fmt.Fprintf(stdout, "  trace[%d] %-16s arrive %8.1fs  start %8.1fs  done %8.1fs  wait %6.1fs%s\n",
			run.Trace, run.Job, run.ArriveAt, run.StartAt, run.DoneAt, run.Wait, deadline)
	}
	return nil
}

func simulateElastic(alloc *fleet.Allocator, sc serve.FleetScenario, jsonOut bool, stdout io.Writer) error {
	resolved, err := sc.ResolveElastic()
	if err != nil {
		return err
	}
	res, err := alloc.SimulateElastic(resolved)
	if err != nil {
		return err
	}
	if jsonOut {
		return emit(stdout, serve.NewFleetElasticResponse(res))
	}
	fmt.Fprintf(stdout, "replayed %d events (%d fails, %d drains, %d joins) on %d→%d nodes under %s/%s:\n",
		res.Events, res.Fails, res.Drains, res.Joins, res.InitialNodes, res.FinalNodes, res.Policy, res.Replan)
	fmt.Fprintf(stdout, "  makespan %.1fs, utilization %.0f%%, mean wait %.1fs, %d migrations costing %.1fs debt (%d reallocations, %d job evaluations)\n",
		res.Makespan, 100*res.Utilization, res.MeanWait, res.Migrations, res.PenaltySeconds, res.Reallocations, res.JobsEvaluated)
	for _, run := range res.Jobs {
		deadline := ""
		if run.MissedDeadline {
			deadline = "  MISSED DEADLINE"
		}
		fmt.Fprintf(stdout, "  events[%d] %-16s arrive %8.1fs  start %8.1fs  done %8.1fs  wait %6.1fs  restarts %d (%.1fs)%s\n",
			run.Trace, run.Job, run.ArriveAt, run.StartAt, run.DoneAt, run.Wait, run.Restarts, run.PenaltySeconds, deadline)
	}
	if len(res.Final) > 0 {
		fmt.Fprintln(stdout, "  final allocation:")
		for _, fs := range res.Final {
			fmt.Fprintf(stdout, "    %-16s nodes %-3d W=%-3d D=%-3d B=%-3d %6.1f seq/s (weighted %.1f)\n",
				fs.Job, fs.Nodes, fs.W, fs.D, fs.B, fs.Throughput, fs.Weighted)
		}
	}
	return nil
}

func decodeFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return serve.DecodeStrict(f, v)
}

func emit(stdout io.Writer, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, string(raw))
	return err
}
