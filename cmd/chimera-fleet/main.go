// chimera-fleet allocates a cluster across a fleet of training jobs and —
// when the scenario carries an arrival trace — replays it through the
// deterministic fleet simulator.
//
// The scenario file is JSON (see examples/fleet/scenario.json): a cluster
// (node count, platform preset or inline device+network, optional per-node
// speed factors), a job list (model preset or inline config, target
// mini-batch, priority, optional deadline), an allocation policy, and an
// optional trace of {at, job, work} arrivals. Without -simulate the tool
// prints the static allocation for the job list; with -simulate it replays
// the trace and reports makespan, per-job waits, and utilization.
//
// With -json it emits the same wire shapes chimera-serve's /v1/fleet/plan
// serves (one serialization path, internal/serve's codecs), so a served
// fleet plan is byte-identical to this tool's output for the same scenario.
//
// Example:
//
//	chimera-fleet -scenario examples/fleet/scenario.json
//	chimera-fleet -scenario examples/fleet/scenario.json -policy equal-split
//	chimera-fleet -scenario examples/fleet/scenario.json -simulate -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/serve"
)

func main() {
	scenario := flag.String("scenario", "", "path to the JSON scenario file (required)")
	policy := flag.String("policy", "", "override the scenario's allocation policy: "+strings.Join(fleet.Policies(), "|"))
	simulate := flag.Bool("simulate", false, "replay the scenario's arrival trace instead of planning the static job list")
	jsonOut := flag.Bool("json", false, "emit the /v1/fleet/plan wire format instead of the table")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "chimera-fleet: -scenario is required (see examples/fleet/scenario.json)")
		os.Exit(2)
	}
	f, err := os.Open(*scenario)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var sc serve.FleetScenario
	if err := serve.DecodeStrict(f, &sc); err != nil {
		fatal(err)
	}
	if *policy != "" {
		sc.Policy = *policy
	}
	resolved, err := sc.Resolve()
	if err != nil {
		fatal(err)
	}
	eng := engine.Default()
	if *workers > 0 {
		eng = engine.New(engine.Workers(*workers))
	}
	alloc := fleet.NewAllocator(eng)

	if *simulate {
		res, err := alloc.Simulate(resolved)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emit(serve.NewFleetSimResponse(res))
			return
		}
		fmt.Printf("replayed %d arrivals on %d nodes under %s: makespan %.1fs, utilization %.0f%%, mean wait %.1fs (%d events, %d reallocations)\n",
			len(res.Jobs), res.Nodes, res.Policy, res.Makespan, 100*res.Utilization, res.MeanWait, res.Events, res.Reallocations)
		for _, run := range res.Jobs {
			deadline := ""
			if run.MissedDeadline {
				deadline = "  MISSED DEADLINE"
			}
			fmt.Printf("  trace[%d] %-16s arrive %8.1fs  start %8.1fs  done %8.1fs  wait %6.1fs%s\n",
				run.Trace, run.Job, run.ArriveAt, run.StartAt, run.DoneAt, run.Wait, deadline)
		}
		return
	}

	al, err := alloc.Allocate(fleet.Request{Cluster: resolved.Cluster, Jobs: resolved.Jobs, Policy: resolved.Policy})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emit(serve.NewFleetPlanResponse(al))
		return
	}
	fmt.Print(al)
}

func emit(v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(raw))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-fleet:", err)
	os.Exit(1)
}
