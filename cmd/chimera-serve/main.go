// chimera-serve is the long-running planning service: it exposes the §3.4
// planner, the cluster simulator, schedule analysis and timeline rendering
// over HTTP/JSON, amortizing the shared engine's memoized schedules and
// evaluations across every request instead of each process paying
// cold-cache sweep costs.
//
// Endpoints: POST /v1/plan, /v1/fleet/plan, /v1/simulate, /v1/analyze,
// /v1/render; GET /v1/schedules, /v1/stats, /healthz. Heavy endpoints pass admission
// control: beyond -max-inflight concurrent requests the server sheds with
// 429 instead of queueing. SIGINT/SIGTERM drain in-flight work before exit.
//
// Observability: GET /metrics serves Prometheus text-format counters,
// gauges and latency histograms for the serving, engine and fleet layers;
// GET /debug/requests dumps the flight recorder's last -flight-recorder
// request spans with per-phase timings; -pprof mounts /debug/pprof/.
// Every response carries an X-Request-Id header (honored if the client
// sent one), and -log-format selects the per-request access-log encoding
// on stderr ("json", "text", or "none").
//
// Example:
//
//	chimera-serve -addr 127.0.0.1:8642 -cache-capacity 4096 &
//	curl -s http://127.0.0.1:8642/v1/plan -d \
//	  '{"model":{"preset":"bert48"},"p":32,"mini_batch":512,"platform":{"preset":"pizdaint"}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"chimera/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8642", "listen address")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	capacity := flag.Int("cache-capacity", 4096, "per-table engine cache bound with LRU eviction (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "admission limit on concurrent heavy requests (0 = 4×GOMAXPROCS)")
	drain := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown wait for in-flight requests")
	drainDelay := flag.Duration("drain-delay", 0, "hold the listener open (readiness reporting draining) this long after shutdown begins, so routers observe /readyz flip before connections are refused")
	snapshotPath := flag.String("snapshot", "", "cache-snapshot file written by POST /v1/cache/snapshot (empty disables the endpoint)")
	restore := flag.Bool("restore", false, "restore the response caches from the -snapshot file at startup (a missing or invalid file logs a warning and starts cold)")
	logFormat := flag.String("log-format", "none", `access-log encoding on stderr: "json", "text", or "none"`)
	flightRecorder := flag.Int("flight-recorder", 256, "recent request spans retained for GET /debug/requests (negative disables)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	cfg := serve.Config{
		Workers:        *workers,
		CacheCapacity:  *capacity,
		MaxInflight:    *maxInflight,
		DrainTimeout:   *drain,
		DrainDelay:     *drainDelay,
		SnapshotPath:   *snapshotPath,
		FlightRecorder: *flightRecorder,
		EnablePprof:    *enablePprof,
	}
	switch *logFormat {
	case "json", "text":
		cfg.AccessLog = os.Stderr
		cfg.LogFormat = *logFormat
	case "none", "":
	default:
		fmt.Fprintf(os.Stderr, "chimera-serve: unknown -log-format %q (have json, text, none)\n", *logFormat)
		os.Exit(2)
	}
	s := serve.New(cfg)
	if *restore {
		if *snapshotPath == "" {
			fmt.Fprintln(os.Stderr, "chimera-serve: -restore requires -snapshot")
			os.Exit(2)
		}
		switch n, err := s.RestoreSnapshot(*snapshotPath); {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("chimera-serve: no snapshot at %s, starting cold", *snapshotPath)
		case err != nil:
			// An unreadable snapshot is a warm-start optimization lost, not
			// an outage: log and start cold.
			log.Printf("chimera-serve: snapshot restore failed (%v), starting cold", err)
		default:
			log.Printf("chimera-serve: restored %d cache entries from %s", n, *snapshotPath)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("chimera-serve: version %s (%s), listening on %s (engine workers=%d, cache capacity=%d, max inflight=%d)",
		serve.BuildVersion(), runtime.Version(), *addr, s.Engine().WorkerCount(), *capacity, s.MaxInflight())
	if err := s.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "chimera-serve:", err)
		os.Exit(1)
	}
	log.Printf("chimera-serve: drained and stopped")
}
