// chimera-router fronts a fleet of chimera-serve replicas with a
// consistent-hash request router. Requests route by the same canonical
// cache keys the serve tier memoizes under (a resolved /v1/plan request
// always lands on the replica whose caches already hold it), replica
// readiness is polled via /readyz so draining replicas are routed around
// without remapping the ring, and failed forwards retry on the key's next
// distinct ring owner.
//
// Endpoints: every serve planning endpoint is proxied (/v1/plan,
// /v1/plan:batch with per-item scatter/gather, /v1/fleet/plan,
// /v1/fleet/simulate, /v1/simulate, /v1/analyze, /v1/render,
// /v1/schedules); GET /healthz reports the router's replica view and
// GET /metrics serves the router_* series (per-replica request, error and
// failover counters, readiness gauges, forward-latency histograms).
//
// Example:
//
//	chimera-serve -addr 127.0.0.1:8642 &
//	chimera-serve -addr 127.0.0.1:8643 &
//	chimera-router -addr 127.0.0.1:8640 \
//	  -replicas http://127.0.0.1:8642,http://127.0.0.1:8643
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chimera/internal/router"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8640", "listen address")
	replicas := flag.String("replicas", "", "comma-separated chimera-serve base URLs (required)")
	vnodes := flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per replica on the hash ring")
	maxAttempts := flag.Int("max-attempts", 0, "distinct replicas tried per request (0 = min(3, replicas))")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica /readyz poll period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe /readyz timeout")
	flag.Parse()

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	if len(reps) == 0 {
		fmt.Fprintln(os.Stderr, "chimera-router: -replicas is required (comma-separated base URLs)")
		os.Exit(2)
	}

	rt, err := router.New(router.Config{
		Replicas:       reps,
		VNodes:         *vnodes,
		MaxAttempts:    *maxAttempts,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-router:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("chimera-router: listening on %s, %d replicas (%s), vnodes=%d",
		*addr, len(rt.Ring().Replicas()), strings.Join(rt.Ring().Replicas(), ", "), *vnodes)
	if err := rt.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "chimera-router:", err)
		os.Exit(1)
	}
	log.Printf("chimera-router: stopped")
}
