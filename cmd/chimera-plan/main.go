// chimera-plan runs the §3.4 performance model to select the best (W, D, B)
// Chimera configuration for a worker count and mini-batch size. With -json
// it emits the same wire shape chimera-serve's /v1/plan serves (one
// serialization path, internal/serve's codecs).
//
// Example:
//
//	chimera-plan -model bert48 -p 32 -bhat 512
//	chimera-plan -model bert48 -p 32 -bhat 512 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chimera/internal/engine"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/serve"
	"chimera/internal/sim"
)

func main() {
	modelName := flag.String("model", "bert48", "model: bert48|bert48-512|gpt2|gpt2-32")
	p := flag.Int("p", 32, "total workers P = W·D")
	bhat := flag.Int("bhat", 512, "mini-batch size B̂")
	maxB := flag.Int("maxb", 64, "micro-batch search ceiling")
	platform := flag.String("platform", "pizdaint", "platform: pizdaint|v100")
	speed := flag.String("speed", "", "per-worker speed factors, comma-separated; fixes pipeline depth D to the list length")
	scheduler := flag.String("scheduler", "", "placement policy: "+strings.Join(schedule.Schedulers(), "|")+"|auto (list policies re-shape the pipeline around -speed stragglers; auto sweeps all)")
	workers := flag.Int("workers", 0, "planner worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit the /v1/plan wire format instead of the table")
	flag.Parse()

	m, err := serve.ResolveModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-plan:", err)
		os.Exit(1)
	}
	dev, net, err := serve.ResolvePlatform(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-plan:", err)
		os.Exit(1)
	}
	// Round-trip the factor list through decode so a malformed -speed fails
	// here with a clear error, not inside every plan candidate.
	factors, err := sim.DecodeSpeedFactors(*speed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-plan:", err)
		os.Exit(1)
	}
	req := perfmodel.PlanRequest{
		Model: m, P: *p, MiniBatch: *bhat, MaxB: *maxB,
		SpeedFactors: sim.EncodeSpeedFactors(factors),
		Scheduler:    *scheduler,
		Device:       dev, Network: net,
	}
	eng := engine.Default()
	if *workers > 0 {
		eng = engine.New(engine.Workers(*workers))
	}
	preds, err := perfmodel.PlanOn(eng, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-plan:", err)
		os.Exit(1)
	}
	if *jsonOut {
		raw, err := json.MarshalIndent(serve.NewPlanResponse(m.Name, *p, *bhat, preds), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chimera-plan:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}
	fmt.Printf("%s on %d workers, B̂=%d — Chimera configurations ranked by Eq. 1:\n", m.Name, *p, *bhat)
	fmt.Printf("%-4s %-4s %-4s %-4s %-10s %-9s %-12s %-12s %s\n", "W", "D", "B", "N", "recompute", "placement", "iter (s)", "seq/s", "critical path")
	for i, pr := range preds {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		pol := pr.Scheduler
		if pol == "" {
			pol = "fixed"
		}
		fmt.Printf("%s %-4d %-4d %-4d %-4d %-10v %-9s %-12.4f %-12.1f Cf=%d Cb=%d\n",
			marker, pr.W, pr.D, pr.B, pr.N, pr.Recompute, pol, pr.IterTime, pr.Throughput, pr.Cf, pr.Cb)
	}
}
