// chimera-plan runs the §3.4 performance model to select the best (W, D, B)
// Chimera configuration for a worker count and mini-batch size.
//
// Example:
//
//	chimera-plan -model bert48 -p 32 -bhat 512
package main

import (
	"flag"
	"fmt"
	"os"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/perfmodel"
	"chimera/internal/sim"
)

func main() {
	modelName := flag.String("model", "bert48", "model: bert48|gpt2|gpt2-32")
	p := flag.Int("p", 32, "total workers P = W·D")
	bhat := flag.Int("bhat", 512, "mini-batch size B̂")
	maxB := flag.Int("maxb", 64, "micro-batch search ceiling")
	platform := flag.String("platform", "pizdaint", "platform: pizdaint|v100")
	workers := flag.Int("workers", 0, "planner worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	var m model.Config
	switch *modelName {
	case "bert48":
		m = model.BERT48()
	case "gpt2":
		m = model.GPT2()
	case "gpt2-32":
		m = model.GPT2Small32()
	default:
		fmt.Fprintf(os.Stderr, "chimera-plan: unknown model %q\n", *modelName)
		os.Exit(1)
	}
	req := perfmodel.PlanRequest{
		Model: m, P: *p, MiniBatch: *bhat, MaxB: *maxB,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
	if *platform == "v100" {
		req.Device, req.Network = sim.V100Node(), sim.NVLinkIBNetwork()
	}
	eng := engine.Default()
	if *workers > 0 {
		eng = engine.New(engine.Workers(*workers))
	}
	preds, err := perfmodel.PlanOn(eng, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-plan:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %d workers, B̂=%d — Chimera configurations ranked by Eq. 1:\n", m.Name, *p, *bhat)
	fmt.Printf("%-4s %-4s %-4s %-4s %-10s %-12s %-12s %s\n", "W", "D", "B", "N", "recompute", "iter (s)", "seq/s", "critical path")
	for i, pr := range preds {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Printf("%s %-4d %-4d %-4d %-4d %-10v %-12.4f %-12.1f Cf=%d Cb=%d\n",
			marker, pr.W, pr.D, pr.B, pr.N, pr.Recompute, pr.IterTime, pr.Throughput, pr.Cf, pr.Cb)
	}
}
