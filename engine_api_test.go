package chimera_test

import (
	"reflect"
	"testing"

	"chimera"
)

// sweepSpecs builds a small mixed grid through the public facade.
func sweepSpecs() []chimera.SweepSpec {
	m := chimera.BERT48()
	dev, net := chimera.PizDaintNode(), chimera.AriesNetwork()
	var specs []chimera.SweepSpec
	for _, scheme := range []string{"chimera", "dapple", "gpipe"} {
		for _, d := range []int{2, 4, 8} {
			w := 16 / d
			b := 2
			n := 128 / (w * b)
			specs = append(specs, chimera.SweepSpec{
				Sched:      chimera.SweepScheduleKey{Scheme: scheme, D: d, N: n},
				Model:      m,
				MicroBatch: b, W: w,
				AutoRecompute: true,
				Device:        dev, Network: net,
			})
		}
	}
	return specs
}

// TestFacadeSweep: the facade sweep returns one outcome per spec, in order,
// identical to a serial private engine.
func TestFacadeSweep(t *testing.T) {
	specs := sweepSpecs()
	got := chimera.Sweep(specs)
	if len(got) != len(specs) {
		t.Fatalf("%d outcomes for %d specs", len(got), len(specs))
	}
	want := chimera.NewEngine(1).Sweep(specs)
	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("outcome %d: error mismatch: %v vs %v", i, want[i].Err, got[i].Err)
		}
		if want[i].Err != nil {
			continue
		}
		if !reflect.DeepEqual(want[i].Result, got[i].Result) {
			t.Fatalf("outcome %d: shared-engine sweep differs from serial engine", i)
		}
	}
}

// TestFacadePlanParallel: PlanParallel on a private engine matches Plan on
// the shared default.
func TestFacadePlanParallel(t *testing.T) {
	req := chimera.PlanRequest{
		Model: chimera.BERT48(), P: 16, MiniBatch: 128,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(), MaxB: 16,
	}
	def, err := chimera.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	private, err := chimera.PlanParallel(chimera.NewEngine(2), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, private) {
		t.Fatal("PlanParallel diverged from Plan")
	}
}

// TestFacadeEngineStats: the default engine accumulates cache traffic once
// sweeps run through it.
func TestFacadeEngineStats(t *testing.T) {
	specs := sweepSpecs()
	chimera.Sweep(specs)
	chimera.Sweep(specs)
	st := chimera.DefaultEngine().Stats()
	if st.OutcomeHits == 0 {
		t.Fatal("repeat facade sweep produced no cache hits")
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("implausible hit rate %f", st.HitRate())
	}
}
