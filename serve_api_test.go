package chimera_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chimera"
	"chimera/internal/serve"
)

// TestFacadeServer: the facade-constructed service answers /healthz and
// serves /v1/plan byte-identical to the in-process chimera.Plan call
// encoded through the same codec — the service adds transport, not
// behavior.
func TestFacadeServer(t *testing.T) {
	srv := chimera.NewServer(chimera.ServeConfig{CacheCapacity: 256, MaxInflight: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,"platform":{"preset":"pizdaint"}}`
	post, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(post.Body)
	post.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", post.StatusCode, served)
	}

	preds, err := chimera.Plan(chimera.PlanRequest{
		Model: chimera.BERT48(), P: 16, MiniBatch: 128, MaxB: 16,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serve.NewPlanResponse("Bert-48", 16, 128, preds))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served plan differs from chimera.Plan:\nserved: %s\nlocal:  %s", served, want)
	}
}
