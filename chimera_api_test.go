package chimera_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"chimera"
)

// TestFacadeScheduleRoundTrip exercises the public API end to end: build,
// render, analyze.
func TestFacadeScheduleRoundTrip(t *testing.T) {
	s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	art, err := chimera.RenderASCII(s, chimera.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art, "P3") {
		t.Fatal("render missing workers")
	}
	a, err := chimera.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.BubbleRatioEqual != 0.2 {
		t.Fatalf("bubble %v", a.BubbleRatioEqual)
	}
	var buf bytes.Buffer
	if err := chimera.WriteChromeTrace(&buf, s, chimera.UnitEqual); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestFacadeSchemes covers the by-name constructors.
func TestFacadeSchemes(t *testing.T) {
	if len(chimera.Schemes()) != 6 {
		t.Fatalf("schemes: %v", chimera.Schemes())
	}
	for _, name := range chimera.Schemes() {
		if _, err := chimera.NewSchedule(name, 4, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := chimera.NewSchedule("bogus", 4, 4); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

// TestFacadeSimulateAndPlan runs the simulator and the planner through the
// facade.
func TestFacadeSimulateAndPlan(t *testing.T) {
	s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 8, Concat: chimera.Direct})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chimera.Simulate(chimera.SimConfig{
		Model: chimera.BERT48(), Schedule: s, MicroBatch: 8, W: 8,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("degenerate simulation")
	}
	res2, recompute, err := chimera.SimulateAuto(chimera.SimConfig{
		Model: chimera.GPT2(), Schedule: mustGPT2Sched(t), MicroBatch: 1, W: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.OOM {
		t.Fatal("auto-run should have resolved memory via recompute")
	}
	_ = recompute
	preds, err := chimera.Plan(chimera.PlanRequest{
		Model: chimera.BERT48(), P: 32, MiniBatch: 512,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 || preds[0].Throughput <= 0 {
		t.Fatal("empty plan")
	}
}

func mustGPT2Sched(t *testing.T) *chimera.Schedule {
	t.Helper()
	s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 8, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFacadeTraining trains through the facade and checks equivalence.
func TestFacadeTraining(t *testing.T) {
	spec := chimera.ModelSpec{Vocab: 17, Dim: 8, Heads: 2, SeqLen: 4, Layers: 4, Seed: 7}
	s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	newOpt := func() chimera.Optimizer { return chimera.NewMomentum(0.05, 0.9) }
	tr, err := chimera.NewTrainer(chimera.TrainerConfig{
		Schedule: s, W: 1, Spec: spec, MicroBatch: 2, NewOptimizer: newOpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chimera.NewReference(spec, 4, 2, newOpt)
	if err != nil {
		t.Fatal(err)
	}
	batch := chimera.NewStream(17, 4, 9).Next(2 * 4)
	l1, err := tr.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ref.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1-l2) > 1e-5 {
		t.Fatalf("facade training diverges: %v vs %v", l1, l2)
	}
}

// TestFacadeOptimizers sanity-checks the exported constructors.
func TestFacadeOptimizers(t *testing.T) {
	for _, o := range []chimera.Optimizer{chimera.NewSGD(0.1), chimera.NewMomentum(0.1, 0.9), chimera.NewAdam(0.01)} {
		if o == nil {
			t.Fatal("nil optimizer")
		}
	}
}

// TestFacadeModels: the model zoo matches the paper's Table 4 scale.
func TestFacadeModels(t *testing.T) {
	if p := chimera.GPT2().TotalParams(); p < 1_300_000_000 {
		t.Fatalf("gpt2 params %d", p)
	}
	if p := chimera.BERT48().TotalParams(); p < 600_000_000 {
		t.Fatalf("bert params %d", p)
	}
	if chimera.GPT2Small32().Layers != 32 {
		t.Fatal("gpt2-32 layer count")
	}
}
