module chimera

go 1.24
