package schedule

import "sort"

// CostModel supplies integer op durations for timeline replay. Durations are
// in arbitrary units (the unit-cost analyses use F=1 or F=2/B=2 style
// ratios; the simulator package uses nanoseconds).
type CostModel struct {
	// FUnit is the duration of a forward pass over one micro-batch.
	FUnit int64
	// BUnit is the duration of a backward pass over one micro-batch
	// (typically 2×FUnit; 3×FUnit with activation recomputation).
	BUnit int64
	// P2P is the inter-stage communication latency added to every
	// cross-worker dependency edge (0 for pure bubble analysis).
	P2P int64
}

// UnitEqual is the equal-workload model used in the paper's construction
// figures (forward == backward == 1 slot).
var UnitEqual = CostModel{FUnit: 1, BUnit: 1}

// UnitPractical is the practical model (backward ≈ 2× forward, Fig. 2).
var UnitPractical = CostModel{FUnit: 1, BUnit: 2}

// Cost returns the duration of op o under the model, honouring the
// forward-doubling and backward-halving variants: a doubled forward carries
// two micro-batches; a halved backward processes half a micro-batch. This is
// the one authoritative unit-cost rule — graph replay and the perfmodel's
// Eq. 1 probes all route through it.
func (cm CostModel) Cost(o Op) int64 {
	if o.Kind == Forward {
		return cm.FUnit * int64(len(o.Micros))
	}
	c := cm.BUnit * int64(len(o.Micros))
	if o.Half != 0 {
		c = (c + 1) / 2
	}
	return c
}

// Timeline is the result of replaying a schedule under a cost model.
type Timeline struct {
	// Start[w][i] and End[w][i] bracket op i of worker w.
	Start, End [][]int64
	// Makespan is the completion time of the last op.
	Makespan int64
	// BusyTime[w] is the total op duration on worker w.
	BusyTime []int64

	// arena links a graph-replay timeline back to its recyclable scratch
	// (nil for timelines built elsewhere, e.g. the reference interpreter);
	// released guards against double-Release.
	arena    *replayArena
	released bool
}

// Release hands the timeline's arrays back to the owning graph's arena pool
// so the next replay reuses them without allocating. Callers must not read
// the timeline after releasing it. Safe to call on any timeline: one whose
// arrays were not pooled (the reference interpreter's, or a nil receiver)
// is left untouched, and a second Release is a no-op.
func (tl *Timeline) Release() {
	if tl == nil || tl.arena == nil || tl.released {
		return
	}
	tl.released = true
	arenaPool.Put(tl.arena)
}

// depKey identifies the data token produced by an op for one micro-batch
// (half identifies half-micro-batch backward chains under backward halving).
type depKey struct {
	kind  Kind
	micro int
	stage int
	half  uint8
}

// ReplayConfig generalizes replay costing: OpCost gives the duration of an
// op on its worker; EdgeCost gives the communication delay added to a
// dependency edge that crosses workers (e.g. α + β·activationBytes).
type ReplayConfig struct {
	OpCost   func(worker int, op Op) int64
	EdgeCost func(op Op) int64
}

// replayConfig lifts a uniform cost model into the ReplayWith seam.
func (cm CostModel) replayConfig() ReplayConfig {
	return ReplayConfig{
		OpCost:   func(_ int, op Op) int64 { return cm.Cost(op) },
		EdgeCost: func(Op) int64 { return cm.P2P },
	}
}

// Replay computes start/end times for every op under a uniform cost model.
// See ReplayWith for the execution semantics.
func (s *Schedule) Replay(cm CostModel) (*Timeline, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return g.Replay(cm), nil
}

// ReplayWith computes start/end times for every op: each worker executes its
// op list strictly in order; an op starts when the worker is free and all
// its data dependencies (forward from previous stage, backward from next
// stage, loss dependency at the last stage) have completed, plus edge cost
// for cross-worker edges. Returns an error if the schedule deadlocks
// (circular wait or unresolvable dependency), which indicates a construction
// bug; the error names the blocked op, its worker and the unmet token.
//
// The dependency structure is a pure function of the schedule, so it is
// compiled once into a Graph (see graph.go) and every replay is a flat
// topological pass over it. internal/refinterp retains the original
// map-based interpreter as the equivalence reference.
func (s *Schedule) ReplayWith(rc ReplayConfig) (*Timeline, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return g.ReplayWith(rc), nil
}

// BubbleRatio returns the fraction of worker-time spent idle within the
// makespan: (D·makespan − Σ busy) / (D·makespan). This matches the paper's
// definition (bubble overhead over overall runtime).
func (tl *Timeline) BubbleRatio() float64 {
	total := tl.Makespan * int64(len(tl.BusyTime))
	if total == 0 {
		return 0
	}
	var busy int64
	for _, b := range tl.BusyTime {
		busy += b
	}
	return float64(total-busy) / float64(total)
}

// WorkerBubbles returns per-worker idle time within the makespan.
func (tl *Timeline) WorkerBubbles() []int64 {
	out := make([]int64, len(tl.BusyTime))
	for w, b := range tl.BusyTime {
		out[w] = tl.Makespan - b
	}
	return out
}

// ActivationHighWater returns, per worker, the peak number of in-flight
// micro-batch activations (forward done on this worker, backward not yet),
// in units of one micro-batch's activation memory Ma. Order-derived: timing
// does not change residency, only the op order does.
//
// Under forward doubling, a doubled forward holds 2 units (the paper's 2×
// activation cost). Under backward halving, each half backward releases ½.
func (s *Schedule) ActivationHighWater() []float64 {
	out := make([]float64, s.D)
	for w, ops := range s.Workers {
		var live, peak float64
		for _, op := range ops {
			switch {
			case op.Kind == Forward:
				live += float64(len(op.Micros))
			case op.Half != 0:
				live -= 0.5 * float64(len(op.Micros))
			default:
				live -= float64(len(op.Micros))
			}
			if live > peak {
				peak = live
			}
		}
		out[w] = peak
	}
	return out
}

// WeightStashHighWater returns, per worker, the number of weight versions a
// PipeDream-style asynchronous scheme must stash: one per in-flight
// micro-batch, lower-bounded by 1 (the live weights). For synchronous
// schemes this equals 1 and is not used.
func (s *Schedule) WeightStashHighWater() []int {
	hw := s.ActivationHighWater()
	out := make([]int, len(hw))
	for i, v := range hw {
		n := int(v)
		if n < 1 {
			n = 1
		}
		out[i] = n
	}
	return out
}

// sortWorkerOps orders each worker's list by construction priority, with a
// deterministic tiebreak (replica, kind, micro). Generators call this after
// emitting ops with prio slots; most emit in already-sorted order, which the
// pre-scan detects to skip the sort (schedule construction is the uncached
// sweep's hot path, and sort.SliceStable on sorted input still pays the
// full comparator traffic).
func (s *Schedule) sortWorkerOps() {
	for w := range s.Workers {
		ops := s.Workers[w]
		sorted := true
		for i := 1; i < len(ops); i++ {
			if opLess(ops[i], ops[i-1]) {
				sorted = false
				break
			}
		}
		if sorted {
			continue
		}
		sort.SliceStable(ops, func(i, j int) bool { return opLess(ops[i], ops[j]) })
	}
}

func opLess(a, b Op) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.Kind != b.Kind {
		return a.Kind == Forward
	}
	if a.Replica != b.Replica {
		return a.Replica < b.Replica
	}
	if a.Micros[0] != b.Micros[0] {
		return a.Micros[0] < b.Micros[0]
	}
	return a.Half < b.Half
}

// ComputeEnd returns per-worker completion time of the final op.
func (tl *Timeline) ComputeEnd() []int64 {
	out := make([]int64, len(tl.End))
	for w, ends := range tl.End {
		for _, e := range ends {
			if e > out[w] {
				out[w] = e
			}
		}
	}
	return out
}

// GradReady returns, per worker, the completion time of the last backward op
// of each (replica, stage) hosted there: the moment that stage replica's
// weight gradients are fully accumulated and their allreduce may be launched
// eagerly (§3.2 of the paper).
func (s *Schedule) GradReady(tl *Timeline) []map[StagePlacement]int64 {
	out := make([]map[StagePlacement]int64, s.D)
	for w, ops := range s.Workers {
		out[w] = make(map[StagePlacement]int64)
		for i, op := range ops {
			if op.Kind != Backward {
				continue
			}
			key := StagePlacement{Replica: op.Replica, Stage: op.Stage}
			if tl.End[w][i] > out[w][key] {
				out[w][key] = tl.End[w][i]
			}
		}
	}
	return out
}
