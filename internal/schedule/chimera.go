package schedule

import "fmt"

// ConcatMode selects how Chimera scales past N = D micro-batches (§3.5).
type ConcatMode int

const (
	// Direct concatenates basic scheduling units; with backward ≈ 2×
	// forward this leaves intermediate bubbles that in practice absorb p2p
	// communication.
	Direct ConcatMode = iota
	// ForwardDoubling runs two micro-batches per forward pass (double
	// activation memory, usually paired with recomputation).
	ForwardDoubling
	// BackwardHalving keeps the doubled-forward schedule shape but halves
	// the micro-batch size instead (no extra activation memory, lower
	// compute efficiency).
	BackwardHalving
)

func (m ConcatMode) String() string {
	switch m {
	case Direct:
		return "direct"
	case ForwardDoubling:
		return "forward-doubling"
	case BackwardHalving:
		return "backward-halving"
	default:
		return fmt.Sprintf("ConcatMode(%d)", int(m))
	}
}

// ChimeraConfig parameterizes the Chimera generator.
type ChimeraConfig struct {
	// D is the number of pipeline stages; must be even (paper assumption).
	D int
	// N is the number of micro-batches per worker per iteration.
	N int
	// F is the number of pipelines per direction (default 1). 2F model
	// replicas are maintained; F must divide D/2.
	F int
	// Concat selects the N > D scaling method.
	Concat ConcatMode
}

// Chimera builds the bidirectional pipeline schedule of §3.1–§3.6.
func Chimera(cfg ChimeraConfig) (*Schedule, error) {
	d, n, f := cfg.D, cfg.N, cfg.F
	if f == 0 {
		f = 1
	}
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("chimera: D must be even and ≥2, got %d", d)
	}
	if (d/2)%f != 0 {
		return nil, fmt.Errorf("chimera: F=%d must divide D/2=%d", f, d/2)
	}
	if n < 1 {
		return nil, fmt.Errorf("chimera: N must be ≥1, got %d", n)
	}
	s := &Schedule{
		Scheme:      "chimera",
		D:           d,
		N:           n,
		F:           f,
		Workers:     make([][]Op, d),
		Synchronous: true,
	}
	for i := 0; i < f; i++ {
		s.Replicas = append(s.Replicas, downMap(d, f, i))
	}
	for i := 0; i < f; i++ {
		s.Replicas = append(s.Replicas, upMap(d, f, i))
	}
	s.MicroReplica = make([]int, n)

	switch {
	case n <= d || cfg.Concat == Direct:
		buildChimeraDirect(s, cfg, f)
	case cfg.Concat == ForwardDoubling || cfg.Concat == BackwardHalving:
		if n%d != 0 {
			return nil, fmt.Errorf("chimera: %v needs N a multiple of D, got N=%d D=%d", cfg.Concat, n, d)
		}
		buildChimeraDoubling(s, cfg, f)
		s.DoubledForward = true
		s.HalvedBackward = cfg.Concat == BackwardHalving
	default:
		return nil, fmt.Errorf("chimera: unknown concat mode %v", cfg.Concat)
	}
	s.sortWorkerOps()
	return s, nil
}

// emitPair records a forward+backward pair placement for micro-batch set
// micros of replica r, using the base-unit slot formulas offset by
// unitOffset.
//
// Base-unit slotting (equal-cost model): within pipeline-local order m,
// every pipeline — regardless of f — places F(m, s) at slot s + 2m and
// B(m, s) at 2D−1−s + 2m, mapped to workers by its replica map. This merge
// is conflict-free for even D and any f dividing D/2:
//
//   - forward slots of down pipelines on worker w all share parity(w) (the
//     rotation step D/f is even), up forwards parity(w)+1 — no F/F clash;
//     same-direction pipelines occupy disjoint offset ranges of width
//     D/f − 2 < D/f;
//   - down backwards share parity(w)+1 and up backwards parity(w) — no B/B
//     clash;
//   - a down-B vs up-F clash (same parity) would need D − (i−j)·D/f ≤
//     D/f − 2, impossible for i−j < f.
//
// The per-worker idle is D/f − 2 slots, i.e. Table 3's bubble ratio
// (D−2f)/(2fN+D−2f) = (D/f−2)/(2N+D/f−2). TestChimeraFConflictFree
// exercises this over many (D, f).
func (s *Schedule) emitPair(r int, micros []int, m int, phase, unitOffset int) {
	d := s.D
	rm := s.Replicas[r]
	for st := 0; st < d; st++ {
		w := rm.WorkerOf[st]
		fSlot := st + 2*m + phase + unitOffset
		bSlot := 2*d - 1 - st + 2*m + phase + unitOffset
		s.Workers[w] = append(s.Workers[w],
			Op{Kind: Forward, Stage: st, Replica: r, Micros: internMicros(micros), prio: fSlot})
		s.Workers[w] = append(s.Workers[w],
			Op{Kind: Backward, Stage: st, Replica: r, Micros: internMicros(micros), prio: bSlot})
	}
	for _, mb := range micros {
		s.MicroReplica[mb] = r
	}
}

// buildChimeraDirect handles N ≤ D and direct concatenation of basic units.
// Micro-batches are dealt to the 2f pipelines round-robin (down pipelines
// first), each unit carrying up to D micro-batches.
func buildChimeraDirect(s *Schedule, cfg ChimeraConfig, f int) {
	d, n := s.D, s.N
	unitSpan := 2 * d // busy slots per worker per unit: seamless concat offset
	mb := 0
	for unit := 0; mb < n; unit++ {
		inUnit := n - mb
		if inUnit > d {
			inUnit = d
		}
		// Deal this unit's micro-batches: pipeline p = down0, up0, down1,
		// up1, ... gets ceil-fair share, locally 1F1B ordered.
		order := pipelineDealOrder(f)
		counts := fairShare(inUnit, 2*f)
		local := 0
		for pi, rep := range order {
			for m := 0; m < counts[pi]; m++ {
				s.emitPair(rep, []int{mb + local}, m, 0, unit*unitSpan)
				local++
			}
		}
		mb += inUnit
	}
}

// pipelineDealOrder alternates directions so that for f=1 the down pipeline
// receives ⌈N/2⌉ and the up pipeline ⌊N/2⌋ micro-batches (paper §3.1).
// Replicas 0..f-1 are down pipelines, f..2f-1 up pipelines.
func pipelineDealOrder(f int) []int {
	out := make([]int, 0, 2*f)
	for i := 0; i < f; i++ {
		out = append(out, i, f+i)
	}
	return out
}

// fairShare splits n items into k nearly equal counts (first ones larger).
func fairShare(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = n / k
	}
	for i := 0; i < n%k; i++ {
		out[i]++
	}
	return out
}

// doublingUpPhase staggers the up pipelines of a doubled/halved unit against
// the down pipelines. The value is fixed by measurement (see
// TestDoublingPhaseChoice): it minimizes the replayed makespan over the
// candidate phases for the evaluated depths.
var doublingUpPhase = 0

// buildChimeraDoubling constructs the forward-doubling / backward-halving
// schedules of §3.5. Both share the "1F2B" unit shape (one forward slot, two
// backward slots per position): under doubling the forward op carries two
// micro-batches and the unit covers 2D of them; under halving the forward op
// carries one micro-batch whose backward runs as two half-size passes, so
// the unit covers D micro-batches.
func buildChimeraDoubling(s *Schedule, cfg ChimeraConfig, f int) {
	d, n := s.D, s.N
	halving := cfg.Concat == BackwardHalving
	mb, offset := 0, 0
	if halving {
		for mb < n {
			emitOneF2BUnit(s, f, mb, offset, true)
			mb += d
			// Busy slots per worker per unit: D forwards + 2D half-backwards.
			offset += 3 * d
		}
		return
	}
	k := n / d
	for k >= 2 {
		emitOneF2BUnit(s, f, mb, offset, false)
		mb += 2 * d
		offset += 3 * d
		k -= 2
	}
	if k == 1 {
		// Odd residual: one plain bidirectional unit of D micro-batches.
		order := pipelineDealOrder(f)
		counts := fairShare(d, 2*f)
		local := 0
		for pi, rep := range order {
			for m := 0; m < counts[pi]; m++ {
				s.emitPair(rep, []int{mb + local}, m, 0, offset)
				local++
			}
		}
	}
}

// emitOneF2BUnit emits one 1F2B-shaped unit. Down/up pipelines each carry
// D/2f forward slots spaced 3f apart (forward + two backward slots per
// position at the last stage); up pipelines are phase-shifted by
// doublingUpPhase, with residual collisions resolved by replay order.
func emitOneF2BUnit(s *Schedule, f int, mbBase, offset int, halving bool) {
	d := s.D
	order := pipelineDealOrder(f)
	slotsPerPipe := d / (2 * f)
	local := 0
	for _, rep := range order {
		rm := s.Replicas[rep]
		phase := 0
		if !rm.Down {
			phase += doublingUpPhase
		}
		for j := 0; j < slotsPerPipe; j++ {
			fSlot := offset + phase + 3*j
			b0Slot := offset + phase + 3*j + 2*d - 1
			b1Slot := b0Slot + 1
			if halving {
				m := mbBase + local
				local++
				s.MicroReplica[m] = rep
				for st := 0; st < d; st++ {
					w := rm.WorkerOf[st]
					s.Workers[w] = append(s.Workers[w],
						Op{Kind: Forward, Stage: st, Replica: rep, Micros: microRun(m, 1), prio: fSlot + st},
						Op{Kind: Backward, Stage: st, Replica: rep, Micros: microRun(m, 1), Half: 1, prio: b0Slot - st},
						Op{Kind: Backward, Stage: st, Replica: rep, Micros: microRun(m, 1), Half: 2, prio: b1Slot - st})
				}
			} else {
				m0, m1 := mbBase+local, mbBase+local+1
				local += 2
				s.MicroReplica[m0], s.MicroReplica[m1] = rep, rep
				for st := 0; st < d; st++ {
					w := rm.WorkerOf[st]
					s.Workers[w] = append(s.Workers[w],
						Op{Kind: Forward, Stage: st, Replica: rep, Micros: microRun(m0, 2), prio: fSlot + st},
						Op{Kind: Backward, Stage: st, Replica: rep, Micros: microRun(m0, 1), prio: b0Slot - st},
						Op{Kind: Backward, Stage: st, Replica: rep, Micros: microRun(m1, 1), prio: b1Slot - st})
				}
			}
		}
	}
}

// OneF1B builds a single-pipeline 1F1B schedule with flush (used as the
// "1 pipe" baseline of Fig. 19 and as the building block of DAPPLE).
func OneF1B(d, n int) (*Schedule, error) {
	return dapple1F1B("1f1b", d, n, true)
}

// SetDoublingUpPhase overrides the up-pipeline phase of the 1F2B units; it
// exists for schedule-construction experiments and tests.
func SetDoublingUpPhase(p int) { doublingUpPhase = p }
