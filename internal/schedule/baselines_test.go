package schedule

import (
	"testing"
)

func mustScheme(t *testing.T, name string, d, n int) *Schedule {
	t.Helper()
	s, err := ByName(name, d, n)
	if err != nil {
		t.Fatalf("%s D=%d N=%d: %v", name, d, n, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("%s D=%d N=%d invalid: %v", name, d, n, err)
	}
	return s
}

// TestAllSchemesValidate sweeps every scheme across a configuration grid.
func TestAllSchemesValidate(t *testing.T) {
	for _, name := range Schemes() {
		for _, d := range []int{2, 4, 8, 16} {
			for _, n := range []int{1, 2, 4, 8, 16, 32} {
				mustScheme(t, name, d, n)
			}
		}
	}
}

// TestGPipeDappleBubbleFormula pins both schemes to the paper's
// (D−1)/(N+D−1) bubble ratio, which holds in both cost models (the ratio is
// scale invariant because fill and drain bubbles scale with op costs).
func TestGPipeDappleBubbleFormula(t *testing.T) {
	for _, name := range []string{"gpipe", "dapple"} {
		for _, d := range []int{2, 4, 8, 16} {
			for _, n := range []int{4, 8, 16, 64} {
				s := mustScheme(t, name, d, n)
				want := float64(d-1) / float64(n+d-1)
				for _, cm := range []CostModel{UnitEqual, UnitPractical} {
					tl, err := s.Replay(cm)
					if err != nil {
						t.Fatal(err)
					}
					if got := tl.BubbleRatio(); !approxEq(got, want, 1e-9) {
						t.Errorf("%s D=%d N=%d cm=%+v: bubble %v want %v", name, d, n, cm, got, want)
					}
				}
			}
		}
	}
}

// TestChimeraHalvesBubblesVsDAPPLE verifies the headline claim: Chimera's
// bubble count (D−2) is about half of DAPPLE/GPipe's 2(D−1) at N=D.
func TestChimeraHalvesBubblesVsDAPPLE(t *testing.T) {
	for _, d := range []int{4, 8, 16, 32} {
		ch := mustChimera(t, ChimeraConfig{D: d, N: d})
		da := mustScheme(t, "dapple", d, d)
		tlC, _ := ch.Replay(UnitEqual)
		tlD, _ := da.Replay(UnitEqual)
		// Per-worker idle: Chimera D−2, DAPPLE 2(D−1).
		for w, idle := range tlC.WorkerBubbles() {
			if idle != int64(d-2) {
				t.Errorf("chimera D=%d worker %d: idle %d want %d", d, w, idle, d-2)
			}
		}
		for w, idle := range tlD.WorkerBubbles() {
			if idle != int64(2*(d-1)) {
				t.Errorf("dapple D=%d worker %d: idle %d want %d", d, w, idle, 2*(d-1))
			}
		}
		_ = tlC
		_ = tlD
	}
}

// TestGPipeActivationsGrowWithN pins GPipe's Table 2 row: activation
// residency is N·Ma on every worker.
func TestGPipeActivationsGrowWithN(t *testing.T) {
	for _, n := range []int{4, 8, 32} {
		s := mustScheme(t, "gpipe", 4, n)
		for w, v := range s.ActivationHighWater() {
			if v != float64(n) {
				t.Errorf("gpipe N=%d worker %d: activations %v want %v", n, w, v, n)
			}
		}
	}
}

// TestDAPPLEActivationProfile pins DAPPLE's per-worker activation residency
// min(N, D−p): the first worker carries D micro-batches, the last one.
func TestDAPPLEActivationProfile(t *testing.T) {
	for _, d := range []int{4, 8} {
		for _, n := range []int{2, d, 4 * d} {
			s := mustScheme(t, "dapple", d, n)
			for w, v := range s.ActivationHighWater() {
				want := d - w
				if want > n {
					want = n
				}
				if v != float64(want) {
					t.Errorf("dapple D=%d N=%d worker %d: activations %v want %v", d, n, w, v, want)
				}
			}
		}
	}
}

// TestGEMSProperties pins GEMS's Table 2 row: one active micro-batch's
// activations everywhere, two model replicas, and a bubble ratio near
// (D−1)/(D+1/2) under backward = 2× forward.
func TestGEMSProperties(t *testing.T) {
	for _, d := range []int{4, 8, 16} {
		s := mustScheme(t, "gems", d, 2*d)
		for w, v := range s.ActivationHighWater() {
			if v != 1 {
				t.Errorf("gems D=%d worker %d: activations %v want 1", d, w, v)
			}
		}
		if len(s.Replicas) != 2 {
			t.Errorf("gems D=%d: %d replicas want 2", d, len(s.Replicas))
		}
		tl, err := s.Replay(UnitPractical)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(d-1) / (float64(d) + 0.5)
		if got := tl.BubbleRatio(); !approxEq(got, want, 0.06) {
			t.Errorf("gems D=%d: bubble %v want ≈%v", d, got, want)
		}
	}
}

// TestPipeDreamWeightStash pins the asynchronous schemes' weight memory
// (Table 2): PipeDream stashes up to D versions (descending per worker);
// PipeDream-2BW always 2.
func TestPipeDreamWeightStash(t *testing.T) {
	d, n := 8, 16
	pd := mustScheme(t, "pipedream", d, n)
	a, err := Analyze(pd)
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range a.WeightsMTheta {
		if want := float64(d - w); v != want {
			t.Errorf("pipedream worker %d: weights %v want %v", w, v, want)
		}
	}
	bw := mustScheme(t, "pipedream-2bw", d, n)
	ab, err := Analyze(bw)
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range ab.WeightsMTheta {
		if v != 2 {
			t.Errorf("pipedream-2bw worker %d: weights %v want 2", w, v)
		}
	}
	if a.BubbleRatioEqual != 0 || ab.BubbleRatioPractical != 0 {
		t.Error("asynchronous schemes must report ≈0 bubble ratio")
	}
	if pd.Synchronous || bw.Synchronous {
		t.Error("pipedream schemes must be asynchronous")
	}
}

// TestAnalyzeMatchesTable2 cross-checks every measured analysis against the
// closed forms of Table 2 at D=4, N=4 (the Fig. 2 configuration).
func TestAnalyzeMatchesTable2(t *testing.T) {
	d, n := 4, 4
	rows := Table2(d, n)
	for _, row := range rows {
		s := mustScheme(t, row.Scheme, d, n)
		a, err := Analyze(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Synchronous != row.Synchronous {
			t.Errorf("%s: sync=%v want %v", row.Scheme, a.Synchronous, row.Synchronous)
		}
		aLo, aHi := MinMax(a.ActivationsMa)
		if aLo < row.ActLo-1e-9 || aHi > row.ActHi+1e-9 {
			t.Errorf("%s: activations [%v,%v] outside paper [%v,%v]", row.Scheme, aLo, aHi, row.ActLo, row.ActHi)
		}
		wLo, wHi := MinMax(a.WeightsMTheta)
		if wLo < row.WeightsLo-1e-9 || wHi > row.WeightsHi+1e-9 {
			t.Errorf("%s: weights [%v,%v] outside paper [%v,%v]", row.Scheme, wLo, wHi, row.WeightsLo, row.WeightsHi)
		}
		// Bubble ratio: exact for gpipe/dapple/chimera/async; GEMS is ≈.
		tol := 1e-9
		if row.Scheme == "gems" {
			tol = 0.06
		}
		got := a.BubbleRatioEqual
		if row.Scheme == "gems" || row.Scheme == "chimera" {
			got = a.BubbleRatioPractical // paper states these under 2× backward
		}
		want := row.BubbleRatio
		if row.Scheme == "chimera" {
			want = ChimeraMiddleBubbleRatio(d, n) // plain schedule before §3.5
		}
		if !approxEq(got, want, tol) {
			t.Errorf("%s: bubble %v want %v", row.Scheme, got, want)
		}
	}
}

// TestByNameUnknown covers the error path.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 4, 4); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

// TestOneF1BEqualsDAPPLEShape: the single-pipe baseline is DAPPLE by another
// name.
func TestOneF1BEqualsDAPPLEShape(t *testing.T) {
	a := mustScheme(t, "1f1b", 4, 8)
	b := mustScheme(t, "dapple", 4, 8)
	tlA, _ := a.Replay(UnitPractical)
	tlB, _ := b.Replay(UnitPractical)
	if tlA.Makespan != tlB.Makespan {
		t.Fatalf("1f1b span %d != dapple span %d", tlA.Makespan, tlB.Makespan)
	}
}

// TestReplayDeterministic: replay is a pure function of the schedule.
func TestReplayDeterministic(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 8, N: 16, Concat: Direct})
	t1, _ := s.Replay(UnitPractical)
	t2, _ := s.Replay(UnitPractical)
	if t1.Makespan != t2.Makespan {
		t.Fatal("replay nondeterministic")
	}
	for w := range t1.Start {
		for i := range t1.Start[w] {
			if t1.Start[w][i] != t2.Start[w][i] {
				t.Fatal("replay nondeterministic start times")
			}
		}
	}
}

// TestP2PLatencyExtendsMakespan: adding p2p latency must strictly grow the
// critical path of any cross-worker pipeline.
func TestP2PLatencyExtendsMakespan(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 4, N: 4})
	t0, _ := s.Replay(CostModel{FUnit: 10, BUnit: 20})
	t1, _ := s.Replay(CostModel{FUnit: 10, BUnit: 20, P2P: 3})
	if t1.Makespan <= t0.Makespan {
		t.Fatalf("p2p latency ignored: %d vs %d", t1.Makespan, t0.Makespan)
	}
}
