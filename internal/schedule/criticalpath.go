package schedule

// CriticalPath returns (Cf, Cb): the number of forward and backward passes
// on the critical path of the schedule under the practical workload ratio
// (backward = 2× forward). It probes the dependency structure with two
// replays of slightly different forward costs and solves the linear system;
// the path is assumed stable under the perturbation.
//
// These are the Cf and Cb of the paper's Eq. 1 (§3.4). The counts depend
// only on the schedule's dependency structure, so they are memoized per
// ScheduleKey by internal/engine. Both probes are flat topological passes
// over the schedule's compiled Graph — the graph is built once and shared.
func CriticalPath(s *Schedule) (cf, cb int, err error) {
	g, err := s.Graph()
	if err != nil {
		return 0, 0, err
	}
	m1 := g.Replay(CostModel{FUnit: 100, BUnit: 200}).Makespan
	m2 := g.Replay(CostModel{FUnit: 101, BUnit: 200}).Makespan
	cf = int(m2 - m1)
	cb = int((m1 - int64(cf)*100) / 200)
	return cf, cb, nil
}
