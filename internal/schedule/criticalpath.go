package schedule

// CriticalPath returns (Cf, Cb): the number of forward and backward passes
// on the critical path of the schedule under the practical workload ratio
// (backward = 2× forward). It probes the dependency structure with two
// replays of slightly different forward costs and solves the linear system;
// the path is assumed stable under the perturbation.
//
// These are the Cf and Cb of the paper's Eq. 1 (§3.4). The counts depend
// only on the schedule's dependency structure, so they are memoized per
// ScheduleKey by internal/engine.
func CriticalPath(s *Schedule) (cf, cb int, err error) {
	m1, err := criticalSpan(s, 100, 200)
	if err != nil {
		return 0, 0, err
	}
	m2, err := criticalSpan(s, 101, 200)
	if err != nil {
		return 0, 0, err
	}
	cf = int(m2 - m1)
	cb = int((m1 - int64(cf)*100) / 200)
	return cf, cb, nil
}

func criticalSpan(s *Schedule, f, b int64) (int64, error) {
	tl, err := s.Replay(CostModel{FUnit: f, BUnit: b})
	if err != nil {
		return 0, err
	}
	return tl.Makespan, nil
}
