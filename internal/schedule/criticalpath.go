package schedule

// cpProbeA/cpProbeB are the two perturbed cost models CriticalPath replays.
// They are lifted to ReplayConfigs once at init so the probes themselves
// allocate nothing: with a warm graph arena a CriticalPath call is
// allocation-free.
var (
	cpProbeA = CostModel{FUnit: 100, BUnit: 200}.replayConfig()
	cpProbeB = CostModel{FUnit: 101, BUnit: 200}.replayConfig()
)

// CriticalPath returns (Cf, Cb): the number of forward and backward passes
// on the critical path of the schedule under the practical workload ratio
// (backward = 2× forward). It probes the dependency structure with two
// replays of slightly different forward costs and solves the linear system;
// the path is assumed stable under the perturbation.
//
// These are the Cf and Cb of the paper's Eq. 1 (§3.4). The counts depend
// only on the schedule's dependency structure, so they are memoized per
// ScheduleKey by internal/engine. Both probes are flat topological passes
// over the schedule's compiled Graph — the graph is built once and shared —
// and their timelines are released back to the graph's arena pool, so only
// the makespans survive the call.
func CriticalPath(s *Schedule) (cf, cb int, err error) {
	g, err := s.Graph()
	if err != nil {
		return 0, 0, err
	}
	tl := g.ReplayWith(cpProbeA)
	m1 := tl.Makespan
	tl.Release()
	tl = g.ReplayWith(cpProbeB)
	m2 := tl.Makespan
	tl.Release()
	cf = int(m2 - m1)
	cb = int((m1 - int64(cf)*100) / 200)
	return cf, cb, nil
}
