package schedule

import "testing"

// BenchmarkReplayAllocs measures a warm graph replay on the largest tracked
// schedule. The arena pool recycles the timeline and finish-time arrays, so
// steady state is 0 allocs/op — the number CI gates via BENCH_sweep's
// allocs section. Run with -benchmem to see it.
func BenchmarkReplayAllocs(b *testing.B) {
	s, err := Chimera(ChimeraConfig{D: 16, N: 64})
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	rc := UnitPractical.replayConfig()
	g.ReplayWith(rc).Release() // warm the arena pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReplayWith(rc).Release()
	}
}
