package schedule

import "fmt"

// GPipe builds the GPipe schedule: all N forwards pipelined, then all N
// backwards, with a flush (Huang et al., 2019). Activation memory grows
// with N (all micro-batches resident at the turnaround).
func GPipe(d, n int) (*Schedule, error) {
	if err := checkDN(d, n); err != nil {
		return nil, err
	}
	s := newSingleDown("gpipe", d, n, true)
	for w := 0; w < d; w++ {
		s.Workers[w] = make([]Op, 0, 2*n)
		for m := 0; m < n; m++ {
			s.Workers[w] = append(s.Workers[w],
				Op{Kind: Forward, Stage: w, Replica: 0, Micros: microRun(m, 1), prio: w + m})
		}
		for m := 0; m < n; m++ {
			// Backwards drain in micro-batch order from the last stage.
			s.Workers[w] = append(s.Workers[w],
				Op{Kind: Backward, Stage: w, Replica: 0, Micros: microRun(m, 1), prio: n + d + (d - 1 - w) + m})
		}
	}
	s.sortWorkerOps()
	return s, nil
}

// DAPPLE builds the DAPPLE schedule: 1F1B with warmup min(N, D−p) forwards
// on stage p and a synchronous flush (Fan et al., 2021).
func DAPPLE(d, n int) (*Schedule, error) {
	return dapple1F1B("dapple", d, n, true)
}

// PipeDream builds the asynchronous 1F1B schedule without flushes
// (Narayanan et al., 2019). The op order matches DAPPLE; Synchronous=false
// marks that gradients apply per micro-batch with weight stashing (up to D
// versions), which analysis and the simulator account for.
func PipeDream(d, n int) (*Schedule, error) {
	return dapple1F1B("pipedream", d, n, false)
}

// PipeDream2BW builds the PipeDream-2BW schedule: asynchronous 1F1B with
// gradient accumulation and double-buffered weights (2 stashed versions).
func PipeDream2BW(d, n int) (*Schedule, error) {
	return dapple1F1B("pipedream-2bw", d, n, false)
}

func dapple1F1B(name string, d, n int, synchronous bool) (*Schedule, error) {
	if err := checkDN(d, n); err != nil {
		return nil, err
	}
	s := newSingleDown(name, d, n, synchronous)
	for w := 0; w < d; w++ {
		s.Workers[w] = make([]Op, 0, 2*n)
		warmup := d - w
		if warmup > n {
			warmup = n
		}
		slot := w // first forward arrives after w hops
		nextF, nextB := 0, 0
		for nextF < warmup {
			s.Workers[w] = append(s.Workers[w],
				Op{Kind: Forward, Stage: w, Replica: 0, Micros: microRun(nextF, 1), prio: slot})
			nextF++
			slot++
		}
		// Steady state: one backward, one forward.
		for nextB < n {
			s.Workers[w] = append(s.Workers[w],
				Op{Kind: Backward, Stage: w, Replica: 0, Micros: microRun(nextB, 1), prio: slot})
			nextB++
			slot++
			if nextF < n {
				s.Workers[w] = append(s.Workers[w],
					Op{Kind: Forward, Stage: w, Replica: 0, Micros: microRun(nextF, 1), prio: slot})
				nextF++
				slot++
			}
		}
	}
	s.sortWorkerOps()
	return s, nil
}

// GEMS builds the GEMS schedule (Jain et al., 2020): two model replicas in
// opposite directions, micro-batches alternating between them, with at most
// two concurrently active micro-batches — memory-minimal, high bubble ratio.
func GEMS(d, n int) (*Schedule, error) {
	if err := checkDN(d, n); err != nil {
		return nil, err
	}
	s := &Schedule{
		Scheme:       "gems",
		D:            d,
		N:            n,
		F:            1,
		Workers:      make([][]Op, d),
		Synchronous:  true,
		MicroReplica: make([]int, n),
		Replicas:     []ReplicaMap{downMap(d, 1, 0), upMap(d, 1, 0)},
	}
	for m := 0; m < n; m++ {
		rep := m % 2
		rm := s.Replicas[rep]
		s.MicroReplica[m] = rep
		// Each micro-batch's forward chases the previous micro-batch's
		// backward through the pipeline; greedy replay produces the overlap.
		base := m * (d + 1)
		for st := 0; st < d; st++ {
			w := rm.WorkerOf[st]
			s.Workers[w] = append(s.Workers[w],
				Op{Kind: Forward, Stage: st, Replica: rep, Micros: microRun(m, 1), prio: base + st},
				Op{Kind: Backward, Stage: st, Replica: rep, Micros: microRun(m, 1), prio: base + 2*d - 1 - st})
		}
	}
	s.sortWorkerOps()
	return s, nil
}

// ByName constructs a schedule by scheme name with default options; Chimera
// uses f=1 and direct concatenation. Recognized names: chimera, gpipe,
// dapple, gems, pipedream, pipedream-2bw, 1f1b.
func ByName(name string, d, n int) (*Schedule, error) {
	switch name {
	case "chimera":
		return Chimera(ChimeraConfig{D: d, N: n})
	case "gpipe":
		return GPipe(d, n)
	case "dapple":
		return DAPPLE(d, n)
	case "gems":
		return GEMS(d, n)
	case "pipedream":
		return PipeDream(d, n)
	case "pipedream-2bw":
		return PipeDream2BW(d, n)
	case "1f1b":
		return OneF1B(d, n)
	default:
		return nil, fmt.Errorf("schedule: unknown scheme %q", name)
	}
}

// Schemes lists all supported scheme names in the paper's Table 2 order.
func Schemes() []string {
	return []string{"pipedream", "pipedream-2bw", "gpipe", "gems", "dapple", "chimera"}
}

func checkDN(d, n int) error {
	if d < 1 {
		return fmt.Errorf("schedule: D must be ≥1, got %d", d)
	}
	if n < 1 {
		return fmt.Errorf("schedule: N must be ≥1, got %d", n)
	}
	return nil
}

func newSingleDown(name string, d, n int, synchronous bool) *Schedule {
	s := &Schedule{
		Scheme:       name,
		D:            d,
		N:            n,
		F:            1,
		Workers:      make([][]Op, d),
		Synchronous:  synchronous,
		MicroReplica: make([]int, n),
		Replicas:     []ReplicaMap{downMap(d, 1, 0)},
	}
	return s
}
