package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scheduler is a placement policy: it re-places a schedule's op DAG onto the
// schedule's D workers using per-worker speed factors, producing a re-shaped
// Schedule for heterogeneous clusters. The input graph is the compiled IR of
// the base schedule (the scheme's own hand-derived placement); costs supplies
// the unit op durations the policy ranks and packs with; speed[w] is the
// compute-time multiplier of worker w (1 = nominal, 2 = twice as slow).
//
// Placement granularity is the (replica, stage) group, not the single op: a
// stage's weights live on one worker, so every micro-batch of that stage must
// execute there. Policies therefore decide two things — which worker hosts
// each stage group, and in what order each worker runs its ops.
//
// Contract shared by every registered policy: with nil or uniform speed
// factors the policy returns the base schedule unchanged (the scheme's own
// placement is conflict-free and bubble-optimal on a homogeneous cluster;
// heterogeneity is the only signal these policies act on). The conformance
// suite in scheduler_test.go enforces this, plus Validate and deadlock-free
// graph compilation, for every registered policy.
type Scheduler interface {
	// Name is the registry key ("fixed", "heft", "cpop", "lb").
	Name() string
	// Schedule re-places the base schedule behind g. The returned schedule
	// has the same scheme, D, N and op multiset; only placement and
	// per-worker order differ. len(speed) must be 0 or g's D.
	Schedule(g *Graph, costs CostModel, speed []float64) (*Schedule, error)
}

// Source returns the schedule this graph was compiled from.
func (g *Graph) Source() *Schedule { return g.s }

// UniformSpeed reports whether the factor list carries no heterogeneity
// signal: empty, or all entries equal (placement is then irrelevant — a
// uniform multiplier rescales time without re-shaping anything).
func UniformSpeed(speed []float64) bool {
	if len(speed) == 0 {
		return true
	}
	for _, f := range speed[1:] {
		if f != speed[0] {
			return false
		}
	}
	return true
}

// schedulerOrder is the registry in presentation order: the fixed identity
// policy first, then the list schedulers.
var schedulerOrder = []string{"fixed", "heft", "cpop", "lb"}

var schedulerRegistry = map[string]Scheduler{
	"fixed": fixedScheduler{},
	"heft":  heftScheduler{},
	"cpop":  cpopScheduler{},
	"lb":    lbScheduler{},
}

// Schedulers lists the registered placement-policy names ("fixed" first),
// the policy axis companion to Schemes().
func Schedulers() []string {
	return append([]string(nil), schedulerOrder...)
}

// SchedulerByName resolves a registered placement policy.
func SchedulerByName(name string) (Scheduler, error) {
	if s, ok := schedulerRegistry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("schedule: unknown scheduler %q (have %s)",
		name, strings.Join(Schedulers(), ", "))
}

// fixedScheduler is the identity policy: the scheme's own placement.
type fixedScheduler struct{}

func (fixedScheduler) Name() string { return "fixed" }
func (fixedScheduler) Schedule(g *Graph, _ CostModel, _ []float64) (*Schedule, error) {
	return g.s, nil
}

// placementDAG is the shared machinery of the list schedulers: the base
// schedule's ops with data-only dependency edges (the compiled graph minus
// its program-order edges, which encode the placement being replaced), unit
// costs per op, and the stage-group index placement binds on.
type placementDAG struct {
	base  *Schedule
	g     *Graph
	costs CostModel
	speed []float64
	// nodeCost[id] is the op's base duration; group[id] its stage-group
	// index replica·D + stage.
	nodeCost []float64
	group    []int32
	preds    [][]int32
	succs    [][]int32
	// groupLoad[grp] is the summed base cost of the stage group's ops —
	// what binding the group to a worker ultimately commits it to.
	groupLoad []float64
}

func newPlacementDAG(g *Graph, costs CostModel, speed []float64) (*placementDAG, error) {
	base := g.s
	if len(speed) != base.D {
		return nil, fmt.Errorf("schedule: %d speed factors for %d workers (lengths must match)", len(speed), base.D)
	}
	for w, f := range speed {
		if !(f > 0) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("schedule: speed factor %g for worker %d must be positive and finite", f, w)
		}
	}
	if costs.FUnit < 1 || costs.BUnit < 1 || costs.P2P < 0 {
		return nil, fmt.Errorf("schedule: placement cost model needs FUnit ≥ 1, BUnit ≥ 1, P2P ≥ 0, got %+v", costs)
	}
	total := len(g.ops)
	p := &placementDAG{
		base: base, g: g, costs: costs, speed: speed,
		nodeCost: make([]float64, total),
		group:    make([]int32, total),
		preds:    make([][]int32, total),
		succs:    make([][]int32, total),
	}
	p.groupLoad = make([]float64, len(base.Replicas)*base.D)
	for id, op := range g.ops {
		p.nodeCost[id] = float64(costs.Cost(op))
		p.group[id] = int32(op.Replica*base.D + op.Stage)
		p.groupLoad[p.group[id]] += p.nodeCost[id]
		e := g.predStart[id]
		if int32(id) > g.base[g.worker[id]] {
			e++ // the worker's program-order edge: old placement, not data
		}
		for ; e < g.predStart[id+1]; e++ {
			pd, _ := g.predAt(e)
			p.preds[id] = append(p.preds[id], pd)
			p.succs[pd] = append(p.succs[pd], int32(id))
		}
	}
	return p, nil
}

func (p *placementDAG) meanSpeed() float64 {
	var sum float64
	for _, f := range p.speed {
		sum += f
	}
	return sum / float64(len(p.speed))
}

// upwardRanks is HEFT's priority: mean execution cost plus the most
// expensive downstream chain. Computed over the graph's topological order
// (a superset order of the data-only DAG, so one reverse pass suffices).
func (p *placementDAG) upwardRanks() []float64 {
	mean := p.meanSpeed()
	comm := float64(p.costs.P2P)
	rank := make([]float64, len(p.nodeCost))
	for i := len(p.g.order) - 1; i >= 0; i-- {
		id := p.g.order[i]
		best := 0.0
		for _, s := range p.succs[id] {
			if v := comm + rank[s]; v > best {
				best = v
			}
		}
		rank[id] = p.nodeCost[id]*mean + best
	}
	return rank
}

// downwardRanks is the most expensive upstream chain (excluding the node
// itself), CPOP's other half.
func (p *placementDAG) downwardRanks() []float64 {
	mean := p.meanSpeed()
	comm := float64(p.costs.P2P)
	rank := make([]float64, len(p.nodeCost))
	for _, id := range p.g.order {
		best := 0.0
		for _, pd := range p.preds[id] {
			if v := rank[pd] + p.nodeCost[pd]*mean + comm; v > best {
				best = v
			}
		}
		rank[id] = best
	}
	return rank
}

// eftSchedule runs the list-scheduling loop: ready ops (all data
// dependencies placed) are taken highest-priority first and placed at the
// worker with the earliest finish time — restricted to the group's bound
// worker once any op of its (replica, stage) group has been placed, and to
// the pinned worker for groups pre-bound by the policy (pinned[grp] >= 0).
// Every choice carries a total tie-break (priority, then node id; EFT, then
// lower worker), so placement is deterministic.
func (p *placementDAG) eftSchedule(name string, prio []float64, pinned []int32) (*Schedule, error) {
	base := p.base
	d := base.D
	total := len(p.nodeCost)
	groupWorker := make([]int32, len(base.Replicas)*d)
	for i := range groupWorker {
		groupWorker[i] = -1
	}
	if pinned != nil {
		copy(groupWorker, pinned)
	}
	indeg := make([]int, total)
	for id := range p.preds {
		indeg[id] = len(p.preds[id])
	}
	// ready is a max-heap on (prio, then lower id).
	ready := &nodeHeap{prio: prio}
	for id := 0; id < total; id++ {
		if indeg[id] == 0 {
			ready.push(int32(id))
		}
	}
	avail := make([]float64, d)
	aft := make([]float64, total)
	placedOn := make([]int32, total)
	perWorker := make([][]int32, d)
	groupLeft := append([]float64(nil), p.groupLoad...)
	comm := float64(p.costs.P2P)
	for placed := 0; placed < total; placed++ {
		if ready.len() == 0 {
			return nil, fmt.Errorf("schedule: %s placement stalled with %d ops left (data-dependency cycle in %q)",
				name, total-placed, base.Scheme)
		}
		id := ready.pop()
		grp := p.group[id]
		lo, hi := 0, d
		if gw := groupWorker[grp]; gw >= 0 {
			lo, hi = int(gw), int(gw)+1
		}
		// A worker choice for an unbound group commits the group's whole
		// remaining load to that worker, so the selection metric is the
		// finish time of that load run back to back — op-level EFT alone
		// would happily bind group after group to a momentarily idle
		// straggler. Once bound, selection is plain EFT.
		selCost := groupLeft[grp]
		if lo+1 == hi {
			selCost = p.nodeCost[id]
		}
		bestW, bestEFT, bestSel := -1, 0.0, math.Inf(1)
		for w := lo; w < hi; w++ {
			est := avail[w]
			for _, pd := range p.preds[id] {
				t := aft[pd]
				if placedOn[pd] != int32(w) {
					t += comm
				}
				if t > est {
					est = t
				}
			}
			// Equal finish times tie toward the least-loaded worker (then the
			// lower index): under a zero-communication cost model every idle
			// worker ties, and a lowest-index rule would chain group after
			// group onto worker 0.
			sel := est + selCost*p.speed[w]
			if sel < bestSel || (sel == bestSel && avail[w] < avail[bestW]) {
				bestW, bestSel = w, sel
				bestEFT = est + p.nodeCost[id]*p.speed[w]
			}
		}
		groupLeft[grp] -= p.nodeCost[id]
		groupWorker[grp] = int32(bestW)
		placedOn[id] = int32(bestW)
		aft[id] = bestEFT
		avail[bestW] = bestEFT
		perWorker[bestW] = append(perWorker[bestW], id)
		for _, s := range p.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	out := p.emptyReshaped(name, groupWorker)
	for w, ids := range perWorker {
		for i, id := range ids {
			op := p.g.ops[id]
			op.prio = i
			out.Workers[w] = append(out.Workers[w], op)
		}
	}
	return out, nil
}

// emptyReshaped builds the re-shaped schedule's shell: metadata copied from
// the base, replica maps re-bound to the placed group workers (groups the
// placement never touched — possible when a replica carries no micro-batches
// — keep the base placement).
func (p *placementDAG) emptyReshaped(name string, groupWorker []int32) *Schedule {
	base := p.base
	out := &Schedule{
		Scheme: base.Scheme, D: base.D, N: base.N, F: base.F,
		Workers:        make([][]Op, base.D),
		Synchronous:    base.Synchronous,
		DoubledForward: base.DoubledForward,
		HalvedBackward: base.HalvedBackward,
		MicroReplica:   append([]int(nil), base.MicroReplica...),
		Scheduler:      name,
		PlacementSpeed: append([]float64(nil), p.speed...),
	}
	for r, rm := range base.Replicas {
		nm := ReplicaMap{Down: rm.Down, WorkerOf: make([]int, base.D)}
		for st := range nm.WorkerOf {
			if gw := groupWorker[r*base.D+st]; gw >= 0 {
				nm.WorkerOf[st] = int(gw)
			} else {
				nm.WorkerOf[st] = rm.WorkerOf[st]
			}
		}
		out.Replicas = append(out.Replicas, nm)
	}
	return out
}

// nodeHeap is a deterministic max-heap of node ids: higher priority first,
// lower id on ties.
type nodeHeap struct {
	prio  []float64
	nodes []int32
}

func (h *nodeHeap) len() int { return len(h.nodes) }

func (h *nodeHeap) before(a, b int32) bool {
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}

func (h *nodeHeap) push(id int32) {
	h.nodes = append(h.nodes, id)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.nodes[i], h.nodes[parent]) {
			break
		}
		h.nodes[i], h.nodes[parent] = h.nodes[parent], h.nodes[i]
		i = parent
	}
}

func (h *nodeHeap) pop() int32 {
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(h.nodes[l], h.nodes[best]) {
			best = l
		}
		if r < last && h.before(h.nodes[r], h.nodes[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.nodes[i], h.nodes[best] = h.nodes[best], h.nodes[i]
		i = best
	}
	return top
}

// heftScheduler is HEFT (Topcuoglu et al., 2002) adapted to stage-grouped
// pipeline DAGs: ops are prioritized by upward rank (mean cost plus most
// expensive downstream chain) and placed at the earliest-finish-time worker,
// with the whole (replica, stage) group following its first placed op.
type heftScheduler struct{}

func (heftScheduler) Name() string { return "heft" }

func (heftScheduler) Schedule(g *Graph, costs CostModel, speed []float64) (*Schedule, error) {
	if UniformSpeed(speed) {
		return g.s, nil
	}
	p, err := newPlacementDAG(g, costs, speed)
	if err != nil {
		return nil, err
	}
	return p.eftSchedule("heft", p.upwardRanks(), nil)
}

// cpopScheduler is CPOP (critical-path-on-a-processor) adapted to
// stage-grouped pipeline DAGs. Classic CPOP pins every critical-path task to
// the one fastest processor; a pipeline's critical path traverses all D
// stages, so a literal pin would serialize the whole pipeline onto one
// worker. Instead the heaviest critical-path stage group is pinned to the
// fastest worker, and the rest place by earliest finish time in
// (upward + downward)-rank priority order.
type cpopScheduler struct{}

func (cpopScheduler) Name() string { return "cpop" }

func (cpopScheduler) Schedule(g *Graph, costs CostModel, speed []float64) (*Schedule, error) {
	if UniformSpeed(speed) {
		return g.s, nil
	}
	p, err := newPlacementDAG(g, costs, speed)
	if err != nil {
		return nil, err
	}
	up, down := p.upwardRanks(), p.downwardRanks()
	prio := make([]float64, len(up))
	cpVal := 0.0
	for i := range prio {
		prio[i] = up[i] + down[i]
		if prio[i] > cpVal {
			cpVal = prio[i]
		}
	}
	// Critical-path membership with a relative tolerance: ranks are sums of
	// small integer costs, but float addition order still deserves slack.
	eps := cpVal * 1e-9
	groups := len(g.s.Replicas) * g.s.D
	cpLoad := make([]float64, groups)
	for id := range prio {
		if cpVal-prio[id] <= eps {
			cpLoad[p.group[id]] += p.nodeCost[id]
		}
	}
	heaviest := 0
	for grp, load := range cpLoad {
		if load > cpLoad[heaviest] {
			heaviest = grp
		}
	}
	fastest := 0
	for w, f := range speed {
		if f < speed[fastest] {
			fastest = w
		}
	}
	pinned := make([]int32, groups)
	for i := range pinned {
		pinned[i] = -1
	}
	pinned[heaviest] = int32(fastest)
	return p.eftSchedule("cpop", prio, pinned)
}

// lbScheduler is the load-balancing baseline: longest-processing-time-first
// assignment of stage groups to workers minimizing the worker's resulting
// effective load (load × speed factor), keeping each worker's ops in the
// base schedule's construction-slot order. It ignores the dependency
// structure entirely — the floor any rank-aware policy must beat.
type lbScheduler struct{}

func (lbScheduler) Name() string { return "lb" }

func (lbScheduler) Schedule(g *Graph, costs CostModel, speed []float64) (*Schedule, error) {
	if UniformSpeed(speed) {
		return g.s, nil
	}
	p, err := newPlacementDAG(g, costs, speed)
	if err != nil {
		return nil, err
	}
	base := g.s
	d := base.D
	groups := len(base.Replicas) * d
	load := make([]float64, groups)
	for id, c := range p.nodeCost {
		load[p.group[id]] += c
	}
	order := make([]int, 0, groups)
	for grp, l := range load {
		if l > 0 {
			order = append(order, grp)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if load[order[i]] != load[order[j]] {
			return load[order[i]] > load[order[j]]
		}
		return order[i] < order[j]
	})
	groupWorker := make([]int32, groups)
	for i := range groupWorker {
		groupWorker[i] = -1
	}
	wload := make([]float64, d)
	for _, grp := range order {
		best := 0
		for w := 1; w < d; w++ {
			if (wload[w]+load[grp])*speed[w] < (wload[best]+load[grp])*speed[best] {
				best = w
			}
		}
		groupWorker[grp] = int32(best)
		wload[best] += load[grp]
	}
	out := p.emptyReshaped("lb", groupWorker)
	// Per-worker op order: the base schedule's replay start times under the
	// same cost model. Starts strictly increase along every data edge (a
	// consumer starts no earlier than its producer finishes, and ops have
	// positive cost), so merging groups in start order is deadlock-free for
	// any scheme — unlike construction slots, which tie across workers in
	// the 1F1B family.
	tl := g.Replay(costs)
	type placedOp struct {
		start int64
		id    int32
	}
	moved := make([][]placedOp, d)
	for id := range p.nodeCost {
		w := g.worker[id]
		nw := groupWorker[p.group[id]]
		moved[nw] = append(moved[nw], placedOp{tl.Start[w][int32(id)-g.base[w]], int32(id)})
	}
	for nw, ops := range moved {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].start != ops[j].start {
				return ops[i].start < ops[j].start
			}
			return ops[i].id < ops[j].id
		})
		for i, po := range ops {
			op := p.g.ops[po.id]
			op.prio = i
			out.Workers[nw] = append(out.Workers[nw], op)
		}
	}
	return out, nil
}
