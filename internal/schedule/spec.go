package schedule

import "fmt"

// Spec is the unified schedule request: which scheme to generate, which
// placement policy to run over it, and the policy's inputs. It replaces the
// stringly-typed two-call growth path (ByName / Chimera followed by ad-hoc
// re-placement) with one declarative entry point — Build.
type Spec struct {
	// Scheme is the generator name: "chimera" or any Schemes() entry.
	Scheme string
	// Scheduler is the placement policy, one of Schedulers(). "" means
	// "fixed" (the scheme's own hand-derived placement).
	Scheduler string
	// D is the number of pipeline stages, N the micro-batches per worker.
	D, N int
	// F is Chimera's pipelines-per-direction (0 means 1); Concat its
	// N > D scaling mode. Both must be zero-valued for other schemes.
	F      int
	Concat ConcatMode
	// CostModel supplies op durations for list-scheduler ranking and
	// packing; nil defaults to UnitPractical (forward 1, backward 2).
	// Ignored by the fixed policy.
	CostModel *CostModel
	// SpeedFactors[w] is worker w's compute-time multiplier (1 = nominal).
	// Empty means homogeneous; otherwise the length must equal D. List
	// policies return the base schedule unchanged when the factors carry no
	// heterogeneity signal (empty or all equal).
	SpeedFactors []float64
}

// Build constructs the schedule a Spec describes: generate the scheme, then
// run the placement policy over its compiled graph. With Scheduler "" or
// "fixed" the scheme's schedule is returned as-is — bit-identical to calling
// the generator directly, with no eager graph compilation.
func Build(spec Spec) (*Schedule, error) {
	policy := spec.Scheduler
	if policy == "" {
		policy = "fixed"
	}
	sch, err := SchedulerByName(policy)
	if err != nil {
		return nil, err
	}
	if len(spec.SpeedFactors) != 0 && len(spec.SpeedFactors) != spec.D {
		return nil, fmt.Errorf("schedule: %d speed factors for D=%d (empty or matching length required)",
			len(spec.SpeedFactors), spec.D)
	}
	var base *Schedule
	if spec.Scheme == "chimera" {
		base, err = Chimera(ChimeraConfig{D: spec.D, N: spec.N, F: spec.F, Concat: spec.Concat})
	} else {
		if spec.F > 1 {
			return nil, fmt.Errorf("schedule: F=%d is chimera-only, not %q", spec.F, spec.Scheme)
		}
		if spec.Concat != Direct {
			return nil, fmt.Errorf("schedule: concat mode %v is chimera-only, not %q", spec.Concat, spec.Scheme)
		}
		base, err = ByName(spec.Scheme, spec.D, spec.N)
	}
	if err != nil {
		return nil, err
	}
	if policy == "fixed" {
		return base, nil
	}
	cm := UnitPractical
	if spec.CostModel != nil {
		cm = *spec.CostModel
	}
	g, err := base.Graph()
	if err != nil {
		return nil, err
	}
	return sch.Schedule(g, cm, spec.SpeedFactors)
}
