package schedule

import (
	"fmt"
	"reflect"
	"testing"
)

// conformanceConfigs spans every generator family the placement policies
// must handle: chimera direct (single and multi pipeline pair), the two
// N > D concat variants, and all fixed baselines.
func conformanceConfigs(t *testing.T) map[string]*Schedule {
	t.Helper()
	out := map[string]*Schedule{}
	add := func(name string, s *Schedule, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out[name] = s
	}
	c, err := Chimera(ChimeraConfig{D: 4, N: 4})
	add("chimera-d4n4", c, err)
	c, err = Chimera(ChimeraConfig{D: 4, N: 8, F: 2})
	add("chimera-d4n8f2", c, err)
	c, err = Chimera(ChimeraConfig{D: 4, N: 8, Concat: ForwardDoubling})
	add("chimera-d4n8-doubling", c, err)
	c, err = Chimera(ChimeraConfig{D: 4, N: 8, Concat: BackwardHalving})
	add("chimera-d4n8-halving", c, err)
	c, err = Chimera(ChimeraConfig{D: 8, N: 16})
	add("chimera-d8n16", c, err)
	for _, scheme := range []string{"gpipe", "dapple", "gems", "pipedream", "pipedream-2bw"} {
		s, err := ByName(scheme, 4, 8)
		add(scheme+"-d4n8", s, err)
	}
	return out
}

// speedProfiles returns the heterogeneity shapes each policy is run under.
func speedProfiles(d int) map[string][]float64 {
	straggler := make([]float64, d)
	graded := make([]float64, d)
	uniform := make([]float64, d)
	for w := 0; w < d; w++ {
		straggler[w] = 1
		graded[w] = 1 + 0.25*float64(w)
		uniform[w] = 1.5
	}
	straggler[d/2] = 2
	return map[string][]float64{
		"nil":       nil,
		"uniform":   uniform,
		"straggler": straggler,
		"graded":    graded,
	}
}

// opCensus counts each (kind, stage, replica, micro, half) occurrence; a
// policy must permute placement, never the op multiset.
func opCensus(s *Schedule) map[string]int {
	census := map[string]int{}
	for _, ops := range s.Workers {
		for _, op := range ops {
			for _, m := range op.Micros {
				census[fmt.Sprintf("%v/%d/%d/%d/%d", op.Kind, op.Stage, op.Replica, m, op.Half)]++
			}
		}
	}
	return census
}

// sameProgram compares everything that defines a schedule's execution —
// metadata, placement maps, and per-worker op lists (including construction
// priorities) — ignoring the unexported graph cache.
func sameProgram(a, b *Schedule) bool {
	return a.Scheme == b.Scheme && a.D == b.D && a.N == b.N && a.F == b.F &&
		a.Synchronous == b.Synchronous &&
		a.DoubledForward == b.DoubledForward && a.HalvedBackward == b.HalvedBackward &&
		reflect.DeepEqual(a.MicroReplica, b.MicroReplica) &&
		reflect.DeepEqual(a.Replicas, b.Replicas) &&
		reflect.DeepEqual(a.Workers, b.Workers)
}

// TestSchedulerConformance runs every registered policy over every generator
// family and speed profile: the output passes Validate, compiles to a
// deadlock-free graph, preserves the op multiset, replays deterministically,
// and defers to the fixed placement whenever the factors carry no
// heterogeneity signal.
func TestSchedulerConformance(t *testing.T) {
	for name, base := range conformanceConfigs(t) {
		baseGraph, err := base.Graph()
		if err != nil {
			t.Fatalf("%s: base graph: %v", name, err)
		}
		baseCensus := opCensus(base)
		for profName, speed := range speedProfiles(base.D) {
			for _, polName := range Schedulers() {
				pol, err := SchedulerByName(polName)
				if err != nil {
					t.Fatalf("SchedulerByName(%q): %v", polName, err)
				}
				t.Run(fmt.Sprintf("%s/%s/%s", name, profName, polName), func(t *testing.T) {
					got, err := pol.Schedule(baseGraph, UnitPractical, speed)
					if err != nil {
						t.Fatalf("Schedule: %v", err)
					}
					if polName == "fixed" || UniformSpeed(speed) {
						if got != base {
							t.Fatalf("expected the base schedule back for policy %q profile %q", polName, profName)
						}
						return
					}
					if got.Scheduler != polName {
						t.Errorf("Scheduler = %q, want %q", got.Scheduler, polName)
					}
					if !reflect.DeepEqual(got.PlacementSpeed, speed) {
						t.Errorf("PlacementSpeed = %v, want %v", got.PlacementSpeed, speed)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("Validate: %v", err)
					}
					g, err := got.Graph()
					if err != nil {
						t.Fatalf("re-shaped graph: %v", err)
					}
					if !reflect.DeepEqual(opCensus(got), baseCensus) {
						t.Fatalf("op multiset changed under policy %q", polName)
					}
					// Construction must be deterministic: a second run from a
					// fresh base yields the identical program.
					again, err := pol.Schedule(baseGraph, UnitPractical, speed)
					if err != nil {
						t.Fatalf("second Schedule: %v", err)
					}
					if !sameProgram(got, again) {
						t.Fatalf("policy %q is nondeterministic", polName)
					}
					// Replay determinism over the compiled graph.
					t1, t2 := g.Replay(UnitPractical), g.Replay(UnitPractical)
					if !reflect.DeepEqual(t1, t2) {
						t.Fatalf("replay nondeterministic for policy %q", polName)
					}
				})
			}
		}
	}
}

// TestSchedulerReshapesStraggler asserts the policies actually act: under a
// severe straggler, every list policy moves at least one stage group off the
// slow worker on the replica-rich chimera schedule.
func TestSchedulerReshapesStraggler(t *testing.T) {
	base, err := Chimera(ChimeraConfig{D: 8, N: 16})
	if err != nil {
		t.Fatal(err)
	}
	g, err := base.Graph()
	if err != nil {
		t.Fatal(err)
	}
	speed := []float64{1, 1, 1, 1, 2, 1, 1, 1}
	for _, polName := range []string{"heft", "cpop", "lb"} {
		pol, err := SchedulerByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pol.Schedule(g, UnitPractical, speed)
		if err != nil {
			t.Fatalf("%s: %v", polName, err)
		}
		if sameProgram(base, got) {
			t.Errorf("%s: schedule unchanged under a 2× straggler", polName)
		}
		var slow, baseSlow int64
		for _, op := range got.Workers[4] {
			slow += UnitPractical.Cost(op)
		}
		for _, op := range base.Workers[4] {
			baseSlow += UnitPractical.Cost(op)
		}
		if slow >= baseSlow {
			t.Errorf("%s: straggler load %d not reduced from %d", polName, slow, baseSlow)
		}
	}
}

// TestSchedulerNames pins the registry vocabulary.
func TestSchedulerNames(t *testing.T) {
	want := []string{"fixed", "heft", "cpop", "lb"}
	if got := Schedulers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Schedulers() = %v, want %v", got, want)
	}
	for _, n := range want {
		s, err := SchedulerByName(n)
		if err != nil || s.Name() != n {
			t.Fatalf("SchedulerByName(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := SchedulerByName("peft"); err == nil {
		t.Fatal("expected an error for an unregistered scheduler")
	}
}

// TestBuildSpec covers the unified entry point: fixed specs return the
// generator's schedule bit-identically, list specs re-shape, and malformed
// specs fail loudly.
func TestBuildSpec(t *testing.T) {
	direct, err := Chimera(ChimeraConfig{D: 4, N: 8, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := Build(Spec{Scheme: "chimera", D: 4, N: 8, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameProgram(direct, viaSpec) {
		t.Fatal("fixed chimera spec differs from the direct generator call")
	}
	for _, scheme := range Schemes() {
		byName, err := ByName(scheme, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		viaSpec, err := Build(Spec{Scheme: scheme, D: 4, N: 4, Scheduler: "fixed"})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !sameProgram(byName, viaSpec) {
			t.Fatalf("%s: fixed spec differs from ByName", scheme)
		}
	}
	reshaped, err := Build(Spec{
		Scheme: "chimera", Scheduler: "heft", D: 4, N: 8,
		SpeedFactors: []float64{1, 2, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reshaped.Scheduler != "heft" {
		t.Fatalf("Scheduler = %q, want heft", reshaped.Scheduler)
	}
	if err := reshaped.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Scheme: "chimera", D: 4, N: 4, Scheduler: "nope"},
		{Scheme: "chimera", D: 4, N: 4, SpeedFactors: []float64{1, 2}},
		{Scheme: "gpipe", D: 4, N: 4, F: 2},
		{Scheme: "gpipe", D: 4, N: 4, Concat: ForwardDoubling},
		{Scheme: "unknown", D: 4, N: 4},
		{Scheme: "chimera", Scheduler: "heft", D: 4, N: 4, SpeedFactors: []float64{1, -1, 1, 1}},
	} {
		if _, err := Build(bad); err == nil {
			t.Fatalf("Build(%+v) should fail", bad)
		}
	}
}

// TestUniformSpeed pins the no-signal predicate.
func TestUniformSpeed(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want bool
	}{
		{nil, true},
		{[]float64{}, true},
		{[]float64{2}, true},
		{[]float64{1.5, 1.5, 1.5}, true},
		{[]float64{1, 1, 2}, false},
	} {
		if got := UniformSpeed(tc.in); got != tc.want {
			t.Errorf("UniformSpeed(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
