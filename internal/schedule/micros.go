package schedule

import (
	"sync"
	"sync/atomic"
)

// The generators intern the Micros slices their ops carry. Every op covers
// a run of consecutive micro-batch ids ([m], or [m, m+1] under forward
// doubling), so all ops can share subslices of one identity table
// (table[i] == i) instead of allocating a private slice per op — schedule
// construction is the uncached sweep's hot path, and per-op Micros
// allocations were a large share of its heap traffic. The table grows
// geometrically; backing arrays already handed out stay valid because
// their contents never change.
var (
	microIdents atomic.Pointer[[]int]
	microGrow   sync.Mutex
)

func microTable(need int) []int {
	if p := microIdents.Load(); p != nil && len(*p) >= need {
		return *p
	}
	microGrow.Lock()
	defer microGrow.Unlock()
	size := 1024
	if p := microIdents.Load(); p != nil {
		if len(*p) >= need {
			return *p
		}
		size = len(*p)
	}
	for size < need {
		size *= 2
	}
	t := make([]int, size)
	for i := range t {
		t[i] = i
	}
	microIdents.Store(&t)
	return t
}

// microRun returns the shared identity slice [m, m+1, ..., m+n-1].
func microRun(m, n int) []int {
	t := microTable(m + n)
	return t[m : m+n : m+n]
}

// internMicros returns a shared identity subslice equal to micros when its
// ids are one consecutive run (every generator emits such runs), falling
// back to a private copy otherwise.
func internMicros(micros []int) []int {
	if len(micros) == 0 {
		return nil
	}
	for i := 1; i < len(micros); i++ {
		if micros[i] != micros[0]+i {
			out := make([]int, len(micros))
			copy(out, micros)
			return out
		}
	}
	return microRun(micros[0], len(micros))
}
