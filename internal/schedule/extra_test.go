package schedule

import (
	"strings"
	"testing"
)

// TestOpString covers the op formatting used in deadlock diagnostics.
func TestOpString(t *testing.T) {
	o := Op{Kind: Forward, Stage: 2, Replica: 1, Micros: []int{5}}
	if got := o.String(); got != "F5@s2/r1" {
		t.Fatalf("op string %q", got)
	}
	d := Op{Kind: Backward, Stage: 0, Replica: 0, Micros: []int{2, 3}}
	if got := d.String(); !strings.Contains(got, "B[2 3]") {
		t.Fatalf("doubled op string %q", got)
	}
	if Forward.String() != "F" || Backward.String() != "B" {
		t.Fatal("kind strings")
	}
}

// TestConcatModeString covers the mode names used across flags and reports.
func TestConcatModeString(t *testing.T) {
	if Direct.String() != "direct" || ForwardDoubling.String() != "forward-doubling" ||
		BackwardHalving.String() != "backward-halving" {
		t.Fatal("concat mode names changed")
	}
	if ConcatMode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

// TestGEMSOddN: alternating replicas with an odd micro-batch count.
func TestGEMSOddN(t *testing.T) {
	s := mustScheme(t, "gems", 4, 5)
	down, up := 0, 0
	for _, r := range s.MicroReplica {
		if s.Replicas[r].Down {
			down++
		} else {
			up++
		}
	}
	if down != 3 || up != 2 {
		t.Fatalf("gems split %d/%d", down, up)
	}
}

// TestChimeraFWithNLessD: the generalized construction also supports
// partial fills.
func TestChimeraFWithNLessD(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		s := mustChimera(t, ChimeraConfig{D: 8, N: n, F: 2})
		if c, err := s.ConflictCount(); err != nil || c != 0 {
			t.Fatalf("N=%d: conflicts=%d err=%v", n, c, err)
		}
	}
}

// TestHalvingValidatesHalfTokens: the halving schedule carries two half
// backwards per micro-batch per stage, each exactly once.
func TestHalvingValidatesHalfTokens(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 4, N: 8, Concat: BackwardHalving})
	halves := map[[3]int]int{} // (micro, stage, half) -> count
	for _, ops := range s.Workers {
		for _, op := range ops {
			if op.Kind == Backward {
				if op.Half == 0 {
					t.Fatalf("halving schedule has full backward %v", op)
				}
				halves[[3]int{op.Micros[0], op.Stage, int(op.Half)}]++
			}
		}
	}
	for m := 0; m < 8; m++ {
		for st := 0; st < 4; st++ {
			for h := 1; h <= 2; h++ {
				if halves[[3]int{m, st, h}] != 1 {
					t.Fatalf("half token (%d,%d,%d) count %d", m, st, h, halves[[3]int{m, st, h}])
				}
			}
		}
	}
}

// TestOpsTotalAndReplicasPerWorker covers the schedule accessors.
func TestOpsTotalAndReplicasPerWorker(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 4, N: 4})
	if s.OpsTotal() != 4*4*2 {
		t.Fatalf("ops total %d", s.OpsTotal())
	}
	if s.ReplicasPerWorker() != 2 {
		t.Fatalf("replicas per worker %d", s.ReplicasPerWorker())
	}
	empty := &Schedule{D: 1}
	if empty.ReplicasPerWorker() != 1 {
		t.Fatal("empty schedule default replicas")
	}
}

// TestAnalysisString: the human-readable analysis line renders key fields.
func TestAnalysisString(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 4, N: 4})
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	out := a.String()
	for _, want := range []string{"chimera", "D=4", "bubble", "Mθ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis string %q missing %q", out, want)
		}
	}
}

// TestCheckDNErrors covers constructor guards of the baselines.
func TestCheckDNErrors(t *testing.T) {
	if _, err := GPipe(0, 4); err == nil {
		t.Fatal("D=0 must fail")
	}
	if _, err := DAPPLE(4, 0); err == nil {
		t.Fatal("N=0 must fail")
	}
	if _, err := GEMS(-1, 4); err == nil {
		t.Fatal("negative D must fail")
	}
}

// TestGradReadyCoversAllPlacements: every stage placement on a worker gets
// a gradient-ready time.
func TestGradReadyCoversAllPlacements(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 8, N: 8, F: 2})
	tl, err := s.Replay(UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	ready := s.GradReady(tl)
	for w := 0; w < s.D; w++ {
		if len(ready[w]) != len(s.Replicas) {
			t.Fatalf("worker %d has %d ready entries, want %d", w, len(ready[w]), len(s.Replicas))
		}
		for pl, tr := range ready[w] {
			if tr <= 0 {
				t.Fatalf("worker %d placement %+v ready at %d", w, pl, tr)
			}
		}
	}
}
