package schedule

import "fmt"

// Analysis summarizes a schedule's pipeline-efficiency and memory
// properties, in the units of the paper's Table 2: bubble ratios from
// unit-cost replay, activation memory in multiples of Ma (one micro-batch's
// stage activations), weight memory in multiples of Mθ (one stage's
// weights).
type Analysis struct {
	Scheme string
	D, N   int

	// BubbleRatioEqual is the bubble ratio with forward == backward cost.
	BubbleRatioEqual float64
	// BubbleRatioPractical uses backward = 2× forward (paper's Fig. 2 note).
	BubbleRatioPractical float64

	// ActivationsMa[w] is worker w's peak activation residency (Ma units).
	ActivationsMa []float64
	// WeightsMTheta[w] is worker w's weight memory (Mθ units), including
	// stashed versions for asynchronous schemes.
	WeightsMTheta []float64

	Synchronous bool
}

// Analyze computes the measured analysis of any schedule.
func Analyze(s *Schedule) (*Analysis, error) {
	a := &Analysis{Scheme: s.Scheme, D: s.D, N: s.N, Synchronous: s.Synchronous}
	tlE, err := s.Replay(UnitEqual)
	if err != nil {
		return nil, err
	}
	tlP, err := s.Replay(UnitPractical)
	if err != nil {
		return nil, err
	}
	if s.Synchronous {
		a.BubbleRatioEqual = tlE.BubbleRatio()
		a.BubbleRatioPractical = tlP.BubbleRatio()
	} else {
		// Asynchronous schemes have no flush: steady-state bubbles ≈ 0.
		a.BubbleRatioEqual, a.BubbleRatioPractical = 0, 0
	}
	a.ActivationsMa = s.ActivationHighWater()
	a.WeightsMTheta = make([]float64, s.D)
	replicasPerWorker := float64(len(s.Replicas))
	for w := range a.WeightsMTheta {
		a.WeightsMTheta[w] = replicasPerWorker
	}
	switch s.Scheme {
	case "pipedream":
		for w, v := range s.WeightStashHighWater() {
			a.WeightsMTheta[w] = float64(v)
		}
	case "pipedream-2bw":
		for w := range a.WeightsMTheta {
			a.WeightsMTheta[w] = 2
		}
	}
	return a, nil
}

// MinMax returns the smallest and largest values of v.
func MinMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Table2Row holds the closed-form properties the paper states for a scheme
// (Table 2), for comparison against measured analysis.
type Table2Row struct {
	Scheme string
	// BubbleRatio is the paper's closed form, already accounting for
	// backward = 2× forward where the paper does.
	BubbleRatio float64
	// WeightsLo/Hi bound per-worker weight memory in Mθ units.
	WeightsLo, WeightsHi float64
	// ActLo/Hi bound per-worker activation memory in Ma units.
	ActLo, ActHi float64
	Synchronous  bool
}

// Table2 returns the paper's Table 2 closed forms for given D and N.
func Table2(d, n int) []Table2Row {
	df := float64(d)
	nf := float64(n)
	return []Table2Row{
		{Scheme: "pipedream", BubbleRatio: 0, WeightsLo: 1, WeightsHi: df, ActLo: 1, ActHi: df, Synchronous: false},
		{Scheme: "pipedream-2bw", BubbleRatio: 0, WeightsLo: 2, WeightsHi: 2, ActLo: 1, ActHi: df, Synchronous: false},
		{Scheme: "gpipe", BubbleRatio: (df - 1) / (nf + df - 1), WeightsLo: 1, WeightsHi: 1, ActLo: nf, ActHi: nf, Synchronous: true},
		{Scheme: "gems", BubbleRatio: (df - 1) / (df + 0.5), WeightsLo: 2, WeightsHi: 2, ActLo: 1, ActHi: 1, Synchronous: true},
		{Scheme: "dapple", BubbleRatio: (df - 1) / (nf + df - 1), WeightsLo: 1, WeightsHi: 1, ActLo: 1, ActHi: df, Synchronous: true},
		{Scheme: "chimera", BubbleRatio: (df - 2) / (2*nf + df - 2), WeightsLo: 2, WeightsHi: 2, ActLo: df/2 + 1, ActHi: df, Synchronous: true},
	}
}

// Table3Row holds the closed forms of the paper's Table 3: Chimera
// generalized to 2f pipelines.
type Table3Row struct {
	F             int
	ModelReplicas int
	BubbleRatio   float64
	WeightsMTheta float64
	ActLo, ActHi  float64
}

// Table3 returns Table 3's closed forms for Chimera with 2f pipelines.
func Table3(d, n, f int) Table3Row {
	df, nf, ff := float64(d), float64(n), float64(f)
	return Table3Row{
		F:             f,
		ModelReplicas: 2 * f,
		BubbleRatio:   (df - 2*ff) / (2*ff*nf + df - 2*ff),
		WeightsMTheta: 2 * ff,
		ActLo:         df - df/(2*ff) + 1,
		ActHi:         df,
	}
}

// ChimeraMiddleBubbleRatio is the paper's ratio for the plain Chimera
// schedule before middle bubbles are removed: (D−2)/(3N/2+D−2), stated for
// backward = 2× forward in backward-time units.
func ChimeraMiddleBubbleRatio(d, n int) float64 {
	df, nf := float64(d), float64(n)
	return (df - 2) / (1.5*nf + df - 2)
}

func (a *Analysis) String() string {
	aLo, aHi := MinMax(a.ActivationsMa)
	wLo, wHi := MinMax(a.WeightsMTheta)
	return fmt.Sprintf("%-14s D=%-3d N=%-3d bubble(eq)=%.3f bubble(2x)=%.3f act=[%.1f,%.1f]Ma weights=[%.1f,%.1f]Mθ sync=%v",
		a.Scheme, a.D, a.N, a.BubbleRatioEqual, a.BubbleRatioPractical, aLo, aHi, wLo, wHi, a.Synchronous)
}
