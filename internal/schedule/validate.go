package schedule

import "fmt"

// Validate checks structural invariants of a schedule:
//
//  1. every micro-batch's forward and backward appear exactly once per stage,
//  2. ops live on the worker its replica map assigns,
//  3. per-worker order is consistent with data dependencies (replay succeeds),
//  4. forward precedes backward per (micro-batch, stage) in replay time.
func (s *Schedule) Validate() error {
	seen := make(map[depKey]int)
	for w, ops := range s.Workers {
		for _, op := range ops {
			if op.Stage < 0 || op.Stage >= s.D {
				return fmt.Errorf("%s: op %s has stage out of range", s.Scheme, op)
			}
			if op.Replica < 0 || op.Replica >= len(s.Replicas) {
				return fmt.Errorf("%s: op %s has replica out of range", s.Scheme, op)
			}
			if want := s.Replicas[op.Replica].WorkerOf[op.Stage]; want != w {
				return fmt.Errorf("%s: op %s on worker %d, replica map says %d", s.Scheme, op, w, want)
			}
			for _, m := range op.Micros {
				if m < 0 || m >= s.N {
					return fmt.Errorf("%s: op %s micro out of range", s.Scheme, op)
				}
				if s.MicroReplica[m] != op.Replica {
					return fmt.Errorf("%s: op %s but micro %d belongs to replica %d", s.Scheme, op, m, s.MicroReplica[m])
				}
				seen[depKey{op.Kind, m, op.Stage, op.Half}]++
			}
		}
	}
	for m := 0; m < s.N; m++ {
		for st := 0; st < s.D; st++ {
			if c := seen[depKey{Forward, m, st, 0}]; c != 1 {
				return fmt.Errorf("%s: F for micro %d stage %d appears %d times", s.Scheme, m, st, c)
			}
			if s.HalvedBackward {
				for _, h := range []uint8{1, 2} {
					if c := seen[depKey{Backward, m, st, h}]; c != 1 {
						return fmt.Errorf("%s: B half %d for micro %d stage %d appears %d times", s.Scheme, h, m, st, c)
					}
				}
			} else if c := seen[depKey{Backward, m, st, 0}]; c != 1 {
				return fmt.Errorf("%s: B for micro %d stage %d appears %d times", s.Scheme, m, st, c)
			}
		}
	}
	// Replay must succeed (no deadlock) in both cost models.
	for _, cm := range []CostModel{UnitEqual, UnitPractical} {
		if _, err := s.Replay(cm); err != nil {
			return err
		}
	}
	return nil
}

// ConflictCount replays the schedule in the equal-cost model and counts ops
// that could not start at their construction slot because the worker was
// still busy — zero for a conflict-free merge (the paper's guarantee for
// bidirectional pipelines with even D).
func (s *Schedule) ConflictCount() (int, error) {
	tl, err := s.Replay(UnitEqual)
	if err != nil {
		return 0, err
	}
	conflicts := 0
	for w, ops := range s.Workers {
		for i, op := range ops {
			if tl.Start[w][i] > int64(op.prio) {
				conflicts++
			}
		}
	}
	return conflicts, nil
}
