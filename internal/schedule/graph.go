package schedule

import (
	"fmt"
	"math"
)

// Graph is a schedule compiled to a dependency-graph IR. Nodes are the
// schedule's ops laid out worker-major (node id = base[w] + i for op i of
// worker w); edges are every resolved data dependency plus each worker's
// program order, stored as flat int-indexed CSR arrays with cross-worker
// edges flagged (they pay ReplayConfig.EdgeCost).
//
// Compilation resolves the dependency tokens — a pure function of the
// schedule — exactly once; replaying any number of cost models afterwards is
// a single topological pass, O(ops + edges), with no maps and no rescanning.
// This is the tune-then-print access pattern of the paper's §4 evaluation:
// the planner and the figure sweeps replay one schedule under many costs.
//
// A Graph is immutable after Compile and safe for concurrent replays.
type Graph struct {
	s *Schedule
	// base[w] is the node id of worker w's first op; base[D] is the node
	// count.
	base []int32
	// ops[id] is the op at node id; worker[id] the worker executing it.
	ops    []Op
	worker []int32
	// CSR predecessor lists: node id's predecessors are
	// pred[predStart[id]:predStart[id+1]]. predCross[e] flags edges whose
	// producer runs on a different worker than the consumer.
	predStart []int32
	pred      []int32
	predCross []bool
	// order is a topological order of the node ids (existence is proven at
	// compile time; a cycle is the compile-time deadlock error).
	order []int32
}

// Graph returns the schedule's compiled dependency graph, building it on
// first use. The graph is built once per Schedule and cached — generators
// never mutate a schedule after returning it, and every replay entry point
// is read-only — so concurrent replays share one compilation.
func (s *Schedule) Graph() (*Graph, error) {
	s.compileOnce.Do(func() { s.compiled, s.compileErr = compileGraph(s) })
	return s.compiled, s.compileErr
}

// Nodes returns the op count; Edges the dependency-edge count (data edges
// plus worker program-order edges).
func (g *Graph) Nodes() int { return len(g.ops) }
func (g *Graph) Edges() int { return len(g.pred) }

// depTokens calls fn with every data token op consumes: forward activations
// from the previous stage, the loss dependency at the last stage, and
// boundary gradients from the next stage (matching half under backward
// halving). These are the execution semantics the map interpreter resolved
// per replay; the graph resolves them once.
func (s *Schedule) depTokens(op Op, fn func(depKey)) {
	for _, m := range op.Micros {
		switch {
		case op.Kind == Forward && op.Stage > 0:
			fn(depKey{Forward, m, op.Stage - 1, 0})
		case op.Kind == Backward && op.Stage == s.D-1:
			fn(depKey{Forward, m, op.Stage, 0})
		case op.Kind == Backward:
			fn(depKey{Backward, m, op.Stage + 1, op.Half})
		}
	}
}

func (k depKey) String() string {
	half := ""
	if k.half != 0 {
		half = fmt.Sprintf(" half %d", k.half)
	}
	return fmt.Sprintf("%s(micro %d, stage %d%s)", k.kind, k.micro, k.stage, half)
}

func compileGraph(s *Schedule) (*Graph, error) {
	total := s.OpsTotal()
	if int64(total) > math.MaxInt32 {
		return nil, fmt.Errorf("schedule %q (D=%d N=%d): %d ops exceed the graph's int32 node space", s.Scheme, s.D, s.N, total)
	}
	g := &Graph{
		s:      s,
		base:   make([]int32, s.D+1),
		ops:    make([]Op, 0, total),
		worker: make([]int32, 0, total),
	}
	for w, ops := range s.Workers {
		g.base[w] = int32(len(g.ops))
		g.ops = append(g.ops, ops...)
		for range ops {
			g.worker = append(g.worker, int32(w))
		}
	}
	g.base[s.D] = int32(len(g.ops))

	// producer[token] = node producing it. First producer wins on duplicate
	// tokens; Validate rejects such schedules separately.
	producer := make(map[depKey]int32, total)
	for id, op := range g.ops {
		for _, m := range op.Micros {
			k := depKey{op.Kind, m, op.Stage, op.Half}
			if _, dup := producer[k]; !dup {
				producer[k] = int32(id)
			}
		}
	}

	// Count edges per node, verifying every consumed token has a producer —
	// an unresolvable token is the first class of construction deadlock, and
	// it is diagnosable exactly here, with the op, worker and token in hand.
	counts := make([]int32, total)
	var compileErr error
	for id, op := range g.ops {
		n := int32(0)
		if int32(id) > g.base[g.worker[id]] {
			n++ // program-order edge to the worker's previous op
		}
		s.depTokens(op, func(k depKey) {
			if _, ok := producer[k]; !ok && compileErr == nil {
				compileErr = fmt.Errorf("schedule %q (D=%d N=%d): deadlock: op %s on worker %d waits on %s, which no op produces",
					s.Scheme, s.D, s.N, op, g.worker[id], k)
			}
			n++
		})
		if compileErr != nil {
			return nil, compileErr
		}
		counts[id] = n
	}

	g.predStart = make([]int32, total+1)
	for id, n := range counts {
		g.predStart[id+1] = g.predStart[id] + n
	}
	g.pred = make([]int32, g.predStart[total])
	g.predCross = make([]bool, g.predStart[total])
	for id, op := range g.ops {
		w := g.worker[id]
		e := g.predStart[id]
		if int32(id) > g.base[w] {
			g.pred[e] = int32(id) - 1
			e++
		}
		s.depTokens(op, func(k depKey) {
			p := producer[k]
			g.pred[e] = p
			g.predCross[e] = g.worker[p] != w
			e++
		})
	}

	if err := g.topoSort(producer); err != nil {
		return nil, err
	}
	return g, nil
}

// topoSort computes g.order with Kahn's algorithm over the predecessor
// lists. A cycle is the second class of construction deadlock (an op ordered
// before one of its dependencies on the same worker); the error names the
// first blocked op in worker order and the dependency token it waits on.
func (g *Graph) topoSort(producer map[depKey]int32) error {
	total := len(g.ops)
	indeg := make([]int32, total)
	succCount := make([]int32, total)
	for id := range g.ops {
		indeg[id] = g.predStart[id+1] - g.predStart[id]
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			succCount[g.pred[e]]++
		}
	}
	succStart := make([]int32, total+1)
	for id, n := range succCount {
		succStart[id+1] = succStart[id] + n
	}
	succ := make([]int32, succStart[total])
	fill := make([]int32, total)
	copy(fill, succStart[:total])
	for id := range g.ops {
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			p := g.pred[e]
			succ[fill[p]] = int32(id)
			fill[p]++
		}
	}

	order := make([]int32, 0, total)
	for id := 0; id < total; id++ {
		if indeg[id] == 0 {
			order = append(order, int32(id))
		}
	}
	for head := 0; head < len(order); head++ {
		id := order[head]
		for e := succStart[id]; e < succStart[id+1]; e++ {
			n := succ[e]
			indeg[n]--
			if indeg[n] == 0 {
				order = append(order, n)
			}
		}
	}
	if len(order) < total {
		return g.deadlockError(indeg, producer)
	}
	g.order = order
	return nil
}

// deadlockError diagnoses a dependency cycle: it finds the first worker
// whose next program-order op is blocked, and names that op, its worker, the
// unmet dependency token, and the token's (equally stuck) producer.
func (g *Graph) deadlockError(indeg []int32, producer map[depKey]int32) error {
	s := g.s
	remaining := 0
	for _, d := range indeg {
		if d > 0 {
			remaining++
		}
	}
	for w := 0; w < s.D; w++ {
		for id := g.base[w]; id < g.base[w+1]; id++ {
			if indeg[id] == 0 {
				continue
			}
			// First blocked op of the lowest blocked worker. Its program-
			// order predecessors all scheduled (it is the first blocked one
			// only if indeg counts a data dep)... find the unmet data token.
			op := g.ops[id]
			var unmet *depKey
			s.depTokens(op, func(k depKey) {
				if unmet != nil {
					return
				}
				if p := producer[k]; indeg[p] > 0 || p == id {
					kk := k
					unmet = &kk
				}
			})
			if unmet == nil {
				// Blocked only through program order: an earlier op on this
				// worker is part of the cycle; keep scanning that one.
				continue
			}
			p := producer[*unmet]
			return fmt.Errorf("schedule %q (D=%d N=%d): deadlock with %d ops unscheduled: op %s on worker %d waits on %s, whose producer %s on worker %d cannot run",
				s.Scheme, s.D, s.N, remaining, op, w, *unmet, g.ops[p], g.worker[p])
		}
	}
	return fmt.Errorf("schedule %q (D=%d N=%d): deadlock with %d ops unscheduled", s.Scheme, s.D, s.N, remaining)
}

// ReplayWith evaluates the graph under rc in one topological pass: an op
// starts at the latest of its predecessors' finish times (cross-worker edges
// add EdgeCost) and runs for OpCost. The recurrence is exactly the map
// interpreter's greedy semantics — each worker executes its list in order,
// blocking on receives — so timelines are bit-identical to it.
func (g *Graph) ReplayWith(rc ReplayConfig) *Timeline {
	s := g.s
	tl := &Timeline{
		Start:    make([][]int64, s.D),
		End:      make([][]int64, s.D),
		BusyTime: make([]int64, s.D),
	}
	for w := range tl.Start {
		tl.Start[w] = make([]int64, len(s.Workers[w]))
		tl.End[w] = make([]int64, len(s.Workers[w]))
	}
	end := make([]int64, len(g.ops))
	for _, id := range g.order {
		op := &g.ops[id]
		w := g.worker[id]
		var start int64
		edge, haveEdge := int64(0), false
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			t := end[g.pred[e]]
			if g.predCross[e] {
				if !haveEdge {
					edge, haveEdge = rc.EdgeCost(*op), true
				}
				t += edge
			}
			if t > start {
				start = t
			}
		}
		fin := start + rc.OpCost(int(w), *op)
		end[id] = fin
		i := id - g.base[w]
		tl.Start[w][i], tl.End[w][i] = start, fin
		tl.BusyTime[w] += fin - start
		if fin > tl.Makespan {
			tl.Makespan = fin
		}
	}
	return tl
}

// Replay is ReplayWith under a uniform cost model.
func (g *Graph) Replay(cm CostModel) *Timeline {
	return g.ReplayWith(ReplayConfig{
		OpCost:   func(_ int, op Op) int64 { return cm.Cost(op) },
		EdgeCost: func(Op) int64 { return cm.P2P },
	})
}
