package schedule

import (
	"fmt"
	"math"
	"sync"
)

// Graph is a schedule compiled to a dependency-graph IR. Nodes are the
// schedule's ops laid out worker-major (node id = base[w] + i for op i of
// worker w); edges are every resolved data dependency plus each worker's
// program order, stored as flat int-indexed CSR arrays with cross-worker
// edges flagged (they pay ReplayConfig.EdgeCost).
//
// Compilation resolves the dependency tokens — a pure function of the
// schedule — exactly once; replaying any number of cost models afterwards is
// a single topological pass, O(ops + edges), with no maps and no rescanning.
// This is the tune-then-print access pattern of the paper's §4 evaluation:
// the planner and the figure sweeps replay one schedule under many costs.
//
// A Graph is immutable after Compile and safe for concurrent replays.
type Graph struct {
	s *Schedule
	// base[w] is the node id of worker w's first op; base[D] is the node
	// count.
	base []int32
	// ops[id] is the op at node id; worker[id] the worker executing it.
	ops    []Op
	worker []int32
	// CSR predecessor lists: node id's predecessors are
	// pred[predStart[id]:predStart[id+1]]. An edge whose producer runs on
	// a different worker than the consumer (it pays ReplayConfig.EdgeCost)
	// is stored bitwise-complemented (^p < 0), packing the cross flag into
	// the id's sign instead of a parallel []bool.
	predStart []int32
	pred      []int32
	// order is a topological order of the node ids (existence is proven at
	// compile time; a cycle is the compile-time deadlock error).
	order []int32
}

// predAt unpacks edge e: the producing node id and whether the edge
// crosses workers.
func (g *Graph) predAt(e int32) (int32, bool) {
	p := g.pred[e]
	if p < 0 {
		return ^p, true
	}
	return p, false
}

// producerTab maps dependency tokens to producing node ids through a flat
// index instead of a hash map: token (kind, micro, stage, half) lives at
// ((kind·maxMicro + micro)·D + stage)·3 + half. Compilation is the
// engine's uncached hot path and the map's hashing dominated its profile;
// the flat table removes it. Tables recycle through a pool, and entries
// are epoch-tagged (high half the owning compilation's epoch, low half
// id+1) so a reused table needs no zeroing — a stale epoch reads as "no
// producer".
type producerTab struct {
	d, maxMicro int
	epoch       uint32
	tab         []uint64
}

var producerPool sync.Pool

func getProducerTab(d, maxMicro int) *producerTab {
	p, _ := producerPool.Get().(*producerTab)
	if p == nil {
		p = &producerTab{}
	}
	need := 2 * maxMicro * d * 3
	if cap(p.tab) < need {
		p.tab = make([]uint64, need)
	}
	p.tab = p.tab[:need]
	p.d, p.maxMicro = d, maxMicro
	p.epoch++
	if p.epoch == 0 { // wrapped: stale tags could collide, so clear once
		p.epoch = 1
		clear(p.tab)
	}
	return p
}

func (p *producerTab) idx(k depKey) int {
	return ((int(k.kind)*p.maxMicro+k.micro)*p.d+k.stage)*3 + int(k.half)
}

// get returns the producing node id for k, if any.
func (p *producerTab) get(k depKey) (int32, bool) {
	v := p.tab[p.idx(k)]
	if uint32(v>>32) != p.epoch {
		return -1, false
	}
	return int32(uint32(v)) - 1, true
}

// putFirst records id as k's producer unless one is already recorded
// (first producer wins on duplicate tokens; Validate rejects such
// schedules separately).
func (p *producerTab) putFirst(k depKey, id int32) {
	if i := p.idx(k); uint32(p.tab[i]>>32) != p.epoch {
		p.tab[i] = uint64(p.epoch)<<32 | uint64(uint32(id+1))
	}
}

// Graph returns the schedule's compiled dependency graph, building it on
// first use. The graph is built once per Schedule and cached — generators
// never mutate a schedule after returning it, and every replay entry point
// is read-only — so concurrent replays share one compilation.
func (s *Schedule) Graph() (*Graph, error) {
	s.compileOnce.Do(func() { s.compiled, s.compileErr = compileGraph(s) })
	return s.compiled, s.compileErr
}

// Nodes returns the op count; Edges the dependency-edge count (data edges
// plus worker program-order edges).
func (g *Graph) Nodes() int { return len(g.ops) }
func (g *Graph) Edges() int { return len(g.pred) }

// depTokens calls fn with every data token op consumes: forward activations
// from the previous stage, the loss dependency at the last stage, and
// boundary gradients from the next stage (matching half under backward
// halving). These are the execution semantics the map interpreter resolved
// per replay; the graph resolves them once.
func (s *Schedule) depTokens(op Op, fn func(depKey)) {
	for _, m := range op.Micros {
		switch {
		case op.Kind == Forward && op.Stage > 0:
			fn(depKey{Forward, m, op.Stage - 1, 0})
		case op.Kind == Backward && op.Stage == s.D-1:
			fn(depKey{Forward, m, op.Stage, 0})
		case op.Kind == Backward:
			fn(depKey{Backward, m, op.Stage + 1, op.Half})
		}
	}
}

func (k depKey) String() string {
	half := ""
	if k.half != 0 {
		half = fmt.Sprintf(" half %d", k.half)
	}
	return fmt.Sprintf("%s(micro %d, stage %d%s)", k.kind, k.micro, k.stage, half)
}

func compileGraph(s *Schedule) (*Graph, error) {
	total := s.OpsTotal()
	if int64(total) > math.MaxInt32 {
		return nil, fmt.Errorf("schedule %q (D=%d N=%d): %d ops exceed the graph's int32 node space", s.Scheme, s.D, s.N, total)
	}
	g := &Graph{
		s:      s,
		base:   make([]int32, s.D+1),
		ops:    make([]Op, 0, total),
		worker: make([]int32, 0, total),
	}
	for w, ops := range s.Workers {
		g.base[w] = int32(len(g.ops))
		g.ops = append(g.ops, ops...)
		for range ops {
			g.worker = append(g.worker, int32(w))
		}
	}
	g.base[s.D] = int32(len(g.ops))

	// The producer table needs the micro-id range up front; micro ids are
	// dense small integers by construction, so the flat table stays tiny
	// (2·maxMicro·D·3 entries). maxEdges bounds the CSR: one program-order
	// edge per op plus at most one data token per carried micro.
	maxMicro, maxEdges := 0, 0
	for _, op := range g.ops {
		maxEdges += 1 + len(op.Micros)
		for _, m := range op.Micros {
			if m < 0 {
				return nil, fmt.Errorf("schedule %q (D=%d N=%d): op %s has negative micro-batch id", s.Scheme, s.D, s.N, op)
			}
			if m >= maxMicro {
				maxMicro = m + 1
			}
		}
	}
	producer := getProducerTab(s.D, maxMicro)
	defer producerPool.Put(producer)
	for id, op := range g.ops {
		for _, m := range op.Micros {
			producer.putFirst(depKey{op.Kind, m, op.Stage, op.Half}, int32(id))
		}
	}

	// Build the predecessor CSR in a single pass: edges are emitted
	// directly into an upper-bound-sized array (trimmed afterwards) with
	// predStart compacting as we go, verifying every consumed token has a
	// producer — an unresolvable token is the first class of construction
	// deadlock, and it is diagnosable exactly here, with the op, worker
	// and token in hand.
	g.predStart = make([]int32, total+1)
	pred := make([]int32, maxEdges)
	var compileErr error
	e := int32(0)
	for id, op := range g.ops {
		w := g.worker[id]
		g.predStart[id] = e
		if int32(id) > g.base[w] {
			pred[e] = int32(id) - 1 // program-order edge to the previous op
			e++
		}
		s.depTokens(op, func(k depKey) {
			p, ok := producer.get(k)
			if !ok {
				if compileErr == nil {
					compileErr = fmt.Errorf("schedule %q (D=%d N=%d): deadlock: op %s on worker %d waits on %s, which no op produces",
						s.Scheme, s.D, s.N, op, w, k)
				}
				return
			}
			if g.worker[p] != w {
				p = ^p
			}
			pred[e] = p
			e++
		})
		if compileErr != nil {
			return nil, compileErr
		}
	}
	g.predStart[total] = e
	g.pred = pred[:e:e]

	if err := g.topoSort(producer); err != nil {
		return nil, err
	}
	return g, nil
}

// topoSort computes g.order with Kahn's algorithm over the predecessor
// lists. A cycle is the second class of construction deadlock (an op ordered
// before one of its dependencies on the same worker); the error names the
// first blocked op in worker order and the dependency token it waits on.
func (g *Graph) topoSort(producer *producerTab) error {
	total := len(g.ops)
	edges := int(g.predStart[total])
	// One pooled scratch block for the whole sort: indeg | succStart |
	// succ. The successor CSR is built with the pointer-shift trick —
	// counts land in succStart[p+1], the fill phase advances succStart[p]
	// past each edge, leaving succStart[p] == the end of p's range (and
	// p's start in succStart[p-1]) — so no separate count or fill arrays
	// exist. Only succStart needs zeroing on reuse: indeg is assigned and
	// every succ slot is written exactly once by the fill.
	need := total + (total + 1) + edges
	sp, _ := topoScratchPool.Get().(*[]int32)
	if sp == nil {
		sp = new([]int32)
	}
	if cap(*sp) < need {
		*sp = make([]int32, need)
	}
	defer topoScratchPool.Put(sp)
	block := (*sp)[:need]
	clear(block[total : 2*total+1])
	indeg := block[:total]
	succStart := block[total : 2*total+1]
	succ := block[2*total+1:]
	for id := range g.ops {
		indeg[id] = g.predStart[id+1] - g.predStart[id]
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			p, _ := g.predAt(e)
			succStart[p+1]++
		}
	}
	for id := 0; id < total; id++ {
		succStart[id+1] += succStart[id]
	}
	for id := range g.ops {
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			p, _ := g.predAt(e)
			succ[succStart[p]] = int32(id)
			succStart[p]++
		}
	}

	order := make([]int32, 0, total)
	for id := 0; id < total; id++ {
		if indeg[id] == 0 {
			order = append(order, int32(id))
		}
	}
	for head := 0; head < len(order); head++ {
		id := order[head]
		lo := int32(0)
		if id > 0 {
			lo = succStart[id-1]
		}
		for e := lo; e < succStart[id]; e++ {
			n := succ[e]
			indeg[n]--
			if indeg[n] == 0 {
				order = append(order, n)
			}
		}
	}
	if len(order) < total {
		return g.deadlockError(indeg, producer)
	}
	g.order = order
	return nil
}

// deadlockError diagnoses a dependency cycle: it finds the first worker
// whose next program-order op is blocked, and names that op, its worker, the
// unmet dependency token, and the token's (equally stuck) producer.
func (g *Graph) deadlockError(indeg []int32, producer *producerTab) error {
	s := g.s
	remaining := 0
	for _, d := range indeg {
		if d > 0 {
			remaining++
		}
	}
	for w := 0; w < s.D; w++ {
		for id := g.base[w]; id < g.base[w+1]; id++ {
			if indeg[id] == 0 {
				continue
			}
			// First blocked op of the lowest blocked worker. Its program-
			// order predecessors all scheduled (it is the first blocked one
			// only if indeg counts a data dep)... find the unmet data token.
			op := g.ops[id]
			var unmet *depKey
			s.depTokens(op, func(k depKey) {
				if unmet != nil {
					return
				}
				if p, ok := producer.get(k); ok && (indeg[p] > 0 || p == id) {
					kk := k
					unmet = &kk
				}
			})
			if unmet == nil {
				// Blocked only through program order: an earlier op on this
				// worker is part of the cycle; keep scanning that one.
				continue
			}
			p, _ := producer.get(*unmet)
			return fmt.Errorf("schedule %q (D=%d N=%d): deadlock with %d ops unscheduled: op %s on worker %d waits on %s, whose producer %s on worker %d cannot run",
				s.Scheme, s.D, s.N, remaining, op, w, *unmet, g.ops[p], g.worker[p])
		}
	}
	return fmt.Errorf("schedule %q (D=%d N=%d): deadlock with %d ops unscheduled", s.Scheme, s.D, s.N, remaining)
}

// replayArena is recyclable replay scratch: the timeline it fills (rows
// carved from a single flat backing array) plus the per-node finish-time
// array the pass consumes. Arenas live in one process-wide pool — the
// uncached sweep compiles a fresh graph per evaluation, so per-graph pools
// would never warm up — and rebind to whichever graph takes them: the
// backing arrays grow to the largest graph seen and the row headers are
// re-carved only when the graph changes. Timeline.Release returns them.
type replayArena struct {
	g    *Graph
	tl   Timeline
	end  []int64 // per-node finish times, indexed by node id
	flat []int64 // backing store for the timeline's Start/End rows
}

var arenaPool sync.Pool

// topoScratchPool recycles topoSort's scratch block across compilations
// (the uncached sweep compiles a fresh graph per evaluation).
var topoScratchPool sync.Pool

func (g *Graph) getArena() *replayArena {
	a, _ := arenaPool.Get().(*replayArena)
	if a == nil {
		a = &replayArena{}
	}
	if a.g == g {
		a.tl.arena = a
		return a
	}
	s := g.s
	total := len(g.ops)
	if cap(a.end) < total {
		a.end = make([]int64, total)
		a.flat = make([]int64, 2*total)
	}
	a.end = a.end[:total]
	if cap(a.tl.Start) < s.D {
		a.tl.Start = make([][]int64, s.D)
		a.tl.End = make([][]int64, s.D)
		a.tl.BusyTime = make([]int64, s.D)
	}
	a.tl.Start = a.tl.Start[:s.D]
	a.tl.End = a.tl.End[:s.D]
	a.tl.BusyTime = a.tl.BusyTime[:s.D]
	for w := 0; w < s.D; w++ {
		lo, hi := int(g.base[w]), int(g.base[w+1])
		a.tl.Start[w] = a.flat[lo:hi:hi]
		a.tl.End[w] = a.flat[total+lo : total+hi : total+hi]
	}
	a.g = g
	a.tl.arena = a
	return a
}

// ReplayWith evaluates the graph under rc in one topological pass: an op
// starts at the latest of its predecessors' finish times (cross-worker edges
// add EdgeCost) and runs for OpCost. The recurrence is exactly the map
// interpreter's greedy semantics — each worker executes its list in order,
// blocking on receives — so timelines are bit-identical to it.
//
// The returned timeline's arrays come from the graph's arena pool; callers
// that are done reading may hand them back with Timeline.Release, making
// steady-state replay allocation-free. A timeline that is never released is
// simply collected — Release is an optimization, not an obligation.
func (g *Graph) ReplayWith(rc ReplayConfig) *Timeline {
	a := g.getArena()
	tl := &a.tl
	tl.Makespan = 0
	tl.released = false
	for w := range tl.BusyTime {
		tl.BusyTime[w] = 0
	}
	end := a.end
	for _, id := range g.order {
		op := &g.ops[id]
		w := g.worker[id]
		var start int64
		edge, haveEdge := int64(0), false
		for e := g.predStart[id]; e < g.predStart[id+1]; e++ {
			p := g.pred[e]
			var t int64
			if p < 0 {
				if !haveEdge {
					edge, haveEdge = rc.EdgeCost(*op), true
				}
				t = end[^p] + edge
			} else {
				t = end[p]
			}
			if t > start {
				start = t
			}
		}
		fin := start + rc.OpCost(int(w), *op)
		end[id] = fin
		i := id - g.base[w]
		tl.Start[w][i], tl.End[w][i] = start, fin
		tl.BusyTime[w] += fin - start
		if fin > tl.Makespan {
			tl.Makespan = fin
		}
	}
	return tl
}

// Replay is ReplayWith under a uniform cost model.
func (g *Graph) Replay(cm CostModel) *Timeline {
	return g.ReplayWith(cm.replayConfig())
}
