package schedule

import "testing"

func BenchmarkChimeraConstructD32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Chimera(ChimeraConfig{D: 32, N: 32})
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

func BenchmarkChimeraConstructD32F4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Chimera(ChimeraConfig{D: 32, N: 32, F: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayD32N128(b *testing.B) {
	s, err := Chimera(ChimeraConfig{D: 32, N: 128, Concat: Direct})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Replay(UnitPractical); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateD16N64(b *testing.B) {
	s, err := Chimera(ChimeraConfig{D: 16, N: 64, Concat: Direct})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeAllSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range Schemes() {
			s, err := ByName(name, 8, 16)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Analyze(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
