// Package schedule implements the paper's primary contribution: pipeline
// schedule construction for Chimera's bidirectional pipelines and for the
// baselines it is evaluated against (GPipe, DAPPLE/1F1B, GEMS, PipeDream,
// PipeDream-2BW).
//
// A Schedule is, per worker, an ordered list of forward/backward operations.
// Timing is *derived*, not stored: executing the per-worker lists in order
// under data dependencies yields start/finish times for any cost model. This
// mirrors how a real pipeline executes: each worker simply runs its local
// program and blocks on receives. The dependency structure is compiled once
// per schedule into a Graph IR (graph.go); Replay/ReplayWith (timeline.go)
// are a single topological pass over it.
package schedule

import (
	"fmt"
	"sync"
)

// Kind distinguishes forward from backward passes.
type Kind uint8

const (
	// Forward is a forward pass of one (or two, under forward doubling)
	// micro-batches through one stage.
	Forward Kind = iota
	// Backward is a backward pass (gradient computation) through one stage.
	Backward
)

func (k Kind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Op is one unit of work on one worker.
type Op struct {
	Kind    Kind
	Stage   int   // pipeline stage index in [0, D)
	Replica int   // model replica executing this op
	Micros  []int // micro-batch ids covered (len 1, or 2 under forward doubling)
	// Half distinguishes the two half-micro-batch backward passes of the
	// backward-halving variant: 0 for a full pass, 1 or 2 for halves.
	Half uint8

	// prio is the idealized unit-cost start slot used to order ops within a
	// worker during construction. It is not a scheduled time.
	prio int
}

// Micro returns the first covered micro-batch id.
func (o Op) Micro() int { return o.Micros[0] }

func (o Op) String() string {
	if len(o.Micros) == 1 {
		return fmt.Sprintf("%s%d@s%d/r%d", o.Kind, o.Micros[0], o.Stage, o.Replica)
	}
	return fmt.Sprintf("%s%v@s%d/r%d", o.Kind, o.Micros, o.Stage, o.Replica)
}

// ReplicaMap describes where one model replica's stages live.
type ReplicaMap struct {
	// Down reports the pipeline direction: true if stage0 maps to the lowest
	// worker of the replica's rotation (a "down" pipeline in the paper).
	Down bool
	// WorkerOf[s] is the worker hosting stage s of this replica.
	WorkerOf []int
}

// Schedule is a complete per-iteration pipeline program for D workers.
type Schedule struct {
	// Scheme names the generator ("chimera", "gpipe", "dapple", "gems",
	// "pipedream", "pipedream-2bw").
	Scheme string
	// D is the number of pipeline stages (= workers in one pipeline).
	D int
	// N is the number of micro-batches each worker executes per iteration.
	N int
	// F is the number of pipelines per direction (Chimera's f; 1 elsewhere).
	F int
	// Workers[w] is the ordered op list for worker w.
	Workers [][]Op
	// Replicas maps each model replica to its stage→worker placement.
	Replicas []ReplicaMap
	// Synchronous reports whether the schedule flushes each iteration
	// (gradients synchronized before the optimizer step; no stale weights).
	Synchronous bool
	// DoubledForward marks the forward-doubling variant (§3.5): forward ops
	// carry two micro-batches, at double activation cost.
	DoubledForward bool
	// HalvedBackward marks the backward-halving variant (§3.5): the op
	// structure equals forward doubling, but micro-batches are half size, so
	// a forward op costs Ft(B) and a backward op costs ≈Bt(B)/2.
	HalvedBackward bool
	// MicroReplica[m] is the replica that owns micro-batch m.
	MicroReplica []int
	// Scheduler names the placement policy that produced this schedule
	// ("" or "fixed" for a scheme's own hand-derived placement; "heft",
	// "cpop", "lb" for re-shaped heterogeneous placements — scheduler.go).
	Scheduler string
	// PlacementSpeed holds the per-worker speed factors a list scheduler
	// placed against (nil for fixed placement). Informational: replay cost
	// models apply their own factors.
	PlacementSpeed []float64

	// Compiled dependency-graph IR, built lazily once per schedule (see
	// graph.go). Generators finish all mutation before returning, so the
	// cache is safe to share across concurrent replays. Schedules must not
	// be copied by value after first replay.
	compileOnce sync.Once
	compiled    *Graph
	compileErr  error
}

// ReplicasPerWorker returns how many model replicas have a stage on each
// worker (uniform for all schemes here: one per pipeline crossing it).
func (s *Schedule) ReplicasPerWorker() int {
	if len(s.Replicas) == 0 {
		return 1
	}
	return len(s.Replicas)
}

// StagesOn returns the (replica, stage) pairs hosted by worker w.
func (s *Schedule) StagesOn(w int) []StagePlacement {
	var out []StagePlacement
	for r, rm := range s.Replicas {
		for st, ww := range rm.WorkerOf {
			if ww == w {
				out = append(out, StagePlacement{Replica: r, Stage: st})
			}
		}
	}
	return out
}

// StagePlacement identifies one stage of one replica.
type StagePlacement struct {
	Replica int
	Stage   int
}

// OpsTotal returns the total op count.
func (s *Schedule) OpsTotal() int {
	n := 0
	for _, ops := range s.Workers {
		n += len(ops)
	}
	return n
}

// downMap builds the stage→worker map for down pipeline index i of f: stage
// s lives on worker (i·D/f + s) mod D.
func downMap(d, f, i int) ReplicaMap {
	m := ReplicaMap{Down: true, WorkerOf: make([]int, d)}
	base := i * d / f
	for s := 0; s < d; s++ {
		m.WorkerOf[s] = (base + s) % d
	}
	return m
}

// upMap is the reverse placement of downMap (paper §3.6).
func upMap(d, f, i int) ReplicaMap {
	m := ReplicaMap{Down: false, WorkerOf: make([]int, d)}
	base := i * d / f
	for s := 0; s < d; s++ {
		m.WorkerOf[s] = (base + (d - 1 - s)) % d
	}
	return m
}
