package schedule_test

import (
	"reflect"
	"strings"
	"testing"

	"chimera/internal/refinterp"
	"chimera/internal/schedule"
)

// equivCase is one schedule of the equivalence grid.
type equivCase struct {
	name string
	s    *schedule.Schedule
}

// equivSchedules builds every scheme at several depths plus the Chimera
// concatenation variants and the 2f generalization — the full vocabulary the
// graph IR must reproduce bit-for-bit.
func equivSchedules(t *testing.T) []equivCase {
	t.Helper()
	var out []equivCase
	add := func(name string, s *schedule.Schedule, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out = append(out, equivCase{name, s})
	}
	for _, scheme := range append(schedule.Schemes(), "1f1b") {
		for _, dn := range [][2]int{{4, 4}, {4, 8}, {8, 16}} {
			s, err := schedule.ByName(scheme, dn[0], dn[1])
			add(scheme, s, err)
		}
	}
	for _, c := range []schedule.ChimeraConfig{
		{D: 4, N: 8, Concat: schedule.ForwardDoubling},
		{D: 4, N: 8, Concat: schedule.BackwardHalving},
		{D: 8, N: 16, Concat: schedule.ForwardDoubling},
		{D: 8, N: 24, Concat: schedule.ForwardDoubling}, // odd residual unit
		{D: 8, N: 16, Concat: schedule.BackwardHalving},
		{D: 8, N: 8, F: 2},
		{D: 8, N: 16, F: 2, Concat: schedule.ForwardDoubling},
	} {
		s, err := schedule.Chimera(c)
		add("chimera-variant", s, err)
	}
	return out
}

// assertTimelinesEqual requires bit-identical Start/End/BusyTime/Makespan.
func assertTimelinesEqual(t *testing.T, name, model string, got, want *schedule.Timeline) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("%s/%s: graph makespan %d, interpreter %d", name, model, got.Makespan, want.Makespan)
	}
	if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.End, want.End) {
		t.Fatalf("%s/%s: graph op times diverge from interpreter", name, model)
	}
	if !reflect.DeepEqual(got.BusyTime, want.BusyTime) {
		t.Fatalf("%s/%s: graph busy times diverge from interpreter", name, model)
	}
}

// TestGraphReplayEquivalence: the compiled-graph topological pass must
// produce bit-identical timelines to the retained map interpreter across
// every scheme × cost model × variant, including a heterogeneous
// (worker-dependent) cost assignment through the ReplayWith seam.
func TestGraphReplayEquivalence(t *testing.T) {
	costModels := []struct {
		name string
		cm   schedule.CostModel
	}{
		{"unit-equal", schedule.UnitEqual},
		{"unit-practical", schedule.UnitPractical},
		{"practical-p2p", schedule.CostModel{FUnit: 1, BUnit: 2, P2P: 3}},
		{"calibrated-p2p", schedule.CostModel{FUnit: 173, BUnit: 391, P2P: 29}},
	}
	for _, c := range equivSchedules(t) {
		for _, m := range costModels {
			got, err := c.s.Replay(m.cm)
			if err != nil {
				t.Fatalf("%s/%s: graph replay: %v", c.name, m.name, err)
			}
			want, err := refinterp.Replay(c.s, m.cm)
			if err != nil {
				t.Fatalf("%s/%s: interpreter replay: %v", c.name, m.name, err)
			}
			assertTimelinesEqual(t, c.name, m.name, got, want)
		}
		// Heterogeneous costs through ReplayWith: per-worker multipliers and
		// op-dependent edge costs exercise the OpCost(worker, op) seam.
		rc := schedule.ReplayConfig{
			OpCost: func(w int, op schedule.Op) int64 {
				base := int64(3 * len(op.Micros))
				if op.Kind == schedule.Backward {
					base = int64(7 * len(op.Micros))
				}
				return base * int64(w+1)
			},
			EdgeCost: func(op schedule.Op) int64 { return int64(2*len(op.Micros) + 1) },
		}
		got, err := c.s.ReplayWith(rc)
		if err != nil {
			t.Fatalf("%s/hetero: graph replay: %v", c.name, err)
		}
		want, err := refinterp.ReplayWith(c.s, rc)
		if err != nil {
			t.Fatalf("%s/hetero: interpreter replay: %v", c.name, err)
		}
		assertTimelinesEqual(t, c.name, "hetero", got, want)
	}
}

// TestGraphCriticalPathEquivalence: (Cf, Cb) from the graph probes must
// match the interpreter's.
func TestGraphCriticalPathEquivalence(t *testing.T) {
	for _, c := range equivSchedules(t) {
		gotF, gotB, err := schedule.CriticalPath(c.s)
		if err != nil {
			t.Fatalf("%s: graph critical path: %v", c.name, err)
		}
		wantF, wantB, err := refinterp.CriticalPath(c.s)
		if err != nil {
			t.Fatalf("%s: interpreter critical path: %v", c.name, err)
		}
		if gotF != wantF || gotB != wantB {
			t.Fatalf("%s: graph (Cf, Cb) = (%d, %d), interpreter (%d, %d)",
				c.name, gotF, gotB, wantF, wantB)
		}
	}
}

// TestGraphSizes sanity-checks the IR: one node per op; edges = program-order
// chains (ops − workers with ops) + one data edge per consumed token.
func TestGraphSizes(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != s.OpsTotal() {
		t.Fatalf("graph has %d nodes, schedule %d ops", g.Nodes(), s.OpsTotal())
	}
	// D=4, N=4 chimera: 32 ops, 4 workers → 28 program-order edges. Data
	// edges: every forward except the 4 stage-0 entries (12) plus every
	// backward, including the last stage's loss dependency (16) → 28.
	if want := 28 + 28; g.Edges() != want {
		t.Fatalf("graph has %d edges, want %d", g.Edges(), want)
	}
}

// brokenSchedule builds a hand-rolled 2-worker schedule for deadlock tests.
func brokenSchedule(workers [][]schedule.Op) *schedule.Schedule {
	return &schedule.Schedule{
		Scheme:       "broken",
		D:            2,
		N:            1,
		Workers:      workers,
		Replicas:     []schedule.ReplicaMap{{Down: true, WorkerOf: []int{0, 1}}},
		MicroReplica: []int{0},
		Synchronous:  true,
	}
}

// TestDeadlockNamesMissingProducer: a dependency on a token no op produces
// must be reported with the blocked op, its worker, and the token.
func TestDeadlockNamesMissingProducer(t *testing.T) {
	s := brokenSchedule([][]schedule.Op{
		{{Kind: schedule.Forward, Stage: 0, Micros: []int{0}}},
		// B at the last stage needs F(micro 0, stage 1), which is missing.
		{{Kind: schedule.Backward, Stage: 1, Micros: []int{0}}},
	})
	_, err := s.Replay(schedule.UnitEqual)
	if err == nil {
		t.Fatal("want deadlock error, got none")
	}
	for _, want := range []string{"deadlock", "B0@s1/r0", "worker 1", "F(micro 0, stage 1)", "no op produces"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadlock error %q does not mention %q", err, want)
		}
	}
}

// TestDeadlockNamesCycle: an op ordered before its producer on the same
// worker must be reported with the blocked op, worker, token and producer.
func TestDeadlockNamesCycle(t *testing.T) {
	s := brokenSchedule([][]schedule.Op{
		{{Kind: schedule.Forward, Stage: 0, Micros: []int{0}}},
		// B before the F it depends on: a program-order cycle on worker 1.
		{
			{Kind: schedule.Backward, Stage: 1, Micros: []int{0}},
			{Kind: schedule.Forward, Stage: 1, Micros: []int{0}},
		},
	})
	_, err := s.Replay(schedule.UnitEqual)
	if err == nil {
		t.Fatal("want deadlock error, got none")
	}
	for _, want := range []string{"deadlock", "B0@s1/r0", "worker 1", "F(micro 0, stage 1)", "cannot run"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadlock error %q does not mention %q", err, want)
		}
	}
}

// TestGraphCompileOnce: repeated replays share one compiled graph.
func TestGraphCompileOnce(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("Graph() built twice for one schedule")
	}
}
