package schedule_test

import (
	"reflect"
	"testing"

	"chimera/internal/refinterp"
	"chimera/internal/schedule"
)

// FuzzGraphReplayEquivalence hammers the compiled-graph replay against the
// retained map interpreter (internal/refinterp) over fuzzer-chosen schemes,
// depths, micro-batch counts and cost models: any (scheme, d, n) both can
// build must replay to bit-identical timelines and Eq. 1 critical paths
// under any cost model. The committed seed corpus (testdata/fuzz) covers
// every scheme; CI additionally fuzzes for a bounded time.
func FuzzGraphReplayEquivalence(f *testing.F) {
	seeds := []struct {
		scheme      string
		d, n        int
		fu, bu, p2p int64
	}{
		{"chimera", 4, 4, 1, 1, 0},
		{"chimera", 8, 8, 1, 2, 3},
		{"gpipe", 4, 8, 1, 2, 0},
		{"dapple", 6, 6, 2, 3, 1},
		{"gems", 4, 4, 1, 2, 0},
		{"pipedream", 4, 8, 1, 2, 2},
		{"pipedream-2bw", 4, 8, 1, 2, 0},
		{"1f1b", 8, 8, 1, 3, 5},
	}
	for _, s := range seeds {
		f.Add(s.scheme, s.d, s.n, s.fu, s.bu, s.p2p)
	}
	f.Fuzz(func(t *testing.T, scheme string, d, n int, fu, bu, p2p int64) {
		// Bound the instance so one input cannot dominate the fuzz budget;
		// cost units stay positive and small enough that no replay sum can
		// approach int64 overflow.
		if d < 2 || d > 12 || n < 1 || n > 24 {
			t.Skip()
		}
		if fu < 1 || fu > 1_000 || bu < 1 || bu > 1_000 || p2p < 0 || p2p > 1_000 {
			t.Skip()
		}
		s, err := schedule.ByName(scheme, d, n)
		if err != nil {
			t.Skip() // unknown scheme or infeasible (d, n) — not this fuzz's concern
		}
		cm := schedule.CostModel{FUnit: fu, BUnit: bu, P2P: p2p}
		got, gerr := s.Replay(cm)
		want, werr := refinterp.Replay(s, cm)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s d=%d n=%d: graph err %v, interpreter err %v", scheme, d, n, gerr, werr)
		}
		if gerr != nil {
			return // both reject the schedule — equivalent behavior
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("%s d=%d n=%d cm=%+v: makespan %d != %d", scheme, d, n, cm, got.Makespan, want.Makespan)
		}
		if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.End, want.End) {
			t.Fatalf("%s d=%d n=%d cm=%+v: op timings diverge", scheme, d, n, cm)
		}
		if !reflect.DeepEqual(got.BusyTime, want.BusyTime) {
			t.Fatalf("%s d=%d n=%d cm=%+v: busy times diverge", scheme, d, n, cm)
		}
		gcf, gcb, gerr := schedule.CriticalPath(s)
		wcf, wcb, werr := refinterp.CriticalPath(s)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s d=%d n=%d: critical-path err %v vs %v", scheme, d, n, gerr, werr)
		}
		if gerr == nil && (gcf != wcf || gcb != wcb) {
			t.Fatalf("%s d=%d n=%d: critical path (%d, %d) != (%d, %d)", scheme, d, n, gcf, gcb, wcf, wcb)
		}
	})
}
