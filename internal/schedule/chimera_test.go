package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func mustChimera(t *testing.T, cfg ChimeraConfig) *Schedule {
	t.Helper()
	s, err := Chimera(cfg)
	if err != nil {
		t.Fatalf("chimera %+v: %v", cfg, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("chimera %+v invalid: %v", cfg, err)
	}
	return s
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestChimeraBaseMatchesPaperFormulas pins the base N=D schedule to the
// paper's Table 2 row: bubble ratios in both cost models, the activation
// memory interval [(D/2+1)Ma, D·Ma], and 2Mθ weights.
func TestChimeraBaseMatchesPaperFormulas(t *testing.T) {
	for _, d := range []int{4, 8, 16, 32} {
		n := d
		s := mustChimera(t, ChimeraConfig{D: d, N: n})
		a, err := Analyze(s)
		if err != nil {
			t.Fatal(err)
		}
		df, nf := float64(d), float64(n)
		wantEq := (df - 2) / (2*nf + df - 2)
		if !approxEq(a.BubbleRatioEqual, wantEq, 1e-9) {
			t.Errorf("D=%d: bubble(eq)=%v want %v", d, a.BubbleRatioEqual, wantEq)
		}
		wantPr := ChimeraMiddleBubbleRatio(d, n)
		if !approxEq(a.BubbleRatioPractical, wantPr, 1e-9) {
			t.Errorf("D=%d: bubble(2x)=%v want %v", d, a.BubbleRatioPractical, wantPr)
		}
		lo, hi := MinMax(a.ActivationsMa)
		if lo != df/2+1 || hi != df {
			t.Errorf("D=%d: activations [%v,%v] want [%v,%v]", d, lo, hi, df/2+1, df)
		}
		for w, v := range a.WeightsMTheta {
			if v != 2 {
				t.Errorf("D=%d worker %d: weights %v want 2", d, w, v)
			}
		}
	}
}

// TestChimeraMergeConflictFree verifies the paper's §3.1 guarantee: merging
// the down and up pipelines never double-books a worker slot, for any even D
// and N ≤ D.
func TestChimeraMergeConflictFree(t *testing.T) {
	for d := 2; d <= 32; d += 2 {
		for _, n := range []int{1, 2, d / 2, d - 1, d} {
			if n < 1 {
				continue
			}
			s := mustChimera(t, ChimeraConfig{D: d, N: n})
			c, err := s.ConflictCount()
			if err != nil {
				t.Fatal(err)
			}
			if c != 0 {
				t.Errorf("D=%d N=%d: %d slot conflicts in bidirectional merge", d, n, c)
			}
		}
	}
}

// TestChimeraFConflictFree extends the conflict-freedom check to the
// generalized 2f-pipeline construction (§3.6) and pins Table 3's bubble
// ratio (D−2f)/(2fN+D−2f) and activation interval exactly.
func TestChimeraFConflictFree(t *testing.T) {
	for _, d := range []int{4, 8, 12, 16, 24, 32} {
		for f := 1; f <= d/2; f++ {
			if (d/2)%f != 0 {
				continue
			}
			s := mustChimera(t, ChimeraConfig{D: d, N: d, F: f})
			c, err := s.ConflictCount()
			if err != nil {
				t.Fatal(err)
			}
			if c != 0 {
				t.Errorf("D=%d f=%d: %d conflicts", d, f, c)
			}
			want := Table3(d, d, f)
			tl, err := s.Replay(UnitEqual)
			if err != nil {
				t.Fatal(err)
			}
			if got := tl.BubbleRatio(); !approxEq(got, want.BubbleRatio, 1e-9) {
				t.Errorf("D=%d f=%d: bubble %v want %v", d, f, got, want.BubbleRatio)
			}
			lo, hi := MinMax(s.ActivationHighWater())
			if lo != want.ActLo || hi != want.ActHi {
				t.Errorf("D=%d f=%d: activations [%v,%v] want [%v,%v]", d, f, lo, hi, want.ActLo, want.ActHi)
			}
			if got := len(s.Replicas); got != want.ModelReplicas {
				t.Errorf("D=%d f=%d: %d replicas want %d", d, f, got, want.ModelReplicas)
			}
		}
	}
}

// TestChimeraDirectConcat pins the N > D direct-concatenation bubble ratio:
// basic units concatenate seamlessly in the equal-cost model, keeping total
// bubbles at D−2 regardless of K = N/D.
func TestChimeraDirectConcat(t *testing.T) {
	for _, d := range []int{4, 8, 16} {
		for _, k := range []int{2, 3, 4, 8} {
			n := k * d
			s := mustChimera(t, ChimeraConfig{D: d, N: n, Concat: Direct})
			tl, err := s.Replay(UnitEqual)
			if err != nil {
				t.Fatal(err)
			}
			df, nf := float64(d), float64(n)
			want := (df - 2) / (2*nf + df - 2)
			if got := tl.BubbleRatio(); !approxEq(got, want, 1e-9) {
				t.Errorf("D=%d N=%d: bubble %v want %v", d, n, got, want)
			}
			if c, _ := s.ConflictCount(); c != 0 {
				t.Errorf("D=%d N=%d: %d conflicts", d, n, c)
			}
			// Activation residency must not grow with K (1F1B property).
			_, hi := MinMax(s.ActivationHighWater())
			if hi > df {
				t.Errorf("D=%d N=%d: activation high water %v exceeds D", d, n, hi)
			}
		}
	}
}

// TestChimeraDirectPracticalHasIntermediateBubbles reproduces the §3.5
// observation: with backward = 2× forward, direct concatenation leaves
// intermediate bubbles (bubble ratio above the equal-cost D−2 level).
func TestChimeraDirectPracticalHasIntermediateBubbles(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 8, N: 32, Concat: Direct})
	tlE, _ := s.Replay(UnitEqual)
	tlP, _ := s.Replay(UnitPractical)
	if tlP.BubbleRatio() <= tlE.BubbleRatio() {
		t.Errorf("expected more bubbles under 2x backward: eq=%v practical=%v",
			tlE.BubbleRatio(), tlP.BubbleRatio())
	}
}

// TestForwardDoublingBeatsDirectUnderRecompute reproduces the Fig. 18
// regime: when activation recomputation is required (backward ≈ 3×
// forward), forward doubling removes intermediate bubbles and beats direct
// concatenation.
func TestForwardDoublingBeatsDirectUnderRecompute(t *testing.T) {
	recompute := CostModel{FUnit: 1, BUnit: 3}
	for _, c := range []struct{ d, n int }{{4, 8}, {8, 16}, {8, 32}, {16, 32}} {
		dir := mustChimera(t, ChimeraConfig{D: c.d, N: c.n, Concat: Direct})
		dbl := mustChimera(t, ChimeraConfig{D: c.d, N: c.n, Concat: ForwardDoubling})
		tDir, err := dir.Replay(recompute)
		if err != nil {
			t.Fatal(err)
		}
		tDbl, err := dbl.Replay(recompute)
		if err != nil {
			t.Fatal(err)
		}
		if tDbl.Makespan >= tDir.Makespan {
			t.Errorf("D=%d N=%d: doubling %d !< direct %d under recompute",
				c.d, c.n, tDbl.Makespan, tDir.Makespan)
		}
	}
}

// TestDirectBeatsHalvingWithoutRecompute reproduces the Fig. 17 regime:
// without recomputation pressure, direct concatenation is at least as good
// as backward halving (which pays sub-max micro-batch efficiency).
func TestDirectBeatsHalvingWithoutRecompute(t *testing.T) {
	for _, c := range []struct{ d, n int }{{4, 8}, {8, 16}, {8, 32}} {
		dir := mustChimera(t, ChimeraConfig{D: c.d, N: c.n, Concat: Direct})
		hlv := mustChimera(t, ChimeraConfig{D: c.d, N: c.n, Concat: BackwardHalving})
		tDir, _ := dir.Replay(UnitPractical)
		tHlv, _ := hlv.Replay(UnitPractical)
		if tDir.Makespan > tHlv.Makespan {
			t.Errorf("D=%d N=%d: direct %d worse than halving %d", c.d, c.n, tDir.Makespan, tHlv.Makespan)
		}
	}
}

// TestDoublingMemoryDoubles checks the §3.5 memory statement: forward
// doubling doubles peak activation residency versus direct; backward
// halving does not increase it.
func TestDoublingMemoryDoubles(t *testing.T) {
	dir := mustChimera(t, ChimeraConfig{D: 8, N: 16, Concat: Direct})
	dbl := mustChimera(t, ChimeraConfig{D: 8, N: 16, Concat: ForwardDoubling})
	hlv := mustChimera(t, ChimeraConfig{D: 8, N: 16, Concat: BackwardHalving})
	_, dirHi := MinMax(dir.ActivationHighWater())
	_, dblHi := MinMax(dbl.ActivationHighWater())
	_, hlvHi := MinMax(hlv.ActivationHighWater())
	// Doubling holds two micro-batches per in-flight forward: its peak must
	// clearly exceed direct's and is bounded by the paper's 2× statement.
	if dblHi <= dirHi || dblHi > 2*dirHi {
		t.Errorf("doubling peak %v, want in (direct %v, 2×direct %v]", dblHi, dirHi, 2*dirHi)
	}
	if hlvHi > dirHi {
		t.Errorf("halving peak %v exceeds direct %v", hlvHi, dirHi)
	}
}

// TestDoublingPhaseChoice documents that the configured up-pipeline phase is
// the best of the candidate offsets for the evaluated depths (a measured
// design choice, cf. DESIGN.md ablations).
func TestDoublingPhaseChoice(t *testing.T) {
	defer SetDoublingUpPhase(0)
	span := func(d, n, phase int) int64 {
		SetDoublingUpPhase(phase)
		s, err := Chimera(ChimeraConfig{D: d, N: n, Concat: ForwardDoubling})
		if err != nil {
			t.Fatal(err)
		}
		tl, err := s.Replay(UnitPractical)
		if err != nil {
			t.Fatal(err)
		}
		return tl.Makespan
	}
	for _, c := range []struct{ d, n int }{{4, 8}, {8, 16}, {16, 32}} {
		best := span(c.d, c.n, 0)
		for p := 1; p <= 4; p++ {
			if s := span(c.d, c.n, p); s < best {
				t.Errorf("D=%d N=%d: phase %d (span %d) beats configured phase 0 (span %d)",
					c.d, c.n, p, s, best)
			}
		}
	}
}

// TestChimeraNLessD covers §3.1's N < D support including N = 1.
func TestChimeraNLessD(t *testing.T) {
	for _, d := range []int{4, 8, 16} {
		for n := 1; n < d; n++ {
			s := mustChimera(t, ChimeraConfig{D: d, N: n})
			// Micro-batches split across the two pipelines as evenly as
			// possible: ceil(N/2) down.
			down, up := 0, 0
			for _, r := range s.MicroReplica {
				if s.Replicas[r].Down {
					down++
				} else {
					up++
				}
			}
			if down != (n+1)/2 || up != n/2 {
				t.Errorf("D=%d N=%d: split %d/%d want %d/%d", d, n, down, up, (n+1)/2, n/2)
			}
		}
	}
}

// TestChimeraOddResidualDoubling covers the K odd case of §3.5: ⌊K/2⌋
// doubled units plus one plain unit.
func TestChimeraOddResidualDoubling(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 4, N: 12, Concat: ForwardDoubling}) // K=3
	var doubled, single int
	for _, ops := range s.Workers {
		for _, op := range ops {
			if op.Kind == Forward {
				if len(op.Micros) == 2 {
					doubled++
				} else {
					single++
				}
			}
		}
	}
	if doubled == 0 || single == 0 {
		t.Errorf("odd K should mix doubled (%d) and single (%d) forwards", doubled, single)
	}
}

// TestChimeraRejectsBadConfigs exercises constructor validation.
func TestChimeraRejectsBadConfigs(t *testing.T) {
	bad := []ChimeraConfig{
		{D: 3, N: 3},                          // odd D
		{D: 0, N: 1},                          // zero D
		{D: 4, N: 0},                          // zero N
		{D: 4, N: 4, F: 3},                    // f does not divide D/2
		{D: 4, N: 6, Concat: ForwardDoubling}, // N not multiple of D
		{D: 8, N: 12, F: 2, Concat: BackwardHalving}, // N not multiple of D
	}
	for _, cfg := range bad {
		if _, err := Chimera(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

// TestChimeraPropertyValidAcrossSpace is a property test over the schedule
// space: every constructible configuration validates and replays without
// deadlock in both cost models.
func TestChimeraPropertyValidAcrossSpace(t *testing.T) {
	f := func(dSeed, nSeed, fSeed, modeSeed uint8) bool {
		d := 2 * (1 + int(dSeed)%8) // 2..16
		n := 1 + int(nSeed)%(3*d)
		mode := ConcatMode(int(modeSeed) % 3)
		// Pick a valid f.
		fc := 1 + int(fSeed)%(d/2)
		for (d/2)%fc != 0 {
			fc--
		}
		if mode != Direct && n%d != 0 {
			n = d * (1 + int(nSeed)%3)
		}
		s, err := Chimera(ChimeraConfig{D: d, N: n, F: fc, Concat: mode})
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaMaps checks the §3.6 placement rules on the Fig. 8 example:
// D=8, f=2, down pipeline 1 maps stages [0..7] to workers [4,5,6,7,0,1,2,3].
func TestReplicaMaps(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 8, N: 8, F: 2})
	want := []int{4, 5, 6, 7, 0, 1, 2, 3}
	for st, w := range s.Replicas[1].WorkerOf {
		if w != want[st] {
			t.Fatalf("down1 stage %d on worker %d, want %d", st, w, want[st])
		}
	}
	// Up pipeline 1 is the exact reverse.
	for st, w := range s.Replicas[3].WorkerOf {
		if w != want[7-st] {
			t.Fatalf("up1 stage %d on worker %d, want %d", st, w, want[7-st])
		}
	}
}

// TestStagesOnWorker verifies each worker hosts exactly one stage per
// replica.
func TestStagesOnWorker(t *testing.T) {
	s := mustChimera(t, ChimeraConfig{D: 8, N: 8, F: 2})
	for w := 0; w < s.D; w++ {
		pl := s.StagesOn(w)
		if len(pl) != 4 {
			t.Fatalf("worker %d hosts %d stages, want 4", w, len(pl))
		}
		seen := map[int]bool{}
		for _, p := range pl {
			if seen[p.Replica] {
				t.Fatalf("worker %d hosts two stages of replica %d", w, p.Replica)
			}
			seen[p.Replica] = true
		}
	}
}
