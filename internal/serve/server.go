package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/obs"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/trace"
)

// Config configures New.
type Config struct {
	// Workers sizes the engine's worker pool (0 = GOMAXPROCS).
	Workers int
	// CacheCapacity bounds each engine memo table with LRU eviction
	// (0 = unbounded). A daemon should set this: it runs forever, so the
	// batch default of never evicting would grow without limit.
	CacheCapacity int
	// MaxInflight bounds concurrently executing heavy requests (plan,
	// simulate, analyze, render); excess requests are shed with 429 so a
	// traffic spike degrades gracefully instead of exhausting memory.
	// 0 selects 4×GOMAXPROCS.
	MaxInflight int
	// DrainTimeout bounds graceful shutdown's wait for in-flight requests
	// (0 = 15s).
	DrainTimeout time.Duration
	// DrainDelay holds the listener open (still serving, but with /readyz
	// reporting draining) for this long after shutdown begins, giving a
	// router or load balancer time to observe the readiness flip and stop
	// routing new work before connections start being refused (0 = none).
	DrainDelay time.Duration
	// SnapshotPath is where POST /v1/cache/snapshot writes the response-cache
	// snapshot ("" disables the endpoint). The path is fixed at construction
	// — clients trigger snapshots but never choose filesystem locations.
	SnapshotPath string
	// Engine, when non-nil, supplies a caller-owned engine and overrides
	// Workers/CacheCapacity (used by tests and embedders that want to
	// share the process-wide Default engine). A caller-owned engine keeps
	// whatever instrumentation it was built with; only server-constructed
	// engines register their engine_ series on the server's registry.
	Engine *engine.Engine
	// Registry, when non-nil, supplies a caller-owned metric registry; the
	// server otherwise creates its own. All serve_/engine_/fleet_ series
	// register here and GET /metrics serves it in Prometheus text format.
	Registry *obs.Registry
	// FlightRecorder sizes the ring of recent request spans behind
	// GET /debug/requests (0 = 256 spans; negative disables recording).
	FlightRecorder int
	// EnablePprof mounts the standard runtime profiles under /debug/pprof/.
	// Off by default: profiles reveal operational detail and cost CPU.
	EnablePprof bool
	// AccessLog, when non-nil, receives one log line per request.
	AccessLog io.Writer
	// LogFormat selects the access-log encoding: "text" (default) or
	// "json" (one JSON object per line, stable field order).
	LogFormat string
}

// Server routes the HTTP/JSON API onto a shared evaluation engine. Build
// with New; the zero value is not usable.
type Server struct {
	eng          *engine.Engine
	mux          *http.ServeMux
	inflight     chan struct{}
	maxInflight  int
	drainTimeout time.Duration

	// planCache memoizes encoded /v1/plan responses keyed by the resolved
	// (value-type) plan request. The engine memoizes schedule construction
	// and critical paths, but PlanOn re-runs its Eq. 1 replays per call;
	// for a daemon the whole response is the natural memoization unit —
	// a warm plan is one lookup plus one write. Single-flight, and bounded
	// by the same CacheCapacity as the engine tables.
	planCache *engine.Memo[perfmodel.PlanRequest, planOutcome]

	// fleetCache is planCache for /v1/fleet/plan. A fleet.Request holds
	// slices, so it cannot itself be a comparable memo key; the key is its
	// canonical JSON encoding (field order is fixed by the struct, so
	// equal resolved requests encode to equal bytes).
	fleetCache *engine.Memo[string, planOutcome]

	// fleetSimCache is the same for /v1/fleet/simulate, keyed by the
	// canonical JSON of the resolved scenario (classic or elastic — the two
	// marshal to distinct shapes, so keys cannot collide across modes).
	fleetSimCache *engine.Memo[string, planOutcome]

	// allocator carries the fleet allocator's plan memo across requests
	// (it shares the server's engine underneath).
	allocator *fleet.Allocator

	// started anchors /healthz's uptime report.
	started time.Time

	// draining flips once graceful shutdown begins: /readyz answers 503 and
	// /healthz reports "draining" so routers stop sending new work while the
	// listener is still open (see Config.DrainDelay).
	draining atomic.Bool
	// drainStart is when BeginDrain flipped (unix nanos, 0 before): sheds
	// during the drain window compute a Retry-After that outlives the
	// replica instead of inviting a 1-second retry against a closing
	// listener.
	drainStart atomic.Int64
	// drainDelay is Config.DrainDelay.
	drainDelay time.Duration

	// snapshotPath is Config.SnapshotPath; the snapshot bookkeeping feeds
	// the serve_snapshot_* series.
	snapshotPath     string
	lastSnapshotNano atomic.Int64
	snapshotsWritten atomic.Uint64
	restoredEntries  atomic.Int64

	// obs is the serving tier's observability state: registry, span flight
	// recorder, per-endpoint instrument handles, access log. Always set by
	// New.
	obs *serveObs

	plan, planBatch, fleetPlan, fleetSim, simulate, analyze, schedules, render, health, ready, stats, cacheSnapshot atomic.Uint64
	shed, clientErrors, serverErrors                                                                                atomic.Uint64
}

// planOutcome is one cached plan: exactly one of body and err is set.
type planOutcome struct {
	body []byte
	err  error
}

// New builds a Server and its engine.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	eng := cfg.Engine
	if eng == nil {
		opts := []engine.Option{engine.Observe(cfg.Registry)}
		if cfg.Workers > 0 {
			opts = append(opts, engine.Workers(cfg.Workers))
		}
		if cfg.CacheCapacity > 0 {
			opts = append(opts, engine.Capacity(cfg.CacheCapacity))
		}
		eng = engine.New(opts...)
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 15 * time.Second
	}
	s := &Server{
		eng:           eng,
		inflight:      make(chan struct{}, maxInflight),
		maxInflight:   maxInflight,
		drainTimeout:  drain,
		drainDelay:    cfg.DrainDelay,
		snapshotPath:  cfg.SnapshotPath,
		planCache:     engine.NewMemoCap[perfmodel.PlanRequest, planOutcome](cfg.CacheCapacity),
		fleetCache:    engine.NewMemoCap[string, planOutcome](cfg.CacheCapacity),
		fleetSimCache: engine.NewMemoCap[string, planOutcome](cfg.CacheCapacity),
		allocator:     fleet.NewAllocatorCap(eng, cfg.CacheCapacity),
		started:       time.Now(),
	}
	s.initObserve(cfg)
	s.allocator.Observe(cfg.Registry)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.instrument("plan", s.admitted(s.handlePlan)))
	mux.HandleFunc("POST /v1/plan:batch", s.instrument("plan_batch", s.admitted(s.handlePlanBatch)))
	mux.HandleFunc("POST /v1/cache/snapshot", s.instrument("cache_snapshot", s.admitted(s.handleCacheSnapshot)))
	mux.HandleFunc("GET /readyz", s.instrument("ready", s.handleReady))
	mux.HandleFunc("POST /v1/fleet/plan", s.instrument("fleet_plan", s.admitted(s.handleFleetPlan)))
	mux.HandleFunc("POST /v1/fleet/simulate", s.instrument("fleet_simulate", s.admitted(s.handleFleetSimulate)))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.admitted(s.handleSimulate)))
	mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.admitted(s.handleAnalyze)))
	mux.HandleFunc("POST /v1/render", s.instrument("render", s.admitted(s.handleRender)))
	mux.HandleFunc("GET /v1/schedules", s.instrument("schedules", s.handleSchedules))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("health", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/requests", s.instrument("debug_requests", s.handleDebugRequests))
	if cfg.EnablePprof {
		mountPprof(mux)
	}
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler (for embedding and tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the server's evaluation engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

// MaxInflight reports the admission-control bound.
func (s *Server) MaxInflight() int { return s.maxInflight }

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests (bounded by DrainTimeout) before returning.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe on a caller-supplied listener (tests use a
// pre-bound port). It always closes the listener.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.mux,
		// Bound connection-level resource use: a client cannot hold a
		// connection open unboundedly while trickling headers, and idle
		// keep-alive connections are reaped.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Flip readiness first, then keep the listener open for DrainDelay:
		// a router polling /readyz (or any LB) sees "draining" and routes
		// around this replica while it can still answer, instead of new
		// requests racing the listener close.
		s.BeginDrain()
		if s.drainDelay > 0 {
			select {
			case err := <-errc:
				return err
			case <-time.After(s.drainDelay):
			}
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		return hs.Shutdown(drainCtx)
	}
}

// BeginDrain marks the server as draining: /readyz flips to 503 and
// /healthz reports "draining". Serve calls it automatically when its context
// is cancelled; exposed so embedders driving their own http.Server can wire
// the same readiness contract.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainStart.Store(time.Now().UnixNano())
	}
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// maxBodyBytes caps request bodies; every valid request is far smaller, and
// without it one client could buffer gigabytes into a decode while holding
// an admission slot.
const maxBodyBytes = 1 << 20

// admitted wraps a heavy handler with admission control: a request either
// takes one of MaxInflight slots immediately or is shed with 429 — it never
// queues, so offered load beyond the bound cannot pile up work or memory.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
			h(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
			s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "server at capacity, retry later"})
		}
	}
}

// retryAfter is the shed hint in whole seconds: 1 under normal overload,
// but once draining it covers what remains of the drain window plus the
// in-flight shutdown bound — this replica is going away, so a shed client
// should come back after it is gone (and land elsewhere via its router)
// rather than hammer a dying replica at 1-second intervals.
func (s *Server) retryAfter() string {
	if !s.draining.Load() {
		return "1"
	}
	rem := s.drainDelay + s.drainTimeout
	if start := s.drainStart.Load(); start > 0 {
		rem -= time.Since(time.Unix(0, start))
	}
	secs := int(math.Ceil(rem.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		s.serverErrors.Add(1)
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

// badRequest replies 400 with the validation error.
func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.clientErrors.Add(1)
	s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

// unprocessable replies 422: the request was well-formed but has no
// feasible/constructible answer (e.g. no configuration fits memory).
func (s *Server) unprocessable(w http.ResponseWriter, err error) {
	s.clientErrors.Add(1)
	s.writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.plan.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req PlanRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	preq, err := req.Resolve()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	span.StartPhase("cache")
	computed := false
	out := s.planCache.Do(preq, func() planOutcome {
		computed = true
		span.StartPhase("plan")
		preds, err := perfmodel.PlanOn(s.eng, preq)
		if err != nil {
			return planOutcome{err: err}
		}
		span.StartPhase("encode")
		raw, err := json.Marshal(NewPlanResponse(preq.Model.Name, preq.P, preq.MiniBatch, preds))
		if err != nil {
			return planOutcome{err: err}
		}
		return planOutcome{body: raw}
	})
	span.EndPhase()
	span.SetAttr("cache", cacheDisposition(computed))
	if out.err != nil {
		s.unprocessable(w, out.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out.body)
}

// handlePlanBatch answers /v1/plan:batch: N plan problems validated
// together, charged one admission slot, and evaluated as a single engine
// fan-out (perfmodel.PlanBatchOn concatenates every item's candidate grid
// into one sweep over the worker pool, amortizing pool traversal and memo
// lookups). Results are per-item and byte-identical to N sequential
// /v1/plan calls: plan bodies come from the same codec path and land in the
// same response cache, errors carry the same message a sequential call
// would have returned.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	s.planBatch.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req BatchPlanRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	n := len(req.Requests)
	if n == 0 {
		s.badRequest(w, errString("plan batch: requests must be non-empty"))
		return
	}
	if n > MaxBatchItems {
		s.badRequest(w, fmt.Errorf("plan batch: %d requests exceed the limit %d", n, MaxBatchItems))
		return
	}
	s.obs.batchItems.Observe(time.Duration(n) * time.Second)
	span.StartPhase("resolve")
	resolved := make([]perfmodel.PlanRequest, n)
	resolveErr := make([]error, n)
	for i, item := range req.Requests {
		resolved[i], resolveErr[i] = item.Resolve()
	}
	span.StartPhase("cache")
	outs := make([]planOutcome, n)
	have := make([]bool, n)
	// Distinct cache misses, deduplicated: repeated items plan once.
	missIdx := make(map[perfmodel.PlanRequest]int)
	var missReqs []perfmodel.PlanRequest
	for i := range resolved {
		if resolveErr[i] != nil {
			continue
		}
		if out, ok := s.planCache.Cached(resolved[i]); ok {
			outs[i], have[i] = out, true
		} else if _, dup := missIdx[resolved[i]]; !dup {
			missIdx[resolved[i]] = len(missReqs)
			missReqs = append(missReqs, resolved[i])
		}
	}
	computed := len(missReqs) > 0
	if computed {
		span.StartPhase("plan")
		predsList, errsList := perfmodel.PlanBatchOn(s.eng, missReqs)
		span.StartPhase("encode")
		missOuts := make([]planOutcome, len(missReqs))
		for j := range missReqs {
			if errsList[j] != nil {
				missOuts[j] = planOutcome{err: errsList[j]}
				continue
			}
			raw, err := json.Marshal(NewPlanResponse(missReqs[j].Model.Name, missReqs[j].P, missReqs[j].MiniBatch, predsList[j]))
			if err != nil {
				missOuts[j] = planOutcome{err: err}
				continue
			}
			missOuts[j] = planOutcome{body: raw}
		}
		// Publish through the cache's single-flight front door: a
		// computation already in flight for the same key wins and its value
		// is what this batch serves, exactly as a sequential call would.
		for i := range resolved {
			if resolveErr[i] != nil || have[i] {
				continue
			}
			j, ok := missIdx[resolved[i]]
			if !ok {
				continue
			}
			outs[i] = s.planCache.Do(resolved[i], func() planOutcome { return missOuts[j] })
			have[i] = true
		}
	}
	span.EndPhase()
	span.SetAttr("cache", cacheDisposition(computed))
	resp := BatchPlanResponse{Items: n, Results: make([]BatchPlanItem, n)}
	for i := range resp.Results {
		switch {
		case resolveErr[i] != nil:
			s.clientErrors.Add(1)
			resp.Results[i].Error = resolveErr[i].Error()
		case outs[i].err != nil:
			s.clientErrors.Add(1)
			resp.Results[i].Error = outs[i].err.Error()
		default:
			resp.Results[i].Plan = json.RawMessage(outs[i].body)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetPlan(w http.ResponseWriter, r *http.Request) {
	s.fleetPlan.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req FleetPlanRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	freq, err := req.Resolve()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	key, err := json.Marshal(freq)
	if err != nil {
		s.serverErrors.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "encoding failure"})
		return
	}
	span.StartPhase("cache")
	computed := false
	out := s.fleetCache.Do(string(key), func() planOutcome {
		computed = true
		span.StartPhase("allocate")
		al, err := s.allocator.Allocate(freq)
		if err != nil {
			return planOutcome{err: err}
		}
		span.StartPhase("encode")
		raw, err := json.Marshal(NewFleetPlanResponse(al))
		if err != nil {
			return planOutcome{err: err}
		}
		return planOutcome{body: raw}
	})
	span.EndPhase()
	span.SetAttr("cache", cacheDisposition(computed))
	if out.err != nil {
		s.unprocessable(w, out.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out.body)
}

// handleFleetSimulate replays a fleet scenario — classic (trace) or
// elastic (events with node churn). Responses cache under the canonical
// JSON of the resolved scenario, and both reply shapes encode through the
// same constructors chimera-fleet -json uses, so a served simulation is
// byte-identical to the in-process encoding.
func (s *Server) handleFleetSimulate(w http.ResponseWriter, r *http.Request) {
	s.fleetSim.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var sc FleetScenario
	if err := DecodeStrict(r.Body, &sc); err != nil {
		s.badRequest(w, err)
		return
	}
	var key []byte
	var run func() (any, error)
	if sc.Elastic() {
		esc, err := sc.ResolveElastic()
		if err != nil {
			s.badRequest(w, err)
			return
		}
		if key, err = json.Marshal(esc); err != nil {
			s.serverErrors.Add(1)
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "encoding failure"})
			return
		}
		run = func() (any, error) {
			res, err := s.allocator.SimulateElastic(esc)
			if err != nil {
				return nil, err
			}
			return NewFleetElasticResponse(res), nil
		}
	} else {
		csc, err := sc.Resolve()
		if err != nil {
			s.badRequest(w, err)
			return
		}
		if len(csc.Trace) == 0 {
			s.badRequest(w, errEmptyFleetTrace)
			return
		}
		if key, err = json.Marshal(csc); err != nil {
			s.serverErrors.Add(1)
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "encoding failure"})
			return
		}
		run = func() (any, error) {
			res, err := s.allocator.Simulate(csc)
			if err != nil {
				return nil, err
			}
			return NewFleetSimResponse(res), nil
		}
	}
	span.StartPhase("cache")
	computed := false
	out := s.fleetSimCache.Do(string(key), func() planOutcome {
		computed = true
		span.StartPhase("simulate")
		resp, err := run()
		if err != nil {
			return planOutcome{err: err}
		}
		span.StartPhase("encode")
		raw, err := json.Marshal(resp)
		if err != nil {
			return planOutcome{err: err}
		}
		return planOutcome{body: raw}
	})
	span.EndPhase()
	span.SetAttr("cache", cacheDisposition(computed))
	if out.err != nil {
		s.unprocessable(w, out.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out.body)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.simulate.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req SimulateRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	// Warm the schedule memo under its own phase so the span separates
	// schedule construction from the replay proper; Evaluate below reuses
	// the memoized schedule (and surfaces the same error on failure).
	span.StartPhase("schedule_build")
	if _, err := s.eng.Schedule(spec.Sched); err != nil {
		s.unprocessable(w, err)
		return
	}
	span.StartPhase("replay")
	out := s.eng.Evaluate(spec)
	if out.Err != nil {
		s.unprocessable(w, out.Err)
		return
	}
	span.StartPhase("encode")
	s.writeJSON(w, http.StatusOK, NewSimulateResponse(out.Result, out.Recompute))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.analyze.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req AnalyzeRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	key, err := req.Schedule.Key()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	span.StartPhase("schedule_build")
	sched, err := s.eng.Schedule(key)
	if err != nil {
		s.unprocessable(w, err)
		return
	}
	span.StartPhase("analyze")
	a, err := schedule.Analyze(sched)
	if err != nil {
		s.unprocessable(w, err)
		return
	}
	span.StartPhase("encode")
	s.writeJSON(w, http.StatusOK, NewAnalyzeResponse(a))
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	s.render.Add(1)
	span := obs.SpanFrom(r.Context())
	span.StartPhase("decode")
	var req RenderRequest
	if err := DecodeStrict(r.Body, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	key, err := req.Schedule.Key()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	cm, err := req.CostModel()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	format := req.Format
	if format == "" {
		format = "ascii"
	}
	switch format {
	case "ascii", "svg", "chrome":
	default:
		s.badRequest(w, errUnknownFormat(format))
		return
	}
	span.StartPhase("schedule_build")
	sched, err := s.eng.Schedule(key)
	if err != nil {
		s.unprocessable(w, err)
		return
	}
	span.StartPhase("render")
	var content string
	switch format {
	case "ascii":
		content, err = trace.ASCII(sched, cm)
	case "svg":
		content, err = trace.SVG(sched, cm)
	case "chrome":
		var raw []byte
		raw, err = trace.ChromeTrace(sched, cm)
		content = string(raw)
	}
	if err != nil {
		s.unprocessable(w, err)
		return
	}
	span.StartPhase("encode")
	s.writeJSON(w, http.StatusOK, RenderResponse{Format: format, Content: content})
}

func (s *Server) handleSchedules(w http.ResponseWriter, r *http.Request) {
	s.schedules.Add(1)
	s.writeJSON(w, http.StatusOK, SchedulesResponse{
		Schemes:     Schemes(),
		Schedulers:  Schedulers(),
		ConcatModes: ConcatModes(),
		Models:      ModelPresets(),
		Platforms:   PlatformPresets(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.stats.Add(1)
	s.writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.health.Add(1)
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        status,
		Version:       BuildVersion(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// handleReady is the readiness half of the health split: 200 while the
// server accepts new work, 503 from the moment graceful shutdown begins.
// Liveness (/healthz) keeps answering 200 throughout, so an orchestrator
// can tell "busy draining" from "dead".
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.ready.Add(1)
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready"})
}

// handleCacheSnapshot writes the response caches to the path fixed at
// construction (Config.SnapshotPath). The client triggers the snapshot but
// never names the file — accepting paths over HTTP would let any client
// write anywhere the daemon can.
func (s *Server) handleCacheSnapshot(w http.ResponseWriter, r *http.Request) {
	s.cacheSnapshot.Add(1)
	span := obs.SpanFrom(r.Context())
	if s.snapshotPath == "" {
		s.unprocessable(w, errString("cache snapshot: no snapshot path configured (start chimera-serve with -snapshot)"))
		return
	}
	span.StartPhase("snapshot")
	st, err := s.WriteSnapshot(s.snapshotPath)
	span.EndPhase()
	if err != nil {
		s.serverErrors.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{Path: s.snapshotPath, Entries: st.Entries, Bytes: st.Bytes})
}

// BuildVersion reports the binary's build identity for /healthz and the
// daemon's startup log: the main module version when stamped, refined by
// the VCS revision when the binary was built from a checkout.
func BuildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := info.Main.Version
	if v == "" {
		v = "unknown"
	}
	var rev, dirty string
	for _, set := range info.Settings {
		switch set.Key {
		case "vcs.revision":
			rev = set.Value
		case "vcs.modified":
			if set.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return v + " (" + rev + dirty + ")"
	}
	return v
}

// Snapshot returns the current service counters (what /v1/stats serves).
// The legacy counter fields are unchanged; the metrics field appends the
// registry's full snapshot (counters, gauges, histogram quantiles).
func (s *Server) Snapshot() StatsResponse {
	resp := StatsResponse{
		Requests: RequestCounts{
			Plan: s.plan.Load(), PlanBatch: s.planBatch.Load(),
			FleetPlan: s.fleetPlan.Load(), FleetSimulate: s.fleetSim.Load(),
			Simulate: s.simulate.Load(),
			Analyze:  s.analyze.Load(), Schedules: s.schedules.Load(),
			Render: s.render.Load(), Health: s.health.Load(), Ready: s.ready.Load(),
			Stats: s.stats.Load(), CacheSnapshot: s.cacheSnapshot.Load(),
		},
		Shed:          s.shed.Load(),
		ClientErrors:  s.clientErrors.Load(),
		ServerErrors:  s.serverErrors.Load(),
		MaxInflight:   s.maxInflight,
		PlanCache:     memoStats(s.planCache),
		FleetCache:    memoStats(s.fleetCache),
		FleetSimCache: memoStats(s.fleetSimCache),
		Engine:        NewEngineStats(s.eng.WorkerCount(), s.eng.Stats()),
	}
	if s.obs != nil {
		snap := s.obs.reg.Snapshot()
		resp.Metrics = &snap
	}
	return resp
}

// cacheDisposition names a response-cache lookup's outcome for span attrs
// and the endpoint latency histograms' cache label.
func cacheDisposition(computed bool) string {
	if computed {
		return "miss"
	}
	return "hit"
}

func memoStats[K comparable](m *engine.Memo[K, planOutcome]) CacheTableJSON {
	hits, misses := m.Stats()
	return CacheTableJSON{Hits: hits, Misses: misses, Evictions: m.Evictions(), Entries: m.Len()}
}

type errUnknownFormat string

func (e errUnknownFormat) Error() string {
	return "render: unknown format \"" + string(e) + "\" (have ascii, svg, chrome)"
}

type errString string

func (e errString) Error() string { return string(e) }

const errEmptyFleetTrace = errString("fleet: scenario has neither a trace nor events to simulate")
