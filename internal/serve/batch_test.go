package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// batchItemBodies are the per-item request documents the batch tests
// exercise: two distinct valid plans, a duplicate of the first, and an
// infeasible request (P=7 has no even-D pipeline split for bert48).
var batchItemBodies = []string{
	planBody,
	`{"model":{"preset":"bert48"},"p":8,"mini_batch":64,"max_b":8,"platform":{"preset":"pizdaint"}}`,
	planBody,
	`{"model":{"preset":"bert48"},"p":7,"mini_batch":512,"platform":{"preset":"pizdaint"}}`,
}

func batchBody(items []string) string {
	return `{"requests":[` + strings.Join(items, ",") + `]}`
}

// TestPlanBatchMatchesSequential: each batch item's plan bytes (or error
// string) must be exactly what a sequential /v1/plan call on a fresh
// server produces — the batch endpoint changes admission, not answers.
func TestPlanBatchMatchesSequential(t *testing.T) {
	_, batchTS := newTestServer(t, Config{})
	status, body := post(t, batchTS, "/v1/plan:batch", batchBody(batchItemBodies))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var resp BatchPlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Items != len(batchItemBodies) || len(resp.Results) != len(batchItemBodies) {
		t.Fatalf("batch returned items=%d results=%d, want %d", resp.Items, len(resp.Results), len(batchItemBodies))
	}

	_, seqTS := newTestServer(t, Config{})
	for i, item := range batchItemBodies {
		seqStatus, seqBody := post(t, seqTS, "/v1/plan", item)
		if seqStatus == http.StatusOK {
			if resp.Results[i].Error != "" {
				t.Fatalf("item %d: batch error %q, sequential succeeded", i, resp.Results[i].Error)
			}
			if !bytes.Equal(resp.Results[i].Plan, seqBody) {
				t.Fatalf("item %d: batch plan diverges from sequential /v1/plan:\nbatch: %s\nseq:   %s",
					i, resp.Results[i].Plan, seqBody)
			}
			continue
		}
		var seqErr ErrorResponse
		if err := json.Unmarshal(seqBody, &seqErr); err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Plan != nil {
			t.Fatalf("item %d: batch succeeded, sequential failed with %q", i, seqErr.Error)
		}
		if resp.Results[i].Error != seqErr.Error {
			t.Fatalf("item %d: batch error %q != sequential %q", i, resp.Results[i].Error, seqErr.Error)
		}
	}
}

// TestPlanBatchDedupAndCacheShared: duplicate batch items plan once, the
// result lands in the plan cache, and a later single /v1/plan for the
// same request is a byte-identical cache hit.
func TestPlanBatchDedupAndCacheShared(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/plan:batch", batchBody([]string{planBody, planBody, planBody}))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var resp BatchPlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().PlanCache; got.Misses != 1 || got.Entries != 1 {
		t.Fatalf("3 duplicate items produced misses=%d entries=%d, want 1 compute and 1 entry", got.Misses, got.Entries)
	}
	for i := 1; i < len(resp.Results); i++ {
		if !bytes.Equal(resp.Results[i].Plan, resp.Results[0].Plan) {
			t.Fatalf("duplicate item %d diverged from item 0", i)
		}
	}

	singleStatus, singleBody := post(t, ts, "/v1/plan", planBody)
	if singleStatus != http.StatusOK {
		t.Fatalf("single status %d: %s", singleStatus, singleBody)
	}
	if !bytes.Equal(singleBody, resp.Results[0].Plan) {
		t.Fatal("single /v1/plan after batch diverges from the batch item")
	}
	if got := s.Snapshot().PlanCache; got.Hits == 0 || got.Misses != 1 {
		t.Fatalf("single call after batch: hits=%d misses=%d, want a cache hit with no new compute", got.Hits, got.Misses)
	}
}

// TestPlanBatchRejections: malformed, empty and oversized batches are
// client errors — the whole document is refused, no items run.
func TestPlanBatchRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	oversize := make([]string, MaxBatchItems+1)
	for i := range oversize {
		oversize[i] = planBody
	}
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"requests":`},
		{"unknown-field", `{"requestz":[]}`},
		{"empty", batchBody(nil)},
		{"oversize", batchBody(oversize)},
	}
	for _, tc := range cases {
		if status, body := post(t, ts, "/v1/plan:batch", tc.body); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %.120s", tc.name, status, body)
		}
	}
}

// TestReadySplitAndDrain: /readyz flips to 503 "draining" the moment
// drain begins while /healthz keeps answering 200 (reporting "draining"),
// so orchestrators can tell busy-draining from dead.
func TestReadySplitAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body := get(t, ts, "/readyz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ready"`) {
		t.Fatalf("/readyz before drain: %d %s", status, body)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	status, body = get(t, ts, "/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), `"draining"`) {
		t.Fatalf("/readyz during drain: %d %s, want 503 draining", status, body)
	}
	status, body = get(t, ts, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200 (liveness must survive drain)", status)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("/healthz status %q during drain, want draining", health.Status)
	}

	if counts := s.Snapshot().Requests; counts.Ready != 2 {
		t.Fatalf("ready counter %d, want 2", counts.Ready)
	}
}
