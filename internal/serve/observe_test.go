package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"chimera/internal/obs"
)

// TestMetricsEndpoint: after traffic, GET /metrics serves Prometheus text
// with the serving, engine and fleet series the CI smoke asserts on.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/plan", planBody) // miss
	post(t, ts, "/v1/plan", planBody) // hit
	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	text := string(body)
	for _, series := range []string{
		`serve_requests_total{endpoint="plan"} 2`,
		`serve_request_duration_seconds_count{cache="miss",endpoint="plan"} 1`,
		`serve_request_duration_seconds_count{cache="hit",endpoint="plan"} 1`,
		`serve_cache_hits_total{cache="plan"} 1`,
		`serve_cache_misses_total{cache="plan"} 1`,
		"serve_inflight ",
		"serve_shed_total 0",
		`engine_cache_hits_total{table="outcomes"}`,
		"engine_evaluate_seconds_count",
		"fleet_replans_total 0",
		`fleet_allocator_bids_total{result="miss"} 0`,
		"# TYPE serve_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
	// Histograms must carry cumulative buckets ending in +Inf.
	if !strings.Contains(text, `serve_request_duration_seconds_bucket{cache="miss",endpoint="plan",le="+Inf"} 1`) {
		t.Error("missing +Inf bucket for the plan-miss histogram")
	}
}

// TestRequestIDHeader: every response carries X-Request-Id; a client-
// supplied ID is honored and distinct requests get distinct minted IDs.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("no X-Request-Id on response")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id2 := resp.Header.Get("X-Request-Id"); id2 == id1 {
		t.Fatalf("two requests shared ID %q", id1)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-42" {
		t.Fatalf("client ID not honored: got %q", got)
	}
}

// TestDebugRequests: the flight recorder retains recent spans with phases
// and serves them newest-first, client IDs attached.
func TestDebugRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{FlightRecorder: 8})
	post(t, ts, "/v1/plan", planBody)
	post(t, ts, "/v1/plan", planBody)
	status, body := get(t, ts, "/debug/requests")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp DebugRequestsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Capacity != 8 || resp.Total < 2 {
		t.Fatalf("recorder state: %+v", resp)
	}
	// Newest span first is the /debug/requests GET itself is not recorded
	// until it finishes, so the head is the second plan (a cache hit).
	head := resp.Requests[0]
	if head.Name != "plan" || head.Attrs["cache"] != "hit" || head.Attrs["status"] != "200" {
		t.Fatalf("head span: %+v", head)
	}
	if head.ID == "" {
		t.Fatal("span has no request ID")
	}
	// The cache-miss plan span must carry the full phase chain.
	var miss *obs.SpanRecord
	for i := range resp.Requests {
		if resp.Requests[i].Name == "plan" && resp.Requests[i].Attrs["cache"] == "miss" {
			miss = &resp.Requests[i]
			break
		}
	}
	if miss == nil {
		t.Fatal("no recorded miss span")
	}
	var names []string
	for _, p := range miss.Phases {
		names = append(names, p.Name)
	}
	want := []string{"decode", "cache", "plan", "encode"}
	if len(names) != len(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", names, want)
		}
	}
}

// TestJSONAccessLog: with LogFormat json every request emits one JSON line
// carrying the same request ID the response header returned.
func TestJSONAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newTestServer(t, Config{AccessLog: w, LogFormat: "json"})
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get("X-Request-Id")

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), lines)
	}
	var entry struct {
		Time   string  `json:"time"`
		ID     string  `json:"id"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMS  float64 `json:"dur_ms"`
		Cache  string  `json:"cache"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", lines[0], err)
	}
	if entry.ID != wantID {
		t.Fatalf("log ID %q != header ID %q", entry.ID, wantID)
	}
	if entry.Method != "POST" || entry.Path != "/v1/plan" || entry.Status != 200 || entry.Cache != "miss" {
		t.Fatalf("log entry: %+v", entry)
	}
	if entry.Time == "" || entry.DurMS < 0 {
		t.Fatalf("log entry missing time/duration: %+v", entry)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestStatsEmbedsMetrics: /v1/stats keeps its legacy fields and appends a
// metrics snapshot with counters and histogram quantiles.
func TestStatsEmbedsMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/plan", planBody)
	status, body := get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp StatsResponse
	if err := DecodeStrict(bytes.NewReader(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Requests.Plan != 1 {
		t.Fatalf("legacy plan count = %d, want 1", resp.Requests.Plan)
	}
	if resp.Metrics == nil {
		t.Fatal("stats response has no metrics snapshot")
	}
	if got := resp.Metrics.Counters[`serve_requests_total{endpoint="plan"}`]; got != 1 {
		t.Fatalf("metrics plan counter = %d, want 1", got)
	}
	h, ok := resp.Metrics.Histograms[`serve_request_duration_seconds{cache="miss",endpoint="plan"}`]
	if !ok || h.Count != 1 || h.P50Seconds <= 0 {
		t.Fatalf("plan-miss histogram digest: %+v (present=%v)", h, ok)
	}
}

// TestPprofOptIn: /debug/pprof/ is 404 by default and serves when enabled.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if status, _ := get(t, off, "/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in (status %d)", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if status, body := get(t, on, "/debug/pprof/"); status != http.StatusOK {
		t.Fatalf("pprof index status %d: %s", status, body)
	}
}

// TestShedObservability: shed requests surface in serve_shed_total and get
// recorded spans with status 429.
func TestShedObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Fill the only slot so the next request sheds.
	s.inflight <- struct{}{}
	status, _ := post(t, ts, "/v1/plan", planBody)
	<-s.inflight
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", status)
	}
	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	if !strings.Contains(string(body), "serve_shed_total 1") {
		t.Error("shed not counted in serve_shed_total")
	}
	status, body = get(t, ts, "/debug/requests")
	if status != http.StatusOK {
		t.Fatal("debug/requests unavailable")
	}
	if !strings.Contains(string(body), `"status":"429"`) {
		t.Error("shed request span not recorded with status 429")
	}
}
