package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"chimera/internal/sim"
)

// TestSimulateSpeedFactorValidation: the /v1/simulate codec must enforce
// the speed-factor contract — length equal to d, factors within bounds —
// while unknown fields stay rejected.
func TestSimulateSpeedFactorValidation(t *testing.T) {
	mk := func(factors string) string {
		return `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},
			"micro_batch":4,"w":4,"speed_factors":` + factors + `,"platform":{"preset":"pizdaint"}}`
	}
	for _, tc := range []struct {
		name, body, want string
	}{
		{"short", mk(`[1,1.5]`), "lengths must match"},
		{"long", mk(`[1,1,1,1,1.5]`), "lengths must match"},
		{"zero", mk(`[1,0,1,1]`), "out of range"},
		{"negative", mk(`[1,-1,1,1]`), "out of range"},
		{"too-small", mk(`[1,1e-9,1,1]`), "out of range"},
		{"too-big", mk(`[1,1e9,1,1]`), "out of range"},
		{"unknown-field", strings.Replace(mk(`[1,1,1,1]`), "speed_factors", "speed_factor", 1), "unknown field"},
	} {
		var req SimulateRequest
		err := DecodeStrict(strings.NewReader(tc.body), &req)
		if err == nil {
			_, err = req.Spec()
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}

	var req SimulateRequest
	if err := DecodeStrict(strings.NewReader(mk(`[1,1.5,1,1]`)), &req); err != nil {
		t.Fatal(err)
	}
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.EncodeSpeedFactors([]float64{1, 1.5, 1, 1}); spec.SpeedFactors != want {
		t.Fatalf("spec.SpeedFactors = %q, want %q", spec.SpeedFactors, want)
	}
}

// TestPlanSpeedFactorValidation: /v1/plan factors fix the pipeline depth,
// so the list must be an even legal depth dividing p.
func TestPlanSpeedFactorValidation(t *testing.T) {
	mk := func(factors string) string {
		return `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,
			"speed_factors":` + factors + `,"platform":{"preset":"pizdaint"}}`
	}
	for _, tc := range []struct {
		name, body, want string
	}{
		{"odd", mk(`[1,1,1]`), "even length"},
		{"single", mk(`[1]`), "even length"},
		{"not-dividing", mk(`[1,1,1,1,1,1]`), "must divide p"},
		{"zero", mk(`[1,0,1,1]`), "out of range"},
	} {
		var req PlanRequest
		err := DecodeStrict(strings.NewReader(tc.body), &req)
		if err == nil {
			_, err = req.Resolve()
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}

	var req PlanRequest
	if err := DecodeStrict(strings.NewReader(mk(`[1,1,2,1]`)), &req); err != nil {
		t.Fatal(err)
	}
	preq, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.EncodeSpeedFactors([]float64{1, 1, 2, 1}); preq.SpeedFactors != want {
		t.Fatalf("plan SpeedFactors = %q, want %q", preq.SpeedFactors, want)
	}
}

// TestSimulateHonorsSpeedFactors: a served straggler simulation must report
// lower throughput than the homogeneous run of the same configuration, and
// all-1 factors must match it exactly.
func TestSimulateHonorsSpeedFactors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mk := func(factors string) string {
		body := `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},
			"micro_batch":4,"w":4,"auto_recompute":true`
		if factors != "" {
			body += `,"speed_factors":` + factors
		}
		return body + `,"platform":{"preset":"pizdaint"}}`
	}
	run := func(factors string) SimulateResponse {
		status, body := post(t, ts, "/v1/simulate", mk(factors))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		var out SimulateResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run("")
	unit := run(`[1,1,1,1]`)
	if !reflect.DeepEqual(base, unit) {
		t.Fatalf("unit factors changed the served result: %+v vs %+v", base, unit)
	}
	slow := run(`[1,1,2,1]`)
	if !(slow.Throughput < base.Throughput) {
		t.Fatalf("straggler throughput %.2f not below homogeneous %.2f", slow.Throughput, base.Throughput)
	}
	if !(slow.IterTime > base.IterTime) {
		t.Fatalf("straggler iter %.6f not above homogeneous %.6f", slow.IterTime, base.IterTime)
	}
}

// TestPlanHonorsSpeedFactors: a served heterogeneous plan is restricted to
// the factor list's depth and must predict lower throughput than the same
// depth planned homogeneously.
func TestPlanHonorsSpeedFactors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	run := func(factors string) PlanResponse {
		body := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16`
		if factors != "" {
			body += `,"speed_factors":` + factors
		}
		body += `,"platform":{"preset":"pizdaint"}}`
		status, raw := post(t, ts, "/v1/plan", body)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		var out PlanResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	hom := run(`[1,1,1,1]`)
	het := run(`[1,1,2,1]`)
	if len(hom.Predictions) == 0 || len(het.Predictions) == 0 {
		t.Fatalf("empty predictions: hom=%d het=%d", len(hom.Predictions), len(het.Predictions))
	}
	for _, p := range append(hom.Predictions, het.Predictions...) {
		if p.D != 4 {
			t.Fatalf("factors of length 4 must restrict the search to D=4, got D=%d", p.D)
		}
	}
	if !(het.Predictions[0].Throughput < hom.Predictions[0].Throughput) {
		t.Fatalf("heterogeneous plan throughput %.2f not below homogeneous %.2f",
			het.Predictions[0].Throughput, hom.Predictions[0].Throughput)
	}
}
