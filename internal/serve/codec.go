// Package serve exposes the planner (§3.4), the cluster simulator, schedule
// analysis (Table 2 units) and timeline rendering over an HTTP/JSON API, so
// one long-running daemon (cmd/chimera-serve) can amortize the engine's
// memoized schedules and evaluations across every client instead of each
// process paying cold-cache sweep costs.
//
// This file is the single serialization path for the service and the CLIs'
// -json modes: request types resolve named presets (models, platforms,
// schemes) into the internal value types with strict validation, and
// response types give the internal results stable wire shapes. Encoding is
// canonical (encoding/json, no indentation), so two encodes of equal values
// are byte-identical — the property the load generator's equivalence gate
// relies on.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/obs"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// ModelRef names a model-zoo preset or inlines a full transformer config.
// Exactly one of the two forms must be used.
type ModelRef struct {
	// Preset is a Table 4 zoo name: bert48 | bert48-512 | gpt2 | gpt2-32.
	Preset string `json:"preset,omitempty"`
	// Inline configuration (all five numeric fields required when used).
	Name   string `json:"name,omitempty"`
	Layers int    `json:"layers,omitempty"`
	Hidden int    `json:"hidden,omitempty"`
	Heads  int    `json:"heads,omitempty"`
	Vocab  int    `json:"vocab,omitempty"`
	SeqLen int    `json:"seq_len,omitempty"`
}

// Request size caps. Admission control bounds how many requests execute at
// once; these bound how big any single admitted request can be, so one
// oversized problem cannot exhaust the daemon's memory on its own. They sit
// well above the paper's largest cases (P=2048, D=64, B̂=2048).
const (
	// MaxStages and MaxMicroBatches bound a schedule's D and N; their
	// product bounds the op-structure allocation (≤ ~1M ops).
	MaxStages       = 4096
	MaxMicroBatches = 4096
	MaxScheduleOps  = 1 << 20
	// MaxWorkers bounds P and W; MaxMiniBatch bounds B̂ and B.
	MaxWorkers   = 1 << 16
	MaxMiniBatch = 1 << 20
	// MaxModelDim bounds every inline model field (layers, hidden, heads,
	// vocab, seq_len).
	MaxModelDim = 1 << 20
)

// Speed-factor bounds: a factor is a per-worker compute-time multiplier
// (1 = nominal, 2 = twice as slow). The bounds are the simulator's own —
// beyond them its integer time quantization overflows — re-exported so the
// wire contract names them.
const (
	MinSpeedFactor = sim.MinSpeedFactor
	MaxSpeedFactor = sim.MaxSpeedFactor
)

// validateSpeedFactors checks the shared per-worker speed-factor rules:
// every factor in [MinSpeedFactor, MaxSpeedFactor], and (when wantLen > 0)
// the list length equal to the pipeline depth D.
func validateSpeedFactors(ctx string, factors []float64, wantLen int) error {
	if wantLen > 0 && len(factors) != wantLen {
		return fmt.Errorf("%s: speed_factors has %d entries, schedule has d=%d workers (lengths must match)",
			ctx, len(factors), wantLen)
	}
	for w, f := range factors {
		if !(f >= MinSpeedFactor && f <= MaxSpeedFactor) {
			return fmt.Errorf("%s: speed_factors[%d] = %g out of range [%g, %g]",
				ctx, w, f, float64(MinSpeedFactor), float64(MaxSpeedFactor))
		}
	}
	return nil
}

var modelPresets = map[string]func() model.Config{
	"bert48":     model.BERT48,
	"bert48-512": model.BERT48Seq512,
	"gpt2":       model.GPT2,
	"gpt2-32":    model.GPT2Small32,
}

// ModelPresets lists the model preset names the service resolves.
func ModelPresets() []string { return sortedKeys(modelPresets) }

// ResolveModel returns the preset config for a zoo name.
func ResolveModel(name string) (model.Config, error) {
	fn, ok := modelPresets[name]
	if !ok {
		return model.Config{}, fmt.Errorf("unknown model preset %q (have %s)",
			name, strings.Join(ModelPresets(), ", "))
	}
	return fn(), nil
}

// Resolve validates the reference and returns the model config.
func (r ModelRef) Resolve() (model.Config, error) {
	inline := r.Layers != 0 || r.Hidden != 0 || r.Heads != 0 || r.Vocab != 0 || r.SeqLen != 0 || r.Name != ""
	if r.Preset != "" {
		if inline {
			return model.Config{}, fmt.Errorf("model: preset %q and inline fields are mutually exclusive", r.Preset)
		}
		return ResolveModel(r.Preset)
	}
	if !inline {
		return model.Config{}, fmt.Errorf("model: missing (set preset or inline fields)")
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"layers", r.Layers}, {"hidden", r.Hidden}, {"heads", r.Heads}, {"vocab", r.Vocab}, {"seq_len", r.SeqLen}} {
		if f.v <= 0 {
			return model.Config{}, fmt.Errorf("model: inline field %s must be ≥ 1, got %d", f.name, f.v)
		}
		if f.v > MaxModelDim {
			return model.Config{}, fmt.Errorf("model: inline field %s = %d exceeds the limit %d", f.name, f.v, MaxModelDim)
		}
	}
	name := r.Name
	if name == "" {
		name = "custom"
	}
	return model.Config{
		Name: name, Layers: r.Layers, Hidden: r.Hidden,
		Heads: r.Heads, Vocab: r.Vocab, SeqLen: r.SeqLen,
	}, nil
}

// DeviceRef inlines a sim.Device.
type DeviceRef struct {
	Name      string  `json:"name,omitempty"`
	PeakFLOPS float64 `json:"peak_flops"`
	MemBytes  int64   `json:"mem_bytes"`
	EffHalfB  float64 `json:"eff_half_b,omitempty"`
	EffFloor  float64 `json:"eff_floor,omitempty"`
}

// NetworkRef inlines a sim.Network.
type NetworkRef struct {
	Name    string  `json:"name,omitempty"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
	BetaP2P float64 `json:"beta_p2p,omitempty"`
}

// PlatformRef names a calibrated platform preset or inlines device+network.
type PlatformRef struct {
	// Preset is a platform name: pizdaint | v100.
	Preset  string      `json:"preset,omitempty"`
	Device  *DeviceRef  `json:"device,omitempty"`
	Network *NetworkRef `json:"network,omitempty"`
}

type platformPreset struct {
	dev func() sim.Device
	net func() sim.Network
}

var platformPresets = map[string]platformPreset{
	"pizdaint": {sim.PizDaintNode, sim.AriesNetwork},
	"v100":     {sim.V100Node, sim.NVLinkIBNetwork},
}

// PlatformPresets lists the platform preset names the service resolves.
func PlatformPresets() []string { return sortedKeys(platformPresets) }

// ResolvePlatform returns the preset device and network for a name.
func ResolvePlatform(name string) (sim.Device, sim.Network, error) {
	p, ok := platformPresets[name]
	if !ok {
		return sim.Device{}, sim.Network{}, fmt.Errorf("unknown platform preset %q (have %s)",
			name, strings.Join(PlatformPresets(), ", "))
	}
	return p.dev(), p.net(), nil
}

// Resolve validates the reference and returns the device and network.
func (r PlatformRef) Resolve() (sim.Device, sim.Network, error) {
	if r.Preset != "" {
		if r.Device != nil || r.Network != nil {
			return sim.Device{}, sim.Network{}, fmt.Errorf("platform: preset %q and inline device/network are mutually exclusive", r.Preset)
		}
		return ResolvePlatform(r.Preset)
	}
	if r.Device == nil || r.Network == nil {
		return sim.Device{}, sim.Network{}, fmt.Errorf("platform: missing (set preset, or both device and network)")
	}
	if r.Device.PeakFLOPS <= 0 || r.Device.MemBytes <= 0 {
		return sim.Device{}, sim.Network{}, fmt.Errorf("platform: device needs peak_flops > 0 and mem_bytes > 0")
	}
	// Negative curve/cost parameters would drive NaNs or negative times
	// through the simulator (efficiency divides by b + eff_half_b).
	if r.Device.EffHalfB < 0 || r.Device.EffFloor < 0 || r.Device.EffFloor > 1 {
		return sim.Device{}, sim.Network{}, fmt.Errorf("platform: device needs eff_half_b ≥ 0 and eff_floor in [0, 1]")
	}
	if r.Network.Alpha < 0 || r.Network.Beta <= 0 || r.Network.BetaP2P < 0 {
		return sim.Device{}, sim.Network{}, fmt.Errorf("platform: network needs alpha ≥ 0, beta > 0 and beta_p2p ≥ 0")
	}
	dev := sim.Device{
		Name: r.Device.Name, PeakFLOPS: r.Device.PeakFLOPS, MemBytes: r.Device.MemBytes,
		EffHalfB: r.Device.EffHalfB, EffFloor: r.Device.EffFloor,
	}
	net := sim.Network{
		Name: r.Network.Name, Alpha: r.Network.Alpha, Beta: r.Network.Beta, BetaP2P: r.Network.BetaP2P,
	}
	return dev, net, nil
}

// ScheduleRef names a pipeline schedule by its construction parameters.
type ScheduleRef struct {
	// Scheme: chimera | gpipe | dapple | 1f1b | gems | pipedream | pipedream-2bw.
	Scheme string `json:"scheme"`
	D      int    `json:"d"`
	N      int    `json:"n"`
	// F is Chimera's pipelines per direction (chimera only; default 1).
	F int `json:"f,omitempty"`
	// Concat is Chimera's N > D method: direct | doubling | halving.
	Concat string `json:"concat,omitempty"`
	// Scheduler is the placement policy: fixed (default) | heft | cpop | lb.
	// List policies re-shape the schedule using the request's speed factors;
	// with no (or uniform) factors they fall back to the fixed placement.
	Scheduler string `json:"scheduler,omitempty"`
}

var concatModes = map[string]schedule.ConcatMode{
	"":         schedule.Direct,
	"direct":   schedule.Direct,
	"doubling": schedule.ForwardDoubling,
	"halving":  schedule.BackwardHalving,
}

// ConcatModes lists the accepted concat mode names.
func ConcatModes() []string { return []string{"direct", "doubling", "halving"} }

// Schemes lists every scheme name the service accepts: the Table 2 set
// plus the 1f1b alias (schedule.ByName's full vocabulary).
func Schemes() []string { return append(schedule.Schemes(), "1f1b") }

// Schedulers lists the placement-policy names the service accepts ("fixed"
// first), schedule.Schedulers' vocabulary.
func Schedulers() []string { return schedule.Schedulers() }

// resolveScheduler validates a wire scheduler name and returns its engine-key
// form ("" for the fixed placement).
func resolveScheduler(ctx, name string) (string, error) {
	if name == "" || name == "fixed" {
		return "", nil
	}
	if _, err := schedule.SchedulerByName(name); err != nil {
		return "", fmt.Errorf("%s: unknown scheduler %q (have %s)", ctx, name, strings.Join(Schedulers(), ", "))
	}
	return name, nil
}

// Key validates the reference and returns the engine's schedule key.
func (r ScheduleRef) Key() (engine.ScheduleKey, error) {
	var zero engine.ScheduleKey
	known := false
	for _, s := range Schemes() {
		if s == r.Scheme {
			known = true
			break
		}
	}
	if !known {
		return zero, fmt.Errorf("schedule: unknown scheme %q (have %s)",
			r.Scheme, strings.Join(Schemes(), ", "))
	}
	if r.D < 1 || r.N < 1 {
		return zero, fmt.Errorf("schedule: d and n must be ≥ 1, got d=%d n=%d", r.D, r.N)
	}
	if r.D > MaxStages || r.N > MaxMicroBatches || r.D*r.N > MaxScheduleOps {
		return zero, fmt.Errorf("schedule: d=%d n=%d exceeds the limits (d ≤ %d, n ≤ %d, d·n ≤ %d)",
			r.D, r.N, MaxStages, MaxMicroBatches, MaxScheduleOps)
	}
	mode, ok := concatModes[r.Concat]
	if !ok {
		return zero, fmt.Errorf("schedule: unknown concat %q (have %s)",
			r.Concat, strings.Join(ConcatModes(), ", "))
	}
	if r.Scheme != "chimera" && (r.F != 0 || r.Concat != "") {
		return zero, fmt.Errorf("schedule: f and concat apply to chimera only, not %q", r.Scheme)
	}
	if r.F < 0 {
		return zero, fmt.Errorf("schedule: f must be ≥ 0, got %d", r.F)
	}
	sched, err := resolveScheduler("schedule", r.Scheduler)
	if err != nil {
		return zero, err
	}
	key := engine.ScheduleKey{Scheme: r.Scheme, D: r.D, N: r.N}
	if r.Scheme == "chimera" {
		key = engine.ChimeraKey(r.D, r.N, r.F, mode)
	}
	// The list policies' speed factors travel beside the ScheduleRef (the
	// simulate request's speed_factors); SimulateRequest.Spec attaches them.
	key.Scheduler = sched
	return key, nil
}

// PlanRequest is the /v1/plan body: a §3.4 configuration-selection problem.
type PlanRequest struct {
	Model ModelRef `json:"model"`
	// P is the total worker count (W·D).
	P int `json:"p"`
	// MiniBatch is the target mini-batch size B̂.
	MiniBatch int `json:"mini_batch"`
	// MaxB caps the greedy micro-batch search (default 64).
	MaxB int `json:"max_b,omitempty"`
	// SpeedFactors describes a heterogeneous pipeline: factor i is the
	// compute-time multiplier of the worker hosting pipeline position i
	// (1 = nominal, 2 = twice as slow). When set, the plan search is
	// restricted to configurations whose depth D equals the factor count.
	SpeedFactors []float64 `json:"speed_factors,omitempty"`
	// Scheduler selects the placement-policy axis: fixed (default) plans the
	// scheme's own placement; heft | cpop | lb plan that policy's re-shaped
	// schedules; auto sweeps fixed plus every list policy.
	Scheduler string      `json:"scheduler,omitempty"`
	Platform  PlatformRef `json:"platform"`
}

// Resolve validates the request into a perfmodel.PlanRequest.
func (r PlanRequest) Resolve() (perfmodel.PlanRequest, error) {
	var out perfmodel.PlanRequest
	m, err := r.Model.Resolve()
	if err != nil {
		return out, err
	}
	dev, net, err := r.Platform.Resolve()
	if err != nil {
		return out, err
	}
	if r.P < 2 || r.P > MaxWorkers {
		return out, fmt.Errorf("plan: p must be in [2, %d], got %d", MaxWorkers, r.P)
	}
	if r.MiniBatch < 1 || r.MiniBatch > MaxMiniBatch {
		return out, fmt.Errorf("plan: mini_batch must be in [1, %d], got %d", MaxMiniBatch, r.MiniBatch)
	}
	if r.MaxB < 0 || r.MaxB > MaxMiniBatch {
		return out, fmt.Errorf("plan: max_b must be in [0, %d], got %d", MaxMiniBatch, r.MaxB)
	}
	maxB := r.MaxB
	if maxB == 0 {
		// PlanOn's default; normalized here so max_b omitted and max_b=64
		// share one plan-cache entry.
		maxB = 64
	}
	if len(r.SpeedFactors) != 0 {
		// The factors name the workers of one pipeline, so the list length
		// is the pipeline depth the plan is restricted to: it must be a
		// legal depth (even, within bounds) that divides P.
		d := len(r.SpeedFactors)
		if d < 2 || d > MaxStages || d%2 != 0 {
			return out, fmt.Errorf("plan: speed_factors needs an even length in [2, %d] (it fixes the pipeline depth D), got %d",
				MaxStages, d)
		}
		if r.P%d != 0 {
			return out, fmt.Errorf("plan: speed_factors length %d must divide p=%d", d, r.P)
		}
		if err := validateSpeedFactors("plan", r.SpeedFactors, 0); err != nil {
			return out, err
		}
	}
	sched := r.Scheduler
	if sched != "" && sched != "fixed" && sched != "auto" {
		if _, err := schedule.SchedulerByName(sched); err != nil {
			return out, fmt.Errorf("plan: unknown scheduler %q (have %s, auto)",
				sched, strings.Join(Schedulers(), ", "))
		}
	}
	if sched == "fixed" {
		// Normalized so scheduler omitted and scheduler="fixed" share one
		// plan-cache entry.
		sched = ""
	}
	return perfmodel.PlanRequest{
		Model: m, P: r.P, MiniBatch: r.MiniBatch, MaxB: maxB,
		SpeedFactors: sim.EncodeSpeedFactors(r.SpeedFactors),
		Scheduler:    sched,
		Device:       dev, Network: net,
	}, nil
}

// SimulateRequest is the /v1/simulate body: one simulator evaluation.
type SimulateRequest struct {
	Model      ModelRef    `json:"model"`
	Schedule   ScheduleRef `json:"schedule"`
	MicroBatch int         `json:"micro_batch"`
	W          int         `json:"w"`
	// Recompute forces activation recomputation; AutoRecompute enables it
	// only when the plain configuration exceeds device memory.
	Recompute     bool `json:"recompute,omitempty"`
	AutoRecompute bool `json:"auto_recompute,omitempty"`
	// Sync: eager-sync-opt (default) | eager-sync | post-hoc.
	Sync string `json:"sync,omitempty"`
	// Allreduce: rabenseifner (default) | ring.
	Allreduce         string  `json:"allreduce,omitempty"`
	Interference      float64 `json:"interference,omitempty"`
	ZeRO              bool    `json:"zero,omitempty"`
	CompressionFactor float64 `json:"compression_factor,omitempty"`
	// SpeedFactors[w] is the compute-time multiplier of pipeline worker w
	// (1 = nominal, 2 = twice as slow). Length must equal the schedule's d.
	SpeedFactors []float64   `json:"speed_factors,omitempty"`
	Platform     PlatformRef `json:"platform"`
}

var syncStrategies = map[string]sim.SyncStrategy{
	"":               sim.SyncEagerOpt,
	"eager-sync-opt": sim.SyncEagerOpt,
	"eager-sync":     sim.SyncEager,
	"post-hoc":       sim.SyncPostHoc,
}

var allreduceAlgs = map[string]sim.AllReduceAlg{
	"":             sim.ARRabenseifner,
	"rabenseifner": sim.ARRabenseifner,
	"ring":         sim.ARRing,
}

// Spec validates the request into an engine evaluation spec.
func (r SimulateRequest) Spec() (engine.Spec, error) {
	var out engine.Spec
	m, err := r.Model.Resolve()
	if err != nil {
		return out, err
	}
	key, err := r.Schedule.Key()
	if err != nil {
		return out, err
	}
	dev, net, err := r.Platform.Resolve()
	if err != nil {
		return out, err
	}
	if r.MicroBatch < 1 || r.MicroBatch > MaxMiniBatch {
		return out, fmt.Errorf("simulate: micro_batch must be in [1, %d], got %d", MaxMiniBatch, r.MicroBatch)
	}
	if r.W < 1 || r.W > MaxWorkers {
		return out, fmt.Errorf("simulate: w must be in [1, %d], got %d", MaxWorkers, r.W)
	}
	sync, ok := syncStrategies[r.Sync]
	if !ok {
		return out, fmt.Errorf("simulate: unknown sync %q (have eager-sync-opt, eager-sync, post-hoc)", r.Sync)
	}
	ar, ok := allreduceAlgs[r.Allreduce]
	if !ok {
		return out, fmt.Errorf("simulate: unknown allreduce %q (have rabenseifner, ring)", r.Allreduce)
	}
	if r.Recompute && r.AutoRecompute {
		return out, fmt.Errorf("simulate: recompute and auto_recompute are mutually exclusive")
	}
	if r.Interference < 0 || r.Interference > 1 {
		return out, fmt.Errorf("simulate: interference must be in [0, 1], got %g", r.Interference)
	}
	if r.CompressionFactor < 0 || r.CompressionFactor > 1 {
		return out, fmt.Errorf("simulate: compression_factor must be in [0, 1], got %g", r.CompressionFactor)
	}
	if len(r.SpeedFactors) != 0 {
		if err := validateSpeedFactors("simulate", r.SpeedFactors, r.Schedule.D); err != nil {
			return out, err
		}
	}
	if key.Scheduler != "" {
		// The placement policy consumes the same per-worker factors the
		// simulator replays with; the engine collapses uniform factors back
		// onto the fixed-placement cache entry.
		key.Speed = sim.EncodeSpeedFactors(r.SpeedFactors)
	}
	return engine.Spec{
		Sched: key, Model: m, MicroBatch: r.MicroBatch, W: r.W,
		Recompute: r.Recompute, AutoRecompute: r.AutoRecompute,
		Sync: sync, Allreduce: ar, Interference: r.Interference,
		ZeRO: r.ZeRO, CompressionFactor: r.CompressionFactor,
		SpeedFactors: sim.EncodeSpeedFactors(r.SpeedFactors),
		Device:       dev, Network: net,
	}, nil
}

// MaxBatchItems bounds a /v1/plan:batch request's item list. Admission
// control charges a whole batch one slot, so the bound keeps a single batch
// from smuggling unbounded work past the inflight limit.
const MaxBatchItems = 256

// BatchPlanRequest is the /v1/plan:batch body: up to MaxBatchItems plan
// problems validated together and evaluated as one engine sweep.
type BatchPlanRequest struct {
	Requests []PlanRequest `json:"requests"`
}

// BatchPlanItem is one /v1/plan:batch result. Exactly one of Plan and Error
// is set: Plan carries the bytes a sequential POST /v1/plan would have
// returned for the same item (the batch endpoint's equivalence contract),
// Error the message that call would have put in its ErrorResponse.
type BatchPlanItem struct {
	Plan  json.RawMessage `json:"plan,omitempty"`
	Error string          `json:"error,omitempty"`
}

// BatchPlanResponse is the /v1/plan:batch reply; Results is positional
// (Results[i] answers Requests[i]).
type BatchPlanResponse struct {
	Items   int             `json:"items"`
	Results []BatchPlanItem `json:"results"`
}

// AnalyzeRequest is the /v1/analyze body.
type AnalyzeRequest struct {
	Schedule ScheduleRef `json:"schedule"`
}

// RenderRequest is the /v1/render body.
type RenderRequest struct {
	Schedule ScheduleRef `json:"schedule"`
	// Format: ascii (default) | svg | chrome.
	Format string `json:"format,omitempty"`
	// Cost: equal (default) | practical (backward = 2× forward).
	Cost string `json:"cost,omitempty"`
}

// CostModel resolves the request's replay cost model.
func (r RenderRequest) CostModel() (schedule.CostModel, error) {
	switch r.Cost {
	case "", "equal":
		return schedule.UnitEqual, nil
	case "practical":
		return schedule.UnitPractical, nil
	default:
		return schedule.CostModel{}, fmt.Errorf("render: unknown cost %q (have equal, practical)", r.Cost)
	}
}

// PredictionJSON is one planner prediction on the wire.
type PredictionJSON struct {
	W         int     `json:"w"`
	D         int     `json:"d"`
	B         int     `json:"b"`
	N         int     `json:"n"`
	Recompute bool    `json:"recompute"`
	Cf        int     `json:"cf"`
	Cb        int     `json:"cb"`
	IterTime  float64 `json:"iter_time"`
	// Throughput is sequences per second (the ranking key).
	Throughput float64 `json:"throughput"`
	// Scheduler is the placement policy behind the row; omitted for the
	// fixed placement, keeping pre-policy responses byte-identical.
	Scheduler string `json:"scheduler,omitempty"`
}

// PlanResponse is the /v1/plan reply: predictions ranked best-first.
type PlanResponse struct {
	Model       string           `json:"model"`
	P           int              `json:"p"`
	MiniBatch   int              `json:"mini_batch"`
	Predictions []PredictionJSON `json:"predictions"`
}

// NewPlanResponse encodes a ranked prediction list. The same function backs
// the service and chimera-plan -json, so both emit identical bytes for
// identical plans.
func NewPlanResponse(model string, p, miniBatch int, preds []*perfmodel.Prediction) PlanResponse {
	out := PlanResponse{Model: model, P: p, MiniBatch: miniBatch, Predictions: make([]PredictionJSON, len(preds))}
	for i, pr := range preds {
		out.Predictions[i] = PredictionJSON{
			W: pr.W, D: pr.D, B: pr.B, N: pr.N, Recompute: pr.Recompute,
			Cf: pr.Cf, Cb: pr.Cb, IterTime: pr.IterTime, Throughput: pr.Throughput,
			Scheduler: pr.Scheduler,
		}
	}
	return out
}

// SimulateResponse is the /v1/simulate reply (and chimera-sim -json output).
type SimulateResponse struct {
	IterTime    float64 `json:"iter_time"`
	Throughput  float64 `json:"throughput"`
	BubbleRatio float64 `json:"bubble_ratio"`
	ComputeSpan float64 `json:"compute_span"`
	SyncTime    float64 `json:"sync_time"`
	PeakMem     []int64 `json:"peak_mem_bytes"`
	OOM         bool    `json:"oom"`
	MiniBatch   int     `json:"mini_batch"`
	// Recompute reports whether the run used activation recomputation
	// (meaningful under auto_recompute).
	Recompute bool `json:"recompute"`
}

// NewSimulateResponse encodes one simulator result.
func NewSimulateResponse(res *sim.Result, recompute bool) SimulateResponse {
	return SimulateResponse{
		IterTime: res.IterTime, Throughput: res.Throughput,
		BubbleRatio: res.BubbleRatio, ComputeSpan: res.ComputeSpan,
		SyncTime: res.SyncTime, PeakMem: res.PeakMemBytes,
		OOM: res.OOM, MiniBatch: res.MiniBatch, Recompute: recompute,
	}
}

// AnalyzeResponse is the /v1/analyze reply, in the paper's Table 2 units.
type AnalyzeResponse struct {
	Scheme               string    `json:"scheme"`
	D                    int       `json:"d"`
	N                    int       `json:"n"`
	BubbleRatioEqual     float64   `json:"bubble_ratio_equal"`
	BubbleRatioPractical float64   `json:"bubble_ratio_practical"`
	ActivationsMa        []float64 `json:"activations_ma"`
	WeightsMTheta        []float64 `json:"weights_mtheta"`
	Synchronous          bool      `json:"synchronous"`
}

// NewAnalyzeResponse encodes a schedule analysis.
func NewAnalyzeResponse(a *schedule.Analysis) AnalyzeResponse {
	return AnalyzeResponse{
		Scheme: a.Scheme, D: a.D, N: a.N,
		BubbleRatioEqual: a.BubbleRatioEqual, BubbleRatioPractical: a.BubbleRatioPractical,
		ActivationsMa: a.ActivationsMa, WeightsMTheta: a.WeightsMTheta,
		Synchronous: a.Synchronous,
	}
}

// RenderResponse is the /v1/render reply.
type RenderResponse struct {
	Format string `json:"format"`
	// Content is the rendered timeline: ASCII text, an SVG document, or
	// Chrome-trace JSON (as a string, ready for chrome://tracing).
	Content string `json:"content"`
}

// SchedulesResponse is the /v1/schedules reply: the service's vocabulary.
type SchedulesResponse struct {
	Schemes     []string `json:"schemes"`
	Schedulers  []string `json:"schedulers"`
	ConcatModes []string `json:"concat_modes"`
	Models      []string `json:"models"`
	Platforms   []string `json:"platforms"`
}

// CacheTableJSON is one memo table's counters in /v1/stats.
type CacheTableJSON struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// EngineStatsJSON is the engine block of /v1/stats.
type EngineStatsJSON struct {
	Workers       int            `json:"workers"`
	CacheCapacity int            `json:"cache_capacity"`
	CacheHitRate  float64        `json:"cache_hit_rate"`
	Schedules     CacheTableJSON `json:"schedules"`
	Criticals     CacheTableJSON `json:"criticals"`
	Outcomes      CacheTableJSON `json:"outcomes"`
}

// NewEngineStats encodes an engine snapshot.
func NewEngineStats(workers int, st engine.Stats) EngineStatsJSON {
	return EngineStatsJSON{
		Workers:       workers,
		CacheCapacity: st.Capacity,
		CacheHitRate:  st.HitRate(),
		Schedules:     CacheTableJSON{st.ScheduleHits, st.ScheduleMisses, st.ScheduleEvictions, st.ScheduleEntries},
		Criticals:     CacheTableJSON{st.CriticalHits, st.CriticalMisses, st.CriticalEvictions, st.CriticalEntries},
		Outcomes:      CacheTableJSON{st.OutcomeHits, st.OutcomeMisses, st.OutcomeEvictions, st.OutcomeEntries},
	}
}

// RequestCounts are per-endpoint admitted-request counters in /v1/stats.
type RequestCounts struct {
	Plan          uint64 `json:"plan"`
	PlanBatch     uint64 `json:"plan_batch"`
	FleetPlan     uint64 `json:"fleet_plan"`
	FleetSimulate uint64 `json:"fleet_simulate"`
	Simulate      uint64 `json:"simulate"`
	Analyze       uint64 `json:"analyze"`
	Schedules     uint64 `json:"schedules"`
	Render        uint64 `json:"render"`
	Health        uint64 `json:"healthz"`
	Ready         uint64 `json:"readyz"`
	Stats         uint64 `json:"stats"`
	CacheSnapshot uint64 `json:"cache_snapshot"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Requests RequestCounts `json:"requests"`
	// Shed counts requests rejected with 429 by admission control.
	Shed uint64 `json:"shed"`
	// ClientErrors counts 4xx replies other than 429; ServerErrors 5xx.
	ClientErrors uint64 `json:"client_errors"`
	ServerErrors uint64 `json:"server_errors"`
	// MaxInflight is the admission-control bound on concurrently executing
	// heavy requests.
	MaxInflight int `json:"max_inflight"`
	// PlanCache is the service-level memo of encoded /v1/plan responses;
	// FleetCache the same for /v1/fleet/plan and FleetSimCache for
	// /v1/fleet/simulate.
	PlanCache     CacheTableJSON  `json:"plan_cache"`
	FleetCache    CacheTableJSON  `json:"fleet_cache"`
	FleetSimCache CacheTableJSON  `json:"fleet_sim_cache"`
	Engine        EngineStatsJSON `json:"engine"`
	// Metrics embeds the observability registry's snapshot — every
	// counter and gauge by full series name, histograms as quantile
	// digests. Appended after the legacy fields, which are unchanged.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ReadyResponse is the /readyz reply: the readiness half of the liveness/
// readiness split. Status is "ready" (HTTP 200) while the server accepts new
// work and "draining" (HTTP 503) from the moment graceful shutdown begins,
// so a router or load balancer stops sending new requests before the
// listener actually closes.
type ReadyResponse struct {
	Status string `json:"status"`
}

// SnapshotResponse is the POST /v1/cache/snapshot reply.
type SnapshotResponse struct {
	Path string `json:"path"`
	// Entries is how many cached responses the snapshot holds; Bytes the
	// on-disk file size including the header and checksum.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HealthResponse is the /healthz reply: liveness plus the build identity
// and uptime an operator needs to tell which binary has been running for
// how long. Status stays "ok" for as long as the process can answer at all
// (liveness); it reports "draining" once graceful shutdown has begun —
// readiness proper lives on /readyz, which flips to 503 at that moment.
type HealthResponse struct {
	Status string `json:"status"`
	// Version is the module version, refined by the VCS revision when the
	// binary was built from a checkout (see BuildVersion).
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// UptimeSeconds is the time since the Server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// DecodeStrict decodes JSON from r into v, rejecting unknown fields and
// trailing data — the strict-validation contract of every POST endpoint.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("invalid request body: trailing data after JSON object")
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
