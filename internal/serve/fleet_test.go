package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/fleet"
)

const fleetBody = `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},` +
	`"jobs":[{"name":"big","model":{"preset":"bert48"},"mini_batch":256,"priority":4},` +
	`{"name":"small","model":{"preset":"bert48"},"mini_batch":32}]}`

const fleetElasticBody = `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
	`"jobs":[{"name":"big","model":{"preset":"bert48"},"mini_batch":256,"priority":4,"max_nodes":4},` +
	`{"name":"small","model":{"preset":"bert48"},"mini_batch":32}],` +
	`"migration_penalty":2,` +
	`"events":[{"at":0,"job":"big","work":20000},{"at":5,"job":"small","work":5000},` +
	`{"at":10,"kind":"node_fail","node":0},{"at":20,"kind":"node_join","factor":1.5}]}`

const fleetClassicSimBody = `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
	`"jobs":[{"name":"big","model":{"preset":"bert48"},"mini_batch":256,"priority":4}],` +
	`"trace":[{"at":0,"job":"big","work":10000}]}`

// TestFleetPlanMatchesInProcess: the served /v1/fleet/plan body must be
// byte-identical to encoding an in-process allocation through the same
// codec — the acceptance gate of the fleet subsystem.
func TestFleetPlanMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/fleet/plan", fleetBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	var req FleetPlanRequest
	if err := DecodeStrict(strings.NewReader(fleetBody), &req); err != nil {
		t.Fatal(err)
	}
	freq, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	al, err := fleet.AllocateOn(engine.New(engine.Workers(1)), freq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(NewFleetPlanResponse(al))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served fleet plan differs from in-process allocation:\nserved: %s\nlocal:  %s", body, want)
	}
}

// TestFleetPlanCached: repeating one fleet request is absorbed by the
// response cache (single miss) and replays identical bytes.
func TestFleetPlanCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheCapacity: 64})
	_, b1 := post(t, ts, "/v1/fleet/plan", fleetBody)
	_, b2 := post(t, ts, "/v1/fleet/plan", fleetBody)
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated fleet plan produced different bytes")
	}
	st := srv.Snapshot()
	if st.FleetCache.Misses != 1 || st.FleetCache.Hits != 1 {
		t.Fatalf("fleet_cache = %+v, want 1 miss / 1 hit", st.FleetCache)
	}
	if st.Requests.FleetPlan != 2 {
		t.Fatalf("fleet_plan counter = %d, want 2", st.Requests.FleetPlan)
	}
}

// TestFleetPlanPolicyHonored: explicit policies produce different
// allocations on a priority-skewed mix, and the planner-guided default
// equals asking for it by name.
func TestFleetPlanPolicyHonored(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	withPolicy := func(p string) []byte {
		body := fleetBody
		if p != "" {
			body = strings.TrimSuffix(body, "}") + `,"policy":"` + p + `"}`
		}
		status, raw := post(t, ts, "/v1/fleet/plan", body)
		if status != http.StatusOK {
			t.Fatalf("policy %q: status %d: %s", p, status, raw)
		}
		return raw
	}
	def, guided, equal := withPolicy(""), withPolicy("planner-guided"), withPolicy("equal-split")
	if !bytes.Equal(def, guided) {
		t.Fatal("default policy is not planner-guided")
	}
	var g, e FleetPlanResponse
	if err := json.Unmarshal(guided, &g); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(equal, &e); err != nil {
		t.Fatal(err)
	}
	if g.Policy != "planner-guided" || e.Policy != "equal-split" {
		t.Fatalf("policies echoed wrong: %q / %q", g.Policy, e.Policy)
	}
	if !(g.WeightedThroughput > e.WeightedThroughput) {
		t.Fatalf("planner-guided %.2f not above equal-split %.2f on a priority-skewed mix",
			g.WeightedThroughput, e.WeightedThroughput)
	}
}

// TestFleetPlanRejections: the strict codec rejects malformed fleet
// requests with 400, including trailing garbage after the JSON object.
func TestFleetPlanRejections(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"trailing-garbage", fleetBody + `garbage`},
		{"trailing-object", fleetBody + `{"again":true}`},
		{"unknown-field", strings.TrimSuffix(fleetBody, "}") + `,"bogus":1}`},
		{"no-jobs", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[]}`},
		{"unnamed-job", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[{"model":{"preset":"bert48"},"mini_batch":32}]}`},
		{"dup-job", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32},{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`},
		{"bad-policy", strings.TrimSuffix(fleetBody, "}") + `,"policy":"fifo"}`},
		{"tiny-cluster", `{"cluster":{"nodes":1,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`},
		{"huge-cluster", `{"cluster":{"nodes":1000000000,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`},
		{"missing-platform", `{"cluster":{"nodes":16},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`},
		{"unknown-model", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert9000"},"mini_batch":32}]}`},
		{"bad-minibatch", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":0}]}`},
		{"negative-priority", `{"cluster":{"nodes":16,"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32,"priority":-1}]}`},
		{"factor-length", `{"cluster":{"nodes":16,"speed_factors":[1,2],"platform":{"preset":"pizdaint"}},"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts, "/v1/fleet/plan", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: non-JSON error body %s", tc.name, body)
		}
	}
	if got := srv.Snapshot().ClientErrors; got != uint64(len(cases)) {
		t.Fatalf("client_errors = %d, want %d", got, len(cases))
	}
}

// TestFleetSimulateElasticMatchesInProcess: the served /v1/fleet/simulate
// body for an elastic scenario must be byte-identical to encoding an
// in-process replay through the same codec.
func TestFleetSimulateElasticMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/fleet/simulate", fleetElasticBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var sc FleetScenario
	if err := DecodeStrict(strings.NewReader(fleetElasticBody), &sc); err != nil {
		t.Fatal(err)
	}
	esc, err := sc.ResolveElastic()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.SimulateElasticOn(engine.New(engine.Workers(1)), esc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(NewFleetElasticResponse(res))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served elastic simulation differs from in-process replay:\nserved: %s\nlocal:  %s", body, want)
	}
	// Spot-check the served content: one fail, one join, both jobs done.
	var resp FleetElasticResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fails != 1 || resp.Joins != 1 || len(resp.Jobs) != 2 {
		t.Fatalf("served replay implausible: %+v", resp)
	}
}

// TestFleetSimulateClassicTrace: a trace-only scenario replays through the
// classic simulator and encodes via NewFleetSimResponse.
func TestFleetSimulateClassicTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/fleet/simulate", fleetClassicSimBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp FleetSimResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Makespan <= 0 || len(resp.Jobs) != 1 {
		t.Fatalf("served classic replay implausible: %+v", resp)
	}
}

// TestFleetSimulateCached: repeating one simulation is absorbed by the
// response cache and replays identical bytes.
func TestFleetSimulateCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheCapacity: 64})
	_, b1 := post(t, ts, "/v1/fleet/simulate", fleetElasticBody)
	_, b2 := post(t, ts, "/v1/fleet/simulate", fleetElasticBody)
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated fleet simulation produced different bytes")
	}
	st := srv.Snapshot()
	if st.FleetSimCache.Misses != 1 || st.FleetSimCache.Hits != 1 {
		t.Fatalf("fleet_sim_cache = %+v, want 1 miss / 1 hit", st.FleetSimCache)
	}
	if st.Requests.FleetSimulate != 2 {
		t.Fatalf("fleet_simulate count = %d, want 2", st.Requests.FleetSimulate)
	}
}

// TestFleetSimulateRejections: malformed simulation requests are 400s with
// the offence named.
func TestFleetSimulateRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"empty", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}]}`, "neither a trace nor events"},
		{"both-traces", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"trace":[{"at":0,"job":"a","work":10}],"events":[{"at":0,"job":"a","work":10}]}`, "both trace and events"},
		{"classic-with-elastic-knobs", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"trace":[{"at":0,"job":"a","work":10}],"migration_penalty":60}`, "apply only to elastic"},
		{"bad-kind", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"events":[{"at":0,"kind":"reboot","job":"a","work":10}]}`, "unknown kind"},
		{"bad-replan", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"events":[{"at":0,"job":"a","work":10}],"replan":"lazy"}`, "replan mode"},
		{"odd-max-nodes", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32,"max_nodes":3}],` +
			`"events":[{"at":0,"job":"a","work":10}]}`, "max_nodes"},
		{"unknown-field", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"events":[{"at":0,"job":"a","work":10}],"chaos":true}`, "unknown field"},
		{"trailing", `{"cluster":{"nodes":8,"platform":{"preset":"pizdaint"}},` +
			`"jobs":[{"name":"a","model":{"preset":"bert48"},"mini_batch":32}],` +
			`"events":[{"at":0,"job":"a","work":10}]} garbage`, "trailing"},
	}
	for _, tc := range cases {
		status, body := post(t, ts, "/v1/fleet/simulate", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, status, body)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.want)
		}
	}
}

// TestFleetScenarioResolve: the CLI scenario format resolves jobs, policy
// and trace; the /v1/fleet/plan endpoint (no trace field) rejects traces.
func TestFleetScenarioResolve(t *testing.T) {
	body := strings.TrimSuffix(fleetBody, "}") +
		`,"trace":[{"at":0,"job":"big","work":1000},{"at":5,"job":"small","work":100}]}`
	var sc FleetScenario
	if err := DecodeStrict(strings.NewReader(body), &sc); err != nil {
		t.Fatal(err)
	}
	resolved, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved.Trace) != 2 || resolved.Trace[1].Job != "small" || resolved.Policy != fleet.PlannerGuided {
		t.Fatalf("scenario resolved wrong: %+v", resolved)
	}
	if _, err := fleet.Simulate(resolved); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	status, raw := post(t, ts, "/v1/fleet/plan", body)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("trace")) {
		t.Fatalf("endpoint accepted a trace: %d %s", status, raw)
	}
}

// TestFleetHeterogeneousCluster: per-node speed factors flow through the
// wire into straggler-aware allocations.
func TestFleetHeterogeneousCluster(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"cluster":{"nodes":8,"speed_factors":[1,1,1,1,1,1,2,2],"platform":{"preset":"pizdaint"}},` +
		`"jobs":[{"name":"solo","model":{"preset":"bert48"},"mini_batch":64}]}`
	status, raw := post(t, ts, "/v1/fleet/plan", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp FleetPlanResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	j := resp.Jobs[0]
	if j.Plan == nil {
		t.Fatal("no plan for the solo job")
	}
	// Fastest-first assignment: the ×2 nodes (ids 6, 7) must be the last
	// assigned, and the straggler factor reflects the slowest used node.
	if j.StragglerFactor != 1 && j.StragglerFactor != 2 {
		t.Fatalf("implausible straggler factor %g", j.StragglerFactor)
	}
	if j.Throughput*j.StragglerFactor != j.Plan.Throughput {
		t.Fatalf("throughput %.4f × factor %g != plan throughput %.4f",
			j.Throughput, j.StragglerFactor, j.Plan.Throughput)
	}
}
