package serve

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip: write a warm server's caches, restore into a
// fresh server, and require the restored replica's first /v1/plan to be a
// byte-identical cache hit (zero misses — warm from request one).
func TestSnapshotRoundTrip(t *testing.T) {
	src, srcTS := newTestServer(t, Config{})
	_, wantPlan := post(t, srcTS, "/v1/plan", planBody)
	status, wantFleet := post(t, srcTS, "/v1/fleet/plan", fleetBody)
	if status != http.StatusOK {
		t.Fatalf("fleet plan: %d %s", status, wantFleet)
	}

	path := filepath.Join(t.TempDir(), "caches.snap")
	stats, err := src.WriteSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 {
		t.Fatalf("snapshot persisted %d entries, want 2 (plan + fleet)", stats.Entries)
	}
	if stats.Bytes <= 0 {
		t.Fatalf("snapshot reported %d bytes", stats.Bytes)
	}

	dst, dstTS := newTestServer(t, Config{})
	n, err := dst.RestoreSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || dst.RestoredEntries() != 2 {
		t.Fatalf("restored %d entries (gauge %d), want 2", n, dst.RestoredEntries())
	}
	if age := dst.SnapshotAgeSeconds(); age <= 0 || age > 60 {
		t.Fatalf("restored snapshot age %.3fs, want the source's creation time", age)
	}

	status, gotPlan := post(t, dstTS, "/v1/plan", planBody)
	if status != http.StatusOK || !bytes.Equal(gotPlan, wantPlan) {
		t.Fatalf("restored /v1/plan (status %d) diverges from source:\ngot:  %.120s\nwant: %.120s", status, gotPlan, wantPlan)
	}
	status, gotFleet := post(t, dstTS, "/v1/fleet/plan", fleetBody)
	if status != http.StatusOK || !bytes.Equal(gotFleet, wantFleet) {
		t.Fatalf("restored /v1/fleet/plan (status %d) diverges from source", status)
	}
	if pc := dst.Snapshot().PlanCache; pc.Hits != 1 || pc.Misses != 0 {
		t.Fatalf("restored replica's first /v1/plan: hits=%d misses=%d, want a warm hit with no compute", pc.Hits, pc.Misses)
	}
	if fc := dst.Snapshot().FleetCache; fc.Hits != 1 || fc.Misses != 0 {
		t.Fatalf("restored replica's first fleet plan: hits=%d misses=%d, want warm", fc.Hits, fc.Misses)
	}
}

// TestSnapshotSkipsCachedErrors: failed outcomes are not persisted —
// transient errors must not be pinned across restarts.
func TestSnapshotSkipsCachedErrors(t *testing.T) {
	src, srcTS := newTestServer(t, Config{})
	// P=7 has no even-D split for bert48: cached as an error outcome.
	if status, _ := post(t, srcTS, "/v1/plan", `{"model":{"preset":"bert48"},"p":7,"mini_batch":512,"platform":{"preset":"pizdaint"}}`); status == http.StatusOK {
		t.Fatal("expected the infeasible plan to fail")
	}
	path := filepath.Join(t.TempDir(), "caches.snap")
	stats, err := src.WriteSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 0 {
		t.Fatalf("snapshot persisted %d entries, want 0 (error outcomes skipped)", stats.Entries)
	}
}

// TestSnapshotRestoreSmallerAndWarm: restoring into a cache bounded below
// the snapshot's entry count truncates to the snapshot's most-recent
// entries (an insert never evicts itself, only older restores), and
// restoring into a warm server counts only the entries actually inserted.
func TestSnapshotRestoreSmallerAndWarm(t *testing.T) {
	src, srcTS := newTestServer(t, Config{})
	bodies := []string{
		`{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,"platform":{"preset":"pizdaint"}}`,
		`{"model":{"preset":"bert48"},"p":16,"mini_batch":256,"max_b":16,"platform":{"preset":"pizdaint"}}`,
		`{"model":{"preset":"bert48"},"p":16,"mini_batch":512,"max_b":16,"platform":{"preset":"pizdaint"}}`,
	}
	for _, b := range bodies {
		if status, out := post(t, srcTS, "/v1/plan", b); status != http.StatusOK {
			t.Fatalf("plan: %d %s", status, out)
		}
	}
	path := filepath.Join(t.TempDir(), "caches.snap")
	if _, err := src.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}

	dst, dstTS := newTestServer(t, Config{CacheCapacity: 2})
	n, err := dst.RestoreSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restore reported %d inserts, want 3 (truncated inserts still inserted)", n)
	}
	// The newest snapshot entry survives the truncation…
	if status, body := post(t, dstTS, "/v1/plan", bodies[2]); status != http.StatusOK {
		t.Fatalf("plan after restore: %d %s", status, body)
	}
	if pc := dst.Snapshot().PlanCache; pc.Hits != 1 || pc.Misses != 0 {
		t.Fatalf("newest snapshot entry should survive truncation: hits=%d misses=%d", pc.Hits, pc.Misses)
	}
	// …and the oldest was the one truncated away.
	if status, body := post(t, dstTS, "/v1/plan", bodies[0]); status != http.StatusOK {
		t.Fatalf("plan after restore: %d %s", status, body)
	}
	if pc := dst.Snapshot().PlanCache; pc.Misses != 1 {
		t.Fatalf("oldest snapshot entry should have been truncated: misses=%d", pc.Misses)
	}

	warm, warmTS := newTestServer(t, Config{})
	if status, body := post(t, warmTS, "/v1/plan", bodies[0]); status != http.StatusOK {
		t.Fatalf("warm plan: %d %s", status, body)
	}
	n, err = warm.RestoreSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || warm.RestoredEntries() != 2 {
		t.Fatalf("warm restore reported %d inserts (gauge %d), want 2 — the existing entry is not recounted", n, warm.RestoredEntries())
	}
}

// TestSnapshotRefusesDamage: every container-validation failure — bad
// magic, unsupported version, truncation at several depths, a flipped
// payload bit — must refuse the file without inserting anything.
func TestSnapshotRefusesDamage(t *testing.T) {
	src, srcTS := newTestServer(t, Config{})
	if status, body := post(t, srcTS, "/v1/plan", planBody); status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "caches.snap")
	if _, err := src.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated header"},
		{"short-header", func(b []byte) []byte { return b[:10] }, "truncated header"},
		{"bad-magic", func(b []byte) []byte {
			c := bytes.Clone(b)
			copy(c, "NOTASNAP")
			return c
		}, "bad magic"},
		{"future-version", func(b []byte) []byte {
			c := bytes.Clone(b)
			binary.BigEndian.PutUint32(c[8:], snapshotVersion+1)
			return c
		}, "unsupported version"},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-8] }, "truncated payload"},
		{"flipped-bit", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[len(snapshotMagic)+4+8+3] ^= 0x01
			return c
		}, "checksum mismatch"},
	}
	for _, tc := range damage {
		bad := filepath.Join(dir, tc.name+".snap")
		if err := os.WriteFile(bad, tc.mutate(bytes.Clone(good)), 0o644); err != nil {
			t.Fatal(err)
		}
		dst, _ := newTestServer(t, Config{})
		n, err := dst.RestoreSnapshot(bad)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: RestoreSnapshot err %v, want %q", tc.name, err, tc.wantErr)
		}
		if n != 0 || dst.Snapshot().PlanCache.Entries != 0 {
			t.Fatalf("%s: refusal inserted %d entries (cache has %d), want untouched caches",
				tc.name, n, dst.Snapshot().PlanCache.Entries)
		}
	}
}

// TestSnapshotEndpoint: POST /v1/cache/snapshot writes the configured path
// and reports what it persisted; an unconfigured server refuses with 422.
func TestSnapshotEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	_, ts := newTestServer(t, Config{SnapshotPath: path})
	if status, body := post(t, ts, "/v1/plan", planBody); status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	status, body := post(t, ts, "/v1/cache/snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("snapshot endpoint: %d %s", status, body)
	}
	if !strings.Contains(string(body), `"entries":1`) {
		t.Fatalf("snapshot response %s, want entries:1", body)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot endpoint did not write %s: %v", path, err)
	}

	_, bare := newTestServer(t, Config{})
	if status, body := post(t, bare, "/v1/cache/snapshot", ""); status != http.StatusUnprocessableEntity {
		t.Fatalf("unconfigured snapshot endpoint: %d %s, want 422", status, body)
	}
}
