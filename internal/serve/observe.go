package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/obs"
)

// endpointMetrics pre-resolves one endpoint's latency histograms so the
// request path never touches the registry mutex. The cache label splits
// latency by response-cache disposition: "hit" and "miss" for the cached
// endpoints, "none" for endpoints without a response cache (and for shed
// requests, which never reach a handler).
type endpointMetrics struct {
	byCache map[string]*obs.Histogram
}

// serveObs is the serving tier's observability state: the registry, the
// per-endpoint instrument handles, the span flight recorder, the request-ID
// generator, and the optional access log.
type serveObs struct {
	reg       *obs.Registry
	recorder  *obs.Recorder
	endpoints map[string]*endpointMetrics

	// batchItems records /v1/plan:batch sizes. The obs histogram buckets
	// durations, so a batch of n items is observed as n seconds — the
	// "seconds" quantiles read directly as item counts.
	batchItems *obs.Histogram

	// idPrefix + idSeq generate request IDs (prefix-000001); the random
	// prefix keeps IDs from colliding across server restarts.
	idPrefix string
	idSeq    atomic.Uint64

	// accessLog serializes request log lines ("json" or "text" format);
	// nil writer disables logging.
	logMu     sync.Mutex
	logWriter interface{ Write([]byte) (int, error) }
	logFormat string
}

// cacheLabels are the dispositions each endpoint histogram is split by.
var cacheLabels = []string{"hit", "miss", "none"}

// initObserve builds the server's observability state and registers the
// serving tier's series. Counters that the server already maintains as
// atomics (per-endpoint request counts, shed, error classes) register as
// read-through CounterFuncs, so the request path pays nothing for them.
func (s *Server) initObserve(cfg Config) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	depth := cfg.FlightRecorder
	if depth == 0 {
		depth = 256
	}
	var recorder *obs.Recorder
	if depth > 0 {
		recorder = obs.NewRecorder(depth)
	}
	var prefix [4]byte
	rand.Read(prefix[:])
	o := &serveObs{
		reg:       reg,
		recorder:  recorder,
		endpoints: make(map[string]*endpointMetrics),
		idPrefix:  hex.EncodeToString(prefix[:]),
		logWriter: cfg.AccessLog,
		logFormat: cfg.LogFormat,
	}
	for _, ep := range []string{
		"plan", "plan_batch", "fleet_plan", "fleet_simulate", "simulate", "analyze",
		"render", "schedules", "stats", "health", "ready", "cache_snapshot",
		"metrics", "debug_requests",
	} {
		em := &endpointMetrics{byCache: make(map[string]*obs.Histogram, len(cacheLabels))}
		for _, c := range cacheLabels {
			em.byCache[c] = reg.Histogram("serve_request_duration_seconds",
				"request latency by endpoint and response-cache disposition",
				obs.L("endpoint", ep), obs.L("cache", c))
		}
		o.endpoints[ep] = em
	}

	reg.GaugeFunc("serve_inflight", "requests holding an admission slot",
		func() float64 { return float64(len(s.inflight)) })
	reg.GaugeFunc("serve_max_inflight", "admission-control slot bound",
		func() float64 { return float64(s.maxInflight) })
	reg.CounterFunc("serve_shed_total", "requests shed by admission control",
		s.shed.Load)
	reg.CounterFunc("serve_client_errors_total", "4xx responses",
		s.clientErrors.Load)
	reg.CounterFunc("serve_server_errors_total", "5xx responses",
		s.serverErrors.Load)
	for ep, src := range map[string]*atomic.Uint64{
		"plan": &s.plan, "plan_batch": &s.planBatch,
		"fleet_plan": &s.fleetPlan, "fleet_simulate": &s.fleetSim,
		"simulate": &s.simulate, "analyze": &s.analyze, "schedules": &s.schedules,
		"render": &s.render, "health": &s.health, "ready": &s.ready,
		"stats": &s.stats, "cache_snapshot": &s.cacheSnapshot,
	} {
		reg.CounterFunc("serve_requests_total", "requests reaching each handler",
			src.Load, obs.L("endpoint", ep))
	}
	for name, memo := range map[string]interface {
		Stats() (hits, misses uint64)
		Evictions() uint64
		Len() int
	}{
		"plan": s.planCache, "fleet_plan": s.fleetCache, "fleet_simulate": s.fleetSimCache,
	} {
		memo := memo
		label := obs.L("cache", name)
		reg.CounterFunc("serve_cache_hits_total", "response-cache hits",
			func() uint64 { h, _ := memo.Stats(); return h }, label)
		reg.CounterFunc("serve_cache_misses_total", "response-cache misses",
			func() uint64 { _, m := memo.Stats(); return m }, label)
		reg.CounterFunc("serve_cache_evictions_total", "response-cache LRU evictions",
			memo.Evictions, label)
		reg.GaugeFunc("serve_cache_entries", "response-cache resident entries",
			func() float64 { return float64(memo.Len()) }, label)
	}
	o.batchItems = reg.Histogram("serve_batch_items",
		"items per /v1/plan:batch request (bucketed as seconds: n items = n s)")
	reg.GaugeFunc("serve_ready", "1 while accepting new work, 0 once draining",
		func() float64 {
			if s.draining.Load() {
				return 0
			}
			return 1
		})
	reg.GaugeFunc("serve_snapshot_age_seconds", "age of the newest cache snapshot written or restored (0 = none)",
		s.SnapshotAgeSeconds)
	reg.CounterFunc("serve_snapshots_written_total", "cache snapshots written to disk",
		s.snapshotsWritten.Load)
	reg.GaugeFunc("serve_snapshot_restored_entries", "cache entries inserted by the last snapshot restore",
		func() float64 { return float64(s.restoredEntries.Load()) })
	if recorder != nil {
		reg.CounterFunc("serve_spans_recorded_total", "spans seen by the flight recorder",
			func() uint64 { return recorder.Total() })
	}
	s.obs = o
}

// nextRequestID mints a new request ID unless the client supplied one.
func (o *serveObs) nextRequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return o.idPrefix + "-" + strconv.FormatUint(o.idSeq.Add(1), 10)
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with the per-request observability envelope:
// a request ID (minted or honored from X-Request-Id, echoed back in the
// response header), a phase-recording span threaded through the request
// context and retired into the flight recorder, the endpoint latency
// histogram split by cache disposition, and the optional access log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.obs.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.obs.nextRequestID(r)
		w.Header().Set("X-Request-Id", id)
		span := obs.NewSpan(endpoint, id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(obs.ContextWithSpan(r.Context(), span)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		cache := span.Attr("cache")
		if _, ok := em.byCache[cache]; !ok {
			cache = "none"
		}
		em.byCache[cache].Since(start)
		span.SetAttr("status", strconv.Itoa(sw.status))
		rec := span.Finish()
		s.obs.recorder.Record(rec)
		s.obs.logRequest(r, id, sw.status, cache, rec.DurationMS)
	}
}

// logRequest emits one access-log line. JSON lines are marshalled from a
// fixed struct so field order is stable; text lines are a single
// space-separated record. The writer is serialized by a mutex — handlers on
// different goroutines must not interleave partial lines.
func (o *serveObs) logRequest(r *http.Request, id string, status int, cache string, durMS float64) {
	if o.logWriter == nil {
		return
	}
	var line []byte
	if o.logFormat == "json" {
		line, _ = json.Marshal(struct {
			Time   string  `json:"time"`
			ID     string  `json:"id"`
			Method string  `json:"method"`
			Path   string  `json:"path"`
			Status int     `json:"status"`
			DurMS  float64 `json:"dur_ms"`
			Cache  string  `json:"cache,omitempty"`
			Remote string  `json:"remote,omitempty"`
		}{
			Time:   time.Now().UTC().Format(time.RFC3339Nano),
			ID:     id,
			Method: r.Method,
			Path:   r.URL.Path,
			Status: status,
			DurMS:  durMS,
			Cache:  cache,
			Remote: r.RemoteAddr,
		})
		line = append(line, '\n')
	} else {
		line = []byte(fmt.Sprintf("%s id=%s %s %s status=%d dur_ms=%.3f cache=%s\n",
			time.Now().UTC().Format(time.RFC3339), id, r.Method, r.URL.Path, status, durMS, cache))
	}
	o.logMu.Lock()
	o.logWriter.Write(line)
	o.logMu.Unlock()
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WritePrometheus(w)
}

// DebugRequestsResponse is the /debug/requests reply: the flight
// recorder's retained spans, newest first.
type DebugRequestsResponse struct {
	// Total counts every span ever recorded; Capacity is the ring size.
	Total    uint64           `json:"total"`
	Capacity int              `json:"capacity"`
	Requests []obs.SpanRecord `json:"requests"`
}

// handleDebugRequests dumps the flight recorder.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	rec := s.obs.recorder
	resp := DebugRequestsResponse{
		Total:    rec.Total(),
		Capacity: rec.Cap(),
		Requests: rec.Snapshot(),
	}
	if resp.Requests == nil {
		resp.Requests = []obs.SpanRecord{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// mountPprof exposes the standard runtime profiles under /debug/pprof/.
// Opt-in: profiles can reveal operational detail and cost CPU to collect,
// so the daemon only mounts them behind Config.EnablePprof.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Registry exposes the server's metric registry (for embedders that want
// to add their own series or snapshot programmatically).
func (s *Server) Registry() *obs.Registry { return s.obs.reg }
