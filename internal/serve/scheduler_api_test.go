package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"chimera/internal/schedule"
)

// TestSchedulerFieldOnSimulate: a list-scheduled simulate succeeds, differs
// from the fixed placement under a straggler, and is byte-identical to it
// with uniform factors (the policy defers).
func TestSchedulerFieldOnSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := func(scheduler, factors string) string {
		sched := ""
		if scheduler != "" {
			sched = `,"scheduler":"` + scheduler + `"`
		}
		sf := ""
		if factors != "" {
			sf = `,"speed_factors":[` + factors + `]`
		}
		return `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":8` + sched + `},
			"micro_batch":4,"w":4,"auto_recompute":true` + sf + `,"platform":{"preset":"pizdaint"}}`
	}
	status, fixed := post(t, ts, "/v1/simulate", body("", "1,1,2,1"))
	if status != http.StatusOK {
		t.Fatalf("fixed: status %d: %s", status, fixed)
	}
	status, reshaped := post(t, ts, "/v1/simulate", body("heft", "1,1,2,1"))
	if status != http.StatusOK {
		t.Fatalf("heft: status %d: %s", status, reshaped)
	}
	var fr, rr SimulateResponse
	if err := json.Unmarshal(fixed, &fr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(reshaped, &rr); err != nil {
		t.Fatal(err)
	}
	if fr.IterTime == rr.IterTime {
		t.Fatal("heft under a straggler produced the fixed placement's iteration time; the schedule was not re-shaped")
	}

	// Uniform factors: the policy defers and the reply is byte-identical to
	// the fixed request's (pre-PR-6 bodies stay byte-compatible).
	status, a := post(t, ts, "/v1/simulate", body("", "1,1,1,1"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, a)
	}
	status, b := post(t, ts, "/v1/simulate", body("heft", "1,1,1,1"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, b)
	}
	if string(a) != string(b) {
		t.Fatalf("uniform-factor heft reply differs from fixed:\n%s\n%s", a, b)
	}
}

// TestSchedulerFieldOnPlan: scheduler=auto returns list-policy rows on a
// heterogeneous plan, and scheduler=fixed matches an omitted scheduler.
func TestSchedulerFieldOnPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hetBody := func(scheduler string) string {
		sched := ""
		if scheduler != "" {
			sched = `,"scheduler":"` + scheduler + `"`
		}
		return `{"model":{"preset":"gpt2-32"},"p":32,"mini_batch":512,"max_b":8,
			"speed_factors":[1,1,1,1,2,1,1,1]` + sched + `,"platform":{"preset":"pizdaint"}}`
	}
	status, body := post(t, ts, "/v1/plan", hetBody("auto"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pr.Predictions {
		seen[p.Scheduler] = true
	}
	for _, pol := range []string{"", "heft", "cpop", "lb"} {
		if !seen[pol] {
			t.Fatalf("no plan row for policy %q in %s", pol, body)
		}
	}

	status, omitted := post(t, ts, "/v1/plan", hetBody(""))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, omitted)
	}
	status, explicit := post(t, ts, "/v1/plan", hetBody("fixed"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, explicit)
	}
	if string(omitted) != string(explicit) {
		t.Fatal("scheduler:\"fixed\" reply differs from an omitted scheduler")
	}
}

// TestSchedulerRejection: unknown scheduler names are 400s on both
// endpoints, with the vocabulary in the error.
func TestSchedulerRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	simBody := `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4,"scheduler":"peft"},
		"micro_batch":4,"w":4,"platform":{"preset":"pizdaint"}}`
	status, body := post(t, ts, "/v1/simulate", simBody)
	if status != http.StatusBadRequest {
		t.Fatalf("simulate: status %d, want 400: %s", status, body)
	}
	if !strings.Contains(string(body), "unknown scheduler") || !strings.Contains(string(body), "heft") {
		t.Fatalf("simulate error should name the scheduler vocabulary: %s", body)
	}
	planBad := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"scheduler":"peft","platform":{"preset":"pizdaint"}}`
	status, body = post(t, ts, "/v1/plan", planBad)
	if status != http.StatusBadRequest {
		t.Fatalf("plan: status %d, want 400: %s", status, body)
	}
	if !strings.Contains(string(body), "unknown scheduler") {
		t.Fatalf("plan error should mention the unknown scheduler: %s", body)
	}
}

// TestSchedulesListsSchedulers: /v1/schedules reports the policy axis.
func TestSchedulesListsSchedulers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts, "/v1/schedules")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var sr SchedulesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Schedulers, schedule.Schedulers()) {
		t.Fatalf("schedulers = %v, want %v", sr.Schedulers, schedule.Schedulers())
	}
}
