package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chimera/internal/engine"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

const planBody = `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,"platform":{"preset":"pizdaint"}}`

// TestPlanMatchesInProcess: the served /v1/plan body must be byte-identical
// to encoding an in-process PlanOn result through the same codec — the
// service adds transport, not behavior.
func TestPlanMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/plan", planBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	var req PlanRequest
	if err := DecodeStrict(strings.NewReader(planBody), &req); err != nil {
		t.Fatal(err)
	}
	preq, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	preds, err := perfmodel.PlanOn(engine.New(engine.Workers(1)), preq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(NewPlanResponse(preq.Model.Name, preq.P, preq.MiniBatch, preds))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served plan differs from in-process plan:\nserved: %s\nlocal:  %s", body, want)
	}
}

// TestSimulateMatchesEngine: /v1/simulate equals a direct engine evaluation.
func TestSimulateMatchesEngine(t *testing.T) {
	simBody := `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},
		"micro_batch":4,"w":4,"auto_recompute":true,"platform":{"preset":"pizdaint"}}`
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/simulate", simBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var req SimulateRequest
	if err := DecodeStrict(strings.NewReader(simBody), &req); err != nil {
		t.Fatal(err)
	}
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	out := engine.New(engine.Workers(1)).Evaluate(spec)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	want, err := json.Marshal(NewSimulateResponse(out.Result, out.Recompute))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served simulate differs from engine:\nserved: %s\nlocal:  %s", body, want)
	}
}

// TestAnalyzeAndRender: /v1/analyze returns Table 2 numbers and /v1/render
// returns every format, matching the in-process renderers.
func TestAnalyzeAndRender(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts, "/v1/analyze", `{"schedule":{"scheme":"chimera","d":4,"n":4}}`)
	if status != http.StatusOK {
		t.Fatalf("analyze status %d: %s", status, body)
	}
	var a AnalyzeResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Scheme != "chimera" || a.D != 4 || len(a.ActivationsMa) != 4 || !a.Synchronous {
		t.Fatalf("implausible analysis: %+v", a)
	}

	sched, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantASCII, err := trace.ASCII(sched, schedule.UnitEqual)
	if err != nil {
		t.Fatal(err)
	}
	wantSVG, err := trace.SVG(sched, schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		body, format, want string
	}{
		{`{"schedule":{"scheme":"chimera","d":4,"n":4}}`, "ascii", wantASCII},
		{`{"schedule":{"scheme":"chimera","d":4,"n":4},"format":"svg","cost":"practical"}`, "svg", wantSVG},
		{`{"schedule":{"scheme":"chimera","d":4,"n":4},"format":"chrome"}`, "chrome", ""},
	} {
		status, body := post(t, ts, "/v1/render", tc.body)
		if status != http.StatusOK {
			t.Fatalf("render %s status %d: %s", tc.format, status, body)
		}
		var r RenderResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if r.Format != tc.format || r.Content == "" {
			t.Fatalf("render %s: format %q, empty=%v", tc.format, r.Format, r.Content == "")
		}
		if tc.want != "" && r.Content != tc.want {
			t.Fatalf("render %s differs from in-process renderer", tc.format)
		}
	}
}

// TestSchedulesAndHealth: the discovery and health endpoints.
func TestSchedulesAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts, "/v1/schedules")
	if status != http.StatusOK {
		t.Fatalf("schedules status %d", status)
	}
	var sr SchedulesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Schemes) != 7 || len(sr.Models) != 4 || len(sr.Platforms) != 2 || len(sr.ConcatModes) != 3 {
		t.Fatalf("incomplete vocabulary: %+v", sr)
	}
	// Every advertised scheme must actually be accepted by the analyzer.
	for _, scheme := range sr.Schemes {
		body := fmt.Sprintf(`{"schedule":{"scheme":%q,"d":4,"n":4}}`, scheme)
		if status, raw := post(t, ts, "/v1/analyze", body); status != http.StatusOK {
			t.Fatalf("advertised scheme %q rejected: %d %s", scheme, status, raw)
		}
	}
	status, body = get(t, ts, "/healthz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz %d: %s", status, body)
	}
	// /healthz carries build identity and uptime alongside liveness.
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || !strings.HasPrefix(h.GoVersion, "go") {
		t.Fatalf("healthz missing build identity: %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %g", h.UptimeSeconds)
	}
	time.Sleep(10 * time.Millisecond)
	_, body = get(t, ts, "/healthz")
	var h2 HealthResponse
	if err := json.Unmarshal(body, &h2); err != nil {
		t.Fatal(err)
	}
	if !(h2.UptimeSeconds > h.UptimeSeconds) {
		t.Fatalf("uptime did not advance: %g then %g", h.UptimeSeconds, h2.UptimeSeconds)
	}
}

// TestStrictValidation: malformed requests are rejected with 400 and a JSON
// error body; the engine is never consulted.
func TestStrictValidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"unknown-field", "/v1/plan", `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"platform":{"preset":"pizdaint"},"bogus":1}`},
		{"trailing-data", "/v1/plan", planBody + `{"again":true}`},
		{"preset-and-inline-model", "/v1/plan", `{"model":{"preset":"bert48","layers":4},"p":16,"mini_batch":128,"platform":{"preset":"pizdaint"}}`},
		{"unknown-model", "/v1/plan", `{"model":{"preset":"bert9000"},"p":16,"mini_batch":128,"platform":{"preset":"pizdaint"}}`},
		{"missing-platform", "/v1/plan", `{"model":{"preset":"bert48"},"p":16,"mini_batch":128}`},
		{"bad-p", "/v1/plan", `{"model":{"preset":"bert48"},"p":1,"mini_batch":128,"platform":{"preset":"pizdaint"}}`},
		{"unknown-scheme", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"nope","d":4,"n":4},"micro_batch":4,"w":4,"platform":{"preset":"pizdaint"}}`},
		{"concat-on-baseline", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"gpipe","d":4,"n":4,"concat":"doubling"},"micro_batch":4,"w":4,"platform":{"preset":"pizdaint"}}`},
		{"bad-sync", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":4,"sync":"psychic","platform":{"preset":"pizdaint"}}`},
		{"recompute-conflict", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":4,"recompute":true,"auto_recompute":true,"platform":{"preset":"pizdaint"}}`},
		{"bad-format", "/v1/render", `{"schedule":{"scheme":"chimera","d":4,"n":4},"format":"png"}`},
		{"bad-cost", "/v1/render", `{"schedule":{"scheme":"chimera","d":4,"n":4},"cost":"random"}`},
		{"bad-d", "/v1/analyze", `{"schedule":{"scheme":"chimera","d":0,"n":4}}`},
		// Size caps: one admitted request must not be able to OOM the
		// daemon that admission control protects.
		{"huge-schedule", "/v1/analyze", `{"schedule":{"scheme":"gpipe","d":100000,"n":100000}}`},
		{"huge-schedule-product", "/v1/render", `{"schedule":{"scheme":"gpipe","d":4096,"n":4096}}`},
		{"huge-p", "/v1/plan", `{"model":{"preset":"bert48"},"p":1000000000,"mini_batch":512,"platform":{"preset":"pizdaint"}}`},
		{"huge-minibatch", "/v1/plan", `{"model":{"preset":"bert48"},"p":16,"mini_batch":1000000000,"platform":{"preset":"pizdaint"}}`},
		{"huge-inline-model", "/v1/plan", `{"model":{"name":"big","layers":2000000,"hidden":4,"heads":4,"vocab":4,"seq_len":4},"p":16,"mini_batch":128,"platform":{"preset":"pizdaint"}}`},
		{"huge-w", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":1000000000,"platform":{"preset":"pizdaint"}}`},
		// Inline platform parameters that would drive NaN or negative
		// times through the simulator.
		{"negative-eff-half-b", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":2,"platform":{"device":{"peak_flops":1e12,"mem_bytes":8589934592,"eff_half_b":-2},"network":{"alpha":1e-6,"beta":1e-9}}}`},
		{"bad-eff-floor", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":2,"platform":{"device":{"peak_flops":1e12,"mem_bytes":8589934592,"eff_floor":1.5},"network":{"alpha":1e-6,"beta":1e-9}}}`},
		{"negative-beta-p2p", "/v1/simulate", `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":4,"w":2,"platform":{"device":{"peak_flops":1e12,"mem_bytes":8589934592},"network":{"alpha":1e-6,"beta":1e-9,"beta_p2p":-1}}}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: non-JSON error body %s", tc.name, body)
		}
	}
	if got := srv.Snapshot().ClientErrors; got != uint64(len(cases)) {
		t.Fatalf("client_errors = %d, want %d", got, len(cases))
	}
	// An invalid schedule never reaches the engine's schedule cache.
	if st := srv.Engine().Stats(); st.ScheduleMisses != 0 {
		t.Fatalf("validation leaked %d schedule constructions into the engine", st.ScheduleMisses)
	}
}

// TestOversizedBodyRejected: request bodies beyond the 1 MiB cap are
// refused instead of buffered, on every heavy POST endpoint.
func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := `{"model":{"preset":"bert48","name":"` + strings.Repeat("x", 2<<20) + `"}}`
	for _, path := range []string{"/v1/plan", "/v1/simulate", "/v1/fleet/plan"} {
		status, _ := post(t, ts, path, big)
		if status == http.StatusOK {
			t.Errorf("%s: 2 MiB body accepted", path)
		}
	}
	// A valid simulate request padded past the cap with trailing spaces:
	// the decoder must stop at the limit, not buffer the rest.
	simBody := `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},
		"micro_batch":4,"w":4,"platform":{"preset":"pizdaint"}}` + strings.Repeat(" ", 2<<20)
	if status, _ := post(t, ts, "/v1/simulate", simBody); status == http.StatusOK {
		t.Error("/v1/simulate: oversized (padded) body accepted")
	}
}

// TestSpeedFactorsAtExactBounds: the documented bounds are inclusive — a
// factor of exactly 1e-6 or 1e6 must be accepted by /v1/simulate, while
// values one notch beyond stay rejected.
func TestSpeedFactorsAtExactBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mk := func(factors string) string {
		return `{"model":{"preset":"bert48"},"schedule":{"scheme":"chimera","d":4,"n":4},
			"micro_batch":4,"w":4,"auto_recompute":true,"speed_factors":` + factors + `,"platform":{"preset":"pizdaint"}}`
	}
	for _, ok := range []string{`[1e-6,1,1,1]`, `[1,1,1,1e6]`, `[1e-6,1,1,1e6]`} {
		status, body := post(t, ts, "/v1/simulate", mk(ok))
		if status != http.StatusOK {
			t.Errorf("factors %s at the exact bounds rejected: %d %s", ok, status, body)
		}
	}
	for _, bad := range []string{`[9.999999e-7,1,1,1]`, `[1,1,1,1.0000001e6]`} {
		status, body := post(t, ts, "/v1/simulate", mk(bad))
		if status != http.StatusBadRequest {
			t.Errorf("factors %s beyond the bounds accepted: %d %s", bad, status, body)
		}
	}
}

// TestPlanCacheNormalizesMaxB: max_b omitted and max_b=64 (PlanOn's
// default) must share one plan-cache entry.
func TestPlanCacheNormalizesMaxB(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	implicit := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"platform":{"preset":"pizdaint"}}`
	explicit := `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":64,"platform":{"preset":"pizdaint"}}`
	_, b1 := post(t, ts, "/v1/plan", implicit)
	_, b2 := post(t, ts, "/v1/plan", explicit)
	if !bytes.Equal(b1, b2) {
		t.Fatal("implicit and explicit default max_b produced different plans")
	}
	if st := srv.Snapshot().PlanCache; st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("plan_cache = %+v, want the two requests to share one entry", st)
	}
}

// TestInfeasiblePlanIs422: a well-formed but unsatisfiable request is 422.
func TestInfeasiblePlanIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A 7-layer model admits no even stage count D, so the planner's
	// candidate set is empty.
	status, body := post(t, ts, "/v1/plan", `{"model":{"name":"prime","layers":7,"hidden":256,"heads":4,"vocab":1000,"seq_len":64},"p":4,"mini_batch":8,"platform":{"preset":"pizdaint"}}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (want 422): %s", status, body)
	}
}

// TestMethodNotAllowed: POST endpoints reject GET and vice versa.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _ := get(t, ts, "/v1/plan")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan status %d, want 405", status)
	}
	status, _ = post(t, ts, "/v1/stats", `{}`)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats status %d, want 405", status)
	}
}

// TestAdmissionControlSheds: with every in-flight slot held, a heavy request
// is shed immediately with 429 + Retry-After while health/stats still serve.
func TestAdmissionControlSheds(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 2})
	srv.inflight <- struct{}{}
	srv.inflight <- struct{}{}
	defer func() { <-srv.inflight; <-srv.inflight }()

	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body not a JSON error: %v", err)
	}
	if got := srv.Snapshot().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// Cheap endpoints bypass admission and keep answering under overload.
	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz sheddable: %d", status)
	}
	if status, _ := get(t, ts, "/v1/stats"); status != http.StatusOK {
		t.Fatalf("stats sheddable: %d", status)
	}
}

// TestShedRetryAfterDuringDrain: a shed before draining hints a 1-second
// retry, but once BeginDrain flips, the hint must cover the remaining drain
// window plus the shutdown bound — a router backing off for that long comes
// back after the replica is gone instead of hammering a dying listener.
func TestShedRetryAfterDuringDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, DrainDelay: 5 * time.Second, DrainTimeout: 10 * time.Second})
	srv.inflight <- struct{}{} // hold the only slot so every heavy request sheds
	defer func() { <-srv.inflight }()

	shed := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		return resp
	}

	if ra := shed().Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("pre-drain Retry-After %q, want \"1\"", ra)
	}

	srv.BeginDrain()
	ra, err := strconv.Atoi(shed().Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("draining Retry-After not an integer: %v", err)
	}
	// Remaining drain ≈ DrainDelay + DrainTimeout = 15s at this instant.
	if ra < 10 || ra > 15 {
		t.Fatalf("draining Retry-After %ds, want it to cover the remaining drain (≈15s)", ra)
	}
	// Admitted work still serves during the drain window (drain-route-around
	// depends on the replica answering while routers observe /readyz flip).
	<-srv.inflight
	if status, body := post(t, ts, "/v1/plan", planBody); status != http.StatusOK {
		t.Fatalf("admitted request during drain: %d %s", status, body)
	}
	srv.inflight <- struct{}{}
}

// TestOverloadCleanAndNoGoroutineLeak: a burst far above MaxInflight yields
// only 200s and 429s (no transport errors), accepted+shed accounts for every
// request, and the server does not leak goroutines.
func TestOverloadCleanAndNoGoroutineLeak(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1})
	// Warm one key so accepted requests are fast.
	if status, body := post(t, ts, "/v1/plan", planBody); status != http.StatusOK {
		t.Fatalf("warmup: %d %s", status, body)
	}

	before := runtime.NumGoroutine()
	const burst = 32
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	close(start)
	wg.Wait()

	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d: unexpected status %d", i, st)
		}
	}
	if ok == 0 {
		t.Fatal("overload burst: nothing was admitted")
	}
	snap := srv.Snapshot()
	if snap.Shed != uint64(shed) {
		t.Fatalf("shed counter %d != observed 429s %d", snap.Shed, shed)
	}
	if ok+shed != burst {
		t.Fatalf("accepted %d + shed %d != offered %d", ok, shed, burst)
	}

	// Goroutines must settle back (allow slack for the HTTP client pool).
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before burst, %d after", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestGracefulDrain: cancelling the serve context lets the in-flight request
// finish (200, full body) before Serve returns.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{DrainTimeout: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// A cold plan over a large grid takes long enough to still be in
	// flight when we cancel.
	body := `{"model":{"preset":"gpt2"},"p":64,"mini_batch":512,"platform":{"preset":"pizdaint"}}`
	type result struct {
		status int
		err    error
		n      int
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{status: resp.StatusCode, n: len(raw)}
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the handler
	cancel()
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK || r.n == 0 {
		t.Fatalf("in-flight request: status %d, %d body bytes", r.status, r.n)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	// The listener is closed: new connections must be refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestWarmCacheServesFasterAndCountsHits: repeating one plan request hits
// the engine's caches (visible in /v1/stats) — the amortization the daemon
// exists for.
func TestWarmCacheServesFasterAndCountsHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheCapacity: 512})
	for i := 0; i < 3; i++ {
		if status, body := post(t, ts, "/v1/plan", planBody); status != http.StatusOK {
			t.Fatalf("pass %d: %d %s", i, status, body)
		}
	}
	st := srv.Snapshot()
	if st.Engine.CacheHitRate <= 0 {
		t.Fatalf("no cache hits after repeated identical plans: %+v", st.Engine)
	}
	if st.Engine.CacheCapacity != 512 {
		t.Fatalf("cache_capacity = %d, want 512", st.Engine.CacheCapacity)
	}
	if st.Requests.Plan != 3 {
		t.Fatalf("plan counter = %d, want 3", st.Requests.Plan)
	}
	// The response cache absorbs the repeats: one miss, two hits.
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 2 {
		t.Fatalf("plan_cache = %+v, want 1 miss / 2 hits", st.PlanCache)
	}
}

// TestDecodeStrictTrailingGarbageVariants guards the codec helper directly.
func TestDecodeStrictTrailingGarbageVariants(t *testing.T) {
	var v struct {
		A int `json:"a"`
	}
	if err := DecodeStrict(strings.NewReader(`{"a":1}`), &v); err != nil || v.A != 1 {
		t.Fatalf("valid body rejected: %v", err)
	}
	for _, bad := range []string{`{"a":1} 2`, `{"a":1}{"a":2}`, `{"a":1,"b":2}`, `not json`} {
		if err := DecodeStrict(strings.NewReader(bad), &v); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestSimulateOOMIsReported: an OOM configuration is a 200 with oom=true
// (the paper's figures annotate OOM; it is data, not an error).
func TestSimulateOOMIsReported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"model":{"preset":"gpt2"},"schedule":{"scheme":"gpipe","d":4,"n":64},
		"micro_batch":8,"w":1,"platform":{"preset":"pizdaint"}}`
	status, raw := post(t, ts, "/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var r SimulateResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if !r.OOM {
		t.Fatalf("expected OOM for 64 stored micro-batches of GPT-2 on a P100: %+v", r)
	}
}

// TestCustomModelAndPlatform: inline (non-preset) model and platform refs
// resolve and simulate.
func TestCustomModelAndPlatform(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"model":{"name":"tiny","layers":8,"hidden":256,"heads":4,"vocab":1000,"seq_len":64},
		"schedule":{"scheme":"chimera","d":4,"n":4},"micro_batch":2,"w":1,
		"platform":{"device":{"name":"toy","peak_flops":1e12,"mem_bytes":%d},"network":{"alpha":1e-6,"beta":1e-9}}}`, int64(8)<<30)
	status, raw := post(t, ts, "/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var r SimulateResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r.IterTime <= 0 || r.Throughput <= 0 {
		t.Fatalf("implausible result: %+v", r)
	}
}
