package serve

// Fleet-planning wire types: the /v1/fleet/plan request/response codec and
// the scenario format cmd/chimera-fleet reads. Like the rest of this
// package there is exactly one serialization path — the CLI's -json mode
// and the HTTP endpoint encode through the same New*Response constructors,
// so a served fleet plan is byte-identical to encoding the in-process
// chimera.PlanFleet result.

import (
	"fmt"
	"math"
	"strings"

	"chimera/internal/fleet"
	"chimera/internal/schedule"
)

// MaxFleetJobs bounds a fleet request's job list (the fleet package
// enforces the same bound; re-exported so the wire contract names it).
const MaxFleetJobs = fleet.MaxJobs

// FleetClusterRef describes the shared node pool on the wire.
type FleetClusterRef struct {
	// Nodes is the cluster size.
	Nodes int `json:"nodes"`
	// SpeedFactors, when present, gives node i's compute-time multiplier
	// (1 = nominal); length must equal nodes.
	SpeedFactors []float64   `json:"speed_factors,omitempty"`
	Platform     PlatformRef `json:"platform"`
	// Scheduler, when present, lets heterogeneous shares additionally bid
	// with a list-scheduled plan (a /v1/schedules schedulers name or
	// "auto"); empty keeps the slowest-node-bound behavior.
	Scheduler string `json:"scheduler,omitempty"`
}

// FleetJobRef is one job competing for nodes.
type FleetJobRef struct {
	Name  string   `json:"name"`
	Model ModelRef `json:"model"`
	// MiniBatch is the job's target mini-batch size B̂.
	MiniBatch int `json:"mini_batch"`
	// Priority weights the job in the fleet objective (default 1).
	Priority float64 `json:"priority,omitempty"`
	// Deadline is the job's completion deadline in seconds after arrival
	// (simulation only; 0 = none).
	Deadline float64 `json:"deadline,omitempty"`
	// MaxB caps the job's greedy micro-batch search (default 64).
	MaxB int `json:"max_b,omitempty"`
	// MaxNodes caps how many nodes the job's plan may drive (0 = no cap;
	// otherwise even and ≥ 2).
	MaxNodes int `json:"max_nodes,omitempty"`
}

// FleetPlanRequest is the /v1/fleet/plan body: one fleet-allocation
// problem.
type FleetPlanRequest struct {
	Cluster FleetClusterRef `json:"cluster"`
	Jobs    []FleetJobRef   `json:"jobs"`
	// Policy: planner-guided (default) | equal-split.
	Policy string `json:"policy,omitempty"`
}

// FleetArrivalRef is one trace event of a fleet scenario.
type FleetArrivalRef struct {
	// At is the arrival time in seconds.
	At float64 `json:"at"`
	// Job names an entry of the scenario's job list.
	Job string `json:"job"`
	// Work is the number of sequences the instance processes before
	// departing.
	Work float64 `json:"work"`
}

// FleetEventRef is one elastic-trace event on the wire: an arrival (kind
// omitted or "arrival", with job and work) or node churn (node_fail and
// node_drain with node; node_join with optional factor).
type FleetEventRef struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind,omitempty"`
	Job  string  `json:"job,omitempty"`
	Work float64 `json:"work,omitempty"`
	Node int     `json:"node,omitempty"`
	// Factor is the joining node's speed factor (0 = nominal).
	Factor float64 `json:"factor,omitempty"`
	// Class is the joining node's capacity class ("on-demand" or "spot";
	// empty = on-demand); Price its cost rate per second (0 = free).
	Class string  `json:"class,omitempty"`
	Price float64 `json:"price,omitempty"`
}

// MaxFleetEvents bounds an elastic trace (the fleet package enforces the
// same bound; re-exported so the wire contract names it).
const MaxFleetEvents = fleet.MaxEvents

// FleetScenario is the chimera-fleet scenario file format and the
// /v1/fleet/simulate body: a plan request plus either a classic arrival
// trace (trace) or an elastic event trace (events, with churn and the
// re-plan knobs).
type FleetScenario struct {
	Cluster FleetClusterRef   `json:"cluster"`
	Jobs    []FleetJobRef     `json:"jobs"`
	Policy  string            `json:"policy,omitempty"`
	Trace   []FleetArrivalRef `json:"trace,omitempty"`
	// Events, when present, selects the elastic simulator (mutually
	// exclusive with trace).
	Events []FleetEventRef `json:"events,omitempty"`
	// Replan: incremental (default) | full.
	Replan string `json:"replan,omitempty"`
	// MigrationPenalty is the restart cost in seconds per pipeline stage of
	// a migrating job's old plan (failures charge double a graceful move).
	MigrationPenalty float64 `json:"migration_penalty,omitempty"`
	// AgingTau overrides the priority-aging time constant (seconds).
	AgingTau float64 `json:"aging_tau,omitempty"`
}

// Elastic reports whether the scenario asks for the elastic simulator.
func (s FleetScenario) Elastic() bool { return len(s.Events) > 0 }

// resolveFleetPolicy maps the wire policy name onto the fleet package's.
func resolveFleetPolicy(p string) (fleet.Policy, error) {
	switch p {
	case "":
		return fleet.PlannerGuided, nil
	case string(fleet.PlannerGuided), string(fleet.EqualSplit):
		return fleet.Policy(p), nil
	default:
		return "", fmt.Errorf("fleet: unknown policy %q (have %s)", p, strings.Join(fleet.Policies(), ", "))
	}
}

// Resolve validates the request into a fleet.Request.
func (r FleetPlanRequest) Resolve() (fleet.Request, error) {
	var out fleet.Request
	if r.Cluster.Nodes < 2 || r.Cluster.Nodes > MaxWorkers {
		return out, fmt.Errorf("fleet: cluster nodes must be in [2, %d], got %d", MaxWorkers, r.Cluster.Nodes)
	}
	dev, net, err := r.Cluster.Platform.Resolve()
	if err != nil {
		return out, err
	}
	if n := len(r.Cluster.SpeedFactors); n != 0 {
		if n != r.Cluster.Nodes {
			return out, fmt.Errorf("fleet: speed_factors has %d entries, cluster has %d nodes (lengths must match)",
				n, r.Cluster.Nodes)
		}
		if err := validateSpeedFactors("fleet", r.Cluster.SpeedFactors, 0); err != nil {
			return out, err
		}
	}
	if s := r.Cluster.Scheduler; s != "" && s != "fixed" && s != "auto" {
		if _, err := schedule.SchedulerByName(s); err != nil {
			return out, fmt.Errorf("fleet: %w", err)
		}
	}
	if len(r.Jobs) == 0 {
		return out, fmt.Errorf("fleet: jobs list is empty")
	}
	if len(r.Jobs) > MaxFleetJobs {
		return out, fmt.Errorf("fleet: %d jobs exceed the limit %d", len(r.Jobs), MaxFleetJobs)
	}
	jobs := make([]fleet.Job, len(r.Jobs))
	for i, j := range r.Jobs {
		if j.Name == "" {
			return out, fmt.Errorf("fleet: jobs[%d] has no name", i)
		}
		m, err := j.Model.Resolve()
		if err != nil {
			return out, fmt.Errorf("fleet: job %q: %w", j.Name, err)
		}
		if j.MiniBatch < 1 || j.MiniBatch > MaxMiniBatch {
			return out, fmt.Errorf("fleet: job %q mini_batch must be in [1, %d], got %d", j.Name, MaxMiniBatch, j.MiniBatch)
		}
		if j.MaxB < 0 || j.MaxB > MaxMiniBatch {
			return out, fmt.Errorf("fleet: job %q max_b must be in [0, %d], got %d", j.Name, MaxMiniBatch, j.MaxB)
		}
		if j.MaxNodes < 0 || j.MaxNodes > MaxWorkers {
			return out, fmt.Errorf("fleet: job %q max_nodes must be in [0, %d], got %d", j.Name, MaxWorkers, j.MaxNodes)
		}
		if j.Priority < 0 || math.IsNaN(j.Priority) || math.IsInf(j.Priority, 0) {
			return out, fmt.Errorf("fleet: job %q priority must be finite and ≥ 0, got %g", j.Name, j.Priority)
		}
		if j.Deadline < 0 || math.IsNaN(j.Deadline) || math.IsInf(j.Deadline, 0) {
			return out, fmt.Errorf("fleet: job %q deadline must be finite and ≥ 0, got %g", j.Name, j.Deadline)
		}
		jobs[i] = fleet.Job{
			Name: j.Name, Model: m, MiniBatch: j.MiniBatch,
			Priority: j.Priority, Deadline: j.Deadline, MaxB: j.MaxB,
			MaxNodes: j.MaxNodes,
		}
	}
	policy, err := resolveFleetPolicy(r.Policy)
	if err != nil {
		return out, err
	}
	out = fleet.Request{
		Cluster: fleet.Cluster{
			Nodes: r.Cluster.Nodes, SpeedFactors: r.Cluster.SpeedFactors,
			Device: dev, Network: net, Scheduler: r.Cluster.Scheduler,
		},
		Jobs: jobs, Policy: policy,
	}
	// The fleet package re-checks its own invariants; running them here
	// keeps every rejection a 400 with the field named.
	if err := out.Validate(); err != nil {
		return fleet.Request{}, err
	}
	return out, nil
}

// Resolve validates the scenario into a fleet.Scenario (classic trace).
// Elastic scenarios (events present) must resolve through ResolveElastic,
// and the elastic-only knobs are rejected here rather than silently
// ignored — the strict-validation contract of every field in this codec.
func (s FleetScenario) Resolve() (fleet.Scenario, error) {
	if s.Elastic() {
		return fleet.Scenario{}, fmt.Errorf("fleet: scenario carries an elastic event trace; resolve it as elastic")
	}
	if s.Replan != "" || s.MigrationPenalty != 0 || s.AgingTau != 0 {
		return fleet.Scenario{}, fmt.Errorf("fleet: replan, migration_penalty and aging_tau apply only to elastic scenarios (set events)")
	}
	req, err := FleetPlanRequest{Cluster: s.Cluster, Jobs: s.Jobs, Policy: s.Policy}.Resolve()
	if err != nil {
		return fleet.Scenario{}, err
	}
	trace := make([]fleet.Arrival, len(s.Trace))
	for i, ev := range s.Trace {
		trace[i] = fleet.Arrival{At: ev.At, Job: ev.Job, Work: ev.Work}
	}
	return fleet.Scenario{Cluster: req.Cluster, Jobs: req.Jobs, Policy: req.Policy, Trace: trace}, nil
}

// resolveReplan maps the wire re-plan mode onto the fleet package's.
func resolveReplan(r string) (fleet.ReplanMode, error) {
	switch r {
	case "":
		return fleet.ReplanIncremental, nil
	case string(fleet.ReplanIncremental), string(fleet.ReplanFull):
		return fleet.ReplanMode(r), nil
	default:
		return "", fmt.Errorf("fleet: unknown replan mode %q (have %s)", r, strings.Join(fleet.ReplanModes(), ", "))
	}
}

// ResolveElastic validates the scenario into a fleet.ElasticScenario.
func (s FleetScenario) ResolveElastic() (fleet.ElasticScenario, error) {
	if len(s.Trace) > 0 && len(s.Events) > 0 {
		return fleet.ElasticScenario{}, fmt.Errorf("fleet: scenario sets both trace and events (use one)")
	}
	if len(s.Events) == 0 {
		return fleet.ElasticScenario{}, fmt.Errorf("fleet: elastic scenario has no events")
	}
	if len(s.Events) > MaxFleetEvents {
		return fleet.ElasticScenario{}, fmt.Errorf("fleet: %d events exceed the limit %d", len(s.Events), MaxFleetEvents)
	}
	req, err := FleetPlanRequest{Cluster: s.Cluster, Jobs: s.Jobs, Policy: s.Policy}.Resolve()
	if err != nil {
		return fleet.ElasticScenario{}, err
	}
	replan, err := resolveReplan(s.Replan)
	if err != nil {
		return fleet.ElasticScenario{}, err
	}
	events, err := ResolveFleetEvents(s.Events)
	if err != nil {
		return fleet.ElasticScenario{}, err
	}
	out := fleet.ElasticScenario{
		Cluster: req.Cluster, Jobs: req.Jobs, Policy: req.Policy,
		Events: events, Replan: replan,
		MigrationPenalty: s.MigrationPenalty, AgingTau: s.AgingTau,
	}
	// The fleet package re-checks its own invariants; running them here
	// keeps every rejection a 400 with the field named.
	if err := out.Validate(); err != nil {
		return fleet.ElasticScenario{}, err
	}
	return out, nil
}

// ResolveLive validates the scenario as a live fleet-controller
// configuration: cluster, jobs, policy and the re-plan knobs, with no
// pre-recorded trace — the controller's events arrive later, batch by
// batch, over POST /v1/fleet/events.
func (s FleetScenario) ResolveLive() (fleet.ElasticScenario, error) {
	if len(s.Trace) > 0 || len(s.Events) > 0 {
		return fleet.ElasticScenario{}, fmt.Errorf("fleet: a live controller scenario must not carry a trace (%d) or events (%d) — the controller ingests events over HTTP", len(s.Trace), len(s.Events))
	}
	req, err := FleetPlanRequest{Cluster: s.Cluster, Jobs: s.Jobs, Policy: s.Policy}.Resolve()
	if err != nil {
		return fleet.ElasticScenario{}, err
	}
	replan, err := resolveReplan(s.Replan)
	if err != nil {
		return fleet.ElasticScenario{}, err
	}
	return fleet.ElasticScenario{
		Cluster: req.Cluster, Jobs: req.Jobs, Policy: req.Policy,
		Replan:           replan,
		MigrationPenalty: s.MigrationPenalty, AgingTau: s.AgingTau,
	}, nil
}

// ResolveFleetEvents maps wire events onto fleet events, rejecting unknown
// kinds. It is the single wire→fleet event path: ResolveElastic resolves
// scenario traces through it and the fleet controller resolves ingested
// batches through it, so both accept exactly the same event shapes. Field
// validation beyond the kind (targets, factors, prices) stays with the
// fleet package, which names the offending index either way.
func ResolveFleetEvents(refs []FleetEventRef) ([]fleet.Event, error) {
	events := make([]fleet.Event, len(refs))
	for i, ev := range refs {
		kind := fleet.EventKind(ev.Kind)
		switch kind {
		case "", fleet.EvArrival, fleet.EvNodeFail, fleet.EvNodeDrain, fleet.EvNodeJoin:
		default:
			return nil, fmt.Errorf("fleet: events[%d] has unknown kind %q", i, ev.Kind)
		}
		events[i] = fleet.Event{
			At: ev.At, Kind: kind, Job: ev.Job, Work: ev.Work,
			Node: ev.Node, Factor: ev.Factor, Class: ev.Class, Price: ev.Price,
		}
	}
	return events, nil
}

// NewFleetEventRefs encodes fleet events back onto the wire — the inverse
// of ResolveFleetEvents, used by the controller's event-log endpoint so a
// recorded log replays through the same codec it was ingested with.
func NewFleetEventRefs(events []fleet.Event) []FleetEventRef {
	refs := make([]FleetEventRef, len(events))
	for i, ev := range events {
		refs[i] = FleetEventRef{
			At: ev.At, Kind: string(ev.Kind), Job: ev.Job, Work: ev.Work,
			Node: ev.Node, Factor: ev.Factor, Class: ev.Class, Price: ev.Price,
		}
	}
	return refs
}

// FleetJobAllocationJSON is one job's share on the wire.
type FleetJobAllocationJSON struct {
	Job      string  `json:"job"`
	Priority float64 `json:"priority"`
	// Nodes is the assigned node count; NodesUsed = W·D of the chosen
	// plan; NodeIDs the assigned nodes, fastest first.
	Nodes     int   `json:"nodes"`
	NodesUsed int   `json:"nodes_used"`
	NodeIDs   []int `json:"node_ids"`
	// StragglerFactor is the slowest used node's speed factor; the plan's
	// homogeneous throughput is divided by it (1 for list-scheduled plans,
	// whose predictions already pay the stragglers positionally).
	StragglerFactor float64 `json:"straggler_factor"`
	// Scheduler is the placement policy behind the chosen plan (absent for
	// the scheme's fixed placement).
	Scheduler string `json:"scheduler,omitempty"`
	// Plan is the §3.4 selection (absent when the share is infeasible).
	Plan               *PredictionJSON `json:"plan,omitempty"`
	Throughput         float64         `json:"throughput"`
	WeightedThroughput float64         `json:"weighted_throughput"`
}

// FleetPlanResponse is the /v1/fleet/plan reply (and chimera-fleet -json
// output): per-job shares in input order plus the fleet objective.
type FleetPlanResponse struct {
	Policy             string                   `json:"policy"`
	Nodes              int                      `json:"nodes"`
	NodesAllocated     int                      `json:"nodes_allocated"`
	NodesUsed          int                      `json:"nodes_used"`
	WeightedThroughput float64                  `json:"weighted_throughput"`
	Jobs               []FleetJobAllocationJSON `json:"jobs"`
}

// NewFleetPlanResponse encodes an allocation. The same function backs the
// service and chimera-fleet -json, so both emit identical bytes.
func NewFleetPlanResponse(a *fleet.Allocation) FleetPlanResponse {
	out := FleetPlanResponse{
		Policy: string(a.Policy), Nodes: a.Nodes,
		NodesAllocated: a.NodesAllocated, NodesUsed: a.NodesUsed,
		WeightedThroughput: a.WeightedThroughput,
		Jobs:               make([]FleetJobAllocationJSON, len(a.Jobs)),
	}
	for i, j := range a.Jobs {
		ja := FleetJobAllocationJSON{
			Job: j.Job, Priority: j.Priority,
			Nodes: j.Nodes, NodesUsed: j.NodesUsed, NodeIDs: j.NodeIDs,
			StragglerFactor:    j.StragglerFactor,
			Scheduler:          j.Scheduler,
			Throughput:         j.Throughput,
			WeightedThroughput: j.Weighted,
		}
		if j.Plan != nil {
			ja.Plan = &PredictionJSON{
				W: j.Plan.W, D: j.Plan.D, B: j.Plan.B, N: j.Plan.N, Recompute: j.Plan.Recompute,
				Cf: j.Plan.Cf, Cb: j.Plan.Cb, IterTime: j.Plan.IterTime, Throughput: j.Plan.Throughput,
				Scheduler: j.Plan.Scheduler,
			}
		}
		out.Jobs[i] = ja
	}
	return out
}

// FleetJobRunJSON is one trace arrival's fate on the wire.
type FleetJobRunJSON struct {
	Job            string  `json:"job"`
	Trace          int     `json:"trace"`
	ArriveAt       float64 `json:"arrive_at"`
	StartAt        float64 `json:"start_at"`
	DoneAt         float64 `json:"done_at"`
	Wait           float64 `json:"wait"`
	MissedDeadline bool    `json:"missed_deadline"`
}

// FleetSimResponse is chimera-fleet -json's simulation output.
type FleetSimResponse struct {
	Policy        string            `json:"policy"`
	Nodes         int               `json:"nodes"`
	Makespan      float64           `json:"makespan"`
	Utilization   float64           `json:"utilization"`
	MeanWait      float64           `json:"mean_wait"`
	Events        int               `json:"events"`
	Reallocations int               `json:"reallocations"`
	Jobs          []FleetJobRunJSON `json:"jobs"`
}

// NewFleetSimResponse encodes a fleet simulation result.
func NewFleetSimResponse(r *fleet.SimResult) FleetSimResponse {
	out := FleetSimResponse{
		Policy: string(r.Policy), Nodes: r.Nodes,
		Makespan: r.Makespan, Utilization: r.Utilization, MeanWait: r.MeanWait,
		Events: r.Events, Reallocations: r.Reallocations,
		Jobs: make([]FleetJobRunJSON, len(r.Jobs)),
	}
	for i, j := range r.Jobs {
		out.Jobs[i] = FleetJobRunJSON{
			Job: j.Job, Trace: j.Trace, ArriveAt: j.ArriveAt, StartAt: j.StartAt,
			DoneAt: j.DoneAt, Wait: j.Wait, MissedDeadline: j.MissedDeadline,
		}
	}
	return out
}

// FleetPolicies lists the allocation policy names the service accepts.
func FleetPolicies() []string { return fleet.Policies() }

// FleetReplanModes lists the re-plan mode names the service accepts.
func FleetReplanModes() []string { return fleet.ReplanModes() }

// FleetEventRecordJSON is one processed event of an elastic replay.
type FleetEventRecordJSON struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	Job  string  `json:"job,omitempty"`
	// Trace is the arrival's (or churn event's) input index; Node the
	// churned node id (-1 for job events).
	Trace int `json:"trace"`
	Node  int `json:"node"`
}

// FleetElasticJobRunJSON is one arrival's fate under churn.
type FleetElasticJobRunJSON struct {
	Job            string  `json:"job"`
	Trace          int     `json:"trace"`
	ArriveAt       float64 `json:"arrive_at"`
	StartAt        float64 `json:"start_at"`
	DoneAt         float64 `json:"done_at"`
	Wait           float64 `json:"wait"`
	MissedDeadline bool    `json:"missed_deadline"`
	Restarts       int     `json:"restarts"`
	PenaltySeconds float64 `json:"penalty_seconds"`
}

// FleetFinalShareJSON is one resident instance's slice of the final
// allocation (node counts and plan, deliberately not node ids).
type FleetFinalShareJSON struct {
	Job        string  `json:"job"`
	Trace      int     `json:"trace"`
	Nodes      int     `json:"nodes"`
	W          int     `json:"w"`
	D          int     `json:"d"`
	B          int     `json:"b"`
	Throughput float64 `json:"throughput"`
	Weighted   float64 `json:"weighted"`
}

// FleetElasticResponse is the /v1/fleet/simulate reply for elastic
// scenarios (and chimera-fleet -json's elastic output).
type FleetElasticResponse struct {
	Policy         string  `json:"policy"`
	Replan         string  `json:"replan"`
	InitialNodes   int     `json:"initial_nodes"`
	FinalNodes     int     `json:"final_nodes"`
	Makespan       float64 `json:"makespan"`
	Utilization    float64 `json:"utilization"`
	MeanWait       float64 `json:"mean_wait"`
	Events         int     `json:"events"`
	Reallocations  int     `json:"reallocations"`
	JobsEvaluated  int     `json:"jobs_evaluated"`
	Fails          int     `json:"fails"`
	Drains         int     `json:"drains"`
	Joins          int     `json:"joins"`
	Migrations     int     `json:"migrations"`
	PenaltySeconds float64 `json:"penalty_seconds"`
	// SpotJoins counts joins of spot-class nodes; Cost is the integrated
	// pool price (Σ price·dt up to the makespan). Omitted when zero so
	// price-free scenarios keep their legacy encoding.
	SpotJoins int                      `json:"spot_joins,omitempty"`
	Cost      float64                  `json:"cost,omitempty"`
	Log       []FleetEventRecordJSON   `json:"log"`
	Jobs      []FleetElasticJobRunJSON `json:"jobs"`
	Final     []FleetFinalShareJSON    `json:"final"`
}

// NewFleetElasticResponse encodes an elastic replay. The same function
// backs the service and chimera-fleet -json, so both emit identical bytes.
func NewFleetElasticResponse(r *fleet.ElasticResult) FleetElasticResponse {
	out := FleetElasticResponse{
		Policy: string(r.Policy), Replan: string(r.Replan),
		InitialNodes: r.InitialNodes, FinalNodes: r.FinalNodes,
		Makespan: r.Makespan, Utilization: r.Utilization, MeanWait: r.MeanWait,
		Events: r.Events, Reallocations: r.Reallocations, JobsEvaluated: r.JobsEvaluated,
		Fails: r.Fails, Drains: r.Drains, Joins: r.Joins,
		Migrations: r.Migrations, PenaltySeconds: r.PenaltySeconds,
		SpotJoins: r.SpotJoins, Cost: r.Cost,
		Log:   NewFleetEventRecords(r.Log),
		Jobs:  make([]FleetElasticJobRunJSON, len(r.Jobs)),
		Final: NewFleetFinalShares(r.Final),
	}
	for i, run := range r.Jobs {
		out.Jobs[i] = FleetElasticJobRunJSON{
			Job: run.Job, Trace: run.Trace, ArriveAt: run.ArriveAt, StartAt: run.StartAt,
			DoneAt: run.DoneAt, Wait: run.Wait, MissedDeadline: run.MissedDeadline,
			Restarts: run.Restarts, PenaltySeconds: run.PenaltySeconds,
		}
	}
	return out
}

// NewFleetEventRecords encodes an elastic replay's processed-event log.
// Shared by NewFleetElasticResponse and the fleet controller, so a live
// controller's log bytes are directly comparable with a trace replay's.
func NewFleetEventRecords(log []fleet.EventRecord) []FleetEventRecordJSON {
	out := make([]FleetEventRecordJSON, len(log))
	for i, rec := range log {
		out[i] = FleetEventRecordJSON{At: rec.At, Kind: string(rec.Kind), Job: rec.Job, Trace: rec.Trace, Node: rec.Node}
	}
	return out
}

// NewFleetFinalShares encodes an allocation's resident shares. Shared by
// NewFleetElasticResponse and the fleet controller, so a live controller's
// current allocation bytes are directly comparable with a replay's final.
func NewFleetFinalShares(shares []fleet.FinalShare) []FleetFinalShareJSON {
	out := make([]FleetFinalShareJSON, len(shares))
	for i, fs := range shares {
		out[i] = FleetFinalShareJSON{
			Job: fs.Job, Trace: fs.Trace, Nodes: fs.Nodes,
			W: fs.W, D: fs.D, B: fs.B, Throughput: fs.Throughput, Weighted: fs.Weighted,
		}
	}
	return out
}
