package serve

// Cache snapshot/restore: the serve tier's response caches (plan, fleet
// plan, fleet simulate) are pure functions of their resolved requests, so a
// replica can persist them to disk and a replacement replica can start warm
// instead of recomputing the hot set from scratch.
//
// On-disk container:
//
//	offset  size  field
//	0       8     magic "CHIMSNAP"
//	8       4     format version, big-endian uint32 (currently 1)
//	12      8     payload length, big-endian uint64
//	20      n     payload: JSON snapshotPayload
//	20+n    4     CRC-32 (IEEE) of the payload, big-endian uint32
//
// The explicit length plus trailing checksum makes truncation and bit rot
// detectable before any payload byte is trusted; the version gate makes a
// future payload change a clean refusal instead of a silent misparse. A
// refused snapshot never aborts startup — the replica just starts cold.
//
// Only successful outcomes (err == nil) are persisted: cached errors are
// cheap to recompute and freezing them across restarts would pin transient
// failures. Entries are written in Range order (least-recently used first)
// so restoring into a bounded table reproduces the source's LRU recency.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"chimera/internal/perfmodel"
)

const (
	snapshotMagic   = "CHIMSNAP"
	snapshotVersion = 1
)

// snapshotPayload is the JSON body between the header and the checksum.
type snapshotPayload struct {
	CreatedUnixNano int64            `json:"created_unix_nano"`
	Plan            []planSnapEntry  `json:"plan"`
	Fleet           []keyedSnapEntry `json:"fleet"`
	FleetSim        []keyedSnapEntry `json:"fleet_sim"`
}

// planSnapEntry is one plan-cache entry. The key is the resolved
// perfmodel.PlanRequest itself (exported basic-typed fields only, so JSON
// round-trips it to an equal comparable value); the body is the exact
// response bytes /v1/plan served.
type planSnapEntry struct {
	Key  perfmodel.PlanRequest `json:"key"`
	Body []byte                `json:"body"`
}

// keyedSnapEntry is one fleet or fleet-sim cache entry; the key is already
// the canonical JSON string those caches use.
type keyedSnapEntry struct {
	Key  string `json:"key"`
	Body []byte `json:"body"`
}

// SnapshotStats reports what a WriteSnapshot call persisted.
type SnapshotStats struct {
	Entries int
	Bytes   int64
}

// WriteSnapshot persists the response caches to path atomically (temp file
// in the same directory, then rename), so a reader never observes a
// half-written snapshot and a crash mid-write leaves any previous snapshot
// intact.
func (s *Server) WriteSnapshot(path string) (SnapshotStats, error) {
	now := time.Now()
	payload := snapshotPayload{CreatedUnixNano: now.UnixNano()}
	s.planCache.Range(func(k perfmodel.PlanRequest, v planOutcome) bool {
		if v.err == nil {
			payload.Plan = append(payload.Plan, planSnapEntry{Key: k, Body: v.body})
		}
		return true
	})
	s.fleetCache.Range(func(k string, v planOutcome) bool {
		if v.err == nil {
			payload.Fleet = append(payload.Fleet, keyedSnapEntry{Key: k, Body: v.body})
		}
		return true
	})
	s.fleetSimCache.Range(func(k string, v planOutcome) bool {
		if v.err == nil {
			payload.FleetSim = append(payload.FleetSim, keyedSnapEntry{Key: k, Body: v.body})
		}
		return true
	})
	raw, err := encodeSnapshot(payload)
	if err != nil {
		return SnapshotStats{}, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return SnapshotStats{}, fmt.Errorf("cache snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return SnapshotStats{}, fmt.Errorf("cache snapshot: %w", err)
	}
	s.lastSnapshotNano.Store(now.UnixNano())
	s.snapshotsWritten.Add(1)
	n := len(payload.Plan) + len(payload.Fleet) + len(payload.FleetSim)
	return SnapshotStats{Entries: n, Bytes: int64(len(raw))}, nil
}

// RestoreSnapshot loads a snapshot written by WriteSnapshot into the
// response caches and returns how many entries it actually inserted:
// entries the live caches already held are not counted (existing entries
// win — Memo.Put never overwrites — so restoring into a warm server cannot
// clobber fresher computations). Snapshot entries arrive in LRU order, so a
// cache with a smaller capacity than the snapshot truncates to the
// snapshot's most-recently-used entries, recency preserved; the truncated
// inserts still count (they were inserted, then evicted by later ones).
// Any validation failure — wrong magic, unsupported version, truncation,
// checksum mismatch — is returned without touching the caches.
func (s *Server) RestoreSnapshot(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("cache snapshot: %w", err)
	}
	payload, err := decodeSnapshot(raw)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range payload.Plan {
		if s.planCache.Put(e.Key, planOutcome{body: e.Body}) {
			n++
		}
	}
	for _, e := range payload.Fleet {
		if s.fleetCache.Put(e.Key, planOutcome{body: e.Body}) {
			n++
		}
	}
	for _, e := range payload.FleetSim {
		if s.fleetSimCache.Put(e.Key, planOutcome{body: e.Body}) {
			n++
		}
	}
	s.restoredEntries.Store(int64(n))
	// The age gauge dates from when the snapshot was taken, not when it was
	// restored: a replica warmed from a day-old file should say so.
	s.lastSnapshotNano.Store(payload.CreatedUnixNano)
	return n, nil
}

// encodeSnapshot frames a payload in the on-disk container format.
func encodeSnapshot(payload snapshotPayload) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("cache snapshot: encode: %w", err)
	}
	raw := make([]byte, 0, len(snapshotMagic)+4+8+len(body)+4)
	raw = append(raw, snapshotMagic...)
	raw = binary.BigEndian.AppendUint32(raw, snapshotVersion)
	raw = binary.BigEndian.AppendUint64(raw, uint64(len(body)))
	raw = append(raw, body...)
	raw = binary.BigEndian.AppendUint32(raw, crc32.ChecksumIEEE(body))
	return raw, nil
}

// decodeSnapshot validates the container (magic, version, length, checksum)
// and unmarshals the payload.
func decodeSnapshot(raw []byte) (snapshotPayload, error) {
	var payload snapshotPayload
	headerLen := len(snapshotMagic) + 4 + 8
	if len(raw) < headerLen {
		return payload, errString("cache snapshot: truncated header")
	}
	if string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return payload, errString("cache snapshot: bad magic (not a chimera cache snapshot)")
	}
	version := binary.BigEndian.Uint32(raw[len(snapshotMagic):])
	if version != snapshotVersion {
		return payload, fmt.Errorf("cache snapshot: unsupported version %d (this build reads version %d)", version, snapshotVersion)
	}
	bodyLen := binary.BigEndian.Uint64(raw[len(snapshotMagic)+4:])
	rest := raw[headerLen:]
	if uint64(len(rest)) < bodyLen+4 {
		return payload, fmt.Errorf("cache snapshot: truncated payload (header promises %d bytes, %d present)", bodyLen, len(rest))
	}
	body := rest[:bodyLen]
	want := binary.BigEndian.Uint32(rest[bodyLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return payload, fmt.Errorf("cache snapshot: checksum mismatch (corrupt payload): got %08x want %08x", got, want)
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		return payload, fmt.Errorf("cache snapshot: decode payload: %w", err)
	}
	return payload, nil
}

// SnapshotAgeSeconds reports the age of the newest snapshot this server
// wrote or restored (0 when none); feeds the serve_snapshot_age_seconds
// gauge so operators can alert on stale warm-start state.
func (s *Server) SnapshotAgeSeconds() float64 {
	nano := s.lastSnapshotNano.Load()
	if nano == 0 {
		return 0
	}
	return time.Since(time.Unix(0, nano)).Seconds()
}

// RestoredEntries reports how many cache entries the last RestoreSnapshot
// call inserted.
func (s *Server) RestoredEntries() int64 { return s.restoredEntries.Load() }
