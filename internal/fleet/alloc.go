package fleet

import (
	"errors"
	"fmt"
	"sort"

	"chimera/internal/engine"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// node is one cluster node with its straggler factor and, for elastic
// joins, its procurement class and price rate (initial cluster nodes are
// on-demand and free).
type node struct {
	ID     int
	Factor float64
	Class  string
	Price  float64
}

// JobAllocation is one job's share of the cluster and the plan chosen for
// it.
type JobAllocation struct {
	// Job is the job's name; Priority its effective objective weight.
	Job      string
	Priority float64
	// Nodes is how many nodes the policy assigned; NodeIDs lists them
	// (ordered fastest first). NodesUsed = W·D of the chosen plan — a job
	// may idle assigned nodes its best plan cannot use.
	Nodes     int
	NodesUsed int
	NodeIDs   []int
	// StragglerFactor is the speed factor of the slowest node the plan
	// uses (1 on a homogeneous cluster): synchronous training runs at that
	// node's pace, so Throughput = Plan.Throughput / StragglerFactor.
	// List-scheduled plans (Scheduler != "") fold the per-node factors into
	// the prediction itself and report StragglerFactor 1, keeping the
	// Throughput = Plan.Throughput / StragglerFactor identity.
	StragglerFactor float64
	// Scheduler is the placement policy behind the chosen plan: "" for the
	// scheme's fixed placement, otherwise a schedule.Schedulers() name.
	Scheduler string
	// Plan is the §3.4 selection for NodesUsed workers; nil when the
	// job's share admits no feasible configuration (Throughput 0).
	Plan       *perfmodel.Prediction
	Throughput float64
	// Weighted is Priority · Throughput, the job's term in the objective.
	Weighted float64
}

// Allocation is the result of one fleet-allocation problem: per-job shares
// in job input order plus the fleet-wide objective value.
type Allocation struct {
	Policy Policy
	// Nodes echoes the cluster size; NodesAllocated counts nodes assigned
	// to jobs; NodesUsed counts nodes actually driven by chosen plans.
	Nodes          int
	NodesAllocated int
	NodesUsed      int
	// WeightedThroughput is Σ priority·throughput over the jobs.
	WeightedThroughput float64
	Jobs               []JobAllocation
}

// Allocator runs fleet allocations on one engine, memoizing every (job, P)
// plan it evaluates. Reuse one Allocator across allocations (the fleet
// simulator re-allocates at every arrival/departure event) so repeated
// candidate plans are cache hits; construct with NewAllocator.
type Allocator struct {
	eng *engine.Engine
	// plans memoizes best-prediction plan outcomes keyed by the full
	// PlanRequest — the same comparable key chimera-serve's plan cache
	// uses. The engine underneath additionally shares schedule and
	// critical-path memos with every other engine user.
	plans *engine.Memo[perfmodel.PlanRequest, planResult]
	// met holds the instrument handles attached by Observe (nil =
	// uninstrumented).
	met *fleetMetrics
}

type planResult struct {
	pred *perfmodel.Prediction
	err  error
}

// NewAllocator builds an allocator on e (nil selects the shared default
// engine) with an unbounded plan memo — the right retention for batch
// callers whose request population is bounded by their job mixes.
func NewAllocator(e *engine.Engine) *Allocator {
	return NewAllocatorCap(e, 0)
}

// NewAllocatorCap is NewAllocator with the plan memo bounded to capacity
// entries under LRU eviction (capacity <= 0 = unbounded) — the policy a
// long-running daemon needs so an endless stream of distinct fleet
// requests cannot grow memory without limit (chimera-serve passes its
// CacheCapacity).
func NewAllocatorCap(e *engine.Engine, capacity int) *Allocator {
	if e == nil {
		e = engine.Default()
	}
	return &Allocator{eng: e, plans: engine.NewMemoCap[perfmodel.PlanRequest, planResult](capacity)}
}

// PlanStats reports the allocator's plan-memo hit and miss counts — how
// much of the greedy search repeated candidate plans absorbed.
func (a *Allocator) PlanStats() (hits, misses uint64) { return a.plans.Stats() }

// Allocate solves one fleet-allocation problem on the process-wide default
// engine.
func Allocate(req Request) (*Allocation, error) {
	return NewAllocator(nil).Allocate(req)
}

// AllocateOn is Allocate on a caller-supplied engine (pool size and caches
// under the caller's control) with a throwaway plan memo; callers that
// allocate repeatedly should hold a NewAllocator instead.
func AllocateOn(e *engine.Engine, req Request) (*Allocation, error) {
	return NewAllocator(e).Allocate(req)
}

// Allocate solves the request with its policy. The result is deterministic:
// job order is input order, every selection carries a total tie-break, and
// nothing depends on the engine's pool size.
func (a *Allocator) Allocate(req Request) (*Allocation, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	defer a.observeAllocate()()
	pool := sortedPool(req.Cluster)
	var shares [][]node
	var err error
	switch req.policy() {
	case EqualSplit:
		shares = equalSplit(pool, len(req.Jobs))
	case PlannerGuided:
		shares, err = a.plannerGuided(req, pool)
		if err != nil {
			return nil, err
		}
	}
	out := &Allocation{Policy: req.policy(), Nodes: req.Cluster.Nodes, Jobs: make([]JobAllocation, len(req.Jobs))}
	for i, j := range req.Jobs {
		v, err := a.jobValue(req.Cluster, j, shares[i])
		if err != nil {
			return nil, err
		}
		ja := JobAllocation{
			Job: j.Name, Priority: j.priority(),
			Nodes: len(shares[i]), NodeIDs: nodeIDs(shares[i]),
			StragglerFactor: 1,
		}
		if v.pred != nil {
			ja.Plan, ja.NodesUsed = v.pred, v.used
			ja.StragglerFactor = v.factor
			ja.Scheduler = v.pred.Scheduler
			ja.Throughput = v.tp
			ja.Weighted = j.priority() * v.tp
		}
		out.Jobs[i] = ja
		out.NodesAllocated += ja.Nodes
		out.NodesUsed += ja.NodesUsed
		out.WeightedThroughput += ja.Weighted
	}
	return out, nil
}

// sortedPool returns the cluster's nodes ordered fastest first (factor
// ascending, node id as the total tie-break).
func sortedPool(c Cluster) []node {
	pool := make([]node, c.Nodes)
	for i := range pool {
		f := 1.0
		if len(c.SpeedFactors) != 0 {
			f = c.SpeedFactors[i]
		}
		pool[i] = node{ID: i, Factor: f}
	}
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].Factor != pool[j].Factor {
			return pool[i].Factor < pool[j].Factor
		}
		return pool[i].ID < pool[j].ID
	})
	return pool
}

// equalSplit hands every job the same number of node quanta (leftover
// quanta go to the lowest-indexed jobs), carving contiguous runs of the
// fastest-first pool in job input order.
func equalSplit(pool []node, jobs int) [][]node {
	quanta := len(pool) / Quantum
	per, extra := quanta/jobs, quanta%jobs
	shares := make([][]node, jobs)
	next := 0
	for i := range shares {
		q := per
		if i < extra {
			q++
		}
		n := q * Quantum
		shares[i] = pool[next : next+n : next+n]
		next += n
	}
	return shares
}

// planBest returns the memoized best §3.4 prediction for a job on p
// homogeneous workers; nil (no error) when p admits no feasible
// configuration.
func (a *Allocator) planBest(c Cluster, j Job, p int) (*perfmodel.Prediction, error) {
	return a.plan(perfmodel.PlanRequest{
		Model: j.Model, P: p, MiniBatch: j.MiniBatch, MaxB: j.MaxB,
		Device: c.Device, Network: c.Network,
	})
}

// planList is planBest with the share's actual per-node factors and the
// cluster's placement policy: the planner sweeps list-scheduled placements
// re-shaped around the stragglers (restricted to D = node count, so the
// factors describe exactly those workers). The prediction already pays the
// stragglers positionally — no division by the slowest factor afterwards.
func (a *Allocator) planList(c Cluster, j Job, factors []float64) (*perfmodel.Prediction, error) {
	return a.plan(perfmodel.PlanRequest{
		Model: j.Model, P: len(factors), MiniBatch: j.MiniBatch, MaxB: j.MaxB,
		Device: c.Device, Network: c.Network,
		SpeedFactors: sim.EncodeSpeedFactors(factors),
		Scheduler:    c.Scheduler,
	})
}

// plan memoizes the best prediction for a full PlanRequest; nil (no error)
// when the request admits no feasible configuration.
func (a *Allocator) plan(req perfmodel.PlanRequest) (*perfmodel.Prediction, error) {
	out := a.plans.Do(req, func() planResult {
		preds, err := perfmodel.PlanOn(a.eng, req)
		if err != nil {
			if errors.Is(err, perfmodel.ErrInfeasible) {
				return planResult{}
			}
			return planResult{err: err}
		}
		return planResult{pred: preds[0]}
	})
	return out.pred, out.err
}

// jobValue is the best achievable (plan, throughput) for a job holding the
// given nodes: the plan may use any even prefix of the fastest-first node
// list, paying the straggler factor of the slowest node it uses. Selection
// is total: throughput descending, then fewer nodes used.
type jobValue struct {
	pred   *perfmodel.Prediction
	used   int
	factor float64
	tp     float64
}

func (a *Allocator) jobValue(c Cluster, j Job, nodes []node) (jobValue, error) {
	vals, err := a.prefixValues(c, j, nodes)
	if err != nil {
		return jobValue{}, err
	}
	return vals[len(nodes)/Quantum*Quantum], nil
}

// plannerGuided grows every job from zero nodes over the whole pool — the
// static entry point of the concave-envelope greedy (see greedyGrow).
func (a *Allocator) plannerGuided(req Request, pool []node) ([][]node, error) {
	shares := make([][]node, len(req.Jobs))
	rest := pool[:len(pool)/Quantum*Quantum] // whole quanta only
	shares, _, err := a.greedyGrow(req.Cluster, req.Jobs, shares, rest, nil)
	return shares, err
}

// greedyGrow repeatedly grants front quanta of rest to the job with the
// best marginal weighted-throughput gain *per quantum*, starting from the
// given shares (all-empty for a static allocation; the surviving shares of
// churn-touched jobs when the elastic simulator re-plans incrementally).
// Because plan throughput is a step function of the worker count (jumps
// where a new (W, D, B) becomes feasible), the marginal gain of a single
// quantum is usually zero just below a step; each round therefore considers
// every extension size k and ranks them by gain/k — the concave-envelope
// greedy — granting the winner exactly its k quanta. Ties break totally:
// higher rate, then lower job index, then smaller extension. When no
// extension improves any job, the remainder stays free and is returned.
// evals, when non-nil, counts job evaluations (one per job per round) — the
// re-plan work measure the elastic benchmark reports.
func (a *Allocator) greedyGrow(c Cluster, jobs []Job, shares [][]node, rest []node, evals *int) ([][]node, []node, error) {
	type jobEval struct {
		vals []jobValue
		err  error
	}
	evaled := make([]jobEval, len(jobs))
	for len(rest) >= Quantum {
		// Each round's job evaluations are independent, so they go to the
		// engine pool as one irregular task set (the per-job cost varies
		// wildly with share size and plan-memo warmth). Every evaluation
		// nests further ForEach calls — PlanOn fans its (W, D, B) grid out
		// on the same engine — which the work-stealing pool runs in place
		// on the submitting worker's deque. The rate scan below stays
		// serial in job input order, so the selection (and *evals, counted
		// in the same order) is identical to the sequential loop's.
		a.eng.ForEach(len(jobs), func(i int) {
			// One pass over the job's share extended by the whole
			// remaining pool yields its value at every candidate size.
			vals, err := a.prefixValues(c, jobs[i], withNodes(shares[i], rest))
			evaled[i] = jobEval{vals: vals, err: err}
		})
		bestJob, bestK, bestRate := -1, 0, 0.0
		for i, j := range jobs {
			if evaled[i].err != nil {
				return nil, nil, evaled[i].err
			}
			if evals != nil {
				*evals++
			}
			vals := evaled[i].vals
			base := len(shares[i]) / Quantum * Quantum
			cur := vals[base].tp
			for k := 1; k*Quantum <= len(rest); k++ {
				gain := j.priority() * (vals[base+k*Quantum].tp - cur)
				if gain <= 0 {
					continue
				}
				if rate := gain / float64(k); rate > bestRate {
					bestJob, bestK, bestRate = i, k, rate
				}
			}
		}
		if bestJob < 0 {
			break // no extension helps anyone — leave the rest idle
		}
		shares[bestJob] = withNodes(shares[bestJob], rest[:bestK*Quantum])
		rest = rest[bestK*Quantum:]
	}
	return shares, rest, nil
}

// prefixValues returns, for every even prefix length m of nodes, the best
// jobValue achievable within the first m nodes (the running maximum the
// greedy's rate scan reads). Index by prefix length; odd entries are
// unused. The straggler factor of a prefix is the *maximum* factor within
// it — correct for any node order, which matters for the elastic warm
// start, where a surviving share concatenated with the free pool is not
// fastest-first (on a sorted pool the maximum is simply the last node, so
// the static path is unchanged). A job's MaxNodes cap truncates the scan:
// beyond it the value is flat, so capped jobs saturate instead of
// absorbing ever more quanta.
func (a *Allocator) prefixValues(c Cluster, j Job, nodes []node) ([]jobValue, error) {
	vals := make([]jobValue, len(nodes)+1)
	factors := make([]float64, len(nodes))
	for i, n := range nodes {
		factors[i] = n.Factor
	}
	var best jobValue
	maxFactor := 0.0
	for q := Quantum; q <= len(nodes); q += Quantum {
		for _, n := range nodes[q-Quantum : q] {
			if n.Factor > maxFactor {
				maxFactor = n.Factor
			}
		}
		if j.MaxNodes > 0 && q > j.MaxNodes {
			vals[q] = best
			continue
		}
		pred, err := a.planBest(c, j, q)
		if err != nil {
			return nil, err
		}
		if pred != nil {
			if tp := pred.Throughput / maxFactor; best.pred == nil || tp > best.tp {
				best = jobValue{pred: pred, used: q, factor: maxFactor, tp: tp}
			}
		}
		// The list-scheduled bid: only worth planning when the prefix is
		// genuinely heterogeneous — on uniform factors every policy defers
		// to the fixed placement and the candidate duplicates the one above.
		if c.Scheduler != "" && !schedule.UniformSpeed(factors[:q]) {
			hp, err := a.planList(c, j, factors[:q])
			if err != nil {
				return nil, err
			}
			if hp != nil && (best.pred == nil || hp.Throughput > best.tp) {
				best = jobValue{pred: hp, used: q, factor: 1, tp: hp.Throughput}
			}
		}
		vals[q] = best
	}
	return vals, nil
}

// withNodes appends extra nodes to a share without aliasing the pool slice
// it grew from (shares of different jobs must never share backing arrays).
func withNodes(share, extra []node) []node {
	out := make([]node, 0, len(share)+len(extra))
	out = append(out, share...)
	return append(out, extra...)
}

func nodeIDs(nodes []node) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

// String renders the allocation as a compact table (the chimera-fleet CLI's
// human output).
func (al *Allocation) String() string {
	s := fmt.Sprintf("policy %s on %d nodes: weighted throughput %.1f (allocated %d, driving %d)\n",
		al.Policy, al.Nodes, al.WeightedThroughput, al.NodesAllocated, al.NodesUsed)
	for _, j := range al.Jobs {
		if j.Plan == nil {
			s += fmt.Sprintf("  %-16s prio %-4g nodes %-3d  infeasible in its share\n", j.Job, j.Priority, j.Nodes)
			continue
		}
		pol := ""
		if j.Scheduler != "" {
			pol = " [" + j.Scheduler + "]"
		}
		s += fmt.Sprintf("  %-16s prio %-4g nodes %-3d uses %-3d W=%-3d D=%-3d B=%-3d %6.1f seq/s (×%g straggler)%s weighted %.1f\n",
			j.Job, j.Priority, j.Nodes, j.NodesUsed, j.Plan.W, j.Plan.D, j.Plan.B, j.Throughput, j.StragglerFactor, pol, j.Weighted)
	}
	return s
}
