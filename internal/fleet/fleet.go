// Package fleet is the multi-job cluster allocator and fleet simulator on
// top of the planner: given one cluster and a set of training jobs competing
// for its nodes, it decides how many nodes each job gets and lets
// perfmodel.PlanOn pick each job's (W, D, B), maximizing fleet-wide
// weighted throughput Σ priority·throughput.
//
// Two allocation policies are implemented. EqualSplit is the naive
// baseline every cluster operator starts from: divide the nodes evenly and
// let each job plan inside its share. PlannerGuided is the incremental
// allocator this package exists for: start from an empty allocation and
// greedily hand node quanta (2 nodes — the smallest even worker count a
// bidirectional pipeline needs) to the job with the best marginal
// predicted-throughput gain per quantum, considering every extension size
// so the step-shaped throughput curves (feasibility jumps in P) cannot trap
// the greedy below a step. Every candidate evaluation is a full §3.4 plan,
// memoized by its PlanRequest through the shared engine's schedule and
// critical-path caches plus a fleet-level plan memo, so the O(nodes·jobs)
// greedy loop pays for each distinct (job, P) plan exactly once.
//
// Heterogeneous clusters: Cluster.SpeedFactors gives each node a
// compute-time multiplier (1 = nominal, 2 = twice as slow). Nodes are
// handed out fastest-first, and a job's throughput is the homogeneous plan
// prediction divided by the factor of the slowest node its plan actually
// uses — the synchronous-training bound the straggler ablation
// (ablation-heterogeneous) measures: a pipeline runs at its slowest
// worker's pace. Setting Cluster.Scheduler lets heterogeneous shares
// additionally bid with a list-scheduled plan (HEFT and friends re-shape
// the placement around the share's actual per-node factors) and the
// allocator keeps whichever candidate predicts higher throughput.
//
// Everything here is deterministic like every other sweep in the repo:
// allocation results are in job input order, every comparison carries a
// total tie-break (job index), and no step depends on the engine's pool
// size — the same Request yields bit-identical Allocations on one worker
// or many.
package fleet

import (
	"fmt"
	"math"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// Policy names an allocation policy.
type Policy string

const (
	// EqualSplit divides the cluster's nodes evenly across jobs,
	// ignoring priorities and scaling behavior — the naive baseline.
	EqualSplit Policy = "equal-split"
	// PlannerGuided greedily assigns node quanta to the job with the best
	// marginal weighted predicted-throughput gain under the §3.4 planner.
	PlannerGuided Policy = "planner-guided"
)

// Policies lists the supported allocation policy names.
func Policies() []string { return []string{string(EqualSplit), string(PlannerGuided)} }

// Quantum is the node-allocation granularity: pipelines need an even worker
// count (D ≥ 2 and even), so nodes move between jobs two at a time.
const Quantum = 2

// MaxJobs bounds a request's job list; it exists for the same reason as the
// serve layer's size caps — one request must not be able to provoke an
// unbounded amount of planning work.
const MaxJobs = 64

// Cluster describes the shared node pool jobs compete for.
type Cluster struct {
	// Nodes is the total node count.
	Nodes int
	// SpeedFactors, when non-empty, gives node i's compute-time multiplier
	// (1 = nominal, 2 = twice as slow); length must equal Nodes and every
	// factor must lie in [sim.MinSpeedFactor, sim.MaxSpeedFactor]. Empty
	// means homogeneous.
	SpeedFactors []float64
	// Device and Network describe one node and the interconnect — every
	// node runs the same accelerator; SpeedFactors expresses the per-node
	// deviation.
	Device  sim.Device
	Network sim.Network
	// Scheduler, when non-empty, lets heterogeneous shares additionally
	// bid with a list-scheduled plan (a schedule.Schedulers() name or
	// "auto"): the planner re-shapes the placement around the share's
	// actual per-node factors instead of bounding the whole pipeline by
	// its slowest node. Empty keeps the pre-policy behavior — homogeneous
	// plans divided by the straggler factor.
	Scheduler string
}

// Job is one training job asking for nodes.
type Job struct {
	// Name identifies the job in results and traces. Must be unique within
	// a request.
	Name  string
	Model model.Config
	// MiniBatch is the job's target mini-batch size B̂.
	MiniBatch int
	// Priority weights the job in the fleet objective Σ priority·throughput
	// (and is how the simulator breaks nothing — it is an objective weight,
	// not a preemption class). 0 means 1.
	Priority float64
	// Deadline, when positive, is the job's completion deadline in seconds
	// after its arrival; only the fleet simulator consults it (reported as
	// missed/met, never enforced).
	Deadline float64
	// MaxB caps the per-job greedy micro-batch search (0 = planner default).
	MaxB int
	// MaxNodes caps how many nodes the job's plan may drive (0 = no cap;
	// otherwise even and ≥ 2). Real jobs bound their parallelism — a model
	// only partitions so deep — and a cap makes a job's throughput curve
	// saturate, which is what lets the elastic simulator's incremental
	// re-planner agree with a full re-plan when capacity exceeds demand on
	// a homogeneous pool (with mixed node speeds the warm start keeps a
	// job on its surviving nodes rather than reshuffling onto faster
	// joiners, so the two policies may legitimately settle differently).
	MaxNodes int
}

// priority returns the job's effective objective weight.
func (j Job) priority() float64 {
	if j.Priority == 0 {
		return 1
	}
	return j.Priority
}

// Request is one fleet-allocation problem.
type Request struct {
	Cluster Cluster
	Jobs    []Job
	// Policy selects the allocator; empty means PlannerGuided.
	Policy Policy
}

// policy returns the request's effective policy.
func (r Request) policy() Policy {
	if r.Policy == "" {
		return PlannerGuided
	}
	return r.Policy
}

// Validate checks the request's structural invariants. Allocate calls it;
// surface layers (serve, CLI) call it too so their errors name the field
// before any planning work starts.
func (r Request) Validate() error {
	if r.Cluster.Nodes < Quantum {
		return fmt.Errorf("fleet: cluster needs at least %d nodes, got %d", Quantum, r.Cluster.Nodes)
	}
	if n := len(r.Cluster.SpeedFactors); n != 0 && n != r.Cluster.Nodes {
		return fmt.Errorf("fleet: speed_factors has %d entries, cluster has %d nodes (lengths must match)",
			n, r.Cluster.Nodes)
	}
	for i, f := range r.Cluster.SpeedFactors {
		if !(f >= sim.MinSpeedFactor && f <= sim.MaxSpeedFactor) {
			return fmt.Errorf("fleet: speed_factors[%d] = %g out of range [%g, %g]",
				i, f, float64(sim.MinSpeedFactor), float64(sim.MaxSpeedFactor))
		}
	}
	if s := r.Cluster.Scheduler; s != "" && s != "fixed" && s != "auto" {
		if _, err := schedule.SchedulerByName(s); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	if len(r.Jobs) == 0 {
		return fmt.Errorf("fleet: request has no jobs")
	}
	if len(r.Jobs) > MaxJobs {
		return fmt.Errorf("fleet: %d jobs exceed the limit %d", len(r.Jobs), MaxJobs)
	}
	seen := make(map[string]bool, len(r.Jobs))
	for i, j := range r.Jobs {
		if j.Name == "" {
			return fmt.Errorf("fleet: job %d has no name", i)
		}
		if seen[j.Name] {
			return fmt.Errorf("fleet: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.MiniBatch < 1 {
			return fmt.Errorf("fleet: job %q mini-batch must be ≥ 1, got %d", j.Name, j.MiniBatch)
		}
		if j.Priority < 0 || math.IsNaN(j.Priority) || math.IsInf(j.Priority, 0) {
			return fmt.Errorf("fleet: job %q priority must be finite and ≥ 0, got %g", j.Name, j.Priority)
		}
		if j.Deadline < 0 || math.IsNaN(j.Deadline) || math.IsInf(j.Deadline, 0) {
			return fmt.Errorf("fleet: job %q deadline must be finite and ≥ 0, got %g", j.Name, j.Deadline)
		}
		if j.MaxB < 0 {
			return fmt.Errorf("fleet: job %q max_b must be ≥ 0, got %d", j.Name, j.MaxB)
		}
		if j.MaxNodes != 0 && (j.MaxNodes < Quantum || j.MaxNodes%Quantum != 0) {
			return fmt.Errorf("fleet: job %q max_nodes must be 0 or an even count ≥ %d, got %d",
				j.Name, Quantum, j.MaxNodes)
		}
	}
	switch r.policy() {
	case EqualSplit, PlannerGuided:
	default:
		return fmt.Errorf("fleet: unknown policy %q (have %s, %s)", r.Policy, EqualSplit, PlannerGuided)
	}
	return nil
}
