package fleet

import (
	"time"

	"chimera/internal/obs"
)

// fleetMetrics holds the allocator's pre-resolved instrument handles so the
// allocation and re-plan paths never touch the registry mutex. Nil when
// observability is disabled (the default for batch callers).
type fleetMetrics struct {
	allocate *obs.Histogram // whole Allocate calls
	replan   *obs.Histogram // per-event-batch elastic re-plans

	allocations     *obs.Counter // Allocate calls completed
	replans         *obs.Counter // elastic re-plans run
	jobsReevaluated *obs.Counter // job evaluations summed over re-plans
}

// Observe attaches a metric registry to the allocator. Fleet series:
//
//	fleet_allocate_seconds        histogram, whole Allocate calls
//	fleet_replan_seconds          histogram, per-event-batch elastic re-plans
//	fleet_allocations_total       counter
//	fleet_replans_total           counter
//	fleet_jobs_reevaluated_total  counter; divided by fleet_replans_total it
//	                              is the mean jobs re-evaluated per batch
//	fleet_allocator_bids_total{result="hit"|"miss"}  candidate-plan lookups
//	                              ("bids") the greedy search made, read
//	                              through from the plan memo's counters
//
// A nil registry leaves the allocator uninstrumented. Instrumentation never
// changes results: every hook is a clock read plus atomic adds outside the
// decision path.
func (a *Allocator) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	a.met = &fleetMetrics{
		allocate: reg.Histogram("fleet_allocate_seconds", "whole fleet-allocation latency"),
		replan:   reg.Histogram("fleet_replan_seconds", "per-event-batch elastic re-plan latency"),
		allocations: reg.Counter("fleet_allocations_total",
			"fleet allocations computed"),
		replans: reg.Counter("fleet_replans_total",
			"elastic re-plans run"),
		jobsReevaluated: reg.Counter("fleet_jobs_reevaluated_total",
			"job evaluations performed across elastic re-plans"),
	}
	reg.CounterFunc("fleet_allocator_bids_total", "candidate-plan bids served from the plan memo",
		func() uint64 { h, _ := a.plans.Stats(); return h }, obs.L("result", "hit"))
	reg.CounterFunc("fleet_allocator_bids_total", "candidate-plan bids computed by the planner",
		func() uint64 { _, m := a.plans.Stats(); return m }, obs.L("result", "miss"))
}

// observeAllocate times one Allocate call; it returns a func to defer (nil
// metrics cost one predictable branch).
func (a *Allocator) observeAllocate() func() {
	m := a.met
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		m.allocate.Since(start)
		m.allocations.Inc()
	}
}

// observeReplan times one elastic re-plan and attributes the batch's job
// evaluations; jobsBefore is res.JobsEvaluated at entry.
func (a *Allocator) observeReplan(res *ElasticResult, jobsBefore int) func() {
	m := a.met
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		m.replan.Since(start)
		m.replans.Inc()
		if d := res.JobsEvaluated - jobsBefore; d > 0 {
			m.jobsReevaluated.Add(uint64(d))
		}
	}
}
