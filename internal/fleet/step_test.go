package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"chimera/internal/engine"
)

// liveConfig strips a trace scenario down to the config a live sim takes.
func liveConfig(sc ElasticScenario) ElasticScenario {
	sc.Events = nil
	return sc
}

// ingestByBatch feeds a trace to a live sim one distinct timestamp at a
// time (the storm drivers' schedule).
func ingestByBatch(t *testing.T, s *ElasticSim, events []Event) {
	t.Helper()
	for _, batch := range StormBatches(events) {
		if err := s.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
}

// TestElasticSimLiveMatchesReplay pins the controller's determinism anchor:
// a live sim fed batch by batch and a SimulateElastic replay of its
// recorded event log produce byte-identical shares, and the live event-
// record log is a byte-identical prefix of the replay's (the replay goes on
// to retire the residents).
func TestElasticSimLiveMatchesReplay(t *testing.T) {
	for _, mode := range []ReplanMode{ReplanIncremental, ReplanFull} {
		trace := elasticScenario(mode, 5)
		live, err := NewAllocator(engine.New()).NewElasticSim(liveConfig(trace))
		if err != nil {
			t.Fatal(err)
		}
		ingestByBatch(t, live, trace.Events)

		recorded := liveConfig(trace)
		recorded.Events = live.Events()
		replay, err := SimulateElasticOn(engine.New(), recorded)
		if err != nil {
			t.Fatal(err)
		}

		liveShares, _ := json.Marshal(live.Shares())
		replayShares, _ := json.Marshal(replay.Final)
		if string(liveShares) != string(replayShares) {
			t.Fatalf("%s: live shares differ from replay:\n%s\n%s", mode, liveShares, replayShares)
		}
		liveLog := live.Snapshot().Log
		if len(replay.Log) < len(liveLog) {
			t.Fatalf("%s: replay log shorter than live log (%d < %d)", mode, len(replay.Log), len(liveLog))
		}
		a, _ := json.Marshal(liveLog)
		b, _ := json.Marshal(replay.Log[:len(liveLog)])
		if string(a) != string(b) {
			t.Fatalf("%s: live log is not a prefix of the replay log:\n%s\n%s", mode, a, b)
		}
		// The live log always ends on the newest trace event: departures
		// after it have not happened yet on the live side.
		if last := liveLog[len(liveLog)-1]; last.Kind == EvDeparture {
			t.Fatalf("%s: live log ends on a departure: %+v", mode, last)
		}
	}
}

// TestElasticSimIngestTieBreak scrambles same-timestamp events within one
// live batch: Ingest must sort them into the pinned kind order, so the
// processed log and a replay agree bit for bit even though the wire order
// was adversarial.
func TestElasticSimIngestTieBreak(t *testing.T) {
	sc := liveConfig(elasticScenario(ReplanIncremental, 0))
	a := NewAllocator(engine.New())
	live, err := a.NewElasticSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Ingest([]Event{{At: 0, Kind: EvArrival, Job: "gpt2-mid", Work: 1000}}); err != nil {
		t.Fatal(err)
	}
	// Worst-case wire order at one timestamp: arrival, join, drain, fail.
	if err := live.Ingest([]Event{
		{At: 50, Kind: EvArrival, Job: "bert-small", Work: 2000},
		{At: 50, Kind: EvNodeJoin},
		{At: 50, Kind: EvNodeDrain, Node: 3},
		{At: 50, Kind: EvNodeFail, Node: 1},
	}); err != nil {
		t.Fatal(err)
	}
	log := live.Snapshot().Log
	var at50 []EventKind
	for _, rec := range log {
		if rec.At == 50 {
			at50 = append(at50, rec.Kind)
		}
	}
	want := []EventKind{EvNodeFail, EvNodeDrain, EvNodeJoin, EvArrival}
	if len(at50) != len(want) {
		t.Fatalf("log at t=50 has %d records (%v), want %v", len(at50), at50, want)
	}
	for i, k := range want {
		if at50[i] != k {
			t.Fatalf("log at t=50 is %v, want %v", at50, want)
		}
	}
	// And the recorded log stores the sorted order, so it replays verbatim.
	recorded := live.Events()
	kinds := []EventKind{recorded[1].Kind, recorded[2].Kind, recorded[3].Kind, recorded[4].Kind}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("recorded events at t=50 are %v, want %v", kinds, want)
		}
	}
}

// TestElasticSimIngestRules pins the live-mode admission rules: batch-time
// monotonicity, the trace-limit and node bounds, churn targets checked
// before any mutation, and rejection of whole-batch poisoning.
func TestElasticSimIngestRules(t *testing.T) {
	sc := liveConfig(elasticScenario(ReplanIncremental, 0))
	a := NewAllocator(engine.New())
	live, err := a.NewElasticSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Ingest(nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("want an empty-batch error, got %v", err)
	}
	if err := live.Ingest([]Event{{At: 10, Kind: EvArrival, Job: "bert-small", Work: 1000}}); err != nil {
		t.Fatal(err)
	}
	// Same or earlier batch time: rejected (replay would merge the batches
	// into one re-plan where the live side ran two).
	if err := live.Ingest([]Event{{At: 10, Kind: EvNodeJoin}}); err == nil || !strings.Contains(err.Error(), "not after") {
		t.Fatalf("want a monotonicity error, got %v", err)
	}
	if err := live.Ingest([]Event{{At: 5, Kind: EvNodeJoin}}); err == nil || !strings.Contains(err.Error(), "not after") {
		t.Fatalf("want a monotonicity error, got %v", err)
	}
	// Absent churn target: the whole batch is rejected before mutating.
	before := live.EventCount()
	if err := live.Ingest([]Event{
		{At: 20, Kind: EvNodeJoin},
		{At: 20, Kind: EvNodeFail, Node: 99},
	}); err == nil || !strings.Contains(err.Error(), "absent node") {
		t.Fatalf("want an absent-node error, got %v", err)
	}
	if live.EventCount() != before {
		t.Fatalf("rejected batch mutated the log: %d → %d events", before, live.EventCount())
	}
	// A fail and a join at one time: the join's id must not satisfy the
	// fail's target (fails apply first in kind order).
	if err := live.Ingest([]Event{
		{At: 30, Kind: EvNodeFail, Node: 16}, // id 16 would be the join's id
		{At: 30, Kind: EvNodeJoin},
	}); err == nil || !strings.Contains(err.Error(), "absent node") {
		t.Fatalf("want an absent-node error for the not-yet-joined id, got %v", err)
	}
	// Trace-mode sims reject Ingest.
	trace := elasticScenario(ReplanIncremental, 0)
	if _, err := a.NewElasticSim(trace); err == nil || !strings.Contains(err.Error(), "no pre-recorded events") {
		t.Fatalf("want a live-mode construction error, got %v", err)
	}
}

// TestElasticSimFork pins what-if semantics: a fork sees the parent's
// state, diverges under its own events and knobs, and never mutates the
// parent — the parent's replay identity survives the fork's exploration.
func TestElasticSimFork(t *testing.T) {
	trace := elasticScenario(ReplanIncremental, 5)
	a := NewAllocator(engine.New())
	live, err := a.NewElasticSim(liveConfig(trace))
	if err != nil {
		t.Fatal(err)
	}
	ingestByBatch(t, live, trace.Events)
	beforeShares, _ := json.Marshal(live.Shares())
	beforeLog, _ := json.Marshal(live.Snapshot().Log)

	fork := live.Fork()
	if err := fork.SetMigrationPenalty(50); err != nil {
		t.Fatal(err)
	}
	if err := fork.SetDeadline("bert-large", 100); err != nil {
		t.Fatal(err)
	}
	if err := fork.Ingest([]Event{
		{At: 200, Kind: EvNodeFail, Node: 2},
		{At: 200, Kind: EvArrival, Job: "gpt2-mid", Work: 5000},
	}); err != nil {
		t.Fatal(err)
	}
	if fork.EventCount() != live.EventCount()+2 {
		t.Fatalf("fork has %d events, want %d", fork.EventCount(), live.EventCount()+2)
	}

	afterShares, _ := json.Marshal(live.Shares())
	afterLog, _ := json.Marshal(live.Snapshot().Log)
	if string(beforeShares) != string(afterShares) {
		t.Fatalf("fork mutated the parent's shares:\n%s\n%s", beforeShares, afterShares)
	}
	if string(beforeLog) != string(afterLog) {
		t.Fatalf("fork mutated the parent's log:\n%s\n%s", beforeLog, afterLog)
	}
	if live.sc.MigrationPenalty != 5 {
		t.Fatalf("fork knob leaked: parent penalty %g", live.sc.MigrationPenalty)
	}
	for _, in := range live.active {
		if in.job.Name == "bert-large" && in.job.Deadline == 100 {
			t.Fatal("fork deadline leaked into the parent's resident instance")
		}
	}

	// Unknown job and bad knobs error.
	if err := fork.SetDeadline("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("want an unknown-job error, got %v", err)
	}
	if err := fork.SetMigrationPenalty(-1); err == nil {
		t.Fatal("want a negative-penalty error")
	}
}

// TestElasticSimSpotCost pins the spot/price model: spot joins are counted,
// the pool bill integrates price over presence, and at equal speed the
// cheaper node sorts first (so it is put to work before stable capacity).
func TestElasticSimSpotCost(t *testing.T) {
	sc := liveConfig(elasticScenario(ReplanIncremental, 0))
	a := NewAllocator(engine.New())
	live, err := a.NewElasticSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Ingest([]Event{{At: 0, Kind: EvArrival, Job: "gpt2-mid", Work: 10000}}); err != nil {
		t.Fatal(err)
	}
	if err := live.Ingest([]Event{
		{At: 10, Kind: EvNodeJoin, Class: ClassSpot, Price: 0.25},
		{At: 10, Kind: EvNodeJoin, Class: ClassOnDemand, Price: 1.0},
	}); err != nil {
		t.Fatal(err)
	}
	snap := live.Snapshot()
	if snap.Joins != 2 || snap.SpotJoins != 1 {
		t.Fatalf("joins/spot = %d/%d, want 2/1", snap.Joins, snap.SpotJoins)
	}
	// Both joined nodes have factor 1; the spot node is cheaper, so it
	// sorts ahead of the on-demand join in the pool order.
	spotPos, odPos := -1, -1
	for i, n := range live.present {
		switch n.Class {
		case ClassSpot:
			spotPos = i
		case ClassOnDemand:
			if n.Price > 0 {
				odPos = i
			}
		}
	}
	if spotPos < 0 || odPos < 0 || spotPos > odPos {
		t.Fatalf("pool order: spot at %d, priced on-demand at %d, want spot first", spotPos, odPos)
	}
	// Advance time via another batch: 10s of (0.25 + 1.0) priced capacity.
	if err := live.Ingest([]Event{{At: 20, Kind: EvNodeDrain, Node: 17}}); err != nil {
		t.Fatal(err)
	}
	if want := 10 * 1.25; live.Snapshot().Cost != want {
		t.Fatalf("cost = %g, want %g", live.Snapshot().Cost, want)
	}
	// The classic trace path reports the same accounting.
	trace := sc
	trace.Events = live.Events()
	res, err := SimulateElasticOn(engine.New(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpotJoins != 1 {
		t.Fatalf("replay spot joins = %d, want 1", res.SpotJoins)
	}
	if res.Cost <= 0 {
		t.Fatalf("replay cost = %g, want > 0", res.Cost)
	}
}

// TestGenerateStorm pins the generator: seeded determinism, target validity
// (the trace simulates cleanly), spot procurement, and at least one
// correlated rack failure at high rack-failure probability.
func TestGenerateStorm(t *testing.T) {
	names := make([]string, 0, 3)
	for _, j := range benchMix() {
		names = append(names, j.Name)
	}
	cfg := StormConfig{Seed: 7, Jobs: names, Nodes: 16, Events: 60, RackFailure: 0.5, Interval: 40}
	a, err := GenerateStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("equal configs generated different storms")
	}
	other, err := GenerateStorm(StormConfig{Seed: 8, Jobs: names, Nodes: 16, Events: 60, RackFailure: 0.5, Interval: 40})
	if err != nil {
		t.Fatal(err)
	}
	jo, _ := json.Marshal(other)
	if string(ja) == string(jo) {
		t.Fatal("different seeds generated the same storm")
	}
	if a[0].kind() != EvArrival {
		t.Fatalf("storm starts with %s, want an arrival", a[0].kind())
	}
	cascade := false
	for i := 1; i < len(a); i++ {
		if a[i].Kind == EvNodeFail && a[i-1].Kind == EvNodeFail && a[i].At == a[i-1].At {
			cascade = true
			break
		}
	}
	if !cascade {
		t.Fatal("no correlated rack failure in a storm with RackFailure=0.5")
	}
	spot := false
	for _, ev := range a {
		if ev.Class == ClassSpot {
			spot = true
			break
		}
	}
	if !spot {
		t.Fatal("no spot join in the storm")
	}
	sc := liveConfig(elasticScenario(ReplanIncremental, 5))
	sc.Events = a
	res, err := SimulateElasticOn(engine.New(), sc)
	if err != nil {
		t.Fatalf("storm does not simulate cleanly: %v", err)
	}
	if res.Events < len(a) {
		t.Fatalf("simulated %d events, want ≥ %d", res.Events, len(a))
	}
	// And the same storm drives a live sim batch by batch.
	live, err := NewAllocator(engine.New()).NewElasticSim(liveConfig(elasticScenario(ReplanIncremental, 5)))
	if err != nil {
		t.Fatal(err)
	}
	ingestByBatch(t, live, a)
	liveShares, _ := json.Marshal(live.Shares())
	replayShares, _ := json.Marshal(res.Final)
	if string(liveShares) != string(replayShares) {
		t.Fatalf("storm live shares differ from replay:\n%s\n%s", liveShares, replayShares)
	}
}
