package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
)

// elasticScenario is the shared churn scenario: the benchmark mix arriving,
// then a failure, a drain, and a join while everything is resident.
func elasticScenario(replan ReplanMode, penalty float64) ElasticScenario {
	return ElasticScenario{
		Cluster:          pizDaintCluster(16, nil),
		Jobs:             benchMix(),
		Replan:           replan,
		MigrationPenalty: penalty,
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "bert-large", Work: 100000},
			{At: 0, Kind: EvArrival, Job: "gpt2-mid", Work: 20000},
			{At: 30, Kind: EvArrival, Job: "bert-small", Work: 30000},
			{At: 60, Kind: EvNodeFail, Node: 0},
			{At: 90, Kind: EvNodeDrain, Node: 5},
			{At: 120, Kind: EvNodeJoin},
			{At: 150, Kind: EvNodeJoin},
		},
	}
}

// TestElasticCompletesEveryJob: every arrival runs and departs under churn,
// times are ordered, the pool ends at initial − fail − drain + 2 joins.
func TestElasticCompletesEveryJob(t *testing.T) {
	res, err := SimulateElasticOn(engine.New(), elasticScenario(ReplanIncremental, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("want 3 runs, got %d", len(res.Jobs))
	}
	for _, run := range res.Jobs {
		if run.StartAt < run.ArriveAt || run.DoneAt <= run.StartAt {
			t.Fatalf("run %s#%d has disordered times: %+v", run.Job, run.Trace, run)
		}
		if run.DoneAt > res.Makespan {
			t.Fatalf("run %s#%d departs after the makespan", run.Job, run.Trace)
		}
	}
	if res.InitialNodes != 16 || res.FinalNodes != 16 { // −1 fail −1 drain +2 joins
		t.Fatalf("pool %d → %d, want 16 → 16", res.InitialNodes, res.FinalNodes)
	}
	if res.Fails != 1 || res.Drains != 1 || res.Joins != 2 {
		t.Fatalf("churn counters %d/%d/%d, want 1/1/2", res.Fails, res.Drains, res.Joins)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %g out of (0, 1]", res.Utilization)
	}
	// 7 trace events + 3 departures.
	if res.Events != 10 {
		t.Fatalf("events = %d, want 10", res.Events)
	}
	if len(res.Log) != 10 {
		t.Fatalf("log has %d records, want 10", len(res.Log))
	}
	if res.Reallocations == 0 || res.JobsEvaluated == 0 {
		t.Fatal("the re-planner never ran")
	}
}

// TestElasticBitDeterministic: both re-plan modes replay byte-identically
// across runs, engines, and pool sizes — the acceptance gate.
func TestElasticBitDeterministic(t *testing.T) {
	for _, mode := range []ReplanMode{ReplanIncremental, ReplanFull} {
		var want []byte
		for run, e := range []*engine.Engine{engine.New(engine.Workers(1)), engine.New(), engine.New()} {
			res, err := SimulateElasticOn(e, elasticScenario(mode, 5))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				want = raw
				continue
			}
			if string(raw) != string(want) {
				t.Fatalf("%s: elastic simulation differs across engines:\n%s\n%s", mode, want, raw)
			}
		}
	}
}

// soloPlan allocates one job statically and returns its allocation (the
// reference for which nodes the elastic instance starts on).
func soloPlan(t *testing.T, nodes int, job Job) JobAllocation {
	t.Helper()
	al, err := AllocateOn(engine.New(engine.Workers(1)), Request{
		Cluster: pizDaintCluster(nodes, nil), Jobs: []Job{job},
	})
	if err != nil {
		t.Fatal(err)
	}
	return al.Jobs[0]
}

// TestElasticFailPenalty: failing a node under a running job forces a
// restart that pays the full migration penalty — MigrationPenalty seconds
// per pipeline stage of the old plan — and losing a node it never used
// costs nothing.
func TestElasticFailPenalty(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 64}
	ref := soloPlan(t, 8, job)
	if ref.Plan == nil || ref.NodesUsed < 2 {
		t.Fatalf("reference plan unusable: %+v", ref)
	}
	const penalty = 7.0
	usedID := ref.NodeIDs[0] // fastest node — certainly in the used prefix
	sc := ElasticScenario{
		Cluster:          pizDaintCluster(8, nil),
		Jobs:             []Job{job},
		MigrationPenalty: penalty,
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "solo", Work: 50000},
			{At: 10, Kind: EvNodeFail, Node: usedID},
		},
	}
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Jobs[0]
	if run.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", run.Restarts)
	}
	if want := penalty * float64(ref.Plan.D); run.PenaltySeconds != want {
		t.Fatalf("penalty = %g, want full %g (D=%d)", run.PenaltySeconds, want, ref.Plan.D)
	}
	if res.Migrations != 1 || res.PenaltySeconds != run.PenaltySeconds {
		t.Fatalf("fleet counters %d/%g inconsistent with the run", res.Migrations, res.PenaltySeconds)
	}

	// Failing a node the plan never used is free: the plan and its nodes
	// survive, so nothing restarts.
	assigned := make(map[int]bool)
	for _, id := range ref.NodeIDs {
		assigned[id] = true
	}
	idle := -1
	for id := 0; id < 8; id++ {
		if !assigned[id] {
			idle = id
			break
		}
	}
	if idle >= 0 {
		sc.Events[1] = Event{At: 10, Kind: EvNodeFail, Node: idle}
		res, err = SimulateElasticOn(engine.New(engine.Workers(1)), sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Migrations != 0 || res.PenaltySeconds != 0 {
			t.Fatalf("losing an unused node cost %d migrations / %g s", res.Migrations, res.PenaltySeconds)
		}
	}
}

// TestElasticDrainHalfPenalty: a drain charges exactly half the failure
// penalty — the pipeline flushes instead of discarding in-flight state.
func TestElasticDrainHalfPenalty(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 64}
	ref := soloPlan(t, 8, job)
	const penalty = 7.0
	mk := func(kind EventKind) ElasticScenario {
		return ElasticScenario{
			Cluster:          pizDaintCluster(8, nil),
			Jobs:             []Job{job},
			MigrationPenalty: penalty,
			Events: []Event{
				{At: 0, Kind: EvArrival, Job: "solo", Work: 50000},
				{At: 10, Kind: kind, Node: ref.NodeIDs[0]},
			},
		}
	}
	fail, err := SimulateElasticOn(engine.New(engine.Workers(1)), mk(EvNodeFail))
	if err != nil {
		t.Fatal(err)
	}
	drain, err := SimulateElasticOn(engine.New(engine.Workers(1)), mk(EvNodeDrain))
	if err != nil {
		t.Fatal(err)
	}
	if fail.PenaltySeconds == 0 || drain.PenaltySeconds != fail.PenaltySeconds/2 {
		t.Fatalf("drain penalty %g, want half of fail's %g", drain.PenaltySeconds, fail.PenaltySeconds)
	}
	if drain.Makespan >= fail.Makespan {
		t.Fatalf("drain makespan %g not below fail's %g despite half the debt", drain.Makespan, fail.Makespan)
	}
}

// TestElasticJoinExtends: a job capped by a small cluster migrates onto
// joined nodes when the remaining work amortizes the restart, and stays put
// when the migration penalty dwarfs what is left to gain.
func TestElasticJoinExtends(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 256}
	small := soloPlan(t, 2, job)
	big := soloPlan(t, 4, job)
	if !(big.Throughput > small.Throughput) {
		t.Fatalf("4 nodes (%g) must out-run 2 (%g) for this test to mean anything",
			big.Throughput, small.Throughput)
	}
	mk := func(penalty float64) ElasticScenario {
		return ElasticScenario{
			Cluster:          pizDaintCluster(2, nil),
			Jobs:             []Job{job},
			MigrationPenalty: penalty,
			Events: []Event{
				{At: 0, Kind: EvArrival, Job: "solo", Work: 100000},
				{At: 10, Kind: EvNodeJoin},
				{At: 10, Kind: EvNodeJoin},
			},
		}
	}
	free, err := SimulateElasticOn(engine.New(engine.Workers(1)), mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if free.Migrations != 1 {
		t.Fatalf("with zero penalty the join must trigger one migration, got %d", free.Migrations)
	}
	if len(free.Final) != 1 || free.Final[0].Nodes != big.NodesUsed {
		t.Fatalf("final share %+v, want the 4-node plan's %d nodes", free.Final, big.NodesUsed)
	}
	// A penalty far exceeding the remaining runtime's gain pins the job.
	stay, err := SimulateElasticOn(engine.New(engine.Workers(1)), mk(1e7))
	if err != nil {
		t.Fatal(err)
	}
	if stay.Migrations != 0 {
		t.Fatalf("a prohibitive penalty still migrated %d times", stay.Migrations)
	}
	if stay.Final[0].Nodes != small.NodesUsed {
		t.Fatalf("final share %+v, want to stay on %d nodes", stay.Final, small.NodesUsed)
	}
	if !(free.Makespan < stay.Makespan) {
		t.Fatalf("migrating (%g) must beat staying (%g) when the penalty is zero", free.Makespan, stay.Makespan)
	}
}

// TestElasticAgingPreempts: a starved low-priority job's effective priority
// grows with its wait until it evicts a high-priority hog — the guarantee
// that starvation is bounded. The heartbeat arrival at t=500 is the re-plan
// opportunity where the aged comparison finally flips.
func TestElasticAgingPreempts(t *testing.T) {
	jobs := []Job{
		{Name: "hog", Model: model.BERT48(), MiniBatch: 64, Priority: 100},
		{Name: "meek", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
		{Name: "heartbeat", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
	}
	sc := ElasticScenario{
		Cluster:  pizDaintCluster(2, nil),
		Jobs:     jobs,
		AgingTau: 1, // double effective priority every second of starvation
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "hog", Work: 1e6},
			{At: 1, Kind: EvArrival, Job: "meek", Work: 1000},
			{At: 500, Kind: EvArrival, Job: "heartbeat", Work: 1000},
		},
	}
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	meek := res.Jobs[1]
	if meek.StartAt != 500 {
		t.Fatalf("meek started at %g, want 500 (the heartbeat re-plan after ~499s of aging)", meek.StartAt)
	}
	hog := res.Jobs[0]
	if hog.DoneAt <= meek.DoneAt {
		t.Fatal("the preempted hog finished before the job that evicted it")
	}
	if res.Migrations == 0 {
		t.Fatal("no preemption was recorded")
	}
	for _, run := range res.Jobs {
		if run.DoneAt < 0 {
			t.Fatalf("run %s never completed: %+v", run.Job, run)
		}
	}
}

// TestElasticTieBreakOrder is the regression pin for the total event order
// when a departure, a node failure, a drain, a join, and an arrival all
// share one timestamp: departures first, then fail < drain < join <
// arrival, regardless of input order. The departure time is produced by a
// probe run so the shared timestamp is float-exact.
func TestElasticTieBreakOrder(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 64}
	probe, err := SimulateElasticOn(engine.New(engine.Workers(1)), ElasticScenario{
		Cluster: pizDaintCluster(4, nil),
		Jobs:    []Job{job},
		Events:  []Event{{At: 0, Kind: EvArrival, Job: "solo", Work: 10000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	T := probe.Jobs[0].DoneAt

	// Input order deliberately scrambled: arrival first, join before drain,
	// fail last. The simulator must still process the batch in kind order.
	sc := ElasticScenario{
		Cluster: pizDaintCluster(4, nil),
		Jobs:    []Job{job},
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "solo", Work: 10000},
			{At: T, Kind: EvArrival, Job: "solo", Work: 10000},
			{At: T, Kind: EvNodeJoin},
			{At: T, Kind: EvNodeDrain, Node: 2},
			{At: T, Kind: EvNodeFail, Node: 3},
		},
	}
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	var at []EventKind
	for _, rec := range res.Log {
		if rec.At == T {
			at = append(at, rec.Kind)
		}
	}
	want := []EventKind{EvDeparture, EvNodeFail, EvNodeDrain, EvNodeJoin, EvArrival}
	if len(at) != len(want) {
		t.Fatalf("log at t=%g has %d records (%v), want %v", T, len(at), at, want)
	}
	for i, k := range want {
		if at[i] != k {
			t.Fatalf("log at t=%g is %v, want %v", T, at, want)
		}
	}
	// The second instance must have planned against the settled pool:
	// 4 − fail − drain + join = 3 present nodes, one whole quantum.
	if res.FinalNodes != 3 {
		t.Fatalf("final pool %d, want 3", res.FinalNodes)
	}
	if second := res.Jobs[1]; second.StartAt != T {
		t.Fatalf("second instance started at %g, want %g (departure freed the pool first)", second.StartAt, T)
	}
}

// TestSimulateTieBreakDepartureBeforeArrival pins the classic simulator's
// order at a shared timestamp: the departure frees the cluster before the
// arrival plans, so the arriving instance starts immediately on the full
// pool.
func TestSimulateTieBreakDepartureBeforeArrival(t *testing.T) {
	jobs := []Job{{Name: "a", Model: model.BERT48(), MiniBatch: 64}}
	probe, err := SimulateOn(engine.New(engine.Workers(1)), Scenario{
		Cluster: pizDaintCluster(2, nil), Jobs: jobs,
		Trace: []Arrival{{At: 0, Job: "a", Work: 10000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	T := probe.Jobs[0].DoneAt
	res, err := SimulateOn(engine.New(engine.Workers(1)), Scenario{
		Cluster: pizDaintCluster(2, nil), Jobs: jobs,
		Trace: []Arrival{
			{At: 0, Job: "a", Work: 10000},
			{At: T, Job: "a", Work: 10000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].DoneAt != T {
		t.Fatalf("first instance departs at %g, want %g", res.Jobs[0].DoneAt, T)
	}
	if res.Jobs[1].StartAt != T || res.Jobs[1].Wait != 0 {
		t.Fatalf("second instance start %g wait %g — the departure did not free the quantum first",
			res.Jobs[1].StartAt, res.Jobs[1].Wait)
	}
}

// TestElasticIncrementalMatchesFull: on a churn trace whose jobs saturate
// below the pool size, the incremental re-planner must reach the same final
// allocation as full re-planning while evaluating far fewer jobs — the
// benchmark's two gates, in miniature.
func TestElasticIncrementalMatchesFull(t *testing.T) {
	jobs := []Job{
		{Name: "a", Model: model.BERT48(), MiniBatch: 8, Priority: 4, MaxNodes: 4},
		{Name: "b", Model: model.BERT48(), MiniBatch: 8, MaxNodes: 4},
		{Name: "c", Model: model.GPT2Small32(), MiniBatch: 8, MaxNodes: 4},
		{Name: "d", Model: model.BERT48(), MiniBatch: 8, MaxNodes: 4},
	}
	events := []Event{
		{At: 0, Kind: EvArrival, Job: "a", Work: 1e6},
		{At: 0, Kind: EvArrival, Job: "b", Work: 1e6},
		{At: 0, Kind: EvArrival, Job: "c", Work: 1e6},
		{At: 0, Kind: EvArrival, Job: "d", Work: 1e6},
		{At: 50, Kind: EvNodeFail, Node: 1},
		{At: 100, Kind: EvNodeJoin},
		{At: 150, Kind: EvNodeDrain, Node: 7},
		{At: 200, Kind: EvNodeJoin},
	}
	run := func(mode ReplanMode) *ElasticResult {
		res, err := SimulateElasticOn(engine.New(), ElasticScenario{
			Cluster: pizDaintCluster(24, nil), Jobs: jobs,
			Events: events, Replan: mode, MigrationPenalty: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(ReplanFull)
	inc := run(ReplanIncremental)
	rawFull, _ := json.Marshal(full.Final)
	rawInc, _ := json.Marshal(inc.Final)
	if string(rawFull) != string(rawInc) {
		t.Fatalf("final allocations diverge:\nfull:        %s\nincremental: %s", rawFull, rawInc)
	}
	if inc.JobsEvaluated >= full.JobsEvaluated {
		t.Fatalf("incremental evaluated %d jobs, full %d — no planning was saved",
			inc.JobsEvaluated, full.JobsEvaluated)
	}
}

// TestElasticEqualSplitChurn: equal-split shares must survive in-place
// pool mutation — a failed node is found in the owning share, charged the
// full penalty, and the job replans and completes. (Regression: equalSplit
// used to return subslices aliasing the live pool array, so the node
// removal rewrote every share and the failure was never attributed.)
func TestElasticEqualSplitChurn(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 64}
	ref := soloPlan(t, 4, job)
	const penalty = 5.0
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), ElasticScenario{
		Cluster:          pizDaintCluster(4, nil),
		Jobs:             []Job{job},
		Policy:           EqualSplit,
		MigrationPenalty: penalty,
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "solo", Work: 50000},
			{At: 10, Kind: EvNodeFail, Node: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 (the failed node was in the running share)", res.Migrations)
	}
	if want := penalty * float64(ref.Plan.D); res.PenaltySeconds != want {
		t.Fatalf("penalty = %g, want the full %g (node_fail under a running plan)", res.PenaltySeconds, want)
	}
	if res.Replan != ReplanFull {
		t.Fatalf("equal-split reported replan %q, want the effective %q", res.Replan, ReplanFull)
	}
	if res.Jobs[0].DoneAt < 0 {
		t.Fatal("job never completed after the failure")
	}
	if res.FinalNodes != 3 {
		t.Fatalf("final pool %d, want 3", res.FinalNodes)
	}
}

// TestElasticHeterogeneousFactorBound: a warm-start candidate list is not
// fastest-first once churn interleaves speeds; the straggler factor must
// still be the slowest *used* node, so throughput can never exceed the
// homogeneous plan. (Regression: prefixValues read the last node's factor,
// so a fast joining node at the tail halved the reported iteration time.)
func TestElasticHeterogeneousFactorBound(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 256}
	cap4 := soloPlan(t, 4, job)
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), ElasticScenario{
		Cluster: pizDaintCluster(2, nil),
		Jobs:    []Job{job},
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "solo", Work: 100000},
			// Two joining nodes twice as fast as the originals: appended
			// after the held share, they must not masquerade as the
			// pipeline's straggler bound.
			{At: 10, Kind: EvNodeJoin, Factor: 0.5},
			{At: 10, Kind: EvNodeJoin, Factor: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != 1 {
		t.Fatalf("want one resident instance, got %+v", res.Final)
	}
	got := res.Final[0]
	if got.Nodes == 4 && got.Throughput > cap4.Throughput {
		t.Fatalf("4-node share reports %g seq/s, above the slowest-node bound %g — the straggler factor leaked",
			got.Throughput, cap4.Throughput)
	}
	if got.Throughput > 2*cap4.Throughput {
		t.Fatalf("throughput %g is physically impossible for this pool (cap %g)", got.Throughput, 2*cap4.Throughput)
	}
}

// TestElasticValidation: malformed scenarios are rejected with the field
// named, before any planning.
func TestElasticValidation(t *testing.T) {
	base := elasticScenario(ReplanIncremental, 1)
	cases := []struct {
		name string
		mut  func(*ElasticScenario)
		want string
	}{
		{"no-events", func(s *ElasticScenario) { s.Events = nil }, "empty event trace"},
		{"no-arrivals", func(s *ElasticScenario) { s.Events = []Event{{At: 0, Kind: EvNodeJoin}} }, "no arrivals"},
		{"bad-kind", func(s *ElasticScenario) { s.Events[0].Kind = "reboot" }, "unknown kind"},
		{"unknown-job", func(s *ElasticScenario) { s.Events[0].Job = "nope" }, "unknown job"},
		{"negative-time", func(s *ElasticScenario) { s.Events[0].At = -1 }, "time"},
		{"zero-work", func(s *ElasticScenario) { s.Events[0].Work = 0 }, "work"},
		{"arrival-node", func(s *ElasticScenario) { s.Events[0].Node = 3 }, "must not set node"},
		{"fail-with-job", func(s *ElasticScenario) { s.Events[3].Job = "bert-large" }, "only node"},
		{"join-factor", func(s *ElasticScenario) { s.Events[5].Factor = 1e9 }, "factor"},
		{"bad-replan", func(s *ElasticScenario) { s.Replan = "lazy" }, "replan mode"},
		{"negative-penalty", func(s *ElasticScenario) { s.MigrationPenalty = -1 }, "migration penalty"},
		{"negative-tau", func(s *ElasticScenario) { s.AgingTau = -1 }, "aging tau"},
		{"bad-cluster", func(s *ElasticScenario) { s.Cluster.Nodes = 0 }, "nodes"},
	}
	for _, tc := range cases {
		sc := base
		sc.Events = append([]Event(nil), base.Events...)
		tc.mut(&sc)
		_, err := SimulateElastic(sc)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Failing an absent node is a replay-time error naming the event.
	sc := base
	sc.Events = append([]Event(nil), base.Events...)
	sc.Events[3].Node = 99
	if _, err := SimulateElastic(sc); err == nil || !strings.Contains(err.Error(), "absent node") {
		t.Errorf("failing an absent node: err = %v", err)
	}
}

// TestElasticTrailingChurnMakespan: churn scheduled after the last
// instance departs must not inflate the makespan or dilute utilization —
// the makespan is the time the last instance departs, exactly as on a
// churn-free trace.
func TestElasticTrailingChurnMakespan(t *testing.T) {
	job := Job{Name: "solo", Model: model.BERT48(), MiniBatch: 64}
	base := ElasticScenario{
		Cluster: pizDaintCluster(4, nil),
		Jobs:    []Job{job},
		Events:  []Event{{At: 0, Kind: EvArrival, Job: "solo", Work: 1000}},
	}
	probe, err := SimulateElasticOn(engine.New(engine.Workers(1)), base)
	if err != nil {
		t.Fatal(err)
	}
	trailing := base
	trailing.Events = append([]Event{}, base.Events...)
	trailing.Events = append(trailing.Events,
		Event{At: 1e6, Kind: EvNodeJoin},
		Event{At: 2e6, Kind: EvNodeFail, Node: 0},
	)
	res, err := SimulateElasticOn(engine.New(engine.Workers(1)), trailing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != probe.Makespan {
		t.Fatalf("trailing churn moved the makespan: %g != %g", res.Makespan, probe.Makespan)
	}
	if res.Utilization != probe.Utilization {
		t.Fatalf("trailing churn diluted utilization: %g != %g", res.Utilization, probe.Utilization)
	}
	if res.Joins != 1 || res.Fails != 1 || res.FinalNodes != 4 {
		t.Fatalf("trailing churn not applied to the pool: %+v", res)
	}
}

// TestElasticResidentCap: stacking more than MaxResident concurrent
// instances is a replay-time error naming the arrival — per-event planning
// work stays bounded no matter how many arrivals a trace carries.
func TestElasticResidentCap(t *testing.T) {
	events := make([]Event, MaxResident+1)
	for i := range events {
		events[i] = Event{At: 0, Kind: EvArrival, Job: "a", Work: 1e9}
	}
	_, err := SimulateElasticOn(engine.New(engine.Workers(1)), ElasticScenario{
		Cluster: pizDaintCluster(4, nil),
		Jobs:    []Job{{Name: "a", Model: model.BERT48(), MiniBatch: 64}},
		Events:  events,
	})
	if err == nil || !strings.Contains(err.Error(), "resident") {
		t.Fatalf("want a resident-cap error, got %v", err)
	}
}

// TestElasticStall: a trace whose cluster churns away below every job's
// feasible size fails loudly instead of spinning.
func TestElasticStall(t *testing.T) {
	sc := ElasticScenario{
		Cluster: pizDaintCluster(2, nil),
		Jobs:    []Job{{Name: "a", Model: model.BERT48(), MiniBatch: 64}},
		Events: []Event{
			{At: 0, Kind: EvArrival, Job: "a", Work: 1e6},
			{At: 1, Kind: EvNodeFail, Node: 0},
			{At: 1, Kind: EvNodeFail, Node: 1},
		},
	}
	_, err := SimulateElasticOn(engine.New(engine.Workers(1)), sc)
	if err == nil || !strings.Contains(err.Error(), "stalls") {
		t.Fatalf("want a stall error, got %v", err)
	}
}
