package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/sim"
)

func pizDaintCluster(nodes int, factors []float64) Cluster {
	return Cluster{
		Nodes: nodes, SpeedFactors: factors,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
}

// benchMix is the benchmark job mix used across tests, the experiment, and
// chimera-bench: unequal priorities and sizes so equal-split's
// priority-blindness costs it weighted throughput.
func benchMix() []Job {
	return []Job{
		{Name: "bert-large", Model: model.BERT48(), MiniBatch: 512, Priority: 4},
		{Name: "bert-small", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
		{Name: "gpt2-mid", Model: model.GPT2Small32(), MiniBatch: 64, Priority: 1},
	}
}

func mustAllocate(t *testing.T, e *engine.Engine, req Request) *Allocation {
	t.Helper()
	al, err := AllocateOn(e, req)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestEqualSplitShares: the baseline divides quanta evenly, hands leftovers
// to the lowest-indexed jobs, and reports jobs in input order.
func TestEqualSplitShares(t *testing.T) {
	req := Request{Cluster: pizDaintCluster(32, nil), Jobs: benchMix(), Policy: EqualSplit}
	al := mustAllocate(t, engine.New(engine.Workers(1)), req)
	if len(al.Jobs) != 3 {
		t.Fatalf("want 3 job allocations, got %d", len(al.Jobs))
	}
	// 16 quanta over 3 jobs: 6/5/5 quanta = 12/10/10 nodes.
	wantNodes := []int{12, 10, 10}
	for i, j := range al.Jobs {
		if j.Job != req.Jobs[i].Name {
			t.Fatalf("job %d out of input order: %q", i, j.Job)
		}
		if j.Nodes != wantNodes[i] {
			t.Fatalf("job %q nodes = %d, want %d", j.Job, j.Nodes, wantNodes[i])
		}
		if j.Plan == nil || j.Throughput <= 0 {
			t.Fatalf("job %q got no feasible plan in a %d-node share", j.Job, j.Nodes)
		}
		if j.NodesUsed > j.Nodes || j.NodesUsed != j.Plan.W*j.Plan.D {
			t.Fatalf("job %q uses %d nodes of %d with W=%d D=%d", j.Job, j.NodesUsed, j.Nodes, j.Plan.W, j.Plan.D)
		}
	}
	if al.WeightedThroughput <= 0 {
		t.Fatal("zero weighted throughput")
	}
}

// TestPlannerGuidedBeatsEqualSplit: on the benchmark mix the greedy
// allocator must strictly beat the priority-blind baseline — the headline
// property BENCH_fleet.json gates in CI.
func TestPlannerGuidedBeatsEqualSplit(t *testing.T) {
	cluster := pizDaintCluster(32, nil)
	e := engine.New()
	equal := mustAllocate(t, e, Request{Cluster: cluster, Jobs: benchMix(), Policy: EqualSplit})
	guided := mustAllocate(t, e, Request{Cluster: cluster, Jobs: benchMix(), Policy: PlannerGuided})
	if !(guided.WeightedThroughput > equal.WeightedThroughput) {
		t.Fatalf("planner-guided %.2f did not beat equal-split %.2f",
			guided.WeightedThroughput, equal.WeightedThroughput)
	}
	if guided.NodesAllocated > cluster.Nodes {
		t.Fatalf("allocated %d nodes of %d", guided.NodesAllocated, cluster.Nodes)
	}
}

// TestAllocationDeterministicAcrossPools: the same request must produce a
// bit-identical allocation on a serial engine and on a full pool, twice.
func TestAllocationDeterministicAcrossPools(t *testing.T) {
	for _, policy := range []Policy{EqualSplit, PlannerGuided} {
		req := Request{Cluster: pizDaintCluster(24, nil), Jobs: benchMix(), Policy: policy}
		var want []byte
		for run, e := range []*engine.Engine{engine.New(engine.Workers(1)), engine.New(), engine.New()} {
			al := mustAllocate(t, e, req)
			raw, err := json.Marshal(al)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				want = raw
				continue
			}
			if string(raw) != string(want) {
				t.Fatalf("%s: allocation differs across engines/pool sizes:\n%s\n%s", policy, want, raw)
			}
		}
	}
}

// TestNoNodeSharedBetweenJobs: every node id is assigned to at most one job.
func TestNoNodeSharedBetweenJobs(t *testing.T) {
	factors := make([]float64, 32)
	for i := range factors {
		factors[i] = 1 + float64(i%4)*0.25
	}
	for _, policy := range []Policy{EqualSplit, PlannerGuided} {
		al := mustAllocate(t, engine.New(), Request{Cluster: pizDaintCluster(32, factors), Jobs: benchMix(), Policy: policy})
		seen := map[int]string{}
		for _, j := range al.Jobs {
			if len(j.NodeIDs) != j.Nodes {
				t.Fatalf("%s: job %q reports %d nodes but %d ids", policy, j.Job, j.Nodes, len(j.NodeIDs))
			}
			for _, id := range j.NodeIDs {
				if owner, dup := seen[id]; dup {
					t.Fatalf("%s: node %d assigned to both %q and %q", policy, id, owner, j.Job)
				}
				if id < 0 || id >= 32 {
					t.Fatalf("%s: node id %d out of range", policy, id)
				}
				seen[id] = j.Job
			}
		}
	}
}

// TestStragglerPenalty: a uniformly slower cluster scales throughput down by
// exactly the factor, and the allocator prefers fast nodes — the slowest
// nodes stay idle when a plan cannot use the whole share.
func TestStragglerPenalty(t *testing.T) {
	jobs := []Job{{Name: "solo", Model: model.BERT48(), MiniBatch: 128}}
	e := engine.New(engine.Workers(1))
	base := mustAllocate(t, e, Request{Cluster: pizDaintCluster(8, nil), Jobs: jobs})
	slow := mustAllocate(t, e, Request{
		Cluster: pizDaintCluster(8, []float64{2, 2, 2, 2, 2, 2, 2, 2}), Jobs: jobs,
	})
	if got, want := slow.Jobs[0].Throughput, base.Jobs[0].Throughput/2; got != want {
		t.Fatalf("uniform ×2 cluster throughput = %g, want exactly %g", got, want)
	}
	if slow.Jobs[0].StragglerFactor != 2 {
		t.Fatalf("straggler factor = %g, want 2", slow.Jobs[0].StragglerFactor)
	}
	// One ×1000 node among nominal ones: fastest-first assignment must keep
	// it out of any plan that fits in the 8 nominal nodes.
	mixed := mustAllocate(t, e, Request{
		Cluster: pizDaintCluster(9, []float64{1, 1, 1, 1000, 1, 1, 1, 1, 1}), Jobs: jobs,
	})
	if f := mixed.Jobs[0].StragglerFactor; f != 1 {
		t.Fatalf("plan absorbed the ×1000 straggler (factor %g)", f)
	}
	for i := 0; i < mixed.Jobs[0].NodesUsed; i++ {
		if mixed.Jobs[0].NodeIDs[i] == 3 {
			t.Fatal("straggler node 3 among the used (fastest-first) prefix")
		}
	}
}

// TestLookaheadFindsDistantFeasibility: a job whose smallest feasible
// worker count is several quanta away still gets nodes — every
// single-quantum gain is zero until the allocator's lookahead jumps
// straight to the feasible size.
func TestLookaheadFindsDistantFeasibility(t *testing.T) {
	// Layers=6 and mini-batch 1 restrict the candidate set to P ∈ {2, 6}
	// (W must divide B̂=1, so P = D must divide the layers and be even).
	// The device memory is sized so the 3-layers-per-stage P=2 partition
	// OOMs even with recomputation while the 1-layer stages of P=6 fit —
	// leaving P=6 as the job's only feasible worker count.
	gap := model.Config{Name: "gap", Layers: 6, Hidden: 1024, Heads: 16, Vocab: 8192, SeqLen: 128}
	cluster := pizDaintCluster(8, nil)
	cluster.Device.MemBytes = lookaheadMemBytes(t, cluster, gap)
	jobs := []Job{{Name: "gappy", Model: gap, MiniBatch: 1}}
	al := mustAllocate(t, engine.New(engine.Workers(1)), Request{Cluster: cluster, Jobs: jobs})
	g := al.Jobs[0]
	if g.Plan == nil || g.Throughput <= 0 {
		t.Fatalf("gappy job got nothing: %+v", g)
	}
	if g.NodesUsed != 6 {
		t.Fatalf("gappy job uses %d nodes, want 6 (its only feasible worker count)", g.NodesUsed)
	}
}

// lookaheadMemBytes finds a device size under which the test model is
// infeasible at P=2 but feasible at P=6, asserting the precondition the
// lookahead test depends on.
func lookaheadMemBytes(t *testing.T, cluster Cluster, m model.Config) int64 {
	t.Helper()
	a := NewAllocator(engine.New(engine.Workers(1)))
	job := Job{Name: "probe", Model: m, MiniBatch: 1}
	for mem := int64(1) << 24; mem <= 1<<34; mem *= 2 {
		c := cluster
		c.Device.MemBytes = mem
		p2, err := a.planBest(c, job, 2)
		if err != nil {
			t.Fatal(err)
		}
		p6, err := a.planBest(c, job, 6)
		if err != nil {
			t.Fatal(err)
		}
		if p2 == nil && p6 != nil {
			return mem
		}
	}
	t.Fatal("no device size separates P=2 (OOM) from P=6 (fits) for the gap model")
	return 0
}

// TestValidateRejections: structural errors are named before any planning.
func TestValidateRejections(t *testing.T) {
	good := Request{Cluster: pizDaintCluster(8, nil), Jobs: []Job{{Name: "a", Model: model.BERT48(), MiniBatch: 64}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"tiny-cluster", func(r *Request) { r.Cluster.Nodes = 1 }},
		{"factor-length", func(r *Request) { r.Cluster.SpeedFactors = []float64{1, 1} }},
		{"factor-range", func(r *Request) {
			r.Cluster.SpeedFactors = []float64{1, 1, 1, 1, 1, 1, 1, 2e6}
		}},
		{"no-jobs", func(r *Request) { r.Jobs = nil }},
		{"unnamed-job", func(r *Request) { r.Jobs[0].Name = "" }},
		{"dup-job", func(r *Request) { r.Jobs = append(r.Jobs, r.Jobs[0]) }},
		{"bad-minibatch", func(r *Request) { r.Jobs[0].MiniBatch = 0 }},
		{"negative-priority", func(r *Request) { r.Jobs[0].Priority = -1 }},
		{"negative-deadline", func(r *Request) { r.Jobs[0].Deadline = -5 }},
		{"bad-policy", func(r *Request) { r.Policy = "fifo" }},
	}
	for _, tc := range cases {
		req := Request{Cluster: pizDaintCluster(8, nil), Jobs: []Job{{Name: "a", Model: model.BERT48(), MiniBatch: 64}}}
		tc.mut(&req)
		if _, err := Allocate(req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestAllocatorCapBoundsPlanMemo: a capacity-bounded allocator (the
// daemon's configuration) evicts plan entries instead of growing without
// limit, and still allocates identically to the unbounded one.
func TestAllocatorCapBoundsPlanMemo(t *testing.T) {
	e := engine.New(engine.Workers(1))
	req := Request{Cluster: pizDaintCluster(24, nil), Jobs: benchMix()}
	unbounded, err := NewAllocator(e).Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	capped := NewAllocatorCap(e, 2)
	got, err := capped.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unbounded, got) {
		t.Fatal("bounded plan memo changed the allocation")
	}
	if n := capped.plans.Len(); n > 2 {
		t.Fatalf("capacity-2 plan memo holds %d entries", n)
	}
	if capped.plans.Evictions() == 0 {
		t.Fatal("a 24-node allocation through a capacity-2 memo evicted nothing")
	}
}

// TestAllocatorMemoReuse: re-allocating the same request on one Allocator
// hits the plan memo instead of replanning.
func TestAllocatorMemoReuse(t *testing.T) {
	a := NewAllocator(engine.New(engine.Workers(1)))
	req := Request{Cluster: pizDaintCluster(16, nil), Jobs: benchMix()}
	first, err := a.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	_, misses0 := a.plans.Stats()
	second, err := a.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := a.plans.Stats()
	if misses != misses0 {
		t.Fatalf("second allocation planned %d new requests", misses-misses0)
	}
	if hits == 0 {
		t.Fatal("second allocation hit nothing")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized allocation differs from the first")
	}
}
