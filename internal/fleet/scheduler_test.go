package fleet

import (
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
)

// TestSchedulerCandidateWins: on a straggled cluster, letting shares bid
// with a list-scheduled plan must strictly improve the fleet objective —
// HEFT re-shapes the placement around the slow node instead of either
// bounding the whole pipeline by it or leaving it idle.
func TestSchedulerCandidateWins(t *testing.T) {
	factors := []float64{1, 1, 1, 1, 1, 1, 1, 2}
	job := []Job{{Name: "gpt2", Model: model.GPT2Small32(), MiniBatch: 512, MaxB: 8}}
	e := engine.New()

	base := mustAllocate(t, e, Request{Cluster: pizDaintCluster(8, factors), Jobs: job})
	het := pizDaintCluster(8, factors)
	het.Scheduler = "heft"
	listed := mustAllocate(t, e, Request{Cluster: het, Jobs: job})

	if !(listed.WeightedThroughput > base.WeightedThroughput) {
		t.Fatalf("list-scheduled allocation %.2f did not beat slowest-node bound %.2f",
			listed.WeightedThroughput, base.WeightedThroughput)
	}
	j := listed.Jobs[0]
	if j.Scheduler == "" || j.Scheduler == "fixed" {
		t.Fatalf("winning plan's scheduler = %q, want a list policy", j.Scheduler)
	}
	if j.StragglerFactor != 1 {
		t.Fatalf("list-scheduled share reports straggler factor %g, want 1", j.StragglerFactor)
	}
	if j.Throughput != j.Plan.Throughput {
		t.Fatalf("Throughput %g != Plan.Throughput %g for a list-scheduled share",
			j.Throughput, j.Plan.Throughput)
	}
	if base.Jobs[0].Scheduler != "" {
		t.Fatalf("baseline allocation unexpectedly list-scheduled: %q", base.Jobs[0].Scheduler)
	}
}

// TestSchedulerHomogeneousUnchanged: on a homogeneous cluster the scheduler
// option is inert — every policy defers to the fixed placement, so the
// allocation is identical to the pre-policy one.
func TestSchedulerHomogeneousUnchanged(t *testing.T) {
	jobs := benchMix()
	e := engine.New(engine.Workers(1))
	base := mustAllocate(t, e, Request{Cluster: pizDaintCluster(16, nil), Jobs: jobs})
	het := pizDaintCluster(16, nil)
	het.Scheduler = "auto"
	listed := mustAllocate(t, e, Request{Cluster: het, Jobs: jobs})
	if base.WeightedThroughput != listed.WeightedThroughput {
		t.Fatalf("scheduler option changed a homogeneous allocation: %.4f vs %.4f",
			base.WeightedThroughput, listed.WeightedThroughput)
	}
	for i := range listed.Jobs {
		if listed.Jobs[i].Scheduler != "" {
			t.Fatalf("job %q list-scheduled on a homogeneous cluster", listed.Jobs[i].Job)
		}
	}
}

// TestSchedulerValidate: unknown scheduler names are rejected up front.
func TestSchedulerValidate(t *testing.T) {
	c := pizDaintCluster(8, nil)
	c.Scheduler = "peft"
	err := Request{Cluster: c, Jobs: benchMix()}.Validate()
	if err == nil {
		t.Fatal("unknown cluster scheduler must fail validation")
	}
}
