package fleet

// Storm generation: seeded, reproducible churn traces for driving the live
// controller and the elastic benchmarks. A storm interleaves job arrivals
// with node failures, drains and joins, models spot vs. on-demand
// procurement on the joins, and — the part a uniform random trace cannot
// produce — correlated rack failures: a power or switch fault takes out
// every present node in one rack at the same instant, which exercises the
// same-timestamp kind ordering and the incremental re-planner's multi-node
// repair path in a single batch.
//
// The generator mirrors the simulator's node-id discipline (initial nodes
// are 0..Nodes-1, joins get sequential fresh ids) so every fail/drain it
// emits targets a node that is actually present when the event applies.
// Slot times are strictly increasing, so feeding one slot per Ingest call
// satisfies the live sim's batch-monotonicity contract.

import (
	"fmt"
	"math/rand"
)

// StormConfig parameterizes GenerateStorm. Zero values select the noted
// defaults.
type StormConfig struct {
	// Seed fixes the trace; equal configs generate equal traces.
	Seed int64
	// Jobs is the arrival vocabulary (names from the scenario's job list).
	Jobs []string
	// Nodes is the initial cluster size the trace will run against.
	Nodes int
	// Racks partitions node ids by id mod Racks (default 4).
	Racks int
	// Events is how many events to generate (≤ MaxEvents).
	Events int
	// Start and Interval space the slots (defaults 10 and 30 seconds); each
	// slot holds one event, or a whole rack's failures.
	Start, Interval float64
	// Work is the mean arrival work in sequences (default 20000), jittered
	// uniformly ±50%.
	Work float64
	// ArrivalWeight, FailWeight, DrainWeight and JoinWeight bias the slot
	// draw (defaults 0.35, 0.25, 0.15, 0.25; normalized internally).
	ArrivalWeight, FailWeight, DrainWeight, JoinWeight float64
	// RackFailure is the chance a failure cascades to the seed node's whole
	// rack (default 0.15).
	RackFailure float64
	// SpotFraction is the fraction of joins procured as spot capacity
	// (default 0.5); SpotPrice and OnDemandPrice are their price rates
	// (defaults 0.3 and 1.0). Failures prefer spot nodes 3:1 — preemptible
	// capacity is what actually gets preempted.
	SpotFraction, SpotPrice, OnDemandPrice float64
	// MinNodes floors churn: fails and drains never shrink the pool below
	// it (default 2·Quantum).
	MinNodes int
}

// stormNode is the generator's shadow of one present node.
type stormNode struct {
	id   int
	spot bool
}

// GenerateStorm produces a seeded churn trace per cfg. The first event is
// always an arrival (a trace with no arrivals is invalid, and a controller
// with no residents has nothing to plan).
func GenerateStorm(cfg StormConfig) ([]Event, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("fleet: storm needs a non-empty job vocabulary")
	}
	if cfg.Nodes < 2*Quantum {
		return nil, fmt.Errorf("fleet: storm needs at least %d initial nodes, got %d", 2*Quantum, cfg.Nodes)
	}
	if cfg.Events < 1 || cfg.Events > MaxEvents {
		return nil, fmt.Errorf("fleet: storm event count %d out of range [1, %d]", cfg.Events, MaxEvents)
	}
	racks := cfg.Racks
	if racks <= 0 {
		racks = 4
	}
	start, interval := cfg.Start, cfg.Interval
	if start <= 0 {
		start = 10
	}
	if interval <= 0 {
		interval = 30
	}
	work := cfg.Work
	if work <= 0 {
		work = 20000
	}
	wArr, wFail, wDrain, wJoin := cfg.ArrivalWeight, cfg.FailWeight, cfg.DrainWeight, cfg.JoinWeight
	if wArr == 0 && wFail == 0 && wDrain == 0 && wJoin == 0 {
		wArr, wFail, wDrain, wJoin = 0.35, 0.25, 0.15, 0.25
	}
	rackFail := cfg.RackFailure
	if rackFail == 0 {
		rackFail = 0.15
	}
	spotFrac := cfg.SpotFraction
	if spotFrac == 0 {
		spotFrac = 0.5
	}
	spotPrice, odPrice := cfg.SpotPrice, cfg.OnDemandPrice
	if spotPrice == 0 {
		spotPrice = 0.3
	}
	if odPrice == 0 {
		odPrice = 1.0
	}
	minNodes := cfg.MinNodes
	if minNodes <= 0 {
		minNodes = 2 * Quantum
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	present := make([]stormNode, cfg.Nodes)
	for i := range present {
		present[i] = stormNode{id: i}
	}
	nextID := cfg.Nodes
	arrivals := 0

	var out []Event
	at := start
	for slots := 0; len(out) < cfg.Events; slots++ {
		if slots > 4*cfg.Events+64 {
			// Every draw is hitting a cap (resident, node floor, node limit):
			// the config cannot produce the requested trace.
			return nil, fmt.Errorf("fleet: storm config cannot produce %d events (capped after %d slots)", cfg.Events, slots)
		}
		t := at
		at += interval
		kind := EvArrival
		if len(out) > 0 { // the first event is always an arrival
			switch x := r.Float64() * (wArr + wFail + wDrain + wJoin); {
			case x < wArr:
				kind = EvArrival
			case x < wArr+wFail:
				kind = EvNodeFail
			case x < wArr+wFail+wDrain:
				kind = EvNodeDrain
			default:
				kind = EvNodeJoin
			}
		}
		switch kind {
		case EvArrival:
			if arrivals >= MaxResident {
				continue // a slot of arrivals beyond the cap could strand residents
			}
			arrivals++
			w := work * (0.5 + r.Float64())
			out = append(out, Event{At: t, Kind: EvArrival, Job: cfg.Jobs[r.Intn(len(cfg.Jobs))], Work: float64(int(w))})
		case EvNodeFail:
			if len(present) <= minNodes {
				continue
			}
			v := pickVictim(r, present)
			if r.Float64() < rackFail {
				// Correlated failure: the whole rack goes at once, floored so
				// the pool stays viable. Victims are removed back to front so
				// the index arithmetic stays simple.
				seed := present[v].id % racks
				for i := len(present) - 1; i >= 0 && len(present) > minNodes; i-- {
					if present[i].id%racks != seed {
						continue
					}
					out = append(out, Event{At: t, Kind: EvNodeFail, Node: present[i].id})
					present = append(present[:i], present[i+1:]...)
				}
			} else {
				out = append(out, Event{At: t, Kind: EvNodeFail, Node: present[v].id})
				present = append(present[:v], present[v+1:]...)
			}
		case EvNodeDrain:
			if len(present) <= minNodes {
				continue
			}
			v := r.Intn(len(present))
			out = append(out, Event{At: t, Kind: EvNodeDrain, Node: present[v].id})
			present = append(present[:v], present[v+1:]...)
		case EvNodeJoin:
			if nextID >= MaxElasticNodes {
				continue
			}
			spot := r.Float64() < spotFrac
			ev := Event{At: t, Kind: EvNodeJoin, Class: ClassOnDemand, Price: odPrice}
			if spot {
				ev.Class, ev.Price = ClassSpot, spotPrice
			}
			out = append(out, ev)
			present = append(present, stormNode{id: nextID, spot: spot})
			nextID++
		}
	}
	if len(out) > cfg.Events {
		// A rack cascade may overshoot; trimming from the tail keeps every
		// emitted fail/drain target valid (later events never free an id).
		out = out[:cfg.Events]
	}
	return out, nil
}

// pickVictim biases failures toward spot nodes 3:1 when any are present.
func pickVictim(r *rand.Rand, present []stormNode) int {
	spots := make([]int, 0, len(present))
	for i, n := range present {
		if n.spot {
			spots = append(spots, i)
		}
	}
	if len(spots) > 0 && r.Float64() < 0.75 {
		return spots[r.Intn(len(spots))]
	}
	return r.Intn(len(present))
}

// StormBatches groups a storm trace into its per-slot batches (consecutive
// runs of equal times) — the unit a live driver feeds to ElasticSim.Ingest.
func StormBatches(events []Event) [][]Event {
	var out [][]Event
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].At == events[i].At {
			j++
		}
		out = append(out, events[i:j:j])
		i = j
	}
	return out
}
