package fleet

// Elastic fleet simulation: the cluster itself churns — nodes fail, drain,
// and join while jobs arrive and depart — and the allocator re-plans
// *incrementally* on every event, warm-starting from the previous
// allocation and only re-evaluating jobs whose node sets the event touched.
// A migration-cost term (restart penalty proportional to lost pipeline
// state) decides preempt-and-move vs. stay, and deadline-aware priority
// aging guarantees starved jobs eventually win quanta. The full-replan
// policy (re-run the static allocator from scratch at every event) is
// retained as the reference the benchmark gates against: incremental must
// reach the same final allocation at a fraction of the planning work.
//
// Everything is deterministic like the rest of the repo: events carry a
// total order (time, then kind — departures before failures before drains
// before joins before arrivals — then input index), every decision carries
// a total tie-break, and no step depends on the engine's pool size.

import (
	"fmt"
	"math"
	"sort"

	"chimera/internal/engine"
	"chimera/internal/perfmodel"
	"chimera/internal/sim"
)

// EventKind names one elastic-trace event type.
type EventKind string

const (
	// EvArrival is a job instance entering the cluster with a fixed amount
	// of work (the classic trace event; an empty Kind means arrival).
	EvArrival EventKind = "arrival"
	// EvNodeFail abruptly removes a node: jobs running on it lose their
	// in-flight pipeline state and pay the full restart penalty.
	EvNodeFail EventKind = "node_fail"
	// EvNodeDrain gracefully removes a node: jobs running on it flush their
	// pipelines and migrate, paying half the restart penalty.
	EvNodeDrain EventKind = "node_drain"
	// EvNodeJoin adds a fresh node (ids are assigned sequentially after the
	// initial cluster); its optional speed factor defaults to 1.
	EvNodeJoin EventKind = "node_join"
	// EvDeparture is internal — a job instance completing — but appears in
	// the result's event log so tie-break order is observable.
	EvDeparture EventKind = "departure"
)

// kindRank is the total order of same-timestamp events: departures free
// nodes first, failures and drains shrink the pool before joins grow it,
// and arrivals plan last against the settled pool.
func kindRank(k EventKind) int {
	switch k {
	case EvDeparture:
		return 0
	case EvNodeFail:
		return 1
	case EvNodeDrain:
		return 2
	case EvNodeJoin:
		return 3
	default: // EvArrival and ""
		return 4
	}
}

// ReplanMode selects how the elastic simulator re-plans on each event.
type ReplanMode string

const (
	// ReplanIncremental warm-starts from the previous allocation and only
	// re-evaluates jobs the event touched — the policy this package exists
	// for.
	ReplanIncremental ReplanMode = "incremental"
	// ReplanFull re-runs the static allocator from scratch at every event —
	// the reference the benchmark compares against.
	ReplanFull ReplanMode = "full"
)

// ReplanModes lists the supported re-plan mode names.
func ReplanModes() []string { return []string{string(ReplanIncremental), string(ReplanFull)} }

// MaxElasticNodes bounds the pool (initial nodes plus joins) so one
// scenario cannot provoke unbounded planning work.
const MaxElasticNodes = 512

// MaxEvents bounds an elastic trace for the same reason.
const MaxEvents = 4096

// MaxResident bounds how many instances may be resident at once — the same
// MaxJobs contract the static allocator enforces per request, applied at
// replay time because arrivals of one job can stack. Without it a trace of
// same-instant arrivals grows every re-plan's needy set toward the event
// count and total work quadratically; with it, per-event planning work is
// bounded by MaxResident × pool size. Exceeding it is a replay-time error
// naming the arrival.
const MaxResident = MaxJobs

// DefaultAgingTau is the default priority-aging time constant in seconds: a
// starved job's effective priority doubles every tau of waiting. Jobs with
// a deadline age on min(tau, deadline/2) so deadline pressure accelerates
// aging.
const DefaultAgingTau = 600.0

// Node procurement classes for node_join events. Spot capacity is cheap but
// preemptible; on-demand capacity is stable. At equal speed the pool orders
// cheaper nodes first, so preemptible capacity is put to work while the
// stable paid nodes stay free longest — losing a spot node then strands the
// least state.
const (
	ClassOnDemand = "on-demand"
	ClassSpot     = "spot"
)

// Event is one entry of an elastic trace. Exactly the fields of its kind
// may be set: arrivals carry Job and Work, node_fail/node_drain carry Node,
// node_join may carry Factor, Class and Price.
type Event struct {
	// At is the event time in seconds (≥ 0).
	At float64
	// Kind is the event type; empty means arrival.
	Kind EventKind
	// Job names an entry of the scenario's job list (arrivals).
	Job string
	// Work is the number of sequences the arriving instance must process.
	Work float64
	// Node is the failing or draining node's id.
	Node int
	// Factor is the joining node's speed factor (0 = nominal 1.0).
	Factor float64
	// Class is the joining node's procurement class: ClassOnDemand (the ""
	// default) or ClassSpot. The omitempty tag keeps the encoding of legacy
	// traces — and therefore every cache key derived from one — unchanged.
	Class string `json:",omitempty"`
	// Price is the joining node's cost rate (price units per second, ≥ 0);
	// the simulator integrates Σ price over the present pool into the
	// result's Cost. Initial cluster nodes are free (price 0).
	Price float64 `json:",omitempty"`
}

// kind returns the event's effective kind.
func (e Event) kind() EventKind {
	if e.Kind == "" {
		return EvArrival
	}
	return e.Kind
}

// ElasticScenario is one elastic fleet-simulation problem: a cluster, the
// job vocabulary, an allocation policy, and an event trace that mixes job
// arrivals with node churn.
type ElasticScenario struct {
	Cluster Cluster
	Jobs    []Job
	Policy  Policy
	Events  []Event
	// Replan selects incremental (default) or full re-planning. Equal-split
	// scenarios always re-split the whole pool — effectively full — and the
	// result's Replan field reports that.
	Replan ReplanMode
	// MigrationPenalty is the restart cost in seconds per pipeline stage of
	// the restarting job's old plan: a preempted or migrated pipeline must
	// drain and refill D stages of in-flight micro-batch state. Failures
	// charge the full penalty (state is lost); drains and voluntary
	// migrations charge half (the pipeline flushes first). 0 disables
	// migration costs.
	MigrationPenalty float64
	// AgingTau overrides DefaultAgingTau (0 = default).
	AgingTau float64
}

func (sc ElasticScenario) replan() ReplanMode {
	if sc.Replan == "" {
		return ReplanIncremental
	}
	return sc.Replan
}

func (sc ElasticScenario) agingTau() float64 {
	if sc.AgingTau == 0 {
		return DefaultAgingTau
	}
	return sc.AgingTau
}

// Validate checks the scenario's structural invariants; SimulateElastic
// calls it, and surface layers call it too so errors name the field before
// any planning work starts.
func (sc ElasticScenario) Validate() error {
	if err := sc.validateConfig(); err != nil {
		return err
	}
	if len(sc.Events) == 0 {
		return fmt.Errorf("fleet: elastic scenario has an empty event trace")
	}
	if len(sc.Events) > MaxEvents {
		return fmt.Errorf("fleet: %d events exceed the limit %d", len(sc.Events), MaxEvents)
	}
	byName := make(map[string]bool, len(sc.Jobs))
	for _, j := range sc.Jobs {
		byName[j.Name] = true
	}
	arrivals, joins := 0, 0
	for i, ev := range sc.Events {
		if err := validateEvent(byName, i, ev); err != nil {
			return err
		}
		switch ev.kind() {
		case EvArrival:
			arrivals++
		case EvNodeJoin:
			joins++
		}
	}
	if arrivals == 0 {
		return fmt.Errorf("fleet: elastic trace has no arrivals")
	}
	if total := sc.Cluster.Nodes + joins; total > MaxElasticNodes {
		return fmt.Errorf("fleet: %d nodes after all joins exceed the limit %d", total, MaxElasticNodes)
	}
	return nil
}

// validateConfig checks the event-independent part of the scenario: cluster,
// jobs, policy and the re-plan knobs. The live controller validates exactly
// this at construction — its event stream arrives later, batch by batch.
func (sc ElasticScenario) validateConfig() error {
	if err := (Request{Cluster: sc.Cluster, Jobs: sc.Jobs, Policy: sc.Policy}).Validate(); err != nil {
		return err
	}
	switch sc.replan() {
	case ReplanIncremental, ReplanFull:
	default:
		return fmt.Errorf("fleet: unknown replan mode %q (have %s, %s)", sc.Replan, ReplanIncremental, ReplanFull)
	}
	if sc.MigrationPenalty < 0 || math.IsNaN(sc.MigrationPenalty) || math.IsInf(sc.MigrationPenalty, 0) {
		return fmt.Errorf("fleet: migration penalty must be finite and ≥ 0, got %g", sc.MigrationPenalty)
	}
	if sc.AgingTau < 0 || math.IsNaN(sc.AgingTau) || math.IsInf(sc.AgingTau, 0) {
		return fmt.Errorf("fleet: aging tau must be finite and ≥ 0, got %g", sc.AgingTau)
	}
	return nil
}

// validateEvent checks one event's shape against the job vocabulary. Shared
// by the trace validator and the controller's live ingestion path, so both
// reject a malformed event with the same message (i names the event in its
// container: trace index for traces, batch position for live batches).
func validateEvent(byName map[string]bool, i int, ev Event) error {
	if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
		return fmt.Errorf("fleet: events[%d] time must be finite and ≥ 0, got %g", i, ev.At)
	}
	switch ev.kind() {
	case EvArrival:
		if !byName[ev.Job] {
			return fmt.Errorf("fleet: events[%d] names unknown job %q", i, ev.Job)
		}
		if !(ev.Work > 0) || math.IsInf(ev.Work, 0) {
			return fmt.Errorf("fleet: events[%d] work must be positive and finite, got %g", i, ev.Work)
		}
		if ev.Node != 0 || ev.Factor != 0 || ev.Class != "" || ev.Price != 0 {
			return fmt.Errorf("fleet: events[%d] (arrival) must not set node, factor, class or price", i)
		}
	case EvNodeFail, EvNodeDrain:
		if ev.Node < 0 {
			return fmt.Errorf("fleet: events[%d] (%s) node must be ≥ 0, got %d", i, ev.kind(), ev.Node)
		}
		if ev.Job != "" || ev.Work != 0 || ev.Factor != 0 || ev.Class != "" || ev.Price != 0 {
			return fmt.Errorf("fleet: events[%d] (%s) must set only node", i, ev.kind())
		}
	case EvNodeJoin:
		if ev.Factor != 0 && !(ev.Factor >= sim.MinSpeedFactor && ev.Factor <= sim.MaxSpeedFactor) {
			return fmt.Errorf("fleet: events[%d] (node_join) factor %g out of range [%g, %g]",
				i, ev.Factor, float64(sim.MinSpeedFactor), float64(sim.MaxSpeedFactor))
		}
		switch ev.Class {
		case "", ClassOnDemand, ClassSpot:
		default:
			return fmt.Errorf("fleet: events[%d] (node_join) unknown class %q (have %s, %s)",
				i, ev.Class, ClassOnDemand, ClassSpot)
		}
		if ev.Price < 0 || math.IsNaN(ev.Price) || math.IsInf(ev.Price, 0) {
			return fmt.Errorf("fleet: events[%d] (node_join) price must be finite and ≥ 0, got %g", i, ev.Price)
		}
		if ev.Job != "" || ev.Work != 0 || ev.Node != 0 {
			return fmt.Errorf("fleet: events[%d] (node_join) may set only factor, class and price", i)
		}
	default:
		return fmt.Errorf("fleet: events[%d] has unknown kind %q", i, ev.Kind)
	}
	return nil
}

// EventRecord is one processed event in the result's log — the observable
// record of the simulator's total event order.
type EventRecord struct {
	At   float64
	Kind EventKind
	// Job and Trace identify the instance (arrivals and departures);
	// Trace is the event's input index for churn events.
	Job   string
	Trace int
	// Node is the churned node id (-1 for job events).
	Node int
}

// ElasticJobRun reports one arrival's fate, including churn damage.
type ElasticJobRun struct {
	Job   string
	Trace int
	// ArriveAt, StartAt and DoneAt are absolute times; Wait is
	// StartAt − ArriveAt. StartAt/DoneAt are -1 until they happen.
	ArriveAt float64
	StartAt  float64
	DoneAt   float64
	Wait     float64
	// MissedDeadline is set when the job declares a deadline and
	// DoneAt − ArriveAt exceeds it.
	MissedDeadline bool
	// Restarts counts the instance's plan changes while running (forced by
	// churn or chosen by the migration rule); PenaltySeconds is the restart
	// debt it paid for them.
	Restarts       int
	PenaltySeconds float64
}

// FinalShare is one resident instance's slice of the final allocation —
// the snapshot taken right after the last trace event's re-plan. It
// deliberately carries node counts and plans, not node ids: on equal-speed
// nodes identity is irrelevant, and the benchmark's incremental-vs-full
// equality gate compares exactly this.
type FinalShare struct {
	Job        string
	Trace      int
	Nodes      int
	W, D, B    int
	Throughput float64
	Weighted   float64
}

// ElasticResult is the outcome of replaying one elastic trace.
type ElasticResult struct {
	Policy Policy
	Replan ReplanMode
	// InitialNodes and FinalNodes bracket the pool size across churn.
	InitialNodes int
	FinalNodes   int
	// Makespan is the time the last instance departs; Utilization is
	// productive node-seconds over the integral of pool size over time
	// (restart debt counts as idle — churn damage shows up here).
	Makespan    float64
	Utilization float64
	MeanWait    float64
	// Events counts processed events including departures; Reallocations
	// how many re-plans ran; JobsEvaluated the total job evaluations the
	// re-plans performed (the work measure incremental mode minimizes).
	Events        int
	Reallocations int
	JobsEvaluated int
	// Churn counters. SpotJoins counts the joins that carried the spot
	// class (SpotJoins ≤ Joins).
	Fails     int
	Drains    int
	Joins     int
	SpotJoins int `json:",omitempty"`
	// Cost is the integral of Σ price over the present pool up to the
	// makespan (like Utilization's denominator, snapshotted at the last
	// departure so trailing churn cannot inflate the bill). Zero unless the
	// trace joins priced nodes — initial cluster capacity is free.
	Cost float64 `json:",omitempty"`
	// Migrations counts instance restarts (forced and voluntary);
	// PenaltySeconds the total restart debt charged.
	Migrations     int
	PenaltySeconds float64
	// Log records every processed event in execution order — the pinned
	// total tie-break order (departures, fails, drains, joins, arrivals).
	Log []EventRecord
	// Jobs reports every arrival in trace order; Final the allocation in
	// effect right after the last trace event.
	Jobs  []ElasticJobRun
	Final []FinalShare
}

// SimulateElastic replays an elastic scenario on the process-wide default
// engine.
func SimulateElastic(sc ElasticScenario) (*ElasticResult, error) {
	return NewAllocator(nil).SimulateElastic(sc)
}

// SimulateElasticOn is SimulateElastic on a caller-supplied engine.
func SimulateElasticOn(e *engine.Engine, sc ElasticScenario) (*ElasticResult, error) {
	return NewAllocator(e).SimulateElastic(sc)
}

// einstance is one resident job instance during an elastic replay.
type einstance struct {
	trace     int
	job       Job
	remaining float64
	// debt is restart penalty seconds still to pay before progress resumes
	// (the instance holds its nodes but produces nothing).
	debt float64
	rate float64
	// share is the instance's nodes, trimmed to the even prefix its plan
	// actually drives (idle nodes return to the free pool at re-plan time).
	share  []node
	plan   *perfmodel.Prediction
	factor float64
	// needy marks the instance for re-planning this round; failed marks a
	// forced restart caused by node_fail (full penalty instead of half).
	needy  bool
	failed bool
	// starvedSince anchors priority aging: the time the instance last lost
	// (or never had) a feasible allocation; -1 while running.
	starvedSince float64
	started      bool
}

// effPriority is the instance's aged effective priority at time now: base
// priority grown linearly with starvation age on the scenario's tau,
// accelerated for deadline jobs (tau' = min(tau, deadline/2)).
func (in *einstance) effPriority(now, tau float64) float64 {
	p := in.job.priority()
	if in.starvedSince < 0 {
		return p
	}
	if d := in.job.Deadline; d > 0 && d/2 < tau {
		tau = d / 2
	}
	return p * (1 + (now-in.starvedSince)/tau)
}

// sameAllocation reports whether a re-plan left an instance's execution
// unchanged: same plan shape and same nodes means no restart.
func sameAllocation(oldIDs []int, oldPlan *perfmodel.Prediction, in *einstance) bool {
	if len(oldIDs) != len(in.share) {
		return false
	}
	for i, id := range oldIDs {
		if in.share[i].ID != id {
			return false
		}
	}
	if (oldPlan == nil) != (in.plan == nil) {
		return false
	}
	if oldPlan != nil && (oldPlan.W != in.plan.W || oldPlan.D != in.plan.D || oldPlan.B != in.plan.B) {
		return false
	}
	return true
}

// SimulateElastic replays the event trace as a deterministic discrete-event
// simulation. On each event batch (all events due at one time, in kind
// order) the allocator re-plans — incrementally or from scratch per the
// scenario — and instances whose plan changed while running pay the
// migration penalty as restart debt before progressing again.
//
// The loop itself lives in ElasticSim (step.go): this driver sorts the
// trace into the total event order, feeds the stepper one same-time batch
// at a time with departure catch-up between batches, and runs the residual
// departures to completion. The controller drives the identical stepper
// live, which is what makes recorded-log replay bit-exact.
func (a *Allocator) SimulateElastic(sc ElasticScenario) (*ElasticResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	// Total event order: time, then kind rank, then input index.
	order := make([]int, len(sc.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ex, ey := sc.Events[order[x]], sc.Events[order[y]]
		if ex.At != ey.At {
			return ex.At < ey.At
		}
		return kindRank(ex.kind()) < kindRank(ey.kind())
	})
	sorted := make([]indexedEvent, len(order))
	for i, idx := range order {
		sorted[i] = indexedEvent{ev: sc.Events[idx], idx: idx}
	}

	s := newElasticSim(a, sc)
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].ev.At == sorted[i].ev.At {
			j++
		}
		if err := s.advanceDepartures(sorted[i].ev.At); err != nil {
			return nil, err
		}
		if err := s.stepBatch(sorted[i].ev.At, sorted[i:j]); err != nil {
			return nil, err
		}
		i = j
	}
	// The final allocation is the one in effect right after the last trace
	// event's re-plan.
	s.res.Final = finalShares(s.active)
	if err := s.runToCompletion(); err != nil {
		return nil, err
	}
	s.finish(len(sc.Events))
	return s.res, nil
}

// insertSorted places n into the fastest-first pool (factor, then price —
// cheap capacity works first — then id).
func insertSorted(pool []node, n node) []node {
	pos := sort.Search(len(pool), func(i int) bool {
		if pool[i].Factor != n.Factor {
			return pool[i].Factor > n.Factor
		}
		if pool[i].Price != n.Price {
			return pool[i].Price > n.Price
		}
		return pool[i].ID > n.ID
	})
	pool = append(pool, node{})
	copy(pool[pos+1:], pool[pos:])
	pool[pos] = n
	return pool
}

// freeNodes returns present minus every instance's share, fastest-first.
func freeNodes(present []node, active []*einstance) []node {
	assigned := make(map[int]bool)
	for _, in := range active {
		for _, n := range in.share {
			assigned[n.ID] = true
		}
	}
	free := make([]node, 0, len(present))
	for _, n := range present {
		if !assigned[n.ID] {
			free = append(free, n)
		}
	}
	return free
}

// finalShares snapshots the allocation in effect (resident instances in
// arrival order).
func finalShares(active []*einstance) []FinalShare {
	out := make([]FinalShare, 0, len(active))
	for _, in := range active {
		fs := FinalShare{Job: in.job.Name, Trace: in.trace, Nodes: len(in.share)}
		if in.plan != nil {
			fs.W, fs.D, fs.B = in.plan.W, in.plan.D, in.plan.B
			fs.Throughput = in.rate
			fs.Weighted = in.job.priority() * in.rate
		}
		out = append(out, fs)
	}
	return out
}

// applyShare installs a (possibly oversized) share on an instance: the
// share is trimmed to the even prefix the best plan drives, and rate, plan
// and straggler factor refresh from it.
func (a *Allocator) applyShare(sc ElasticScenario, in *einstance, share []node) error {
	v, err := a.jobValue(sc.Cluster, in.job, share)
	if err != nil {
		return err
	}
	if v.pred == nil {
		in.share = nil
		in.plan, in.rate, in.factor = nil, 0, 1
		return nil
	}
	in.share = share[:v.used:v.used]
	in.plan, in.rate, in.factor = v.pred, v.tp, v.factor
	return nil
}

// replanElastic re-plans after an event batch and settles the consequences:
// restart penalties for changed running instances, start times, starvation
// anchors.
func (a *Allocator) replanElastic(sc ElasticScenario, res *ElasticResult, runs map[int]*ElasticJobRun,
	active []*einstance, present []node, now, tau float64) error {
	if len(active) == 0 {
		return nil
	}
	defer a.observeReplan(res, res.JobsEvaluated)()
	res.Reallocations++

	// Snapshot the pre-replan execution state for restart detection.
	oldIDs := make([][]int, len(active))
	oldPlans := make([]*perfmodel.Prediction, len(active))
	oldRates := make([]float64, len(active))
	for i, in := range active {
		oldIDs[i] = nodeIDs(in.share)
		oldPlans[i] = in.plan
		oldRates[i] = in.rate
	}

	var err error
	if res.Policy == EqualSplit || sc.replan() == ReplanFull {
		err = a.replanFull(sc, res, active, present, now, tau)
	} else {
		err = a.replanIncremental(sc, res, active, present, now, tau)
	}
	if err != nil {
		return err
	}

	// Settle: penalties, starts, starvation anchors.
	for i, in := range active {
		run := runs[in.trace]
		if oldRates[i] > 0 && !sameAllocation(oldIDs[i], oldPlans[i], in) {
			pen := sc.MigrationPenalty * float64(oldPlans[i].D)
			if !in.failed {
				pen /= 2 // graceful: the pipeline flushes instead of discarding
			}
			in.debt += pen
			res.Migrations++
			res.PenaltySeconds += pen
			run.Restarts++
			run.PenaltySeconds += pen
		}
		in.failed = false
		in.needy = false
		if in.rate > 0 {
			if !in.started {
				in.started = true
				run.StartAt = now
				run.Wait = now - run.ArriveAt
			}
			in.starvedSince = -1
		} else if in.starvedSince < 0 {
			in.starvedSince = now
		}
	}
	return nil
}

// replanFull re-runs the static policy from scratch over every resident
// instance — the reference re-planner.
func (a *Allocator) replanFull(sc ElasticScenario, res *ElasticResult, active []*einstance,
	present []node, now, tau float64) error {
	jobs := make([]Job, len(active))
	for i, in := range active {
		jobs[i] = in.job
		jobs[i].Priority = in.effPriority(now, tau)
	}
	pool := present[:len(present)/Quantum*Quantum]
	var shares [][]node
	if res.Policy == EqualSplit {
		shares = equalSplit(pool, len(jobs))
		// equalSplit carves subslices of the pool; shares must own their
		// nodes, because churn events mutate `present` in place and would
		// otherwise rewrite every aliased share underneath the instances.
		for i := range shares {
			shares[i] = append([]node(nil), shares[i]...)
		}
		res.JobsEvaluated += len(jobs)
	} else {
		var err error
		shares, _, err = a.greedyGrow(sc.Cluster, jobs, make([][]node, len(jobs)), pool, &res.JobsEvaluated)
		if err != nil {
			return err
		}
	}
	for i, in := range active {
		if err := a.applyShare(sc, in, shares[i]); err != nil {
			return err
		}
	}
	return nil
}

// replanIncremental is the warm-started re-planner: instances untouched by
// the event batch keep their shares and plans verbatim; only needy
// instances (new arrivals, churn-touched, starved) re-plan, growing from
// their surviving nodes over the free pool. Two follow-up passes implement
// the elastic policies:
//
//   - preempt-and-move vs. stay: running untouched instances may extend
//     into leftover free nodes, but only when the throughput gain over the
//     instance's remaining runtime exceeds the migration penalty it must
//     pay to restart on the larger share;
//   - priority aging: an instance still starved after the greedy may evict
//     quanta from a running instance once its aged priority makes the swap
//     a strict improvement of the weighted objective.
func (a *Allocator) replanIncremental(sc ElasticScenario, res *ElasticResult, active []*einstance,
	present []node, now, tau float64) error {
	var needy []*einstance
	for _, in := range active {
		if in.needy || in.rate <= 0 {
			needy = append(needy, in)
		}
	}
	if len(needy) > 0 {
		jobs := make([]Job, len(needy))
		bases := make([][]node, len(needy))
		for i, in := range needy {
			jobs[i] = in.job
			jobs[i].Priority = in.effPriority(now, tau)
			bases[i] = in.share
		}
		free := freeNodes(present, active)
		shares, _, err := a.greedyGrow(sc.Cluster, jobs, bases, free, &res.JobsEvaluated)
		if err != nil {
			return err
		}
		for i, in := range needy {
			if err := a.applyShare(sc, in, shares[i]); err != nil {
				return err
			}
		}
	}
	if err := a.extendRunning(sc, res, active, present, now); err != nil {
		return err
	}
	return a.preemptForStarved(sc, res, active, present, now, tau)
}

// extendRunning offers leftover free nodes to running instances, one pass
// in arrival order. Growing a pipeline is a restart, so an extension is
// taken only when it pays for itself: extra sequences over the instance's
// remaining runtime at the new rate must exceed the sequences lost to the
// restart debt (Δtp · remaining/tp_new > penalty · tp_new). With a zero
// migration penalty this reduces to plain greedy growth.
func (a *Allocator) extendRunning(sc ElasticScenario, res *ElasticResult, active []*einstance,
	present []node, now float64) error {
	free := freeNodes(present, active)
	if len(free) < Quantum {
		return nil
	}
	for _, in := range active {
		if in.rate <= 0 || len(free) < Quantum {
			continue
		}
		vals, err := a.prefixValues(sc.Cluster, in.job, withNodes(in.share, free))
		if err != nil {
			return err
		}
		res.JobsEvaluated++
		bestK, bestNet := 0, 0.0
		for k := 1; k*Quantum <= len(free); k++ {
			v := vals[len(in.share)+k*Quantum]
			if v.tp <= in.rate {
				continue
			}
			pen := sc.MigrationPenalty * float64(in.plan.D) / 2
			net := (v.tp-in.rate)*(in.remaining/v.tp) - pen*v.tp
			if net > bestNet {
				bestK, bestNet = k, net
			}
		}
		if bestK == 0 {
			continue
		}
		if err := a.applyShare(sc, in, withNodes(in.share, free[:bestK*Quantum])); err != nil {
			return err
		}
		free = freeNodes(present, active)
	}
	return nil
}

// preemptForStarved lets aged starved instances evict quanta from running
// ones. For each starved instance (arrival order) every (donor, quanta)
// candidate is scored by the aged objective change
// eff_s·tp_s(new) − eff_d·(tp_d(old) − tp_d(shrunk)); the best strictly
// positive candidate wins (ties: lower donor trace index, then fewer
// quanta), the donor pays the migration penalty through the usual restart
// diff, and aging guarantees a starved job's side of the comparison grows
// without bound — it eventually wins quanta.
func (a *Allocator) preemptForStarved(sc ElasticScenario, res *ElasticResult, active []*einstance,
	present []node, now, tau float64) error {
	for _, s := range active {
		if s.rate > 0 {
			continue
		}
		free := freeNodes(present, active)
		effS := s.effPriority(now, tau)
		type move struct {
			donor *einstance
			k     int
			net   float64
			share []node
		}
		var best *move
		for _, d := range active {
			if d == s || d.rate <= 0 || len(d.share) < Quantum {
				continue
			}
			dVals, err := a.prefixValues(sc.Cluster, d.job, d.share)
			if err != nil {
				return err
			}
			res.JobsEvaluated++
			effD := d.effPriority(now, tau)
			for k := 1; k*Quantum <= len(d.share); k++ {
				keep := len(d.share) - k*Quantum
				released := d.share[keep:]
				cand := withNodes(withNodes(s.share, free), released)
				sv, err := a.jobValue(sc.Cluster, s.job, cand)
				if err != nil {
					return err
				}
				res.JobsEvaluated++ // the starved side's scan is re-plan work too
				if sv.pred == nil {
					continue
				}
				net := effS*sv.tp - effD*(d.rate-dVals[keep].tp)
				if net <= 0 {
					continue
				}
				// Strictly-greater replacement: candidates are scanned in
				// (donor arrival order, quanta ascending), so equal nets
				// keep the earliest donor and the smallest eviction.
				if best == nil || net > best.net {
					best = &move{donor: d, k: k, net: net, share: cand}
				}
			}
		}
		if best == nil {
			continue
		}
		keep := len(best.donor.share) - best.k*Quantum
		if err := a.applyShare(sc, best.donor, best.donor.share[:keep:keep]); err != nil {
			return err
		}
		if err := a.applyShare(sc, s, best.share); err != nil {
			return err
		}
	}
	return nil
}
