package fleet

import (
	"encoding/json"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
)

func benchScenario(policy Policy) Scenario {
	return Scenario{
		Cluster: pizDaintCluster(32, nil),
		Jobs:    benchMix(),
		Policy:  policy,
		Trace: []Arrival{
			{At: 0, Job: "bert-large", Work: 100000},
			{At: 0, Job: "gpt2-mid", Work: 20000},
			{At: 30, Job: "bert-small", Work: 30000},
			{At: 60, Job: "gpt2-mid", Work: 10000},
		},
	}
}

// TestSimulateCompletesEveryJob: every arrival runs and departs, times are
// ordered, and utilization is a meaningful fraction.
func TestSimulateCompletesEveryJob(t *testing.T) {
	res, err := SimulateOn(engine.New(), benchScenario(PlannerGuided))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("want 4 runs, got %d", len(res.Jobs))
	}
	for _, run := range res.Jobs {
		if run.StartAt < run.ArriveAt || run.DoneAt <= run.StartAt {
			t.Fatalf("run %s#%d has disordered times: %+v", run.Job, run.Trace, run)
		}
		if run.Wait != run.StartAt-run.ArriveAt {
			t.Fatalf("run %s#%d wait %g != start-arrive %g", run.Job, run.Trace, run.Wait, run.StartAt-run.ArriveAt)
		}
		if run.DoneAt > res.Makespan {
			t.Fatalf("run %s#%d departs after the makespan", run.Job, run.Trace)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %g out of (0, 1]", res.Utilization)
	}
	if res.Events != 8 { // 4 arrivals + 4 departures
		t.Fatalf("events = %d, want 8", res.Events)
	}
	if res.Reallocations == 0 {
		t.Fatal("the allocator never ran")
	}
}

// TestSimulateBitDeterministic: the same scenario replays byte-identically
// across runs, engines, and pool sizes — the acceptance gate.
func TestSimulateBitDeterministic(t *testing.T) {
	for _, policy := range []Policy{EqualSplit, PlannerGuided} {
		var want []byte
		for run, e := range []*engine.Engine{engine.New(engine.Workers(1)), engine.New(), engine.New()} {
			res, err := SimulateOn(e, benchScenario(policy))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				want = raw
				continue
			}
			if string(raw) != string(want) {
				t.Fatalf("%s: simulation differs across engines:\n%s\n%s", policy, want, raw)
			}
		}
	}
}

// TestSimulateGuidedFavorsPriority: planner-guided maximizes weighted
// throughput, so on the benchmark trace the priority-4 job must finish no
// later than it does under the priority-blind equal split (the makespan
// itself may go either way — a low-priority job finishing last is exactly
// the trade the objective makes).
func TestSimulateGuidedFavorsPriority(t *testing.T) {
	e := engine.New()
	a := NewAllocator(e)
	eq, err := a.Simulate(benchScenario(EqualSplit))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := a.Simulate(benchScenario(PlannerGuided))
	if err != nil {
		t.Fatal(err)
	}
	if gd.Jobs[0].Job != "bert-large" || eq.Jobs[0].Job != "bert-large" {
		t.Fatalf("trace[0] is %q/%q, want bert-large", gd.Jobs[0].Job, eq.Jobs[0].Job)
	}
	if gd.Jobs[0].DoneAt > eq.Jobs[0].DoneAt {
		t.Fatalf("planner-guided finishes the priority-4 job at %.1fs, later than equal-split's %.1fs",
			gd.Jobs[0].DoneAt, eq.Jobs[0].DoneAt)
	}
}

// TestSimulateDeadlines: a deadline the throughput cannot meet is reported
// missed; a generous one is met.
func TestSimulateDeadlines(t *testing.T) {
	sc := Scenario{
		Cluster: pizDaintCluster(8, nil),
		Jobs: []Job{
			{Name: "tight", Model: model.BERT48(), MiniBatch: 64, Deadline: 0.001},
			{Name: "loose", Model: model.BERT48(), MiniBatch: 64, Deadline: 1e9},
		},
		Trace: []Arrival{
			{At: 0, Job: "tight", Work: 50000},
			{At: 0, Job: "loose", Work: 1000},
		},
	}
	res, err := SimulateOn(engine.New(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[0].MissedDeadline {
		t.Fatal("1ms deadline for 50k sequences reported met")
	}
	if res.Jobs[1].MissedDeadline {
		t.Fatal("generous deadline reported missed")
	}
}

// TestSimulateQueueingWait: a second instance arriving while the cluster is
// saturated by an infeasibly-split share still eventually runs; with one
// quantum of nodes and two concurrent jobs under equal-split, one of them
// must wait for the other to depart.
func TestSimulateQueueingWait(t *testing.T) {
	sc := Scenario{
		Cluster: pizDaintCluster(2, nil), // one quantum: equal-split over 2 jobs gives 1 job 2 nodes, the other 0
		Jobs: []Job{
			{Name: "first", Model: model.BERT48(), MiniBatch: 16},
			{Name: "second", Model: model.BERT48(), MiniBatch: 16},
		},
		Policy: EqualSplit,
		Trace: []Arrival{
			{At: 0, Job: "first", Work: 1000},
			{At: 0, Job: "second", Work: 1000},
		},
	}
	res, err := SimulateOn(engine.New(engine.Workers(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Wait != 0 {
		t.Fatalf("first instance waited %g", res.Jobs[0].Wait)
	}
	if res.Jobs[1].Wait <= 0 {
		t.Fatal("second instance never waited despite a one-quantum cluster")
	}
	if res.MeanWait != (res.Jobs[0].Wait+res.Jobs[1].Wait)/2 {
		t.Fatalf("mean wait %g inconsistent", res.MeanWait)
	}
}

// TestSimulateValidation: malformed scenarios are rejected up front.
func TestSimulateValidation(t *testing.T) {
	base := benchScenario(PlannerGuided)
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"empty-trace", func(s *Scenario) { s.Trace = nil }},
		{"unknown-job", func(s *Scenario) { s.Trace[0].Job = "nope" }},
		{"negative-at", func(s *Scenario) { s.Trace[0].At = -1 }},
		{"zero-work", func(s *Scenario) { s.Trace[0].Work = 0 }},
		{"bad-cluster", func(s *Scenario) { s.Cluster.Nodes = 0 }},
	}
	for _, tc := range cases {
		sc := base
		sc.Trace = append([]Arrival(nil), base.Trace...)
		tc.mut(&sc)
		if _, err := Simulate(sc); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
