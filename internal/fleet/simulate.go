package fleet

import (
	"fmt"
	"math"
	"sort"

	"chimera/internal/engine"
)

// Arrival is one trace event: a job instance entering the cluster with a
// fixed amount of work.
type Arrival struct {
	// At is the arrival time in seconds (≥ 0).
	At float64
	// Job names an entry of the scenario's job list.
	Job string
	// Work is the number of sequences the instance must process before it
	// departs.
	Work float64
}

// Scenario is one fleet-simulation problem: a cluster, the job vocabulary,
// an allocation policy, and an arrival trace over that vocabulary.
type Scenario struct {
	Cluster Cluster
	Jobs    []Job
	Policy  Policy
	Trace   []Arrival
}

// JobRun reports one trace arrival's fate.
type JobRun struct {
	// Job is the arrival's job name; Trace its index in the input trace.
	Job   string
	Trace int
	// ArriveAt, StartAt and DoneAt are absolute times; Wait is
	// StartAt − ArriveAt, the time the instance sat without an allocation
	// that could run it.
	ArriveAt float64
	StartAt  float64
	DoneAt   float64
	Wait     float64
	// MissedDeadline is set when the job declares a deadline and
	// DoneAt − ArriveAt exceeds it.
	MissedDeadline bool
}

// SimResult is the outcome of replaying one trace.
type SimResult struct {
	Policy Policy
	Nodes  int
	// Makespan is the time the last instance departs.
	Makespan float64
	// Utilization is plan-driven node-seconds over Nodes·Makespan: the
	// fraction of the cluster's capacity that chosen plans actually used.
	Utilization float64
	// MeanWait averages JobRun.Wait over the trace.
	MeanWait float64
	// Events counts arrivals + departures; Reallocations how many times
	// the allocator re-ran (once per event batch with active jobs).
	Events        int
	Reallocations int
	Jobs          []JobRun
}

// Simulate replays a scenario on the process-wide default engine.
func Simulate(sc Scenario) (*SimResult, error) {
	return NewAllocator(nil).Simulate(sc)
}

// SimulateOn is Simulate on a caller-supplied engine.
func SimulateOn(e *engine.Engine, sc Scenario) (*SimResult, error) {
	return NewAllocator(e).Simulate(sc)
}

// Simulate replays the trace as a deterministic discrete-event simulation:
// at every arrival or departure the allocator re-runs over the jobs then
// resident, and between events each instance progresses at its allocated
// (straggler-penalized) throughput. Instances whose current allocation is
// infeasible make no progress and accumulate wait time. Event order is
// total — time, then departures before arrivals, then trace index — so the
// same scenario replays bit-identically at any engine pool size.
func (a *Allocator) Simulate(sc Scenario) (*SimResult, error) {
	req := Request{Cluster: sc.Cluster, Jobs: sc.Jobs, Policy: sc.Policy}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if len(sc.Trace) == 0 {
		return nil, fmt.Errorf("fleet: scenario has an empty trace")
	}
	byName := make(map[string]Job, len(sc.Jobs))
	for _, j := range sc.Jobs {
		byName[j.Name] = j
	}
	for i, ev := range sc.Trace {
		if _, ok := byName[ev.Job]; !ok {
			return nil, fmt.Errorf("fleet: trace[%d] names unknown job %q", i, ev.Job)
		}
		if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
			return nil, fmt.Errorf("fleet: trace[%d] arrival time must be finite and ≥ 0, got %g", i, ev.At)
		}
		if !(ev.Work > 0) || math.IsInf(ev.Work, 0) {
			return nil, fmt.Errorf("fleet: trace[%d] work must be positive and finite, got %g", i, ev.Work)
		}
	}

	// Arrivals in (time, trace index) order; the trace index is the total
	// tie-break and the identity of the instance throughout.
	order := make([]int, len(sc.Trace))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return sc.Trace[order[x]].At < sc.Trace[order[y]].At })

	type instance struct {
		trace     int
		job       Job
		remaining float64
		rate      float64 // current penalized throughput (seq/s)
		used      int     // nodes the current plan drives
		started   bool
	}
	res := &SimResult{Policy: req.policy(), Nodes: sc.Cluster.Nodes, Jobs: make([]JobRun, len(sc.Trace))}
	for i, ev := range sc.Trace {
		res.Jobs[i] = JobRun{Job: ev.Job, Trace: i, ArriveAt: ev.At, StartAt: -1, DoneAt: -1}
	}

	var active []*instance // arrival order — the allocator's input order
	var busyNodeSeconds float64
	now, next := 0.0, 0

	// reallocate re-runs the policy over the resident instances and
	// refreshes their rates. Instance names stay unique within a request:
	// a job arriving twice concurrently gets its trace index appended.
	reallocate := func() error {
		if len(active) == 0 {
			return nil
		}
		jobs := make([]Job, len(active))
		for i, in := range active {
			j := in.job
			j.Name = fmt.Sprintf("%s#%d", j.Name, in.trace)
			jobs[i] = j
		}
		al, err := a.Allocate(Request{Cluster: sc.Cluster, Jobs: jobs, Policy: sc.Policy})
		if err != nil {
			return err
		}
		for i, in := range active {
			in.rate = al.Jobs[i].Throughput
			in.used = al.Jobs[i].NodesUsed
			if in.rate > 0 && !in.started {
				in.started = true
				res.Jobs[in.trace].StartAt = now
				res.Jobs[in.trace].Wait = now - res.Jobs[in.trace].ArriveAt
			}
		}
		res.Reallocations++
		return nil
	}

	for next < len(order) || len(active) > 0 {
		// Next departure under current rates: earliest finish, tie-break
		// by trace index (active is arrival-ordered, scan keeps first).
		depart, departAt := -1, math.Inf(1)
		for i, in := range active {
			if in.rate <= 0 {
				continue
			}
			at := now + in.remaining/in.rate
			if at < departAt {
				depart, departAt = i, at
			}
		}
		arriveAt := math.Inf(1)
		if next < len(order) {
			arriveAt = sc.Trace[order[next]].At
		}
		if depart < 0 && next >= len(order) {
			stuck := make([]string, len(active))
			for i, in := range active {
				stuck[i] = fmt.Sprintf("%s#%d", in.job.Name, in.trace)
			}
			return nil, fmt.Errorf("fleet: trace stalls — no arrivals left and no resident instance can run (%v)", stuck)
		}
		t := math.Min(departAt, arriveAt)
		if t < now {
			t = now // float residue: a co-finisher's remaining may dip below 0
		}
		// Advance every running instance to t.
		dt := t - now
		if dt > 0 {
			for _, in := range active {
				if in.rate > 0 {
					in.remaining -= dt * in.rate
					busyNodeSeconds += dt * float64(in.used)
				}
			}
		}
		now = t
		changed := false
		// Departures first: the completing instance (exactly zero by
		// construction; floor to zero to absorb float residue).
		if depart >= 0 && departAt <= arriveAt {
			in := active[depart]
			in.remaining = 0
			run := &res.Jobs[in.trace]
			run.DoneAt = now
			if d := in.job.Deadline; d > 0 && now-run.ArriveAt > d {
				run.MissedDeadline = true
			}
			active = append(active[:depart], active[depart+1:]...)
			res.Events++
			changed = true
		}
		// Then every arrival due at t (same-time arrivals batch into one
		// reallocation, in trace order).
		for next < len(order) && sc.Trace[order[next]].At <= now {
			ev := sc.Trace[order[next]]
			active = append(active, &instance{trace: order[next], job: byName[ev.Job], remaining: ev.Work})
			next++
			res.Events++
			changed = true
		}
		if changed {
			if err := reallocate(); err != nil {
				return nil, err
			}
		}
	}
	res.Makespan = now
	if res.Makespan > 0 {
		res.Utilization = busyNodeSeconds / (float64(sc.Cluster.Nodes) * res.Makespan)
	}
	var wait float64
	for i := range res.Jobs {
		wait += res.Jobs[i].Wait
	}
	res.MeanWait = wait / float64(len(res.Jobs))
	return res, nil
}
