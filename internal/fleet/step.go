package fleet

// Resumable elastic simulation. ElasticSim factors SimulateElastic's
// discrete-event loop into a step API so the same state machine can run in
// two modes:
//
//   - trace mode: SimulateElastic sorts a fixed trace into the total event
//     order and drives the stepper batch by batch to completion;
//   - live mode: the fleet controller constructs the sim without events
//     (NewElasticSim) and feeds batches as they actually happen (Ingest),
//     reading the allocation in effect between batches.
//
// Both modes execute the identical arithmetic in the identical order, which
// is the determinism contract the controller leans on: replaying a live
// sim's recorded event log through SimulateElastic reproduces its event
// records and final shares bit for bit (the live log is a prefix of the
// replay's — the replay goes on to retire the still-resident instances).
//
// Live batches must be strictly time-ordered *across* Ingest calls (any
// order within one call): the simulator re-plans once per distinct
// timestamp, and allowing a later batch at an already-processed time would
// split what replay merges into a single re-plan, breaking bit-equality.
//
// Fork supports what-if forecasting: a deep copy of the simulation state
// that shares the allocator — and therefore the engine's plan memo — so a
// fork pays only for plans the hypothesis actually changes.

import (
	"fmt"
	"math"
	"sort"
)

// indexedEvent pairs an event with its trace index — the input position in
// trace mode, the ingestion-log position in live mode.
type indexedEvent struct {
	ev  Event
	idx int
}

// ElasticSim is the elastic simulator's resumable state machine. Not safe
// for concurrent use; the controller serializes access.
type ElasticSim struct {
	a      *Allocator
	sc     ElasticScenario
	byName map[string]Job
	tau    float64

	res  *ElasticResult
	runs map[int]*ElasticJobRun

	// The live pool, fastest-first; joins get sequential fresh ids.
	// presentPrice is Σ price over present — the integrand of res.Cost.
	present      []node
	nextID       int
	presentPrice float64

	active []*einstance // arrival order — the re-planners' input order

	now                      float64
	busySeconds, poolSeconds float64
	costSeconds              float64
	// makespan and the pool/cost integrals snapshot at each departure, so
	// churn events scheduled after the last instance departs cannot inflate
	// the reported makespan, dilute utilization, or grow the bill.
	makespan, poolAtMakespan, costAtMakespan float64

	// Live-mode bookkeeping: the append-only raw event log in applied
	// (sorted) order — replaying it through SimulateElastic is the
	// determinism anchor — and the newest applied batch time.
	events    []Event
	lastBatch float64
	live      bool
}

// newElasticSim builds the stepper state shared by both modes. The scenario
// must already be validated (at least its config part).
func newElasticSim(a *Allocator, sc ElasticScenario) *ElasticSim {
	byName := make(map[string]Job, len(sc.Jobs))
	for _, j := range sc.Jobs {
		byName[j.Name] = j
	}
	res := &ElasticResult{
		Policy:       (Request{Policy: sc.Policy}).policy(),
		Replan:       sc.replan(),
		InitialNodes: sc.Cluster.Nodes,
	}
	// Equal-split has no warm-startable structure — every event re-splits
	// the whole pool — so the result reports the effective mode instead of
	// pretending the incremental path ran.
	if res.Policy == EqualSplit {
		res.Replan = ReplanFull
	}
	return &ElasticSim{
		a: a, sc: sc, byName: byName, tau: sc.agingTau(),
		res:     res,
		runs:    make(map[int]*ElasticJobRun),
		present: sortedPool(sc.Cluster),
		nextID:  sc.Cluster.Nodes,
	}
}

// NewElasticSim constructs a live, resumable elastic simulation: the
// scenario supplies the cluster, job vocabulary, policy and re-plan knobs;
// events arrive later through Ingest, batch by batch, as the fleet actually
// churns. This is the state machine behind the fleet controller.
func (a *Allocator) NewElasticSim(sc ElasticScenario) (*ElasticSim, error) {
	if err := sc.validateConfig(); err != nil {
		return nil, err
	}
	if len(sc.Events) != 0 {
		return nil, fmt.Errorf("fleet: a live elastic sim takes no pre-recorded events (got %d) — ingest them instead", len(sc.Events))
	}
	s := newElasticSim(a, sc)
	s.live = true
	return s, nil
}

// earliestDeparture is the earliest completion time over the resident
// instances under current rates and debts (+Inf when nothing can run).
func (s *ElasticSim) earliestDeparture() float64 {
	departAt := math.Inf(1)
	for _, in := range s.active {
		if in.rate > 0 {
			if at := s.now + in.debt + in.remaining/in.rate; at < departAt {
				departAt = at
			}
		}
	}
	return departAt
}

// stepBatch is one iteration of the discrete-event loop: advance time to t
// (paying restart debt before progress), retire instances departing exactly
// at t, apply the batch's events in their pre-sorted order, and re-plan
// once. Callers must have drained earlier departures first
// (advanceDepartures), so for a non-empty batch t is the batch's time.
func (s *ElasticSim) stepBatch(t float64, batch []indexedEvent) error {
	// Identify every instance departing at the step time before advancing
	// (the same expression that produced earliestDeparture, so float
	// equality is exact).
	departAt := s.earliestDeparture()
	var departing []*einstance
	if departAt <= t {
		for _, in := range s.active {
			if in.rate > 0 && s.now+in.debt+in.remaining/in.rate == departAt {
				departing = append(departing, in)
			}
		}
	}
	if t < s.now {
		t = s.now // float residue
	}
	dt := t - s.now
	if dt > 0 {
		s.poolSeconds += float64(len(s.present)) * dt
		s.costSeconds += s.presentPrice * dt
		for _, in := range s.active {
			if in.rate <= 0 {
				continue
			}
			d := dt
			if in.debt > 0 { // debt first: held nodes, no progress
				pay := math.Min(in.debt, d)
				in.debt -= pay
				d -= pay
			}
			if d > 0 {
				in.remaining -= d * in.rate
				s.busySeconds += d * float64(len(in.share))
			}
		}
	}
	s.now = t

	changed := false
	// 1) Departures, in arrival (= trace) order.
	for _, in := range departing {
		in.remaining = 0 // absorb float residue
		run := s.runs[in.trace]
		run.DoneAt = s.now
		if d := in.job.Deadline; d > 0 && s.now-run.ArriveAt > d {
			run.MissedDeadline = true
		}
		for i, cur := range s.active {
			if cur == in {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
		s.res.Events++
		s.res.Log = append(s.res.Log, EventRecord{At: s.now, Kind: EvDeparture, Job: in.job.Name, Trace: in.trace, Node: -1})
		s.makespan, s.poolAtMakespan, s.costAtMakespan = s.now, s.poolSeconds, s.costSeconds
		changed = true
	}
	// 2) The batch's events, already in (time, kind, index) order.
	for _, ie := range batch {
		ev := ie.ev
		s.res.Events++
		changed = true
		switch ev.kind() {
		case EvArrival:
			if len(s.active) >= MaxResident {
				return fmt.Errorf("fleet: events[%d] would make %d instances resident, above the limit %d",
					ie.idx, len(s.active)+1, MaxResident)
			}
			s.runs[ie.idx] = &ElasticJobRun{Job: ev.Job, Trace: ie.idx, ArriveAt: ev.At, StartAt: -1, DoneAt: -1}
			s.active = append(s.active, &einstance{
				trace: ie.idx, job: s.byName[ev.Job], remaining: ev.Work,
				needy: true, starvedSince: s.now,
			})
			s.res.Log = append(s.res.Log, EventRecord{At: s.now, Kind: EvArrival, Job: ev.Job, Trace: ie.idx, Node: -1})
		case EvNodeFail, EvNodeDrain:
			pos := -1
			for i, n := range s.present {
				if n.ID == ev.Node {
					pos = i
					break
				}
			}
			if pos < 0 {
				return fmt.Errorf("fleet: events[%d] %s targets absent node %d", ie.idx, ev.kind(), ev.Node)
			}
			s.presentPrice -= s.present[pos].Price
			s.present = append(s.present[:pos], s.present[pos+1:]...)
			for _, in := range s.active {
				for i, n := range in.share {
					if n.ID == ev.Node {
						in.share = append(in.share[:i:i], in.share[i+1:]...)
						in.needy = true
						if ev.kind() == EvNodeFail {
							in.failed = true
						}
						break
					}
				}
				// A pipeline needs an even node count: a stranded odd
				// node is dead weight, return it to the pool.
				if len(in.share)%Quantum != 0 {
					in.share = in.share[:len(in.share)-1]
				}
			}
			if ev.kind() == EvNodeFail {
				s.res.Fails++
			} else {
				s.res.Drains++
			}
			s.res.Log = append(s.res.Log, EventRecord{At: s.now, Kind: ev.kind(), Trace: ie.idx, Node: ev.Node})
		case EvNodeJoin:
			f := ev.Factor
			if f == 0 {
				f = 1
			}
			class := ev.Class
			if class == "" {
				class = ClassOnDemand
			}
			joined := node{ID: s.nextID, Factor: f, Class: class, Price: ev.Price}
			s.nextID++
			s.present = insertSorted(s.present, joined)
			s.presentPrice += ev.Price
			s.res.Joins++
			if class == ClassSpot {
				s.res.SpotJoins++
			}
			s.res.Log = append(s.res.Log, EventRecord{At: s.now, Kind: EvNodeJoin, Trace: ie.idx, Node: joined.ID})
		}
	}
	if changed {
		return s.a.replanElastic(s.sc, s.res, s.runs, s.active, s.present, s.now, s.tau)
	}
	return nil
}

// advanceDepartures retires every departure strictly before limit, one
// re-plan per departure time. A departure at exactly limit is left for the
// batch step there, which processes it in the same re-plan as the batch —
// the pinned same-timestamp order (departures first).
func (s *ElasticSim) advanceDepartures(limit float64) error {
	for len(s.active) > 0 {
		departAt := s.earliestDeparture()
		if !(departAt < limit) {
			return nil
		}
		if err := s.stepBatch(departAt, nil); err != nil {
			return err
		}
	}
	return nil
}

// runToCompletion retires the remaining residents after the last trace
// event; a resident set that can no longer make progress is the stall error.
func (s *ElasticSim) runToCompletion() error {
	for len(s.active) > 0 {
		departAt := s.earliestDeparture()
		if math.IsInf(departAt, 1) {
			stuck := make([]string, len(s.active))
			for i, in := range s.active {
				stuck[i] = fmt.Sprintf("%s#%d", in.job.Name, in.trace)
			}
			return fmt.Errorf("fleet: elastic trace stalls — no events left and no resident instance can run (%v)", stuck)
		}
		if err := s.stepBatch(departAt, nil); err != nil {
			return err
		}
	}
	return nil
}

// finish seals the result: makespan-anchored utilization and cost, plus the
// per-arrival runs in trace order (totalEvents bounds the trace indices).
func (s *ElasticSim) finish(totalEvents int) {
	s.res.Makespan = s.makespan
	s.res.FinalNodes = len(s.present)
	if s.poolAtMakespan > 0 {
		s.res.Utilization = s.busySeconds / s.poolAtMakespan
	}
	s.res.Cost = s.costAtMakespan
	var wait float64
	for i := 0; i < totalEvents; i++ {
		if run, ok := s.runs[i]; ok {
			s.res.Jobs = append(s.res.Jobs, *run)
			wait += run.Wait
		}
	}
	if len(s.res.Jobs) > 0 {
		s.res.MeanWait = wait / float64(len(s.res.Jobs))
	}
}

// ApplyError marks an Ingest failure from the apply phase: validation
// passed, some of the batch may already have mutated the simulation, and
// the state is no longer consistent with the recorded event log. Callers
// must stop using the sim — the controller poisons itself on one. Every
// other Ingest error is returned before any mutation and leaves the sim
// fully usable.
type ApplyError struct{ Err error }

func (e *ApplyError) Error() string { return e.Err.Error() }
func (e *ApplyError) Unwrap() error { return e.Err }

// Ingest applies one batch of live events. The whole batch is validated
// before anything mutates, then sorted into the pinned (time, kind rank,
// position) order, appended to the raw event log, and applied one distinct
// timestamp at a time with departure catch-up in between — exactly the
// schedule SimulateElastic would run for the same events.
//
// Every event's time must be strictly later than the newest previously
// ingested batch time: a batch landing at an already-processed timestamp
// would need a second re-plan where trace replay runs one, so it is
// rejected rather than silently breaking the determinism contract.
//
// An error from the apply phase (the resident cap, or a planner failure)
// leaves the simulation partially advanced and unusable; it is returned as
// an *ApplyError so callers can tell it from a clean pre-mutation
// rejection.
func (s *ElasticSim) Ingest(batch []Event) error {
	if !s.live {
		return fmt.Errorf("fleet: ingest on a trace-mode simulation")
	}
	if len(batch) == 0 {
		return fmt.Errorf("fleet: ingest: empty event batch")
	}
	if total := len(s.events) + len(batch); total > MaxEvents {
		return fmt.Errorf("fleet: ingest: %d events would exceed the trace limit %d", total, MaxEvents)
	}
	byName := make(map[string]bool, len(s.byName))
	for name := range s.byName {
		byName[name] = true
	}
	for i, ev := range batch {
		if err := validateEvent(byName, i, ev); err != nil {
			return err
		}
		if len(s.events) > 0 && ev.At <= s.lastBatch {
			return fmt.Errorf("fleet: ingest: events[%d] at t=%g is not after the last ingested batch (t=%g)", i, ev.At, s.lastBatch)
		}
	}
	ord := make([]int, len(batch))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(x, y int) bool {
		ex, ey := batch[ord[x]], batch[ord[y]]
		if ex.At != ey.At {
			return ex.At < ey.At
		}
		return kindRank(ex.kind()) < kindRank(ey.kind())
	})
	// Pre-walk churn against the evolving node set so a bad batch is
	// rejected before any state mutates (arrival residency depends on
	// departures and cannot be pre-checked; it errors at apply time).
	ids := make(map[int]bool, len(s.present))
	for _, n := range s.present {
		ids[n.ID] = true
	}
	nextID := s.nextID
	for _, k := range ord {
		switch ev := batch[k]; ev.kind() {
		case EvNodeFail, EvNodeDrain:
			if !ids[ev.Node] {
				return fmt.Errorf("fleet: ingest: events[%d] %s targets absent node %d", k, ev.kind(), ev.Node)
			}
			delete(ids, ev.Node)
		case EvNodeJoin:
			if nextID+1 > MaxElasticNodes {
				return fmt.Errorf("fleet: ingest: events[%d] join would exceed the node limit %d", k, MaxElasticNodes)
			}
			ids[nextID] = true
			nextID++
		}
	}
	// Commit: trace indices continue the raw log, in applied order, so the
	// recorded log replays with identical indices.
	sorted := make([]indexedEvent, len(ord))
	for i, k := range ord {
		sorted[i] = indexedEvent{ev: batch[k], idx: len(s.events) + i}
	}
	for _, ie := range sorted {
		s.events = append(s.events, ie.ev)
	}
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].ev.At == sorted[i].ev.At {
			j++
		}
		if err := s.advanceDepartures(sorted[i].ev.At); err != nil {
			return &ApplyError{Err: err}
		}
		if err := s.stepBatch(sorted[i].ev.At, sorted[i:j]); err != nil {
			return &ApplyError{Err: err}
		}
		i = j
	}
	s.lastBatch = sorted[len(sorted)-1].ev.At
	return nil
}

// Now is the simulation's current time (the newest processed step).
func (s *ElasticSim) Now() float64 { return s.now }

// EventCount is how many live events have been ingested.
func (s *ElasticSim) EventCount() int { return len(s.events) }

// Events returns a copy of the raw ingested event log in applied order —
// the trace that, replayed through SimulateElastic, reproduces this
// simulation bit for bit.
func (s *ElasticSim) Events() []Event { return append([]Event(nil), s.events...) }

// Shares snapshots the allocation currently in effect (resident instances
// in arrival order).
func (s *ElasticSim) Shares() []FinalShare { return finalShares(s.active) }

// NodeCount is the present pool size; Residents the resident instance
// count.
func (s *ElasticSim) NodeCount() int { return len(s.present) }
func (s *ElasticSim) Residents() int { return len(s.active) }

// Snapshot returns the result so far: the counters, the processed event
// log, the per-arrival runs in trace order, the allocation in effect, and
// cost/utilization integrated to the current time (unlike a completed
// trace's result, which anchors them at the makespan).
func (s *ElasticSim) Snapshot() ElasticResult {
	out := *s.res
	out.Log = append([]EventRecord(nil), s.res.Log...)
	out.Makespan = s.makespan
	out.FinalNodes = len(s.present)
	if s.poolAtMakespan > 0 {
		out.Utilization = s.busySeconds / s.poolAtMakespan
	}
	out.Cost = s.costSeconds
	out.Jobs = nil
	var wait float64
	for i := 0; i < len(s.events); i++ {
		if run, ok := s.runs[i]; ok {
			out.Jobs = append(out.Jobs, *run)
			wait += run.Wait
		}
	}
	if len(out.Jobs) > 0 {
		out.MeanWait = wait / float64(len(out.Jobs))
	}
	out.Final = finalShares(s.active)
	return out
}

// Fork deep-copies the simulation state for what-if exploration: the copy
// can ingest hypothetical events or move knobs without touching the live
// sim. The allocator — and with it the engine's plan memo — is shared, so a
// fork only pays for plans its hypothesis actually changes.
func (s *ElasticSim) Fork() *ElasticSim {
	c := *s
	c.byName = make(map[string]Job, len(s.byName))
	for k, v := range s.byName {
		c.byName[k] = v
	}
	c.sc.Jobs = append([]Job(nil), s.sc.Jobs...)
	res := *s.res
	res.Log = append([]EventRecord(nil), s.res.Log...)
	res.Jobs = append([]ElasticJobRun(nil), s.res.Jobs...)
	res.Final = append([]FinalShare(nil), s.res.Final...)
	c.res = &res
	c.runs = make(map[int]*ElasticJobRun, len(s.runs))
	for k, v := range s.runs {
		run := *v
		c.runs[k] = &run
	}
	c.present = append([]node(nil), s.present...)
	c.events = append([]Event(nil), s.events...)
	c.active = make([]*einstance, len(s.active))
	for i, in := range s.active {
		dup := *in
		dup.share = append([]node(nil), in.share...)
		c.active[i] = &dup
	}
	return &c
}

// SetMigrationPenalty moves the restart-cost knob. Intended for what-if
// forks: changing it on a live sim makes the recorded log non-replayable
// under the original scenario.
func (s *ElasticSim) SetMigrationPenalty(p float64) error {
	if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return fmt.Errorf("fleet: migration penalty must be finite and ≥ 0, got %g", p)
	}
	s.sc.MigrationPenalty = p
	return nil
}

// SetDeadline moves a job's deadline (0 removes it) in the job vocabulary
// and on every resident instance of the job. Intended for what-if forks,
// like SetMigrationPenalty.
func (s *ElasticSim) SetDeadline(job string, d float64) error {
	j, ok := s.byName[job]
	if !ok {
		return fmt.Errorf("fleet: unknown job %q", job)
	}
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return fmt.Errorf("fleet: deadline must be finite and ≥ 0, got %g", d)
	}
	j.Deadline = d
	s.byName[job] = j
	for i := range s.sc.Jobs {
		if s.sc.Jobs[i].Name == job {
			s.sc.Jobs[i].Deadline = d
		}
	}
	for _, in := range s.active {
		if in.job.Name == job {
			in.job.Deadline = d
		}
	}
	return nil
}

// ReplanNow forces a re-plan at the current time under the sim's current
// knobs — how a what-if fork surfaces the allocation its hypothesis
// implies when the hypothesis changed knobs rather than events.
func (s *ElasticSim) ReplanNow() error {
	return s.a.replanElastic(s.sc, s.res, s.runs, s.active, s.present, s.now, s.tau)
}
