package fleet

import (
	"math/rand"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
)

// propMixes are the job mixes the allocator properties are checked over:
// priority skew, model skew, capped jobs, and a uniform mix. Jobs within a
// mix are pairwise distinct (model, mini-batch, priority or cap differ) so
// no two candidates ever tie — the properties below are only meaningful
// when the greedy's index tie-break cannot fire.
func propMixes() [][]Job {
	return [][]Job{
		benchMix(),
		{
			{Name: "p1", Model: model.BERT48(), MiniBatch: 128, Priority: 3},
			{Name: "p2", Model: model.GPT2Small32(), MiniBatch: 96, Priority: 2},
			{Name: "p3", Model: model.BERT48(), MiniBatch: 32, Priority: 1},
		},
		{
			{Name: "capped", Model: model.BERT48(), MiniBatch: 64, MaxNodes: 4, Priority: 2},
			{Name: "open", Model: model.BERT48(), MiniBatch: 256, Priority: 1},
		},
	}
}

// TestAllocatorAddNodeMonotonic: growing the cluster never decreases the
// planner-guided weighted fleet throughput — more capacity cannot hurt.
// Table-driven over the property mixes and a ladder of cluster sizes.
func TestAllocatorAddNodeMonotonic(t *testing.T) {
	a := NewAllocator(engine.New())
	for mi, jobs := range propMixes() {
		prev := -1.0
		for nodes := 8; nodes <= 20; nodes += 2 {
			al, err := a.Allocate(Request{Cluster: pizDaintCluster(nodes, nil), Jobs: jobs})
			if err != nil {
				t.Fatalf("mix %d, %d nodes: %v", mi, nodes, err)
			}
			if al.WeightedThroughput < prev {
				t.Fatalf("mix %d: weighted throughput fell from %.4f to %.4f when growing %d → %d nodes",
					mi, prev, al.WeightedThroughput, nodes-2, nodes)
			}
			prev = al.WeightedThroughput
		}
	}
}

// TestAllocatorPermutationInvariant: the allocation a job receives depends
// on what the job is, not where it sits in the request — permuting the job
// list permutes the result and changes nothing else. Seeded permutations,
// matched per job name.
func TestAllocatorPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAllocator(engine.New())
	for mi, jobs := range propMixes() {
		ref, err := a.Allocate(Request{Cluster: pizDaintCluster(16, nil), Jobs: jobs})
		if err != nil {
			t.Fatalf("mix %d: %v", mi, err)
		}
		byName := make(map[string]JobAllocation, len(ref.Jobs))
		for _, j := range ref.Jobs {
			byName[j.Job] = j
		}
		for trial := 0; trial < 4; trial++ {
			perm := append([]Job(nil), jobs...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			al, err := a.Allocate(Request{Cluster: pizDaintCluster(16, nil), Jobs: perm})
			if err != nil {
				t.Fatalf("mix %d trial %d: %v", mi, trial, err)
			}
			if al.WeightedThroughput != ref.WeightedThroughput {
				t.Fatalf("mix %d trial %d: weighted throughput %.6f != %.6f under permutation",
					mi, trial, al.WeightedThroughput, ref.WeightedThroughput)
			}
			for i, got := range al.Jobs {
				if got.Job != perm[i].Name {
					t.Fatalf("mix %d trial %d: result order broke input order", mi, trial)
				}
				want := byName[got.Job]
				if got.Nodes != want.Nodes || got.NodesUsed != want.NodesUsed ||
					got.Throughput != want.Throughput || got.Weighted != want.Weighted {
					t.Fatalf("mix %d trial %d: job %q got %d/%d nodes %.6f seq/s, want %d/%d nodes %.6f seq/s",
						mi, trial, got.Job, got.Nodes, got.NodesUsed, got.Throughput,
						want.Nodes, want.NodesUsed, want.Throughput)
				}
				if (got.Plan == nil) != (want.Plan == nil) {
					t.Fatalf("mix %d trial %d: job %q feasibility flipped under permutation", mi, trial, got.Job)
				}
				if got.Plan != nil && (got.Plan.W != want.Plan.W || got.Plan.D != want.Plan.D || got.Plan.B != want.Plan.B) {
					t.Fatalf("mix %d trial %d: job %q plan (%d,%d,%d) != (%d,%d,%d) under permutation",
						mi, trial, got.Job, got.Plan.W, got.Plan.D, got.Plan.B,
						want.Plan.W, want.Plan.D, want.Plan.B)
				}
			}
		}
	}
}
