package fleet

import (
	"reflect"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/obs"
)

// TestObserveFleetSeries: an instrumented allocator records allocation and
// re-plan metrics; the bid counters read through from the plan memo.
func TestObserveFleetSeries(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAllocator(engine.New(engine.Workers(1)))
	a.Observe(reg)

	req := Request{Cluster: pizDaintCluster(16, nil), Jobs: benchMix()}
	if _, err := a.Allocate(req); err != nil {
		t.Fatal(err)
	}
	res, err := a.SimulateElastic(elasticScenario(ReplanIncremental, 5))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fleet_allocations_total"]; got != 1 {
		t.Fatalf("allocations = %d, want 1", got)
	}
	if got := snap.Histograms["fleet_allocate_seconds"].Count; got != 1 {
		t.Fatalf("allocate histogram count = %d, want 1", got)
	}
	if got := snap.Counters["fleet_replans_total"]; got != uint64(res.Reallocations) {
		t.Fatalf("replans = %d, want %d (ElasticResult.Reallocations)", got, res.Reallocations)
	}
	if got := snap.Histograms["fleet_replan_seconds"].Count; got != uint64(res.Reallocations) {
		t.Fatalf("replan histogram count = %d, want %d", got, res.Reallocations)
	}
	if got := snap.Counters["fleet_jobs_reevaluated_total"]; got != uint64(res.JobsEvaluated) {
		t.Fatalf("jobs reevaluated = %d, want %d (ElasticResult.JobsEvaluated)", got, res.JobsEvaluated)
	}
	hits := snap.Counters[`fleet_allocator_bids_total{result="hit"}`]
	misses := snap.Counters[`fleet_allocator_bids_total{result="miss"}`]
	wantHits, wantMisses := a.PlanStats()
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("bids hit/miss = %d/%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
	if misses == 0 {
		t.Fatal("the greedy search made no plan bids")
	}
}

// TestObserveFleetIdentical: instrumentation must not change simulation
// results.
func TestObserveFleetIdentical(t *testing.T) {
	sc := elasticScenario(ReplanIncremental, 5)
	plain, err := NewAllocator(engine.New(engine.Workers(1))).SimulateElastic(sc)
	if err != nil {
		t.Fatal(err)
	}
	instr := NewAllocator(engine.New(engine.Workers(1)))
	instr.Observe(obs.NewRegistry())
	got, err := instr.SimulateElastic(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("instrumented elastic simulation differs from plain")
	}
}

// TestObserveFleetNil: Observe(nil) leaves the allocator uninstrumented.
func TestObserveFleetNil(t *testing.T) {
	a := NewAllocator(engine.New(engine.Workers(1)))
	a.Observe(nil)
	if a.met != nil {
		t.Fatal("nil registry produced metric handles")
	}
	if _, err := a.Allocate(Request{Cluster: pizDaintCluster(8, nil), Jobs: benchMix()[:1]}); err != nil {
		t.Fatal(err)
	}
}
