package tensor

import (
	"math/rand"
	"testing"
)

func benchMatPair(n int) (a, b, out *Tensor) {
	rng := rand.New(rand.NewSource(1))
	a, b, out = New(n, n), New(n, n), New(n, n)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	return a, b, out
}

func BenchmarkMatMul128(b *testing.B) {
	x, y, out := benchMatPair(128)
	b.SetBytes(int64(128 * 128 * 128 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	x, y, out := benchMatPair(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(out, x, y)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	x, y, out := benchMatPair(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(out, x, y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(256, 512)
	x.RandN(rng, 1)
	out := New(256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(out, x)
	}
}

func BenchmarkGELU(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(1 << 16)
	x.RandN(rng, 1)
	out := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GELU(out, x)
	}
}
