// Package tensor implements the dense float32 tensor algebra that underpins
// the training substrate: shapes, blocked matrix multiplication, elementwise
// kernels, softmax/layernorm statistics, and seeded random initialization.
// It is deliberately minimal — just the operator set a GPT/BERT transformer
// block needs — but numerically careful (float64 accumulation in reductions)
// so that gradient-equivalence tests across pipeline schedules are tight.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elems, have %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of identical element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns element (i, j) of a 2-D tensor.
func (t *Tensor) At(i, j int) float32 {
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns element (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float32) {
	t.Data[i*t.Shape[1]+j] = v
}

// RandN fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) RandN(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// --- elementwise ---

// Add computes dst = a + b (same shape), returning dst.
func Add(dst, a, b *Tensor) *Tensor {
	checkSameLen(a, b)
	checkSameLen(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// AddInto accumulates src into dst.
func AddInto(dst, src *Tensor) {
	checkSameLen(dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// Mul computes dst = a ⊙ b elementwise.
func Mul(dst, a, b *Tensor) *Tensor {
	checkSameLen(a, b)
	checkSameLen(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale computes dst = a * s.
func Scale(dst, a *Tensor, s float32) *Tensor {
	checkSameLen(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * s
	}
	return dst
}

// AXPY computes dst += alpha * src.
func AXPY(dst *Tensor, alpha float32, src *Tensor) {
	checkSameLen(dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// AddBiasRows adds bias (length C) to each row of x (R×C), in place.
func AddBiasRows(x, bias *Tensor) {
	r, c := x.Shape[0], x.Shape[1]
	if bias.Len() != c {
		panic("tensor: bias length mismatch")
	}
	for i := 0; i < r; i++ {
		row := x.Data[i*c : (i+1)*c]
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
}

// --- matmul ---

// MatMul computes dst = a(M×K) · b(K×N). dst must be M×N and distinct from
// a and b. The kernel loops i-k-j for streaming access on b's rows.
func MatMul(dst, a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul %v × %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
	return dst
}

// MatMulTransB computes dst = a(M×K) · bᵀ where b is N×K.
func MatMulTransB(dst, a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTB %v × %vᵀ -> %v", a.Shape, b.Shape, dst.Shape))
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var acc float64
			for kk := 0; kk < k; kk++ {
				acc += float64(arow[kk]) * float64(brow[kk])
			}
			dst.Data[i*n+j] = float32(acc)
		}
	}
	return dst
}

// MatMulTransA computes dst = aᵀ(K×M)ᵀ... i.e. dst(K×N) = aᵀ · b where a is
// M×K and b is M×N. Used for weight gradients (xᵀ · dy).
func MatMulTransA(dst, a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	m2, n := b.Shape[0], b.Shape[1]
	if m != m2 || dst.Shape[0] != k || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTA %vᵀ × %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		brow := b.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			drow := dst.Data[kk*n : (kk+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
	return dst
}

// Transpose2D returns a new tensor bᵀ for a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// --- nonlinearities and reductions ---

// SoftmaxRows applies a numerically stable softmax to each row of x (R×C),
// writing into dst (may alias x).
func SoftmaxRows(dst, x *Tensor) {
	r, c := x.Shape[0], x.Shape[1]
	for i := 0; i < r; i++ {
		row := x.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// GELU applies the tanh-approximation GELU elementwise: dst = gelu(x).
func GELU(dst, x *Tensor) {
	checkSameLen(dst, x)
	for i, v := range x.Data {
		dst.Data[i] = geluScalar(v)
	}
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func geluScalar(v float32) float32 {
	x := float64(v)
	return float32(0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x))))
}

// GELUGrad computes dst = dgelu(x)/dx ⊙ dy.
func GELUGrad(dst, x, dy *Tensor) {
	checkSameLen(dst, x)
	checkSameLen(x, dy)
	for i, v := range x.Data {
		xx := float64(v)
		inner := geluC * (xx + 0.044715*xx*xx*xx)
		t := math.Tanh(inner)
		sech2 := 1 - t*t
		dinner := geluC * (1 + 3*0.044715*xx*xx)
		d := 0.5*(1+t) + 0.5*xx*sech2*dinner
		dst.Data[i] = float32(d) * dy.Data[i]
	}
}

// RowMeanVar returns per-row mean and (biased) variance of x (R×C).
func RowMeanVar(x *Tensor) (mean, variance []float32) {
	r, c := x.Shape[0], x.Shape[1]
	mean = make([]float32, r)
	variance = make([]float32, r)
	for i := 0; i < r; i++ {
		row := x.Data[i*c : (i+1)*c]
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		m := s / float64(c)
		var vs float64
		for _, v := range row {
			d := float64(v) - m
			vs += d * d
		}
		mean[i] = float32(m)
		variance[i] = float32(vs / float64(c))
	}
	return mean, variance
}

// Sum returns the float64 sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxAbsDiff returns max |a-b| over all elements.
func MaxAbsDiff(a, b *Tensor) float64 {
	checkSameLen(a, b)
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func checkSameLen(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: length mismatch %v vs %v", a.Shape, b.Shape))
	}
}
