package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestNewShapeAndLen(t *testing.T) {
	x := New(3, 4, 5)
	if x.Len() != 60 || x.Rank() != 3 || x.Dim(1) != 4 {
		t.Fatalf("shape bookkeeping broken: %v", x.Shape)
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapePreservesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape broke layout: %v", y.Data)
	}
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("reshape must share storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	out := New(4, 4)
	MatMul(out, a, id)
	if MaxAbsDiff(out, a) != 0 {
		t.Fatal("A·I != A")
	}
	MatMul(out, id, a)
	if MaxAbsDiff(out, a) != 0 {
		t.Fatal("I·A != A")
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	out := New(2, 2)
	MatMul(out, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("matmul[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestMatMulTransBEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 5, 7)
	b := randTensor(rng, 6, 7) // b is N×K; compare a·bᵀ with a·transpose(b)
	got := New(5, 6)
	MatMulTransB(got, a, b)
	want := New(5, 6)
	MatMul(want, a, Transpose2D(b))
	if d := MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("transB mismatch %v", d)
	}
}

func TestMatMulTransAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 6, 4) // M×K
	b := randTensor(rng, 6, 5) // M×N
	got := New(4, 5)
	MatMulTransA(got, a, b)
	want := New(4, 5)
	MatMul(want, Transpose2D(a), b)
	if d := MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("transA mismatch %v", d)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 2+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4)
		a, b, c := randTensor(rng, m, k), randTensor(rng, k, n), randTensor(rng, n, p)
		ab := MatMul(New(m, n), a, b)
		abc1 := MatMul(New(m, p), ab, c)
		bc := MatMul(New(k, p), b, c)
		abc2 := MatMul(New(m, p), a, bc)
		return MaxAbsDiff(abc1, abc2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		return MaxAbsDiff(Transpose2D(Transpose2D(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 8, 13)
	Scale(x, x, 10) // stress numerical stability
	out := New(8, 13)
	SoftmaxRows(out, x)
	for i := 0; i < 8; i++ {
		var s float64
		for j := 0; j < 13; j++ {
			v := out.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 1, 3)
	y := FromSlice([]float32{101, 102, 103}, 1, 3)
	ox, oy := New(1, 3), New(1, 3)
	SoftmaxRows(ox, x)
	SoftmaxRows(oy, y)
	if d := MaxAbsDiff(ox, oy); d > 1e-6 {
		t.Fatalf("softmax not shift invariant: %v", d)
	}
}

func TestGELUGradMatchesFiniteDifference(t *testing.T) {
	xs := []float32{-3, -1, -0.1, 0, 0.1, 1, 3}
	x := FromSlice(append([]float32(nil), xs...), len(xs))
	dy := New(len(xs))
	dy.Fill(1)
	grad := New(len(xs))
	GELUGrad(grad, x, dy)
	const h = 1e-3
	for i, v := range xs {
		fp := geluScalar(v + h)
		fm := geluScalar(v - h)
		fd := (fp - fm) / (2 * h)
		if math.Abs(float64(fd-grad.Data[i])) > 1e-3 {
			t.Fatalf("gelu grad at %v: analytic %v fd %v", v, grad.Data[i], fd)
		}
	}
}

func TestRowMeanVar(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	mean, variance := RowMeanVar(x)
	if math.Abs(float64(mean[0])-2.5) > 1e-6 {
		t.Fatalf("mean %v", mean[0])
	}
	if math.Abs(float64(variance[0])-1.25) > 1e-6 {
		t.Fatalf("var %v", variance[0])
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("add: %v", dst.Data)
	}
	Mul(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("mul: %v", dst.Data)
	}
	Scale(dst, a, 2)
	if dst.Data[0] != 2 {
		t.Fatalf("scale: %v", dst.Data)
	}
	AXPY(dst, 3, a) // dst = 2a + 3a = 5a at index 0 -> wait dst currently 2a
	if dst.Data[0] != 5 {
		t.Fatalf("axpy: %v", dst.Data)
	}
	AddInto(dst, b)
	if dst.Data[0] != 9 {
		t.Fatalf("addinto: %v", dst.Data)
	}
}

func TestAddBiasRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	bias := FromSlice([]float32{10, 20}, 2)
	AddBiasRows(x, bias)
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if x.Data[i] != w {
			t.Fatalf("bias add: %v", x.Data)
		}
	}
}

func TestSumAndFill(t *testing.T) {
	x := New(10)
	x.Fill(1.5)
	if math.Abs(x.Sum()-15) > 1e-6 {
		t.Fatalf("sum %v", x.Sum())
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("zero failed")
	}
}

func TestRandNDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.RandN(rand.New(rand.NewSource(7)), 0.02)
	b.RandN(rand.New(rand.NewSource(7)), 0.02)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("seeded RandN must be deterministic")
	}
	var nonzero bool
	for _, v := range a.Data {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("RandN produced all zeros")
	}
}
