package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: durations in nanoseconds land in log-spaced
// buckets — histSubCount sub-buckets per power-of-two octave — so the whole
// range from 1 ns to ~18 minutes (2^40 ns) is covered by a fixed,
// preallocated array and any quantile is reproducible to within one
// sub-bucket's width (2^(1/8) ≈ +9% relative). Values beyond the last
// octave fall into a single overflow bucket.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // 8 sub-buckets per octave
	histOctaves  = 40               // 1 ns .. 2^40 ns ≈ 18.3 min
	histBuckets  = histOctaves*histSubCount + 1

	// histShards spreads the record path's atomic adds over independent
	// cache lines; the shard is picked by hashing the recorded value, so
	// concurrent recorders of different durations rarely collide.
	histShards = 8
)

// histShard is one shard's bucket array plus its count/sum, padded so
// adjacent shards never share a cache line.
type histShard struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64
	_       [64]byte
}

// Histogram is a lock-free duration histogram: Observe is one hash, two or
// three atomic adds, and no allocation. Snapshots merge the shards with
// plain atomic loads (callers may record concurrently; a snapshot is a
// consistent-enough view, never a torn bucket). Nil receivers no-op.
type Histogram struct {
	shards [histShards]histShard
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond duration onto its log bucket.
func bucketIndex(ns uint64) int {
	if ns == 0 {
		ns = 1
	}
	o := bits.Len64(ns) - 1 // floor(log2 ns)
	if o >= histOctaves {
		return histBuckets - 1 // overflow
	}
	var sub uint64
	if o >= histSubBits {
		sub = (ns - 1<<o) >> (o - histSubBits)
	} else {
		sub = (ns - 1<<o) << (histSubBits - o)
	}
	return o*histSubCount + int(sub)
}

// bucketUpperNS is bucket i's exclusive upper bound in nanoseconds
// (+Inf for the overflow bucket).
func bucketUpperNS(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	o, s := i/histSubCount, i%histSubCount
	return float64(uint64(1)<<o) * (1 + float64(s+1)/histSubCount)
}

// bucketLowerNS is bucket i's inclusive lower bound in nanoseconds.
func bucketLowerNS(i int) float64 {
	if i >= histBuckets-1 {
		return float64(uint64(1) << histOctaves)
	}
	o, s := i/histSubCount, i%histSubCount
	return float64(uint64(1)<<o) * (1 + float64(s)/histSubCount)
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	sh := &h.shards[(ns*0x9E3779B97F4A7C15>>57)&(histShards-1)]
	sh.buckets[bucketIndex(ns)].Add(1)
	sh.count.Add(1)
	sh.sumNS.Add(ns)
}

// Since records the time elapsed since start (Observe(time.Since(start))).
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// HistSnapshot is a merged, point-in-time view of a histogram.
type HistSnapshot struct {
	Count   uint64
	SumNS   uint64
	Buckets [histBuckets]uint64
}

// Snapshot merges the shards.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.SumNS += sh.sumNS.Load()
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	return s
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Quantile returns the q-quantile (q in [0, 1]) as a duration, linearly
// interpolated within the log bucket holding the target rank. Zero when the
// histogram is empty. Accuracy is bounded by the bucket width: at 8
// sub-buckets per octave the estimate is within ~12.5% of the exact sample
// quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Quantile computes a quantile from an immutable snapshot (so one snapshot
// can answer p50/p95/p99 consistently).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketLowerNS(i), bucketUpperNS(i)
			if math.IsInf(hi, 1) {
				return time.Duration(lo)
			}
			frac := (target - cum) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return time.Duration(bucketLowerNS(histBuckets - 1))
}

// Mean returns the mean recorded duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(float64(s.SumNS) / float64(s.Count))
}
