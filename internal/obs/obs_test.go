package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryInterning: equal (name, labels) return the same instrument,
// label order does not matter, different labels make different series.
func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "requests", L("endpoint", "plan"), L("cache", "hit"))
	b := r.Counter("requests_total", "requests", L("cache", "hit"), L("endpoint", "plan"))
	if a != b {
		t.Fatal("same series interned to different counters")
	}
	c := r.Counter("requests_total", "requests", L("endpoint", "plan"), L("cache", "miss"))
	if a == c {
		t.Fatal("distinct label values shared a counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter value = %d, want 3", b.Value())
	}
	if c.Value() != 0 {
		t.Fatalf("sibling counter value = %d, want 0", c.Value())
	}
	h1 := r.Histogram("latency_seconds", "latency")
	h2 := r.Histogram("latency_seconds", "latency")
	if h1 != h2 {
		t.Fatal("same histogram series interned to different handles")
	}
}

// TestNilRegistry: the disabled-observability path must be inert end to
// end — nil registry, nil instruments, no panics.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments not inert")
	}
	r.CounterFunc("f_total", "", func() uint64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestGaugeCounterBasics pins the numeric behavior.
func TestGaugeCounterBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	g.Add(-5)
	if g.Value() != -4 {
		t.Fatalf("gauge = %d, want -4", g.Value())
	}
	c := r.Counter("total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

// TestFuncMetrics: CounterFunc/GaugeFunc read through at snapshot time and
// re-registration replaces the function.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := uint64(7)
	r.CounterFunc("hits_total", "cache hits", func() uint64 { return v }, L("table", "a"))
	snap := r.Snapshot()
	if got := snap.Counters[`hits_total{table="a"}`]; got != 7 {
		t.Fatalf("counter func = %d, want 7", got)
	}
	v = 9
	if got := r.Snapshot().Counters[`hits_total{table="a"}`]; got != 9 {
		t.Fatalf("counter func after update = %d, want 9", got)
	}
	r.CounterFunc("hits_total", "cache hits", func() uint64 { return 100 }, L("table", "a"))
	if got := r.Snapshot().Counters[`hits_total{table="a"}`]; got != 100 {
		t.Fatalf("re-registered counter func = %d, want 100", got)
	}
	r.GaugeFunc("ratio", "", func() float64 { return 0.5 })
	if got := r.Snapshot().Gauges["ratio"]; got != 0.5 {
		t.Fatalf("gauge func = %g, want 0.5", got)
	}
}

// TestConcurrentRegistry: concurrent interning and snapshotting under
// -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	names := []string{"a_total", "b_total", "c_seconds"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter(names[j%2], "help").Inc()
				r.Histogram(names[2], "help").Observe(1000)
				if j%50 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["a_total"]+snap.Counters["b_total"] != 8*200 {
		t.Fatalf("lost counter increments: %v", snap.Counters)
	}
	if snap.Histograms["c_seconds"].Count != 8*200 {
		t.Fatalf("lost histogram records: %v", snap.Histograms["c_seconds"])
	}
}
