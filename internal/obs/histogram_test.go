package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketGeometry pins the bucket map: indices are monotone in the
// value, every value lands inside its bucket's [lower, upper) range, and
// bounds are monotone across buckets.
func TestBucketGeometry(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025, 1 << 20, 1<<40 - 1, 1 << 40, 1 << 50, math.MaxUint64} {
		i := bucketIndex(ns)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone: ns=%d got %d after %d", ns, i, prev)
		}
		prev = i
		if i < histBuckets-1 {
			lo, hi := bucketLowerNS(i), bucketUpperNS(i)
			v := float64(ns)
			if ns == 0 {
				v = 1 // Observe clamps 0 → 1
			}
			if v < lo || v >= hi {
				t.Fatalf("ns=%d in bucket %d outside [%g, %g)", ns, i, lo, hi)
			}
		}
	}
	for i := 1; i < histBuckets; i++ {
		if !(bucketUpperNS(i) > bucketUpperNS(i-1)) {
			t.Fatalf("bucket upper bounds not strictly increasing at %d", i)
		}
		if bucketLowerNS(i) != bucketUpperNS(i-1) {
			t.Fatalf("bucket %d lower %g != bucket %d upper %g", i, bucketLowerNS(i), i-1, bucketUpperNS(i-1))
		}
	}
}

// TestHistogramQuantileOracle drives random workloads through the histogram
// and checks p50/p95/p99 against the exact sorted-sample quantile: the log
// buckets (8 per octave) bound the relative error at one bucket width.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloads := map[string]func() time.Duration{
		// Log-normal-ish: exp of a gaussian, centered near 100 µs.
		"lognormal": func() time.Duration {
			return time.Duration(100e3 * math.Exp(rng.NormFloat64()))
		},
		// Uniform microseconds to 10 ms.
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(10e6) + 1)
		},
		// Bimodal: fast cache hits plus slow misses.
		"bimodal": func() time.Duration {
			if rng.Intn(10) < 8 {
				return time.Duration(50e3 + rng.Int63n(10e3))
			}
			return time.Duration(20e6 + rng.Int63n(5e6))
		},
	}
	for name, gen := range workloads {
		t.Run(name, func(t *testing.T) {
			h := newHistogram()
			const n = 20000
			samples := make([]float64, n)
			for i := range samples {
				d := gen()
				samples[i] = float64(d)
				h.Observe(d)
			}
			sort.Float64s(samples)
			for _, q := range []float64{0.50, 0.95, 0.99} {
				idx := int(math.Ceil(q*float64(n))) - 1
				exact := samples[idx]
				got := float64(h.Quantile(q))
				relErr := math.Abs(got-exact) / exact
				// One sub-bucket is 2^(1/8)-1 ≈ 9% wide; allow 15% for
				// interpolation slack at bucket edges.
				if relErr > 0.15 {
					t.Errorf("q=%.2f: got %.0f ns, exact %.0f ns (rel err %.1f%%)",
						q, got, exact, 100*relErr)
				}
			}
			if got := h.Count(); got != n {
				t.Fatalf("count = %d, want %d", got, n)
			}
		})
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshots run — run under -race this is the lock-free record path's
// correctness gate; the final count and sum must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot().Quantile(0.99)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*per)
	}
	var bucketSum uint64
	for _, c := range snap.Buckets {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
}

// TestHistogramEdgeCases: empty, zero and negative durations, overflow.
func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	h.Observe(0)
	h.Observe(-time.Second)
	if c := h.Count(); c != 2 {
		t.Fatalf("count = %d, want 2", c)
	}
	if q := h.Quantile(0.5); q > 2 {
		t.Fatalf("zero-valued quantile = %v, want ~1ns", q)
	}
	// Overflow bucket: beyond 2^40 ns.
	h2 := newHistogram()
	h2.Observe(30 * time.Minute)
	if q := h2.Quantile(0.5); q < time.Duration(1)<<40 {
		t.Fatalf("overflow quantile = %v, want >= 2^40 ns", q)
	}
	// Nil receiver no-ops.
	var nilH *Histogram
	nilH.Observe(time.Second)
	nilH.Since(time.Now())
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not inert")
	}
}
