package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families
// sort by name, series by label signature, histogram buckets ascending.
// Histograms render in seconds with cumulative buckets; empty buckets are
// elided (the cumulative counts stay correct) except the mandatory +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := &errWriter{w: w}
	var lastFamily string
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			if s.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, promType(s.kind))
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, s.sig, s.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, s.sig, s.counterF())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, s.sig, s.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s%s %s\n", s.name, s.sig, formatFloat(s.gaugeF()))
		case kindHistogram:
			writePromHistogram(bw, s)
		}
	}
	return bw.err
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// writePromHistogram renders one histogram series: cumulative _bucket
// lines for every non-empty bucket plus +Inf, then _sum and _count.
func writePromHistogram(w io.Writer, s *series) {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, c := range snap.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(s, bucketUpperNS(i)/1e9), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(s, math.Inf(1)), snap.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.sig, formatFloat(float64(snap.SumNS)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.sig, snap.Count)
}

// withLE appends the le label to a series' label signature.
func withLE(s *series, upperSeconds float64) string {
	le := "+Inf"
	if !math.IsInf(upperSeconds, 1) {
		le = formatFloat(upperSeconds)
	}
	if s.sig == "" {
		return `{le="` + le + `"}`
	}
	return s.sig[:len(s.sig)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so render loops stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// Snapshot is a point-in-time view of a registry for embedding in JSON
// responses (/v1/stats): counters and gauges as flat series-name → value
// maps, histograms as per-series quantile summaries. Durations report in
// seconds to match the Prometheus endpoint.
type Snapshot struct {
	Counters   map[string]uint64           `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// HistogramSummary is one histogram's quantile digest.
type HistogramSummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// Snapshot digests the registry. Keys are the full series name including
// the label signature (e.g. `serve_request_duration_seconds{endpoint="plan"}`).
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	out.Counters = make(map[string]uint64)
	out.Gauges = make(map[string]float64)
	out.Histograms = make(map[string]HistogramSummary)
	for _, s := range r.snapshotSeries() {
		key := s.name + s.sig
		switch s.kind {
		case kindCounter:
			out.Counters[key] = s.counter.Value()
		case kindCounterFunc:
			out.Counters[key] = s.counterF()
		case kindGauge:
			out.Gauges[key] = float64(s.gauge.Value())
		case kindGaugeFunc:
			out.Gauges[key] = s.gaugeF()
		case kindHistogram:
			snap := s.hist.Snapshot()
			out.Histograms[key] = HistogramSummary{
				Count:       snap.Count,
				MeanSeconds: float64(snap.Mean()) / 1e9,
				P50Seconds:  float64(snap.Quantile(0.50)) / 1e9,
				P95Seconds:  float64(snap.Quantile(0.95)) / 1e9,
				P99Seconds:  float64(snap.Quantile(0.99)) / 1e9,
			}
		}
	}
	return out
}

// HistogramQuantiles parses Prometheus text-format histogram buckets for
// one metric family back into per-label-signature quantile estimates — the
// inverse the load generator uses to fold server-side latency into its
// report. Series are grouped by their label signature minus the le label;
// the returned map keys are those signatures (e.g. `{endpoint="plan"}`).
func HistogramQuantiles(text, family string) map[string]ParsedHistogram {
	out := make(map[string]ParsedHistogram)
	prefix := family + "_bucket"
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		if len(rest) == 0 || rest[0] != '{' {
			continue
		}
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			continue
		}
		labels, valStr := rest[1:close], strings.TrimSpace(rest[close+1:])
		count, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			continue
		}
		var le string
		var kept []string
		for _, part := range strings.Split(labels, ",") {
			if v, ok := strings.CutPrefix(part, `le="`); ok {
				le = strings.TrimSuffix(v, `"`)
				continue
			}
			kept = append(kept, part)
		}
		if le == "" {
			continue
		}
		ub := math.Inf(1)
		if le != "+Inf" {
			if v, err := strconv.ParseFloat(le, 64); err == nil {
				ub = v
			} else {
				continue
			}
		}
		sig := "{" + strings.Join(kept, ",") + "}"
		h := out[sig]
		h.buckets = append(h.buckets, parsedBucket{ub: ub, cum: count})
		out[sig] = h
	}
	for sig, h := range out {
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].ub < h.buckets[j].ub })
		if n := len(h.buckets); n > 0 {
			h.Count = h.buckets[n-1].cum
		}
		out[sig] = h
	}
	return out
}

// MergeHistograms folds several scraped histogram series into one (e.g. an
// endpoint's cache="hit" and cache="miss" series into the endpoint total).
// Cumulative counts at each upper bound add across series; a series'
// cumulative count at a bound it does not list is its count at the largest
// bound it does list below it (the cumulative step function), so series
// with different elided-bucket sets merge correctly.
func MergeHistograms(hs ...ParsedHistogram) ParsedHistogram {
	var out ParsedHistogram
	bounds := make(map[float64]struct{})
	for _, h := range hs {
		out.Count += h.Count
		for _, b := range h.buckets {
			bounds[b.ub] = struct{}{}
		}
	}
	if len(bounds) == 0 {
		return out
	}
	ubs := make([]float64, 0, len(bounds))
	for ub := range bounds {
		ubs = append(ubs, ub)
	}
	sort.Float64s(ubs)
	for _, ub := range ubs {
		var cum uint64
		for _, h := range hs {
			cum += h.cumAt(ub)
		}
		out.buckets = append(out.buckets, parsedBucket{ub: ub, cum: cum})
	}
	return out
}

// cumAt is the series' cumulative count at an arbitrary bound: the count of
// the largest listed bucket with ub <= bound.
func (h ParsedHistogram) cumAt(bound float64) uint64 {
	var cum uint64
	for _, b := range h.buckets {
		if b.ub > bound {
			break
		}
		cum = b.cum
	}
	return cum
}

type parsedBucket struct {
	ub  float64 // upper bound, seconds
	cum uint64  // cumulative count
}

// ParsedHistogram is one scraped histogram series.
type ParsedHistogram struct {
	Count   uint64
	buckets []parsedBucket
}

// Quantile estimates the q-quantile in seconds from the scraped cumulative
// buckets (linear interpolation within the target bucket; the last finite
// bucket's bound for the overflow bucket). Zero when empty.
func (h ParsedHistogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	prevUB, prevCum := 0.0, uint64(0)
	for _, b := range h.buckets {
		if float64(b.cum) >= target {
			if math.IsInf(b.ub, 1) {
				return prevUB
			}
			width := float64(b.cum - prevCum)
			if width == 0 {
				return b.ub
			}
			frac := (target - float64(prevCum)) / width
			return prevUB + (b.ub-prevUB)*frac
		}
		if !math.IsInf(b.ub, 1) {
			prevUB = b.ub
		}
		prevCum = b.cum
	}
	return prevUB
}
