package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the text exposition format byte-for-byte for a
// small registry with every instrument kind. Determinism (sorted families,
// sorted label signatures, cumulative buckets) is the contract the CI
// smoke's `curl /metrics | grep` assertions and the loadgen scraper rely
// on.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_shed_total", "requests shed by admission control").Add(3)
	r.Counter("serve_requests_total", "requests", L("endpoint", "plan")).Add(10)
	r.Counter("serve_requests_total", "requests", L("endpoint", "simulate")).Add(4)
	r.Gauge("serve_inflight", "requests executing now").Set(2)
	r.GaugeFunc("engine_cache_hit_ratio", "hit fraction", func() float64 { return 0.75 })
	r.CounterFunc("engine_cache_hits_total", "memo hits", func() uint64 { return 42 }, L("table", "schedules"))

	h := r.Histogram("serve_request_duration_seconds", "request latency", L("endpoint", "plan"))
	// 1024 ns sits exactly on a bucket lower bound (octave 10, sub 0 →
	// upper 1152 ns); 3072 ns on octave 11 sub 4 → upper 3328 ns.
	h.Observe(1024 * time.Nanosecond)
	h.Observe(1024 * time.Nanosecond)
	h.Observe(3072 * time.Nanosecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP engine_cache_hit_ratio hit fraction
# TYPE engine_cache_hit_ratio gauge
engine_cache_hit_ratio 0.75
# HELP engine_cache_hits_total memo hits
# TYPE engine_cache_hits_total counter
engine_cache_hits_total{table="schedules"} 42
# HELP serve_inflight requests executing now
# TYPE serve_inflight gauge
serve_inflight 2
# HELP serve_request_duration_seconds request latency
# TYPE serve_request_duration_seconds histogram
serve_request_duration_seconds_bucket{endpoint="plan",le="1.152e-06"} 2
serve_request_duration_seconds_bucket{endpoint="plan",le="3.328e-06"} 3
serve_request_duration_seconds_bucket{endpoint="plan",le="+Inf"} 3
serve_request_duration_seconds_sum{endpoint="plan"} 5.12e-06
serve_request_duration_seconds_count{endpoint="plan"} 3
# HELP serve_requests_total requests
# TYPE serve_requests_total counter
serve_requests_total{endpoint="plan"} 10
serve_requests_total{endpoint="simulate"} 4
# HELP serve_shed_total requests shed by admission control
# TYPE serve_shed_total counter
serve_shed_total 3
`
	if got != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusLabelEscaping: label values with quotes, backslashes and
// newlines must render escaped.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", L("k", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `x_total{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping drifted: %q does not contain %q", b.String(), want)
	}
}

// TestHistogramQuantilesRoundTrip: rendering a histogram to Prometheus
// text and scraping it back must reproduce the quantiles the histogram
// itself reports.
func TestHistogramQuantilesRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve_request_duration_seconds", "latency",
		L("endpoint", "plan"), L("cache", "hit"))
	h2 := r.Histogram("serve_request_duration_seconds", "latency",
		L("endpoint", "plan"), L("cache", "miss"))
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	h2.Observe(50 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed := HistogramQuantiles(b.String(), "serve_request_duration_seconds")
	hit, ok := parsed[`{cache="hit",endpoint="plan"}`]
	if !ok {
		t.Fatalf("hit series not parsed; have %v", keys(parsed))
	}
	if hit.Count != 1000 {
		t.Fatalf("scraped count = %d, want 1000", hit.Count)
	}
	for _, q := range []float64{0.5, 0.99} {
		direct := float64(h.Quantile(q)) / 1e9
		scraped := hit.Quantile(q)
		if math.Abs(scraped-direct)/direct > 0.01 {
			t.Fatalf("q=%.2f: scraped %.6f s vs direct %.6f s", q, scraped, direct)
		}
	}
	miss := parsed[`{cache="miss",endpoint="plan"}`]
	if miss.Count != 1 {
		t.Fatalf("miss count = %d, want 1", miss.Count)
	}
	if p := miss.Quantile(0.5); p <= 0.045 || p > 0.06 {
		t.Fatalf("miss p50 = %.4f s, want ~0.05", p)
	}
}

// TestParsedHistogramEmpty: scraping text without the family yields nothing
// and empty quantiles are zero.
func TestParsedHistogramEmpty(t *testing.T) {
	if got := HistogramQuantiles("nope 1\n", "serve_request_duration_seconds"); len(got) != 0 {
		t.Fatalf("parsed %d series from garbage", len(got))
	}
	var p ParsedHistogram
	if p.Quantile(0.5) != 0 {
		t.Fatal("empty parsed histogram quantile not 0")
	}
}

// TestMergeHistograms: merging scraped hit/miss series reproduces the
// quantiles of a histogram that saw all the samples, even though the two
// sides elide different empty buckets.
func TestMergeHistograms(t *testing.T) {
	r := NewRegistry()
	hit := r.Histogram("d_seconds", "", L("cache", "hit"))
	miss := r.Histogram("d_seconds", "", L("cache", "miss"))
	all := r.Histogram("all_seconds", "")
	for i := 1; i <= 900; i++ {
		d := time.Duration(i) * time.Microsecond
		hit.Observe(d)
		all.Observe(d)
	}
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		miss.Observe(d)
		all.Observe(d)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed := HistogramQuantiles(b.String(), "d_seconds")
	merged := MergeHistograms(parsed[`{cache="hit"}`], parsed[`{cache="miss"}`])
	if merged.Count != 1000 {
		t.Fatalf("merged count = %d, want 1000", merged.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := float64(all.Quantile(q)) / 1e9
		got := merged.Quantile(q)
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("q=%.2f: merged %.6f s vs direct %.6f s", q, got, want)
		}
	}
	if empty := MergeHistograms(); empty.Count != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("merging nothing is not empty")
	}
}

func keys(m map[string]ParsedHistogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
