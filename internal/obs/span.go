package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one request's causal record: a name (the endpoint), a request id,
// and an ordered list of phases (decode → cache → schedule → replay →
// encode, or whatever the handler marks). Phases are sequential — starting
// one ends the previous — matching a request's single-goroutine handler
// flow; a mutex still guards mutation so attrs set from helper goroutines
// cannot race. All methods are nil-safe, so code can thread spans
// unconditionally and pay nothing when tracing is off.
type Span struct {
	mu     sync.Mutex
	name   string
	id     string
	start  time.Time
	attrs  []Label
	phases []Phase
	open   bool
}

// Phase is one named interval within a span, as offsets from the span
// start.
type Phase struct {
	Name  string
	Start time.Duration
	End   time.Duration // zero while the phase is open
}

// NewSpan starts a span now.
func NewSpan(name, id string) *Span {
	return &Span{name: name, id: id, start: time.Now()}
}

// ID returns the span's request id ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartPhase ends any open phase and opens a new one.
func (s *Span) StartPhase(name string) {
	if s == nil {
		return
	}
	now := time.Since(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeOpen(now)
	s.phases = append(s.phases, Phase{Name: name, Start: now})
	s.open = true
}

// EndPhase ends the open phase (no-op when none is open).
func (s *Span) EndPhase() {
	if s == nil {
		return
	}
	now := time.Since(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeOpen(now)
}

// closeOpen stamps the open phase's end. Callers hold s.mu.
func (s *Span) closeOpen(now time.Duration) {
	if s.open {
		s.phases[len(s.phases)-1].End = now
		s.open = false
	}
}

// SetAttr attaches (or overwrites) a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.attrs {
		if a.Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// Attr reads an annotation ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Finish ends the span (closing any open phase) and returns its immutable
// record. A nil span finishes to a zero record.
func (s *Span) Finish() SpanRecord {
	if s == nil {
		return SpanRecord{}
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeOpen(dur)
	rec := SpanRecord{
		ID:         s.id,
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	for _, p := range s.phases {
		rec.Phases = append(rec.Phases, PhaseRecord{
			Name:  p.Name,
			AtMS:  float64(p.Start) / float64(time.Millisecond),
			DurMS: float64(p.End-p.Start) / float64(time.Millisecond),
		})
	}
	return rec
}

// SpanRecord is a finished span: the flight recorder's (and
// /debug/requests') wire shape.
type SpanRecord struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Phases     []PhaseRecord     `json:"phases,omitempty"`
}

// PhaseRecord is one phase on the wire: offset and duration in
// milliseconds.
type PhaseRecord struct {
	Name  string  `json:"name"`
	AtMS  float64 `json:"at_ms"`
	DurMS float64 `json:"dur_ms"`
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the context's span (nil when absent — and every Span
// method is nil-safe, so callers use the result unconditionally).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Recorder is the flight recorder: a fixed-size ring of the most recently
// finished spans. Record replaces the oldest entry once full; Snapshot
// returns newest-first. Nil receivers no-op. Construct with NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
}

// NewRecorder builds a recorder holding the last n spans (n < 1 selects 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]SpanRecord, 0, n)}
}

// Record stores one finished span, evicting the oldest when full.
func (r *Recorder) Record(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % cap(r.ring)
}

// Snapshot returns the recorded spans, newest first.
func (r *Recorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.ring))
	// The newest entry sits just before next; walk backwards.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// Total returns how many spans have ever been recorded (including evicted
// ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.ring)
}
