package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestSpanPhases: phases are sequential (starting one closes the previous),
// offsets are ordered, and Finish closes the open phase.
func TestSpanPhases(t *testing.T) {
	s := NewSpan("plan", "req-1")
	s.StartPhase("decode")
	s.StartPhase("cache")
	s.SetAttr("cache", "miss")
	s.StartPhase("encode")
	rec := s.Finish()

	if rec.ID != "req-1" || rec.Name != "plan" {
		t.Fatalf("identity lost: %+v", rec)
	}
	if len(rec.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(rec.Phases))
	}
	want := []string{"decode", "cache", "encode"}
	var prevEnd float64
	for i, p := range rec.Phases {
		if p.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.Name, want[i])
		}
		// prevEnd sums two independently-rounded ms quotients, so it can
		// exceed the exactly-converted AtMS by an ulp; compare with slack.
		if p.AtMS < prevEnd-1e-9 {
			t.Fatalf("phase %q starts at %v before previous end %v", p.Name, p.AtMS, prevEnd)
		}
		if p.DurMS < 0 {
			t.Fatalf("phase %q has negative duration", p.Name)
		}
		prevEnd = p.AtMS + p.DurMS
	}
	if rec.Attrs["cache"] != "miss" {
		t.Fatalf("attrs = %v, want cache=miss", rec.Attrs)
	}
	if rec.DurationMS < 0 {
		t.Fatal("negative span duration")
	}
}

// TestSpanNil: every span method on nil is a no-op, and SpanFrom on a bare
// context returns nil.
func TestSpanNil(t *testing.T) {
	var s *Span
	s.StartPhase("x")
	s.EndPhase()
	s.SetAttr("k", "v")
	if s.Attr("k") != "" || s.ID() != "" {
		t.Fatal("nil span not inert")
	}
	if rec := s.Finish(); rec.Name != "" {
		t.Fatal("nil span finish not zero")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty ctx) = %v, want nil", got)
	}
}

// TestSpanContext round-trips a span through a context.
func TestSpanContext(t *testing.T) {
	s := NewSpan("simulate", "id-9")
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFrom(ctx); got != s {
		t.Fatal("span did not round-trip through context")
	}
}

// TestRecorderEviction: the flight recorder keeps exactly the last N spans,
// newest first, and counts every record it ever saw.
func TestRecorderEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 7; i++ {
		sp := NewSpan("ep", fmt.Sprintf("req-%d", i))
		r.Record(sp.Finish())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	for i, rec := range snap {
		want := fmt.Sprintf("req-%d", 6-i) // newest first
		if rec.ID != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, rec.ID, want)
		}
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d, want 7", r.Total())
	}
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
}

// TestRecorderPartial: before the ring fills, snapshot returns what exists
// (newest first).
func TestRecorderPartial(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		r.Record(SpanRecord{ID: fmt.Sprintf("r%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	if snap[0].ID != "r2" || snap[2].ID != "r0" {
		t.Fatalf("order wrong: %v", []string{snap[0].ID, snap[1].ID, snap[2].ID})
	}
	// Nil recorder is inert.
	var nr *Recorder
	nr.Record(SpanRecord{})
	if nr.Snapshot() != nil || nr.Total() != 0 || nr.Cap() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// TestRecorderConcurrent floods the recorder from many goroutines under
// -race; the total must be exact and the ring intact.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Record(SpanRecord{ID: fmt.Sprintf("g%d-%d", g, i), DurationMS: 1})
			}
		}(g)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		<-done
	}
	close(stop)
	if r.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", r.Total())
	}
	if len(r.Snapshot()) != 16 {
		t.Fatalf("ring holds %d, want 16", len(r.Snapshot()))
	}
}

// TestSpanAttrOverwrite: SetAttr replaces an existing key.
func TestSpanAttrOverwrite(t *testing.T) {
	s := NewSpan("x", "1")
	s.SetAttr("cache", "miss")
	s.SetAttr("cache", "hit")
	if got := s.Attr("cache"); got != "hit" {
		t.Fatalf("attr = %q, want hit", got)
	}
	rec := s.Finish()
	if rec.Attrs["cache"] != "hit" {
		t.Fatalf("record attrs = %v", rec.Attrs)
	}
}

// TestSpanEndPhase: EndPhase closes without starting a new one, and a
// phase's duration is measured, not zero, when time passes.
func TestSpanEndPhase(t *testing.T) {
	s := NewSpan("x", "1")
	s.StartPhase("work")
	time.Sleep(2 * time.Millisecond)
	s.EndPhase()
	rec := s.Finish()
	if len(rec.Phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(rec.Phases))
	}
	if rec.Phases[0].DurMS < 1 {
		t.Fatalf("phase duration %.3f ms, want >= 1", rec.Phases[0].DurMS)
	}
}
