// Package obs is the zero-dependency observability core behind the engine,
// the serving tier and the fleet layer: a named registry of atomic counters
// and gauges, sharded log-bucket histograms whose record path is a single
// atomic add (no locks, no allocation), and lightweight request-scoped
// spans kept in a ring-buffered "flight recorder" of the most recent
// requests.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every instrument method on a nil receiver is a no-op. Code can therefore
// thread metric handles unconditionally through its hot paths and pay
// nothing when observability is disabled — the property the CI overhead
// gate (instrumented uncached sweep within 5% of uninstrumented) relies on.
//
// Rendering is deterministic: families sort by name, series by label
// signature, so the Prometheus text endpoint and the /v1/stats snapshot
// are stable byte-for-byte for equal metric states (golden-testable).
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension. Series identity is the metric
// name plus the sorted label set.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is usable;
// nil receivers no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is usable; nil
// receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind tags a registered series for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// series is one registered instrument: a (name, labels) identity plus
// exactly one live instrument matching kind.
type series struct {
	name   string
	labels []Label // sorted by key
	sig    string  // rendered label signature, the intern key
	help   string
	kind   metricKind

	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	counterF func() uint64
	gaugeF   func() float64
}

// Registry is a named collection of instruments. Instruments intern: asking
// twice for the same (name, labels) returns the same handle, so packages
// can resolve their metrics independently and still share series. A nil
// *Registry hands out nil instruments (whose methods no-op), making
// "observability off" a nil check away. Construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	sorted bool
	all    []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// seriesKey is the intern key: name plus the sorted label signature.
func seriesKey(name, sig string) string { return name + sig }

// labelSig renders sorted labels as {k="v",...} ("" when empty). The label
// slice must already be sorted.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sortedLabels returns a sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// intern returns the series for (name, labels), creating it with mk on
// first use. Asking for an existing series with a different kind replaces
// nothing — the existing instrument wins (and mismatched asks return nil
// instruments rather than panicking a hot path).
func (r *Registry) intern(name, help string, labels []Label, kind metricKind, mk func(*series)) *series {
	ls := sortedLabels(labels)
	sig := labelSig(ls)
	key := seriesKey(name, sig)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		return s
	}
	s := &series{name: name, labels: ls, sig: sig, help: help, kind: kind}
	mk(s)
	r.byKey[key] = s
	r.all = append(r.all, s)
	r.sorted = false
	return s
}

// Counter returns (or creates) the counter for (name, labels).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, labels, kindCounter, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// Gauge returns (or creates) the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, labels, kindGauge, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// Histogram returns (or creates) the duration histogram for (name, labels).
// Histogram metric names should end in "_seconds" — values render in
// seconds on the Prometheus endpoint.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, labels, kindHistogram, func(s *series) { s.hist = newHistogram() })
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — zero hot-path cost for sources that already maintain their own
// atomics (e.g. the engine's memo hit counters). Re-registering the same
// series replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.intern(name, help, labels, kindCounterFunc, func(s *series) {})
	r.mu.Lock()
	s.kind = kindCounterFunc
	s.counterF = fn
	r.mu.Unlock()
}

// GaugeFunc is CounterFunc for float-valued instantaneous readings.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.intern(name, help, labels, kindGaugeFunc, func(s *series) {})
	r.mu.Lock()
	s.kind = kindGaugeFunc
	s.gaugeF = fn
	r.mu.Unlock()
}

// snapshotSeries returns every series sorted by (name, label signature).
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.Slice(r.all, func(i, j int) bool {
			if r.all[i].name != r.all[j].name {
				return r.all[i].name < r.all[j].name
			}
			return r.all[i].sig < r.all[j].sig
		})
		r.sorted = true
	}
	return append([]*series(nil), r.all...)
}
