// Package refinterp retains the original map-based greedy replay
// interpreter — the pre-Graph implementation of schedule.ReplayWith — as an
// executable reference for the compiled dependency-graph IR:
//
//   - the equivalence suite (internal/schedule graph tests) asserts that
//     graph replay produces bit-identical Timelines and critical paths
//     across every scheme, cost model and concatenation variant;
//   - the replay benchmark (experiments.BenchmarkSweep's replay section)
//     measures the graph pass against this interpreter and gates the ≥2×
//     win in CI.
//
// It re-resolves every dependency token through a map on every replay and
// round-robin rescans the worker op lists — exactly the behavior the graph
// compile removed. Never use it on a hot path.
package refinterp

import (
	"fmt"

	"chimera/internal/schedule"
)

// depKey identifies the data token produced by an op for one micro-batch
// (half identifies half-micro-batch backward chains under backward halving).
type depKey struct {
	kind  schedule.Kind
	micro int
	stage int
	half  uint8
}

// doneInfo records when and where a data token was produced.
type doneInfo struct {
	end    int64
	worker int
}

// opCost mirrors Schedule.opCost for the uniform cost models, honouring the
// forward-doubling and backward-halving variants.
func opCost(o schedule.Op, cm schedule.CostModel) int64 {
	if o.Kind == schedule.Forward {
		return cm.FUnit * int64(len(o.Micros))
	}
	c := cm.BUnit * int64(len(o.Micros))
	if o.Half != 0 {
		c = (c + 1) / 2
	}
	return c
}

// Replay is ReplayWith under a uniform cost model (the reference twin of
// Schedule.Replay).
func Replay(s *schedule.Schedule, cm schedule.CostModel) (*schedule.Timeline, error) {
	return ReplayWith(s, schedule.ReplayConfig{
		OpCost:   func(_ int, op schedule.Op) int64 { return opCost(op, cm) },
		EdgeCost: func(schedule.Op) int64 { return cm.P2P },
	})
}

// ReplayWith is the reference interpreter: each worker executes its op list
// strictly in order; an op starts when the worker is free and all its data
// dependencies have completed, plus edge cost for cross-worker edges.
// Dependency tokens are resolved through a map on every call.
func ReplayWith(s *schedule.Schedule, rc schedule.ReplayConfig) (*schedule.Timeline, error) {
	tl := &schedule.Timeline{
		Start:    make([][]int64, s.D),
		End:      make([][]int64, s.D),
		BusyTime: make([]int64, s.D),
	}
	for w := range tl.Start {
		tl.Start[w] = make([]int64, len(s.Workers[w]))
		tl.End[w] = make([]int64, len(s.Workers[w]))
	}
	// finished[token] = (end time, worker) of the producing op.
	finished := make(map[depKey]doneInfo)
	ptr := make([]int, s.D)
	free := make([]int64, s.D)
	remaining := s.OpsTotal()
	for remaining > 0 {
		progress := false
		for w := 0; w < s.D; w++ {
			for ptr[w] < len(s.Workers[w]) {
				op := s.Workers[w][ptr[w]]
				ready, ok := opReady(s, op, w, finished, rc)
				if !ok {
					break
				}
				start := ready
				if free[w] > start {
					start = free[w]
				}
				end := start + rc.OpCost(w, op)
				i := ptr[w]
				tl.Start[w][i], tl.End[w][i] = start, end
				tl.BusyTime[w] += end - start
				free[w] = end
				for _, m := range op.Micros {
					finished[depKey{op.Kind, m, op.Stage, op.Half}] = doneInfo{end, w}
				}
				ptr[w]++
				remaining--
				progress = true
				if end > tl.Makespan {
					tl.Makespan = end
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("schedule %q (D=%d N=%d): deadlock with %d ops unscheduled; next ops: %s",
				s.Scheme, s.D, s.N, remaining, describeBlocked(s, ptr))
		}
	}
	return tl, nil
}

// opReady reports whether all dependencies of op are satisfied and the
// earliest start time implied by them.
func opReady(s *schedule.Schedule, op schedule.Op, w int, finished map[depKey]doneInfo, rc schedule.ReplayConfig) (int64, bool) {
	var ready int64
	need := func(k depKey) bool {
		d, ok := finished[k]
		if !ok {
			return false
		}
		t := d.end
		if d.worker != w {
			t += rc.EdgeCost(op)
		}
		if t > ready {
			ready = t
		}
		return true
	}
	for _, m := range op.Micros {
		switch {
		case op.Kind == schedule.Forward && op.Stage > 0:
			if !need(depKey{schedule.Forward, m, op.Stage - 1, 0}) {
				return 0, false
			}
		case op.Kind == schedule.Backward && op.Stage == s.D-1:
			if !need(depKey{schedule.Forward, m, op.Stage, 0}) {
				return 0, false
			}
		case op.Kind == schedule.Backward:
			if !need(depKey{schedule.Backward, m, op.Stage + 1, op.Half}) {
				return 0, false
			}
		}
	}
	return ready, true
}

func describeBlocked(s *schedule.Schedule, ptr []int) string {
	out := ""
	for w := 0; w < s.D; w++ {
		if ptr[w] < len(s.Workers[w]) {
			out += fmt.Sprintf(" w%d:%s", w, s.Workers[w][ptr[w]])
		}
	}
	return out
}

// CriticalPath is the reference twin of schedule.CriticalPath: the Eq. 1
// (Cf, Cb) probe evaluated with the map interpreter.
func CriticalPath(s *schedule.Schedule) (cf, cb int, err error) {
	m1, err := span(s, 100, 200)
	if err != nil {
		return 0, 0, err
	}
	m2, err := span(s, 101, 200)
	if err != nil {
		return 0, 0, err
	}
	cf = int(m2 - m1)
	cb = int((m1 - int64(cf)*100) / 200)
	return cf, cb, nil
}

func span(s *schedule.Schedule, f, b int64) (int64, error) {
	tl, err := Replay(s, schedule.CostModel{FUnit: f, BUnit: b})
	if err != nil {
		return 0, err
	}
	return tl.Makespan, nil
}
