package model

import (
	"math"
	"testing"
)

// TestParamCountsMatchTable4 pins the model zoo to the paper's Table 4
// parameter counts within 2% (exact layer-internal bookkeeping differs
// between implementations; the pipeline behaviour depends only on scale).
func TestParamCountsMatchTable4(t *testing.T) {
	cases := []struct {
		cfg   Config
		paper int64
	}{
		{BERT48(), 669_790_012},
		{GPT2(), 1_389_327_360},
	}
	for _, c := range cases {
		got := c.cfg.TotalParams()
		rel := math.Abs(float64(got-c.paper)) / float64(c.paper)
		if rel > 0.02 {
			t.Errorf("%s: %d params, paper says %d (%.1f%% off)", c.cfg.Name, got, c.paper, rel*100)
		}
	}
}

func TestPartitionEvenAndDecorated(t *testing.T) {
	cfg := GPT2()
	stages, err := cfg.Partition(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 16 {
		t.Fatalf("got %d stages", len(stages))
	}
	var total int64
	for i, s := range stages {
		if s.Layers != 4 {
			t.Fatalf("stage %d has %d layers", i, s.Layers)
		}
		if s.Embedding != (i == 0) || s.Head != (i == 15) {
			t.Fatalf("stage %d embedding/head flags wrong", i)
		}
		total += s.Params()
	}
	if total != cfg.TotalParams() {
		t.Fatalf("stage params sum %d != total %d", total, cfg.TotalParams())
	}
}

func TestPartitionRejectsUneven(t *testing.T) {
	if _, err := BERT48().Partition(5); err == nil {
		t.Fatal("48 layers into 5 stages should fail")
	}
	if _, err := BERT48().Partition(0); err == nil {
		t.Fatal("zero stages should fail")
	}
}

// TestDoubleImbalance checks the §4.1 premise: stage 0 is the
// weight-heaviest stage (embedding) for realistic depths.
func TestDoubleImbalance(t *testing.T) {
	for _, d := range []int{8, 16, 32} {
		stages, err := GPT2().Partition(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < d-1; i++ {
			if stages[0].Params() <= stages[i].Params() {
				t.Errorf("D=%d: stage0 (%d) not heavier than stage %d (%d)",
					d, stages[0].Params(), i, stages[i].Params())
			}
		}
	}
}

func TestActivationBytesScaleLinearlyInB(t *testing.T) {
	stages, _ := BERT48().Partition(4)
	s := stages[1]
	a1 := s.ActivationBytes(1)
	a8 := s.ActivationBytes(8)
	if a8 != 8*a1 {
		t.Fatalf("activations not linear in B: %d vs 8×%d", a8, a1)
	}
	if a1 <= 0 {
		t.Fatal("activation bytes must be positive")
	}
}

func TestHeadStageStoresLogits(t *testing.T) {
	stages, _ := GPT2().Partition(8)
	mid, last := stages[3], stages[7]
	if last.ActivationBytes(1) <= mid.ActivationBytes(1) {
		t.Fatal("head stage should store extra logits activations")
	}
}

func TestFLOPsMonotonicAndHeadHeavy(t *testing.T) {
	stages, _ := GPT2().Partition(8)
	mid := stages[2]
	if mid.FwdFLOPs(2) != 2*mid.FwdFLOPs(1) {
		t.Fatal("FLOPs must scale linearly in B")
	}
	if stages[7].FwdFLOPs(1) <= mid.FwdFLOPs(1) {
		t.Fatal("head stage adds vocabulary projection FLOPs")
	}
	if mid.BwdFLOPs(1, false) != 2*mid.FwdFLOPs(1) {
		t.Fatal("backward = 2× forward")
	}
	if mid.BwdFLOPs(1, true) != 3*mid.FwdFLOPs(1) {
		t.Fatal("backward with recompute = 3× forward")
	}
}

func TestBoundaryBytes(t *testing.T) {
	cfg := BERT48()
	want := int64(4) * int64(cfg.SeqLen) * int64(cfg.Hidden) * 4
	if got := cfg.BoundaryBytes(4); got != want {
		t.Fatalf("boundary bytes %d want %d", got, want)
	}
}

func TestWeightBytesUseTrainingState(t *testing.T) {
	stages, _ := BERT48().Partition(48)
	s := stages[1]
	if s.WeightBytes() != s.Params()*BytesPerParamTraining {
		t.Fatal("weight bytes must include gradient and momentum state")
	}
}

// TestMemoryScaleSanity: a 16 GB device must fit a few micro-batches of one
// GPT-2 stage at D=32 but not hundreds — the regime the paper's Figure 9
// operates in.
func TestMemoryScaleSanity(t *testing.T) {
	stages, _ := GPT2().Partition(32)
	s := stages[16]
	const device = 16 << 30
	perMB := s.ActivationBytes(1)
	if perMB*4 > device {
		t.Fatalf("4 micro-batches (%d bytes) should fit in 16 GB", perMB*4)
	}
	if perMB*500 < device {
		t.Fatalf("500 micro-batches (%d bytes) should overflow 16 GB", perMB*500)
	}
}

func TestBERT48Seq512Variant(t *testing.T) {
	a, b := BERT48(), BERT48Seq512()
	if b.SeqLen != 512 || a.SeqLen != 128 {
		t.Fatal("sequence variants wrong")
	}
	// Longer sequences mean larger boundary tensors and more attention
	// activations per token.
	if b.BoundaryBytes(1) <= a.BoundaryBytes(1) {
		t.Fatal("boundary bytes must grow with sequence length")
	}
	sa, _ := a.Partition(4)
	sb, _ := b.Partition(4)
	if sb[1].ActivationBytes(1) <= sa[1].ActivationBytes(1) {
		t.Fatal("activation bytes must grow with sequence length")
	}
}

func TestGPT2Small32Scale(t *testing.T) {
	small, big := GPT2Small32(), GPT2()
	if small.Layers != 32 || big.Layers != 64 {
		t.Fatal("layer counts")
	}
	if small.TotalParams() >= big.TotalParams() {
		t.Fatal("32-layer model must be smaller")
	}
}

func TestEmbeddingStageActivationExtra(t *testing.T) {
	stages, _ := GPT2().Partition(8)
	if stages[0].ActivationBytes(1) <= stages[1].ActivationBytes(1) {
		t.Fatal("embedding stage stores the embedded input activations")
	}
}
