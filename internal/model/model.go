// Package model provides the transformer model zoo of the paper's
// evaluation (Table 4: BERT-48 and a 64-layer GPT-2, plus the 32-layer
// GPT-2 of Fig. 19) together with the accounting the simulator and planner
// need: per-stage parameter counts, activation footprints, and FLOP counts.
//
// The counts use the standard transformer formulas: 12h²+13h parameters per
// layer, untied input/output embeddings, and the activation-per-token
// estimate 34h + 5·a·T floats per layer (attention scores and probabilities
// included), which reproduces the paper's memory behaviour — most
// importantly the "double imbalance" of §4.1: the first stage is
// weight-heavy (embedding) exactly where 1F1B schedules are
// activation-heavy.
package model

import "fmt"

// Config describes a repetitive-structure transformer language model.
type Config struct {
	Name   string
	Layers int
	Hidden int
	Heads  int
	Vocab  int
	// SeqLen is the maximum sequence length used in the evaluation.
	SeqLen int
}

// BERT48 is the paper's Bert-48: 48 layers, ≈670M parameters, sequence 128.
func BERT48() Config {
	return Config{Name: "Bert-48", Layers: 48, Hidden: 1024, Heads: 16, Vocab: 30522, SeqLen: 128}
}

// BERT48Seq512 is Bert-48 with sequence length 512 (Fig. 16's V100 runs).
func BERT48Seq512() Config {
	c := BERT48()
	c.SeqLen = 512
	return c
}

// GPT2 is the paper's 64-layer GPT-2 with ≈1.39B parameters, sequence 632.
func GPT2() Config {
	return Config{Name: "GPT-2", Layers: 64, Hidden: 1280, Heads: 16, Vocab: 50257, SeqLen: 632}
}

// GPT2Small32 is the 32-layer GPT-2 used in Figs. 9 and 19.
func GPT2Small32() Config {
	c := GPT2()
	c.Name = "GPT-2-32"
	c.Layers = 32
	return c
}

// LayerParams returns the parameter count of one transformer layer:
// attention (4h²+4h) + MLP (8h²+5h) + two layernorms (4h).
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns token + positional embedding parameters.
func (c Config) EmbeddingParams() int64 {
	return int64(c.Vocab)*int64(c.Hidden) + int64(c.SeqLen)*int64(c.Hidden)
}

// HeadParams returns the output projection (untied LM head) parameters.
func (c Config) HeadParams() int64 {
	return int64(c.Vocab) * int64(c.Hidden)
}

// TotalParams returns the full model parameter count.
func (c Config) TotalParams() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams() + c.HeadParams()
}

// Stage describes one pipeline stage after partitioning.
type Stage struct {
	Index     int
	Layers    int
	Embedding bool // first stage carries the embedding tables
	Head      bool // last stage carries the LM head
	cfg       Config
}

// Partition splits the model into d stages with an equal number of layers
// (the paper's setting: repetitive structures partition into balanced
// stages; the embedding joins stage 0 and the head the last stage, which is
// what creates the weight imbalance discussed in §4.1).
func (c Config) Partition(d int) ([]Stage, error) {
	if d < 1 {
		return nil, fmt.Errorf("model: D must be ≥ 1, got %d", d)
	}
	if c.Layers%d != 0 {
		return nil, fmt.Errorf("model: %d layers do not split evenly into %d stages", c.Layers, d)
	}
	out := make([]Stage, d)
	for i := range out {
		out[i] = Stage{Index: i, Layers: c.Layers / d, Embedding: i == 0, Head: i == d-1, cfg: c}
	}
	return out, nil
}

// Params returns the stage's parameter count.
func (s Stage) Params() int64 {
	p := int64(s.Layers) * s.cfg.LayerParams()
	if s.Embedding {
		p += s.cfg.EmbeddingParams()
	}
	if s.Head {
		p += s.cfg.HeadParams()
	}
	return p
}

// BytesPerParamTraining is the training-state footprint per parameter:
// fp32 weight + fp32 gradient + fp32 momentum (SGD with momentum, as in the
// paper's PyTorch/GLOO setup).
const BytesPerParamTraining = 12

// WeightBytes returns the training-state bytes of one replica of this stage.
func (s Stage) WeightBytes() int64 { return s.Params() * BytesPerParamTraining }

// actFloatsPerToken estimates stored forward activations per token per
// layer: 34h + 5·a·T floats (hidden streams plus attention score and
// probability matrices).
func (c Config) actFloatsPerToken() int64 {
	return 34*int64(c.Hidden) + 5*int64(c.Heads)*int64(c.SeqLen)
}

// ActivationBytes returns the stored-activation bytes of one micro-batch of
// size b passing through this stage (fp32).
func (s Stage) ActivationBytes(b int) int64 {
	tokens := int64(b) * int64(s.cfg.SeqLen)
	bytes := tokens * s.cfg.actFloatsPerToken() * 4 * int64(s.Layers)
	if s.Head {
		// Logits kept for the loss backward.
		bytes += tokens * int64(s.cfg.Vocab) * 4
	}
	if s.Embedding {
		bytes += tokens * int64(s.cfg.Hidden) * 4
	}
	return bytes
}

// BoundaryBytes returns the bytes of the activation tensor crossing a stage
// boundary for a micro-batch of size b (what p2p transfers carry, and what
// recomputation must keep resident per in-flight micro-batch).
func (c Config) BoundaryBytes(b int) int64 {
	return int64(b) * int64(c.SeqLen) * int64(c.Hidden) * 4
}

// FwdFLOPs returns the forward FLOPs of one micro-batch of size b through
// this stage: ≈ 2·params·tokens per layer plus attention's 2·2·T²·h·b and
// the head/embedding matmuls.
func (s Stage) FwdFLOPs(b int) int64 {
	tokens := int64(b) * int64(s.cfg.SeqLen)
	h := int64(s.cfg.Hidden)
	perLayer := 2*s.cfg.LayerParams()*tokens + 4*int64(s.cfg.SeqLen)*int64(s.cfg.SeqLen)*h*int64(b)
	fl := perLayer * int64(s.Layers)
	if s.Head {
		fl += 2 * tokens * int64(s.cfg.Vocab) * h
	}
	return fl
}

// BwdFLOPs returns the backward FLOPs (2× forward; 3× with recomputation).
func (s Stage) BwdFLOPs(b int, recompute bool) int64 {
	f := s.FwdFLOPs(b)
	if recompute {
		return 3 * f
	}
	return 2 * f
}
