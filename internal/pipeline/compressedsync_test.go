package pipeline

import (
	"math"
	"testing"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/schedule"
)

func compressedTrainer(t *testing.T, kind CompressionKind, ratio float64) *Trainer {
	t.Helper()
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{
		Schedule: s, W: 2, Spec: tinySpec, MicroBatch: 1,
		NewOptimizer: func() optim.Optimizer { return &optim.Momentum{LR: 0.05, Mu: 0.9} },
		Compression:  kind, TopKRatio: ratio,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCompressedSyncConvergesInt8: 8-bit gradient exchange still trains.
func TestCompressedSyncConvergesInt8(t *testing.T) {
	tr := compressedTrainer(t, CompressInt8, 0)
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 51).Next(1 * 4 * 2)
	first, err := tr.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 10; i++ {
		last, err = tr.TrainIteration(batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("int8-compressed training did not reduce loss: %v → %v", first, last)
	}
}

// TestCompressedSyncReplicaConsistency: lossy but deterministic — all
// holders of a stage remain bitwise identical.
func TestCompressedSyncReplicaConsistency(t *testing.T) {
	for _, kind := range []CompressionKind{CompressInt8, CompressTopK} {
		tr := compressedTrainer(t, kind, 0.25)
		stream := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 52)
		for i := 0; i < 3; i++ {
			if _, err := tr.TrainIteration(stream.Next(1 * 4 * 2)); err != nil {
				t.Fatal(err)
			}
		}
		for st := 0; st < 4; st++ {
			w0 := tr.StageWeights(st, 0)
			for h := 1; h < tr.HolderCount(st); h++ {
				wh := tr.StageWeights(st, h)
				for i := range w0 {
					if w0[i] != wh[i] {
						t.Fatalf("kind=%d stage %d holder %d diverged", kind, st, h)
					}
				}
			}
		}
	}
}

// TestCompressedGradCloseToExact: int8-synchronized gradients approximate
// the exact allreduce within the quantization error bound.
func TestCompressedGradCloseToExact(t *testing.T) {
	mk := func(kind CompressionKind) *Trainer {
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: 2, N: 2})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := New(Config{Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 2, Compression: kind})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 53).Next(2 * 2)
	exact := mk(CompressNone)
	lossy := mk(CompressInt8)
	if _, err := exact.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := lossy.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 2; st++ {
		ge, gl := exact.StageGrads(st), lossy.StageGrads(st)
		var worst, scale float64
		for i := range ge {
			if d := math.Abs(float64(ge[i] - gl[i])); d > worst {
				worst = d
			}
			if a := math.Abs(float64(ge[i])); a > scale {
				scale = a
			}
		}
		// Error bounded by the summed per-member quantization steps —
		// loose bound: 2% of the gradient magnitude scale.
		if worst > 0.02*scale+1e-6 {
			t.Errorf("stage %d: compressed grad error %v vs scale %v", st, worst, scale)
		}
	}
}

// TestCompressionRejectsEagerSync: lossy sync is post-hoc only.
func TestCompressionRejectsEagerSync(t *testing.T) {
	s, _ := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	_, err := New(Config{Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 1,
		Compression: CompressInt8, EagerSync: true})
	if err == nil {
		t.Fatal("compression + eager sync must be rejected")
	}
}
