package pipeline

import (
	"chimera/internal/collective"
	"chimera/internal/comm"
	"chimera/internal/nn"
	"chimera/internal/optim"
)

// shardedStep implements a ZeRO-1-style optimizer step (Rajbhandari et al.,
// cited as orthogonal future work in the paper's §2): after the gradient
// allreduce, each of the r holders of a stage updates only its 1/r shard of
// the parameters (keeping optimizer state only for that shard) and the
// updated values are allgathered. Because the synchronized gradients are
// identical on all holders, the result is bitwise the unsharded update.
//
// vecLen is padded to a multiple of the group size so AllGather can operate
// on equal contributions.
func shardedStep(c *comm.Communicator, g collective.Group, opt optim.Optimizer, stage *nn.Stage) {
	r := g.Size()
	if r == 1 {
		opt.Step(stage.Params())
		return
	}
	me := g.Index(c.Rank())
	weights := stage.WeightVector()
	grads := stage.GradVector()
	n := len(weights)
	shard := (n + r - 1) / r
	lo := me * shard
	hi := lo + shard
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	// Zero gradients outside the local shard so the optimizer (whose state
	// is keyed per parameter tensor) only evolves the owned entries.
	masked := make([]float32, n)
	copy(masked[lo:hi], grads[lo:hi])
	stage.SetGradVector(masked)
	opt.Step(stage.Params())
	updated := stage.WeightVector()

	// Allgather the updated shards (padded to equal length).
	contrib := make([]float32, shard)
	copy(contrib, updated[lo:hi])
	out := make([]float32, shard*r)
	collective.AllGather(c, g, 48, contrib, out)
	full := make([]float32, n)
	copy(full, out[:n])
	stage.SetWeightVector(full)
	// Restore the full gradient vector (callers may inspect it).
	stage.SetGradVector(grads)
}
