package pipeline

import (
	"math"
	"testing"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/schedule"
)

var tinySpec = ModelSpec{Vocab: 17, Dim: 8, Heads: 2, SeqLen: 4, Layers: 4, Seed: 7}

func tinyBatch(t *testing.T, sequences int) *data.Batch {
	t.Helper()
	return data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 42).Next(sequences)
}

func mustTrainer(t *testing.T, sched *schedule.Schedule, w, b int, eager bool) *Trainer {
	t.Helper()
	tr, err := New(Config{Schedule: sched, W: w, Spec: tinySpec, MicroBatch: b, EagerSync: eager})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func maxDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// checkEquivalence runs one iteration of the distributed schedule and the
// sequential reference on identical data, then compares the synchronized
// per-stage gradients and the post-step weights.
func checkEquivalence(t *testing.T, sched *schedule.Schedule, w, b int, eager bool) {
	t.Helper()
	tr := mustTrainer(t, sched, w, b, eager)
	ref, err := NewReference(tinySpec, sched.D, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch(t, b*sched.N*w)
	lossDist, err := tr.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	lossRef, err := ref.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossDist-lossRef) > 1e-4 {
		t.Fatalf("%s: loss %v vs reference %v", sched.Scheme, lossDist, lossRef)
	}
	for st := 0; st < sched.D; st++ {
		if d := maxDiff(tr.StageGrads(st), ref.StageGrads(st)); d > 1e-4 {
			t.Errorf("%s: stage %d gradient diff %v vs sequential SGD", sched.Scheme, st, d)
		}
		if d := maxDiff(tr.StageWeights(st, 0), ref.StageWeights(st)); d > 1e-4 {
			t.Errorf("%s: stage %d weight diff %v after step", sched.Scheme, st, d)
		}
	}
}

// TestSynchronousEquivalenceChimera is the core convergence claim: Chimera
// training ≡ sequential mini-batch SGD.
func TestSynchronousEquivalenceChimera(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, s, 1, 2, false)
}

// TestSynchronousEquivalenceAllSchemes extends the check to every
// synchronous baseline at D=4, N=4.
func TestSynchronousEquivalenceAllSchemes(t *testing.T) {
	for _, name := range []string{"gpipe", "dapple", "gems", "1f1b"} {
		s, err := schedule.ByName(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, s, 1, 2, false)
	}
}

// TestEquivalenceWithDataParallelism covers the hybrid W>1 case (§3.3):
// gradient allreduce across pipeline copies preserves equivalence.
func TestEquivalenceWithDataParallelism(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, s, 2, 2, false)
}

// TestEquivalenceEagerSync covers the §3.2 eager synchronization path.
func TestEquivalenceEagerSync(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, s, 1, 2, true)
}

// TestEquivalenceDirectConcat covers N > D direct concatenation.
func TestEquivalenceDirectConcat(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: schedule.Direct})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, s, 1, 1, false)
}

// TestEquivalenceRecompute: activation recomputation must not change
// gradients.
func TestEquivalenceRecompute(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 2, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReference(tinySpec, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch(t, 2*4)
	if _, err := tr.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 4; st++ {
		if d := maxDiff(tr.StageGrads(st), ref.StageGrads(st)); d > 1e-4 {
			t.Errorf("recompute stage %d grad diff %v", st, d)
		}
	}
}

// TestReplicaWeightConsistency: after iterations, all holders of a stage
// must have identical weights (deterministic collectives + optimizers).
func TestReplicaWeightConsistency(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTrainer(t, s, 2, 1, false)
	stream := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 3)
	for i := 0; i < 3; i++ {
		if _, err := tr.TrainIteration(stream.Next(1 * 4 * 2)); err != nil {
			t.Fatal(err)
		}
	}
	for st := 0; st < 4; st++ {
		w0 := tr.StageWeights(st, 0)
		for h := 1; h < tr.HolderCount(st); h++ {
			if d := maxDiff(w0, tr.StageWeights(st, h)); d != 0 {
				t.Errorf("stage %d holder %d diverged by %v", st, h, d)
			}
		}
	}
}

// TestLossDecreasesUnderChimera: end-to-end training sanity over several
// iterations with momentum.
func TestLossDecreasesUnderChimera(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{
		Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 2,
		NewOptimizer: func() optim.Optimizer { return &optim.Momentum{LR: 0.05, Mu: 0.9} },
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 11)
	batch := stream.Next(2 * 4)
	first, err := tr.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 12; i++ {
		last, err = tr.TrainIteration(batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

// TestChimeraF2Runtime: the generalized four-pipeline construction also
// trains equivalently (D=4, f=2 — four model replicas).
func TestChimeraF2Runtime(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, s, 1, 1, false)
}

// TestTrainerRejections covers constructor validation.
func TestTrainerRejections(t *testing.T) {
	dbl, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: schedule.ForwardDoubling})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Schedule: dbl, W: 1, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("doubling schedules must be rejected by the runtime")
	}
	async, _ := schedule.ByName("pipedream", 4, 4)
	if _, err := New(Config{Schedule: async, W: 1, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("asynchronous schedules must be rejected by the runtime")
	}
	if _, err := New(Config{Schedule: nil, W: 1, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("nil schedule must be rejected")
	}
	s, _ := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	badSpec := tinySpec
	badSpec.Layers = 6 // not divisible by D=4
	if _, err := New(Config{Schedule: s, W: 1, Spec: badSpec, MicroBatch: 1}); err == nil {
		t.Error("indivisible layer count must be rejected")
	}
}

// TestBatchSizeValidation: the trainer checks B·N·W.
func TestBatchSizeValidation(t *testing.T) {
	s, _ := schedule.Chimera(schedule.ChimeraConfig{D: 2, N: 2})
	tr := mustTrainer(t, s, 1, 2, false)
	if _, err := tr.TrainIteration(tinyBatch(t, 3)); err == nil {
		t.Fatal("wrong batch size must error")
	}
}
