package pipeline

import (
	"fmt"
	"sync"

	"chimera/internal/collective"
	"chimera/internal/comm"
	"chimera/internal/data"
	"chimera/internal/nn"
	"chimera/internal/optim"
	"chimera/internal/schedule"
	"chimera/internal/tensor"
)

// AsyncTrainer executes PipeDream-style asynchronous pipeline training with
// weight stashing: the model updates after every micro-batch's backward
// pass, and each in-flight micro-batch's backward uses the weight version
// its forward saw (version consistency, Narayanan et al. 2019). Up to
// min(N, D−p) versions are stashed on worker p — exactly the Table 2
// memory interval, observable through MaxStashDepth.
//
// Asynchrony means the result is NOT mini-batch SGD: gradients apply to
// weights that have since moved (staleness). The tests use this as the
// negative control for the synchronous-equivalence property.
type AsyncTrainer struct {
	cfg    AsyncConfig
	d      int
	world  *comm.World
	stages []*nn.Stage
	opts   []optim.Optimizer
	// maxStash records the deepest version stash seen per worker.
	maxStash []int
	iter     int
}

// AsyncConfig configures an AsyncTrainer.
type AsyncConfig struct {
	// Schedule must be a PipeDream schedule (asynchronous 1F1B).
	Schedule *schedule.Schedule
	// W is the data-parallel width; gradients are allreduced across the W
	// pipeline copies after every micro-batch, PipeDream's costly default.
	W          int
	Spec       ModelSpec
	MicroBatch int
	// NewOptimizer constructs per-stage optimizers.
	NewOptimizer func() optim.Optimizer
}

// NewAsyncTrainer builds the weight-stashing runtime.
func NewAsyncTrainer(cfg AsyncConfig) (*AsyncTrainer, error) {
	s := cfg.Schedule
	if s == nil || s.Synchronous {
		return nil, fmt.Errorf("pipeline: AsyncTrainer needs an asynchronous (pipedream) schedule")
	}
	if len(s.Replicas) != 1 {
		return nil, fmt.Errorf("pipeline: AsyncTrainer supports single-replica schedules")
	}
	if cfg.W < 1 {
		return nil, fmt.Errorf("pipeline: W must be ≥1")
	}
	if err := cfg.Spec.Validate(s.D); err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() optim.Optimizer { return &optim.SGD{LR: 0.1} }
	}
	t := &AsyncTrainer{
		cfg:      cfg,
		d:        s.D,
		world:    comm.NewWorld(cfg.W * s.D),
		maxStash: make([]int, cfg.W*s.D),
	}
	for copyIdx := 0; copyIdx < cfg.W; copyIdx++ {
		for w := 0; w < s.D; w++ {
			st := buildStage(cfg.Spec, s.D, w)
			t.stages = append(t.stages, st)
			t.opts = append(t.opts, cfg.NewOptimizer())
		}
	}
	return t, nil
}

// TrainIteration runs one window of N micro-batches per worker. Returns the
// mean loss over the window.
func (t *AsyncTrainer) TrainIteration(batch *data.Batch) (float64, error) {
	s := t.cfg.Schedule
	need := t.cfg.MicroBatch * s.N * t.cfg.W
	if batch.Sequences() != need {
		return 0, fmt.Errorf("pipeline: batch has %d sequences, need %d", batch.Sequences(), need)
	}
	lossCh := make(chan float64, t.cfg.W*t.d)
	errCh := make(chan error, t.cfg.W*t.d)
	var wg sync.WaitGroup
	for copyIdx := 0; copyIdx < t.cfg.W; copyIdx++ {
		for w := 0; w < t.d; w++ {
			wg.Add(1)
			go func(copyIdx, w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errCh <- fmt.Errorf("async worker (%d,%d): %v", copyIdx, w, r)
					}
				}()
				lossCh <- t.runWorker(copyIdx, w, batch)
			}(copyIdx, w)
		}
	}
	wg.Wait()
	close(lossCh)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	t.iter++
	var total float64
	for l := range lossCh {
		total += l
	}
	return total / float64(s.N*t.cfg.W), nil
}

func (t *AsyncTrainer) runWorker(copyIdx, w int, batch *data.Batch) float64 {
	s := t.cfg.Schedule
	rank := copyIdx*t.d + w
	c := t.world.Rank(rank)
	stage := t.stages[rank]
	opt := t.opts[rank]
	b := t.cfg.MicroBatch
	rows := b * t.cfg.Spec.SeqLen
	dim := t.cfg.Spec.Dim

	stash := make(map[int][]float32)
	dlogits := make(map[int]*tensor.Tensor)
	var lossSum float64
	tagOf := func(kind schedule.Kind, m, st int) int {
		k := 0
		if kind == schedule.Backward {
			k = 1
		}
		return ((t.iter%2)*(1<<20) + (m*(t.d+1)+st)<<1) | k
	}
	group := t.dataParallelGroup(w)

	for _, op := range s.Workers[w] {
		m := op.Micro()
		globalM := copyIdx*s.N + m
		switch op.Kind {
		case schedule.Forward:
			// Stash the weight version this micro-batch's forward uses; the
			// backward must see the same version (PipeDream's consistency).
			stash[m] = stage.WeightVector()
			if len(stash) > t.maxStash[rank] {
				t.maxStash[rank] = len(stash)
			}
			var x *tensor.Tensor
			if op.Stage == 0 {
				mb := batch.MicroBatch(globalM*b, (globalM+1)*b)
				x = tensor.FromSlice(mb.FlatTokens(), rows)
			} else {
				payload := c.Recv(copyIdx*t.d+op.Stage-1, tagOf(schedule.Forward, m, op.Stage))
				x = tensor.FromSlice(payload, rows, dim)
			}
			y := stage.Forward(m, x)
			if op.Stage == s.D-1 {
				mb := batch.MicroBatch(globalM*b, (globalM+1)*b)
				loss, dl := nn.CrossEntropy(y.Reshape(rows, t.cfg.Spec.Vocab), mb.FlatTargets(), 1)
				lossSum += loss
				dlogits[m] = dl
			} else {
				c.Send(copyIdx*t.d+op.Stage+1, tagOf(schedule.Forward, m, op.Stage+1), y.Data)
			}
		case schedule.Backward:
			var dy *tensor.Tensor
			if op.Stage == s.D-1 {
				dy = dlogits[m]
				delete(dlogits, m)
			} else {
				payload := c.Recv(copyIdx*t.d+op.Stage+1, tagOf(schedule.Backward, m, op.Stage))
				dy = tensor.FromSlice(payload, rows, dim)
			}
			// Swap in the stashed version for the gradient computation.
			current := stage.WeightVector()
			stage.SetWeightVector(stash[m])
			delete(stash, m)
			stage.ZeroGrads()
			dx := stage.Backward(m, dy)
			stage.SetWeightVector(current)
			if op.Stage > 0 {
				c.Send(copyIdx*t.d+op.Stage-1, tagOf(schedule.Backward, m, op.Stage-1), dx.Data)
			}
			// PipeDream updates after every micro-batch backward,
			// synchronizing across the W pipeline copies.
			if t.cfg.W > 1 {
				vec := stage.GradVector()
				collective.AllReduce(c, group, m%32, vec, collective.Ring)
				for i := range vec {
					vec[i] /= float32(t.cfg.W)
				}
				stage.SetGradVector(vec)
			}
			opt.Step(stage.Params())
		}
	}
	c.Barrier()
	return lossSum
}

// dataParallelGroup returns the ranks holding stage w across the W copies.
func (t *AsyncTrainer) dataParallelGroup(w int) collective.Group {
	var ranks []int
	for copyIdx := 0; copyIdx < t.cfg.W; copyIdx++ {
		ranks = append(ranks, copyIdx*t.d+w)
	}
	return collective.NewGroup(ranks...)
}

// MaxStashDepth returns the deepest weight-version stash observed on each
// worker — PipeDream's [Mθ, D·Mθ] weight memory in version counts.
func (t *AsyncTrainer) MaxStashDepth() []int {
	out := make([]int, len(t.maxStash))
	copy(out, t.maxStash)
	return out
}

// StageWeights returns worker w's current weights (copy 0).
func (t *AsyncTrainer) StageWeights(w int) []float32 { return t.stages[w].WeightVector() }
