package pipeline

import (
	"math"
	"testing"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/schedule"
)

// TestZeROShardedStepMatchesUnsharded: the sharded optimizer must produce
// the exact weights of the plain path (ZeRO-1 is a memory optimization, not
// an algorithm change).
func TestZeROShardedStepMatchesUnsharded(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	newOpt := func() optim.Optimizer { return &optim.Momentum{LR: 0.05, Mu: 0.9} }
	mk := func(shard bool) *Trainer {
		tr, err := New(Config{
			Schedule: s, W: 2, Spec: tinySpec, MicroBatch: 1,
			NewOptimizer: newOpt, ZeROShard: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain, sharded := mk(false), mk(true)
	stream := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 77)
	for i := 0; i < 3; i++ {
		batch := stream.Next(1 * 4 * 2)
		lp, err := plain.TrainIteration(batch)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := sharded.TrainIteration(batch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lp-ls) > 1e-7 {
			t.Fatalf("iter %d: losses diverge %v vs %v", i, lp, ls)
		}
	}
	for st := 0; st < 4; st++ {
		a, b := plain.StageWeights(st, 0), sharded.StageWeights(st, 0)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("stage %d weight %d: sharded %v != plain %v", st, i, b[i], a[i])
			}
		}
	}
}

// TestZeROShardedHoldersStayConsistent: all holders agree after sharded
// updates (each owned a different shard; allgather reassembles all).
func TestZeROShardedHoldersStayConsistent(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Schedule: s, W: 2, Spec: tinySpec, MicroBatch: 1, ZeROShard: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 78).Next(1 * 4 * 2)
	if _, err := tr.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 4; st++ {
		w0 := tr.StageWeights(st, 0)
		for h := 1; h < tr.HolderCount(st); h++ {
			wh := tr.StageWeights(st, h)
			for i := range w0 {
				if w0[i] != wh[i] {
					t.Fatalf("stage %d holder %d diverged at %d", st, h, i)
				}
			}
		}
	}
}
