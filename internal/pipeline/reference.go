package pipeline

import (
	"chimera/internal/data"
	"chimera/internal/nn"
	"chimera/internal/optim"
	"chimera/internal/tensor"
)

// Reference is the sequential mini-batch SGD baseline: one model copy on
// one "worker", iterating micro-batches in order. Synchronous pipeline
// schedules must produce the same gradients and weights (up to floating
// point reassociation) — the paper's convergence-friendliness claim made
// executable.
type Reference struct {
	spec   ModelSpec
	d      int
	stages []*nn.Stage
	opt    []optim.Optimizer
	b      int
}

// NewReference builds the sequential baseline with the same stage-wise
// initialization as a Trainer with the given spec and depth.
func NewReference(spec ModelSpec, d, microBatch int, newOpt func() optim.Optimizer) (*Reference, error) {
	if err := spec.Validate(d); err != nil {
		return nil, err
	}
	if newOpt == nil {
		newOpt = func() optim.Optimizer { return &optim.SGD{LR: 0.1} }
	}
	r := &Reference{spec: spec, d: d, b: microBatch}
	for st := 0; st < d; st++ {
		r.stages = append(r.stages, buildStage(spec, d, st))
		r.opt = append(r.opt, newOpt())
	}
	return r, nil
}

// TrainIteration consumes a whole mini-batch (any multiple of the
// micro-batch size), accumulating gradients micro-batch by micro-batch and
// applying one optimizer step. Returns the mean loss.
func (r *Reference) TrainIteration(batch *data.Batch) (float64, error) {
	nMicros := batch.Sequences() / r.b
	rows := r.b * r.spec.SeqLen
	for _, st := range r.stages {
		st.ZeroGrads()
	}
	gradScale := float32(1) / float32(nMicros)
	var lossSum float64
	for m := 0; m < nMicros; m++ {
		mb := batch.MicroBatch(m*r.b, (m+1)*r.b)
		x := tensor.FromSlice(mb.FlatTokens(), rows)
		for _, st := range r.stages {
			x = st.Forward(m, x)
		}
		loss, dy := nn.CrossEntropy(x.Reshape(rows, r.spec.Vocab), mb.FlatTargets(), gradScale)
		lossSum += loss
		g := dy
		for i := len(r.stages) - 1; i >= 0; i-- {
			g = r.stages[i].Backward(m, g)
		}
	}
	for i, st := range r.stages {
		r.opt[i].Step(st.Params())
	}
	return lossSum / float64(nMicros), nil
}

// StageGrads returns the accumulated gradient vector of stage st.
func (r *Reference) StageGrads(st int) []float32 { return r.stages[st].GradVector() }

// StageWeights returns the weight vector of stage st.
func (r *Reference) StageWeights(st int) []float32 { return r.stages[st].WeightVector() }
