package pipeline

import (
	"testing"

	"chimera/internal/data"
	"chimera/internal/schedule"
)

func BenchmarkTrainIterationChimeraD4(b *testing.B) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := New(Config{Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 2})
	if err != nil {
		b.Fatal(err)
	}
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 1).Next(2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainIteration(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainIterationDAPPLED4(b *testing.B) {
	s, err := schedule.DAPPLE(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := New(Config{Schedule: s, W: 1, Spec: tinySpec, MicroBatch: 2})
	if err != nil {
		b.Fatal(err)
	}
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 1).Next(2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainIteration(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialReference(b *testing.B) {
	ref, err := NewReference(tinySpec, 4, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 1).Next(2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.TrainIteration(batch); err != nil {
			b.Fatal(err)
		}
	}
}
