package pipeline

import (
	"math"
	"testing"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/schedule"
)

func asyncTrainer(t *testing.T, d, n, w, b int) *AsyncTrainer {
	t.Helper()
	s, err := schedule.PipeDream(d, n)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewAsyncTrainer(AsyncConfig{
		Schedule: s, W: w, Spec: tinySpec, MicroBatch: b,
		NewOptimizer: func() optim.Optimizer { return &optim.SGD{LR: 0.05} },
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestAsyncStashDepthMatchesTable2: worker p stashes up to min(N, D−p)
// weight versions — the paper's PipeDream weight-memory interval.
func TestAsyncStashDepthMatchesTable2(t *testing.T) {
	d, n := 4, 8
	tr := asyncTrainer(t, d, n, 1, 1)
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 5).Next(1 * n)
	if _, err := tr.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	for w, depth := range tr.MaxStashDepth() {
		want := d - w
		if want > n {
			want = n
		}
		if depth != want {
			t.Errorf("worker %d: stash depth %d want %d", w, depth, want)
		}
	}
}

// TestAsyncTrainingConvergesDespiteStaleness: PipeDream still reduces loss
// on a fixed batch (the paper's empirical observation for async schemes).
func TestAsyncTrainingConvergesDespiteStaleness(t *testing.T) {
	tr := asyncTrainer(t, 4, 4, 1, 2)
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 17).Next(2 * 4)
	first, err := tr.TrainIteration(batch)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 10; i++ {
		last, err = tr.TrainIteration(batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("async loss did not decrease: %v → %v", first, last)
	}
}

// TestAsyncDivergesFromSequentialSGD is the negative control for the
// synchronous-equivalence property: stale weights make PipeDream's result
// measurably different from mini-batch SGD on the same data.
func TestAsyncDivergesFromSequentialSGD(t *testing.T) {
	const d, n, b = 4, 4, 2
	tr := asyncTrainer(t, d, n, 1, b)
	ref, err := NewReference(tinySpec, d, b, func() optim.Optimizer { return &optim.SGD{LR: 0.05} })
	if err != nil {
		t.Fatal(err)
	}
	stream := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 23)
	for i := 0; i < 3; i++ {
		batch := stream.Next(b * n)
		if _, err := tr.TrainIteration(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.TrainIteration(batch); err != nil {
			t.Fatal(err)
		}
	}
	var worst float64
	for st := 0; st < d; st++ {
		a, r := tr.StageWeights(st), ref.StageWeights(st)
		for i := range a {
			if diff := math.Abs(float64(a[i]) - float64(r[i])); diff > worst {
				worst = diff
			}
		}
	}
	if worst < 1e-5 {
		t.Fatalf("async training unexpectedly identical to sequential SGD (diff %v) — staleness not exercised", worst)
	}
}

// TestAsyncWithDataParallelism: the per-micro-batch allreduce path (W>1).
func TestAsyncWithDataParallelism(t *testing.T) {
	tr := asyncTrainer(t, 2, 2, 2, 1)
	batch := data.NewStream(tinySpec.Vocab, tinySpec.SeqLen, 31).Next(1 * 2 * 2)
	if _, err := tr.TrainIteration(batch); err != nil {
		t.Fatal(err)
	}
	// Copies must stay weight-consistent (they sync every micro-batch).
	a, b2 := tr.stages[0].WeightVector(), tr.stages[2].WeightVector()
	for i := range a {
		if a[i] != b2[i] {
			t.Fatal("data-parallel copies diverged under per-micro allreduce")
		}
	}
}

// TestAsyncRejections covers constructor validation.
func TestAsyncRejections(t *testing.T) {
	sync, _ := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if _, err := NewAsyncTrainer(AsyncConfig{Schedule: sync, W: 1, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("synchronous schedule must be rejected")
	}
	if _, err := NewAsyncTrainer(AsyncConfig{Schedule: nil, W: 1, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("nil schedule must be rejected")
	}
	pd, _ := schedule.PipeDream(4, 4)
	if _, err := NewAsyncTrainer(AsyncConfig{Schedule: pd, W: 0, Spec: tinySpec, MicroBatch: 1}); err == nil {
		t.Error("W=0 must be rejected")
	}
}
