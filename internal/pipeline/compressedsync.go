package pipeline

import (
	"chimera/internal/collective"
	"chimera/internal/compress"
	"chimera/internal/nn"
)

// compressedSync performs lossy gradient synchronization for one stage
// replica: every holder encodes its local gradient (int8 quantization or
// top-k sparsification), the encodings are allgathered, and each holder
// decodes and sums them in group order. Because encoding and summation are
// deterministic, all holders obtain bitwise-identical (lossy) gradients, so
// replica consistency is preserved — only the gradient itself is
// approximate, which is the compression trade-off the paper's conclusion
// targets.
func (t *Trainer) compressedSync(rank, stageIdx int, stage *nn.Stage) {
	g := t.groups[stageIdx]
	c := t.arWorlds[stageIdx].Rank(rank)
	vec := stage.GradVector()
	var payload []float32
	switch t.cfg.Compression {
	case CompressInt8:
		payload = compress.PackQuantized(compress.Quantize8(vec))
	case CompressTopK:
		k := int(t.cfg.TopKRatio * float64(len(vec)))
		if k < 1 {
			k = 1
		}
		payload = compress.PackSparse(compress.TopK(vec, k))
	default:
		panic("pipeline: compressedSync called without compression")
	}
	out := make([]float32, len(payload)*g.Size())
	collective.AllGather(c, g, 49, payload, out)
	sum := make([]float32, len(vec))
	tmp := make([]float32, len(vec))
	for m := 0; m < g.Size(); m++ {
		part := out[m*len(payload) : (m+1)*len(payload)]
		switch t.cfg.Compression {
		case CompressInt8:
			compress.Dequantize8(compress.UnpackQuantized(part), tmp)
		case CompressTopK:
			compress.UnpackSparse(part).Dense(tmp)
		}
		for i := range sum {
			sum[i] += tmp[i]
		}
	}
	stage.SetGradVector(sum)
}
