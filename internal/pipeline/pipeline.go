// Package pipeline executes pipeline schedules for real: every worker is a
// goroutine running its per-worker op program over the in-process
// communicator, exchanging activations and boundary gradients exactly as
// the schedule dictates, synchronizing weight gradients with allreduce
// across stage replicas and data-parallel copies, and applying a
// deterministic optimizer step.
//
// This is the executable form of the paper's synchronization argument: for
// every synchronous schedule (Chimera, GPipe, DAPPLE, GEMS) the resulting
// gradients equal those of sequential mini-batch SGD on the same data — a
// property the tests check numerically. Forward-doubling and
// backward-halving variants are simulator-only (they need joint/split
// activation caches) and are rejected here.
package pipeline

import (
	"fmt"
	"sync"

	"chimera/internal/collective"
	"chimera/internal/comm"
	"chimera/internal/data"
	"chimera/internal/nn"
	"chimera/internal/optim"
	"chimera/internal/schedule"
	"chimera/internal/tensor"
)

// ModelSpec describes the (small) transformer trained by the runtime.
type ModelSpec struct {
	Vocab, Dim, Heads, SeqLen, Layers int
	Seed                              int64
}

// Validate checks the spec against a pipeline depth.
func (m ModelSpec) Validate(d int) error {
	if m.Layers%d != 0 {
		return fmt.Errorf("pipeline: %d layers do not split into %d stages", m.Layers, d)
	}
	if m.Dim%m.Heads != 0 {
		return fmt.Errorf("pipeline: dim %d not divisible by heads %d", m.Dim, m.Heads)
	}
	return nil
}

// Config configures a Trainer.
type Config struct {
	Schedule *schedule.Schedule
	// W is the number of data-parallel pipeline copies; total workers are
	// W·D.
	W    int
	Spec ModelSpec
	// MicroBatch is the number of sequences per micro-batch.
	MicroBatch int
	// NewOptimizer constructs the per-stage optimizer (one instance per
	// stage replica; determinism keeps replicas consistent).
	NewOptimizer func() optim.Optimizer
	// Recompute enables activation recomputation inside stages.
	Recompute bool
	// EagerSync launches per-stage nonblocking allreduces as soon as a
	// stage's gradients are complete (§3.2); otherwise gradients are
	// synchronized after local compute.
	EagerSync bool
	// ZeROShard enables ZeRO-1-style optimizer-state sharding across each
	// stage's holders (the memory extension the paper's §2 defers to
	// future work); numerically identical to the unsharded update.
	ZeROShard bool
	// Compression selects lossy gradient synchronization (the paper's
	// stated next step: quantization and sparsification). Lossy sync is
	// allgather-based and deterministic, so replicas stay consistent;
	// incompatible with EagerSync.
	Compression CompressionKind
	// TopKRatio is the kept fraction for CompressTopK (default 0.01).
	TopKRatio float64
}

// CompressionKind selects the gradient codec.
type CompressionKind int

const (
	// CompressNone synchronizes exact fp32 gradients (allreduce).
	CompressNone CompressionKind = iota
	// CompressInt8 exchanges QSGD-style 8-bit quantized gradients.
	CompressInt8
	// CompressTopK exchanges top-k sparsified gradients.
	CompressTopK
)

// Trainer owns the worker state for iterated training.
type Trainer struct {
	cfg      Config
	d, w     int
	p2p      *comm.World
	arWorlds []*comm.World                           // one per stage, for concurrent eager allreduces
	groups   []collective.Group                      // stage -> participating ranks
	stages   map[int]map[int]*nn.Stage               // rank -> replica -> stage module
	opts     map[int]map[int]optim.Optimizer         // rank -> replica -> optimizer
	place    map[int]map[int]schedule.StagePlacement // rank -> replica -> placement
	iter     int
}

// New builds a Trainer: W·D workers, stage modules with replica-consistent
// initialization, and allreduce groups per stage.
func New(cfg Config) (*Trainer, error) {
	s := cfg.Schedule
	if s == nil {
		return nil, fmt.Errorf("pipeline: nil schedule")
	}
	if s.DoubledForward || s.HalvedBackward {
		return nil, fmt.Errorf("pipeline: %s forward-doubling/backward-halving schedules are simulator-only", s.Scheme)
	}
	if !s.Synchronous {
		return nil, fmt.Errorf("pipeline: asynchronous schemes (%s) need weight stashing; use the simulator", s.Scheme)
	}
	if cfg.W < 1 {
		return nil, fmt.Errorf("pipeline: W must be ≥1")
	}
	if err := cfg.Spec.Validate(s.D); err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() optim.Optimizer { return &optim.SGD{LR: 0.1} }
	}
	if cfg.Compression != CompressNone && cfg.EagerSync {
		return nil, fmt.Errorf("pipeline: compressed gradient sync is post-hoc only")
	}
	if cfg.TopKRatio == 0 {
		cfg.TopKRatio = 0.01
	}
	t := &Trainer{
		cfg: cfg, d: s.D, w: cfg.W,
		p2p:    comm.NewWorld(cfg.W * s.D),
		stages: make(map[int]map[int]*nn.Stage),
		opts:   make(map[int]map[int]optim.Optimizer),
		place:  make(map[int]map[int]schedule.StagePlacement),
	}
	for st := 0; st < s.D; st++ {
		t.arWorlds = append(t.arWorlds, comm.NewWorld(cfg.W*s.D))
		var ranks []int
		for copyIdx := 0; copyIdx < cfg.W; copyIdx++ {
			for _, rm := range s.Replicas {
				ranks = append(ranks, copyIdx*s.D+rm.WorkerOf[st])
			}
		}
		t.groups = append(t.groups, collective.NewGroup(sortedUnique(ranks)...))
	}
	for copyIdx := 0; copyIdx < cfg.W; copyIdx++ {
		for w := 0; w < s.D; w++ {
			rank := copyIdx*s.D + w
			t.stages[rank] = make(map[int]*nn.Stage)
			t.opts[rank] = make(map[int]optim.Optimizer)
			t.place[rank] = make(map[int]schedule.StagePlacement)
			for _, pl := range s.StagesOn(w) {
				st := buildStage(cfg.Spec, s.D, pl.Stage)
				st.Recompute = cfg.Recompute
				t.stages[rank][pl.Replica] = st
				t.opts[rank][pl.Replica] = cfg.NewOptimizer()
				t.place[rank][pl.Replica] = pl
			}
		}
	}
	return t, nil
}

// buildStage constructs the layers of one pipeline stage with
// stage-deterministic initialization (replicas of a stage start identical).
func buildStage(spec ModelSpec, d, stageIdx int) *nn.Stage {
	perStage := spec.Layers / d
	var layers []nn.Layer
	if stageIdx == 0 {
		layers = append(layers, nn.NewEmbedding(fmt.Sprintf("s%d.emb", stageIdx), spec.Vocab, spec.Dim, spec.SeqLen))
	}
	for l := 0; l < perStage; l++ {
		layers = append(layers, nn.NewTransformerBlock(fmt.Sprintf("s%d.blk%d", stageIdx, l), spec.Dim, spec.Heads, spec.SeqLen))
	}
	if stageIdx == d-1 {
		layers = append(layers, nn.NewLayerNorm(fmt.Sprintf("s%d.lnf", stageIdx), spec.Dim))
		layers = append(layers, nn.NewLinear(fmt.Sprintf("s%d.head", stageIdx), spec.Dim, spec.Vocab))
	}
	nn.InitWeights(layers, spec.Seed+int64(stageIdx)*1000003)
	return nn.NewStage(stageIdx, layers...)
}

// TrainIteration runs one synchronous training iteration over batch, which
// must contain exactly MicroBatch·N·W sequences. Returns the mean loss.
func (t *Trainer) TrainIteration(batch *data.Batch) (float64, error) {
	s := t.cfg.Schedule
	need := t.cfg.MicroBatch * s.N * t.w
	if batch.Sequences() != need {
		return 0, fmt.Errorf("pipeline: batch has %d sequences, need B·N·W = %d", batch.Sequences(), need)
	}
	lossCh := make(chan float64, t.w*t.d)
	errCh := make(chan error, t.w*t.d)
	var wg sync.WaitGroup
	for copyIdx := 0; copyIdx < t.w; copyIdx++ {
		for w := 0; w < t.d; w++ {
			wg.Add(1)
			go func(copyIdx, w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errCh <- fmt.Errorf("worker (%d,%d): %v", copyIdx, w, r)
					}
				}()
				loss := t.runWorker(copyIdx, w, batch)
				lossCh <- loss
			}(copyIdx, w)
		}
	}
	wg.Wait()
	close(lossCh)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	t.iter++
	var total float64
	for l := range lossCh {
		total += l
	}
	return total / float64(s.N*t.w), nil
}

// tag encodes a p2p message identity; iteration parity prevents adjacent
// iterations from aliasing.
func (t *Trainer) tag(kind schedule.Kind, micro, stage int) int {
	k := 0
	if kind == schedule.Backward {
		k = 1
	}
	return ((t.iter%2)*(1<<20) + (micro*(t.d+1)+stage)<<1) | k
}

// runWorker executes one worker's op program for the iteration.
func (t *Trainer) runWorker(copyIdx, w int, batch *data.Batch) float64 {
	s := t.cfg.Schedule
	rank := copyIdx*t.d + w
	c := t.p2p.Rank(rank)
	b := t.cfg.MicroBatch
	rows := b * t.cfg.Spec.SeqLen

	for _, st := range t.stages[rank] {
		st.ZeroGrads()
	}
	dlogits := make(map[int]*tensor.Tensor)
	var lossSum float64
	gradScale := float32(1) / float32(s.N*t.w)

	// Track outstanding backward tokens per replica for eager sync.
	remainingB := make(map[int]int)
	for _, op := range s.Workers[w] {
		if op.Kind == schedule.Backward {
			remainingB[op.Replica] += len(op.Micros)
		}
	}
	type pendingAR struct {
		handle *collective.Handle
		rep    int
		vec    []float32
	}
	var pending []pendingAR

	for _, op := range s.Workers[w] {
		rep := op.Replica
		stage := t.stages[rank][rep]
		rm := s.Replicas[rep]
		m := op.Micro()
		globalM := copyIdx*s.N + m
		switch op.Kind {
		case schedule.Forward:
			var x *tensor.Tensor
			if op.Stage == 0 {
				mb := batch.MicroBatch(globalM*b, (globalM+1)*b)
				x = tensor.FromSlice(mb.FlatTokens(), rows)
			} else {
				prev := copyIdx*t.d + rm.WorkerOf[op.Stage-1]
				payload := c.Recv(prev, t.tag(schedule.Forward, m, op.Stage))
				x = tensor.FromSlice(payload, rows, t.cfg.Spec.Dim)
			}
			y := stage.Forward(m, x)
			if op.Stage == s.D-1 {
				mb := batch.MicroBatch(globalM*b, (globalM+1)*b)
				loss, dl := nn.CrossEntropy(y.Reshape(rows, t.cfg.Spec.Vocab), mb.FlatTargets(), gradScale)
				lossSum += loss
				dlogits[m] = dl
			} else {
				next := copyIdx*t.d + rm.WorkerOf[op.Stage+1]
				c.Send(next, t.tag(schedule.Forward, m, op.Stage+1), y.Data)
			}
		case schedule.Backward:
			var dy *tensor.Tensor
			if op.Stage == s.D-1 {
				dy = dlogits[m]
				delete(dlogits, m)
			} else {
				next := copyIdx*t.d + rm.WorkerOf[op.Stage+1]
				payload := c.Recv(next, t.tag(schedule.Backward, m, op.Stage))
				dy = tensor.FromSlice(payload, rows, t.cfg.Spec.Dim)
			}
			dx := stage.Backward(m, dy)
			if op.Stage > 0 {
				prev := copyIdx*t.d + rm.WorkerOf[op.Stage-1]
				c.Send(prev, t.tag(schedule.Backward, m, op.Stage-1), dx.Data)
			}
			remainingB[rep] -= len(op.Micros)
			if t.cfg.EagerSync && remainingB[rep] == 0 {
				pl := t.place[rank][rep]
				vec := stage.GradVector()
				h := collective.IAllReduce(t.arWorlds[pl.Stage].Rank(rank), t.groups[pl.Stage], 0, vec, collective.Ring)
				pending = append(pending, pendingAR{handle: h, rep: rep, vec: vec})
			}
		}
	}

	// Gradient synchronization (§3.2/§3.3): sum across all stage holders.
	if t.cfg.EagerSync {
		for _, p := range pending {
			p.handle.Wait()
			t.stages[rank][p.rep].SetGradVector(p.vec)
		}
	} else {
		// Ascending stage order on every worker: blocking collectives with
		// per-worker divergent orders (worker0 holds stage0 via the down
		// replica and stage D−1 via the up replica; worker D−1 the reverse)
		// would deadlock, so the global order must key on the stage.
		for _, rep := range replicasByStage(t.place[rank]) {
			pl := t.place[rank][rep]
			stage := t.stages[rank][rep]
			if t.cfg.Compression != CompressNone {
				t.compressedSync(rank, pl.Stage, stage)
				continue
			}
			vec := stage.GradVector()
			collective.AllReduce(t.arWorlds[pl.Stage].Rank(rank), t.groups[pl.Stage], 0, vec, collective.Ring)
			stage.SetGradVector(vec)
		}
	}
	// Optimizer steps in ascending-stage order (sharded steps allgather
	// within the stage group and must not interleave across groups).
	for _, rep := range replicasByStage(t.place[rank]) {
		pl := t.place[rank][rep]
		stage := t.stages[rank][rep]
		if t.cfg.ZeROShard {
			shardedStep(t.arWorlds[pl.Stage].Rank(rank), t.groups[pl.Stage], t.opts[rank][rep], stage)
		} else {
			t.opts[rank][rep].Step(stage.Params())
		}
	}
	c.Barrier()
	return lossSum
}

// StageGrads returns the (synchronized) gradient vector of one stage from
// its first holder — identical on all holders after allreduce.
func (t *Trainer) StageGrads(stage int) []float32 {
	rank := t.groups[stage].Ranks[0]
	for rep, pl := range t.place[rank] {
		if pl.Stage == stage {
			return t.stages[rank][rep].GradVector()
		}
	}
	return nil
}

// StageWeights returns the weight vector of one stage from holder idx in
// its group (for replica-consistency checks).
func (t *Trainer) StageWeights(stage, holderIdx int) []float32 {
	rank := t.groups[stage].Ranks[holderIdx%t.groups[stage].Size()]
	for rep, pl := range t.place[rank] {
		if pl.Stage == stage {
			return t.stages[rank][rep].WeightVector()
		}
	}
	return nil
}

// HolderCount returns the number of workers holding a replica of stage.
func (t *Trainer) HolderCount(stage int) int { return t.groups[stage].Size() }

func sortedUnique(in []int) []int {
	seen := make(map[int]bool, len(in))
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// replicasByStage orders a worker's replica ids by the stage each one hosts
// here, ascending — the deadlock-free global collective order.
func replicasByStage(m map[int]schedule.StagePlacement) []int {
	var out []int
	for r := range m {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && m[out[j]].Stage < m[out[j-1]].Stage; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
