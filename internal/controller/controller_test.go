package controller

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/serve"
)

// testScenario is the live configuration the controller tests run: a
// 16-node pool and a two-job vocabulary, matching the shapes the serve
// tier's fleet tests use.
func testScenario() serve.FleetScenario {
	return serve.FleetScenario{
		Cluster: serve.FleetClusterRef{Nodes: 16, Platform: serve.PlatformRef{Preset: "pizdaint"}},
		Jobs: []serve.FleetJobRef{
			{Name: "bert", Model: serve.ModelRef{Preset: "bert48"}, MiniBatch: 128, MaxB: 16, Priority: 2},
			{Name: "gpt", Model: serve.ModelRef{Preset: "gpt2-32"}, MiniBatch: 64, MaxB: 8},
		},
	}
}

func newTestController(t *testing.T, cfg Config) (*Controller, *httptest.Server) {
	t.Helper()
	if cfg.Scenario.Cluster.Nodes == 0 {
		cfg.Scenario = testScenario()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// ingest posts one event batch and decodes the acknowledgment.
func ingest(t *testing.T, ts *httptest.Server, events string) EventsResponse {
	t.Helper()
	status, body := post(t, ts, "/v1/fleet/events", `{"events":[`+events+`]}`)
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	var resp EventsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestControllerIngestReplayIdentity is the controller's correctness
// anchor: drive batches through the HTTP ingestion path — including a
// same-timestamp batch posted in scrambled wire order — then replay the
// recorded event log through SimulateElastic and require (a) the pinned
// same-timestamp tie-break (fail < drain < join < arrival) in the processed
// log, (b) the live log to be a byte-identical prefix of the replay's, and
// (c) the live allocation to be byte-identical to the replay's final
// shares, all compared through the shared serve codec.
func TestControllerIngestReplayIdentity(t *testing.T) {
	c, ts := newTestController(t, Config{})

	first := ingest(t, ts, `{"at":0,"job":"bert","work":4000},{"at":0,"job":"gpt","work":3000}`)
	if first.Accepted != 2 || first.Version != 1 || first.Residents != 2 {
		t.Fatalf("first batch ack: %+v", first)
	}
	if first.ReplanMillis <= 0 {
		t.Fatalf("first batch reported replan_ms %g, want > 0", first.ReplanMillis)
	}
	if len(first.Allocation) != 2 {
		t.Fatalf("first batch allocation has %d shares, want 2", len(first.Allocation))
	}

	// One batch, one timestamp, deliberately scrambled wire order: the
	// controller must apply fail < drain < join < arrival regardless.
	scrambled := ingest(t, ts,
		`{"at":50,"job":"bert","work":2000},{"at":50,"kind":"node_join","factor":1.5},`+
			`{"at":50,"kind":"node_drain","node":3},{"at":50,"kind":"node_fail","node":2}`)
	if scrambled.Version != 2 || scrambled.Accepted != 4 {
		t.Fatalf("scrambled batch ack: %+v", scrambled)
	}
	ingest(t, ts, `{"at":120,"kind":"node_join","class":"spot","price":0.5}`)

	status, logBody := get(t, ts, "/v1/fleet/events/log")
	if status != http.StatusOK {
		t.Fatalf("log: %d %s", status, logBody)
	}
	var logResp LogResponse
	if err := json.Unmarshal(logBody, &logResp); err != nil {
		t.Fatal(err)
	}
	if logResp.Version != 3 || len(logResp.Events) != 7 {
		t.Fatalf("log reports version %d with %d events, want 3 with 7", logResp.Version, len(logResp.Events))
	}

	// (a) The pinned tie-break at t=50 in the processed records.
	var at50 []string
	for _, rec := range logResp.Log {
		if rec.At == 50 && rec.Kind != string(fleet.EvDeparture) {
			at50 = append(at50, rec.Kind)
		}
	}
	want50 := []string{"node_fail", "node_drain", "node_join", "arrival"}
	if fmt.Sprint(at50) != fmt.Sprint(want50) {
		t.Fatalf("t=50 applied order %v, want %v", at50, want50)
	}

	// Replay the recorded log through the trace simulator.
	events, err := serve.ResolveFleetEvents(logResp.Events)
	if err != nil {
		t.Fatal(err)
	}
	esc, err := testScenario().ResolveLive()
	if err != nil {
		t.Fatal(err)
	}
	esc.Events = events
	replay, err := fleet.SimulateElasticOn(engine.New(engine.Workers(1)), esc)
	if err != nil {
		t.Fatal(err)
	}

	// (b) Live log is a byte-identical prefix of the replay log.
	liveLog, err := json.Marshal(logResp.Log)
	if err != nil {
		t.Fatal(err)
	}
	replayLog := serve.NewFleetEventRecords(replay.Log)
	if len(replayLog) < len(logResp.Log) {
		t.Fatalf("replay log has %d records, live has %d", len(replayLog), len(logResp.Log))
	}
	replayPrefix, err := json.Marshal(replayLog[:len(logResp.Log)])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveLog, replayPrefix) {
		t.Fatalf("live log is not a prefix of the replay log:\nlive:   %s\nreplay: %s", liveLog, replayPrefix)
	}

	// (c) Live allocation == replay final shares, byte for byte.
	status, allocBody := get(t, ts, "/v1/fleet/allocation")
	if status != http.StatusOK {
		t.Fatalf("allocation: %d %s", status, allocBody)
	}
	var alloc AllocationResponse
	if err := json.Unmarshal(allocBody, &alloc); err != nil {
		t.Fatal(err)
	}
	liveShares, err := json.Marshal(alloc.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	replayShares, err := json.Marshal(serve.NewFleetFinalShares(replay.Final))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveShares, replayShares) {
		t.Fatalf("live allocation diverges from replay final:\nlive:   %s\nreplay: %s", liveShares, replayShares)
	}
	if replay.SpotJoins != 1 {
		t.Fatalf("replay spot joins %d, want 1", replay.SpotJoins)
	}

	// The health and metrics surfaces track the machine.
	status, healthBody := get(t, ts, "/healthz")
	if status != http.StatusOK || !strings.Contains(string(healthBody), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", status, healthBody)
	}
	if status, _ := get(t, ts, "/readyz"); status != http.StatusOK {
		t.Fatalf("readyz: %d, want 200", status)
	}
	_, metricsBody := get(t, ts, "/metrics")
	for _, series := range []string{"controller_events_total 7", "controller_batches_total 3", "controller_replan_seconds", "controller_nodes", "engine_"} {
		if !strings.Contains(string(metricsBody), series) {
			t.Fatalf("/metrics missing %q:\n%.400s", series, metricsBody)
		}
	}
	_ = c
}

// TestControllerIngestRejections: malformed bodies are 400, semantically
// invalid batches are 422, and a clean rejection leaves the live state
// untouched — same version, same allocation.
func TestControllerIngestRejections(t *testing.T) {
	_, ts := newTestController(t, Config{})
	ingest(t, ts, `{"at":10,"job":"bert","work":1000}`)

	rejections := []struct {
		name, body string
		status     int
	}{
		{"malformed", `{"events":`, http.StatusBadRequest},
		{"unknown-field", `{"events":[],"bogus":1}`, http.StatusBadRequest},
		{"empty", `{"events":[]}`, http.StatusBadRequest},
		{"unknown-kind", `{"events":[{"at":20,"kind":"node_explode","node":1}]}`, http.StatusBadRequest},
		{"unknown-job", `{"events":[{"at":20,"job":"nope","work":1}]}`, http.StatusUnprocessableEntity},
		{"not-monotonic", `{"events":[{"at":10,"job":"bert","work":1}]}`, http.StatusUnprocessableEntity},
		{"absent-node", `{"events":[{"at":20,"kind":"node_fail","node":99}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range rejections {
		status, body := post(t, ts, "/v1/fleet/events", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d (want %d), body %s", tc.name, status, tc.status, body)
		}
	}

	status, body := get(t, ts, "/v1/fleet/allocation")
	if status != http.StatusOK {
		t.Fatalf("allocation after rejections: %d %s", status, body)
	}
	var alloc AllocationResponse
	if err := json.Unmarshal(body, &alloc); err != nil {
		t.Fatal(err)
	}
	if alloc.Version != 1 || alloc.Events != 1 {
		t.Fatalf("rejected batches moved the state machine: version %d events %d, want 1/1", alloc.Version, alloc.Events)
	}
}

// TestControllerPoison: an apply-phase failure (the resident cap, which
// cannot be pre-validated) poisons the controller — every state endpoint
// answers 503 from then on, and /healthz says why while staying 200.
func TestControllerPoison(t *testing.T) {
	_, ts := newTestController(t, Config{})
	var events []string
	for i := 0; i <= fleet.MaxResident; i++ {
		events = append(events, fmt.Sprintf(`{"at":1,"job":"gpt","work":100000}`))
	}
	status, body := post(t, ts, "/v1/fleet/events", `{"events":[`+strings.Join(events, ",")+`]}`)
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "controller poisoned") {
		t.Fatalf("over-cap batch: %d %s, want 500 poisoned", status, body)
	}
	if status, body := post(t, ts, "/v1/fleet/events", `{"events":[{"at":2,"job":"gpt","work":1}]}`); status != http.StatusServiceUnavailable {
		t.Fatalf("ingest after poison: %d %s, want 503", status, body)
	}
	if status, _ := get(t, ts, "/v1/fleet/allocation"); status != http.StatusServiceUnavailable {
		t.Fatalf("allocation after poison: %d, want 503", status)
	}
	if status, _ := get(t, ts, "/v1/fleet/events/log"); status != http.StatusServiceUnavailable {
		t.Fatalf("log after poison: %d, want 503", status)
	}
	if status, body := post(t, ts, "/v1/fleet/whatif", `{"migration_penalty":10}`); status != http.StatusServiceUnavailable {
		t.Fatalf("whatif after poison: %d %s, want 503", status, body)
	}
	if status, _ := get(t, ts, "/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after poison: %d, want 503", status)
	}
	status, health := get(t, ts, "/healthz")
	if status != http.StatusOK || !strings.Contains(string(health), `"status":"poisoned"`) {
		t.Fatalf("healthz after poison: %d %s", status, health)
	}
}

// TestControllerWhatIf: a what-if evaluates against a fork — the reply
// reflects the hypothesis, the live state machine stays untouched.
func TestControllerWhatIf(t *testing.T) {
	_, ts := newTestController(t, Config{})
	ingest(t, ts, `{"at":0,"job":"bert","work":4000},{"at":0,"job":"gpt","work":3000}`)

	status, body := post(t, ts, "/v1/fleet/whatif",
		`{"events":[{"at":60,"kind":"node_fail","node":0},{"at":60,"kind":"node_fail","node":1}]}`)
	if status != http.StatusOK {
		t.Fatalf("whatif: %d %s", status, body)
	}
	var wi WhatIfResponse
	if err := json.Unmarshal(body, &wi); err != nil {
		t.Fatal(err)
	}
	if wi.BaseVersion != 1 || wi.Now != 60 || wi.Nodes != 14 {
		t.Fatalf("whatif reply: %+v, want base_version 1, now 60, 14 nodes", wi)
	}

	// Knob-only hypotheses re-plan the fork in place.
	status, body = post(t, ts, "/v1/fleet/whatif", `{"migration_penalty":120,"deadlines":[{"job":"gpt","deadline":500}]}`)
	if status != http.StatusOK {
		t.Fatalf("knob whatif: %d %s", status, body)
	}

	// Hypothesis validation: empty is 400, unknown jobs and stale times 422.
	if status, _ := post(t, ts, "/v1/fleet/whatif", `{}`); status != http.StatusBadRequest {
		t.Fatalf("empty whatif: %d, want 400", status)
	}
	if status, _ := post(t, ts, "/v1/fleet/whatif", `{"deadlines":[{"job":"nope","deadline":5}]}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown-job whatif: %d, want 422", status)
	}
	if status, _ := post(t, ts, "/v1/fleet/whatif", `{"events":[{"at":0,"job":"bert","work":1}]}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("stale-time whatif: %d, want 422", status)
	}

	// The live machine never moved.
	status, body = get(t, ts, "/v1/fleet/allocation")
	if status != http.StatusOK {
		t.Fatalf("allocation after whatifs: %d %s", status, body)
	}
	var alloc AllocationResponse
	if err := json.Unmarshal(body, &alloc); err != nil {
		t.Fatal(err)
	}
	if alloc.Version != 1 || alloc.Now != 0 || alloc.Nodes != 16 {
		t.Fatalf("whatif leaked into live state: %+v", alloc)
	}
}

// TestControllerStream: a subscriber receives the current allocation on
// connect and one update per applied batch.
func TestControllerStream(t *testing.T) {
	_, ts := newTestController(t, Config{})
	ingest(t, ts, `{"at":0,"job":"gpt","work":1000}`)

	resp, err := http.Get(ts.URL + "/v1/fleet/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	updates := make(chan AllocationResponse, 4)
	errs := make(chan error, 1)
	go func() {
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				errs <- err
				return
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var u AllocationResponse
				if err := json.Unmarshal([]byte(strings.TrimSpace(data)), &u); err != nil {
					errs <- err
					return
				}
				updates <- u
			}
		}
	}()
	read := func(what string) AllocationResponse {
		t.Helper()
		select {
		case u := <-updates:
			return u
		case err := <-errs:
			t.Fatalf("%s: stream read: %v", what, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: no stream update within 10s", what)
		}
		return AllocationResponse{}
	}

	snap := read("snapshot")
	if snap.Version != 1 || snap.Residents != 1 {
		t.Fatalf("stream snapshot %+v, want version 1 with 1 resident", snap)
	}
	ingest(t, ts, `{"at":30,"job":"bert","work":2000}`)
	update := read("update")
	if update.Version != 2 || update.Residents != 2 {
		t.Fatalf("stream update %+v, want version 2 with 2 residents", update)
	}
}

// TestControllerNewRejections: construction validates the live scenario.
func TestControllerNewRejections(t *testing.T) {
	withEvents := testScenario()
	withEvents.Events = []serve.FleetEventRef{{At: 0, Job: "bert", Work: 1}}
	if _, err := New(Config{Scenario: withEvents}); err == nil || !strings.Contains(err.Error(), "ingests events over HTTP") {
		t.Fatalf("scenario with events: err %v, want a live-scenario rejection", err)
	}
	noJobs := testScenario()
	noJobs.Jobs = nil
	if _, err := New(Config{Scenario: noJobs}); err == nil {
		t.Fatal("scenario without jobs: want an error")
	}
}
