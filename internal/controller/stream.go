package controller

import "sync"

// hub fans allocation updates out to the SSE subscribers. Publishing never
// blocks: a subscriber whose buffer is full skips that update — each update
// carries the full current allocation, so a skipped one is superseded by
// the next, and a stalled client can never back-pressure ingestion.
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber channel.
func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch
	}
	h.subs[ch] = struct{}{}
	return ch
}

// unsubscribe removes a subscriber; safe to call after closeAll.
func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

// publish delivers msg to every subscriber that has buffer room.
func (h *hub) publish(msg []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- msg:
		default:
		}
	}
}

// closeAll ends every stream (graceful shutdown): subscribers see their
// channel close and return, letting the HTTP server's Shutdown complete.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
