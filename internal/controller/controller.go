// Package controller is the fleet control plane: a long-running daemon
// that owns one live elastic simulation (fleet.ElasticSim) and exposes it
// over HTTP. Clients push churn and arrival events as they happen
// (POST /v1/fleet/events), read the allocation currently in effect
// (GET /v1/fleet/allocation), subscribe to allocation updates
// (GET /v1/fleet/stream, server-sent events), and explore hypotheticals
// against a fork of the live state (POST /v1/fleet/whatif) without
// touching it.
//
// The controller is a single serialized state machine: one mutex orders
// every ingested batch, so the applied event sequence is exactly the
// append-only log the sim records. That log is the correctness anchor —
// replaying it through fleet.SimulateElastic reproduces the controller's
// event records and current allocation bit for bit (the live log is a
// byte-identical prefix of the replay's; the replay goes on to retire the
// still-resident instances). All wire encoding goes through the serve
// package's fleet codec constructors, so the bytes are directly comparable.
//
// A failed apply (resident cap mid-batch, planner failure) leaves the sim
// inconsistent with its recorded log; the controller then poisons itself —
// every state endpoint answers 503 until the operator restarts it — rather
// than serve allocations that no longer replay.
package controller

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/obs"
	"chimera/internal/serve"
)

// Config configures New.
type Config struct {
	// Scenario is the live configuration: cluster, job vocabulary, policy
	// and re-plan knobs. It must not carry a trace or events — those arrive
	// over POST /v1/fleet/events.
	Scenario serve.FleetScenario
	// Workers sizes the engine's worker pool (0 = GOMAXPROCS).
	Workers int
	// CacheCapacity bounds the engine memo tables with LRU eviction
	// (0 = unbounded). A controller runs forever; daemons should set it.
	CacheCapacity int
	// MaxInflight bounds concurrently admitted heavy requests (events,
	// whatif); excess requests are shed with 429. 0 selects 4×GOMAXPROCS.
	MaxInflight int
	// Engine, when non-nil, supplies a caller-owned engine and overrides
	// Workers/CacheCapacity.
	Engine *engine.Engine
	// Registry, when non-nil, receives the controller_* series; the
	// controller otherwise creates its own. GET /metrics serves it.
	Registry *obs.Registry
}

// Controller is the fleet control plane. Build with New; the zero value is
// not usable.
type Controller struct {
	mux         *http.ServeMux
	inflight    chan struct{}
	maxInflight int
	reg         *obs.Registry
	started     time.Time
	hub         *hub

	// mu serializes the state machine: every batch applies under it, so
	// the recorded event log is the exact applied order.
	mu       sync.Mutex
	sim      *fleet.ElasticSim
	version  uint64 // batches applied
	poisoned error  // non-nil once an apply-phase failure corrupted the sim

	eventsTotal   *obs.Counter   // events accepted
	batchesTotal  *obs.Counter   // batches applied
	rejectsTotal  *obs.Counter   // batches rejected (pre-mutation)
	whatifsTotal  *obs.Counter   // what-if forks evaluated
	shedTotal     *obs.Counter   // requests shed by admission control
	replanSeconds *obs.Histogram // wall time of one batch's ingest (all its re-plans)
	nodesGauge    *obs.Gauge     // present pool size
	residentsG    *obs.Gauge     // resident instance count
	streamClients *obs.Gauge     // connected SSE subscribers
}

// New builds a Controller, its engine, and its live simulation.
func New(cfg Config) (*Controller, error) {
	esc, err := cfg.Scenario.ResolveLive()
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	eng := cfg.Engine
	if eng == nil {
		opts := []engine.Option{engine.Observe(reg)}
		if cfg.Workers > 0 {
			opts = append(opts, engine.Workers(cfg.Workers))
		}
		if cfg.CacheCapacity > 0 {
			opts = append(opts, engine.Capacity(cfg.CacheCapacity))
		}
		eng = engine.New(opts...)
	}
	alloc := fleet.NewAllocatorCap(eng, cfg.CacheCapacity)
	alloc.Observe(reg)
	sim, err := alloc.NewElasticSim(esc)
	if err != nil {
		return nil, err
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	c := &Controller{
		inflight:    make(chan struct{}, maxInflight),
		maxInflight: maxInflight,
		reg:         reg,
		started:     time.Now(),
		hub:         newHub(),
		sim:         sim,

		eventsTotal:   reg.Counter("controller_events_total", "live events accepted into the simulation"),
		batchesTotal:  reg.Counter("controller_batches_total", "event batches applied"),
		rejectsTotal:  reg.Counter("controller_rejected_batches_total", "event batches rejected before any state mutated"),
		whatifsTotal:  reg.Counter("controller_whatifs_total", "what-if forks evaluated"),
		shedTotal:     reg.Counter("controller_shed_total", "requests shed by admission control"),
		replanSeconds: reg.Histogram("controller_replan_seconds", "wall time to apply one event batch (validation, re-plans, log append)"),
		nodesGauge:    reg.Gauge("controller_nodes", "present node-pool size"),
		residentsG:    reg.Gauge("controller_residents", "resident job instances"),
		streamClients: reg.Gauge("controller_stream_clients", "connected allocation-stream subscribers"),
	}
	c.nodesGauge.Set(int64(sim.NodeCount()))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/events", c.admitted(c.handleEvents))
	mux.HandleFunc("POST /v1/fleet/whatif", c.admitted(c.handleWhatIf))
	mux.HandleFunc("GET /v1/fleet/allocation", c.handleAllocation)
	mux.HandleFunc("GET /v1/fleet/events/log", c.handleLog)
	mux.HandleFunc("GET /v1/fleet/stream", c.handleStream)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux
	return c, nil
}

// Handler returns the controller's HTTP handler (for embedding and tests).
func (c *Controller) Handler() http.Handler { return c.mux }

// Registry returns the controller's metric registry.
func (c *Controller) Registry() *obs.Registry { return c.reg }

// MaxInflight reports the admission-control bound.
func (c *Controller) MaxInflight() int { return c.maxInflight }

// ListenAndServe serves the controller on addr until ctx is cancelled.
func (c *Controller) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.Serve(ctx, ln)
}

// Serve is ListenAndServe on a caller-supplied listener.
func (c *Controller) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           c.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// Close SSE streams on shutdown: Shutdown waits for active handlers,
	// and a stream would otherwise hold it until the client hangs up.
	hs.RegisterOnShutdown(c.hub.closeAll)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// maxBodyBytes mirrors the serve tier's request-body cap.
const maxBodyBytes = 1 << 20

// admitted wraps a heavy handler with the serve tier's admission policy: a
// request takes one of MaxInflight slots immediately or is shed with 429.
func (c *Controller) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case c.inflight <- struct{}{}:
			defer func() { <-c.inflight }()
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
			h(w, r)
		default:
			c.shedTotal.Inc()
			w.Header().Set("Retry-After", "1")
			c.writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "controller at capacity, retry later"})
		}
	}
}

// EventsRequest is the POST /v1/fleet/events body: one batch of live
// events, any order within the batch, every time strictly after the last
// applied batch.
type EventsRequest struct {
	Events []serve.FleetEventRef `json:"events"`
}

// EventsResponse acknowledges an applied batch with the allocation it
// produced.
type EventsResponse struct {
	// Accepted is how many events the batch carried; Version counts applied
	// batches; Now is the simulation time after the batch.
	Accepted int     `json:"accepted"`
	Version  uint64  `json:"version"`
	Now      float64 `json:"now"`
	// ReplanMillis is the wall time the batch took to apply — validation,
	// every re-plan it triggered, and the log append.
	ReplanMillis float64                     `json:"replan_ms"`
	Nodes        int                         `json:"nodes"`
	Residents    int                         `json:"residents"`
	Allocation   []serve.FleetFinalShareJSON `json:"allocation"`
}

func (c *Controller) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req EventsRequest
	if err := serve.DecodeStrict(r.Body, &req); err != nil {
		c.badRequest(w, err)
		return
	}
	if len(req.Events) == 0 {
		c.badRequest(w, errString("controller: events must be non-empty"))
		return
	}
	events, err := serve.ResolveFleetEvents(req.Events)
	if err != nil {
		c.badRequest(w, err)
		return
	}

	c.mu.Lock()
	if c.poisoned != nil {
		c.mu.Unlock()
		c.unavailable(w)
		return
	}
	start := time.Now()
	err = c.sim.Ingest(events)
	elapsed := time.Since(start)
	if err != nil {
		var ae *fleet.ApplyError
		if errors.As(err, &ae) {
			// Validation passed but the apply failed mid-batch: the state no
			// longer matches the recorded log, so stop serving it.
			c.poisoned = err
			c.mu.Unlock()
			c.writeJSON(w, http.StatusInternalServerError, serve.ErrorResponse{Error: "controller poisoned: " + err.Error()})
			return
		}
		c.mu.Unlock()
		c.rejectsTotal.Inc()
		c.unprocessable(w, err)
		return
	}
	c.version++
	resp := EventsResponse{
		Accepted: len(events), Version: c.version, Now: c.sim.Now(),
		ReplanMillis: float64(elapsed) / float64(time.Millisecond),
		Nodes:        c.sim.NodeCount(), Residents: c.sim.Residents(),
		Allocation: serve.NewFleetFinalShares(c.sim.Shares()),
	}
	update := AllocationResponse{
		Version: resp.Version, Now: resp.Now, Events: c.sim.EventCount(),
		Nodes: resp.Nodes, Residents: resp.Residents, Allocation: resp.Allocation,
	}
	c.mu.Unlock()

	c.eventsTotal.Add(uint64(resp.Accepted))
	c.batchesTotal.Inc()
	c.replanSeconds.Observe(elapsed)
	c.nodesGauge.Set(int64(resp.Nodes))
	c.residentsG.Set(int64(resp.Residents))
	if raw, err := json.Marshal(update); err == nil {
		c.hub.publish(raw)
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// AllocationResponse is GET /v1/fleet/allocation (and each SSE update's
// data payload): the allocation currently in effect.
type AllocationResponse struct {
	Version    uint64                      `json:"version"`
	Now        float64                     `json:"now"`
	Events     int                         `json:"events"`
	Nodes      int                         `json:"nodes"`
	Residents  int                         `json:"residents"`
	Allocation []serve.FleetFinalShareJSON `json:"allocation"`
}

func (c *Controller) handleAllocation(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	if c.poisoned != nil {
		c.mu.Unlock()
		c.unavailable(w)
		return
	}
	resp := c.allocationLocked()
	c.mu.Unlock()
	c.writeJSON(w, http.StatusOK, resp)
}

// allocationLocked snapshots the current allocation; c.mu must be held.
func (c *Controller) allocationLocked() AllocationResponse {
	return AllocationResponse{
		Version: c.version, Now: c.sim.Now(), Events: c.sim.EventCount(),
		Nodes: c.sim.NodeCount(), Residents: c.sim.Residents(),
		Allocation: serve.NewFleetFinalShares(c.sim.Shares()),
	}
}

// LogResponse is GET /v1/fleet/events/log: the raw ingested events (the
// trace that replays this controller bit for bit) plus the processed-event
// records the simulation logged while applying them.
type LogResponse struct {
	Version uint64                       `json:"version"`
	Events  []serve.FleetEventRef        `json:"events"`
	Log     []serve.FleetEventRecordJSON `json:"log"`
}

func (c *Controller) handleLog(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	if c.poisoned != nil {
		c.mu.Unlock()
		c.unavailable(w)
		return
	}
	snap := c.sim.Snapshot()
	resp := LogResponse{
		Version: c.version,
		Events:  serve.NewFleetEventRefs(c.sim.Events()),
		Log:     serve.NewFleetEventRecords(snap.Log),
	}
	c.mu.Unlock()
	c.writeJSON(w, http.StatusOK, resp)
}

// WhatIfRequest is the POST /v1/fleet/whatif body: a hypothesis to evaluate
// against a fork of the live state. At least one of the fields must be set.
// Events follow the same rules as /v1/fleet/events (strictly after the live
// sim's last batch); deadline and penalty moves apply before any events.
type WhatIfRequest struct {
	Events           []serve.FleetEventRef `json:"events,omitempty"`
	MigrationPenalty *float64              `json:"migration_penalty,omitempty"`
	Deadlines        []WhatIfDeadline      `json:"deadlines,omitempty"`
}

// WhatIfDeadline moves one job's deadline (0 removes it).
type WhatIfDeadline struct {
	Job      string  `json:"job"`
	Deadline float64 `json:"deadline"`
}

// WhatIfResponse reports the forked simulation after the hypothesis:
// BaseVersion is the live version the fork branched from.
type WhatIfResponse struct {
	BaseVersion uint64                      `json:"base_version"`
	Now         float64                     `json:"now"`
	Nodes       int                         `json:"nodes"`
	Residents   int                         `json:"residents"`
	Cost        float64                     `json:"cost,omitempty"`
	Allocation  []serve.FleetFinalShareJSON `json:"allocation"`
}

// handleWhatIf forks the live simulation and applies the hypothesis to the
// fork. The fork is a deep copy sharing the allocator's plan memo, so it
// only pays for plans the hypothesis actually changes; forking holds the
// state lock, applying does not — a slow hypothesis never blocks ingestion.
func (c *Controller) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if err := serve.DecodeStrict(r.Body, &req); err != nil {
		c.badRequest(w, err)
		return
	}
	if len(req.Events) == 0 && req.MigrationPenalty == nil && len(req.Deadlines) == 0 {
		c.badRequest(w, errString("controller: whatif needs events, migration_penalty or deadlines"))
		return
	}
	events, err := serve.ResolveFleetEvents(req.Events)
	if err != nil {
		c.badRequest(w, err)
		return
	}

	c.mu.Lock()
	if c.poisoned != nil {
		c.mu.Unlock()
		c.unavailable(w)
		return
	}
	fork := c.sim.Fork()
	baseVersion := c.version
	c.mu.Unlock()

	if req.MigrationPenalty != nil {
		if err := fork.SetMigrationPenalty(*req.MigrationPenalty); err != nil {
			c.badRequest(w, err)
			return
		}
	}
	for _, d := range req.Deadlines {
		if err := fork.SetDeadline(d.Job, d.Deadline); err != nil {
			c.unprocessable(w, err)
			return
		}
	}
	if len(events) > 0 {
		if err := fork.Ingest(events); err != nil {
			// The fork is discarded either way; an apply failure poisons
			// nothing but means the hypothesis has no answer.
			c.unprocessable(w, err)
			return
		}
	} else if err := fork.ReplanNow(); err != nil {
		c.unprocessable(w, err)
		return
	}
	snap := fork.Snapshot()
	c.whatifsTotal.Inc()
	c.writeJSON(w, http.StatusOK, WhatIfResponse{
		BaseVersion: baseVersion, Now: fork.Now(),
		Nodes: fork.NodeCount(), Residents: fork.Residents(),
		Cost:       snap.Cost,
		Allocation: serve.NewFleetFinalShares(fork.Shares()),
	})
}

// handleStream is GET /v1/fleet/stream: a server-sent-event stream with one
// "allocation" event per applied batch (data: AllocationResponse JSON),
// preceded by a snapshot of the current state on subscribe. A subscriber
// that cannot keep up skips updates rather than stalling ingestion.
func (c *Controller) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		c.writeJSON(w, http.StatusInternalServerError, serve.ErrorResponse{Error: "controller: streaming unsupported by this connection"})
		return
	}
	sub := c.hub.subscribe()
	defer c.hub.unsubscribe(sub)
	c.streamClients.Inc()
	defer c.streamClients.Dec()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	c.mu.Lock()
	poisoned := c.poisoned != nil
	var snap AllocationResponse
	if !poisoned {
		snap = c.allocationLocked()
	}
	c.mu.Unlock()
	if poisoned {
		writeSSE(w, "error", []byte(`{"error":"controller poisoned"}`))
		fl.Flush()
		return
	}
	if raw, err := json.Marshal(snap); err == nil {
		writeSSE(w, "allocation", raw)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case msg, ok := <-sub:
			if !ok {
				return // hub closed (shutdown)
			}
			writeSSE(w, "allocation", msg)
			fl.Flush()
		}
	}
}

// writeSSE frames one server-sent event.
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// HealthResponse is GET /healthz: liveness plus the state machine's vitals.
type HealthResponse struct {
	Status        string  `json:"status"` // ok | poisoned
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       uint64  `json:"version"`
	Events        int     `json:"events"`
	Nodes         int     `json:"nodes"`
	Residents     int     `json:"residents"`
}

func (c *Controller) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(c.started).Seconds(),
		Version:       c.version,
		Events:        c.sim.EventCount(),
		Nodes:         c.sim.NodeCount(),
		Residents:     c.sim.Residents(),
	}
	if c.poisoned != nil {
		resp.Status = "poisoned"
	}
	c.mu.Unlock()
	c.writeJSON(w, http.StatusOK, resp)
}

// handleReady mirrors the serve tier's readiness split: 200 while the
// state machine accepts events, 503 once poisoned.
func (c *Controller) handleReady(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	poisoned := c.poisoned != nil
	c.mu.Unlock()
	if poisoned {
		c.writeJSON(w, http.StatusServiceUnavailable, serve.ReadyResponse{Status: "poisoned"})
		return
	}
	c.writeJSON(w, http.StatusOK, serve.ReadyResponse{Status: "ready"})
}

func (c *Controller) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WritePrometheus(w)
}

func (c *Controller) writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

func (c *Controller) badRequest(w http.ResponseWriter, err error) {
	c.writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
}

func (c *Controller) unprocessable(w http.ResponseWriter, err error) {
	c.writeJSON(w, http.StatusUnprocessableEntity, serve.ErrorResponse{Error: err.Error()})
}

func (c *Controller) unavailable(w http.ResponseWriter) {
	c.mu.Lock()
	msg := "controller poisoned"
	if c.poisoned != nil {
		msg = "controller poisoned: " + c.poisoned.Error()
	}
	c.mu.Unlock()
	c.writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: msg})
}

type errString string

func (e errString) Error() string { return string(e) }
