package nn

import (
	"math"
	"math/rand"

	"chimera/internal/tensor"
)

// SelfAttention is multi-head causal self-attention over rows organized as
// batches of fixed sequence length T: input is (B·T)×C, interpreted as B
// sequences. Projections are fused (QKV in one linear).
type SelfAttention struct {
	QKV  *Linear // C -> 3C
	Proj *Linear // C -> C
	dim  int
	head int
	seq  int

	cache map[int]*attnCache
}

type attnCache struct {
	q, k, v *tensor.Tensor // (B·T)×C each
	probs   []*tensor.Tensor
	batch   int
}

// NewSelfAttention creates a causal multi-head attention layer for model
// width dim, heads heads, and fixed sequence length seqLen.
func NewSelfAttention(name string, dim, heads, seqLen int) *SelfAttention {
	if dim%heads != 0 {
		panic("nn: dim must be divisible by heads")
	}
	return &SelfAttention{
		QKV:   NewLinear(name+".qkv", dim, 3*dim),
		Proj:  NewLinear(name+".proj", dim, dim),
		dim:   dim,
		head:  heads,
		seq:   seqLen,
		cache: make(map[int]*attnCache),
	}
}

func (a *SelfAttention) initWeights(rng *rand.Rand) {
	a.QKV.initWeights(rng)
	a.Proj.initWeights(rng)
}

// headSlice extracts head h of sequence b from a (B·T)×C tensor into a T×Dh
// matrix.
func (a *SelfAttention) headSlice(x *tensor.Tensor, b, h int) *tensor.Tensor {
	dh := a.dim / a.head
	out := tensor.New(a.seq, dh)
	for t := 0; t < a.seq; t++ {
		src := x.Data[((b*a.seq+t)*a.dim + h*dh):((b*a.seq+t)*a.dim + (h+1)*dh)]
		copy(out.Data[t*dh:(t+1)*dh], src)
	}
	return out
}

func (a *SelfAttention) scatterHead(dst *tensor.Tensor, src *tensor.Tensor, b, h int, accumulate bool) {
	dh := a.dim / a.head
	for t := 0; t < a.seq; t++ {
		d := dst.Data[((b*a.seq+t)*a.dim + h*dh):((b*a.seq+t)*a.dim + (h+1)*dh)]
		s := src.Data[t*dh : (t+1)*dh]
		for j := range d {
			if accumulate {
				d[j] += s[j]
			} else {
				d[j] = s[j]
			}
		}
	}
}

// Forward computes causal multi-head attention.
func (a *SelfAttention) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len() / a.dim
	batch := rows / a.seq
	qkv := a.QKV.Forward(mb, x) // rows × 3C
	q := tensor.New(rows, a.dim)
	k := tensor.New(rows, a.dim)
	v := tensor.New(rows, a.dim)
	for r := 0; r < rows; r++ {
		src := qkv.Data[r*3*a.dim : (r+1)*3*a.dim]
		copy(q.Data[r*a.dim:(r+1)*a.dim], src[0:a.dim])
		copy(k.Data[r*a.dim:(r+1)*a.dim], src[a.dim:2*a.dim])
		copy(v.Data[r*a.dim:(r+1)*a.dim], src[2*a.dim:3*a.dim])
	}
	dh := a.dim / a.head
	scale := float32(1 / math.Sqrt(float64(dh)))
	ctx := tensor.New(rows, a.dim)
	probs := make([]*tensor.Tensor, batch*a.head)
	for b := 0; b < batch; b++ {
		for h := 0; h < a.head; h++ {
			qh := a.headSlice(q, b, h) // T×Dh
			kh := a.headSlice(k, b, h)
			vh := a.headSlice(v, b, h)
			scores := tensor.New(a.seq, a.seq)
			tensor.MatMulTransB(scores, qh, kh)
			tensor.Scale(scores, scores, scale)
			// Causal mask: position t attends to ≤ t.
			for t := 0; t < a.seq; t++ {
				for u := t + 1; u < a.seq; u++ {
					scores.Set(t, u, float32(math.Inf(-1)))
				}
			}
			tensor.SoftmaxRows(scores, scores)
			probs[b*a.head+h] = scores
			out := tensor.New(a.seq, dh)
			tensor.MatMul(out, scores, vh)
			a.scatterHead(ctx, out, b, h, false)
		}
	}
	a.cache[mb] = &attnCache{q: q, k: k, v: v, probs: probs, batch: batch}
	return a.Proj.Forward(mb, ctx)
}

// Backward propagates through projection, attention weights, and QKV.
func (a *SelfAttention) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	c, ok := a.cache[mb]
	if !ok {
		cacheKeyPanic("attention", mb)
	}
	delete(a.cache, mb)
	dctx := a.Proj.Backward(mb, dy) // rows × C
	rows := c.batch * a.seq
	dh := a.dim / a.head
	scale := float32(1 / math.Sqrt(float64(dh)))
	dq := tensor.New(rows, a.dim)
	dk := tensor.New(rows, a.dim)
	dv := tensor.New(rows, a.dim)
	for b := 0; b < c.batch; b++ {
		for h := 0; h < a.head; h++ {
			probs := c.probs[b*a.head+h] // T×T
			qh := a.headSlice(c.q, b, h)
			kh := a.headSlice(c.k, b, h)
			vh := a.headSlice(c.v, b, h)
			dout := a.headSlice(dctx, b, h) // T×Dh

			// dV = probsᵀ · dout
			dvh := tensor.New(a.seq, dh)
			tensor.MatMulTransA(dvh, probs, dout)
			// dProbs = dout · vᵀ
			dprobs := tensor.New(a.seq, a.seq)
			tensor.MatMulTransB(dprobs, dout, vh)
			// Softmax backward per row: ds = p ⊙ (dp - Σ p·dp)
			dscores := tensor.New(a.seq, a.seq)
			for t := 0; t < a.seq; t++ {
				var dot float64
				for u := 0; u <= t; u++ {
					dot += float64(probs.At(t, u)) * float64(dprobs.At(t, u))
				}
				for u := 0; u <= t; u++ {
					dscores.Set(t, u, probs.At(t, u)*(dprobs.At(t, u)-float32(dot)))
				}
			}
			tensor.Scale(dscores, dscores, scale)
			// dQ = dscores · K ; dK = dscoresᵀ · Q
			dqh := tensor.New(a.seq, dh)
			tensor.MatMul(dqh, dscores, kh)
			dkh := tensor.New(a.seq, dh)
			tensor.MatMulTransA(dkh, dscores, qh)
			a.scatterHead(dq, dqh, b, h, false)
			a.scatterHead(dk, dkh, b, h, false)
			a.scatterHead(dv, dvh, b, h, false)
		}
	}
	// Reassemble d(qkv) and push through the fused projection.
	dqkv := tensor.New(rows, 3*a.dim)
	for r := 0; r < rows; r++ {
		dst := dqkv.Data[r*3*a.dim : (r+1)*3*a.dim]
		copy(dst[0:a.dim], dq.Data[r*a.dim:(r+1)*a.dim])
		copy(dst[a.dim:2*a.dim], dk.Data[r*a.dim:(r+1)*a.dim])
		copy(dst[2*a.dim:3*a.dim], dv.Data[r*a.dim:(r+1)*a.dim])
	}
	return a.QKV.Backward(mb, dqkv)
}

// Params returns the projection parameters.
func (a *SelfAttention) Params() []*Param {
	return append(a.QKV.Params(), a.Proj.Params()...)
}

// DropCache discards cached attention state for mb.
func (a *SelfAttention) DropCache(mb int) {
	delete(a.cache, mb)
	a.QKV.DropCache(mb)
	a.Proj.DropCache(mb)
}
