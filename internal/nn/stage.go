package nn

import (
	"chimera/internal/tensor"
)

// Stage is an ordered group of layers executed on one pipeline worker: the
// unit of model partitioning in pipeline parallelism. It chains layer
// forward/backward passes, supports activation recomputation, and exposes a
// flat gradient vector for allreduce-based synchronization.
type Stage struct {
	// ID is the pipeline stage index this group of layers implements.
	ID     int
	Layers []Layer

	// Recompute, when true, drops intermediate activations after Forward and
	// replays the forward pass from the stored boundary input on Backward
	// (activation recomputation, Chen et al.; costs ≈1 extra forward).
	Recompute bool

	inputs map[int]*tensor.Tensor // boundary inputs kept for recomputation
}

// NewStage builds a stage from layers.
func NewStage(id int, layers ...Layer) *Stage {
	return &Stage{ID: id, Layers: layers, inputs: make(map[int]*tensor.Tensor)}
}

// Forward runs micro-batch mb through all layers.
func (s *Stage) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	if s.Recompute {
		s.inputs[mb] = x.Clone()
	}
	y := x
	for _, l := range s.Layers {
		y = l.Forward(mb, y)
	}
	if s.Recompute {
		for _, l := range s.Layers {
			l.DropCache(mb)
		}
	}
	return y
}

// Backward runs micro-batch mb backward through all layers, returning the
// gradient w.r.t. the stage input. With Recompute set, the forward pass is
// replayed first.
func (s *Stage) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	if s.Recompute {
		x, ok := s.inputs[mb]
		if !ok {
			cacheKeyPanic("stage", mb)
		}
		delete(s.inputs, mb)
		y := x
		for _, l := range s.Layers {
			y = l.Forward(mb, y)
		}
	}
	g := dy
	for i := len(s.Layers) - 1; i >= 0; i-- {
		g = s.Layers[i].Backward(mb, g)
	}
	return g
}

// Params returns all stage parameters.
func (s *Stage) Params() []*Param { return CollectParams(s.Layers) }

// ZeroGrads clears all parameter gradients.
func (s *Stage) ZeroGrads() { ZeroGrads(s.Layers) }

// GradVector flattens all parameter gradients into one contiguous slice
// (copied), in deterministic parameter order.
func (s *Stage) GradVector() []float32 {
	n := 0
	for _, p := range s.Params() {
		n += p.Grad.Len()
	}
	out := make([]float32, 0, n)
	for _, p := range s.Params() {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// SetGradVector writes a flat gradient slice back into parameter gradients.
func (s *Stage) SetGradVector(v []float32) {
	off := 0
	for _, p := range s.Params() {
		n := p.Grad.Len()
		copy(p.Grad.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic("nn: gradient vector length mismatch")
	}
}

// WeightVector flattens all parameter values (copied).
func (s *Stage) WeightVector() []float32 {
	var out []float32
	for _, p := range s.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// SetWeightVector writes flat weights back into parameters.
func (s *Stage) SetWeightVector(v []float32) {
	off := 0
	for _, p := range s.Params() {
		n := p.Value.Len()
		copy(p.Value.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic("nn: weight vector length mismatch")
	}
}

// ParamElements returns the total number of scalar parameters.
func (s *Stage) ParamElements() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}
