package nn

import (
	"math/rand"

	"chimera/internal/tensor"
)

// TransformerBlock is a pre-norm transformer layer:
//
//	x = x + Attn(LN1(x))
//	x = x + MLP(LN2(x)), MLP = Linear(C→4C) → GELU → Linear(4C→C)
type TransformerBlock struct {
	LN1  *LayerNorm
	Attn *SelfAttention
	LN2  *LayerNorm
	FC1  *Linear
	Act  *GELULayer
	FC2  *Linear

	dim   int
	cache map[int]*blockCache
}

type blockCache struct {
	x, mid *tensor.Tensor
}

// NewTransformerBlock builds a block with width dim, heads heads, fixed
// sequence length seqLen and 4× MLP expansion.
func NewTransformerBlock(name string, dim, heads, seqLen int) *TransformerBlock {
	return &TransformerBlock{
		LN1:   NewLayerNorm(name+".ln1", dim),
		Attn:  NewSelfAttention(name+".attn", dim, heads, seqLen),
		LN2:   NewLayerNorm(name+".ln2", dim),
		FC1:   NewLinear(name+".fc1", dim, 4*dim),
		Act:   NewGELU(),
		FC2:   NewLinear(name+".fc2", 4*dim, dim),
		dim:   dim,
		cache: make(map[int]*blockCache),
	}
}

func (b *TransformerBlock) initWeights(rng *rand.Rand) {
	b.Attn.initWeights(rng)
	b.FC1.initWeights(rng)
	b.FC2.initWeights(rng)
}

// Forward applies the block; x is (B·T)×C.
func (b *TransformerBlock) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	attnOut := b.Attn.Forward(mb, b.LN1.Forward(mb, x))
	mid := tensor.New(x.Shape...)
	tensor.Add(mid, x.Reshape(mid.Shape...), attnOut)
	mlp := b.FC2.Forward(mb, b.Act.Forward(mb, b.FC1.Forward(mb, b.LN2.Forward(mb, mid))))
	out := tensor.New(mid.Shape...)
	tensor.Add(out, mid, mlp)
	b.cache[mb] = &blockCache{x: x, mid: mid}
	return out
}

// Backward propagates through both residual branches.
func (b *TransformerBlock) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	c, ok := b.cache[mb]
	if !ok {
		cacheKeyPanic("block", mb)
	}
	delete(b.cache, mb)
	// MLP branch: dmid = dy + LN2ᵀ(FC1ᵀ(GELUᵀ(FC2ᵀ(dy))))
	dmlp := b.LN2.Backward(mb, b.FC1.Backward(mb, b.Act.Backward(mb, b.FC2.Backward(mb, dy))))
	dmid := tensor.New(c.mid.Shape...)
	tensor.Add(dmid, dy.Reshape(dmid.Shape...), dmlp)
	// Attention branch: dx = dmid + LN1ᵀ(Attnᵀ(dmid))
	dattn := b.LN1.Backward(mb, b.Attn.Backward(mb, dmid))
	dx := tensor.New(c.x.Shape...)
	tensor.Add(dx, dmid.Reshape(dx.Shape...), dattn)
	return dx
}

// Params returns all block parameters.
func (b *TransformerBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.LN1.Params()...)
	out = append(out, b.Attn.Params()...)
	out = append(out, b.LN2.Params()...)
	out = append(out, b.FC1.Params()...)
	out = append(out, b.FC2.Params()...)
	return out
}

// DropCache discards all cached state for mb.
func (b *TransformerBlock) DropCache(mb int) {
	delete(b.cache, mb)
	b.LN1.DropCache(mb)
	b.Attn.DropCache(mb)
	b.LN2.DropCache(mb)
	b.FC1.DropCache(mb)
	b.Act.DropCache(mb)
	b.FC2.DropCache(mb)
}
