package nn

import (
	"math/rand"

	"chimera/internal/tensor"
)

// Embedding maps token ids to vectors and adds learned positional
// embeddings. Input is a (B·T)-length tensor whose float32 values are token
// ids (pipeline boundaries carry float32 payloads); T is fixed at
// construction so positions can be recovered from flat row indices.
type Embedding struct {
	Tok, Pos *Param
	vocab    int
	dim      int
	seqLen   int
	cache    map[int][]int // micro-batch id -> token ids
}

// NewEmbedding creates token + positional embeddings.
func NewEmbedding(name string, vocab, dim, seqLen int) *Embedding {
	return &Embedding{
		Tok:    NewParam(name+".tok", vocab, dim),
		Pos:    NewParam(name+".pos", seqLen, dim),
		vocab:  vocab,
		dim:    dim,
		seqLen: seqLen,
		cache:  make(map[int][]int),
	}
}

func (e *Embedding) initWeights(rng *rand.Rand) {
	e.Tok.Value.RandN(rng, 0.02)
	e.Pos.Value.RandN(rng, 0.02)
}

// Forward gathers token and position vectors: out[r] = Tok[ids[r]] + Pos[r%T].
func (e *Embedding) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len()
	ids := make([]int, rows)
	for i, v := range x.Data {
		id := int(v)
		if id < 0 || id >= e.vocab {
			id = 0
		}
		ids[i] = id
	}
	out := tensor.New(rows, e.dim)
	for r := 0; r < rows; r++ {
		tok := e.Tok.Value.Data[ids[r]*e.dim : (ids[r]+1)*e.dim]
		pos := e.Pos.Value.Data[(r%e.seqLen)*e.dim : (r%e.seqLen+1)*e.dim]
		dst := out.Data[r*e.dim : (r+1)*e.dim]
		for j := range dst {
			dst[j] = tok[j] + pos[j]
		}
	}
	e.cache[mb] = ids
	return out
}

// Backward scatters gradients into the token and position tables; the
// returned dx is nil-like (a zero tensor) since token ids are not
// differentiable.
func (e *Embedding) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	ids, ok := e.cache[mb]
	if !ok {
		cacheKeyPanic(e.Tok.Name, mb)
	}
	delete(e.cache, mb)
	rows := len(ids)
	for r := 0; r < rows; r++ {
		g := dy.Data[r*e.dim : (r+1)*e.dim]
		tok := e.Tok.Grad.Data[ids[r]*e.dim : (ids[r]+1)*e.dim]
		pos := e.Pos.Grad.Data[(r%e.seqLen)*e.dim : (r%e.seqLen+1)*e.dim]
		for j := range g {
			tok[j] += g[j]
			pos[j] += g[j]
		}
	}
	return tensor.New(rows, 1)
}

// Params returns the embedding tables.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// DropCache discards cached token ids for mb.
func (e *Embedding) DropCache(mb int) { delete(e.cache, mb) }
