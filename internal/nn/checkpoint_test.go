package nn

import (
	"bytes"
	"testing"

	"chimera/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	mk := func(seed int64) *Stage {
		s := NewStage(0, NewLinear("fc", 4, 6), NewLayerNorm("ln", 6))
		InitWeights(s.Layers, seed)
		return s
	}
	src := mk(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := mk(2) // different init
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if d := tensor.MaxAbsDiff(sp[i].Value, dp[i].Value); d != 0 {
			t.Fatalf("param %s differs by %v after round trip", sp[i].Name, d)
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	a := NewStage(0, NewLinear("fc", 4, 6))
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	// Different parameter name.
	b := NewStage(0, NewLinear("other", 4, 6))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), b.Params()); err == nil {
		t.Fatal("name mismatch must be rejected")
	}
	// Different shape.
	c := NewStage(0, NewLinear("fc", 4, 8))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), c.Params()); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	// Different count.
	d := NewStage(0, NewLinear("fc", 4, 6), NewLayerNorm("ln", 6))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), d.Params()); err == nil {
		t.Fatal("count mismatch must be rejected")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	s := NewStage(0, NewLinear("fc", 2, 2))
	if err := LoadParams(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), s.Params()); err == nil {
		t.Fatal("garbage input must be rejected")
	}
}
