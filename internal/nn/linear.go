package nn

import (
	"math"
	"math/rand"

	"chimera/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b for row-major x (rows =
// flattened batch·sequence positions).
type Linear struct {
	W, B  *Param
	in    int
	out   int
	cache map[int]*tensor.Tensor // micro-batch id -> input x
}

// NewLinear creates a Linear layer mapping in features to out features.
func NewLinear(name string, in, out int) *Linear {
	return &Linear{
		W:     NewParam(name+".w", in, out),
		B:     NewParam(name+".b", out),
		in:    in,
		out:   out,
		cache: make(map[int]*tensor.Tensor),
	}
}

func (l *Linear) initWeights(rng *rand.Rand) {
	l.W.Value.RandN(rng, 1/math.Sqrt(float64(l.in)))
	l.B.Value.Zero()
}

// Forward computes y = x·W + b and caches x for the backward pass.
func (l *Linear) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len() / l.in
	x2 := x.Reshape(rows, l.in)
	y := tensor.New(rows, l.out)
	tensor.MatMul(y, x2, l.W.Value)
	tensor.AddBiasRows(y, l.B.Value)
	l.cache[mb] = x2
	return y
}

// Backward computes dx = dy·Wᵀ and accumulates dW += xᵀ·dy, db += Σrows dy.
func (l *Linear) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	x, ok := l.cache[mb]
	if !ok {
		cacheKeyPanic(l.W.Name, mb)
	}
	delete(l.cache, mb)
	rows := x.Shape[0]
	dy2 := dy.Reshape(rows, l.out)
	// dW += xᵀ · dy
	dW := tensor.New(l.in, l.out)
	tensor.MatMulTransA(dW, x, dy2)
	tensor.AddInto(l.W.Grad, dW)
	// db += column sums of dy
	for i := 0; i < rows; i++ {
		row := dy2.Data[i*l.out : (i+1)*l.out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	// dx = dy · Wᵀ
	dx := tensor.New(rows, l.in)
	tensor.MatMulTransB(dx, dy2, l.W.Value)
	return dx
}

// Params returns the layer parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// DropCache discards the cached input for mb.
func (l *Linear) DropCache(mb int) { delete(l.cache, mb) }

// GELULayer applies the GELU nonlinearity elementwise.
type GELULayer struct {
	cache map[int]*tensor.Tensor
}

// NewGELU creates a GELU activation layer.
func NewGELU() *GELULayer { return &GELULayer{cache: make(map[int]*tensor.Tensor)} }

// Forward applies gelu(x).
func (g *GELULayer) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	tensor.GELU(y, x)
	g.cache[mb] = x
	return y
}

// Backward computes dx = gelu'(x) ⊙ dy.
func (g *GELULayer) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	x, ok := g.cache[mb]
	if !ok {
		cacheKeyPanic("gelu", mb)
	}
	delete(g.cache, mb)
	dx := tensor.New(x.Shape...)
	tensor.GELUGrad(dx, x, dy)
	return dx
}

// Params returns nil: GELU has no parameters.
func (g *GELULayer) Params() []*Param { return nil }

// DropCache discards the cached input for mb.
func (g *GELULayer) DropCache(mb int) { delete(g.cache, mb) }

// LayerNorm normalizes each row to zero mean / unit variance, then applies a
// learned affine transform: y = (x-μ)/√(σ²+ε) ⊙ g + b.
type LayerNorm struct {
	G, Bias *Param
	dim     int
	eps     float32
	cache   map[int]*lnCache
}

type lnCache struct {
	x        *tensor.Tensor
	mean     []float32
	invStd   []float32
	normed   *tensor.Tensor
	rowCount int
}

// NewLayerNorm creates a LayerNorm over the trailing dimension dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		G:     NewParam(name+".g", dim),
		Bias:  NewParam(name+".b", dim),
		dim:   dim,
		eps:   1e-5,
		cache: make(map[int]*lnCache),
	}
	ln.G.Value.Fill(1)
	return ln
}

// Forward normalizes rows and applies the affine transform.
func (l *LayerNorm) Forward(mb int, x *tensor.Tensor) *tensor.Tensor {
	rows := x.Len() / l.dim
	x2 := x.Reshape(rows, l.dim)
	mean, variance := tensor.RowMeanVar(x2)
	invStd := make([]float32, rows)
	for i := range invStd {
		invStd[i] = float32(1 / math.Sqrt(float64(variance[i])+float64(l.eps)))
	}
	normed := tensor.New(rows, l.dim)
	y := tensor.New(rows, l.dim)
	for i := 0; i < rows; i++ {
		xr := x2.Data[i*l.dim : (i+1)*l.dim]
		nr := normed.Data[i*l.dim : (i+1)*l.dim]
		yr := y.Data[i*l.dim : (i+1)*l.dim]
		for j := range xr {
			nr[j] = (xr[j] - mean[i]) * invStd[i]
			yr[j] = nr[j]*l.G.Value.Data[j] + l.Bias.Value.Data[j]
		}
	}
	l.cache[mb] = &lnCache{x: x2, mean: mean, invStd: invStd, normed: normed, rowCount: rows}
	return y
}

// Backward computes the layernorm gradient and accumulates dG, dBias.
func (l *LayerNorm) Backward(mb int, dy *tensor.Tensor) *tensor.Tensor {
	c, ok := l.cache[mb]
	if !ok {
		cacheKeyPanic(l.G.Name, mb)
	}
	delete(l.cache, mb)
	rows := c.rowCount
	dy2 := dy.Reshape(rows, l.dim)
	dx := tensor.New(rows, l.dim)
	n := float64(l.dim)
	for i := 0; i < rows; i++ {
		dyr := dy2.Data[i*l.dim : (i+1)*l.dim]
		nr := c.normed.Data[i*l.dim : (i+1)*l.dim]
		dxr := dx.Data[i*l.dim : (i+1)*l.dim]
		// Accumulate parameter grads and the two reduction terms.
		var sumDyG, sumDyGN float64
		for j := range dyr {
			l.G.Grad.Data[j] += dyr[j] * nr[j]
			l.Bias.Grad.Data[j] += dyr[j]
			dyg := float64(dyr[j]) * float64(l.G.Value.Data[j])
			sumDyG += dyg
			sumDyGN += dyg * float64(nr[j])
		}
		for j := range dyr {
			dyg := float64(dyr[j]) * float64(l.G.Value.Data[j])
			dxr[j] = float32(float64(c.invStd[i]) * (dyg - sumDyG/n - float64(nr[j])*sumDyGN/n))
		}
	}
	return dx
}

// Params returns gain and bias.
func (l *LayerNorm) Params() []*Param { return []*Param{l.G, l.Bias} }

// DropCache discards cached statistics for mb.
func (l *LayerNorm) DropCache(mb int) { delete(l.cache, mb) }
