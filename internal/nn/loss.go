package nn

import (
	"math"

	"chimera/internal/tensor"
)

// CrossEntropy computes the mean token-level cross-entropy of logits
// (rows×V) against integer targets, and the gradient d(loss)/d(logits).
// The gradient is scaled by gradScale (use 1/numMicroBatches so that
// accumulating micro-batch gradients yields the mini-batch mean, matching
// the paper's synchronous SGD semantics).
func CrossEntropy(logits *tensor.Tensor, targets []int, gradScale float32) (loss float64, dlogits *tensor.Tensor) {
	rows, v := logits.Shape[0], logits.Shape[1]
	if len(targets) != rows {
		panic("nn: target count mismatch")
	}
	probs := tensor.New(rows, v)
	tensor.SoftmaxRows(probs, logits)
	dlogits = tensor.New(rows, v)
	invRows := 1 / float64(rows)
	for r := 0; r < rows; r++ {
		t := targets[r]
		p := float64(probs.At(r, t))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * invRows
		drow := dlogits.Data[r*v : (r+1)*v]
		prow := probs.Data[r*v : (r+1)*v]
		for j := range drow {
			drow[j] = prow[j] * float32(invRows) * gradScale
		}
		drow[t] -= float32(invRows) * gradScale
	}
	return loss, dlogits
}
