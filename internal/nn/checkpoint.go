package nn

import (
	"encoding/binary"
	"fmt"
	"io"
)

// checkpointMagic guards against loading unrelated files.
const checkpointMagic = 0x43484d52 // "CHMR"

// SaveParams writes the parameter values of a stage (or any parameter list)
// in a self-describing little-endian binary format: per parameter, the name
// and the raw float32 values. Gradients and optimizer state are not saved —
// checkpoints capture weights, like the common framework convention.
func SaveParams(w io.Writer, params []*Param) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(checkpointMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.Value.Len())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into params, matching
// by order and validating names and sizes.
func LoadParams(r io.Reader, params []*Param) error {
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not a chimera checkpoint (magic %x)", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %q does not match model param %q", name, p.Name)
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != p.Value.Len() {
			return fmt.Errorf("nn: param %q has %d values in checkpoint, %d in model", p.Name, n, p.Value.Len())
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}
