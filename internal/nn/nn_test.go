package nn

import (
	"math"
	"math/rand"
	"testing"

	"chimera/internal/tensor"
)

// lossOf computes a deterministic scalar loss Σ w⊙y for a layer's output,
// used as the objective for finite-difference gradient checks.
func lossOf(l Layer, x *tensor.Tensor, w []float32) float64 {
	y := l.Forward(999, x.Clone())
	defer l.DropCache(999)
	var s float64
	for i, v := range y.Data {
		s += float64(v) * float64(w[i%len(w)])
	}
	return s
}

// checkGrads runs Forward+Backward once analytically, then verifies a sample
// of input and parameter gradients against central finite differences.
func checkGrads(t *testing.T, l Layer, x *tensor.Tensor, outLen int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	w := make([]float32, outLen)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	// Analytic pass.
	y := l.Forward(0, x.Clone())
	if y.Len()%outLen != 0 {
		t.Fatalf("output len %d not multiple of %d", y.Len(), outLen)
	}
	dy := tensor.New(y.Shape...)
	for i := range dy.Data {
		dy.Data[i] = w[i%outLen]
	}
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	dx := l.Backward(0, dy)

	const h = 1e-2
	checkOne := func(name string, data []float32, grad []float32, idx int) {
		t.Helper()
		orig := data[idx]
		data[idx] = orig + h
		lp := lossOf(l, x, w)
		data[idx] = orig - h
		lm := lossOf(l, x, w)
		data[idx] = orig
		fd := (lp - lm) / (2 * h)
		got := float64(grad[idx])
		denom := math.Max(1, math.Max(math.Abs(fd), math.Abs(got)))
		if math.Abs(fd-got)/denom > tol {
			t.Errorf("%s[%d]: analytic %v vs fd %v", name, idx, got, fd)
		}
	}
	// Sample input gradient positions.
	for k := 0; k < 6 && k < x.Len(); k++ {
		idx := (k * 7919) % x.Len()
		checkOne("dx", x.Data, dx.Data, idx)
	}
	// Sample each parameter.
	for _, p := range l.Params() {
		for k := 0; k < 4 && k < p.Value.Len(); k++ {
			idx := (k * 104729) % p.Value.Len()
			checkOne(p.Name, p.Value.Data, p.Grad.Data, idx)
		}
	}
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(shape...)
	x.RandN(rng, 1)
	return x
}

func TestLinearGradCheck(t *testing.T) {
	l := NewLinear("fc", 5, 7)
	InitWeights([]Layer{l}, 1)
	checkGrads(t, l, randInput(2, 3, 5), 7, 2e-2)
}

func TestLayerNormGradCheck(t *testing.T) {
	l := NewLayerNorm("ln", 8)
	checkGrads(t, l, randInput(3, 4, 8), 8, 2e-2)
}

func TestGELUGradCheckLayer(t *testing.T) {
	l := NewGELU()
	checkGrads(t, l, randInput(4, 3, 6), 6, 2e-2)
}

func TestAttentionGradCheck(t *testing.T) {
	l := NewSelfAttention("attn", 8, 2, 4)
	InitWeights([]Layer{l}, 5)
	checkGrads(t, l, randInput(6, 2*4, 8), 8, 3e-2)
}

func TestBlockGradCheck(t *testing.T) {
	l := NewTransformerBlock("blk", 8, 2, 4)
	InitWeights([]Layer{l}, 7)
	checkGrads(t, l, randInput(8, 1*4, 8), 8, 3e-2)
}

func TestEmbeddingGradScatter(t *testing.T) {
	e := NewEmbedding("emb", 10, 4, 3)
	InitWeights([]Layer{e}, 9)
	ids := tensor.FromSlice([]float32{1, 2, 1}, 3) // one batch, T=3
	y := e.Forward(0, ids)
	dy := tensor.New(y.Shape...)
	dy.Fill(1)
	e.Backward(0, dy)
	// Token 1 appears twice: its grad row should be 2, token 2 once: 1.
	for j := 0; j < 4; j++ {
		if e.Tok.Grad.At(1, j) != 2 {
			t.Fatalf("tok1 grad %v", e.Tok.Grad.At(1, j))
		}
		if e.Tok.Grad.At(2, j) != 1 {
			t.Fatalf("tok2 grad %v", e.Tok.Grad.At(2, j))
		}
		if e.Tok.Grad.At(3, j) != 0 {
			t.Fatalf("tok3 grad %v", e.Tok.Grad.At(3, j))
		}
		// Every position used once.
		if e.Pos.Grad.At(j%3, 0) != 1 {
			t.Fatalf("pos grad %v", e.Pos.Grad.At(j%3, 0))
		}
	}
}

func TestEmbeddingClampsOutOfVocab(t *testing.T) {
	e := NewEmbedding("emb", 4, 2, 2)
	InitWeights([]Layer{e}, 1)
	ids := tensor.FromSlice([]float32{-3, 99}, 2)
	y := e.Forward(0, ids)
	e.DropCache(0)
	// Both clamp to token 0: rows differ only by positional embedding.
	for j := 0; j < 2; j++ {
		d0 := y.At(0, j) - e.Pos.Value.At(0, j)
		d1 := y.At(1, j) - e.Pos.Value.At(1, j)
		if math.Abs(float64(d0-d1)) > 1e-6 {
			t.Fatalf("clamping failed: %v vs %v", d0, d1)
		}
	}
}

func TestCrossEntropyGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(4, 6)
	logits.RandN(rng, 1)
	targets := []int{1, 3, 0, 5}
	loss, dlogits := CrossEntropy(logits, targets, 1)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	const h = 1e-2
	for k := 0; k < 8; k++ {
		idx := (k * 31) % logits.Len()
		orig := logits.Data[idx]
		logits.Data[idx] = orig + h
		lp, _ := CrossEntropy(logits, targets, 1)
		logits.Data[idx] = orig - h
		lm, _ := CrossEntropy(logits, targets, 1)
		logits.Data[idx] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-float64(dlogits.Data[idx])) > 1e-3 {
			t.Fatalf("dlogits[%d]: %v vs fd %v", idx, dlogits.Data[idx], fd)
		}
	}
}

func TestCrossEntropyGradScale(t *testing.T) {
	logits := randInput(3, 2, 5)
	_, d1 := CrossEntropy(logits, []int{0, 1}, 1)
	_, d4 := CrossEntropy(logits, []int{0, 1}, 0.25)
	for i := range d1.Data {
		if math.Abs(float64(d1.Data[i]*0.25-d4.Data[i])) > 1e-7 {
			t.Fatal("gradScale not linear")
		}
	}
}

func TestMultipleMicroBatchesInFlight(t *testing.T) {
	// 1F1B-style interleaving (F0 F1 B0 B1 vs F0 B0 F1 B1) must accumulate
	// identical gradients — the property pipeline schedules rely on.
	build := func() *TransformerBlock {
		b := NewTransformerBlock("blk", 8, 2, 4)
		InitWeights([]Layer{b}, 3)
		return b
	}
	x0 := randInput(20, 4, 8)
	x1 := randInput(21, 4, 8)
	dy0 := randInput(22, 4, 8)
	dy1 := randInput(23, 4, 8)

	a := build()
	a.Forward(0, x0.Clone())
	a.Forward(1, x1.Clone())
	a.Backward(0, dy0)
	a.Backward(1, dy1)

	b := build()
	b.Forward(0, x0.Clone())
	b.Backward(0, dy0)
	b.Forward(1, x1.Clone())
	b.Backward(1, dy1)

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Grad, pb[i].Grad); d > 1e-6 {
			t.Fatalf("param %s grads diverge by %v under interleaving", pa[i].Name, d)
		}
	}
}

func TestStageRecomputeMatchesDirect(t *testing.T) {
	mk := func(recompute bool) *Stage {
		blk := NewTransformerBlock("blk", 8, 2, 4)
		fc := NewLinear("head", 8, 8)
		s := NewStage(0, blk, fc)
		InitWeights(s.Layers, 13)
		s.Recompute = recompute
		return s
	}
	x := randInput(30, 4, 8)
	dy := randInput(31, 4, 8)
	direct := mk(false)
	direct.Forward(0, x.Clone())
	dxd := direct.Backward(0, dy)

	recomp := mk(true)
	recomp.Forward(0, x.Clone())
	dxr := recomp.Backward(0, dy)

	if d := tensor.MaxAbsDiff(dxd, dxr); d > 1e-6 {
		t.Fatalf("recompute dx differs by %v", d)
	}
	gvd, gvr := direct.GradVector(), recomp.GradVector()
	for i := range gvd {
		if math.Abs(float64(gvd[i]-gvr[i])) > 1e-6 {
			t.Fatalf("recompute grads differ at %d", i)
		}
	}
}

func TestStageGradAndWeightVectorRoundTrip(t *testing.T) {
	s := NewStage(0, NewLinear("a", 3, 4), NewLayerNorm("ln", 4))
	InitWeights(s.Layers, 17)
	x := randInput(40, 2, 3)
	s.Forward(0, x)
	dy := randInput(41, 2, 4)
	s.Backward(0, dy)

	gv := s.GradVector()
	if len(gv) != s.ParamElements() {
		t.Fatalf("grad vector len %d != %d", len(gv), s.ParamElements())
	}
	for i := range gv {
		gv[i] *= 2
	}
	s.SetGradVector(gv)
	if got := s.GradVector(); got[0] != gv[0] {
		t.Fatal("SetGradVector did not apply")
	}

	wv := s.WeightVector()
	wv[0] += 1
	s.SetWeightVector(wv)
	if got := s.WeightVector(); got[0] != wv[0] {
		t.Fatal("SetWeightVector did not apply")
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	l := NewLinear("fc", 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Backward(5, tensor.New(1, 2))
}

func TestParamCountAndCollect(t *testing.T) {
	layers := []Layer{NewLinear("a", 3, 4), NewLayerNorm("ln", 4)}
	// Linear: 3*4+4 = 16; LN: 4+4 = 8.
	if n := ParamCount(layers); n != 24 {
		t.Fatalf("param count %d", n)
	}
	if len(CollectParams(layers)) != 4 {
		t.Fatalf("collect %d", len(CollectParams(layers)))
	}
	ZeroGrads(layers)
}

func TestBlockTrainsToLowerLoss(t *testing.T) {
	// One block + head must reduce loss on a fixed batch with plain SGD —
	// an end-to-end sanity check of all backward passes together.
	const vocab, dim, seq = 11, 8, 4
	emb := NewEmbedding("emb", vocab, dim, seq)
	blk := NewTransformerBlock("blk", dim, 2, seq)
	head := NewLinear("head", dim, vocab)
	layers := []Layer{emb, blk, head}
	InitWeights(layers, 23)

	rng := rand.New(rand.NewSource(99))
	ids := tensor.New(2 * seq)
	targets := make([]int, 2*seq)
	for i := range ids.Data {
		ids.Data[i] = float32(rng.Intn(vocab))
		targets[i] = rng.Intn(vocab)
	}
	step := func() float64 {
		ZeroGrads(layers)
		h := emb.Forward(0, ids)
		h = blk.Forward(0, h)
		logits := head.Forward(0, h)
		loss, dl := CrossEntropy(logits, targets, 1)
		g := head.Backward(0, dl)
		g = blk.Backward(0, g)
		emb.Backward(0, g)
		for _, p := range CollectParams(layers) {
			tensor.AXPY(p.Value, -0.5, p.Grad)
		}
		return loss
	}
	first := step()
	var last float64
	for i := 0; i < 30; i++ {
		last = step()
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}
