// Package nn implements the neural-network training substrate: transformer
// layers with explicit, micro-batch-keyed forward and backward passes.
//
// Unlike a tape autograd, every layer caches its forward activations per
// micro-batch id and exposes Backward(mb, dy) — exactly the contract a
// pipeline stage needs when several micro-batches are in flight (1F1B,
// Chimera) and when activation recomputation or weight stashing is on.
// Gradient correctness is pinned by finite-difference tests.
package nn

import (
	"fmt"
	"math/rand"

	"chimera/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and its gradient buffer.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward must be callable for several
// micro-batches before any Backward; Backward(mb, dy) consumes the cached
// activations of micro-batch mb (freeing them) and accumulates parameter
// gradients.
type Layer interface {
	Forward(mb int, x *tensor.Tensor) *tensor.Tensor
	Backward(mb int, dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	// DropCache discards cached activations for micro-batch mb without
	// running backward (used by activation recomputation).
	DropCache(mb int)
}

// ParamCount sums the element counts of all parameters of the given layers.
func ParamCount(layers []Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += p.Value.Len()
		}
	}
	return n
}

// InitAll seeds every parameter of the layers with N(0, std²) values; biases
// and layernorm parameters keep their conventional init (0 / 1) because each
// layer initializes itself at construction, so InitAll only perturbs weights
// explicitly registered as needing random init.
type initializer interface{ initWeights(rng *rand.Rand) }

// InitWeights randomly initializes all layers that support it, in order,
// using a deterministic stream derived from seed.
func InitWeights(layers []Layer, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range layers {
		if in, ok := l.(initializer); ok {
			in.initWeights(rng)
		}
	}
}

// CollectParams flattens the parameters of a layer list.
func CollectParams(layers []Layer) []*Param {
	var out []*Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears gradients on all parameters of the layers.
func ZeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}

// cacheKeyPanic reports a missing activation cache — a schedule bug
// (backward issued for a micro-batch whose forward never ran here).
func cacheKeyPanic(layer string, mb int) {
	panic(fmt.Sprintf("nn: %s backward for micro-batch %d without cached forward", layer, mb))
}
