package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/model"
)

// TestMemoCapEvictsLRU: a bounded table holds at most capacity entries and
// drops the least recently used key first.
func TestMemoCapEvictsLRU(t *testing.T) {
	m := NewMemoCap[int, int](2)
	calls := 0
	get := func(k int) int { return m.Do(k, func() int { calls++; return 10 * k }) }

	get(1)
	get(2)
	get(1) // touch 1 so 2 becomes the LRU victim
	get(3) // evicts 2
	if n := m.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if ev := m.Evictions(); ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	before := calls
	get(1) // still resident — no recompute
	if calls != before {
		t.Fatal("recently-used key was evicted")
	}
	get(2) // evicted — must recompute
	if calls != before+1 {
		t.Fatal("evicted key was not recomputed")
	}
	if v := get(2); v != 20 {
		t.Fatalf("recomputed value = %d, want 20", v)
	}
}

// TestMemoCapUnboundedByDefault: NewMemo and NewMemoCap(0) never evict.
func TestMemoCapUnboundedByDefault(t *testing.T) {
	for _, m := range []*Memo[int, int]{NewMemo[int, int](), NewMemoCap[int, int](0)} {
		for k := 0; k < 1000; k++ {
			m.Do(k, func() int { return k })
		}
		if n := m.Len(); n != 1000 {
			t.Fatalf("unbounded table Len = %d, want 1000", n)
		}
		if ev := m.Evictions(); ev != 0 {
			t.Fatalf("unbounded table evicted %d entries", ev)
		}
		if c := m.Capacity(); c != 0 {
			t.Fatalf("Capacity = %d, want 0", c)
		}
	}
}

// TestMemoCapSingleFlightUnderEviction: goroutines that joined an in-flight
// computation before its entry was evicted still share that one computation's
// value; a requester arriving after the eviction recomputes. No call may ever
// observe a zero (unset) value.
func TestMemoCapSingleFlightUnderEviction(t *testing.T) {
	m := NewMemoCap[int, int](1)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int32

	var wg sync.WaitGroup
	const waiters = 8
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = m.Do(0, func() int {
				computes.Add(1)
				close(started)
				<-release
				return 42
			})
		}(i)
	}
	<-started
	// Wait until every other waiter has joined the in-flight entry: each
	// join is recorded as a hit before the waiter blocks on the entry's
	// once, so hits == waiters-1 means all of them hold the original entry.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if h, _ := m.Stats(); h == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never joined the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	// Evict key 0 while its computation is still in flight: inserting two
	// other keys into a capacity-1 table forces it out.
	m.Do(1, func() int { return 1 })
	m.Do(2, func() int { return 2 })
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42 (single-flight broken by eviction)", i, v)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("in-flight computation ran %d times, want 1", got)
	}
	// Post-eviction requester recomputes and gets the fresh value.
	v := m.Do(0, func() int { computes.Add(1); return 43 })
	if v != 43 {
		t.Fatalf("post-eviction Do = %d, want recomputed 43", v)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("post-eviction compute count = %d, want 2", got)
	}
}

// TestMemoCapRaceStress: hammer a small bounded table from many goroutines
// with overlapping keys under -race; every returned value must match its key.
func TestMemoCapRaceStress(t *testing.T) {
	m := NewMemoCap[int, int](4)
	const (
		goroutines = 16
		iters      = 500
		keys       = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				if v := m.Do(k, func() int { return 100 + k }); v != 100+k {
					panic(fmt.Sprintf("key %d returned %d", k, v))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := m.Len(); n > 4 {
		t.Fatalf("capacity 4 table holds %d entries", n)
	}
	hits, misses := m.Stats()
	if hits+misses != goroutines*iters {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, goroutines*iters)
	}
	if m.Evictions() == 0 {
		t.Fatal("stress with 16 keys over capacity 4 evicted nothing")
	}
	m.Reset()
	if m.Len() != 0 || m.Evictions() != 0 {
		t.Fatal("Reset did not clear the bounded table")
	}
}

// TestEngineCapacityOption: a capacity-bounded engine evaluates correctly,
// reports evictions through Stats, and stays within its entry bound, while
// the default engine reports Capacity 0.
func TestEngineCapacityOption(t *testing.T) {
	bounded := New(Workers(2), Capacity(8))
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	if len(specs) < 16 {
		t.Fatalf("grid too small: %d", len(specs))
	}
	want := New(Workers(1), NoCache()).Sweep(specs)
	got := bounded.Sweep(specs)
	requireEqualOutcomes(t, want, got)

	st := bounded.Stats()
	if st.Capacity != 8 {
		t.Fatalf("Stats.Capacity = %d, want 8", st.Capacity)
	}
	if st.OutcomeEntries > 8 {
		t.Fatalf("outcome entries %d exceed capacity 8", st.OutcomeEntries)
	}
	if st.OutcomeEvictions == 0 {
		t.Fatalf("sweeping %d specs through capacity 8 evicted nothing", len(specs))
	}
	if def := New().Stats(); def.Capacity != 0 {
		t.Fatalf("default engine Capacity = %d, want 0", def.Capacity)
	}
}
