package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/model"
)

// TestMemoCapEvictsLRU: a bounded table holds at most capacity entries and
// drops the least recently used key first.
func TestMemoCapEvictsLRU(t *testing.T) {
	m := NewMemoCap[int, int](2)
	calls := 0
	get := func(k int) int { return m.Do(k, func() int { calls++; return 10 * k }) }

	get(1)
	get(2)
	get(1) // touch 1 so 2 becomes the LRU victim
	get(3) // evicts 2
	if n := m.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if ev := m.Evictions(); ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	before := calls
	get(1) // still resident — no recompute
	if calls != before {
		t.Fatal("recently-used key was evicted")
	}
	get(2) // evicted — must recompute
	if calls != before+1 {
		t.Fatal("evicted key was not recomputed")
	}
	if v := get(2); v != 20 {
		t.Fatalf("recomputed value = %d, want 20", v)
	}
}

// TestMemoCapUnboundedByDefault: NewMemo and NewMemoCap(0) never evict.
func TestMemoCapUnboundedByDefault(t *testing.T) {
	for _, m := range []*Memo[int, int]{NewMemo[int, int](), NewMemoCap[int, int](0)} {
		for k := 0; k < 1000; k++ {
			m.Do(k, func() int { return k })
		}
		if n := m.Len(); n != 1000 {
			t.Fatalf("unbounded table Len = %d, want 1000", n)
		}
		if ev := m.Evictions(); ev != 0 {
			t.Fatalf("unbounded table evicted %d entries", ev)
		}
		if c := m.Capacity(); c != 0 {
			t.Fatalf("Capacity = %d, want 0", c)
		}
	}
}

// TestMemoCapSingleFlightUnderEviction: goroutines that joined an in-flight
// computation before its entry was evicted still share that one computation's
// value; a requester arriving after the eviction recomputes. No call may ever
// observe a zero (unset) value.
func TestMemoCapSingleFlightUnderEviction(t *testing.T) {
	m := NewMemoCap[int, int](1)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int32

	var wg sync.WaitGroup
	const waiters = 8
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = m.Do(0, func() int {
				computes.Add(1)
				close(started)
				<-release
				return 42
			})
		}(i)
	}
	<-started
	// Wait until every other waiter has joined the in-flight entry: each
	// join is recorded as a hit before the waiter blocks on the entry's
	// once, so hits == waiters-1 means all of them hold the original entry.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if h, _ := m.Stats(); h == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never joined the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	// Evict key 0 while its computation is still in flight: inserting two
	// other keys into a capacity-1 table forces it out.
	m.Do(1, func() int { return 1 })
	m.Do(2, func() int { return 2 })
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42 (single-flight broken by eviction)", i, v)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("in-flight computation ran %d times, want 1", got)
	}
	// Post-eviction requester recomputes and gets the fresh value.
	v := m.Do(0, func() int { computes.Add(1); return 43 })
	if v != 43 {
		t.Fatalf("post-eviction Do = %d, want recomputed 43", v)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("post-eviction compute count = %d, want 2", got)
	}
}

// TestMemoCapRaceStress: hammer a small bounded table from many goroutines
// with overlapping keys under -race; every returned value must match its key.
func TestMemoCapRaceStress(t *testing.T) {
	m := NewMemoCap[int, int](4)
	const (
		goroutines = 16
		iters      = 500
		keys       = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				if v := m.Do(k, func() int { return 100 + k }); v != 100+k {
					panic(fmt.Sprintf("key %d returned %d", k, v))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := m.Len(); n > 4 {
		t.Fatalf("capacity 4 table holds %d entries", n)
	}
	hits, misses := m.Stats()
	if hits+misses != goroutines*iters {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, goroutines*iters)
	}
	if m.Evictions() == 0 {
		t.Fatal("stress with 16 keys over capacity 4 evicted nothing")
	}
	m.Reset()
	if m.Len() != 0 || m.Evictions() != 0 {
		t.Fatal("Reset did not clear the bounded table")
	}
}

// TestMemoCapacityOneThrash: the degenerate Capacity(1) table survives
// pure thrash — two keys alternating so every access after the first two
// misses, with exact counter accounting and never more than one resident
// entry.
func TestMemoCapacityOneThrash(t *testing.T) {
	m := NewMemoCap[int, int](1)
	const rounds = 100
	computes := 0
	for i := 0; i < rounds; i++ {
		k := i % 2
		if v := m.Do(k, func() int { computes++; return 10 + k }); v != 10+k {
			t.Fatalf("round %d: Do(%d) = %d", i, k, v)
		}
		if n := m.Len(); n != 1 {
			t.Fatalf("round %d: Len = %d, want 1", i, n)
		}
	}
	// Alternating keys through capacity 1: every access misses (the other
	// key always evicted it), so every access recomputes.
	if computes != rounds {
		t.Fatalf("computes = %d, want %d (every access must recompute under thrash)", computes, rounds)
	}
	hits, misses := m.Stats()
	if hits != 0 || misses != rounds {
		t.Fatalf("hits/misses = %d/%d, want 0/%d", hits, misses, rounds)
	}
	if ev := m.Evictions(); ev != rounds-1 {
		t.Fatalf("evictions = %d, want %d (every insert but the last evicts)", ev, rounds-1)
	}
}

// TestMemoEvictInFlightRaceStress: many goroutines churn a Capacity(1)
// table with slow computations so entries are constantly evicted while
// still in flight; under -race this doubles as a data-race probe on the
// evict-while-computing path. Every caller must still observe its own
// key's value.
func TestMemoEvictInFlightRaceStress(t *testing.T) {
	m := NewMemoCap[int, int](1)
	const (
		goroutines = 8
		iters      = 200
		keys       = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*13 + i) % keys
				v := m.Do(k, func() int {
					time.Sleep(time.Microsecond) // widen the in-flight window
					return 1000 + k
				})
				if v != 1000+k {
					panic(fmt.Sprintf("key %d returned %d", k, v))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := m.Len(); n != 1 {
		t.Fatalf("capacity 1 table holds %d entries", n)
	}
	if m.Evictions() == 0 {
		t.Fatal("churning 4 keys through capacity 1 evicted nothing")
	}
}

// TestMemoStatsExact: a scripted access sequence yields exactly the
// documented counters — a hit is a Do that found an entry, a miss one that
// created it, an eviction one dropped by the bound — and Reset zeroes
// everything.
func TestMemoStatsExact(t *testing.T) {
	m := NewMemoCap[string, int](2)
	seq := []struct {
		key                   string
		hits, misses, evicted uint64
		entries               int
	}{
		{"a", 0, 1, 0, 1}, // miss: create a
		{"a", 1, 1, 0, 1}, // hit
		{"b", 1, 2, 0, 2}, // miss: create b
		{"a", 2, 2, 0, 2}, // hit (a now MRU)
		{"c", 2, 3, 1, 2}, // miss: create c, evict LRU b
		{"b", 2, 4, 2, 2}, // miss: b was evicted; evicts a
		{"c", 3, 4, 2, 2}, // hit: c survived
	}
	for i, step := range seq {
		m.Do(step.key, func() int { return i })
		hits, misses := m.Stats()
		if hits != step.hits || misses != step.misses {
			t.Fatalf("step %d (%s): hits/misses = %d/%d, want %d/%d",
				i, step.key, hits, misses, step.hits, step.misses)
		}
		if ev := m.Evictions(); ev != step.evicted {
			t.Fatalf("step %d (%s): evictions = %d, want %d", i, step.key, ev, step.evicted)
		}
		if n := m.Len(); n != step.entries {
			t.Fatalf("step %d (%s): entries = %d, want %d", i, step.key, n, step.entries)
		}
	}
	m.Reset()
	hits, misses := m.Stats()
	if hits != 0 || misses != 0 || m.Evictions() != 0 || m.Len() != 0 {
		t.Fatalf("Reset left counters: hits=%d misses=%d evictions=%d len=%d",
			hits, misses, m.Evictions(), m.Len())
	}
}

// TestEngineCapacityOption: a capacity-bounded engine evaluates correctly,
// reports evictions through Stats, and stays within its entry bound, while
// the default engine reports Capacity 0.
func TestEngineCapacityOption(t *testing.T) {
	bounded := New(Workers(2), Capacity(8))
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	if len(specs) < 16 {
		t.Fatalf("grid too small: %d", len(specs))
	}
	want := New(Workers(1), NoCache()).Sweep(specs)
	got := bounded.Sweep(specs)
	requireEqualOutcomes(t, want, got)

	st := bounded.Stats()
	if st.Capacity != 8 {
		t.Fatalf("Stats.Capacity = %d, want 8", st.Capacity)
	}
	if st.OutcomeEntries > 8 {
		t.Fatalf("outcome entries %d exceed capacity 8", st.OutcomeEntries)
	}
	if st.OutcomeEvictions == 0 {
		t.Fatalf("sweeping %d specs through capacity 8 evicted nothing", len(specs))
	}
	if def := New().Stats(); def.Capacity != 0 {
		t.Fatalf("default engine Capacity = %d, want 0", def.Capacity)
	}
}
