package engine

import (
	"sync"
	"sync/atomic"
)

// Memo is a concurrency-safe memoization table with single-flight
// semantics: for each key, the compute function runs exactly once no matter
// how many goroutines ask concurrently; late callers block until the first
// computation finishes and then share its value. Values must be treated as
// immutable by callers — they are handed out to every requester.
//
// A nil *Memo is valid and disables caching (every Do call computes).
type Memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
}

// NewMemo returns an empty memoization table.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{entries: make(map[K]*memoEntry[V])}
}

// Do returns the memoized value for key, computing it with fn on first use.
func (m *Memo[K, V]) Do(key K, fn func() V) V {
	if m == nil {
		return fn()
	}
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	e.once.Do(func() { e.v = fn() })
	return e.v
}

// Stats returns the cumulative hit and miss counts. A "hit" is a Do call
// that found an existing entry (it may still have waited for the in-flight
// computation); a "miss" is a call that created the entry.
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	if m == nil {
		return 0, 0
	}
	return m.hits.Load(), m.misses.Load()
}

// Len returns the number of distinct keys computed or in flight.
func (m *Memo[K, V]) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reset drops all entries and zeroes the statistics.
func (m *Memo[K, V]) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.entries = make(map[K]*memoEntry[V])
	m.mu.Unlock()
	m.hits.Store(0)
	m.misses.Store(0)
}
