package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Memo is a concurrency-safe memoization table with single-flight
// semantics: for each key, the compute function runs exactly once no matter
// how many goroutines ask concurrently; late callers block until the first
// computation finishes and then share its value. Values must be treated as
// immutable by callers — they are handed out to every requester.
//
// By default the table retains every entry forever — the right policy for
// batch sweeps, where reuse is the point and the key population is bounded
// by the grid. NewMemoCap instead bounds the table to a fixed capacity with
// least-recently-used eviction, the policy a long-running daemon needs so an
// unbounded stream of distinct requests cannot grow memory without limit.
// Eviction drops an entry from the table only: goroutines already holding
// the entry still complete (or reuse) its single computation and share its
// value; the next request for the evicted key simply recomputes.
//
// A nil *Memo is valid and disables caching (every Do call computes).
type Memo[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int // 0 = unbounded
	entries  map[K]*memoEntry[V]
	// order is the LRU list (front = most recently used); element values
	// are keys. Maintained only when capacity > 0.
	order     *list.List
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
	// done publishes v: set (after v is written) by the goroutine that ran
	// the computation, so Cached can hand out v without arming once.
	done atomic.Bool
	// elem is the entry's position in the LRU order; nil when the table is
	// unbounded or the entry has been evicted. Guarded by Memo.mu.
	elem *list.Element
}

// NewMemo returns an empty, unbounded memoization table.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return NewMemoCap[K, V](0)
}

// NewMemoCap returns an empty memoization table bounded to capacity entries
// with LRU eviction; capacity <= 0 means unbounded (same as NewMemo).
func NewMemoCap[K comparable, V any](capacity int) *Memo[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Memo[K, V]{
		capacity: capacity,
		entries:  make(map[K]*memoEntry[V]),
		order:    list.New(),
	}
}

// Do returns the memoized value for key, computing it with fn on first use.
func (m *Memo[K, V]) Do(key K, fn func() V) V {
	if m == nil {
		return fn()
	}
	m.mu.Lock()
	e, ok := m.entries[key]
	if ok {
		if e.elem != nil {
			m.order.MoveToFront(e.elem)
		}
	} else {
		e = &memoEntry[V]{}
		m.entries[key] = e
		if m.capacity > 0 {
			e.elem = m.order.PushFront(key)
			// The new entry sits at the front, so with capacity ≥ 1 it is
			// never its own victim.
			for len(m.entries) > m.capacity {
				back := m.order.Back()
				victim := back.Value.(K)
				m.order.Remove(back)
				m.entries[victim].elem = nil
				delete(m.entries, victim)
				m.evictions.Add(1)
			}
		}
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	e.once.Do(func() {
		e.v = fn()
		e.done.Store(true)
	})
	return e.v
}

// Cached returns the completed value for key, if any. It is the allocation-
// free hit path: no closure is needed at the call site, so a warm lookup
// costs one map probe and zero allocations. A key whose computation is
// still in flight reports !ok — the caller falls back to Do and waits there
// (counted as a hit by Do, preserving the stats semantics).
func (m *Memo[K, V]) Cached(key K) (v V, ok bool) {
	if m == nil {
		return v, false
	}
	m.mu.Lock()
	e, found := m.entries[key]
	if found && e.done.Load() {
		if e.elem != nil {
			m.order.MoveToFront(e.elem)
		}
		m.mu.Unlock()
		m.hits.Add(1)
		return e.v, true
	}
	m.mu.Unlock()
	return v, false
}

// Stats returns the cumulative hit and miss counts. A "hit" is a Do call
// that found an existing entry (it may still have waited for the in-flight
// computation); a "miss" is a call that created the entry.
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	if m == nil {
		return 0, 0
	}
	return m.hits.Load(), m.misses.Load()
}

// Evictions returns how many entries the LRU bound has dropped (always zero
// for an unbounded table).
func (m *Memo[K, V]) Evictions() uint64 {
	if m == nil {
		return 0
	}
	return m.evictions.Load()
}

// Capacity returns the configured entry bound (0 = unbounded).
func (m *Memo[K, V]) Capacity() int {
	if m == nil {
		return 0
	}
	return m.capacity
}

// Range calls fn for every completed entry, least-recently used first (so a
// bounded table restored in Range order reproduces the LRU recency of the
// source). In-flight computations are skipped — only published values are
// visited. On an unbounded table the order is unspecified. fn runs outside
// the table lock (the pairs are collected under it first), so it may call
// back into the Memo; returning false stops the iteration. This is the
// export half of the serve tier's cache snapshot.
func (m *Memo[K, V]) Range(fn func(key K, value V) bool) {
	if m == nil {
		return
	}
	type kv struct {
		k K
		v V
	}
	m.mu.Lock()
	pairs := make([]kv, 0, len(m.entries))
	if m.capacity > 0 {
		// Bounded: the LRU list holds every resident key, back = oldest.
		for el := m.order.Back(); el != nil; el = el.Prev() {
			k := el.Value.(K)
			if e := m.entries[k]; e != nil && e.done.Load() {
				pairs = append(pairs, kv{k, e.v})
			}
		}
	} else {
		for k, e := range m.entries {
			if e.done.Load() {
				pairs = append(pairs, kv{k, e.v})
			}
		}
	}
	m.mu.Unlock()
	for _, p := range pairs {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Put inserts a completed entry, as if Do had computed value for key, and
// reports whether it inserted: false means an existing entry (completed or
// in flight) won — Put never overwrites, so a snapshot restored into a live
// table cannot clobber fresher computations. Respects the capacity bound
// (inserting may evict the least-recently used entry) and counts neither a
// hit nor a miss. This is the import half of the serve tier's cache
// snapshot.
//
// Restoring a snapshot larger than the capacity therefore *truncates*, and
// does so correctly: entries arrive in Range order (least recently used
// first), each insert lands at the LRU front, and eviction always claims
// the back — an earlier-restored (older) entry, never the entry just
// inserted (with capacity ≥ 1 an insert is never its own victim). The
// surviving entries are exactly the source's most-recently-used `capacity`
// entries with their relative recency preserved, which is the documented
// "Range order reproduces LRU recency" invariant applied to the smaller
// table. Put returns true for an insert even if a later insert evicts it.
func (m *Memo[K, V]) Put(key K, value V) bool {
	if m == nil {
		return false
	}
	e := &memoEntry[V]{v: value}
	e.once.Do(func() {}) // burn the once so a later Do never recomputes
	e.done.Store(true)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return false
	}
	m.entries[key] = e
	if m.capacity > 0 {
		e.elem = m.order.PushFront(key)
		for len(m.entries) > m.capacity {
			back := m.order.Back()
			victim := back.Value.(K)
			m.order.Remove(back)
			m.entries[victim].elem = nil
			delete(m.entries, victim)
			m.evictions.Add(1)
		}
	}
	return true
}

// Len returns the number of distinct keys computed or in flight.
func (m *Memo[K, V]) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reset drops all entries and zeroes the statistics.
func (m *Memo[K, V]) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.entries = make(map[K]*memoEntry[V])
	m.order = list.New()
	m.mu.Unlock()
	m.hits.Store(0)
	m.misses.Store(0)
	m.evictions.Store(0)
}
