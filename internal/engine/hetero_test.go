package engine

import (
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// TestSpecSpeedFactorsAreDistinctKeys: heterogeneous evaluations must not
// collide with homogeneous ones in the outcome cache, and the factors must
// reach the simulator.
func TestSpecSpeedFactorsAreDistinctKeys(t *testing.T) {
	e := New(Workers(1))
	spec := Spec{
		Sched: ChimeraKey(4, 4, 0, schedule.Direct),
		Model: model.BERT48(), MicroBatch: 4, W: 4,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
	base := e.Evaluate(spec)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	slow := spec
	slow.SpeedFactors = sim.EncodeSpeedFactors([]float64{1, 1, 2, 1})
	het := e.Evaluate(slow)
	if het.Err != nil {
		t.Fatal(het.Err)
	}
	if !(het.Result.IterTime > base.Result.IterTime) {
		t.Fatalf("straggler iter %.6f not above homogeneous %.6f", het.Result.IterTime, base.Result.IterTime)
	}
	st := e.Stats()
	if st.OutcomeEntries != 2 {
		t.Fatalf("want 2 distinct outcome entries, got %d", st.OutcomeEntries)
	}
	// A malformed factor string surfaces as the outcome's error, not a panic.
	bad := spec
	bad.SpeedFactors = "1,potato"
	if out := e.Evaluate(bad); out.Err == nil {
		t.Fatal("want decode error for malformed speed factors")
	}
}

// TestEngineGraphRidesSchedule: Engine.Graph returns the schedule's one
// compiled graph — same pointer on repeat, shared with direct compilation.
func TestEngineGraphRidesSchedule(t *testing.T) {
	e := New(Workers(1))
	key := ChimeraKey(4, 4, 0, schedule.Direct)
	g1, err := e.Graph(key)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Graph(key)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("Engine.Graph compiled twice for one key")
	}
	s, err := e.Schedule(key)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gs != g1 {
		t.Fatal("Engine.Graph and Schedule.Graph disagree")
	}
}
