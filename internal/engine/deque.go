package engine

import "sync/atomic"

// deque is a Chase–Lev work-stealing deque specialized to the pool's packed
// task words (see pool.go: a task is (groupSlot+1)<<32 | index, never zero).
// The owning worker pushes and pops at the bottom without synchronization
// beyond atomic stores; thieves take from the top with a CAS. The ring
// grows geometrically and never shrinks; a grown array is abandoned, not
// recycled, so a thief that loaded the old array still reads the values
// that were live when it loaded top — the subsequent CAS on top decides
// ownership either way.
//
// Every slot is an atomic word, which makes the one benign data race of the
// textbook algorithm (a thief reading a slot the owner is about to reuse)
// a well-defined atomic read: if the slot was reused, top has necessarily
// moved past the thief's snapshot and its CAS fails, discarding the value.
type deque struct {
	top    atomic.Int64
	_      [56]byte // keep thieves' CAS line away from the owner's bottom
	bottom atomic.Int64
	_      [56]byte
	arr    atomic.Pointer[dequeArr]

	// rng is the owner's xorshift state for victim selection. Only the
	// goroutine currently holding this deque's slot token touches it, and
	// slot tokens transfer through a channel, so access is ordered.
	rng uint64
}

// dequeArr is one immutable-capacity ring. len(buf) is a power of two.
type dequeArr struct {
	mask int64
	buf  []atomic.Uint64
}

func newDequeArr(capacity int64) *dequeArr {
	return &dequeArr{mask: capacity - 1, buf: make([]atomic.Uint64, capacity)}
}

func (a *dequeArr) get(i int64) uint64    { return a.buf[i&a.mask].Load() }
func (a *dequeArr) put(i int64, v uint64) { a.buf[i&a.mask].Store(v) }

const dequeInitialCap = 128

func newDeque(seed uint64) *deque {
	d := &deque{rng: seed}
	d.arr.Store(newDequeArr(dequeInitialCap))
	return d
}

// push appends v at the bottom. Owner-only.
func (d *deque) push(v uint64) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= int64(len(a.buf)) {
		a = d.grow(a, b, t)
	}
	a.put(b, v)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live logical range [t, b). Thieves
// holding the old array keep reading correct values: old slots are never
// written again.
func (d *deque) grow(old *dequeArr, b, t int64) *dequeArr {
	a := newDequeArr(int64(len(old.buf)) * 2)
	for i := t; i < b; i++ {
		a.put(i, old.get(i))
	}
	d.arr.Store(a)
	return a
}

// pop removes and returns the most recently pushed value. Owner-only; the
// only contention is a CAS race against thieves for the final element.
func (d *deque) pop() (uint64, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical bottom == top state.
		d.bottom.Store(b + 1)
		return 0, false
	}
	a := d.arr.Load()
	v := a.get(b)
	if b > t {
		return v, true
	}
	// Last element: win it from any concurrent thief via the top CAS.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return 0, false
	}
	return v, true
}

// steal removes and returns the oldest value. Thief-side; any goroutine.
func (d *deque) steal() (uint64, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if b <= t {
		return 0, false
	}
	a := d.arr.Load()
	v := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false
	}
	return v, true
}

// nextVictim advances the owner's xorshift64 state; used to start steal
// sweeps at a pseudo-random victim so thieves don't convoy on worker 0.
func (d *deque) nextVictim(n int) int {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return int((x >> 33) % uint64(n))
}
