package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/model"
)

// TestForEachNestedNoDeadlock: a ForEach body may itself evaluate through
// the engine (the fleet allocator's per-job evaluations call PlanOn, whose
// grid fans out on the same engine). The old fixed fan-out pool deadlocked
// here under saturation: the outer bodies held every worker slot and the
// inner ForEach blocked forever waiting for one. The work-stealing pool
// detects re-entry and runs nested task sets on the slot it already holds.
func TestForEachNestedNoDeadlock(t *testing.T) {
	e := New(Workers(2), NoCache())
	done := make(chan struct{})
	var total atomic.Int64
	go func() {
		defer close(done)
		e.ForEach(8, func(i int) {
			e.ForEach(8, func(j int) {
				e.ForEach(2, func(k int) {
					total.Add(int64(i*16 + j*2 + k + 1))
				})
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested ForEach deadlocked under saturation")
	}
	// Σ (i·16 + j·2 + k + 1) over i,j ∈ [0,8), k ∈ [0,2).
	want := int64(0)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for k := 0; k < 2; k++ {
				want += int64(i*16 + j*2 + k + 1)
			}
		}
	}
	if got := total.Load(); got != want {
		t.Fatalf("nested ForEach ran wrong body set: sum %d, want %d", got, want)
	}
}

// outcomeBytes folds a sweep's outcomes into one comparable string so the
// determinism stress below asserts byte-identity, not just value equality.
func outcomeBytes(outs []Outcome) string {
	var b strings.Builder
	for i, o := range outs {
		fmt.Fprintf(&b, "%d:%v:%+v\n", i, o.Err, o.Result)
	}
	return b.String()
}

// TestSweepDeterministicAcrossPoolSizes: the same irregular task set must
// produce byte-identical Sweep results and identical memo hit/miss counters
// at every pool size — the work-stealing scheduler may reorder execution,
// never results or cache population. Run under -race in CI, this is the
// steal path's stress test.
func TestSweepDeterministicAcrossPoolSizes(t *testing.T) {
	// Two models' grids concatenated: per-task cost varies widely (D from
	// 2 to 16, five schemes), the irregular shape stealing exists for.
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	specs = append(specs, testGrid(model.GPT2Small32(), 16, 64, []int{4, 8, 16}, []int{1, 2})...)
	if len(specs) < 24 {
		t.Fatalf("grid too small (%d specs) to stress the scheduler", len(specs))
	}
	var refOut string
	var refStats Stats
	for _, w := range []int{1, 4, 16} {
		e := New(Workers(w))
		got := outcomeBytes(e.Sweep(specs))
		stats := e.Stats()
		if w == 1 {
			refOut, refStats = got, stats
			continue
		}
		if got != refOut {
			t.Errorf("workers=%d: sweep outcomes not byte-identical to workers=1", w)
		}
		if stats != refStats {
			t.Errorf("workers=%d: memo stats diverged: %+v, want %+v", w, stats, refStats)
		}
	}
}

// TestReferenceCoreIdenticalOutcomes: the ReferenceCore engine option swaps
// graph replay for the retained map interpreter; outcomes must stay
// bit-identical — it is the benchmark's honest baseline only if the two
// cores compute the same function.
func TestReferenceCoreIdenticalOutcomes(t *testing.T) {
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	opt := New(NoCache()).Sweep(specs)
	ref := New(NoCache(), ReferenceCore()).Sweep(specs)
	if got, want := outcomeBytes(ref), outcomeBytes(opt); got != want {
		t.Fatal("reference-core outcomes diverged from optimized core")
	}
}

// BenchmarkMemoKeyAllocs measures a warm Evaluate — canonicalisation, memo
// lookup and outcome return. The zero-alloc hit path (Memo.Cached plus
// interned speed-factor decoding) keeps this at 0 allocs/op; BENCH_sweep's
// allocs section reports the same number.
func BenchmarkMemoKeyAllocs(b *testing.B) {
	e := New()
	specs := testGrid(model.BERT48(), 16, 128, []int{4}, []int{2})
	if len(specs) == 0 {
		b.Fatal("empty grid")
	}
	spec := specs[0]
	if o := e.Evaluate(spec); o.Err != nil {
		b.Fatal(o.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(spec)
	}
}
