package engine

import (
	"reflect"
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// TestSchedulerKeyCanonical pins the placement-policy axis of the cache key:
// "fixed" and no-signal list keys collapse onto the fixed representative,
// heterogeneous list keys survive, and keyOf stays buildSchedule's inverse
// for re-shaped schedules.
func TestSchedulerKeyCanonical(t *testing.T) {
	fixed := ChimeraKey(8, 16, 0, schedule.Direct)
	aliases := []ScheduleKey{
		{Scheme: "chimera", D: 8, N: 16, Scheduler: "fixed"},
		{Scheme: "chimera", D: 8, N: 16, Scheduler: "fixed", Speed: "1,1,1,1,1,1,1,1"},
		{Scheme: "chimera", D: 8, N: 16, Scheduler: "heft"},
		{Scheme: "chimera", D: 8, N: 16, Scheduler: "heft", Speed: "1.5,1.5,1.5,1.5,1.5,1.5,1.5,1.5"},
	}
	for _, alias := range aliases {
		if got := alias.canonical(); got != fixed.canonical() {
			t.Errorf("canonical(%+v) = %+v, want the fixed representative %+v", alias, got, fixed.canonical())
		}
	}

	het := ScheduleKey{Scheme: "chimera", D: 8, N: 16, Scheduler: "heft", Speed: "1,1,1,1,2,1,1,1"}
	if got := het.canonical(); got.Scheduler != "heft" || got.Speed != het.Speed {
		t.Fatalf("heterogeneous key collapsed: %+v", got)
	}
	e := New()
	s, err := e.Schedule(het)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheduler != "heft" {
		t.Fatalf("built schedule's Scheduler = %q, want heft", s.Scheduler)
	}
	if got := keyOf(s); got != het.canonical() {
		t.Fatalf("keyOf = %+v, want %+v", got, het.canonical())
	}

	// One cache entry serves the fixed key and all its aliases.
	e = New()
	for _, k := range append(aliases, fixed) {
		if _, err := e.Schedule(k); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.ScheduleMisses != 1 {
		t.Fatalf("%d schedule constructions for aliased keys, want 1", st.ScheduleMisses)
	}
}

// TestListScheduledEvaluationDeterministic: a list-scheduled spec must
// evaluate bit-identically on a serial uncached engine and a wide pool —
// the engine-level replay-determinism guarantee of the conformance suite.
func TestListScheduledEvaluationDeterministic(t *testing.T) {
	var specs []Spec
	for _, pol := range schedule.Schedulers() {
		for _, scheme := range []string{"chimera", "gpipe", "dapple"} {
			specs = append(specs, Spec{
				Sched: ScheduleKey{
					Scheme: scheme, D: 8, N: 16,
					Scheduler: pol, Speed: "1,1,1,1,2,1,1,1",
				},
				Model: model.BERT48(), MicroBatch: 2, W: 4,
				AutoRecompute: true,
				SpeedFactors:  "1,1,1,1,2,1,1,1",
				Device:        sim.PizDaintNode(), Network: sim.AriesNetwork(),
			})
		}
	}
	serial := New(Workers(1), NoCache()).Sweep(specs)
	parallel := New(Workers(8)).Sweep(specs)
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("spec %d: serial err %v, parallel err %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Fatalf("spec %d (%+v): serial and pooled results differ", i, specs[i].Sched)
		}
	}
}
