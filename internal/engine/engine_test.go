package engine

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// testGrid builds a mixed-scheme (scheme, D, B) grid against one model and
// platform; infeasible points are skipped the way the experiment sweeps do.
func testGrid(m model.Config, p, bhat int, ds, bs []int) []Spec {
	dev, net := sim.PizDaintNode(), sim.AriesNetwork()
	var specs []Spec
	for _, scheme := range []string{"chimera", "gpipe", "dapple", "gems", "pipedream-2bw"} {
		for _, d := range ds {
			if p%d != 0 || m.Layers%d != 0 {
				continue
			}
			w := p / d
			for _, b := range bs {
				if bhat%(w*b) != 0 {
					continue
				}
				n := bhat / (w * b)
				if n < 1 || (scheme == "pipedream-2bw" && n < d) {
					continue
				}
				key := ScheduleKey{Scheme: scheme, D: d, N: n}
				if scheme == "chimera" {
					key = ChimeraKey(d, n, 0, schedule.Direct)
				}
				specs = append(specs, Spec{
					Sched: key, Model: m, MicroBatch: b, W: w,
					AutoRecompute: true, Device: dev, Network: net,
				})
			}
		}
	}
	return specs
}

func requireEqualOutcomes(t *testing.T, want, got []Outcome) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("outcome count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("outcome %d: error mismatch: %v vs %v", i, w.Err, g.Err)
		}
		if w.Recompute != g.Recompute {
			t.Fatalf("outcome %d: recompute %v vs %v", i, w.Recompute, g.Recompute)
		}
		if w.Result == nil && g.Result == nil {
			continue
		}
		if !reflect.DeepEqual(w.Result, g.Result) {
			t.Fatalf("outcome %d: results differ:\nserial:   %+v\nparallel: %+v", i, w.Result, g.Result)
		}
	}
}

// TestSweepMatchesSerial: the worker-pool engine must return bit-identical
// results to the serial uncached reference across grid shapes.
func TestSweepMatchesSerial(t *testing.T) {
	grids := [][]Spec{
		testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8}),
		testGrid(model.GPT2Small32(), 16, 64, []int{4, 8, 16}, []int{1, 2}),
		testGrid(model.BERT48Seq512(), 8, 64, []int{2, 4}, []int{1, 4}),
	}
	for gi, specs := range grids {
		if len(specs) < 8 {
			t.Fatalf("grid %d too small (%d specs) to be a meaningful check", gi, len(specs))
		}
		serial := New(Workers(1), NoCache()).Sweep(specs)
		parallel := New(Workers(8)).Sweep(specs)
		requireEqualOutcomes(t, serial, parallel)
	}
}

// TestSweepRepeatIdentical: re-sweeping the same grid (now fully cached)
// returns the same outcomes — cache-hit correctness.
func TestSweepRepeatIdentical(t *testing.T) {
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	e := New(Workers(4))
	first := e.Sweep(specs)
	st := e.Stats()
	if st.OutcomeMisses != uint64(len(specs)) {
		t.Fatalf("first sweep: %d outcome misses, want %d", st.OutcomeMisses, len(specs))
	}
	second := e.Sweep(specs)
	st = e.Stats()
	if st.OutcomeHits < uint64(len(specs)) {
		t.Fatalf("second sweep: only %d outcome hits, want ≥ %d", st.OutcomeHits, len(specs))
	}
	requireEqualOutcomes(t, first, second)
	for i := range first {
		if first[i].Result != second[i].Result {
			t.Fatalf("outcome %d: cached result not shared (distinct pointers)", i)
		}
	}
	if st.HitRate() <= 0 {
		t.Fatal("hit rate not positive after repeat sweep")
	}
}

// TestConcurrentSweepCallers drives many goroutines through one engine on
// overlapping grids; run under -race this is the engine's stress test.
func TestConcurrentSweepCallers(t *testing.T) {
	e := New(Workers(4))
	specs := testGrid(model.BERT48(), 16, 128, []int{2, 4, 8}, []int{1, 2, 4, 8})
	want := New(Workers(1), NoCache()).Sweep(specs)
	var wg sync.WaitGroup
	const callers = 8
	got := make([][]Outcome, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Overlapping slices: each caller sweeps a rotated view.
			rot := make([]Spec, len(specs))
			for i := range specs {
				rot[i] = specs[(i+c)%len(specs)]
			}
			outs := e.Sweep(rot)
			back := make([]Outcome, len(outs))
			for i := range outs {
				back[(i+c)%len(specs)] = outs[i]
			}
			got[c] = back
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		requireEqualOutcomes(t, want, got[c])
	}
}

// TestMemoSingleflight: concurrent Do calls for one key run the compute
// function exactly once and share its value.
func TestMemoSingleflight(t *testing.T) {
	m := NewMemo[int, int]()
	var calls atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = m.Do(7, func() int {
				calls.Add(1)
				return 42
			})
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("caller %d got %d, want 42", i, r)
		}
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != 31 {
		t.Fatalf("stats (hits=%d, misses=%d), want (31, 1)", hits, misses)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d, want 1", m.Len())
	}
	m.Reset()
	if h, mi := m.Stats(); h != 0 || mi != 0 || m.Len() != 0 {
		t.Fatal("reset did not clear the memo")
	}
}

// TestNilMemoComputes: a nil memo (NoCache engines) always computes.
func TestNilMemoComputes(t *testing.T) {
	var m *Memo[int, int]
	calls := 0
	for i := 0; i < 3; i++ {
		if v := m.Do(1, func() int { calls++; return calls }); v != i+1 {
			t.Fatalf("call %d returned %d", i, v)
		}
	}
	if h, mi := m.Stats(); h != 0 || mi != 0 {
		t.Fatal("nil memo should report zero stats")
	}
}

// TestScheduleKeyCanonical: keys from configs and keys recovered from built
// schedules must coincide, so cache entries are shared.
func TestScheduleKeyCanonical(t *testing.T) {
	key := ChimeraKey(4, 8, 0, schedule.Direct)
	e := New()
	s, err := e.Schedule(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := keyOf(s); got != key {
		t.Fatalf("Key(schedule) = %+v, want %+v", got, key)
	}
	for _, mode := range []schedule.ConcatMode{schedule.ForwardDoubling, schedule.BackwardHalving} {
		key := ChimeraKey(4, 8, 1, mode)
		s, err := e.Schedule(key)
		if err != nil {
			t.Fatal(err)
		}
		if got := keyOf(s); got != key {
			t.Fatalf("Key(schedule) = %+v, want %+v", got, key)
		}
	}
	bKey := ScheduleKey{Scheme: "dapple", D: 4, N: 8}
	s, err = e.Schedule(bKey)
	if err != nil {
		t.Fatal(err)
	}
	if got := keyOf(s); got != bKey {
		t.Fatalf("Key(baseline schedule) = %+v, want %+v", got, bKey)
	}
}

// TestScheduleSharedAndSingleflight: one construction per key under
// concurrent demand, and all callers see the same schedule.
func TestScheduleSharedAndSingleflight(t *testing.T) {
	e := New()
	key := ChimeraKey(8, 8, 0, schedule.Direct)
	const callers = 16
	out := make([]*schedule.Schedule, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := e.Schedule(key)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if out[i] != out[0] {
			t.Fatal("schedule cache returned distinct instances for one key")
		}
	}
	st := e.Stats()
	if st.ScheduleMisses != 1 {
		t.Fatalf("%d schedule constructions, want 1", st.ScheduleMisses)
	}
}

// TestCriticalPathMemo: engine critical paths equal the direct computation
// and are cached.
func TestCriticalPathMemo(t *testing.T) {
	e := New()
	key := ChimeraKey(6, 6, 0, schedule.Direct)
	cf, cb, err := e.CriticalPath(key)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 6 || cb != 10 {
		t.Fatalf("critical path (%d, %d), paper's Fig. 6 says (6, 10)", cf, cb)
	}
	if _, _, err := e.CriticalPath(key); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CriticalMisses != 1 || st.CriticalHits != 1 {
		t.Fatalf("critical path memo (hits=%d, misses=%d), want (1, 1)", st.CriticalHits, st.CriticalMisses)
	}
}

// TestEvaluateErrorCached: schedule-construction failures surface as
// outcome errors and are cached like values.
func TestEvaluateErrorCached(t *testing.T) {
	e := New()
	bad := Spec{
		Sched: ScheduleKey{Scheme: "chimera", D: 5, N: 4}, // odd D: invalid
		Model: model.BERT48(), MicroBatch: 1, W: 1,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
	for i := 0; i < 2; i++ {
		if o := e.Evaluate(bad); o.Err == nil {
			t.Fatal("odd-D chimera must fail")
		}
	}
	st := e.Stats()
	if st.OutcomeMisses != 1 || st.OutcomeHits != 1 {
		t.Fatalf("error outcome not cached (hits=%d, misses=%d)", st.OutcomeHits, st.OutcomeMisses)
	}
}

// TestForEachCoversAllIndices: every index runs exactly once at any pool
// size, including the serial fallback.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		e := New(Workers(workers))
		const n = 100
		var hits [n]atomic.Int32
		e.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachActuallyConcurrent: with a pool of k workers, k tasks must be
// able to run simultaneously — each task blocks until all k have started.
// If the pool silently degenerated to a serial loop this deadlocks, caught
// by the timeout. (The bench JSON's uncached_speedup is the wall-clock
// counterpart of this check on multi-core machines.)
func TestForEachActuallyConcurrent(t *testing.T) {
	const k = 4
	e := New(Workers(k))
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		e.ForEach(k, func(int) {
			if started.Add(1) == k {
				close(release)
			}
			<-release
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("pool of %d workers never ran %d tasks concurrently (started=%d)", k, k, started.Load())
	}
}

// TestKeyCanonicalizationSharesCache: equivalent keys — facade-style F=0
// vs ChimeraKey's F=1, and non-direct concat with N ≤ D — must land on one
// cache entry at every memo boundary.
func TestKeyCanonicalizationSharesCache(t *testing.T) {
	e := New()
	raw := ScheduleKey{Scheme: "chimera", D: 4, N: 8}
	s1, err := e.Schedule(raw)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Schedule(ChimeraKey(4, 8, 1, schedule.Direct))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("F=0 and F=1 chimera keys built separate schedules")
	}
	// N ≤ D: every concat mode is the direct construction.
	for _, mode := range []schedule.ConcatMode{schedule.Direct, schedule.ForwardDoubling, schedule.BackwardHalving} {
		if _, err := e.Schedule(ChimeraKey(4, 4, 1, mode)); err != nil {
			t.Fatal(err)
		}
	}
	// Baselines ignore F/Concat.
	if _, err := e.Schedule(ScheduleKey{Scheme: "gpipe", D: 4, N: 8, F: 3, Concat: schedule.ForwardDoubling}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(ScheduleKey{Scheme: "gpipe", D: 4, N: 8}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ScheduleMisses != 3 { // chimera(4,8), chimera(4,4), gpipe(4,8)
		t.Fatalf("%d schedule constructions, want 3 (canonicalization failed)", st.ScheduleMisses)
	}

	// Outcome memo dedupes through Spec.Sched too.
	spec := Spec{
		Sched: raw, Model: model.BERT48(), MicroBatch: 2, W: 4,
		AutoRecompute: true, Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
	alias := spec
	alias.Sched = ChimeraKey(4, 8, 0, schedule.Direct)
	o1, o2 := e.Evaluate(spec), e.Evaluate(alias)
	if o1.Err != nil || o2.Err != nil {
		t.Fatal(o1.Err, o2.Err)
	}
	if o1.Result != o2.Result {
		t.Fatal("aliased specs evaluated separately")
	}
}

// TestWorkersBoundEngineWide: concurrent ForEach callers on one engine are
// collectively limited to Workers(n) in-flight bodies.
func TestWorkersBoundEngineWide(t *testing.T) {
	const cap = 3
	e := New(Workers(cap))
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.ForEach(20, func(int) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > cap {
		t.Fatalf("observed %d concurrent bodies, Workers(%d) should bound engine-wide", got, cap)
	}
}

// TestEngineReset clears caches so evaluations recompute.
func TestEngineReset(t *testing.T) {
	e := New(Workers(2))
	specs := testGrid(model.BERT48(), 16, 64, []int{4}, []int{1, 2})
	first := e.Sweep(specs)
	e.Reset()
	if st := e.Stats(); st.OutcomeMisses != 0 {
		t.Fatal("reset did not clear stats")
	}
	second := e.Sweep(specs)
	requireEqualOutcomes(t, first, second)
	if st := e.Stats(); st.OutcomeMisses != uint64(len(specs)) {
		t.Fatalf("after reset: %d misses, want %d", st.OutcomeMisses, len(specs))
	}
}
