package engine

import (
	"strconv"

	"chimera/internal/obs"
)

// engMetrics holds the engine's pre-resolved instrument handles. Handles
// are interned once at construction so the hot paths never touch the
// registry's mutex; a nil *engMetrics (observability disabled) short-
// circuits before any clock read, leaving the uninstrumented paths
// byte-identical to an engine built without Observe.
type engMetrics struct {
	evaluate *obs.Histogram // full simulator evaluations (memo misses)
	schedule *obs.Histogram // schedule constructions (memo misses)
	critical *obs.Histogram // critical-path probes (memo misses)
	wait     *obs.Histogram // memo hits incl. single-flight waits
	sweep    *obs.Histogram // whole Sweep calls

	// workerBusy[w] accumulates nanoseconds worker slot w spent inside
	// ForEach bodies — per-worker utilization for the pool.
	workerBusy []*obs.Counter
	// workerSteals[w] counts tasks slot w claimed from another slot's
	// deque — the work-stealing pool's load-balancing activity.
	workerSteals []*obs.Counter
}

// Observe attaches a metric registry to the engine. All engine series are
// prefixed engine_:
//
//	engine_evaluate_seconds            histogram, uncached simulator runs
//	engine_schedule_build_seconds      histogram, uncached schedule builds
//	engine_critical_path_seconds       histogram, uncached critical-path probes
//	engine_memo_wait_seconds           histogram, memo hits (incl. waiting
//	                                   on another goroutine's in-flight compute)
//	engine_sweep_seconds               histogram, whole grid sweeps
//	engine_worker_busy_nanoseconds_total{worker=N}  counter per pool slot
//	engine_worker_steals_total{worker=N}  tasks slot N stole from other deques
//	engine_cache_{hits,misses,evictions}_total{table=...}  read-through funcs
//	engine_cache_entries{table=...}    gauge func, resident keys
//	engine_cache_hit_ratio             gauge func
//
// The cache series read the memo tables' existing atomic counters at
// scrape time (CounterFunc), so cache bookkeeping costs the hot path
// nothing beyond what the engine already paid. A nil registry leaves the
// engine uninstrumented.
func Observe(reg *obs.Registry) Option {
	return func(e *Engine) { e.obsReg = reg }
}

// initObserve resolves instrument handles against the registry attached by
// Observe. Runs in New after all options, so the worker count is final.
func (e *Engine) initObserve() {
	reg := e.obsReg
	if reg == nil {
		return
	}
	m := &engMetrics{
		evaluate: reg.Histogram("engine_evaluate_seconds", "uncached simulator evaluation latency"),
		schedule: reg.Histogram("engine_schedule_build_seconds", "uncached schedule construction latency"),
		critical: reg.Histogram("engine_critical_path_seconds", "uncached critical-path probe latency"),
		wait:     reg.Histogram("engine_memo_wait_seconds", "memo hit latency including single-flight waits"),
		sweep:    reg.Histogram("engine_sweep_seconds", "whole-sweep latency"),
	}
	m.workerBusy = make([]*obs.Counter, e.workers)
	m.workerSteals = make([]*obs.Counter, e.workers)
	for w := range m.workerBusy {
		label := obs.L("worker", strconv.Itoa(w))
		m.workerBusy[w] = reg.Counter("engine_worker_busy_nanoseconds_total",
			"nanoseconds each worker slot spent executing pool bodies", label)
		m.workerSteals[w] = reg.Counter("engine_worker_steals_total",
			"tasks each worker slot claimed from another slot's deque", label)
	}
	tables := []struct {
		name string
		memo interface {
			Stats() (hits, misses uint64)
			Evictions() uint64
			Len() int
		}
	}{
		{"schedules", e.schedules},
		{"criticals", e.criticals},
		{"outcomes", e.outcomes},
	}
	for _, t := range tables {
		memo := t.memo
		label := obs.L("table", t.name)
		reg.CounterFunc("engine_cache_hits_total", "memo table hits",
			func() uint64 { h, _ := memo.Stats(); return h }, label)
		reg.CounterFunc("engine_cache_misses_total", "memo table misses",
			func() uint64 { _, m := memo.Stats(); return m }, label)
		reg.CounterFunc("engine_cache_evictions_total", "memo table LRU evictions",
			func() uint64 { return memo.Evictions() }, label)
		reg.GaugeFunc("engine_cache_entries", "memo table resident keys",
			func() float64 { return float64(memo.Len()) }, label)
	}
	reg.GaugeFunc("engine_cache_hit_ratio", "fraction of all memo lookups that hit",
		func() float64 { return e.Stats().HitRate() })
	e.met = m
}
