package engine

import (
	"reflect"
	"testing"

	"chimera/internal/model"
	"chimera/internal/obs"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

func testSpec(d, n int) Spec {
	return Spec{
		Sched:         ChimeraKey(d, n, 1, schedule.Direct),
		Model:         model.BERT48(),
		MicroBatch:    1,
		W:             1,
		AutoRecompute: true,
		Device:        sim.PizDaintNode(),
		Network:       sim.AriesNetwork(),
	}
}

// TestObserveRecordsEngineSeries: an instrumented engine populates the
// engine_ series — evaluate on miss, wait on hit, sweep and worker
// counters from ForEach, cache counters read through to the memo tables.
func TestObserveRecordsEngineSeries(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Workers(2), Observe(reg))
	spec := testSpec(4, 8)

	if out := e.Evaluate(spec); out.Err != nil {
		t.Fatal(out.Err)
	}
	e.Evaluate(spec) // hit
	e.Sweep([]Spec{testSpec(4, 12), testSpec(4, 16)})

	snap := reg.Snapshot()
	if got := snap.Histograms["engine_evaluate_seconds"].Count; got != 3 {
		t.Fatalf("evaluate count = %d, want 3 (one per distinct spec)", got)
	}
	if got := snap.Histograms["engine_memo_wait_seconds"].Count; got != 1 {
		t.Fatalf("wait count = %d, want 1 (the repeated spec)", got)
	}
	if got := snap.Histograms["engine_sweep_seconds"].Count; got != 1 {
		t.Fatalf("sweep count = %d, want 1", got)
	}
	if got := snap.Counters[`engine_cache_hits_total{table="outcomes"}`]; got != 1 {
		t.Fatalf("outcome cache hits = %d, want 1", got)
	}
	if got := snap.Counters[`engine_cache_misses_total{table="outcomes"}`]; got != 3 {
		t.Fatalf("outcome cache misses = %d, want 3", got)
	}
	var busy uint64
	for k, v := range snap.Counters {
		if len(k) > len("engine_worker_busy") && k[:len("engine_worker_busy")] == "engine_worker_busy" {
			busy += v
		}
	}
	if busy == 0 {
		t.Fatal("no worker busy time recorded after a sweep")
	}
	if snap.Gauges[`engine_cache_entries{table="outcomes"}`] != 3 {
		t.Fatalf("outcome entries gauge = %g, want 3", snap.Gauges[`engine_cache_entries{table="outcomes"}`])
	}
	if r := snap.Gauges["engine_cache_hit_ratio"]; r <= 0 || r >= 1 {
		t.Fatalf("hit ratio = %g, want in (0, 1)", r)
	}
}

// TestObserveOutputsIdentical: instrumentation must not perturb results —
// the same sweep on an instrumented and a plain engine returns deeply equal
// outcomes. This is the unit-level half of the CI byte-identical gate.
func TestObserveOutputsIdentical(t *testing.T) {
	specs := []Spec{testSpec(2, 4), testSpec(4, 8), testSpec(4, 4)}
	plain := New(Workers(1)).Sweep(specs)
	instr := New(Workers(1), Observe(obs.NewRegistry())).Sweep(specs)
	for i := range specs {
		if plain[i].Err != nil || instr[i].Err != nil {
			t.Fatalf("spec %d errored: %v / %v", i, plain[i].Err, instr[i].Err)
		}
		if !reflect.DeepEqual(plain[i].Result, instr[i].Result) {
			t.Fatalf("spec %d: instrumented result differs from plain", i)
		}
	}
}

// TestObserveNilRegistry: Observe(nil) leaves the engine uninstrumented and
// fully functional.
func TestObserveNilRegistry(t *testing.T) {
	e := New(Observe(nil))
	if e.met != nil {
		t.Fatal("nil registry produced metric handles")
	}
	if out := e.Evaluate(testSpec(2, 4)); out.Err != nil {
		t.Fatal(out.Err)
	}
}

// TestObserveNoCache: an instrumented cacheless engine still works (the
// CounterFuncs read nil memos as zero).
func TestObserveNoCache(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(NoCache(), Observe(reg))
	e.Evaluate(testSpec(2, 4))
	e.Evaluate(testSpec(2, 4))
	snap := reg.Snapshot()
	if got := snap.Histograms["engine_evaluate_seconds"].Count; got != 2 {
		t.Fatalf("cacheless evaluate count = %d, want 2 (every call computes)", got)
	}
	if got := snap.Counters[`engine_cache_hits_total{table="outcomes"}`]; got != 0 {
		t.Fatalf("nil memo reported %d hits", got)
	}
}
