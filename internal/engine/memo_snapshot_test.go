package engine

import (
	"reflect"
	"testing"
)

// TestMemoRangeLRUOrder: on a bounded table, Range must visit completed
// entries least-recently used first, so an export/import round trip
// reproduces the source's eviction order.
func TestMemoRangeLRUOrder(t *testing.T) {
	m := NewMemoCap[string, int](3)
	m.Do("a", func() int { return 1 })
	m.Do("b", func() int { return 2 })
	m.Do("c", func() int { return 3 })
	if _, ok := m.Cached("a"); !ok { // refresh a: eviction order becomes b, c, a
		t.Fatal("a should be cached")
	}
	var keys []string
	m.Range(func(k string, v int) bool {
		keys = append(keys, k)
		return true
	})
	if want := []string{"b", "c", "a"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("Range order %v, want %v", keys, want)
	}
}

// TestMemoRangeSkipsInFlight: an entry whose computation has not finished
// must not be exported — a snapshot can only carry published values.
func TestMemoRangeSkipsInFlight(t *testing.T) {
	m := NewMemo[string, int]()
	m.Do("done", func() int { return 1 })
	release := make(chan struct{})
	started := make(chan struct{})
	go m.Do("inflight", func() int { close(started); <-release; return 2 })
	<-started
	n := 0
	m.Range(func(k string, v int) bool {
		if k != "done" {
			t.Errorf("Range visited in-flight key %q", k)
		}
		n++
		return true
	})
	close(release)
	if n != 1 {
		t.Fatalf("Range visited %d entries, want 1", n)
	}
}

// TestMemoRangeEarlyStop: returning false stops the walk.
func TestMemoRangeEarlyStop(t *testing.T) {
	m := NewMemoCap[int, int](8)
	for i := 0; i < 5; i++ {
		m.Do(i, func() int { return i })
	}
	n := 0
	m.Range(func(int, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range visited %d entries after early stop, want 1", n)
	}
}

// TestMemoPutNeverOverwrites: an existing entry wins over Put, so a
// snapshot restored into a live table cannot clobber fresher computations.
func TestMemoPutNeverOverwrites(t *testing.T) {
	m := NewMemoCap[string, int](4)
	m.Do("k", func() int { return 42 })
	m.Put("k", 99)
	if v, ok := m.Cached("k"); !ok || v != 42 {
		t.Fatalf("Put overwrote a computed entry: got %d (ok=%v), want 42", v, ok)
	}
}

// TestMemoPutEntryNeverRecomputes: Do on a Put entry must return the put
// value without running fn (the once is already burnt).
func TestMemoPutEntryNeverRecomputes(t *testing.T) {
	m := NewMemo[string, int]()
	m.Put("warm", 7)
	v := m.Do("warm", func() int {
		t.Error("Do recomputed a Put entry")
		return -1
	})
	if v != 7 {
		t.Fatalf("Do returned %d for a Put entry, want 7", v)
	}
	if v, ok := m.Cached("warm"); !ok || v != 7 {
		t.Fatalf("Cached returned %d (ok=%v), want 7", v, ok)
	}
}

// TestMemoPutRespectsCapacity: Put inserts participate in the LRU bound
// like computed entries, evicting the oldest.
func TestMemoPutRespectsCapacity(t *testing.T) {
	m := NewMemoCap[int, int](2)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(3, 3) // evicts 1
	if m.Len() != 2 {
		t.Fatalf("Len=%d, want 2", m.Len())
	}
	if m.Evictions() != 1 {
		t.Fatalf("Evictions=%d, want 1", m.Evictions())
	}
	if _, ok := m.Cached(1); ok {
		t.Fatal("oldest Put entry should have been evicted")
	}
	for _, k := range []int{2, 3} {
		if v, ok := m.Cached(k); !ok || v != k {
			t.Fatalf("key %d: got %d (ok=%v)", k, v, ok)
		}
	}
}

// TestMemoRangePutRoundTrip: exporting via Range and importing via Put in
// that order reproduces both the values and the recency order — the
// restored table then evicts the same victim the source would have.
func TestMemoRangePutRoundTrip(t *testing.T) {
	src := NewMemoCap[string, int](3)
	src.Do("a", func() int { return 1 })
	src.Do("b", func() int { return 2 })
	src.Do("c", func() int { return 3 })
	src.Cached("a") // recency: b oldest, then c, then a

	dst := NewMemoCap[string, int](3)
	srcPairs := map[string]int{}
	src.Range(func(k string, v int) bool {
		srcPairs[k] = v
		dst.Put(k, v)
		return true
	})
	// Range reads without refreshing recency, so the orders must agree.
	var srcOrder, dstOrder []string
	src.Range(func(k string, _ int) bool { srcOrder = append(srcOrder, k); return true })
	dst.Range(func(k string, v int) bool {
		dstOrder = append(dstOrder, k)
		if v != srcPairs[k] {
			t.Errorf("key %q: restored %d, want %d", k, v, srcPairs[k])
		}
		return true
	})
	if !reflect.DeepEqual(srcOrder, dstOrder) {
		t.Fatalf("restored recency order %v, want %v", dstOrder, srcOrder)
	}
	// Inserting a fresh key must evict b — the same victim src would pick.
	dst.Do("d", func() int { return 4 })
	if _, ok := dst.Cached("b"); ok {
		t.Fatal("restored table evicted the wrong victim (b survived)")
	}
	if _, ok := dst.Cached("c"); !ok {
		t.Fatal("restored table evicted c, want b")
	}
}

// TestMemoPutReportsInsert: Put returns true only when it actually
// inserted — the signal RestoreSnapshot counts, so a warm restore does not
// report duplicates as restored entries.
func TestMemoPutReportsInsert(t *testing.T) {
	m := NewMemoCap[string, int](4)
	if !m.Put("a", 1) {
		t.Fatal("first Put reported no insert")
	}
	if m.Put("a", 2) {
		t.Fatal("duplicate Put reported an insert")
	}
	m.Do("b", func() int { return 2 })
	if m.Put("b", 3) {
		t.Fatal("Put over a computed entry reported an insert")
	}
	var nilMemo *Memo[string, int]
	if nilMemo.Put("k", 1) {
		t.Fatal("nil Put reported an insert")
	}
}

// TestMemoRestoreIntoSmallerCapacity: restoring a snapshot into a table
// with a smaller capacity than the snapshot's entry count must truncate to
// the *newest* entries with their relative recency preserved — each insert
// lands at the LRU front and eviction claims the back, so restore can never
// evict the entry it just inserted, only older ones. This is the documented
// "Range order reproduces LRU recency" invariant under truncation.
func TestMemoRestoreIntoSmallerCapacity(t *testing.T) {
	src := NewMemoCap[string, int](5)
	for _, k := range []string{"a", "b", "c", "d", "e"} { // recency: a oldest … e newest
		k := k
		src.Do(k, func() int { return int(k[0]) })
	}

	dst := NewMemoCap[string, int](2)
	inserted := 0
	src.Range(func(k string, v int) bool {
		if dst.Put(k, v) {
			inserted++
		}
		return true
	})
	// Every Put inserted (no duplicates), even though only 2 survive.
	if inserted != 5 {
		t.Fatalf("inserted=%d, want 5", inserted)
	}
	if dst.Len() != 2 {
		t.Fatalf("Len=%d, want the capacity 2", dst.Len())
	}
	if dst.Evictions() != 3 {
		t.Fatalf("Evictions=%d, want 3", dst.Evictions())
	}
	// Survivors are the source's two most-recent entries, oldest-first in
	// Range order — the source's recency, truncated.
	var order []string
	dst.Range(func(k string, _ int) bool { order = append(order, k); return true })
	if want := []string{"d", "e"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("restored order %v, want %v (newest survive, recency preserved)", order, want)
	}
	if v, ok := dst.Cached("e"); !ok || v != int('e') {
		t.Fatalf("newest entry lost: got %d (ok=%v)", v, ok)
	}
}

// TestMemoNilRangePut: the nil table stays a safe no-op.
func TestMemoNilRangePut(t *testing.T) {
	var m *Memo[string, int]
	m.Put("k", 1)
	m.Range(func(string, int) bool { t.Error("nil Range visited an entry"); return true })
}
