// Package engine is the shared concurrent evaluation engine behind the
// planner (§3.4 configuration selection) and the experiment sweeps (§4.2):
// it fans a grid of simulator configurations out over a GOMAXPROCS-sized
// worker pool and memoizes the expensive, repeatedly-shared intermediates —
// schedule construction, critical-path probing, and full simulator
// evaluations — keyed by their value-type descriptions.
//
// Two properties make the fan-out safe and the results reproducible:
//
//   - constructed Schedules are immutable after generation and every
//     replay/analysis entry point is read-only, so one cached schedule can
//     be shared by any number of concurrent evaluations;
//   - results are written into per-index slots and selection helpers scan
//     them in input order, so a Sweep returns bit-identical output whether
//     it ran on one worker or many.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/model"
	"chimera/internal/obs"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// ScheduleKey identifies a schedule construction: the memoization key for
// generated schedules and their derived analyses (critical paths). The zero
// F and Concat values mean "scheme defaults" (F=1, direct concatenation).
type ScheduleKey struct {
	// Scheme is the generator name: "chimera", "gpipe", "dapple", "gems",
	// "pipedream", "pipedream-2bw", "1f1b".
	Scheme string
	// D is the number of pipeline stages; N the micro-batch count.
	D, N int
	// F is Chimera's pipelines-per-direction (ignored by other schemes).
	F int
	// Concat is Chimera's N > D scaling method (ignored by other schemes).
	Concat schedule.ConcatMode
	// Scheduler is the placement policy ("" = the scheme's fixed placement;
	// otherwise a schedule.Schedulers() name re-shaping the schedule).
	Scheduler string
	// Speed carries the placement speed factors for a list scheduler in
	// sim.EncodeSpeedFactors' canonical string form (keys must stay
	// comparable value types). "" with a non-empty Scheduler means the
	// policy sees a homogeneous cluster and defers to the fixed placement.
	Speed string
}

// ChimeraKey is shorthand for a Chimera schedule key. F is canonicalized
// (0 → 1) so keys from configs and keys from built schedules coincide.
func ChimeraKey(d, n, f int, concat schedule.ConcatMode) ScheduleKey {
	if f == 0 {
		f = 1
	}
	return ScheduleKey{Scheme: "chimera", D: d, N: n, F: f, Concat: concat}
}

// canonical maps equivalent keys onto one representative so they share one
// cache entry: chimera's F=0 means F=1, and any concatenation mode with
// N ≤ D builds the direct schedule (the generator's `n <= d || Direct`
// branch); non-chimera schemes ignore F and Concat entirely. Every memo
// boundary (Schedule, CriticalPath, Evaluate) canonicalizes first.
func (k ScheduleKey) canonical() ScheduleKey {
	// The placement-policy axis: "fixed" is the identity policy, and every
	// list policy defers to the fixed placement when its speed factors carry
	// no heterogeneity signal, so all of those keys collapse onto the fixed
	// representative (Scheduler "", Speed ""). An undecodable Speed string
	// is left as-is for buildSchedule to reject.
	if k.Scheduler == "fixed" {
		k.Scheduler = ""
	}
	if k.Scheduler == "" {
		k.Speed = ""
	} else if factors, err := decodeSpeed(k.Speed); err == nil && schedule.UniformSpeed(factors) {
		k.Scheduler, k.Speed = "", ""
	}
	if k.Scheme != "chimera" {
		k.F, k.Concat = 0, schedule.Direct
		return k
	}
	if k.F == 0 {
		k.F = 1
	}
	if k.N <= k.D {
		k.Concat = schedule.Direct
	}
	return k
}

// keyOf returns the ScheduleKey describing an already-built schedule; it is
// the inverse of buildSchedule and guards the cache's canonical-key
// invariant (see the engine tests).
func keyOf(s *schedule.Schedule) ScheduleKey {
	k := ScheduleKey{
		Scheme:    s.Scheme,
		D:         s.D,
		N:         s.N,
		Scheduler: s.Scheduler,
		Speed:     sim.EncodeSpeedFactors(s.PlacementSpeed),
	}
	if s.Scheme == "chimera" {
		k.F = s.F
		// Backward halving reuses the doubled-forward op structure, so a
		// halved schedule may set both flags: check HalvedBackward first.
		switch {
		case s.HalvedBackward:
			k.Concat = schedule.BackwardHalving
		case s.DoubledForward:
			k.Concat = schedule.ForwardDoubling
		}
	}
	return k
}

// Spec fully describes one simulator evaluation as a comparable value: the
// schedule by key plus every sim.Config knob. Being a value type, it serves
// directly as the result-cache key.
type Spec struct {
	Sched ScheduleKey
	Model model.Config
	// MicroBatch is B; W the number of data-parallel pipeline replicas.
	MicroBatch int
	W          int
	// Recompute forces activation recomputation; AutoRecompute instead
	// mirrors sim.AutoRun, enabling recomputation only when the plain
	// configuration exceeds device memory.
	Recompute     bool
	AutoRecompute bool
	Sync          sim.SyncStrategy
	Allreduce     sim.AllReduceAlg
	Interference  float64
	ZeRO          bool
	// CompressionFactor scales allreduce bytes (0/1 = exact fp32).
	CompressionFactor float64
	// SpeedFactors is sim.Config.SpeedFactors in sim.EncodeSpeedFactors'
	// canonical string form ("" = homogeneous): Spec is a cache key and must
	// stay a comparable value type, which a slice would break. The encoding
	// round-trips float64s exactly.
	SpeedFactors string
	Device       sim.Device
	Network      sim.Network
}

// decodedSpeed interns sim.DecodeSpeedFactors results keyed by the
// canonical encoded string, so key canonicalization and sim.Config
// materialization do zero decoding and zero allocation after a factor
// string's first use. Interned slices are shared across evaluations and
// must be treated as read-only (the simulator only reads them).
var decodedSpeed sync.Map // string → *decodedFactors

type decodedFactors struct {
	factors []float64
	err     error
}

func decodeSpeed(enc string) ([]float64, error) {
	if enc == "" {
		return nil, nil
	}
	if v, ok := decodedSpeed.Load(enc); ok {
		d := v.(*decodedFactors)
		return d.factors, d.err
	}
	factors, err := sim.DecodeSpeedFactors(enc)
	v, _ := decodedSpeed.LoadOrStore(enc, &decodedFactors{factors, err})
	d := v.(*decodedFactors)
	return d.factors, d.err
}

// Config materializes the sim.Config for this spec around a built schedule.
// The speed-factor string must be valid (callers validate at construction);
// Evaluate surfaces a decode error as the outcome's Err.
func (sp Spec) Config(s *schedule.Schedule) (sim.Config, error) {
	factors, err := decodeSpeed(sp.SpeedFactors)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Model: sp.Model, Schedule: s, MicroBatch: sp.MicroBatch, W: sp.W,
		Recompute: sp.Recompute, Sync: sp.Sync, Allreduce: sp.Allreduce,
		Interference: sp.Interference, ZeRO: sp.ZeRO,
		CompressionFactor: sp.CompressionFactor,
		SpeedFactors:      factors,
		Device:            sp.Device, Network: sp.Network,
	}, nil
}

// Outcome is the result of evaluating one Spec. Exactly one of Result and
// Err is set. Outcomes are shared between cache users: treat Result as
// read-only.
type Outcome struct {
	Result *sim.Result
	// Recompute reports whether the evaluation ran with activation
	// recomputation (meaningful under AutoRecompute).
	Recompute bool
	Err       error
}

// Stats is a snapshot of the engine's cache counters.
type Stats struct {
	ScheduleHits, ScheduleMisses uint64
	CriticalHits, CriticalMisses uint64
	OutcomeHits, OutcomeMisses   uint64
	// Evictions count entries dropped by the bounded-capacity LRU mode;
	// always zero on a default (unbounded) engine.
	ScheduleEvictions, CriticalEvictions, OutcomeEvictions uint64
	// Entries are the resident key counts at snapshot time.
	ScheduleEntries, CriticalEntries, OutcomeEntries int
	// Capacity is the per-table entry bound (0 = unbounded).
	Capacity int
}

// HitRate returns the fraction of all cache lookups that were hits.
func (s Stats) HitRate() float64 {
	hits := s.ScheduleHits + s.CriticalHits + s.OutcomeHits
	total := hits + s.ScheduleMisses + s.CriticalMisses + s.OutcomeMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Engine owns a work-stealing worker pool and the memoization tables. The
// zero value is not usable; construct with New or use the process-wide
// Default engine.
type Engine struct {
	workers  int
	capacity int
	// slots carries the pool's worker tokens (slot ids 0..workers-1). It
	// bounds in-flight ForEach bodies engine-wide, so Workers(n) holds even
	// when many goroutines share one engine (the Default engine's normal
	// situation), not just per call. See pool.go.
	slots chan int
	// deques[slot] is the Chase–Lev deque owned by that worker slot.
	deques []*deque
	// groups resolves packed task words to their task groups; groupFree is
	// the free-list of group slots.
	groups    []atomic.Pointer[taskGroup]
	groupFree chan uint32
	// running maps goroutine id → held slot for every goroutine currently
	// executing pool bodies, so nested ForEach calls reuse their slot
	// instead of deadlocking on a second token.
	running sync.Map

	// refCore routes evaluations through the retained reference replay
	// interpreter (see ReferenceCore) instead of the compiled graph core.
	refCore bool

	schedules *Memo[ScheduleKey, schedOutcome]
	criticals *Memo[ScheduleKey, critOutcome]
	outcomes  *Memo[Spec, Outcome]
	// obsReg is the registry attached by Observe (nil = uninstrumented);
	// met holds the handles initObserve resolves from it.
	obsReg *obs.Registry
	met    *engMetrics
}

type schedOutcome struct {
	s   *schedule.Schedule
	err error
}

type critOutcome struct {
	cf, cb int
	err    error
}

// Option configures New.
type Option func(*Engine)

// Workers fixes the worker-pool size (default GOMAXPROCS). One worker makes
// every engine entry point run serially on the calling goroutine.
func Workers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// NoCache disables all memoization: every evaluation recomputes from
// scratch. Used for the serial reference path in benchmarks and tests.
func NoCache() Option {
	return func(e *Engine) {
		e.schedules, e.criticals, e.outcomes = nil, nil, nil
	}
}

// Capacity bounds each memoization table to n entries with LRU eviction.
// The default (0) keeps the unbounded retention that batch sweeps rely on
// for bit-identical repeat walks; a long-running daemon (chimera-serve)
// opts in so an endless stream of distinct requests cannot grow memory
// without limit. Evictions are reported through Stats.
func Capacity(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.capacity = n
		}
	}
}

// ReferenceCore routes every simulator evaluation through the retained
// map-interpreter replay core (internal/refinterp) instead of the compiled
// dependency-graph core. This is the seed implementation's evaluation path,
// kept runnable so benchmarks can measure the optimized core against it
// (BENCH_sweep.json's uncached_speedup) and tests can assert equivalence.
// Never use it on a hot path.
func ReferenceCore() Option {
	return func(e *Engine) { e.refCore = true }
}

// New builds an engine with a GOMAXPROCS-sized pool and empty caches.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:   runtime.GOMAXPROCS(0),
		schedules: NewMemo[ScheduleKey, schedOutcome](),
		criticals: NewMemo[ScheduleKey, critOutcome](),
		outcomes:  NewMemo[Spec, Outcome](),
	}
	for _, o := range opts {
		o(e)
	}
	if e.capacity > 0 && e.schedules != nil {
		e.schedules = NewMemoCap[ScheduleKey, schedOutcome](e.capacity)
		e.criticals = NewMemoCap[ScheduleKey, critOutcome](e.capacity)
		e.outcomes = NewMemoCap[Spec, Outcome](e.capacity)
	}
	e.slots = make(chan int, e.workers)
	e.deques = make([]*deque, e.workers)
	for s := 0; s < e.workers; s++ {
		e.slots <- s
		// splitmix64 of the slot id seeds each owner's victim rng.
		z := (uint64(s) + 1) * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		e.deques[s] = newDeque(z ^ (z >> 31))
	}
	e.groups = make([]atomic.Pointer[taskGroup], groupSlots)
	e.groupFree = make(chan uint32, groupSlots)
	for gs := uint32(0); gs < groupSlots; gs++ {
		e.groupFree <- gs
	}
	e.initObserve()
	return e
}

var (
	defaultOnce sync.Once
	defaultEng  *Engine
)

// Default returns the process-wide shared engine. The planner facade and
// the experiment sweeps all route through it, so repeated figures reuse
// each other's schedules and evaluations.
//
// Retention: caches are unbounded and never evicted — ideal for the
// CLIs and figure suites this repo ships, where reuse is the point. A
// long-lived embedder sweeping many distinct configurations should use a
// private New() engine per batch, or call Reset between batches.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEng = New() })
	return defaultEng
}

// WorkerCount reports the configured pool size.
func (e *Engine) WorkerCount() int { return e.workers }

// Schedule returns the memoized schedule for key, constructing it on first
// use. The returned schedule is shared: callers must not mutate it.
func (e *Engine) Schedule(key ScheduleKey) (*schedule.Schedule, error) {
	key = key.canonical()
	if out, ok := e.schedules.Cached(key); ok {
		return out.s, out.err
	}
	m := e.met
	out := e.schedules.Do(key, func() schedOutcome {
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		s, err := buildSchedule(key)
		if m != nil {
			m.schedule.Since(start)
		}
		return schedOutcome{s, err}
	})
	return out.s, out.err
}

func buildSchedule(key ScheduleKey) (*schedule.Schedule, error) {
	if key.Scheduler != "" {
		factors, err := decodeSpeed(key.Speed)
		if err != nil {
			return nil, err
		}
		return schedule.Build(schedule.Spec{
			Scheme: key.Scheme, Scheduler: key.Scheduler,
			D: key.D, N: key.N, F: key.F, Concat: key.Concat,
			SpeedFactors: factors,
		})
	}
	if key.Scheme == "chimera" {
		return schedule.Chimera(schedule.ChimeraConfig{
			D: key.D, N: key.N, F: key.F, Concat: key.Concat,
		})
	}
	return schedule.ByName(key.Scheme, key.D, key.N)
}

// Graph returns the compiled dependency-graph IR for the schedule
// identified by key. The graph rides the memoized schedule — a Schedule
// compiles itself exactly once and caches the result — so repeated calls
// (and every replay the engine runs) share one compilation per key.
func (e *Engine) Graph(key ScheduleKey) (*schedule.Graph, error) {
	s, err := e.Schedule(key)
	if err != nil {
		return nil, err
	}
	return s.Graph()
}

// CriticalPath returns the memoized (Cf, Cb) critical-path counts for the
// schedule identified by key (§3.4's Eq. 1 inputs).
func (e *Engine) CriticalPath(key ScheduleKey) (cf, cb int, err error) {
	key = key.canonical()
	if out, ok := e.criticals.Cached(key); ok {
		return out.cf, out.cb, out.err
	}
	m := e.met
	out := e.criticals.Do(key, func() critOutcome {
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		s, err := e.Schedule(key)
		if err != nil {
			return critOutcome{err: err}
		}
		cf, cb, err := schedule.CriticalPath(s)
		if m != nil {
			m.critical.Since(start)
		}
		return critOutcome{cf, cb, err}
	})
	return out.cf, out.cb, out.err
}

// Evaluate runs (or recalls) one simulator evaluation. With observability
// attached, a memo miss records its compute time in engine_evaluate_seconds
// and a hit records the time spent recalling (including any wait on another
// goroutine's in-flight computation) in engine_memo_wait_seconds.
func (e *Engine) Evaluate(spec Spec) Outcome {
	spec.Sched = spec.Sched.canonical()
	m := e.met
	if m == nil {
		// Completed-hit fast path: no closure, no allocation — repeat
		// lookups of an interned key cost one map probe.
		if out, ok := e.outcomes.Cached(spec); ok {
			return out
		}
		return e.outcomes.Do(spec, func() Outcome { return e.evaluate(spec) })
	}
	start := time.Now()
	if out, ok := e.outcomes.Cached(spec); ok {
		m.wait.Since(start)
		return out
	}
	computed := false
	out := e.outcomes.Do(spec, func() Outcome {
		computed = true
		return e.evaluate(spec)
	})
	if computed {
		m.evaluate.Since(start)
	} else {
		m.wait.Since(start)
	}
	return out
}

func (e *Engine) evaluate(spec Spec) Outcome {
	s, err := e.Schedule(spec.Sched)
	if err != nil {
		return Outcome{Err: err}
	}
	cfg, err := spec.Config(s)
	if err != nil {
		return Outcome{Err: err}
	}
	cfg.ReferenceReplay = e.refCore
	if spec.AutoRecompute {
		res, rec, err := sim.AutoRun(cfg)
		return Outcome{Result: res, Recompute: rec, Err: err}
	}
	res, err := sim.Run(cfg)
	return Outcome{Result: res, Recompute: spec.Recompute, Err: err}
}

// Sweep evaluates every spec on the worker pool and returns the outcomes in
// input order. Outcome i corresponds to specs[i] regardless of which worker
// computed it or when.
func (e *Engine) Sweep(specs []Spec) []Outcome {
	m := e.met
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	out := make([]Outcome, len(specs))
	e.ForEach(len(specs), func(i int) { out[i] = e.Evaluate(specs[i]) })
	if m != nil {
		m.sweep.Since(start)
	}
	return out
}

// Stats snapshots the cache counters.
func (e *Engine) Stats() Stats {
	var st Stats
	st.ScheduleHits, st.ScheduleMisses = e.schedules.Stats()
	st.CriticalHits, st.CriticalMisses = e.criticals.Stats()
	st.OutcomeHits, st.OutcomeMisses = e.outcomes.Stats()
	st.ScheduleEvictions = e.schedules.Evictions()
	st.CriticalEvictions = e.criticals.Evictions()
	st.OutcomeEvictions = e.outcomes.Evictions()
	st.ScheduleEntries = e.schedules.Len()
	st.CriticalEntries = e.criticals.Len()
	st.OutcomeEntries = e.outcomes.Len()
	st.Capacity = e.capacity
	return st
}

// Reset drops all cached entries and statistics.
func (e *Engine) Reset() {
	e.schedules.Reset()
	e.criticals.Reset()
	e.outcomes.Reset()
}
