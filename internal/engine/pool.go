package engine

import (
	"sync"
	"time"
)

// ForEach runs fn(i) for every i in [0, n) on the engine's worker pool and
// returns when all calls have completed. Indices are fed to a fixed set of
// workers through a channel (the classic scheduler fan-out); with one
// worker it degenerates to a plain loop, which is the serial reference
// path used by tests and benchmarks.
//
// The Workers(n) bound is engine-wide: every fn invocation holds a slot
// from a shared semaphore, so concurrent ForEach/Sweep/Plan callers on one
// engine collectively run at most n bodies at a time. Consequently fn must
// not call ForEach on the same engine (a holder waiting for child slots
// can deadlock under saturation); evaluate work through Evaluate/Schedule
// instead, which never re-enter the pool.
//
// fn must write results into per-index slots (not append to shared state)
// so that the output is deterministic regardless of execution order.
func (e *Engine) ForEach(n int, fn func(i int)) {
	m := e.met
	// run executes one body on worker slot w; with observability attached
	// the slot's busy time accumulates into its per-worker counter.
	run := func(w, i int) {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		if m != nil && w < len(m.workerBusy) {
			start := time.Now()
			fn(i)
			m.workerBusy[w].Add(uint64(time.Since(start)))
			return
		}
		fn(i)
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(0, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				run(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
