package engine

import (
	"runtime"
	"sync/atomic"
	"time"
)

// The pool is a work-stealing scheduler. Each of the engine's `workers`
// slots owns a Chase–Lev deque (deque.go); a ForEach call acquires a slot
// token, tags its n bodies with a task-group slot, pushes them onto its own
// deque, lends any idle slots to helper goroutines, and then works — pop
// from its own deque first, steal from random victims when it drains —
// until its group's remaining-task count reaches zero.
//
// Tasks are packed words: (groupSlot+1)<<32 | index. The group-slot table
// resolves a word to its taskGroup (body function + completion counter)
// only after the task has been claimed from a deque, so a group slot is
// never recycled while a claimable word still references it.
//
// Determinism: a body's identity is its submission index and results are
// written into per-index slots, so stealing only permutes execution order —
// Sweep output is bit-identical at any pool size.
//
// The Workers(n) bound is engine-wide and token-based: every goroutine
// executing bodies (ForEach caller or helper) holds one of n slot tokens,
// so concurrent ForEach/Sweep/Plan callers collectively run at most n
// bodies at a time. Nested calls are re-entrant: a body that calls ForEach
// on the same engine is detected through the running-goroutine registry and
// reuses its held slot — it pushes the child tasks onto its own deque and
// drains/steals them in place instead of waiting for a second token, so
// nested evaluation cannot deadlock under saturation.
type taskGroup struct {
	fn        func(int)
	remaining atomic.Int64
	done      chan struct{}
}

// groupSlots is the size of the in-flight task-group table. Each live
// ForEach holds one slot for its duration; if (absurdly) more groups than
// this are in flight at once, the excess calls degrade to an inline serial
// loop, which is always correct.
const groupSlots = 256

// helperMaxMisses is how many consecutive empty pop+steal sweeps a lent
// helper tolerates before returning its slot token to the engine.
const helperMaxMisses = 16

// gid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). One call per ForEach, off the body
// hot path.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[10:n] { // skip "goroutine "
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// ForEach runs fn(i) for every i in [0, n) on the engine's worker pool and
// returns when all calls have completed. fn must write results into
// per-index slots (not append to shared state) so that the output is
// deterministic regardless of execution order. fn may call ForEach (or
// Sweep/Plan helpers that do) on the same engine: the nested call runs on
// the caller's already-held worker slot.
func (e *Engine) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	id := gid()
	if slot, ok := e.running.Load(id); ok {
		// Nested call from a goroutine already executing pool bodies:
		// reuse its slot; do not touch the token channel.
		e.forEachOn(slot.(int), n, fn)
		return
	}
	slot := <-e.slots // blocks: enforces the engine-wide Workers bound
	e.running.Store(id, slot)
	e.forEachOn(slot, n, fn)
	e.running.Delete(id)
	e.slots <- slot
}

// forEachOn runs the group on the calling goroutine, which holds slot.
func (e *Engine) forEachOn(slot, n int, fn func(int)) {
	if n == 1 || e.workers == 1 {
		e.runInline(slot, n, fn)
		return
	}
	var gslot uint32
	select {
	case gslot = <-e.groupFree:
	default:
		e.runInline(slot, n, fn)
		return
	}
	g := &taskGroup{fn: fn, done: make(chan struct{})}
	g.remaining.Store(int64(n))
	e.groups[gslot].Store(g)
	d := e.deques[slot]
	base := (uint64(gslot) + 1) << 32
	for i := 0; i < n; i++ {
		d.push(base | uint64(i))
	}
	if spare := min(e.workers-1, n-1); spare > 0 {
		e.spawnHelpers(g, spare)
	}
	for {
		select {
		case <-g.done:
			e.groups[gslot].Store(nil)
			e.groupFree <- gslot
			return
		default:
		}
		v, ok := d.pop()
		if !ok {
			v, ok = e.steal(slot)
		}
		if ok {
			e.runTask(slot, v)
			continue
		}
		// Nothing runnable anywhere. Every task of g still pending is
		// in flight on another worker (g's tasks live only in this deque
		// until claimed), so block until the group completes.
		<-g.done
	}
}

// runInline executes the group serially on the held slot — the Workers(1)
// reference path and the group-table-exhaustion fallback.
func (e *Engine) runInline(slot, n int, fn func(int)) {
	m := e.met
	if m != nil && slot < len(m.workerBusy) {
		for i := 0; i < n; i++ {
			start := time.Now()
			fn(i)
			m.workerBusy[slot].Add(uint64(time.Since(start)))
		}
		return
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// runTask resolves a claimed packed word and executes its body on slot.
func (e *Engine) runTask(slot int, v uint64) {
	g := e.groups[uint32(v>>32)-1].Load()
	i := int(uint32(v))
	m := e.met
	if m != nil && slot < len(m.workerBusy) {
		start := time.Now()
		g.fn(i)
		m.workerBusy[slot].Add(uint64(time.Since(start)))
	} else {
		g.fn(i)
	}
	if g.remaining.Add(-1) == 0 {
		close(g.done)
	}
}

// spawnHelpers lends up to want idle slot tokens to helper goroutines that
// steal on behalf of group g. Acquisition is non-blocking: a saturated
// engine spawns none and the owner simply works alone.
func (e *Engine) spawnHelpers(g *taskGroup, want int) {
	for i := 0; i < want; i++ {
		select {
		case slot := <-e.slots:
			go e.helper(slot, g)
		default:
			return
		}
	}
}

// helper is a lent worker: it drains its own deque (nested bodies it runs
// may push children there), steals from victims, and returns its slot when
// the group that spawned it completes or no work surfaces for a while.
func (e *Engine) helper(slot int, g *taskGroup) {
	id := gid()
	e.running.Store(id, slot)
	defer func() {
		e.running.Delete(id)
		e.slots <- slot
	}()
	d := e.deques[slot]
	misses := 0
	for {
		v, ok := d.pop()
		if !ok {
			v, ok = e.steal(slot)
		}
		if ok {
			e.runTask(slot, v)
			misses = 0
			continue
		}
		select {
		case <-g.done:
			return
		default:
		}
		misses++
		if misses >= helperMaxMisses {
			return
		}
		runtime.Gosched()
	}
}

// steal sweeps the other workers' deques once, starting at a pseudo-random
// victim, and returns the first task claimed.
func (e *Engine) steal(self int) (uint64, bool) {
	n := len(e.deques)
	if n < 2 {
		return 0, false
	}
	d := e.deques[self]
	off := d.nextVictim(n)
	for i := 0; i < n; i++ {
		w := off + i
		if w >= n {
			w -= n
		}
		if w == self {
			continue
		}
		if v, ok := e.deques[w].steal(); ok {
			if m := e.met; m != nil && self < len(m.workerSteals) {
				m.workerSteals[self].Add(1)
			}
			return v, true
		}
	}
	return 0, false
}
