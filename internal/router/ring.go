// Package router fronts a fleet of chimera-serve replicas with a
// consistent-hash request router: requests with the same canonical cache key
// always land on the same replica, so each replica's response and engine
// caches concentrate on a stable shard of the key space instead of every
// replica cold-missing the whole population. Replica health is tracked via
// each replica's /readyz (draining replicas are routed around without
// remapping the ring), and failed forwards retry on the key's next distinct
// ring owner.
package router

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica. 128 points per
// replica keeps the max/mean key-load ratio within a few percent for small
// fleets (the ring test pins a ≤1.25 bound at 100k keys) while the ring
// stays small enough that building it is microseconds.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a replica set. Build with
// NewRing; methods are safe for concurrent use. Ownership is a pure function
// of the replica *set* — the order replicas were listed in does not matter —
// so independently configured routers agree on every key's owner.
type Ring struct {
	replicas []string
	points   []ringPoint
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the replica it maps to.
type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing builds a ring with vnodes virtual nodes per replica
// (<= 0 selects DefaultVNodes). Duplicate replicas are collapsed.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(replicas))
	seen := make(map[string]bool, len(replicas))
	for _, rep := range replicas {
		if rep == "" || seen[rep] {
			continue
		}
		seen[rep] = true
		uniq = append(uniq, rep)
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: uniq,
		points:   make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for _, rep := range uniq {
		for v := 0; v < vnodes; v++ {
			h := mix64(fnv64a(rep + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, replica: rep})
		}
	}
	// Ties (two virtual nodes hashing identically) are broken by replica
	// name so the walk order is deterministic regardless of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the ring's member set, sorted. The slice is shared — do
// not mutate.
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct replicas in failover order: the key's
// owner first, then successive distinct replicas walking the circle
// clockwise. This is the retry sequence — when the owner is down or
// draining, the next entry inherits the key, and only that key's shard
// moves (consistent hashing's minimal-disruption property).
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := mix64(fnv64a(key))
	// First point at or clockwise-after h (wrapping to 0).
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		rep := r.points[i].replica
		if !seen[rep] {
			seen[rep] = true
			owners = append(owners, rep)
			if len(owners) == n {
				break
			}
		}
		i++
	}
	return owners
}

// mix64 is murmur3's 64-bit finalizer. FNV-1a alone avalanches poorly on
// near-identical inputs (vnode labels differ by one digit), which clusters
// ring points and skews key load; the finalizer spreads them uniformly over
// the circle. Applied to both point and key hashes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64a is the 64-bit FNV-1a hash; inlined (rather than hash/fnv) so key
// lookup allocates nothing.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
