package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chimera/internal/serve"
)

const planBody = `{"model":{"preset":"bert48"},"p":16,"mini_batch":128,"max_b":16,"platform":{"preset":"pizdaint"}}`

// replicaFleet is a set of in-process chimera-serve replicas fronted by a
// router under test.
type replicaFleet struct {
	servers  []*serve.Server
	backends []*httptest.Server
	router   *Router
	front    *httptest.Server
}

func newFleet(t *testing.T, n int) *replicaFleet {
	t.Helper()
	f := &replicaFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.backends = append(f.backends, ts)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(f.front.Close)
	return f
}

// byURL maps a replica base URL back to its serve.Server.
func (f *replicaFleet) byURL(url string) *serve.Server {
	for i, ts := range f.backends {
		if ts.URL == url {
			return f.servers[i]
		}
	}
	return nil
}

func postURL(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRouterConsistentRoutingAndIdentity: repeated equal requests through
// the router land on exactly one replica (the key's ring owner), and the
// routed body is byte-identical to a direct single-replica response.
func TestRouterConsistentRoutingAndIdentity(t *testing.T) {
	f := newFleet(t, 3)
	var first []byte
	for i := 0; i < 3; i++ {
		status, body := postURL(t, f.front.URL+"/v1/plan", planBody)
		if status != http.StatusOK {
			t.Fatalf("routed plan %d: %d %s", i, status, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(body, first) {
			t.Fatalf("routed response %d diverged from the first", i)
		}
	}

	owner := f.router.Ring().Owner(planKey("/v1/plan", []byte(planBody)))
	for _, ts := range f.backends {
		want := uint64(0)
		if ts.URL == owner {
			want = 3
		}
		if got := f.byURL(ts.URL).Snapshot().Requests.Plan; got != want {
			t.Fatalf("replica %s answered %d plans, want %d (owner %s)", ts.URL, got, want, owner)
		}
	}

	// Byte identity against an un-routed replica.
	direct := serve.New(serve.Config{})
	directTS := httptest.NewServer(direct.Handler())
	defer directTS.Close()
	if _, body := postURL(t, directTS.URL+"/v1/plan", planBody); !bytes.Equal(body, first) {
		t.Fatalf("routed body diverges from direct serve:\nrouted: %.120s\ndirect: %.120s", first, body)
	}
}

// TestRouterFailover: when the owner replica dies mid-fleet, the request
// fails over to the key's next ring owner, the dead replica's failover
// counter increments, and passive detection marks it not-ready.
func TestRouterFailover(t *testing.T) {
	f := newFleet(t, 3)
	owner := f.router.Ring().Owner(planKey("/v1/plan", []byte(planBody)))
	for i, ts := range f.backends {
		if ts.URL == owner {
			f.backends[i].Close()
		}
	}

	status, body := postURL(t, f.front.URL+"/v1/plan", planBody)
	if status != http.StatusOK {
		t.Fatalf("failover plan: %d %s", status, body)
	}
	next := f.router.Ring().Owners(planKey("/v1/plan", []byte(planBody)), 2)[1]
	if got := f.byURL(next).Snapshot().Requests.Plan; got != 1 {
		t.Fatalf("next owner %s answered %d plans, want 1", next, got)
	}
	dead := f.router.reps[owner]
	if dead.failovers.Value() != 1 {
		t.Fatalf("dead owner failovers=%d, want 1", dead.failovers.Value())
	}
	if dead.errors.Value() == 0 {
		t.Fatal("dead owner error counter did not increment")
	}
	if dead.ready.Load() {
		t.Fatal("passive detection did not mark the dead replica not-ready")
	}
}

// TestRouter429Passthrough: shed responses are the answer, not a failure —
// no failover, no error count, body relayed verbatim.
func TestRouter429Passthrough(t *testing.T) {
	const shedBody = `{"error":"too busy: 1 requests in flight (limit 1)"}`
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(shedBody))
	}))
	defer shed.Close()
	rt, err := New(Config{Replicas: []string{shed.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	status, body := postURL(t, front.URL+"/v1/plan", planBody)
	if status != http.StatusTooManyRequests || string(body) != shedBody {
		t.Fatalf("routed shed: %d %s, want 429 %s", status, body, shedBody)
	}
	rs := rt.reps[shed.URL]
	if rs.errors.Value() != 0 || rs.failovers.Value() != 0 {
		t.Fatalf("429 counted as failure: errors=%d failovers=%d, want 0/0", rs.errors.Value(), rs.failovers.Value())
	}
}

// TestRouterRoutesAroundDraining: once the health loop sees a replica's
// /readyz report draining, its keys forward to the next owner without
// touching the draining replica.
func TestRouterRoutesAroundDraining(t *testing.T) {
	f := newFleet(t, 2)
	owner := f.router.Ring().Owner(planKey("/v1/plan", []byte(planBody)))
	f.byURL(owner).BeginDrain()
	f.router.CheckNow(context.Background())
	if f.router.reps[owner].ready.Load() {
		t.Fatal("health sweep left the draining replica marked ready")
	}

	status, body := postURL(t, f.front.URL+"/v1/plan", planBody)
	if status != http.StatusOK {
		t.Fatalf("plan during drain: %d %s", status, body)
	}
	if got := f.byURL(owner).Snapshot().Requests.Plan; got != 0 {
		t.Fatalf("draining owner answered %d plans, want 0", got)
	}
}

// TestRouterObservationEpoch: readiness marks are sequenced per replica —
// an observation that began before another observation applied is stale and
// must be discarded. The bug this pins down: a forward whose transport
// error surfaces after a concurrent /readyz probe succeeded would overwrite
// the probe's newer evidence and flap a healthy replica down until the next
// sweep. The prober is scripted — each CheckNow consumes one status — so
// every interleaving here is driven explicitly, no timing involved.
func TestRouterObservationEpoch(t *testing.T) {
	statuses := make(chan int, 8)
	rep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("scripted prober got unexpected path %s", r.URL.Path)
		}
		w.WriteHeader(<-statuses)
	}))
	defer rep.Close()
	rt, err := New(Config{Replicas: []string{rep.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rs := rt.reps[rep.URL]
	ctx := context.Background()

	// The bug's interleaving: a forward begins (captures the epoch), a
	// probe begins after it and resolves 200. When the forward's transport
	// error finally surfaces it is stale — discarded, replica stays ready.
	stale := rs.beginObservation()
	statuses <- http.StatusOK
	rt.CheckNow(ctx)
	if !rs.ready.Load() {
		t.Fatal("scripted 200 probe left the replica not-ready")
	}
	if rs.applyObservation(stale, false) {
		t.Fatal("stale down-mark applied over the probe's newer 200")
	}
	if !rs.ready.Load() {
		t.Fatal("stale down-mark flapped the healthy replica down")
	}

	// The reverse race: a probe and a forward are both in flight; the
	// forward's transport error resolves first and wins. The probe's 200 is
	// now the stale observation — it predates the error's resolution — and
	// must not resurrect the replica early.
	probe := rs.beginObservation()
	mark := rs.beginObservation()
	if !rs.applyObservation(mark, false) {
		t.Fatal("fresh down-mark did not apply")
	}
	if rs.ready.Load() {
		t.Fatal("down-mark did not take")
	}
	if rs.applyObservation(probe, true) {
		t.Fatal("stale probe success applied over the newer down-mark")
	}
	if rs.ready.Load() {
		t.Fatal("stale probe success resurrected the replica")
	}

	// The next sweep is a fresh observation: it recovers the replica, so
	// discarding a raced result is at worst one poll period of pessimism.
	statuses <- http.StatusOK
	rt.CheckNow(ctx)
	if !rs.ready.Load() {
		t.Fatal("next health sweep did not recover the replica")
	}

	// A scripted 503 (draining) still marks down through the gate.
	statuses <- http.StatusServiceUnavailable
	rt.CheckNow(ctx)
	if rs.ready.Load() {
		t.Fatal("scripted 503 probe left the replica ready")
	}
}

// TestRouterBatchScatterGather: a routed batch's reply must be
// byte-identical to the same batch against one replica — scatter by item
// owner, gather positionally, errors included.
func TestRouterBatchScatterGather(t *testing.T) {
	items := []string{
		planBody,
		`{"model":{"preset":"bert48"},"p":8,"mini_batch":64,"max_b":8,"platform":{"preset":"pizdaint"}}`,
		`{"model":{"preset":"bert48"},"p":4,"mini_batch":32,"max_b":4,"platform":{"preset":"pizdaint"}}`,
		`{"model":{"preset":"bert48"},"p":7,"mini_batch":512,"platform":{"preset":"pizdaint"}}`, // infeasible
		planBody, // duplicate
	}
	batch := `{"requests":[` + strings.Join(items, ",") + `]}`

	f := newFleet(t, 3)
	status, routed := postURL(t, f.front.URL+"/v1/plan:batch", batch)
	if status != http.StatusOK {
		t.Fatalf("routed batch: %d %s", status, routed)
	}

	direct := serve.New(serve.Config{})
	directTS := httptest.NewServer(direct.Handler())
	defer directTS.Close()
	dStatus, directBody := postURL(t, directTS.URL+"/v1/plan:batch", batch)
	if dStatus != http.StatusOK {
		t.Fatalf("direct batch: %d %s", dStatus, directBody)
	}
	if !bytes.Equal(routed, directBody) {
		t.Fatalf("routed batch diverges from single-replica batch:\nrouted: %.200s\ndirect: %.200s", routed, directBody)
	}

	// Each replica served exactly the sub-batch the ring assigned it:
	// replicas owning ≥1 item answered one batch, the rest none.
	wantBatches := map[string]uint64{}
	for _, item := range items {
		wantBatches[f.router.Ring().Owner(planKey("/v1/plan", []byte(item)))] = 1
	}
	for _, ts := range f.backends {
		if got := f.byURL(ts.URL).Snapshot().Requests.PlanBatch; got != wantBatches[ts.URL] {
			t.Fatalf("replica %s answered %d batches, want %d", ts.URL, got, wantBatches[ts.URL])
		}
	}

	// Malformed batch forwards whole and relays the serve tier's own 400.
	status, body := postURL(t, f.front.URL+"/v1/plan:batch", `{"requests":[]}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "non-empty") {
		t.Fatalf("empty routed batch: %d %s, want the serve tier's 400", status, body)
	}
}

// TestRouterUnrouted: with every replica dead, the router answers 502 and
// counts the refusal.
func TestRouterUnrouted(t *testing.T) {
	f := newFleet(t, 2)
	for _, ts := range f.backends {
		ts.Close()
	}
	status, body := postURL(t, f.front.URL+"/v1/plan", planBody)
	if status != http.StatusBadGateway {
		t.Fatalf("all-dead plan: %d %s, want 502", status, body)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "all attempts failed") {
		t.Fatalf("all-dead error body %s", body)
	}
	if f.router.unrouted.Load() != 1 {
		t.Fatalf("unrouted counter %d, want 1", f.router.unrouted.Load())
	}
}

// TestRouterHealth: /healthz degrades with the replica view.
func TestRouterHealth(t *testing.T) {
	f := newFleet(t, 2)
	f.router.CheckNow(context.Background())
	check := func(want string) {
		t.Helper()
		resp, err := http.Get(f.front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Status != want {
			t.Fatalf("router health %q, want %q (replicas %+v)", h.Status, want, h.Replicas)
		}
	}
	check("ok")

	f.backends[0].Close()
	f.router.CheckNow(context.Background())
	check("degraded")

	f.backends[1].Close()
	f.router.CheckNow(context.Background())
	check("unrouted")
}

// TestRouterMetricsEndpoint: the router serves its own Prometheus series.
func TestRouterMetricsEndpoint(t *testing.T) {
	f := newFleet(t, 2)
	if status, body := postURL(t, f.front.URL+"/v1/plan", planBody); status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, series := range []string{"router_requests_total", "router_replica_up", "router_request_duration_seconds", "router_replicas"} {
		if !strings.Contains(text, series) {
			t.Fatalf("/metrics missing %s:\n%.400s", series, text)
		}
	}
}
