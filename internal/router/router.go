package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/obs"
	"chimera/internal/serve"
)

// Config configures New.
type Config struct {
	// Replicas are the chimera-serve base URLs to shard across
	// (e.g. "http://127.0.0.1:8642"). At least one is required.
	Replicas []string
	// VNodes is the ring's virtual-node count per replica
	// (0 = DefaultVNodes).
	VNodes int
	// MaxAttempts bounds how many distinct replicas one request may try —
	// the key's owner plus MaxAttempts-1 failovers (0 = min(3, len(Replicas))).
	MaxAttempts int
	// HealthInterval is the /readyz poll period (0 = 2s). The health loop
	// only runs once Start is called; until the first sweep every replica
	// is assumed ready, so a router can serve immediately.
	HealthInterval time.Duration
	// HealthTimeout bounds each /readyz probe (0 = 1s).
	HealthTimeout time.Duration
	// Client issues the forwarded requests (nil = a client with a 60s
	// timeout; plans on a cold engine take seconds, not milliseconds).
	Client *http.Client
	// Registry, when non-nil, receives the router_* series; the router
	// otherwise creates its own. GET /metrics serves it either way.
	Registry *obs.Registry
}

// replicaState is the router's per-replica view: readiness plus the
// replica-labelled metric handles (pre-resolved so the request path never
// touches the registry mutex).
type replicaState struct {
	base string
	// ready is flipped by the health loop (/readyz 200 → true; 503,
	// transport error, or non-2xx → false) and pessimistically by the
	// forwarding path on transport errors, so a crashed replica is routed
	// around before the next poll. Both writers sequence their marks
	// through the observation epoch below.
	ready     atomic.Bool
	requests  *obs.Counter   // forwards answered by this replica
	errors    *obs.Counter   // transport errors + 5xx from this replica
	failovers *obs.Counter   // requests that failed over away from this replica
	upGauge   *obs.Gauge     // 1 ready / 0 not
	latency   *obs.Histogram // forward latency through this replica

	// obsMu guards epoch, which sequences readiness observations: every
	// observer captures the epoch before issuing I/O (beginObservation)
	// and its result only lands if no other observation applied in the
	// meantime (applyObservation). Without this, a forward whose transport
	// error surfaces after a concurrent /readyz probe succeeded would
	// overwrite that newer evidence and flap a healthy replica down — the
	// error predates the probe's 200, so the 200 must win.
	obsMu sync.Mutex
	epoch uint64
}

// beginObservation records the start of a readiness observation (a health
// probe or a forward attempt) and returns the epoch to pass to
// applyObservation once the observation's I/O resolves.
func (rs *replicaState) beginObservation() uint64 {
	rs.obsMu.Lock()
	defer rs.obsMu.Unlock()
	return rs.epoch
}

// applyObservation applies a readiness observation begun at epoch e. It
// reports whether the mark landed: if any other observation applied since e
// was captured, this one is stale — its I/O began before the newer result
// resolved — and is discarded. Discarding a fresh-but-raced result at worst
// leaves a residually optimistic view that the next health sweep corrects;
// applying a stale one would undo newer evidence.
func (rs *replicaState) applyObservation(e uint64, up bool) bool {
	rs.obsMu.Lock()
	defer rs.obsMu.Unlock()
	if e != rs.epoch {
		return false
	}
	rs.epoch++
	rs.setReady(up)
	return true
}

func (rs *replicaState) setReady(up bool) {
	rs.ready.Store(up)
	if up {
		rs.upGauge.Set(1)
	} else {
		rs.upGauge.Set(0)
	}
}

// Router is the consistent-hash front tier. Build with New; the zero value
// is not usable.
type Router struct {
	ring        *Ring
	reps        map[string]*replicaState
	client      *http.Client
	maxAttempts int
	healthEvery time.Duration
	healthWait  time.Duration
	mux         *http.ServeMux
	reg         *obs.Registry
	started     time.Time

	unrouted atomic.Uint64 // requests refused because no replica answered
}

// New builds a Router over cfg.Replicas.
func New(cfg Config) (*Router, error) {
	ring := NewRing(cfg.Replicas, cfg.VNodes)
	if len(ring.Replicas()) == 0 {
		return nil, errString("router: at least one replica is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	if n := len(ring.Replicas()); maxAttempts > n {
		maxAttempts = n
	}
	healthEvery := cfg.HealthInterval
	if healthEvery <= 0 {
		healthEvery = 2 * time.Second
	}
	healthWait := cfg.HealthTimeout
	if healthWait <= 0 {
		healthWait = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	rt := &Router{
		ring:        ring,
		reps:        make(map[string]*replicaState, len(ring.Replicas())),
		client:      client,
		maxAttempts: maxAttempts,
		healthEvery: healthEvery,
		healthWait:  healthWait,
		reg:         reg,
		started:     time.Now(),
	}
	for _, rep := range ring.Replicas() {
		label := obs.L("replica", rep)
		rs := &replicaState{
			base:      rep,
			requests:  reg.Counter("router_requests_total", "requests answered by each replica", label),
			errors:    reg.Counter("router_replica_errors_total", "transport errors and 5xx responses from each replica", label),
			failovers: reg.Counter("router_failovers_total", "requests that failed over away from each replica", label),
			upGauge:   reg.Gauge("router_replica_up", "replica readiness as seen by the health loop (1 ready / 0 not)", label),
			latency:   reg.Histogram("router_request_duration_seconds", "forward latency through each replica", label),
		}
		rs.setReady(true) // optimistic until the first health sweep
		rt.reps[rep] = rs
	}
	reg.CounterFunc("router_unrouted_total", "requests refused because every eligible replica failed",
		rt.unrouted.Load)
	reg.GaugeFunc("router_replicas", "configured replica count",
		func() float64 { return float64(len(ring.Replicas())) })

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", rt.handleKeyed(planKey))
	mux.HandleFunc("POST /v1/plan:batch", rt.handleBatch)
	mux.HandleFunc("POST /v1/fleet/plan", rt.handleKeyed(fleetPlanKey))
	mux.HandleFunc("POST /v1/fleet/simulate", rt.handleKeyed(fleetSimKey))
	mux.HandleFunc("POST /v1/simulate", rt.handleKeyed(rawKey))
	mux.HandleFunc("POST /v1/analyze", rt.handleKeyed(rawKey))
	mux.HandleFunc("POST /v1/render", rt.handleKeyed(rawKey))
	mux.HandleFunc("GET /v1/schedules", rt.handleKeyed(pathKey))
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Ring returns the router's consistent-hash ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Start runs the readiness loop until ctx is cancelled: one synchronous
// sweep immediately, then one every HealthInterval.
func (rt *Router) Start(ctx context.Context) {
	rt.CheckNow(ctx)
	t := time.NewTicker(rt.healthEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckNow(ctx)
		}
	}
}

// CheckNow probes every replica's /readyz once, concurrently, and updates
// the routing table. A replica is ready iff the probe answers 200 within
// HealthTimeout — 503 (draining), other statuses, and transport errors all
// route around it.
func (rt *Router) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rs := range rt.reps {
		wg.Add(1)
		go func(rs *replicaState) {
			defer wg.Done()
			epoch := rs.beginObservation()
			pctx, cancel := context.WithTimeout(ctx, rt.healthWait)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, rs.base+"/readyz", nil)
			if err != nil {
				rs.applyObservation(epoch, false)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rs.applyObservation(epoch, false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rs.applyObservation(epoch, resp.StatusCode == http.StatusOK)
		}(rs)
	}
	wg.Wait()
}

// ListenAndServe serves the router on addr until ctx is cancelled, running
// the health loop alongside.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(ctx, ln)
}

// Serve is ListenAndServe on a caller-supplied listener.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	hctx, stopHealth := context.WithCancel(ctx)
	defer stopHealth()
	go rt.Start(hctx)
	hs := &http.Server{
		Handler:           rt.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// maxBodyBytes mirrors the serve tier's request-body cap.
const maxBodyBytes = 1 << 20

// keyFunc derives a request's routing key from its body. Keys use the same
// canonicalization as the serve tier's response caches, so every equivalent
// request — however its optional fields are spelled — lands on the replica
// whose caches already hold it.
type keyFunc func(path string, body []byte) string

// planKey routes /v1/plan by the resolved plan request's canonical JSON —
// exactly the serve plan-cache key. Bodies that fail to decode or resolve
// fall back to a raw-body hash; the owning replica then emits the same 400
// a direct request would get.
func planKey(path string, body []byte) string {
	var req serve.PlanRequest
	if err := serve.DecodeStrict(bytes.NewReader(body), &req); err == nil {
		if preq, err := req.Resolve(); err == nil {
			if raw, err := json.Marshal(preq); err == nil {
				return "plan:" + string(raw)
			}
		}
	}
	return rawKey(path, body)
}

// fleetPlanKey routes /v1/fleet/plan by the resolved request's canonical
// JSON — the serve fleet-cache key.
func fleetPlanKey(path string, body []byte) string {
	var req serve.FleetPlanRequest
	if err := serve.DecodeStrict(bytes.NewReader(body), &req); err == nil {
		if freq, err := req.Resolve(); err == nil {
			if raw, err := json.Marshal(freq); err == nil {
				return "fleet:" + string(raw)
			}
		}
	}
	return rawKey(path, body)
}

// fleetSimKey routes /v1/fleet/simulate by the resolved scenario's
// canonical JSON — the serve fleet-sim cache key (classic and elastic
// scenarios marshal to distinct shapes, so keys cannot collide).
func fleetSimKey(path string, body []byte) string {
	var sc serve.FleetScenario
	if err := serve.DecodeStrict(bytes.NewReader(body), &sc); err == nil {
		if sc.Elastic() {
			if esc, err := sc.ResolveElastic(); err == nil {
				if raw, err := json.Marshal(esc); err == nil {
					return "fleetsim:" + string(raw)
				}
			}
		} else if csc, err := sc.Resolve(); err == nil {
			if raw, err := json.Marshal(csc); err == nil {
				return "fleetsim:" + string(raw)
			}
		}
	}
	return rawKey(path, body)
}

// rawKey routes by a hash of the request bytes: no response cache exists
// for these endpoints, but equal bodies still reuse one replica's engine
// caches (memoized schedules, critical paths).
func rawKey(path string, body []byte) string {
	return "raw:" + path + ":" + fmt.Sprintf("%016x", fnv64aBytes(body))
}

// pathKey routes body-less GETs by path alone.
func pathKey(path string, _ []byte) string { return "path:" + path }

func fnv64aBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// handleKeyed forwards one request to its key's owner, failing over along
// the ring on transport errors and 5xx.
func (rt *Router) handleKeyed(key keyFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, "router: read body: "+err.Error())
			return
		}
		resp, err := rt.forward(r, key(r.URL.Path, body), r.URL.Path, body)
		if err != nil {
			rt.unrouted.Add(1)
			rt.writeError(w, http.StatusBadGateway, err.Error())
			return
		}
		relay(w, resp)
	}
}

// forwarded is a fully buffered upstream response, ready to relay or merge.
type forwarded struct {
	status      int
	contentType string
	requestID   string
	body        []byte
}

// forward tries the key's owners in ring order (at most maxAttempts
// distinct replicas), skipping replicas the health loop marked not-ready.
// Transport errors and 5xx fail over to the next owner; everything else —
// including 429 shed and 4xx validation errors — is the answer, relayed
// as-is so the serve tier's back-pressure and error contracts pass through
// unchanged. When every replica is marked not-ready the owners are tried
// anyway: a stale health view should degrade to extra attempts, not an
// outage.
func (rt *Router) forward(r *http.Request, key, path string, body []byte) (*forwarded, error) {
	owners := rt.ring.Owners(key, len(rt.ring.Replicas()))
	candidates := make([]*replicaState, 0, len(owners))
	for _, rep := range owners {
		if rs := rt.reps[rep]; rs.ready.Load() {
			candidates = append(candidates, rs)
		}
	}
	if len(candidates) == 0 {
		for _, rep := range owners {
			candidates = append(candidates, rt.reps[rep])
		}
	}
	if len(candidates) > rt.maxAttempts {
		candidates = candidates[:rt.maxAttempts]
	}
	var lastErr error
	for i, rs := range candidates {
		if i > 0 {
			candidates[i-1].failovers.Inc()
		}
		start := time.Now()
		req, err := http.NewRequestWithContext(r.Context(), r.Method, rs.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		if id := r.Header.Get("X-Request-Id"); id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		epoch := rs.beginObservation()
		resp, err := rt.client.Do(req)
		if err != nil {
			rs.errors.Inc()
			// Passive detection: route around before the next poll — unless
			// a health probe landed a newer verdict while this request was
			// in flight, in which case the probe's evidence wins.
			rs.applyObservation(epoch, false)
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rs.errors.Inc()
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			rs.errors.Inc()
			lastErr = fmt.Errorf("%s: upstream status %d", rs.base, resp.StatusCode)
			continue
		}
		rs.requests.Inc()
		rs.latency.Since(start)
		return &forwarded{
			status:      resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"),
			requestID:   resp.Header.Get("X-Request-Id"),
			body:        respBody,
		}, nil
	}
	if lastErr == nil {
		lastErr = errString("no replica available")
	}
	return nil, fmt.Errorf("router: all attempts failed: %w", lastErr)
}

// relay writes a forwarded response to the client verbatim.
func relay(w http.ResponseWriter, f *forwarded) {
	if f.contentType != "" {
		w.Header().Set("Content-Type", f.contentType)
	}
	if f.requestID != "" {
		w.Header().Set("X-Request-Id", f.requestID)
	}
	w.WriteHeader(f.status)
	w.Write(f.body)
}

// handleBatch scatters /v1/plan:batch by per-item owner and gathers the
// sub-batch replies positionally, so a routed batch returns exactly the
// items a single replica would: each item routes by its /v1/plan cache key
// (sub-batches land where the equivalent singles would), sub-batches
// forward with the same failover policy as single requests, and the merged
// reply marshals through the same serve codec shape.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "router: read body: "+err.Error())
		return
	}
	var req serve.BatchPlanRequest
	if err := serve.DecodeStrict(bytes.NewReader(body), &req); err != nil || len(req.Requests) == 0 || len(req.Requests) > serve.MaxBatchItems {
		// Malformed, empty, or oversized: forward whole to one replica so
		// the client gets the serve tier's own 400, byte-identical.
		resp, ferr := rt.forward(r, rawKey(r.URL.Path, body), r.URL.Path, body)
		if ferr != nil {
			rt.unrouted.Add(1)
			rt.writeError(w, http.StatusBadGateway, ferr.Error())
			return
		}
		relay(w, resp)
		return
	}
	// Group item indices by owning replica. Items that fail to resolve
	// still route (by raw item hash) — the owner reports the same per-item
	// error a direct batch would.
	groups := make(map[string][]int)
	for i, item := range req.Requests {
		raw, err := json.Marshal(item)
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, "router: encode item: "+err.Error())
			return
		}
		owner := rt.ring.Owner(planKey("/v1/plan", raw))
		groups[owner] = append(groups[owner], i)
	}
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	results := make([]serve.BatchPlanItem, len(req.Requests))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for gi, owner := range owners {
		wg.Add(1)
		go func(gi int, idxs []int) {
			defer wg.Done()
			sub := serve.BatchPlanRequest{Requests: make([]serve.PlanRequest, len(idxs))}
			for k, i := range idxs {
				sub.Requests[k] = req.Requests[i]
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				errs[gi] = err
				return
			}
			// The group key is its first item's plan key: that is the key
			// whose ownership placed the group, so failover walks the same
			// owner sequence a single request for it would.
			firstRaw, _ := json.Marshal(req.Requests[idxs[0]])
			f, err := rt.forward(r, planKey("/v1/plan", firstRaw), r.URL.Path, subBody)
			if err != nil {
				errs[gi] = err
				return
			}
			if f.status != http.StatusOK {
				errs[gi] = fmt.Errorf("sub-batch status %d: %s", f.status, truncate(f.body, 200))
				return
			}
			var subResp serve.BatchPlanResponse
			if err := json.Unmarshal(f.body, &subResp); err != nil {
				errs[gi] = err
				return
			}
			if len(subResp.Results) != len(idxs) {
				errs[gi] = fmt.Errorf("sub-batch returned %d results for %d items", len(subResp.Results), len(idxs))
				return
			}
			for k, i := range idxs {
				results[i] = subResp.Results[k]
			}
		}(gi, groups[owner])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rt.unrouted.Add(1)
			rt.writeError(w, http.StatusBadGateway, "router: batch scatter: "+err.Error())
			return
		}
	}
	raw, err := json.Marshal(serve.BatchPlanResponse{Items: len(results), Results: results})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "router: encode batch reply")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// HealthResponse is the router's own GET /healthz reply.
type HealthResponse struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Replicas      []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one replica's state as the router sees it.
type ReplicaHealth struct {
	Addr  string `json:"addr"`
	Ready bool   `json:"ready"`
}

// handleHealth reports the router's own liveness plus its view of each
// replica. Status degrades to "degraded" when any replica is out and
// "unrouted" when all are.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{UptimeSeconds: time.Since(rt.started).Seconds()}
	up := 0
	for _, rep := range rt.ring.Replicas() {
		ready := rt.reps[rep].ready.Load()
		if ready {
			up++
		}
		resp.Replicas = append(resp.Replicas, ReplicaHealth{Addr: rep, Ready: ready})
	}
	switch {
	case up == len(resp.Replicas):
		resp.Status = "ok"
	case up > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "unrouted"
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WritePrometheus(w)
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	rt.writeJSON(w, status, serve.ErrorResponse{Error: msg})
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}

type errString string

func (e errString) Error() string { return string(e) }
