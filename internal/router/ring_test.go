package router

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func ringReplicas(n int) []string {
	reps := make([]string, n)
	for i := range reps {
		reps[i] = fmt.Sprintf("http://10.0.0.%d:8642", i+1)
	}
	return reps
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("plan:tenant-%04d/request-%06d", i%257, i)
	}
	return keys
}

// TestRingBalance: with DefaultVNodes, 100k keys over 5 replicas must land
// within a 1.25 max/mean load ratio — the bound DefaultVNodes documents.
func TestRingBalance(t *testing.T) {
	const nKeys = 100_000
	ring := NewRing(ringReplicas(5), 0)
	load := map[string]int{}
	for _, k := range ringKeys(nKeys) {
		load[ring.Owner(k)]++
	}
	if len(load) != 5 {
		t.Fatalf("keys landed on %d replicas, want 5", len(load))
	}
	mean := float64(nKeys) / 5
	for rep, n := range load {
		if ratio := float64(n) / mean; ratio > 1.25 {
			t.Errorf("replica %s owns %d keys (%.3f× mean), want ≤ 1.25×", rep, n, ratio)
		}
	}
}

// TestRingJoinDisruption: adding a replica may only move keys TO the new
// replica; every key that stays on an old replica keeps its old owner.
func TestRingJoinDisruption(t *testing.T) {
	const nKeys = 100_000
	before := NewRing(ringReplicas(5), 0)
	after := NewRing(ringReplicas(6), 0)
	newRep := ringReplicas(6)[5]
	moved := 0
	for _, k := range ringKeys(nKeys) {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		if newOwner != newRep {
			t.Fatalf("key %q moved %s -> %s, but only moves to the joining replica %s are allowed",
				k, oldOwner, newOwner, newRep)
		}
		moved++
	}
	// The joiner should take roughly its fair share (1/6) — and nothing
	// like a full reshuffle. Allow generous slack around the expectation.
	if lo, hi := nKeys/12, nKeys/3; moved < lo || moved > hi {
		t.Fatalf("join moved %d of %d keys, want roughly 1/6 (between %d and %d)", moved, nKeys, lo, hi)
	}
}

// TestRingLeaveDisruption: removing a replica may only move the departed
// replica's keys; everyone else's shard is untouched.
func TestRingLeaveDisruption(t *testing.T) {
	reps := ringReplicas(5)
	before := NewRing(reps, 0)
	gone := reps[2]
	after := NewRing(append(append([]string{}, reps[:2]...), reps[3:]...), 0)
	for _, k := range ringKeys(100_000) {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == gone {
			if newOwner == gone {
				t.Fatalf("key %q still owned by departed replica", k)
			}
			continue
		}
		if newOwner != oldOwner {
			t.Fatalf("key %q moved %s -> %s although its owner did not leave", k, oldOwner, newOwner)
		}
	}
}

// TestRingOrderIndependence: ownership is a function of the replica set —
// shuffled or duplicated input must produce identical Owner and Owners
// results for every key.
func TestRingOrderIndependence(t *testing.T) {
	reps := ringReplicas(7)
	canonical := NewRing(reps, 0)
	rng := rand.New(rand.NewSource(42))
	keys := ringKeys(2_000)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string{}, reps...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shuffled = append(shuffled, shuffled[0], "") // duplicates and blanks collapse
		ring := NewRing(shuffled, 0)
		if !reflect.DeepEqual(ring.Replicas(), canonical.Replicas()) {
			t.Fatalf("trial %d: replica set %v != %v", trial, ring.Replicas(), canonical.Replicas())
		}
		for _, k := range keys {
			if got, want := ring.Owners(k, 3), canonical.Owners(k, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d key %q: Owners %v != %v", trial, k, got, want)
			}
		}
	}
}

// TestRingOwnersDistinct: the failover sequence never repeats a replica and
// is capped by the fleet size.
func TestRingOwnersDistinct(t *testing.T) {
	ring := NewRing(ringReplicas(4), 0)
	for _, k := range ringKeys(1_000) {
		owners := ring.Owners(k, 10)
		if len(owners) != 4 {
			t.Fatalf("key %q: Owners returned %d replicas, want all 4", k, len(owners))
		}
		seen := map[string]bool{}
		for _, rep := range owners {
			if seen[rep] {
				t.Fatalf("key %q: replica %s repeated in failover order %v", k, rep, owners)
			}
			seen[rep] = true
		}
		if owners[0] != ring.Owner(k) {
			t.Fatalf("key %q: Owners[0] %s != Owner %s", k, owners[0], ring.Owner(k))
		}
	}
}

// TestRingEmpty: the empty ring degrades to no owners, not a panic.
func TestRingEmpty(t *testing.T) {
	ring := NewRing(nil, 0)
	if owner := ring.Owner("k"); owner != "" {
		t.Fatalf("empty ring owner %q, want empty", owner)
	}
	if owners := ring.Owners("k", 3); owners != nil {
		t.Fatalf("empty ring owners %v, want nil", owners)
	}
}
