package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
)

func heteroBaseConfig(t *testing.T) Config {
	t.Helper()
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model: model.BERT48(), Schedule: s, MicroBatch: 4, W: 2,
		Device: PizDaintNode(), Network: AriesNetwork(),
	}
}

// TestSpeedFactorsUnitIsIdentity: factors of all 1.0 must be bit-identical
// to the homogeneous run (×1.0 is exact in IEEE arithmetic).
func TestSpeedFactorsUnitIsIdentity(t *testing.T) {
	cfg := heteroBaseConfig(t)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SpeedFactors = []float64{1, 1, 1, 1}
	unit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, unit) {
		t.Fatalf("unit speed factors changed the result: %+v vs %+v", base, unit)
	}
}

// TestSpeedFactorsStraggler: a slow worker must stretch the iteration, and
// more severity must stretch it monotonically.
func TestSpeedFactorsStraggler(t *testing.T) {
	cfg := heteroBaseConfig(t)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := base.IterTime
	for _, sev := range []float64{1.2, 1.5, 2.0} {
		cfg.SpeedFactors = []float64{1, sev, 1, 1}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.IterTime <= prev {
			t.Fatalf("severity %.1f: iter %.6fs not longer than %.6fs", sev, res.IterTime, prev)
		}
		prev = res.IterTime
	}
	// A uniformly 2× slower cluster doubles the compute span exactly would
	// be too strong (sync is unscaled); but the straggler bound holds: the
	// 2× case cannot beat a fully 2× cluster.
	cfg.SpeedFactors = []float64{2, 2, 2, 2}
	uniform, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prev > uniform.IterTime {
		t.Fatalf("one 2x straggler (%.6fs) slower than a fully 2x cluster (%.6fs)", prev, uniform.IterTime)
	}
}

// TestSpeedFactorsValidation: wrong length and non-positive/non-finite
// factors must be rejected.
func TestSpeedFactorsValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factors []float64
		want    string
	}{
		{"short", []float64{1, 1}, "lengths must match"},
		{"long", []float64{1, 1, 1, 1, 1}, "lengths must match"},
		{"zero", []float64{1, 0, 1, 1}, "positive"},
		{"negative", []float64{1, -2, 1, 1}, "positive"},
		{"nan", []float64{1, math.NaN(), 1, 1}, "positive"},
		{"inf", []float64{1, math.Inf(1), 1, 1}, "positive"},
		// Beyond the quantization bound the int64 replay would overflow and
		// wrap into a silently-wrong timeline; it must be rejected instead.
		{"overflow", []float64{1, 1e300, 1, 1}, "within"},
		{"underflow", []float64{1, 1e-300, 1, 1}, "within"},
	} {
		cfg := heteroBaseConfig(t)
		cfg.SpeedFactors = tc.factors
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestEncodeDecodeSpeedFactors: the canonical string form round-trips
// exactly, including factors with no finite binary representation.
func TestEncodeDecodeSpeedFactors(t *testing.T) {
	for _, factors := range [][]float64{
		nil,
		{1, 1.1, 1.25, 2},
		{0.9999999999999999, 1e-6, 1e6},
	} {
		enc := EncodeSpeedFactors(factors)
		dec, err := DecodeSpeedFactors(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if !reflect.DeepEqual(dec, factors) {
			t.Fatalf("round trip %v → %q → %v", factors, enc, dec)
		}
	}
	for _, bad := range []string{"1,abc", "1,,2", "0,1", "-1,1", "1,+Inf", "1e300,1", "1,1e-300"} {
		if _, err := DecodeSpeedFactors(bad); err == nil {
			t.Fatalf("decode(%q): want error", bad)
		}
	}
}
