// Package sim is the cluster simulator standing in for the paper's
// testbeds. It executes a pipeline schedule under a calibrated cost model —
// per-stage compute times from FLOP counts and a micro-batch efficiency
// curve, α-β point-to-point links between stages, Rabenseifner-cost
// allreduce for gradient synchronization with the three overlap strategies
// of §3.2 — and tracks per-worker memory to decide when a configuration
// needs activation recomputation or simply does not fit (OOM), mirroring
// the R/OOM annotations of the paper's figures.
package sim

// Device models one accelerator.
type Device struct {
	Name string
	// PeakFLOPS is the sustained peak floating-point rate.
	PeakFLOPS float64
	// MemBytes is usable device memory.
	MemBytes int64
	// EffHalfB is the micro-batch size at which compute efficiency reaches
	// half of its asymptote: efficiency(B) = floor + (1−floor)·B/(B+EffHalfB).
	// Models the paper's observation that larger micro-batches use
	// matrix-multiply units better.
	EffHalfB float64
	// EffFloor is the efficiency at vanishing micro-batch size.
	EffFloor float64
}

// Efficiency returns the fraction of peak achieved at micro-batch size b
// (b may be fractional under backward halving).
func (d Device) Efficiency(b float64) float64 {
	if b <= 0 {
		b = 0.01
	}
	return d.EffFloor + (1-d.EffFloor)*b/(b+d.EffHalfB)
}

// Network models the interconnect with a latency-bandwidth (α-β) cost.
type Network struct {
	Name string
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the transfer time per byte for collectives (host-based,
	// pipelined — near link bandwidth).
	Beta float64
	// BetaP2P is the transfer time per byte for point-to-point activation
	// transfers. The paper's implementation stages p2p through GLOO on the
	// host CPU, so its effective bandwidth is far below the link rate;
	// this asymmetry is what lets bubbles absorb p2p (§3.5). Defaults to
	// Beta when zero.
	BetaP2P float64
}

// P2PCost returns α + β_p2p·bytes, the paper's point-to-point model.
func (n Network) P2PCost(bytes int64) float64 {
	b := n.BetaP2P
	if b == 0 {
		b = n.Beta
	}
	return n.Alpha + b*float64(bytes)
}

// AllReduceAlg selects the allreduce cost model.
type AllReduceAlg int

const (
	// ARRabenseifner uses 2·log2(r)·α + 2·(r−1)/r·β·L — bandwidth optimal,
	// the algorithm assumed in §3.4.
	ARRabenseifner AllReduceAlg = iota
	// ARRing uses 2·(r−1)·α + 2·(r−1)/r·β·L — the ring algorithm, kept as
	// an ablation of the design choice.
	ARRing
)

// AllReduceCost returns the cost of an allreduce of L bytes over r members.
func (n Network) AllReduceCost(alg AllReduceAlg, r int, bytes int64) float64 {
	if r <= 1 {
		return 0
	}
	l := float64(bytes)
	switch alg {
	case ARRing:
		return 2*float64(r-1)*n.Alpha + 2*(float64(r-1)/float64(r))*n.Beta*l
	default:
		return 2*log2(r)*n.Alpha + 2*(float64(r-1)/float64(r))*n.Beta*l
	}
}

func log2(r int) float64 {
	n := 0.0
	for v := 1; v < r; v <<= 1 {
		n++
	}
	return n
}

// PizDaintNode is a Cray XC50 node: one NVIDIA P100 (16 GB).
func PizDaintNode() Device {
	return Device{Name: "P100", PeakFLOPS: 9.3e12, MemBytes: 16 << 30, EffHalfB: 3, EffFloor: 0.18}
}

// AriesNetwork is the Cray Aries dragonfly interconnect as the paper used
// it: both collectives and p2p run over GLOO with host staging, well below
// the 10+ GB/s link rate; p2p pays an extra copy.
func AriesNetwork() Network {
	return Network{Name: "Aries", Alpha: 1.8e-6, Beta: 1.0 / 2.5e9, BetaP2P: 1.0 / 1.5e9}
}

// V100Node is one V100 (32 GB) of the paper's small cluster.
func V100Node() Device {
	return Device{Name: "V100", PeakFLOPS: 15.7e12, MemBytes: 32 << 30, EffHalfB: 3, EffFloor: 0.18}
}

// NVLinkIBNetwork approximates the V100 cluster's mixed NVLink (intra-node)
// and InfiniBand (inter-node) fabric; p2p again pays GLOO host staging.
func NVLinkIBNetwork() Network {
	return Network{Name: "NVLink+IB", Alpha: 1.2e-6, Beta: 1.0 / 6.0e9, BetaP2P: 1.0 / 4.0e9}
}
