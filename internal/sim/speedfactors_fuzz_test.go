package sim

import (
	"testing"
)

// FuzzDecodeSpeedFactors hammers the speed-factor string codec: any input
// the decoder accepts must round-trip exactly through the canonical
// encoding (Decode ∘ Encode = identity on decoded values), every accepted
// factor must be within the quantization-safe bounds, and re-decoding the
// canonical form must never fail — the property the engine's comparable
// cache keys (engine.Spec, perfmodel.PlanRequest) depend on. The committed
// seed corpus (testdata/fuzz) covers the canonical, whitespace, exponent,
// boundary and rejection shapes; CI additionally fuzzes for a bounded time.
func FuzzDecodeSpeedFactors(f *testing.F) {
	for _, seed := range []string{
		"",
		"1",
		"1,2,0.5",
		"1e-6,1e6",
		" 1 , 2.5 ,3",
		"1.0000000000000002,0.30000000000000004",
		"9.999999999999999e5,1.0000000001e-6",
		"nan,inf",
		"1,,2",
		"0,1",
		"-1",
		"1e7",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, enc string) {
		dec, err := DecodeSpeedFactors(enc)
		if err != nil {
			return // rejected input — nothing to round-trip
		}
		if enc == "" && dec != nil {
			t.Fatalf("empty encoding decoded to %v, want nil", dec)
		}
		for i, v := range dec {
			if !(v >= MinSpeedFactor && v <= MaxSpeedFactor) {
				t.Fatalf("decoder accepted out-of-bounds factor %g at %d from %q", v, i, enc)
			}
		}
		canon := EncodeSpeedFactors(dec)
		dec2, err := DecodeSpeedFactors(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q fails to decode: %v", canon, enc, err)
		}
		if len(dec) != len(dec2) {
			t.Fatalf("round-trip length %d != %d (%q → %q)", len(dec), len(dec2), enc, canon)
		}
		for i := range dec {
			if dec[i] != dec2[i] {
				t.Fatalf("factor %d drifted: %g != %g (%q → %q)", i, dec[i], dec2[i], enc, canon)
			}
		}
		// The canonical form is a fixed point: encoding the re-decoded
		// values reproduces it byte-for-byte.
		if again := EncodeSpeedFactors(dec2); again != canon {
			t.Fatalf("canonical encoding unstable: %q → %q", canon, again)
		}
	})
}
