package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// Speed-factor bounds, shared by every entry point (Config validation, the
// string codec, and the serve layer): beyond them the factor would drive
// the simulator's int64 time quantization (toQ) into overflow and wrap
// into garbage timings instead of failing loudly.
const (
	MinSpeedFactor = 1e-6
	MaxSpeedFactor = 1e6
)

// validSpeedFactor reports whether f is positive, finite, and within the
// quantization-safe bounds (NaN fails every comparison).
func validSpeedFactor(f float64) bool {
	return f >= MinSpeedFactor && f <= MaxSpeedFactor
}

// EncodeSpeedFactors canonically encodes per-worker speed factors as a
// comma-separated string, so cache keys that must stay comparable value
// types (engine.Spec, perfmodel.PlanRequest) can carry them. The encoding
// round-trips exactly: strconv.FormatFloat with precision -1 emits the
// shortest decimal that parses back to the same float64. An empty slice
// encodes to "" (homogeneous).
func EncodeSpeedFactors(factors []float64) string {
	if len(factors) == 0 {
		return ""
	}
	parts := make([]string, len(factors))
	for i, f := range factors {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// DecodeSpeedFactors parses EncodeSpeedFactors' format back into a slice,
// validating that every factor is positive, finite and within
// [MinSpeedFactor, MaxSpeedFactor]. "" decodes to nil.
func DecodeSpeedFactors(enc string) ([]float64, error) {
	if enc == "" {
		return nil, nil
	}
	parts := strings.Split(enc, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sim: bad speed factor %q: %w", p, err)
		}
		if !validSpeedFactor(f) {
			return nil, fmt.Errorf("sim: speed factor %q must be positive, finite and within [%g, %g]",
				p, float64(MinSpeedFactor), float64(MaxSpeedFactor))
		}
		out[i] = f
	}
	return out, nil
}
