package sim

import (
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
)

func BenchmarkSimulateGPT2D32(b *testing.B) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 32, N: 32, Concat: schedule.Direct})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Model: model.GPT2(), Schedule: s, MicroBatch: 1, W: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeakMemoryBERTD16(b *testing.B) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 16, N: 64, Concat: schedule.Direct})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Model: model.BERT48(), Schedule: s, MicroBatch: 4, W: 2}
	if err := validate(&cfg); err != nil {
		b.Fatal(err)
	}
	stages, err := cfg.Model.Partition(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PeakMemory(&cfg, stages)
	}
}
