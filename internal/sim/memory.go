package sim

import (
	"chimera/internal/model"
	"chimera/internal/schedule"
)

// PeakMemory returns the per-worker peak memory in bytes for the
// configuration: training state for every hosted stage replica (plus
// stashed weight versions for asynchronous schemes) and the peak activation
// residency derived from the schedule's op order.
//
// With recomputation, each in-flight micro-batch holds only its boundary
// input; one full stage activation set is transiently materialized during
// the backward pass (the recompute working set).
func PeakMemory(cfg *Config, stages []model.Stage) []int64 {
	s := cfg.Schedule
	out := make([]int64, s.D)
	for w := 0; w < s.D; w++ {
		out[w] = weightMemory(cfg, stages, w) + activationPeak(cfg, stages, w)
	}
	return out
}

func weightMemory(cfg *Config, stages []model.Stage, w int) int64 {
	s := cfg.Schedule
	var bytes int64
	placements := s.StagesOn(w)
	var stash []int
	if !s.Synchronous {
		stash = s.WeightStashHighWater()
	}
	for _, pl := range placements {
		st := stages[pl.Stage]
		if cfg.ZeRO && s.Synchronous {
			// ZeRO-1: weights + gradients stay replicated (8 B/param); the
			// optimizer state (momentum, 4 B/param) is sharded across the
			// stage's holder group.
			r := int64(len(s.Replicas) * cfg.W)
			bytes += st.Params() * (8 + (4+r-1)/r)
		} else {
			bytes += st.WeightBytes()
		}
		if !s.Synchronous {
			versions := 1
			switch s.Scheme {
			case "pipedream":
				versions = stash[w]
			case "pipedream-2bw":
				versions = 2
			}
			// Extra stashed versions store weights only (fp32), not
			// gradients or optimizer state.
			bytes += int64(versions-1) * st.Params() * 4
		}
	}
	return bytes
}

// activationPeak walks the worker's op order tracking live activation bytes
// per (replica, stage): + on forward, − on backward (half backwards release
// half). Timing cannot change residency; order alone determines it.
func activationPeak(cfg *Config, stages []model.Stage, w int) int64 {
	s := cfg.Schedule
	var live, peak float64
	var maxWorkingSet int64
	for _, op := range s.Workers[w] {
		st := stages[op.Stage]
		perMicro := float64(st.ActivationBytes(cfg.MicroBatch))
		if cfg.Recompute {
			perMicro = float64(cfg.Model.BoundaryBytes(cfg.MicroBatch))
			if ws := st.ActivationBytes(cfg.MicroBatch); ws > maxWorkingSet {
				maxWorkingSet = ws
			}
		}
		n := float64(len(op.Micros))
		switch {
		case op.Kind == schedule.Forward:
			live += perMicro * n
		case op.Half != 0:
			live -= perMicro * n / 2
		default:
			live -= perMicro * n
		}
		if live > peak {
			peak = live
		}
	}
	return int64(peak) + maxWorkingSet
}

// FitsMemory reports whether the configuration fits device memory without
// recomputation, and whether it fits with recomputation — the decision the
// paper's figures annotate with R and OOM.
func FitsMemory(cfg Config) (plain, withRecompute bool, err error) {
	if err := validate(&cfg); err != nil {
		return false, false, err
	}
	stages, err := cfg.Model.Partition(cfg.Schedule.D)
	if err != nil {
		return false, false, err
	}
	cfg.Recompute = false
	plain = true
	for _, m := range PeakMemory(&cfg, stages) {
		if m > cfg.Device.MemBytes {
			plain = false
		}
	}
	cfg.Recompute = true
	withRecompute = true
	for _, m := range PeakMemory(&cfg, stages) {
		if m > cfg.Device.MemBytes {
			withRecompute = false
		}
	}
	return plain, withRecompute, nil
}

// AutoRun simulates the configuration, enabling recomputation automatically
// when the plain configuration does not fit (the paper's R annotation).
// Returns the result and whether recomputation was used; OOM in the result
// indicates even recomputation does not fit.
func AutoRun(cfg Config) (*Result, bool, error) {
	if err := validate(&cfg); err != nil {
		return nil, false, err
	}
	plain, _, err := FitsMemory(cfg)
	if err != nil {
		return nil, false, err
	}
	cfg.Recompute = !plain
	res, err := Run(cfg)
	return res, cfg.Recompute, err
}
