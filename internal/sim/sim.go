package sim

import (
	"fmt"
	"math"
	"sort"

	"chimera/internal/model"
	"chimera/internal/refinterp"
	"chimera/internal/schedule"
)

// SyncStrategy selects how gradient allreduces are scheduled (§3.2).
type SyncStrategy int

const (
	// SyncEagerOpt launches allreduces eagerly only for stages whose
	// gradients finish early enough to hide in bubbles and trailing
	// compute; middle stages synchronize after local compute. The paper's
	// default ("eager-sync-opt").
	SyncEagerOpt SyncStrategy = iota
	// SyncEager launches every stage's allreduce eagerly, paying
	// progression interference on the critical path ("eager-sync").
	SyncEager
	// SyncPostHoc synchronizes all stages after local compute (Fig. 4a).
	SyncPostHoc
)

func (s SyncStrategy) String() string {
	switch s {
	case SyncEagerOpt:
		return "eager-sync-opt"
	case SyncEager:
		return "eager-sync"
	default:
		return "post-hoc"
	}
}

// Config describes one simulated training configuration.
type Config struct {
	Model model.Config
	// Schedule is the pipeline program; its D must divide Model.Layers.
	Schedule *schedule.Schedule
	// MicroBatch is B, the micro-batch size.
	MicroBatch int
	// W is the number of data-parallel pipeline replicas.
	W int
	// Recompute enables activation recomputation (backward = 3× forward,
	// boundary-only activation residency).
	Recompute bool
	// Sync selects the gradient synchronization strategy.
	Sync SyncStrategy
	// Allreduce selects the collective cost model.
	Allreduce AllReduceAlg
	// Interference is the progression-overhead fraction charged when an
	// eager allreduce overlaps compute with no bubble (η in DESIGN.md;
	// the asynchronous-progress cost of §3.2). Default 0.15.
	Interference float64
	// ZeRO enables ZeRO-1-style optimizer-state sharding across each
	// stage's holder group in the memory model (the paper's §2 future-work
	// direction); adds one parameter allgather per stage to sync time.
	ZeRO bool
	// CompressionFactor scales the gradient bytes moved by allreduce
	// (sparsification/quantization, the paper's conclusion): 0 or 1 means
	// exact fp32; int8 ≈ 0.26; top-1% ≈ 0.02.
	CompressionFactor float64
	// SpeedFactors models a heterogeneous cluster: SpeedFactors[w] is the
	// per-op compute-time multiplier of pipeline worker w (1 = nominal,
	// 2 = a 2× slower straggler). Empty means homogeneous. When set, the
	// length must equal the schedule's D and every factor must lie in
	// [MinSpeedFactor, MaxSpeedFactor]. Factors scale compute only, not
	// p2p or allreduce. The slice may be shared between configs (the
	// engine interns decoded factor strings); it is never mutated here.
	SpeedFactors []float64

	// ReferenceReplay evaluates the schedule with the retained map-based
	// reference interpreter (internal/refinterp) instead of the compiled
	// dependency-graph core. Timelines are bit-identical either way (the
	// equivalence suite proves it); the reference is far slower and exists
	// so benchmarks can measure the optimized core against the seed
	// implementation. Never set it on a hot path.
	ReferenceReplay bool

	Device  Device
	Network Network
}

// replay evaluates s under rc through the configured core. The returned
// timeline must be handed back via schedule.(*Timeline).Release once the
// caller is done reading it (a no-op for reference timelines).
func (c *Config) replay(s *schedule.Schedule, rc schedule.ReplayConfig) (*schedule.Timeline, error) {
	if c.ReferenceReplay {
		return refinterp.ReplayWith(s, rc)
	}
	return s.ReplayWith(rc)
}

// speedFactor returns worker w's compute-time multiplier (1 when
// homogeneous). Multiplying by the 1.0 default is exact in IEEE arithmetic,
// so a homogeneous run is bit-identical to one with no factors set.
func (c *Config) speedFactor(w int) float64 {
	if len(c.SpeedFactors) == 0 {
		return 1
	}
	return c.SpeedFactors[w]
}

// Result summarizes one simulated training iteration.
type Result struct {
	// IterTime is the wall-clock seconds of one training iteration.
	IterTime float64
	// Throughput is sequences per second: B·N·W / IterTime.
	Throughput float64
	// BubbleRatio is idle worker time over total worker time (compute part).
	BubbleRatio float64
	// ComputeSpan is the makespan of the compute+p2p part.
	ComputeSpan float64
	// SyncTime is the additional (unoverlapped) gradient sync time on the
	// slowest worker.
	SyncTime float64
	// PeakMemBytes is per-worker peak memory.
	PeakMemBytes []int64
	// OOM reports whether any worker exceeds device memory.
	OOM bool
	// MiniBatch is B·N·W, the effective mini-batch size B̂.
	MiniBatch int
}

const timeQuantum = 1e-9 // replay integer unit: one nanosecond

// Run simulates one training iteration.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	s := cfg.Schedule
	stages, err := cfg.Model.Partition(s.D)
	if err != nil {
		return nil, err
	}
	coster := newOpCoster(&cfg, stages, s)
	tl, err := cfg.replay(s, schedule.ReplayConfig{
		OpCost:   coster.opCost,
		EdgeCost: coster.edgeCost,
	})
	if err != nil {
		return nil, err
	}
	defer tl.Release()
	res := &Result{
		BubbleRatio:  tl.BubbleRatio(),
		ComputeSpan:  float64(tl.Makespan) * timeQuantum,
		PeakMemBytes: PeakMemory(&cfg, stages),
		MiniBatch:    cfg.MicroBatch * s.N * cfg.W,
	}
	for _, m := range res.PeakMemBytes {
		if m > cfg.Device.MemBytes {
			res.OOM = true
		}
	}

	computeEnd := tl.ComputeEnd()
	gradReady := s.GradReady(tl)
	var iterEnd float64
	if s.Synchronous {
		iterEnd = syncFinish(&cfg, stages, computeEnd, gradReady)
	} else {
		iterEnd = asyncFinish(&cfg, stages, coster, tl)
	}
	res.IterTime = iterEnd
	span := res.ComputeSpan
	if span <= 0 {
		span = timeQuantum
	}
	res.SyncTime = iterEnd - span
	if res.SyncTime < 0 {
		res.SyncTime = 0
	}
	res.Throughput = float64(res.MiniBatch) / res.IterTime
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.Schedule == nil {
		return fmt.Errorf("sim: nil schedule")
	}
	if cfg.MicroBatch < 1 {
		return fmt.Errorf("sim: micro-batch must be ≥1, got %d", cfg.MicroBatch)
	}
	if cfg.W < 1 {
		return fmt.Errorf("sim: W must be ≥1, got %d", cfg.W)
	}
	if cfg.Interference == 0 {
		cfg.Interference = 0.15
	}
	if len(cfg.SpeedFactors) != 0 {
		if len(cfg.SpeedFactors) != cfg.Schedule.D {
			return fmt.Errorf("sim: %d speed factors for D=%d workers (lengths must match)",
				len(cfg.SpeedFactors), cfg.Schedule.D)
		}
		for w, f := range cfg.SpeedFactors {
			if !validSpeedFactor(f) {
				return fmt.Errorf("sim: speed factor for worker %d must be positive, finite and within [%g, %g], got %g",
					w, float64(MinSpeedFactor), float64(MaxSpeedFactor), f)
			}
		}
	}
	if cfg.Device.PeakFLOPS == 0 {
		cfg.Device = PizDaintNode()
	}
	if cfg.Network.Beta == 0 && cfg.Network.Alpha == 0 {
		cfg.Network = AriesNetwork()
	}
	return nil
}

func toQ(sec float64) int64 { return int64(math.Round(sec / timeQuantum)) }

// opCoster memoizes quantized op and edge costs per shape. An op's cost
// depends only on (worker when heterogeneous, stage, kind, micro count,
// half) — a few hundred shapes — while a replay queries it once per op
// (thousands), each recomputing FLOPs, efficiency curves and a rounding.
// The table caches the exact toQ(opSeconds(...)) value, so replays are
// bit-identical with and without it (the reference interpreter and the
// compiled graph share one coster per Run). Entries are stored +1 so the
// zero value means "not yet computed"; shapes beyond the sized table
// (a doubled-N replay with wider ops) fall through to the direct path.
type opCoster struct {
	cfg    *Config
	stages []model.Stage
	d      int
	perW   bool
	maxLen int
	cost   []int64
	edge   []int64
}

func newOpCoster(cfg *Config, stages []model.Stage, s *schedule.Schedule) *opCoster {
	maxLen := 1
	for _, ops := range s.Workers {
		for i := range ops {
			if n := len(ops[i].Micros); n > maxLen {
				maxLen = n
			}
		}
	}
	c := &opCoster{cfg: cfg, stages: stages, d: s.D, perW: len(cfg.SpeedFactors) != 0, maxLen: maxLen}
	wc := 1
	if c.perW {
		wc = s.D
	}
	block := make([]int64, (wc*s.D*2+1)*maxLen*3)
	c.cost = block[:wc*s.D*2*maxLen*3]
	c.edge = block[len(c.cost):]
	return c
}

func (c *opCoster) opCost(w int, op schedule.Op) int64 {
	li := len(op.Micros) - 1
	if li >= c.maxLen {
		return toQ(opSeconds(c.cfg, c.stages, w, op))
	}
	wi := 0
	if c.perW {
		wi = w
	}
	k := 0
	if op.Kind != schedule.Forward {
		k = 1
	}
	i := ((wi*c.d+op.Stage)*2+k)*c.maxLen*3 + li*3 + int(op.Half)
	if v := c.cost[i]; v != 0 {
		return v - 1
	}
	v := toQ(opSeconds(c.cfg, c.stages, w, op))
	c.cost[i] = v + 1
	return v
}

func (c *opCoster) edgeCost(op schedule.Op) int64 {
	li := len(op.Micros) - 1
	if li >= c.maxLen {
		return toQ(edgeSeconds(c.cfg, op))
	}
	i := li*3 + int(op.Half)
	if v := c.edge[i]; v != 0 {
		return v - 1
	}
	v := toQ(edgeSeconds(c.cfg, op))
	c.edge[i] = v + 1
	return v
}

// opSeconds is the compute time of one schedule op on worker w: FLOPs over
// the device's effective rate at the op's effective batch size, scaled by
// the worker's speed factor (the heterogeneity seam). Doubled forwards run
// two micro-batches jointly (better efficiency); halved backwards run half a
// micro-batch (worse efficiency) — exactly the trade-offs of §3.5.
func opSeconds(cfg *Config, stages []model.Stage, w int, op schedule.Op) float64 {
	st := stages[op.Stage]
	b := float64(cfg.MicroBatch)
	if op.Kind == schedule.Forward {
		b *= float64(len(op.Micros))
		flops := float64(st.FwdFLOPs(1)) * b
		return cfg.speedFactor(w) * flops / (cfg.Device.PeakFLOPS * cfg.Device.Efficiency(b))
	}
	if op.Half != 0 {
		b /= 2
	}
	mult := 2.0
	if cfg.Recompute {
		mult = 3.0
	}
	flops := mult * float64(st.FwdFLOPs(1)) * b * float64(len(op.Micros))
	return cfg.speedFactor(w) * flops / (cfg.Device.PeakFLOPS * cfg.Device.Efficiency(b))
}

// edgeSeconds is the p2p cost of the activation (or boundary-gradient)
// tensor crossing a stage boundary for this op.
func edgeSeconds(cfg *Config, op schedule.Op) float64 {
	b := float64(cfg.MicroBatch) * float64(len(op.Micros))
	if op.Half != 0 {
		b /= 2
	}
	bytes := int64(float64(cfg.Model.BoundaryBytes(1)) * b)
	return cfg.Network.P2PCost(bytes)
}

// syncFinish computes the iteration end time for synchronous schemes under
// the configured gradient synchronization strategy. Gradients of stage s are
// synchronized across all workers holding a replica of s and across the W
// data-parallel copies: r = replicas·W members (§3.3: local gradient size
// unchanged, member count grows with W).
func syncFinish(cfg *Config, stages []model.Stage, computeEnd []int64, gradReady []map[schedule.StagePlacement]int64) float64 {
	s := cfg.Schedule
	r := len(s.Replicas) * cfg.W
	var worst float64
	for w := 0; w < s.D; w++ {
		ce := float64(computeEnd[w]) * timeQuantum
		// Collect this worker's allreduces sorted by gradient-ready time;
		// they serialize on the worker's single network interface. The sort
		// breaks ready-time ties on (stage, replica) so the launch order —
		// and therefore the result — is deterministic even though gradReady
		// is a map (concurrent sweeps compare results bit-for-bit).
		type arOp struct {
			ready, cost    float64
			stage, replica int
		}
		var ops []arOp
		cf := cfg.CompressionFactor
		if cf <= 0 || cf > 1 {
			cf = 1
		}
		for pl, readyQ := range gradReady[w] {
			bytes := int64(float64(stages[pl.Stage].Params()*4) * cf)
			ops = append(ops, arOp{
				ready:   float64(readyQ) * timeQuantum,
				cost:    cfg.Network.AllReduceCost(cfg.Allreduce, r, bytes),
				stage:   pl.Stage,
				replica: pl.Replica,
			})
		}
		sort.Slice(ops, func(i, j int) bool {
			a, b := ops[i], ops[j]
			if a.ready != b.ready {
				return a.ready < b.ready
			}
			if a.stage != b.stage {
				return a.stage < b.stage
			}
			return a.replica < b.replica
		})

		var total float64
		switch cfg.Sync {
		case SyncPostHoc:
			total = ce
			for _, op := range ops {
				total += op.cost
			}
		case SyncEager:
			// Every allreduce launches when its gradients are ready;
			// asynchronous progression of transfers that overlap active
			// compute charges interference on the critical path (§3.2's
			// threading/initialization overheads).
			nic, interference := 0.0, 0.0
			for _, op := range ops {
				start := math.Max(op.ready, nic)
				nic = start + op.cost
				if overlap := math.Min(ce, nic) - start; overlap > 0 {
					interference += cfg.Interference * overlap
				}
			}
			total = math.Max(nic, ce) + interference
		case SyncEagerOpt:
			// Eager only for stages with a meaningful bubble between
			// gradient completion and the end of local compute (the
			// non-middle stages of Fig. 4b); those launch into idle time,
			// hide partially, and pay no progression interference. Middle
			// stages — no bubble follows their gradients — synchronize
			// after local compute.
			nic := 0.0
			var postHoc float64
			for _, op := range ops {
				if slack := ce - op.ready; slack >= 0.25*op.cost {
					start := math.Max(op.ready, nic)
					nic = start + op.cost
				} else {
					postHoc += op.cost
				}
			}
			total = math.Max(nic, ce) + postHoc
		}
		if cfg.ZeRO {
			// ZeRO-1 pays a parameter allgather per stage after the sharded
			// update (~half an allreduce: one pass instead of two).
			for _, op := range ops {
				total += 0.5 * op.cost
			}
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}

// asyncFinish models PipeDream-style schemes: no flush, so the iteration
// cost is the steady-state marginal time — measured honestly by replaying
// the same 1F1B program at 2N micro-batches and differencing the makespans
// (fill/drain amortize; unoverlapped p2p in the 1F1B chain, which §3.5
// notes cannot hide communication, stays on the cycle). Gradient
// synchronization adds per the scheme: PipeDream after every micro-batch
// backward across the W pipelines; PipeDream-2BW one accumulated allreduce,
// half-overlapped.
func asyncFinish(cfg *Config, stages []model.Stage, coster *opCoster, tl *schedule.Timeline) float64 {
	s := cfg.Schedule
	steady := float64(tl.Makespan) * timeQuantum
	if doubled, err := schedule.ByName(s.Scheme, s.D, 2*s.N); err == nil {
		tl2, err := cfg.replay(doubled, schedule.ReplayConfig{
			OpCost:   coster.opCost,
			EdgeCost: coster.edgeCost,
		})
		if err == nil {
			steady = float64(tl2.Makespan-tl.Makespan) * timeQuantum
			tl2.Release()
		}
	}
	var worstSync float64
	for w := 0; w < s.D; w++ {
		var sync float64
		bytes := stages[w].Params() * 4 // single-pipeline placement: stage w on worker w
		switch s.Scheme {
		case "pipedream":
			// Per-micro-batch gradient synchronization across W replicas.
			sync = float64(s.N) * cfg.Network.AllReduceCost(cfg.Allreduce, cfg.W, bytes)
		default: // pipedream-2bw
			// One accumulated allreduce per iteration. The bubble-free
			// steady state leaves no idle compute to hide it (§4.2.3: 2BW
			// "may not have enough computation to fully overlap the
			// gradient synchronization overhead").
			sync = cfg.Network.AllReduceCost(cfg.Allreduce, cfg.W, bytes)
		}
		if sync > worstSync {
			worstSync = sync
		}
	}
	return steady + worstSync
}
