package sim

import (
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
)

func bertChimera(t *testing.T, d, n int) *schedule.Schedule {
	t.Helper()
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: d, N: n, Concat: schedule.Direct})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseConfig(t *testing.T, scheme string, d, n, b, w int) Config {
	t.Helper()
	s, err := schedule.ByName(scheme, d, n)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Model: model.BERT48(), Schedule: s, MicroBatch: b, W: w}
}

func TestRunBasicChimera(t *testing.T) {
	cfg := Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 16), MicroBatch: 8, W: 8}
	res := mustRun(t, cfg)
	if res.Throughput <= 0 || res.IterTime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MiniBatch != 8*16*8 {
		t.Fatalf("mini-batch %d", res.MiniBatch)
	}
	if res.OOM {
		t.Fatalf("unexpected OOM, peak=%v", res.PeakMemBytes)
	}
	if res.BubbleRatio <= 0 || res.BubbleRatio > 0.5 {
		t.Fatalf("implausible bubble ratio %v", res.BubbleRatio)
	}
}

// TestChimeraBeatsSynchronousBaselines reproduces the core comparative
// claim at matched configuration: fewer bubbles → higher throughput than
// GPipe, DAPPLE and GEMS. The pipeline must be deep enough for bubbles to
// dominate (at D=4 the doubled gradient-sync volume of the two replicas
// offsets the bubble savings and the schemes tie — the regime where the
// paper's own planner would pick a different split).
func TestChimeraBeatsSynchronousBaselines(t *testing.T) {
	d, n, b, w := 8, 8, 8, 4
	ch := mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, d, n), MicroBatch: b, W: w})
	for _, scheme := range []string{"gpipe", "dapple", "gems"} {
		base := mustRun(t, baseConfig(t, scheme, d, n, b, w))
		if ch.Throughput <= base.Throughput {
			t.Errorf("chimera (%.1f seq/s) should beat %s (%.1f seq/s)",
				ch.Throughput, scheme, base.Throughput)
		}
	}
	// At matched D=4 it must stay within a whisker of the best baseline.
	ch4 := mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 8), MicroBatch: 8, W: 8})
	da4 := mustRun(t, baseConfig(t, "dapple", 4, 8, 8, 8))
	if ch4.Throughput < 0.95*da4.Throughput {
		t.Errorf("chimera at D=4 (%.1f) fell more than 5%% behind dapple (%.1f)",
			ch4.Throughput, da4.Throughput)
	}
}

// TestSyncStrategyOrdering reproduces Fig. 12: eager-sync-opt ≥ eager-sync,
// and both at least as good as post-hoc synchronization.
func TestSyncStrategyOrdering(t *testing.T) {
	mk := func(strategy SyncStrategy) *Result {
		cfg := Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 8), MicroBatch: 8, W: 8, Sync: strategy}
		return mustRun(t, cfg)
	}
	opt := mk(SyncEagerOpt)
	eager := mk(SyncEager)
	post := mk(SyncPostHoc)
	if opt.IterTime > eager.IterTime {
		t.Errorf("eager-opt (%v) slower than eager (%v)", opt.IterTime, eager.IterTime)
	}
	if opt.IterTime > post.IterTime {
		t.Errorf("eager-opt (%v) slower than post-hoc (%v)", opt.IterTime, post.IterTime)
	}
	if eager.IterTime == opt.IterTime && post.IterTime == opt.IterTime {
		t.Error("strategies indistinguishable — overlap model inert")
	}
}

// TestGPipeOOMAtLargeN reproduces Fig. 9's headline: GPipe's N-proportional
// activations overflow a 16 GB device where Chimera fits.
func TestGPipeOOMAtLargeN(t *testing.T) {
	d, n, b := 4, 64, 8
	gp := mustRun(t, baseConfig(t, "gpipe", d, n, b, 8))
	if !gp.OOM {
		t.Fatalf("gpipe with N=64 B=8 should OOM, peak=%v GiB", gib(gp.PeakMemBytes))
	}
	ch := mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, d, n), MicroBatch: b, W: 8})
	if ch.OOM {
		t.Fatalf("chimera should fit, peak=%v GiB", gib(ch.PeakMemBytes))
	}
}

func gib(v []int64) []float64 {
	out := make([]float64, len(v))
	for i, b := range v {
		out[i] = float64(b) / (1 << 30)
	}
	return out
}

// TestChimeraMemoryMoreBalancedThanDAPPLE reproduces §4.1: Chimera's
// max/min per-worker memory spread is tighter than DAPPLE's.
func TestChimeraMemoryMoreBalancedThanDAPPLE(t *testing.T) {
	d, n, b := 8, 8, 8
	ch := mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, d, n), MicroBatch: b, W: 4})
	da := mustRun(t, baseConfig(t, "dapple", d, n, b, 4))
	spread := func(v []int64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return float64(hi) / float64(lo)
	}
	if spread(ch.PeakMemBytes) >= spread(da.PeakMemBytes) {
		t.Errorf("chimera spread %.2f should be below dapple %.2f",
			spread(ch.PeakMemBytes), spread(da.PeakMemBytes))
	}
}

// TestDAPPLEPeakOnFirstWorker reproduces the double imbalance: DAPPLE's
// peak memory sits on worker 0 (embedding weights + deepest 1F1B queue).
func TestDAPPLEPeakOnFirstWorker(t *testing.T) {
	res := mustRun(t, baseConfig(t, "dapple", 8, 8, 8, 4))
	for w, m := range res.PeakMemBytes {
		if m > res.PeakMemBytes[0] {
			t.Fatalf("worker %d memory %d exceeds worker0 %d", w, m, res.PeakMemBytes[0])
		}
	}
}

func TestRecomputeShrinksActivations(t *testing.T) {
	cfg := Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 16), MicroBatch: 16, W: 1}
	plain := mustRun(t, cfg)
	cfg.Recompute = true
	rec := mustRun(t, cfg)
	if rec.PeakMemBytes[0] >= plain.PeakMemBytes[0] {
		t.Fatalf("recompute did not reduce memory: %v vs %v", rec.PeakMemBytes[0], plain.PeakMemBytes[0])
	}
	if rec.IterTime <= plain.IterTime {
		t.Fatalf("recompute must cost compute time: %v vs %v", rec.IterTime, plain.IterTime)
	}
}

func TestAutoRunEnablesRecompute(t *testing.T) {
	// A deliberately memory-hungry config: GPipe, large N.
	cfg := baseConfig(t, "gpipe", 4, 64, 8, 8)
	res, recompute, err := AutoRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recompute {
		t.Fatal("expected recomputation to be forced")
	}
	if res.OOM {
		t.Fatalf("with recompute this should fit: %v GiB", gib(res.PeakMemBytes))
	}
	// A comfortable config must not trigger recompute.
	cfg2 := Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 8), MicroBatch: 1, W: 8}
	_, recompute2, err := AutoRun(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if recompute2 {
		t.Fatal("small config should not need recompute")
	}
}

// TestLargerMicroBatchMoreEfficient: throughput per sequence improves with
// B at fixed B̂ compute (efficiency curve), motivating Chimera's greedy
// max-B policy.
func TestLargerMicroBatchMoreEfficient(t *testing.T) {
	run := func(b, n int) *Result {
		return mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, n), MicroBatch: b, W: 1})
	}
	small := run(1, 32) // B̂ = 32
	large := run(8, 4)  // B̂ = 32
	if large.Throughput <= small.Throughput {
		t.Errorf("B=8 (%.1f seq/s) should beat B=1 (%.1f seq/s) at equal B̂",
			large.Throughput, small.Throughput)
	}
}

func TestAllReduceCostModel(t *testing.T) {
	net := AriesNetwork()
	if net.AllReduceCost(ARRabenseifner, 1, 1<<20) != 0 {
		t.Fatal("single member allreduce must be free")
	}
	rab := net.AllReduceCost(ARRabenseifner, 64, 100<<20)
	ring := net.AllReduceCost(ARRing, 64, 100<<20)
	if rab >= ring {
		t.Fatalf("rabenseifner (%v) should beat ring (%v) at r=64", rab, ring)
	}
	// Bandwidth term dominates: cost must meet the 2·(r−1)/r·β·L lower
	// bound for host-based allreduce that §3.4 cites.
	r := 1024
	big := net.AllReduceCost(ARRabenseifner, r, 1<<30)
	lower := 2 * float64(r-1) / float64(r) * net.Beta * float64(1<<30)
	if big < lower {
		t.Fatalf("cost %v below bandwidth lower bound %v", big, lower)
	}
}

func TestEfficiencyCurve(t *testing.T) {
	d := PizDaintNode()
	if !(d.Efficiency(1) < d.Efficiency(8) && d.Efficiency(8) < d.Efficiency(64)) {
		t.Fatal("efficiency must increase with micro-batch size")
	}
	if d.Efficiency(1e9) > 1.0001 {
		t.Fatal("efficiency must not exceed 1")
	}
	if d.Efficiency(0) <= 0 {
		t.Fatal("efficiency must stay positive at b=0")
	}
}

// TestPipeDreamFrequentSyncPenalty: PipeDream's per-micro-batch gradient
// synchronization makes it slower than PipeDream-2BW at W>1 (§4.2.3).
func TestPipeDreamFrequentSyncPenalty(t *testing.T) {
	pd := mustRun(t, baseConfig(t, "pipedream", 4, 8, 8, 8))
	bw := mustRun(t, baseConfig(t, "pipedream-2bw", 4, 8, 8, 8))
	if pd.Throughput >= bw.Throughput {
		t.Errorf("pipedream (%.1f) should trail 2bw (%.1f)", pd.Throughput, bw.Throughput)
	}
}

// TestAsyncNoBubbles: asynchronous schemes approach busy-time-limited
// throughput (bubble-free steady state).
func TestAsyncNoBubbles(t *testing.T) {
	bw := mustRun(t, baseConfig(t, "pipedream-2bw", 4, 8, 8, 1))
	da := mustRun(t, baseConfig(t, "dapple", 4, 8, 8, 1))
	if bw.IterTime >= da.IterTime {
		t.Errorf("2bw without flush (%v) should beat dapple with flush (%v)", bw.IterTime, da.IterTime)
	}
}

func TestWeakScalingEfficiency(t *testing.T) {
	// Chimera weak scaling W=2→8 at D=4, B̂ scaling with W: parallel
	// efficiency should stay above 80% (paper reports 91.4% at much larger
	// scale).
	run := func(w int) *Result {
		return mustRun(t, Config{Model: model.BERT48(), Schedule: bertChimera(t, 4, 8), MicroBatch: 8, W: w})
	}
	t2 := run(2)
	t8 := run(8)
	eff := (t8.Throughput / 4) / t2.Throughput
	if eff < 0.8 || eff > 1.05 {
		t.Errorf("weak scaling efficiency %.2f out of range", eff)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil schedule must error")
	}
	s := bertChimera(t, 4, 4)
	if _, err := Run(Config{Model: model.BERT48(), Schedule: s, MicroBatch: 0, W: 1}); err == nil {
		t.Fatal("zero micro-batch must error")
	}
	if _, err := Run(Config{Model: model.BERT48(), Schedule: s, MicroBatch: 1, W: 0}); err == nil {
		t.Fatal("zero W must error")
	}
	// Model/D mismatch.
	odd, _ := schedule.ByName("dapple", 5, 5)
	if _, err := Run(Config{Model: model.BERT48(), Schedule: odd, MicroBatch: 1, W: 1}); err == nil {
		t.Fatal("48 layers into D=5 must error")
	}
}

func TestFitsMemoryConsistent(t *testing.T) {
	cfg := baseConfig(t, "gpipe", 4, 64, 8, 8)
	if err := func() error { _, e := Run(cfg); return e }(); err != nil {
		t.Fatal(err)
	}
	plain, withRec, err := FitsMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain {
		t.Fatal("plain gpipe N=64 should not fit")
	}
	if !withRec {
		t.Fatal("recompute should fit")
	}
}
