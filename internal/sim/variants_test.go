package sim

import (
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
)

// TestSimForwardDoublingCosts: the simulator's cost hooks honour the §3.5
// variants — a doubled forward is cheaper than two separate forwards
// (batching efficiency), and a halved backward is more than half a full
// backward (efficiency loss at smaller B).
func TestSimForwardDoublingCosts(t *testing.T) {
	stages, err := model.BERT48().Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: model.BERT48(), MicroBatch: 2, W: 1,
		Device: PizDaintNode(), Network: AriesNetwork()}
	single := opSeconds(&cfg, stages, 0, schedule.Op{Kind: schedule.Forward, Stage: 1, Micros: []int{0}})
	doubled := opSeconds(&cfg, stages, 0, schedule.Op{Kind: schedule.Forward, Stage: 1, Micros: []int{0, 1}})
	if !(doubled > single && doubled < 2*single) {
		t.Fatalf("doubled forward %v vs single %v: want in (1x, 2x)", doubled, single)
	}
	full := opSeconds(&cfg, stages, 0, schedule.Op{Kind: schedule.Backward, Stage: 1, Micros: []int{0}})
	half := opSeconds(&cfg, stages, 0, schedule.Op{Kind: schedule.Backward, Stage: 1, Micros: []int{0}, Half: 1})
	if !(half < full && half > full/2) {
		t.Fatalf("half backward %v vs full %v: want in (0.5x, 1x)", half, full)
	}
}

// TestSimEdgeBytesScale: p2p edges scale with micro-batch payload.
func TestSimEdgeBytesScale(t *testing.T) {
	cfg := Config{Model: model.BERT48(), MicroBatch: 4, W: 1,
		Device: PizDaintNode(), Network: AriesNetwork()}
	one := edgeSeconds(&cfg, schedule.Op{Kind: schedule.Forward, Stage: 1, Micros: []int{0}})
	two := edgeSeconds(&cfg, schedule.Op{Kind: schedule.Forward, Stage: 1, Micros: []int{0, 1}})
	half := edgeSeconds(&cfg, schedule.Op{Kind: schedule.Backward, Stage: 1, Micros: []int{0}, Half: 1})
	if two <= one || half >= one {
		t.Fatalf("edge costs: one=%v two=%v half=%v", one, two, half)
	}
}

// TestSimRunsDoublingEndToEnd: doubling and halving schedules simulate
// end to end with plausible results.
func TestSimRunsDoublingEndToEnd(t *testing.T) {
	for _, mode := range []schedule.ConcatMode{schedule.ForwardDoubling, schedule.BackwardHalving} {
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Model: model.BERT48(), Schedule: s, MicroBatch: 4, W: 1,
			Recompute: mode == schedule.ForwardDoubling})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 || res.MiniBatch != 32 {
			t.Fatalf("mode %v: degenerate result %+v", mode, res)
		}
	}
}

// TestCompressionFactorReducesSync: scaling gradient bytes shrinks the
// unoverlapped sync time, never the compute span.
func TestCompressionFactorReducesSync(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 8, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Model: model.GPT2(), Schedule: s, MicroBatch: 1, W: 64, Recompute: true}
	exact, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.CompressionFactor = 0.02
	sparse, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.SyncTime >= exact.SyncTime {
		t.Fatalf("compression did not reduce sync: %v vs %v", sparse.SyncTime, exact.SyncTime)
	}
	if sparse.ComputeSpan != exact.ComputeSpan {
		t.Fatal("compression must not change compute span")
	}
}

// TestZeROMemoryReduction: sharding optimizer state lowers peak memory and
// never raises it.
func TestZeROMemoryReduction(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 16, N: 16})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Model: model.GPT2(), Schedule: s, MicroBatch: 1, W: 32}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ZeRO = true
	zero, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for w := range plain.PeakMemBytes {
		if zero.PeakMemBytes[w] > plain.PeakMemBytes[w] {
			t.Fatalf("worker %d: zero %d > plain %d", w, zero.PeakMemBytes[w], plain.PeakMemBytes[w])
		}
	}
	if zero.IterTime <= plain.IterTime {
		t.Fatal("zero must pay allgather time")
	}
}

// TestSyncStrategyStrings covers the printable names.
func TestSyncStrategyStrings(t *testing.T) {
	if SyncEagerOpt.String() != "eager-sync-opt" || SyncEager.String() != "eager-sync" ||
		SyncPostHoc.String() != "post-hoc" {
		t.Fatal("sync strategy names changed")
	}
}
