package comm

import (
	"sync"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Rank(0)
		c.Send(1, 7, []float32{1, 2, 3})
	}()
	var got []float32
	go func() {
		defer wg.Done()
		c := w.Rank(1)
		got = c.Recv(0, 7)
	}()
	wg.Wait()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("recv got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	buf := []float32{1, 2, 3}
	done := make(chan []float32, 1)
	go func() {
		c := w.Rank(1)
		done <- c.Recv(0, 0)
	}()
	c := w.Rank(0)
	c.Send(1, 0, buf)
	buf[0] = 99 // mutate after send: receiver must see the original
	got := <-done
	if got[0] != 1 {
		t.Fatalf("payload aliased: got[0]=%v want 1", got[0])
	}
}

func TestOutOfOrderTags(t *testing.T) {
	w := NewWorld(2)
	go func() {
		c := w.Rank(0)
		c.Send(1, 2, []float32{2})
		c.Send(1, 1, []float32{1})
		c.Send(1, 3, []float32{3})
	}()
	c := w.Rank(1)
	// Receive in a different order than sent.
	for _, tag := range []int{1, 3, 2} {
		got := c.Recv(0, tag)
		if int(got[0]) != tag {
			t.Fatalf("tag %d: got payload %v", tag, got)
		}
	}
}

func TestInterleavedSources(t *testing.T) {
	w := NewWorld(3)
	var wg sync.WaitGroup
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			c := w.Rank(src)
			for i := 0; i < 10; i++ {
				c.Send(2, i, []float32{float32(src*100 + i)})
			}
		}(src)
	}
	c := w.Rank(2)
	for i := 9; i >= 0; i-- {
		for src := 1; src >= 0; src-- {
			got := c.Recv(src, i)
			if want := float32(src*100 + i); got[0] != want {
				t.Fatalf("src %d tag %d: got %v want %v", src, i, got[0], want)
			}
		}
	}
	wg.Wait()
}

func TestISendIRecvWait(t *testing.T) {
	w := NewWorld(2)
	go func() {
		c := w.Rank(0)
		r := c.ISend(1, 5, []float32{42})
		r.Wait()
	}()
	c := w.Rank(1)
	req := c.IRecv(0, 5)
	got := req.Wait()
	if got[0] != 42 {
		t.Fatalf("irecv got %v", got)
	}
	// Wait must be idempotent.
	if again := req.Wait(); again[0] != 42 {
		t.Fatalf("second Wait got %v", again)
	}
}

func TestIRecvMatchesPending(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		c := w.Rank(0)
		c.Send(1, 9, []float32{7})
		close(done)
	}()
	<-done
	c := w.Rank(1)
	// Force the message into the pending queue by receiving a different tag
	// first via IRecv-deferred path.
	c.Send(1, 8, nil) // self-send so Recv(1,8) can drain rank0's message into pending
	_ = c.Recv(1, 8)
	req := c.IRecv(0, 9)
	if got := req.Wait(); got[0] != 7 {
		t.Fatalf("pending irecv got %v", got)
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var mu sync.Mutex
	phase := make([]int, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			for p := 0; p < 5; p++ {
				mu.Lock()
				phase[r] = p
				// All ranks must be within one phase of each other.
				for _, q := range phase {
					if q < p-1 || q > p+1 {
						mu.Unlock()
						t.Errorf("rank %d at phase %d saw phase %d", r, p, q)
						return
					}
				}
				mu.Unlock()
				c.Barrier()
			}
		}(r)
	}
	wg.Wait()
}

func TestWorldSizeAndRankValidation(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("size = %d", w.Size())
	}
	if got := w.Rank(3).Rank(); got != 3 {
		t.Fatalf("rank = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range rank")
		}
	}()
	w.Rank(4)
}

func TestSendToInvalidRankPanics(t *testing.T) {
	w := NewWorld(1)
	c := w.Rank(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Send(5, 0, nil)
}
