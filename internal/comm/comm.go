// Package comm provides an in-process message-passing substrate modelled on
// MPI. A World of P ranks communicates through Go channels; each rank obtains
// a Communicator handle that supports blocking point-to-point transfers,
// nonblocking transfers with explicit completion (Wait), and barriers.
//
// The package stands in for GLOO/MPI in the original Chimera implementation:
// pipeline stages exchange activations and boundary gradients over Send/Recv,
// and gradient synchronization is built on top in package collective.
package comm

import (
	"fmt"
	"sync"
)

// Message is the unit of transfer between ranks. Payloads are float32 slices
// (activations, gradients) accompanied by an integer tag that disambiguates
// concurrent streams (e.g. micro-batch id × stage id).
type Message struct {
	Source int
	Tag    int
	Data   []float32
}

// World owns the mailboxes for a fixed set of ranks. It must be created once
// and shared by all participating goroutines.
type World struct {
	size   int
	inbox  []chan Message
	barier *barrier
}

// DefaultQueueDepth is the per-rank mailbox capacity. It is sized generously
// so that senders in a correctly ordered pipeline schedule never block on
// mailbox capacity (they may still block on matching).
const DefaultQueueDepth = 1024

// NewWorld creates a communication world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("comm: world size must be positive, got %d", size))
	}
	w := &World{size: size, inbox: make([]chan Message, size), barier: newBarrier(size)}
	for i := range w.inbox {
		w.inbox[i] = make(chan Message, DefaultQueueDepth)
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Rank returns the communicator handle for the given rank.
func (w *World) Rank(rank int) *Communicator {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Communicator{world: w, rank: rank, pending: make(map[matchKey][]Message)}
}

// Communicator is the per-rank endpoint. It is not safe for concurrent use by
// multiple goroutines: like an MPI rank, each communicator belongs to exactly
// one worker goroutine.
type Communicator struct {
	world *World
	rank  int
	// pending holds messages that arrived before a matching Recv was posted
	// (out-of-order arrival across tags/sources).
	pending map[matchKey][]Message
}

type matchKey struct {
	source int
	tag    int
}

// Rank returns this endpoint's rank.
func (c *Communicator) Rank() int { return c.rank }

// Size returns the world size.
func (c *Communicator) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. The payload is copied so the
// caller may reuse the buffer immediately (MPI buffered-send semantics).
func (c *Communicator) Send(dst, tag int, data []float32) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("comm: send to invalid rank %d", dst))
	}
	buf := make([]float32, len(data))
	copy(buf, data)
	c.world.inbox[dst] <- Message{Source: c.rank, Tag: tag, Data: buf}
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. Messages from other (source, tag) pairs that arrive in
// the meantime are queued for later Recv calls.
func (c *Communicator) Recv(src, tag int) []float32 {
	key := matchKey{source: src, tag: tag}
	if q := c.pending[key]; len(q) > 0 {
		msg := q[0]
		c.pending[key] = q[1:]
		return msg.Data
	}
	for {
		msg := <-c.world.inbox[c.rank]
		if msg.Source == src && msg.Tag == tag {
			return msg.Data
		}
		k := matchKey{source: msg.Source, tag: msg.Tag}
		c.pending[k] = append(c.pending[k], msg)
	}
}

// Request represents an outstanding nonblocking operation.
type Request struct {
	done         <-chan []float32
	deferredRecv func() []float32
	data         []float32
	rcvd         bool
}

// Wait blocks until the operation completes and returns the received payload
// (nil for sends).
func (r *Request) Wait() []float32 {
	if r.rcvd {
		return r.data
	}
	switch {
	case r.done != nil:
		r.data = <-r.done
	case r.deferredRecv != nil:
		r.data = r.deferredRecv()
	}
	r.rcvd = true
	return r.data
}

// ISend starts a nonblocking send. Because mailboxes are buffered and
// payloads copied, the send completes immediately; the returned request
// exists for API symmetry with MPI.
func (c *Communicator) ISend(dst, tag int, data []float32) *Request {
	c.Send(dst, tag, data)
	return &Request{}
}

// IRecv posts a nonblocking receive. The returned Request's Wait yields the
// payload. The receive is serviced by a helper goroutine draining through the
// same matching logic, so IRecv must not be interleaved with blocking Recv
// calls for the same (source, tag).
func (c *Communicator) IRecv(src, tag int) *Request {
	ch := make(chan []float32, 1)
	key := matchKey{source: src, tag: tag}
	if q := c.pending[key]; len(q) > 0 {
		msg := q[0]
		c.pending[key] = q[1:]
		ch <- msg.Data
		return &Request{done: ch}
	}
	// Fall back to a blocking receive at Wait time: record intent only.
	return &Request{deferredRecv: func() []float32 { return c.Recv(src, tag) }}
}

// Barrier blocks until all ranks in the world have entered it.
func (c *Communicator) Barrier() { c.world.barier.await() }

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	phase int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.size {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
