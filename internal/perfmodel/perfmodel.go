// Package perfmodel implements the paper's §3.4 performance model and the
// configuration selection it drives:
//
//	T = (Ft + Comm_p2p)·Cf + (Bt + Comm_p2p)·Cb + max_i Comm_unoverlapped(i)
//
// where Cf and Cb are the number of forward and backward passes on the
// pipeline's critical path, Ft/Bt come from micro-benchmarks (here: the
// simulator's calibrated compute model), p2p uses the α-β cost, and
// allreduce uses Rabenseifner's cost with the eager-overlap accounting of
// §3.2. Because Chimera greatly alleviates the bubble problem, the planner
// greedily picks the maximum micro-batch size B that fits device memory and
// uses the model only to choose (W, D) — the paper's reduced tuning space.
//
// Plan fans the (W, D) candidates out over the shared internal/engine
// worker pool and reuses its memoized schedules and critical paths; the
// ranking is deterministic and identical whether the engine runs on one
// worker or many.
package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// CriticalPath returns (Cf, Cb), the Eq. 1 critical-path counts. It
// forwards to schedule.CriticalPath, which owns the dependency-structure
// probe (kept here for API compatibility).
func CriticalPath(s *schedule.Schedule) (cf, cb int, err error) {
	return schedule.CriticalPath(s)
}

// Prediction is the model's estimate for one configuration.
type Prediction struct {
	W, D, B    int
	N          int
	Recompute  bool
	Cf, Cb     int
	IterTime   float64
	Throughput float64
	// Scheduler is the placement policy behind the prediction: "" for the
	// scheme's fixed placement, otherwise a schedule.Schedulers() name.
	Scheduler string
}

// Predict evaluates Eq. 1 for a Chimera configuration.
func Predict(cfg sim.Config) (*Prediction, error) {
	cf, cb, err := CriticalPath(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	return PredictWithCritical(cfg, cf, cb)
}

// PredictWithCritical evaluates Eq. 1 with precomputed critical-path counts
// (Cf, Cb). The counts depend only on the schedule's dependency structure,
// so callers sweeping many configurations over shared schedules (the
// planner, the experiment grids) obtain them once from the engine's memo
// instead of re-probing per configuration.
func PredictWithCritical(cfg sim.Config, cf, cb int) (*Prediction, error) {
	s := cfg.Schedule
	stages, err := cfg.Model.Partition(s.D)
	if err != nil {
		return nil, err
	}
	// Micro-benchmarked Ft per stage (the embedding and head stages are
	// heavier than the repeated middle stages; at extreme depths — one
	// layer per stage — the head becomes the pipeline's rate limiter, so a
	// single average Ft misrepresents the critical path). The compute term
	// (Ft·Cf + Bt·Cb) is evaluated exactly by walking the dependency
	// structure with the per-stage costs and no communication; the p2p term
	// keeps Eq. 1's (Cf+Cb)·Comm_p2p form.
	b := float64(cfg.MicroBatch)
	rate := cfg.Device.PeakFLOPS * cfg.Device.Efficiency(b)
	btMult := 2.0
	if cfg.Recompute {
		btMult = 3.0
	}
	const quantum = 1e-9
	ftOf := func(stage int) float64 { return float64(stages[stage].FwdFLOPs(1)) * b / rate }
	// factor(w) is the heterogeneous-cluster seam: per-worker compute-time
	// multipliers (1 when the cluster is homogeneous; ×1.0 is exact, so the
	// homogeneous prediction is bit-identical to the factor-free one).
	factor := func(w int) float64 {
		if len(cfg.SpeedFactors) == 0 {
			return 1
		}
		return cfg.SpeedFactors[w]
	}
	tlC, err := s.ReplayWith(schedule.ReplayConfig{
		OpCost: func(w int, op schedule.Op) int64 {
			c := ftOf(op.Stage) * float64(len(op.Micros))
			if op.Kind == schedule.Backward {
				c = btMult * ftOf(op.Stage) * float64(len(op.Micros))
				if op.Half != 0 {
					c /= 2
				}
			}
			return int64(factor(w) * c / quantum)
		},
		EdgeCost: func(schedule.Op) int64 { return 0 },
	})
	if err != nil {
		return nil, err
	}
	var meanFLOPs float64
	for _, st := range stages {
		meanFLOPs += float64(st.FwdFLOPs(1))
	}
	meanFLOPs /= float64(len(stages))
	ft := meanFLOPs * b / rate
	p2p := cfg.Network.P2PCost(cfg.Model.BoundaryBytes(cfg.MicroBatch))
	compute := float64(tlC.Makespan)*quantum + p2p*float64(cf+cb)
	tlC.Release()

	// Unoverlapped gradient synchronization: per worker, allreduce costs
	// exceeding the free region between gradient completion and the end of
	// local compute (§3.4, Fig. 6). Per-worker speed factors scale the
	// replay's unit costs so a straggler's gradients complete late.
	unitCM := schedule.CostModel{FUnit: 1000, BUnit: int64(1000 * btMult)}
	tl, err := s.ReplayWith(schedule.ReplayConfig{
		OpCost: func(w int, op schedule.Op) int64 {
			return int64(factor(w) * float64(unitCM.Cost(op)))
		},
		EdgeCost: func(schedule.Op) int64 { return unitCM.P2P },
	})
	if err != nil {
		return nil, err
	}
	scale := ft / 1000 // seconds per replay unit
	ready := s.GradReady(tl)
	ends := tl.ComputeEnd()
	tl.Release()
	r := len(s.Replicas) * cfg.W
	var unoverlapped float64
	for w := 0; w < s.D; w++ {
		var u float64
		for pl, rq := range ready[w] {
			cost := cfg.Network.AllReduceCost(cfg.Allreduce, r, stages[pl.Stage].Params()*4)
			slack := float64(ends[w]-rq) * scale
			// Mirror the eager-sync-opt semantics: a stage with a
			// meaningful free region launches eagerly and only its spill
			// remains; middle stages pay the full cost after compute.
			if slack >= 0.25*cost {
				if cost > slack {
					u += cost - slack
				}
			} else {
				u += cost
			}
		}
		if u > unoverlapped {
			unoverlapped = u
		}
	}
	t := compute + unoverlapped
	return &Prediction{
		W: cfg.W, D: s.D, B: cfg.MicroBatch, N: s.N, Recompute: cfg.Recompute,
		Cf: cf, Cb: cb, IterTime: t,
		Throughput: float64(cfg.MicroBatch*s.N*cfg.W) / t,
	}, nil
}

// PlanRequest describes a configuration-selection problem: P workers, a
// target mini-batch size, and the platform.
type PlanRequest struct {
	Model     model.Config
	P         int // total workers = W·D
	MiniBatch int // B̂
	Device    sim.Device
	Network   sim.Network
	// MaxB caps the greedy micro-batch search (power-of-two sweep).
	MaxB int
	// SpeedFactors describes a heterogeneous pipeline in
	// sim.EncodeSpeedFactors' canonical string form ("" = homogeneous):
	// factor i is the compute-time multiplier of the worker hosting pipeline
	// position i. PlanRequest doubles as chimera-serve's plan-cache key, so
	// it must stay a comparable value type — hence the string, not a slice.
	// When set, the search is restricted to configurations whose pipeline
	// depth D equals the factor count (the factors describe those workers).
	SpeedFactors string
	// Scheduler selects the placement-policy axis of the search: "" or
	// "fixed" plans the scheme's own placement only; a schedule.Schedulers()
	// name plans that policy; "auto" sweeps fixed plus every list policy and
	// lets the ranking decide. With homogeneous (or absent) speed factors
	// every list policy defers to the fixed placement, so the search
	// collapses to fixed and predictions are bit-identical to pre-policy
	// plans.
	Scheduler string
}

// ErrInfeasible reports that a plan request admits no feasible (W, D, B)
// configuration at all — every candidate fails divisibility or memory.
// Callers searching over worker counts (the fleet allocator) match it with
// errors.Is to distinguish "this P cannot host the job" from a real error.
var ErrInfeasible = errors.New("no feasible configuration")

// Plan enumerates feasible (W, D, B) Chimera configurations for the request
// and returns them ranked by predicted throughput (best first). For each
// (W, D) it greedily selects the maximum power-of-two micro-batch size that
// fits device memory (with recomputation as fallback), the paper's §3.4
// strategy. Candidates are evaluated concurrently on the shared engine.
func Plan(req PlanRequest) ([]*Prediction, error) {
	return PlanOn(engine.Default(), req)
}

// PlanOn is Plan running on a caller-supplied engine (pool size and caches
// under the caller's control). The returned ranking is deterministic:
// throughput descending, with ties broken by smaller D then larger B.
func PlanOn(e *engine.Engine, req PlanRequest) ([]*Prediction, error) {
	preds, errs := PlanBatchOn(e, []PlanRequest{req})
	return preds[0], errs[0]
}

// PlanBatchOn plans every request in one engine fan-out: the (W, D, policy)
// candidate grids of all requests are concatenated and evaluated as a single
// sweep over the worker pool, so a batch of N plans costs one pool traversal
// (and co-scheduled candidates share the engine's schedule/critical-path
// memos within the same pass) instead of N sequential fan-outs. Results and
// errors are positional: preds[i]/errs[i] belong to reqs[i], and each is
// identical to what PlanOn would return for that request alone — PlanOn is
// this function at batch size one.
func PlanBatchOn(e *engine.Engine, reqs []PlanRequest) ([][]*Prediction, []error) {
	type candidate struct {
		req   int // index into reqs
		d     int
		sched string
	}
	outPreds := make([][]*Prediction, len(reqs))
	outErrs := make([]error, len(reqs))
	factorsOf := make([][]float64, len(reqs))
	// Normalize into a private copy: the MaxB default must reach planOne
	// without mutating the caller's slice.
	norm := make([]PlanRequest, len(reqs))
	copy(norm, reqs)
	reqs = norm
	var grid []candidate
	for ri := range reqs {
		req := &reqs[ri]
		if req.MaxB == 0 {
			req.MaxB = 64
		}
		factors, err := sim.DecodeSpeedFactors(req.SpeedFactors)
		if err != nil {
			outErrs[ri] = fmt.Errorf("perfmodel: %w", err)
			continue
		}
		scheds, err := plannerSchedulers(req.Scheduler, factors)
		if err != nil {
			outErrs[ri] = fmt.Errorf("perfmodel: %w", err)
			continue
		}
		factorsOf[ri] = factors
		for d := 2; d <= req.P; d += 2 {
			if req.P%d != 0 || req.Model.Layers%d != 0 {
				continue
			}
			if req.MiniBatch%(req.P/d) != 0 {
				continue
			}
			if len(factors) != 0 && d != len(factors) {
				// The factors name the workers of one pipeline; only depths that
				// match describe the cluster being planned for.
				continue
			}
			for _, sched := range scheds {
				grid = append(grid, candidate{ri, d, sched})
			}
		}
	}
	preds := make([]*Prediction, len(grid))
	errs := make([]error, len(grid))
	e.ForEach(len(grid), func(i int) {
		c := grid[i]
		req := reqs[c.req]
		preds[i], errs[i] = planOne(e, req, req.P/c.d, c.d, c.sched, factorsOf[c.req])
	})
	for i, p := range preds {
		if errs[i] != nil || p == nil {
			continue
		}
		outPreds[grid[i].req] = append(outPreds[grid[i].req], p)
	}
	for ri := range reqs {
		if outErrs[ri] != nil {
			continue
		}
		out := outPreds[ri]
		if len(out) == 0 {
			outPreds[ri] = nil
			outErrs[ri] = fmt.Errorf("perfmodel: %w for P=%d B̂=%d", ErrInfeasible, reqs[ri].P, reqs[ri].MiniBatch)
			continue
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Throughput != b.Throughput {
				return a.Throughput > b.Throughput
			}
			if a.D != b.D {
				return a.D < b.D
			}
			if a.B != b.B {
				return a.B > b.B
			}
			return a.Scheduler < b.Scheduler // fixed ("") before list policies
		})
	}
	return outPreds, outErrs
}

// plannerSchedulers expands a PlanRequest's scheduler selector into the
// placement policies to sweep ("" denotes the fixed placement). With no
// heterogeneity signal in the factors, every list policy defers to the fixed
// placement, so the sweep collapses to fixed alone — planning the aliases
// would only duplicate ranking rows.
func plannerSchedulers(name string, factors []float64) ([]string, error) {
	if name != "" && name != "fixed" && name != "auto" {
		if _, err := schedule.SchedulerByName(name); err != nil {
			return nil, err
		}
	}
	if name == "" || name == "fixed" || schedule.UniformSpeed(factors) {
		return []string{""}, nil
	}
	if name != "auto" {
		return []string{name}, nil
	}
	out := []string{""}
	for _, s := range schedule.Schedulers() {
		if s != "fixed" {
			out = append(out, s)
		}
	}
	return out, nil
}

// planOne finds the greedy max-B configuration at fixed (W, D, scheduler):
// the largest power-of-two B that fits device memory without recomputation;
// only if no B fits plainly, the largest B that fits with recomputation.
// sched "" plans the fixed placement; a policy name plans the re-shaped
// schedule that policy produces for the request's speed factors.
func planOne(e *engine.Engine, req PlanRequest, w, d int, sched string, factors []float64) (*Prediction, error) {
	perPipe := req.MiniBatch / w
	// The canonical factor encoding is loop-invariant; encoding it once here
	// (instead of per candidate B) keeps the b-loop allocation-free until a
	// schedule is actually built.
	speed := ""
	if sched != "" {
		speed = sim.EncodeSpeedFactors(factors)
	}
	for _, allowRecompute := range []bool{false, true} {
		for b := req.MaxB; b >= 1; b /= 2 {
			if perPipe%b != 0 {
				continue
			}
			n := perPipe / b
			key := engine.ChimeraKey(d, n, 0, schedule.Direct)
			if sched != "" {
				key.Scheduler = sched
				key.Speed = speed
			}
			sch, err := e.Schedule(key)
			if err != nil {
				continue
			}
			cfg := sim.Config{
				Model: req.Model, Schedule: sch, MicroBatch: b, W: w,
				SpeedFactors: factors,
				Device:       req.Device, Network: req.Network,
			}
			plain, withRec, err := sim.FitsMemory(cfg)
			if err != nil {
				return nil, err
			}
			if !plain && !(allowRecompute && withRec) {
				continue
			}
			cfg.Recompute = !plain
			cf, cb, err := e.CriticalPath(key)
			if err != nil {
				return nil, err
			}
			pred, err := PredictWithCritical(cfg, cf, cb)
			if err != nil {
				return nil, err
			}
			pred.Scheduler = sched
			return pred, nil
		}
	}
	return nil, nil
}

// ModelError returns |predicted − simulated| / simulated iteration time for
// a configuration — the §4.2.2 accuracy metric (paper: within 10%).
func ModelError(cfg sim.Config) (float64, error) {
	pred, err := Predict(cfg)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return 0, err
	}
	return math.Abs(pred.IterTime-res.IterTime) / res.IterTime, nil
}
