package perfmodel

import (
	"reflect"
	"sync"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/sim"
)

func planRequests() []PlanRequest {
	dev, net := sim.PizDaintNode(), sim.AriesNetwork()
	return []PlanRequest{
		{Model: model.BERT48(), P: 32, MiniBatch: 512, Device: dev, Network: net, MaxB: 32},
		{Model: model.BERT48(), P: 16, MiniBatch: 128, Device: dev, Network: net, MaxB: 16},
		{Model: model.GPT2Small32(), P: 16, MiniBatch: 64, Device: dev, Network: net, MaxB: 4},
		{Model: model.BERT48Seq512(), P: 8, MiniBatch: 64,
			Device: sim.V100Node(), Network: sim.NVLinkIBNetwork(), MaxB: 8},
	}
}

// TestPlanOnParallelMatchesSerial: the engine-parallel planner must produce
// the exact ranking and predictions of the serial uncached reference across
// request shapes.
func TestPlanOnParallelMatchesSerial(t *testing.T) {
	for _, req := range planRequests() {
		serial, err := PlanOn(engine.New(engine.Workers(1), engine.NoCache()), req)
		if err != nil {
			t.Fatalf("%s P=%d: %v", req.Model.Name, req.P, err)
		}
		parallel, err := PlanOn(engine.New(engine.Workers(8)), req)
		if err != nil {
			t.Fatalf("%s P=%d: %v", req.Model.Name, req.P, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s P=%d: serial and parallel plans differ:\nserial:   %v\nparallel: %v",
				req.Model.Name, req.P, dump(serial), dump(parallel))
		}
	}
}

func dump(preds []*Prediction) []Prediction {
	out := make([]Prediction, len(preds))
	for i, p := range preds {
		out[i] = *p
	}
	return out
}

// TestPlanConcurrentCallers: many goroutines planning on one shared engine
// (the facade's situation) all get the reference answer; run under -race
// this stresses the planner's use of the shared caches.
func TestPlanConcurrentCallers(t *testing.T) {
	reqs := planRequests()
	want := make([][]*Prediction, len(reqs))
	for i, req := range reqs {
		var err error
		want[i], err = PlanOn(engine.New(engine.Workers(1), engine.NoCache()), req)
		if err != nil {
			t.Fatal(err)
		}
	}
	shared := engine.New(engine.Workers(4))
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(i int, req PlanRequest) {
				defer wg.Done()
				got, err := PlanOn(shared, req)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(want[i], got) {
					t.Errorf("request %d: concurrent plan diverged from reference", i)
				}
			}(i, req)
		}
	}
	wg.Wait()
}

// TestPlanDeterministicRanking: ties cannot reorder across runs — the
// comparator is total on (Throughput, D, B).
func TestPlanDeterministicRanking(t *testing.T) {
	req := planRequests()[0]
	first, err := Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: plan ranking not reproducible", i)
		}
	}
}
