package perfmodel

import (
	"reflect"
	"testing"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/sim"
)

// TestPlanBatchOnMatchesSequential: a batch's per-request predictions and
// errors must be exactly what sequential PlanOn calls produce — the batch
// endpoint's byte-identity contract rests on this equality.
func TestPlanBatchOnMatchesSequential(t *testing.T) {
	reqs := planRequests()
	// Add an infeasible request (no even-D factorization of P=7) and a
	// duplicate of the first, so the batch path carries per-request errors
	// and repeated grids without cross-talk.
	reqs = append(reqs, PlanRequest{Model: model.BERT48(), P: 7, MiniBatch: 512,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork()})
	reqs = append(reqs, reqs[0])

	preds, errs := PlanBatchOn(engine.New(engine.Workers(4)), reqs)
	if len(preds) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("batch returned %d/%d results for %d requests", len(preds), len(errs), len(reqs))
	}
	for i, req := range reqs {
		want, wantErr := PlanOn(engine.New(engine.Workers(1), engine.NoCache()), req)
		if (wantErr == nil) != (errs[i] == nil) {
			t.Fatalf("request %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Fatalf("request %d: batch error %q != sequential %q", i, errs[i], wantErr)
			}
			continue
		}
		if !reflect.DeepEqual(want, preds[i]) {
			t.Fatalf("request %d (%s P=%d): batch predictions diverge from sequential:\nbatch: %v\nseq:   %v",
				i, req.Model.Name, req.P, dump(preds[i]), dump(want))
		}
	}
}

// TestPlanBatchOnDoesNotMutateInput: normalization (MaxB default, scheduler
// resolution) must happen on a private copy.
func TestPlanBatchOnDoesNotMutateInput(t *testing.T) {
	reqs := []PlanRequest{{Model: model.BERT48(), P: 16, MiniBatch: 128,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork()}}
	before := reqs[0]
	if _, errs := PlanBatchOn(engine.New(engine.Workers(2)), reqs); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if reqs[0] != before {
		t.Fatalf("PlanBatchOn mutated the caller's request: %+v -> %+v", before, reqs[0])
	}
}

// TestPlanBatchOnEmpty: a zero-request batch is a cheap no-op.
func TestPlanBatchOnEmpty(t *testing.T) {
	preds, errs := PlanBatchOn(engine.New(engine.Workers(1)), nil)
	if len(preds) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(preds), len(errs))
	}
}
